#include <gtest/gtest.h>

#include "analog/cells.hpp"

namespace xsfq::analog {
namespace {

TEST(Analog, BiasedJunctionStaysSuperconducting) {
  // A junction biased below Ic settles at a static phase, no slips.
  circuit ckt;
  const node n = ckt.add_node();
  const std::size_t j = ckt.add_jj(n, 0);
  ckt.add_bias(n, 0.07);
  const auto r = ckt.run(100.0);
  EXPECT_TRUE(circuit::phase_slips(r, j).empty());
  // Settles near asin(0.7) ~ 0.775 rad.
  EXPECT_NEAR(r.jj_phase[j].back(), 0.775, 0.08);
}

TEST(Analog, OverdrivenJunctionRuns) {
  // Above Ic the junction enters the voltage state and slips repeatedly.
  circuit ckt;
  const node n = ckt.add_node();
  const std::size_t j = ckt.add_jj(n, 0);
  ckt.add_bias(n, 0.15);
  const auto r = ckt.run(200.0);
  EXPECT_GT(circuit::phase_slips(r, j).size(), 3u);
}

TEST(Analog, PhaseSlipIsOneFluxQuantum) {
  // Each output event advances the junction phase by one 2*pi slip on top
  // of the static bias tilt (asin(0.7) ~ 0.775 rad).
  auto d = make_jtl(3);
  d.ckt.add_pulse(d.inputs[0], 20.0);
  const auto r = d.ckt.run(80.0);
  EXPECT_EQ(circuit::phase_slips(r, d.output_jjs[0]).size(), 1u);
  const double final_phase = r.jj_phase[d.output_jjs[0]].back();
  EXPECT_NEAR(final_phase, 6.283 + 0.775, 1.0);
}

TEST(Analog, JtlPropagatesEveryPulse) {
  auto d = make_jtl(4);
  d.ckt.add_pulse(d.inputs[0], 20.0);
  d.ckt.add_pulse(d.inputs[0], 50.0);
  d.ckt.add_pulse(d.inputs[0], 80.0);
  const auto r = d.ckt.run(120.0);
  EXPECT_EQ(circuit::phase_slips(r, d.input_jjs[0]).size(), 3u);
  EXPECT_EQ(circuit::phase_slips(r, d.output_jjs[0]).size(), 3u);
  const double delay = propagation_delay_ps(r, d.input_jjs[0], d.output_jjs[0]);
  EXPECT_GT(delay, 0.0);
  EXPECT_LT(delay, 20.0);
}

TEST(Analog, JtlQuietWithoutInput) {
  auto d = make_jtl(3);
  const auto r = d.ckt.run(100.0);
  EXPECT_TRUE(circuit::phase_slips(r, d.output_jjs[0]).empty());
}

TEST(Analog, SplitterDrivesBothBranches) {
  auto d = make_splitter();
  d.ckt.add_pulse(d.inputs[0], 20.0);
  const auto r = d.ckt.run(60.0);
  EXPECT_EQ(circuit::phase_slips(r, d.output_jjs[0]).size(), 1u);
  EXPECT_EQ(circuit::phase_slips(r, d.output_jjs[1]).size(), 1u);
}

TEST(Analog, LaFiresOnlyOnCoincidence) {
  // Single input: no output (Figure 2 panel i, first half).
  {
    auto d = make_la_cell();
    d.ckt.add_pulse(d.inputs[0], 20.0);
    const auto r = d.ckt.run(100.0);
    EXPECT_TRUE(circuit::phase_slips(r, d.output_jjs[0]).empty());
  }
  // Both inputs: one output (last arrival triggers).
  {
    auto d = make_la_cell();
    d.ckt.add_pulse(d.inputs[0], 20.0);
    d.ckt.add_pulse(d.inputs[1], 40.0);
    const auto r = d.ckt.run(100.0);
    EXPECT_EQ(circuit::phase_slips(r, d.output_jjs[0]).size(), 1u);
    // Output after the *second* arrival.
    EXPECT_GT(circuit::phase_slips(r, d.output_jjs[0]).front(), 40.0);
  }
}

TEST(Analog, LaOrderIndependent) {
  auto d = make_la_cell();
  d.ckt.add_pulse(d.inputs[1], 20.0);  // b first
  d.ckt.add_pulse(d.inputs[0], 45.0);
  const auto r = d.ckt.run(100.0);
  EXPECT_EQ(circuit::phase_slips(r, d.output_jjs[0]).size(), 1u);
}

TEST(Analog, FaFiresOnFirstArrival) {
  auto d = make_fa_cell();
  d.ckt.add_pulse(d.inputs[0], 20.0);
  const auto r = d.ckt.run(60.0);
  ASSERT_EQ(circuit::phase_slips(r, d.output_jjs[0]).size(), 1u);
  EXPECT_LT(circuit::phase_slips(r, d.output_jjs[0]).front(), 40.0);
}

TEST(Analog, DroReadsOutStoredQuantum) {
  // data then clock -> one readout pulse.
  auto d = make_dro_preload();
  d.ckt.add_pulse(d.inputs[0], 20.0);
  d.ckt.add_pulse(d.inputs[1], 50.0);
  const auto r = d.ckt.run(90.0);
  EXPECT_EQ(circuit::phase_slips(r, d.output_jjs[0]).size(), 1u);
}

TEST(Analog, DroEmptyAndWriteOnlyStaySilent) {
  {
    auto d = make_dro_preload();
    d.ckt.add_pulse(d.inputs[1], 50.0);  // clock only
    const auto r = d.ckt.run(90.0);
    EXPECT_TRUE(circuit::phase_slips(r, d.output_jjs[0]).empty());
  }
  {
    auto d = make_dro_preload();
    d.ckt.add_pulse(d.inputs[0], 20.0);  // write only, never clocked
    const auto r = d.ckt.run(90.0);
    EXPECT_TRUE(circuit::phase_slips(r, d.output_jjs[0]).empty());
  }
}

TEST(Analog, DroPreloadPathSetsTheLoop) {
  // Figure 3: the DC ramp preloads the cell; the next clock reads out 1.
  auto d = make_dro_preload();
  d.ckt.add_source(d.inputs[2],
                   [](double t) { return t > 10 && t < 30 ? 0.12 : 0.0; });
  d.ckt.add_pulse(d.inputs[1], 50.0);
  const auto r = d.ckt.run(90.0);
  EXPECT_EQ(circuit::phase_slips(r, d.output_jjs[0]).size(), 1u);
}

TEST(Analog, DcSfqConvertsRampToPulse) {
  auto d = make_dc_sfq();
  d.ckt.add_source(d.inputs[0],
                   [](double t) { return t > 20 && t < 45 ? 0.15 : 0.0; });
  const auto r = d.ckt.run(80.0);
  EXPECT_GE(circuit::phase_slips(r, d.output_jjs[0]).size(), 1u);
}

TEST(Analog, InvalidComponentThrows) {
  circuit ckt;
  const node n = ckt.add_node();
  EXPECT_THROW(ckt.add_inductor(n, 0, 0.0), std::invalid_argument);
  EXPECT_THROW(ckt.add_inductor(n, 0, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace xsfq::analog
