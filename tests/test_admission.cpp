/// Tests for serve/admission: the bounded priority/deadline admission queue
/// in front of the daemon's worker pool — immediate admits, overload
/// shedding at the queue bound, priority ordering of waiters, deadline
/// expiry while queued, and the stats snapshot.
#include "serve/admission.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace xsfq::serve {
namespace {

using verdict = admission_queue::verdict;

/// Polls the queue's snapshot until `pred` holds (the queue has no test
/// hooks; depth/inflight gauges are its observable state).
template <typename Pred>
void wait_until(const admission_queue& q, Pred pred) {
  while (!pred(q.snapshot())) std::this_thread::yield();
}

TEST(AdmissionQueue, ImmediateAdmitAndRelease) {
  admission_queue q(/*max_queue=*/4, /*max_inflight=*/2);
  const auto t1 = q.acquire(100, 0.0);
  const auto t2 = q.acquire(100, 0.0);
  EXPECT_EQ(t1.outcome, verdict::admitted);
  EXPECT_EQ(t2.outcome, verdict::admitted);
  EXPECT_EQ(q.snapshot().inflight, 2u);
  q.release();
  q.release();
  const auto s = q.snapshot();
  EXPECT_EQ(s.inflight, 0u);
  EXPECT_EQ(s.accepted, 2u);
  EXPECT_EQ(s.queue_depth, 0u);
}

TEST(AdmissionQueue, OverloadRejectsBeyondQueueBound) {
  admission_queue q(/*max_queue=*/0, /*max_inflight=*/1);
  ASSERT_EQ(q.acquire(100, 0.0).outcome, verdict::admitted);
  // The slot is taken and zero waiters are allowed: instant shed, no block.
  EXPECT_EQ(q.acquire(255, 0.0).outcome, verdict::overloaded);
  EXPECT_EQ(q.snapshot().rejected_overload, 1u);
  q.release();
  // With the slot free again the same request is admitted.
  EXPECT_EQ(q.acquire(255, 0.0).outcome, verdict::admitted);
  q.release();
}

TEST(AdmissionQueue, HigherPriorityWaiterAdmittedFirst) {
  admission_queue q(/*max_queue=*/4, /*max_inflight=*/1);
  ASSERT_EQ(q.acquire(100, 0.0).outcome, verdict::admitted);  // holder

  // Queue a LOW-priority waiter first, then a HIGH-priority one; on release
  // the high one must win despite arriving later.
  std::atomic<int> admit_order{0};
  std::atomic<int> low_rank{0};
  std::atomic<int> high_rank{0};
  std::thread low([&] {
    const auto t = q.acquire(10, 0.0);
    EXPECT_EQ(t.outcome, verdict::admitted);
    low_rank.store(++admit_order);
    q.release();
  });
  wait_until(q, [](const admission_stats& s) { return s.queue_depth == 1; });
  std::thread high([&] {
    const auto t = q.acquire(200, 0.0);
    EXPECT_EQ(t.outcome, verdict::admitted);
    high_rank.store(++admit_order);
    q.release();
  });
  wait_until(q, [](const admission_stats& s) { return s.queue_depth == 2; });

  q.release();  // free the holder's slot: waiters drain in priority order
  low.join();
  high.join();
  EXPECT_EQ(high_rank.load(), 1);
  EXPECT_EQ(low_rank.load(), 2);
  const auto s = q.snapshot();
  EXPECT_EQ(s.accepted, 3u);
  EXPECT_EQ(s.peak_queue_depth, 2u);
  EXPECT_EQ(s.inflight, 0u);
}

TEST(AdmissionQueue, DeadlineExpiresWhileWaiting) {
  admission_queue q(/*max_queue=*/4, /*max_inflight=*/1);
  ASSERT_EQ(q.acquire(100, 0.0).outcome, verdict::admitted);  // holder

  const auto start = std::chrono::steady_clock::now();
  const auto t = q.acquire(100, 20.0);  // the holder never releases in time
  const auto waited = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  EXPECT_EQ(t.outcome, verdict::deadline_expired);
  EXPECT_GE(waited, 19.0);  // it actually waited for the deadline
  EXPECT_EQ(q.snapshot().rejected_deadline, 1u);
  EXPECT_EQ(q.snapshot().queue_depth, 0u);  // the expired waiter left

  q.release();
  // The queue still works after an expiry.
  EXPECT_EQ(q.acquire(100, 0.0).outcome, verdict::admitted);
  q.release();
}

TEST(AdmissionQueue, AdmittedTicketReportsQueuedTime) {
  admission_queue q(/*max_queue=*/4, /*max_inflight=*/1);
  ASSERT_EQ(q.acquire(100, 0.0).outcome, verdict::admitted);
  std::atomic<double> queued_ms{-1.0};
  std::thread waiter([&] {
    const auto t = q.acquire(100, 0.0);
    EXPECT_EQ(t.outcome, verdict::admitted);
    queued_ms.store(t.queued_ms);
    q.release();
  });
  wait_until(q, [](const admission_stats& s) { return s.queue_depth == 1; });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.release();
  waiter.join();
  EXPECT_GE(queued_ms.load(), 9.0);  // it sat queued while we slept
}

TEST(AdmissionQueue, MaxInflightZeroClampsToOne) {
  // A zero max_inflight would deadlock every acquire; the queue clamps it.
  admission_queue q(/*max_queue=*/0, /*max_inflight=*/0);
  EXPECT_EQ(q.snapshot().max_inflight, 1u);
  EXPECT_EQ(q.acquire(100, 0.0).outcome, verdict::admitted);
  q.release();
}

}  // namespace
}  // namespace xsfq::serve
