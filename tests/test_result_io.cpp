/// Tests for the flow-result serialization layer (flow/result_io) and the
/// disk-persistent result cache tier (flow/disk_cache + batch_runner):
/// byte-exact AIG replay, full flow_result round trips, corruption and
/// version-mismatch handling, eviction, and warm hits across runner
/// "restarts" (two runner instances sharing one cache directory).
#include "flow/result_io.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include "benchgen/registry.hpp"
#include "flow/batch_runner.hpp"
#include "flow/disk_cache.hpp"

namespace xsfq {
namespace {

namespace fs = std::filesystem;

/// Unique scratch directory, removed on scope exit.
struct temp_dir {
  std::string path;
  temp_dir() {
    char tmpl[] = "/tmp/xsfq_result_io_XXXXXX";
    path = mkdtemp(tmpl);
  }
  ~temp_dir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

aig tiny_adder() {
  aig g;
  const signal a = g.create_pi("a");
  const signal b = g.create_pi("b");
  const signal c = g.create_pi("cin");
  g.create_po(g.create_xor(g.create_xor(a, b), c), "s");
  g.create_po(g.create_maj(a, b, c), "cout");
  return g;
}

std::vector<std::uint8_t> serialize_aig(const aig& g) {
  byte_writer w;
  flow::write_aig(w, g);
  return w.take();
}

TEST(ResultIo, AigRoundTripPreservesContentHash) {
  for (const char* name : {"c432", "c880", "s27", "s298"}) {
    const aig g = benchgen::make_benchmark(name);
    const std::vector<std::uint8_t> bytes = serialize_aig(g);
    byte_reader r(bytes);
    const aig restored = flow::read_aig(r);
    EXPECT_TRUE(r.done());
    EXPECT_EQ(restored.content_hash(), g.content_hash()) << name;
    EXPECT_EQ(restored.num_gates(), g.num_gates()) << name;
    EXPECT_EQ(restored.num_registers(), g.num_registers()) << name;
  }
}

TEST(ResultIo, AigRoundTripTinyNetworkWithNames) {
  const aig g = tiny_adder();
  const std::vector<std::uint8_t> bytes = serialize_aig(g);
  byte_reader r(bytes);
  const aig restored = flow::read_aig(r);
  EXPECT_EQ(restored.content_hash(), g.content_hash());
  EXPECT_EQ(restored.pi_name(0), "a");
  EXPECT_EQ(restored.po_name(1), "cout");
}

TEST(ResultIo, CorruptedAigBytesAreRejectedNotMisread) {
  const aig g = benchgen::make_benchmark("c432");
  std::vector<std::uint8_t> bytes = serialize_aig(g);
  // Flip one byte somewhere in the node records; either the replay check,
  // a bounds check, or the final content hash must catch it.
  std::size_t rejected = 0;
  for (const std::size_t pos : {bytes.size() / 4, bytes.size() / 2}) {
    std::vector<std::uint8_t> mutated = bytes;
    mutated[pos] ^= 0x41;
    byte_reader r(mutated);
    try {
      const aig restored = flow::read_aig(r);
      // A mutation in dead padding could in principle decode; it must then
      // still hash identically (i.e. describe the same network).
      EXPECT_EQ(restored.content_hash(), g.content_hash());
    } catch (const serialize_error&) {
      ++rejected;
    }
  }
  EXPECT_GE(rejected, 1u);
  // Truncation always throws.
  std::vector<std::uint8_t> truncated(bytes.begin(),
                                      bytes.begin() + bytes.size() / 2);
  byte_reader r(truncated);
  EXPECT_THROW(flow::read_aig(r), serialize_error);
}

TEST(ResultIo, FlowResultRoundTrip) {
  flow::flow_options options;
  options.emit_verilog = true;
  const flow::flow_result original = flow::run_flow("c432", options);

  byte_writer w;
  flow::write_flow_result(w, original);
  const std::vector<std::uint8_t> bytes = w.take();
  byte_reader r(bytes);
  const flow::flow_result restored = flow::read_flow_result(r);
  r.expect_done();

  EXPECT_EQ(restored.name, original.name);
  EXPECT_EQ(restored.optimized.content_hash(),
            original.optimized.content_hash());
  EXPECT_EQ(restored.opt_stats.final_gates, original.opt_stats.final_gates);
  EXPECT_EQ(restored.opt_stats.work.replacements,
            original.opt_stats.work.replacements);
  EXPECT_EQ(restored.mapped.stats.jj, original.mapped.stats.jj);
  EXPECT_EQ(restored.mapped.netlist.size(), original.mapped.netlist.size());
  EXPECT_EQ(restored.mapped.netlist.summary(),
            original.mapped.netlist.summary());
  EXPECT_EQ(restored.mapped.co_negated, original.mapped.co_negated);
  EXPECT_EQ(restored.baseline.jj_without_clock,
            original.baseline.jj_without_clock);
  EXPECT_EQ(restored.verilog, original.verilog);
  ASSERT_EQ(restored.timings.size(), original.timings.size());
  for (std::size_t i = 0; i < restored.timings.size(); ++i) {
    EXPECT_EQ(restored.timings[i].stage, original.timings[i].stage);
    EXPECT_EQ(restored.timings[i].counters.nodes,
              original.timings[i].counters.nodes);
  }
  EXPECT_DOUBLE_EQ(restored.total_ms, original.total_ms);
}

TEST(DiskCache, StoreLoadHitAndAbsentMiss) {
  temp_dir dir;
  flow::disk_result_cache cache(dir.path + "/cache");
  const flow::flow_result result = flow::run_flow("c432");

  EXPECT_FALSE(cache.load(1, 2).has_value());
  cache.store(1, 2, result);
  const auto loaded = cache.load(1, 2);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->optimized.content_hash(),
            result.optimized.content_hash());
  EXPECT_EQ(loaded->mapped.stats.jj, result.mapped.stats.jj);
  // Same circuit key under different options is a distinct entry.
  EXPECT_FALSE(cache.load(1, 3).has_value());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.writes, 1u);
}

TEST(DiskCache, CorruptAndStaleVersionEntriesReadAsMissAndAreQuarantined) {
  temp_dir dir;
  const std::string cache_dir = dir.path + "/cache";
  const flow::flow_result result = flow::run_flow("c432");
  {
    flow::disk_result_cache cache(cache_dir);
    cache.store(7, 9, result);
  }
  // Find the entry file and truncate it mid-payload.
  std::string entry;
  for (const auto& de : fs::directory_iterator(cache_dir)) {
    entry = de.path().string();
  }
  ASSERT_FALSE(entry.empty());
  const auto full_size = fs::file_size(entry);
  fs::resize_file(entry, full_size / 2);
  {
    flow::disk_result_cache cache(cache_dir);
    EXPECT_FALSE(cache.load(7, 9).has_value());
    EXPECT_FALSE(fs::exists(entry));  // corrupt entry out of the live dir
    // Not erased, though: the bytes move to quarantine/ for inspection.
    EXPECT_EQ(cache.stats().quarantined, 1u);
    EXPECT_TRUE(fs::exists(cache.quarantine_directory()));
  }
  // A version from the future reads as a miss too.
  {
    flow::disk_result_cache cache(cache_dir);
    cache.store(7, 9, result);
  }
  {
    std::fstream f(entry, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(4);  // format-version field, after the magic
    const std::uint32_t future = 0xFFFFu;
    f.write(reinterpret_cast<const char*>(&future), sizeof(future));
  }
  flow::disk_result_cache cache(cache_dir);
  EXPECT_FALSE(cache.load(7, 9).has_value());
  EXPECT_FALSE(fs::exists(entry));
}

TEST(DiskCache, EvictsOldestBeyondMaxEntries) {
  temp_dir dir;
  flow::disk_result_cache cache(dir.path + "/cache", /*max_entries=*/2);
  const flow::flow_result result = flow::run_flow("c432");
  cache.store(1, 1, result);
  // Distinct mtimes so eviction order is deterministic.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cache.store(2, 2, result);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cache.store(3, 3, result);
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.load(1, 1).has_value());  // oldest gone
  EXPECT_TRUE(cache.load(3, 3).has_value());
}

TEST(DiskCache, QuarantineIsBoundedOldestFirst) {
  // A corruption storm (failing disk, bad RAM) must not fill the volume
  // with quarantined evidence: quarantine/ is capped, oldest-first.  Seed
  // the live directory with more garbage entries than the cap and let the
  // recovery scan quarantine them all.
  temp_dir dir;
  const std::string cache_dir = dir.path + "/cache";
  fs::create_directories(cache_dir);
  const std::size_t total = flow::disk_result_cache::max_quarantine_entries + 6;
  const auto now = fs::file_time_type::clock::now();
  std::string oldest_stem, newest_stem;
  for (std::size_t i = 0; i < total; ++i) {
    char name[64];
    std::snprintf(name, sizeof(name), "%016zx-%016zx.xfr", i + 1, i + 1);
    const std::string path = cache_dir + "/" + name;
    std::ofstream(path) << "not a cache entry";
    // Distinct mtimes make "oldest" well defined; i=0 is oldest.
    fs::last_write_time(path, now - std::chrono::minutes(total - i));
    if (i == 0) oldest_stem = name;
    if (i + 1 == total) newest_stem = name;
  }

  flow::disk_result_cache cache(cache_dir);
  EXPECT_EQ(cache.stats().quarantined, total);
  EXPECT_EQ(cache.stats().pruned, 6u);

  std::size_t kept = 0;
  bool oldest_present = false, newest_present = false;
  for (const auto& de : fs::directory_iterator(cache.quarantine_directory())) {
    if (!de.is_regular_file()) continue;
    ++kept;
    const std::string file = de.path().filename().string();
    // Quarantine names keep the original stem plus a .reason suffix.
    oldest_present |= file.rfind(oldest_stem, 0) == 0;
    newest_present |= file.rfind(newest_stem, 0) == 0;
  }
  EXPECT_EQ(kept, flow::disk_result_cache::max_quarantine_entries);
  EXPECT_FALSE(oldest_present);  // oldest evidence went first
  EXPECT_TRUE(newest_present);   // newest evidence always survives
}

TEST(DiskCache, BatchRunnerWarmHitsAcrossRestart) {
  temp_dir dir;
  const std::string cache_dir = dir.path + "/cache";
  flow::flow_options options;
  flow::batch_report first;
  {
    flow::batch_runner runner(2);
    runner.set_disk_cache(cache_dir);
    first = runner.run({"c432", "c880"}, options);
    ASSERT_EQ(first.num_ok(), 2u);
    const auto stats = runner.cache_stats();
    EXPECT_EQ(stats.disk_writes, 2u);
    EXPECT_EQ(stats.disk_hits, 0u);
  }
  // "Restart": a fresh runner (cold memory cache) over the same directory.
  flow::batch_runner runner(2);
  runner.set_disk_cache(cache_dir);
  const auto second = runner.run({"c432", "c880"}, options);
  ASSERT_EQ(second.num_ok(), 2u);
  const auto stats = runner.cache_stats();
  EXPECT_EQ(stats.disk_hits, 2u);
  EXPECT_EQ(stats.disk_writes, 0u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(second.entries[i].result.optimized.content_hash(),
              first.entries[i].result.optimized.content_hash());
    EXPECT_EQ(second.entries[i].result.mapped.stats.jj,
              first.entries[i].result.mapped.stats.jj);
  }
}

TEST(DiskCache, RunCachedEmitsObserverEventsLiveThenCached) {
  temp_dir dir;
  flow::batch_runner runner(1);
  runner.set_disk_cache(dir.path + "/cache");
  const aig g = benchgen::make_benchmark("c432");

  std::vector<std::pair<std::string, bool>> events;
  const flow::stage_observer observer = [&](const flow::stage_event& ev) {
    events.emplace_back(ev.stage, ev.from_cache);
    EXPECT_EQ(ev.total, 4u);
  };
  const auto live = runner.run_cached(g, "c432", {}, observer);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].first, "generate");
  EXPECT_EQ(events[1].first, "optimize");
  for (const auto& [stage, cached] : events) EXPECT_FALSE(cached);

  events.clear();
  const auto warm = runner.run_cached(g, "c432", {}, observer);
  ASSERT_EQ(events.size(), 4u);
  for (const auto& [stage, cached] : events) EXPECT_TRUE(cached);
  EXPECT_EQ(warm.mapped.stats.jj, live.mapped.stats.jj);
}

}  // namespace
}  // namespace xsfq
