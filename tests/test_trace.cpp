/// Tests for the flight recorder + per-request trace collection
/// (src/util/trace.hpp): hex id round trips, thread context scoping,
/// ring recording and cross-thread snapshots, per-trace collection order
/// and caps, drop accounting, and the Chrome trace-event JSON export.
///
/// The recorder is process-global (deliberately — it is a flight
/// recorder), so tests assert on *deltas* of the counters and use unique
/// ids/names rather than assuming a pristine recorder.

#include "util/trace.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace xsfq {
namespace {

TEST(Trace, HexRoundTripAndValidation) {
  const trace::trace_id id{0x0123456789abcdefull, 0xfedcba9876543210ull};
  const std::string hex = trace::to_hex(id);
  EXPECT_EQ(hex, "0123456789abcdeffedcba9876543210");
  trace::trace_id back;
  ASSERT_TRUE(trace::from_hex(hex, back));
  EXPECT_EQ(back, id);

  trace::trace_id untouched{1, 2};
  EXPECT_FALSE(trace::from_hex("", untouched));
  EXPECT_FALSE(trace::from_hex("0123", untouched));
  EXPECT_FALSE(trace::from_hex(std::string(32, 'g'), untouched));
  EXPECT_FALSE(trace::from_hex(hex + "00", untouched));
  EXPECT_EQ(untouched, (trace::trace_id{1, 2}));

  EXPECT_FALSE((trace::trace_id{}).valid());
  EXPECT_TRUE((trace::trace_id{0, 1}).valid());
  EXPECT_TRUE((trace::trace_id{1, 0}).valid());
}

TEST(Trace, ContextScopeInstallsAndRestores) {
  const trace::trace_id outer{10, 20};
  const trace::trace_id inner{30, 40};
  const trace::trace_id before = trace::current();
  {
    trace::context_scope a(outer);
    EXPECT_EQ(trace::current(), outer);
    {
      trace::context_scope b(inner);
      EXPECT_EQ(trace::current(), inner);
    }
    EXPECT_EQ(trace::current(), outer);
  }
  EXPECT_EQ(trace::current(), before);
}

TEST(Trace, ContextIsPerThread) {
  const trace::trace_id mine{1, 1};
  trace::context_scope scope(mine);
  trace::trace_id seen_on_thread{9, 9};
  std::thread([&] { seen_on_thread = trace::current(); }).join();
  EXPECT_FALSE(seen_on_thread.valid());  // fresh thread: no context
  EXPECT_EQ(trace::current(), mine);
}

TEST(Trace, CollectedSpansComeBackSortedWithDurations) {
  const trace::trace_id id{0x7e57ull, 0x0001ull};
  trace::context_scope scope(id);
  const std::uint64_t base = trace::now_us();
  // Recorded out of order on purpose; collected() must sort by start.
  trace::record("t.second", base + 100, 50);
  trace::record("t.first", base + 10, 80);
  trace::record("t.third", base + 200, 5);

  const auto spans = trace::collected(id);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "t.first");
  EXPECT_EQ(spans[1].name, "t.second");
  EXPECT_EQ(spans[2].name, "t.third");
  EXPECT_EQ(spans[0].dur_us, 80u);
  EXPECT_EQ(spans[0].id, id);
  EXPECT_NE(spans[0].tid, 0u);
}

TEST(Trace, UntracedRecordsSkipTheCollector) {
  const trace::trace_id none{};
  ASSERT_FALSE(trace::current().valid())
      << "test requires no ambient context";
  trace::record("t.untraced", trace::now_us(), 1);
  EXPECT_TRUE(trace::collected(none).empty());
}

TEST(Trace, ScopedSpanRecordsOnDestruction) {
  const trace::trace_id id{0x7e57ull, 0x0002ull};
  trace::context_scope scope(id);
  { trace::scoped_span span("t.scoped"); }
  const auto spans = trace::collected(id);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "t.scoped");
}

TEST(Trace, RecordForAttributesWithoutInstalledContext) {
  const trace::trace_id id{0x7e57ull, 0x0003ull};
  ASSERT_FALSE(trace::current().valid());
  trace::record_for(id, "t.explicit", trace::now_us(), 7);
  const auto spans = trace::collected(id);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "t.explicit");
  EXPECT_EQ(spans[0].dur_us, 7u);
}

TEST(Trace, CountersGrowAndSpansLandInSnapshot) {
  const std::uint64_t before = trace::spans_recorded();
  const trace::trace_id id{0x7e57ull, 0x0004ull};
  trace::context_scope scope(id);
  trace::record("t.snapshot_probe", trace::now_us(), 3);
  EXPECT_GE(trace::spans_recorded(), before + 1);

  bool found = false;
  for (const auto& s : trace::snapshot()) {
    found |= (s.name == "t.snapshot_probe" && s.id == id);
  }
  EXPECT_TRUE(found);
}

TEST(Trace, CrossThreadSnapshotSeesOtherThreadsSpans) {
  const trace::trace_id id{0x7e57ull, 0x0005ull};
  std::thread([&] {
    trace::context_scope scope(id);
    trace::record("t.worker_span", trace::now_us(), 11);
  }).join();
  // The worker thread has exited; its spans must survive in the retired
  // ring (snapshot) and in the collector (collected).
  bool in_snapshot = false;
  for (const auto& s : trace::snapshot()) {
    in_snapshot |= (s.name == "t.worker_span");
  }
  EXPECT_TRUE(in_snapshot);
  const auto spans = trace::collected(id);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "t.worker_span");
}

TEST(Trace, PerTraceCollectionIsCappedWithDropsCounted) {
  const trace::trace_id id{0x7e57ull, 0x0006ull};
  trace::context_scope scope(id);
  const std::uint64_t dropped_before = trace::spans_dropped();
  const std::uint64_t base = trace::now_us();
  // Far beyond the per-trace cap (512): collection must stay bounded and
  // the overflow must be counted, not silent.
  for (int i = 0; i < 2000; ++i) {
    trace::record("t.flood", base + static_cast<std::uint64_t>(i), 1);
  }
  const auto spans = trace::collected(id);
  EXPECT_LE(spans.size(), 512u);
  EXPECT_GT(spans.size(), 0u);
  EXPECT_GT(trace::spans_dropped(), dropped_before);
}

TEST(Trace, UnknownIdCollectsEmpty) {
  EXPECT_TRUE(trace::collected({0xabadull, 0x1deaull}).empty());
}

TEST(Trace, ChromeTraceJsonShape) {
  std::vector<trace::span> spans;
  spans.push_back({{0x1ull, 0x2ull}, "queue_wait", 100, 25, 7});
  spans.push_back({{}, "background \"work\"\n", 50, 10, 8});
  const std::string json = trace::chrome_trace_json(spans);

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"queue_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":100"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":25"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":7"), std::string::npos);
  // Traced span carries its id; untraced has no args.trace_id.
  EXPECT_NE(json.find(
                "\"trace_id\":\"00000000000000010000000000000002\""),
            std::string::npos);
  // Quotes and control characters in names are escaped, not emitted raw
  // (the writer uses \uXXXX for everything below 0x20).
  EXPECT_NE(json.find("background \\\"work\\\"\\u000a"), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

TEST(Trace, DumpChromeTraceWritesLoadableFile) {
  trace::record("t.dump_probe", trace::now_us(), 2);
  char tmpl[] = "/tmp/xsfq_trace_XXXXXX";
  const int fd = mkstemp(tmpl);
  ASSERT_GE(fd, 0);
  close(fd);
  const std::string path = tmpl;
  ASSERT_TRUE(trace::dump_chrome_trace(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("t.dump_probe"), std::string::npos);
  std::remove(path.c_str());
  // A path in a nonexistent directory fails without throwing.
  EXPECT_FALSE(trace::dump_chrome_trace("/nonexistent_dir_xsfq/x.json"));
}

TEST(Trace, ConcurrentRecordersDoNotCorruptEachOther) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 300;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      const trace::trace_id id{0xc0ffeeull,
                               0x1000ull + static_cast<std::uint64_t>(t)};
      trace::context_scope scope(id);
      for (int i = 0; i < kSpansPerThread; ++i) {
        trace::record("t.concurrent", trace::now_us(), 1);
      }
    });
  }
  // Concurrent snapshots while writers run: must not crash or tear.
  for (int i = 0; i < 10; ++i) {
    for (const auto& s : trace::snapshot()) {
      ASSERT_FALSE(s.name.empty());
    }
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    const auto spans = trace::collected(
        {0xc0ffeeull, 0x1000ull + static_cast<std::uint64_t>(t)});
    EXPECT_EQ(spans.size(), static_cast<std::size_t>(kSpansPerThread));
    for (const auto& s : spans) EXPECT_EQ(s.name, "t.concurrent");
  }
}

}  // namespace
}  // namespace xsfq
