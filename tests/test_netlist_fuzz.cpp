/// Fuzz-shaped hardening tests for the .bench/.blif frontends: truncated
/// lines, combinational cycles, oversized identifiers, and NUL bytes must
/// all surface as typed std::invalid_argument errors — never a crash, hang,
/// or silent mis-parse — because the serving daemon feeds these parsers
/// with whatever bytes a client sends.  A deterministic mutation loop then
/// sweeps hundreds of corrupted variants of valid netlists through both
/// readers (and to_aig) asserting the parse-or-typed-throw contract, and an
/// end-to-end check pins that a served malformed circuit comes back as an
/// error response on a connection that stays open.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>

#include "netlist/bench_io.hpp"
#include "netlist/blif_io.hpp"
#include "netlist/netlist.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/synth_service.hpp"

namespace xsfq {
namespace {

const char* const valid_bench =
    "# comment\n"
    "INPUT(a)\n"
    "INPUT(b)\n"
    "INPUT(c)\n"
    "OUTPUT(y)\n"
    "OUTPUT(z)\n"
    "t1 = AND(a, b)\n"
    "t2 = XOR(t1, c)\n"
    "y = NOT(t2)\n"
    "z = MUX(a, t1, t2)\n";

const char* const valid_blif =
    ".model fuzz\n"
    ".inputs a b c\n"
    ".outputs y\n"
    ".names a b t1\n"
    "11 1\n"
    ".names t1 c y\n"
    "10 1\n"
    "01 1\n"
    ".end\n";

/// The contract every malformed input must satisfy: a typed throw (or a
/// clean parse for mutations that happen to stay well-formed), nothing
/// else.  to_aig runs on survivors so lowering shares the guarantee.
void parse_or_typed_throw(const std::string& text) {
  try {
    const netlist bench_net = read_bench_string(text, "fuzz");
    (void)bench_net.to_aig();
  } catch (const std::invalid_argument&) {
    // typed rejection is the expected failure mode
  }
  try {
    const netlist blif_net = read_blif_string(text);
    (void)blif_net.to_aig();
  } catch (const std::invalid_argument&) {
  }
}

TEST(NetlistFuzz, TruncatedLinesThrowTypedErrors) {
  const char* truncated[] = {
      "INPUT(a",                      // unclosed port
      "INPUT(a)\nOUTPUT(y)\ny = ",    // dangling assignment
      "INPUT(a)\nOUTPUT(y)\ny = AND(a",  // unclosed gate args
      "INPUT(a)\nOUTPUT(y)\ny AND(a)",   // missing '='
      "INPUT(a)\nOUTPUT(y)\ny = FROB(a, a)",  // unknown gate
  };
  for (const char* text : truncated) {
    EXPECT_THROW(read_bench_string(text, "t"), std::invalid_argument) << text;
  }
  const char* blif_truncated[] = {
      ".model m\n.inputs a\n.outputs y\n.names\n",       // .names w/o output
      ".model m\n.inputs a\n.outputs y\n.names a y\n1\n",  // short cover
      ".model m\n.inputs a\n.outputs y\n1 1\n",          // cover w/o .names
      ".model m\n.inputs a\n.outputs y\n.latch a\n",     // .latch w/o output
      ".model m\n.frobnicate\n",                         // unknown directive
  };
  for (const char* text : blif_truncated) {
    EXPECT_THROW(read_blif_string(text), std::invalid_argument) << text;
  }
  // Truncation at every byte boundary of a valid file: each prefix either
  // parses (some prefixes are complete netlists) or throws typed.
  const std::string bench(valid_bench);
  for (std::size_t cut = 0; cut < bench.size(); ++cut) {
    parse_or_typed_throw(bench.substr(0, cut));
  }
  const std::string blif(valid_blif);
  for (std::size_t cut = 0; cut < blif.size(); ++cut) {
    parse_or_typed_throw(blif.substr(0, cut));
  }
}

TEST(NetlistFuzz, CombinationalCyclesAreDetectedNotLoopedOn) {
  // BENCH allows forward references, so a cycle parses fine — the typed
  // error must come from to_aig's fixpoint, not an infinite loop.
  const netlist cyc = read_bench_string(
      "INPUT(a)\nOUTPUT(y)\n"
      "p = AND(q, a)\n"
      "q = AND(p, a)\n"
      "y = AND(p, q)\n",
      "cyc");
  EXPECT_THROW(cyc.to_aig(), std::invalid_argument);
  // Self-loop, same contract.
  const netlist self = read_bench_string(
      "INPUT(a)\nOUTPUT(y)\ns = AND(s, a)\ny = BUF(s)\n", "self");
  EXPECT_THROW(self.to_aig(), std::invalid_argument);
}

TEST(NetlistFuzz, OversizedIdentifiersAreRejected) {
  const std::string huge(10000, 'x');
  EXPECT_THROW(
      read_bench_string("INPUT(" + huge + ")\nOUTPUT(y)\ny = BUF(" + huge +
                            ")\n",
                        "t"),
      std::invalid_argument);
  EXPECT_THROW(
      read_bench_string("INPUT(a)\nOUTPUT(y)\n" + huge + " = BUF(a)\ny = "
                        "BUF(a)\n",
                        "t"),
      std::invalid_argument);
  EXPECT_THROW(read_blif_string(".model m\n.inputs " + huge +
                                "\n.outputs y\n.names " + huge + " y\n1 1\n"),
               std::invalid_argument);
  // At the cap is still fine — the limit must not reject real names.
  const std::string big_ok(4096, 'x');
  EXPECT_NO_THROW(read_bench_string(
      "INPUT(" + big_ok + ")\nOUTPUT(y)\ny = BUF(" + big_ok + ")\n", "t"));
}

TEST(NetlistFuzz, NulBytesAreRejected) {
  std::string bench(valid_bench);
  bench[bench.size() / 2] = '\0';
  try {
    read_bench_string(bench, "t");
    FAIL() << "NUL byte should have been rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("NUL"), std::string::npos);
  }
  std::string blif(valid_blif);
  blif[blif.size() / 2] = '\0';
  EXPECT_THROW(read_blif_string(blif), std::invalid_argument);
}

TEST(NetlistFuzz, DeterministicMutationSweepNeverCrashes) {
  // A seeded LCG drives byte flips, deletions, and splices over both valid
  // sources; every mutant must parse or throw typed.  Deterministic, so a
  // failure reproduces by seed — no corpus files, no flakes.
  std::uint64_t state = 0x5eedf00dULL;
  const auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::uint32_t>(state >> 33);
  };
  for (const std::string& source : {std::string(valid_bench),
                                    std::string(valid_blif)}) {
    for (int round = 0; round < 400; ++round) {
      std::string mutant = source;
      const unsigned edits = 1 + next() % 4;
      for (unsigned e = 0; e < edits; ++e) {
        if (mutant.empty()) break;
        const std::size_t at = next() % mutant.size();
        switch (next() % 4) {
          case 0:  // flip to an arbitrary byte (including controls)
            mutant[at] = static_cast<char>(next() % 256);
            break;
          case 1:  // delete a span
            mutant.erase(at, 1 + next() % 8);
            break;
          case 2:  // duplicate a span (builds repeated/conflicting defs)
            mutant.insert(at, mutant.substr(at, 1 + next() % 16));
            break;
          case 3:  // splice a line boundary away
            if (const auto nl = mutant.find('\n', at);
                nl != std::string::npos) {
              mutant.erase(nl, 1);
            }
            break;
        }
      }
      parse_or_typed_throw(mutant);
    }
  }
}

TEST(NetlistFuzz, ServedMalformedCircuitKeepsConnectionOpen) {
  // The daemon-side contract: garbage circuit text is a failed *request*
  // (typed error in the response), never a dead connection or daemon.
  char tmpl[] = "/tmp/xsfq_fuzz_XXXXXX";
  const std::string dir = mkdtemp(tmpl);
  serve::server_options options;
  options.socket_path = dir + "/served.sock";
  options.threads = 2;
  serve::server srv(options);
  serve::client cli(options.socket_path);

  const char* bad_sources[] = {
      "INPUT(a\n",                       // truncated
      "INPUT(a)\nOUTPUT(y)\ny = AND(y, a)\n",  // self-cycle
      "OUTPUT(y)\n",                     // undriven output
      "p = AND(q, a)\nq = AND(p, a)\n",  // cycle + undriven
  };
  for (const char* text : bad_sources) {
    serve::synth_request req;
    req.spec = "fuzz.bench";
    req.source = serve::circuit_source::bench_text;
    req.model = "fuzz";
    req.source_text = text;
    const serve::synth_response resp = cli.submit(req);
    EXPECT_FALSE(resp.ok) << text;
    EXPECT_FALSE(resp.error.empty()) << text;
    EXPECT_TRUE(cli.ping()) << text;  // connection survives every reject
  }
  // A real NUL mid-payload (not string-literal-truncated).
  serve::synth_request req;
  req.spec = "fuzz.bench";
  req.source = serve::circuit_source::bench_text;
  req.model = "fuzz";
  req.source_text = std::string(valid_bench);
  req.source_text[5] = '\0';
  const serve::synth_response resp = cli.submit(req);
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.error.find("NUL"), std::string::npos) << resp.error;
  EXPECT_TRUE(cli.ping());

  // And the daemon still serves good requests afterwards.
  const serve::synth_response good =
      cli.submit(serve::make_request_for_spec("c432"));
  EXPECT_TRUE(good.ok);
  srv.stop();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace xsfq
