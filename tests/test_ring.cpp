/// Tests for the consistent-hash ring (serve/ring.hpp): construction
/// validation, replica-set shape, the ~1/N movement bound on membership
/// change, cross-instance (stand-in for cross-process) determinism, and
/// pinned placements that freeze the hash function itself — the CI chaos
/// driver picks its kill victim in a different process from the fleet
/// client it kills, so placement must never drift between builds.
#include "serve/ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace xsfq {
namespace {

using serve::consistent_ring;

std::vector<std::string> fleet_ids(std::size_t n) {
  std::vector<std::string> ids;
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back("unix:/tmp/xsfq_fleet_" + std::to_string(i) + ".sock");
  }
  return ids;
}

TEST(ConsistentRing, RejectsDegenerateDefinitions) {
  EXPECT_THROW(consistent_ring({}), std::invalid_argument);
  EXPECT_THROW(consistent_ring({"unix:/a"}, /*vnodes=*/0),
               std::invalid_argument);
  EXPECT_THROW(consistent_ring({"unix:/a", "unix:/b", "unix:/a"}),
               std::invalid_argument);
}

TEST(ConsistentRing, RouteReturnsDistinctOwnersInPreferenceOrder) {
  const consistent_ring ring(fleet_ids(5));
  for (std::uint64_t key = 0; key < 500; ++key) {
    const auto owners = ring.route(key, 3);
    ASSERT_EQ(owners.size(), 3u);
    const std::set<std::size_t> distinct(owners.begin(), owners.end());
    EXPECT_EQ(distinct.size(), 3u) << "replica collision for key " << key;
    EXPECT_EQ(owners.front(), ring.primary(key));
    for (const auto o : owners) EXPECT_LT(o, ring.size());
  }
  // Replica clamping: more replicas than endpoints yields all endpoints,
  // zero is treated as one.
  EXPECT_EQ(ring.route(42, 99).size(), 5u);
  EXPECT_EQ(ring.route(42, 0).size(), 1u);
}

TEST(ConsistentRing, OwnerListOrderIndependentOfEndpointVectorOrder) {
  // Placement hashes the id strings, not their indices: a reshuffled
  // endpoint vector must produce the same owner *ids* for every key.
  auto ids = fleet_ids(4);
  const consistent_ring a(ids);
  std::swap(ids[0], ids[3]);
  std::swap(ids[1], ids[2]);
  const consistent_ring b(ids);
  for (std::uint64_t key = 0; key < 200; ++key) {
    const auto oa = a.route(key, 2);
    const auto ob = b.route(key, 2);
    ASSERT_EQ(oa.size(), ob.size());
    for (std::size_t i = 0; i < oa.size(); ++i) {
      EXPECT_EQ(a.id(oa[i]), b.id(ob[i])) << key;
    }
  }
}

TEST(ConsistentRing, MembershipChangeMovesAboutOneNthOfKeys) {
  // The consistent-hashing contract: growing N=4 to N=5 remaps ~1/5 of
  // the keyspace, not ~4/5 like modulo hashing would.  10k keys keeps the
  // binomial noise far from the asserted bounds.
  constexpr std::uint64_t num_keys = 10000;
  const consistent_ring before(fleet_ids(4));
  auto grown_ids = fleet_ids(5);
  const consistent_ring grown(grown_ids);

  std::uint64_t moved = 0;
  for (std::uint64_t key = 0; key < num_keys; ++key) {
    if (before.id(before.primary(key)) != grown.id(grown.primary(key))) {
      ++moved;
    }
  }
  // Ideal is 1/5 = 2000; vnode placement variance stays well inside 2x.
  EXPECT_GT(moved, num_keys / 10) << "suspiciously little movement";
  EXPECT_LT(moved, (num_keys * 2) / 5) << "far more than ~1/N moved";

  // Keys that did not move to the new endpoint keep their old primary:
  // removal (grown -> before) only reassigns the removed endpoint's keys.
  for (std::uint64_t key = 0; key < num_keys; ++key) {
    const auto& new_owner = grown.id(grown.primary(key));
    if (new_owner != grown_ids.back()) {
      EXPECT_EQ(new_owner, before.id(before.primary(key))) << key;
    }
  }
}

TEST(ConsistentRing, IndependentInstancesAgree) {
  // Two rings built from their own copies of the definition (as two
  // processes would) agree on every placement decision.
  const consistent_ring a(fleet_ids(3), 64);
  const consistent_ring b(fleet_ids(3), 64);
  for (std::uint64_t key = 1; key < 3000; key += 7) {
    EXPECT_EQ(a.route(key, 2), b.route(key, 2)) << key;
  }
}

TEST(ConsistentRing, HashFunctionIsFrozen) {
  // Pinned values: these fail if anyone "improves" the point hash, which
  // would silently break cross-process routing agreement (xsfq_client
  // --route in CI vs the fleet client under test) and invalidate every
  // recorded placement.  Update them only with a protocol version bump.
  EXPECT_EQ(consistent_ring::key_point(0), 0xe220a8397b1dcdafull);
  EXPECT_NE(consistent_ring::key_point(1), consistent_ring::key_point(2));
  EXPECT_NE(consistent_ring::endpoint_point("unix:/a", 0),
            consistent_ring::endpoint_point("unix:/a", 1));
  EXPECT_NE(consistent_ring::endpoint_point("unix:/a", 0),
            consistent_ring::endpoint_point("unix:/b", 0));

  // A full placement pin: 8 keys on a 3-endpoint ring, values recorded
  // from a known-good build.
  const consistent_ring ring(fleet_ids(3));
  const std::vector<std::size_t> recorded{2, 1, 2, 1, 0, 0, 0, 1};
  for (std::uint64_t key = 0; key < 8; ++key) {
    EXPECT_EQ(ring.primary(key), recorded[key]) << key;
  }
}

}  // namespace
}  // namespace xsfq
