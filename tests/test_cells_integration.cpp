#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "aig/simulate.hpp"
#include "baseline/rsfq.hpp"
#include "benchgen/registry.hpp"
#include "cells/cell_library.hpp"
#include "core/mapper.hpp"
#include "opt/script.hpp"
#include "pulsesim/pulse_sim.hpp"

namespace xsfq {
namespace {

TEST(CellLibrary, Table2Values) {
  const auto& lib = cell_library::sfq5ee();
  EXPECT_EQ(lib.jj_count(cell_type::jtl, false), 2u);
  EXPECT_EQ(lib.jj_count(cell_type::jtl, true), 7u);
  EXPECT_EQ(lib.jj_count(cell_type::la, false), 4u);
  EXPECT_EQ(lib.jj_count(cell_type::la, true), 12u);
  EXPECT_EQ(lib.jj_count(cell_type::fa, false), 4u);
  EXPECT_EQ(lib.jj_count(cell_type::droc, false), 13u);
  EXPECT_EQ(lib.jj_count(cell_type::droc_preload, false), 22u);
  EXPECT_EQ(lib.jj_count(cell_type::droc_preload, true), 36u);
  EXPECT_EQ(lib.jj_count(cell_type::splitter, false), 3u);
  EXPECT_DOUBLE_EQ(lib.spec(cell_type::la).delay_ps, 7.2);
  EXPECT_DOUBLE_EQ(lib.spec(cell_type::fa).delay_ps, 9.5);
  EXPECT_DOUBLE_EQ(lib.spec(cell_type::splitter).delay_ps, 5.1);
  EXPECT_DOUBLE_EQ(lib.spec(cell_type::droc).delay_ps, 6.7);
  EXPECT_DOUBLE_EQ(lib.spec(cell_type::droc).delay_qn_ps, 9.5);
  // Preload hardware = DC-to-SFQ (4) + merger (5) = 9 extra JJs.
  EXPECT_EQ(lib.jj_count(cell_type::droc_preload, false) -
                lib.jj_count(cell_type::droc, false),
            9u);
}

TEST(CellLibrary, LibertyOutputWellFormed) {
  const auto& lib = cell_library::sfq5ee();
  const std::string text = lib.to_liberty("xsfq_sfq5ee");
  EXPECT_NE(text.find("library(xsfq_sfq5ee)"), std::string::npos);
  for (const char* cell : {"cell(LA)", "cell(FA)", "cell(DROC)",
                           "cell(SPLIT)", "cell(LA_PTL)", "cell(DROC_P)"}) {
    EXPECT_NE(text.find(cell), std::string::npos) << cell;
  }
  // Balanced braces.
  EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
            std::count(text.begin(), text.end(), '}'));
}

// ----- end-to-end flow over every benchmark ---------------------------------

class FullFlow : public ::testing::TestWithParam<const char*> {};

TEST_P(FullFlow, OptimizeMapAndAccount) {
  const std::string name = GetParam();
  const aig g0 = benchgen::make_benchmark(name);
  const aig g = optimize(g0);
  // Optimization is verified behaviourally.
  if (g.num_registers() == 0) {
    EXPECT_TRUE(random_equivalent(g0, g, 32, 21)) << name;
  } else {
    EXPECT_TRUE(random_sequential_equivalent(g0, g, 4, 48)) << name;
  }

  const auto m = map_to_xsfq(g);
  m.netlist.check();
  const auto& st = m.stats;
  EXPECT_GT(st.la_cells + st.fa_cells, 0u) << name;
  // Duplication is bounded by the direct-mapping worst case.
  EXPECT_LE(st.duplication, 1.0) << name;
  EXPECT_GE(st.duplication, 0.0) << name;
  // Cost model identity.
  EXPECT_EQ(st.jj, 4 * (st.la_cells + st.fa_cells) + 3 * st.splitters +
                       13 * st.drocs_plain + 22 * st.drocs_preload)
      << name;
  // The baseline always costs more (the paper's central claim).
  const auto base = map_to_rsfq(g);
  EXPECT_GT(base.jj_without_clock, st.jj) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Combinational, FullFlow,
    ::testing::Values("c432", "c499", "c880", "c1355", "c1908", "c2670",
                      "c3540", "c5315", "c7552", "cavlc", "ctrl", "dec",
                      "int2float", "priority", "router", "voter_sop"));

INSTANTIATE_TEST_SUITE_P(Sequential, FullFlow,
                         ::testing::Values("s27", "s298", "s344", "s386",
                                           "s420.1", "s526", "s820",
                                           "s838.1"));

TEST(FullFlowHeavy, C6288PipelineSweepIsConsistent) {
  const aig g = optimize(benchgen::make_benchmark("c6288"));
  std::size_t previous_jj = 0;
  unsigned previous_depth = ~0u;
  for (unsigned k : {0u, 1u, 2u}) {
    mapping_params p;
    p.pipeline_stages = k;
    const auto m = map_to_xsfq(g, p);
    // JJ grows sublinearly with DROCs; depth shrinks (Table 5 trends).
    EXPECT_GT(m.stats.jj, previous_jj);
    EXPECT_LT(m.stats.depth, previous_depth);
    previous_jj = m.stats.jj;
    previous_depth = m.stats.depth;
  }
}

TEST(FullFlowHeavy, AverageSavingsInPaperRange) {
  // Table 4/6 headline: 4.5x average without clock tree accounting.  Our
  // regenerated circuits land in the same band; assert a sane floor.
  double product = 1.0;
  int count = 0;
  for (const char* name : {"c880", "c1908", "c3540", "int2float", "priority",
                           "s344", "s641", "s820"}) {
    const aig g = optimize(benchgen::make_benchmark(name));
    const auto base = map_to_rsfq(g);
    const auto ours = map_to_xsfq(g);
    const double ratio = static_cast<double>(base.jj_without_clock) /
                         static_cast<double>(ours.stats.jj);
    product *= ratio;
    ++count;
  }
  const double geo_mean = std::pow(product, 1.0 / count);
  EXPECT_GT(geo_mean, 2.0);
  EXPECT_LT(geo_mean, 40.0);
}

}  // namespace
}  // namespace xsfq
