#include "flow/flow.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "flow/batch_runner.hpp"

namespace xsfq {
namespace {

aig tiny_adder() {
  aig g;
  const signal a = g.create_pi("a");
  const signal b = g.create_pi("b");
  const signal c = g.create_pi("cin");
  g.create_po(g.create_xor(g.create_xor(a, b), c), "s");
  g.create_po(g.create_maj(a, b, c), "cout");
  return g;
}

TEST(Flow, StagesRunInOrderOverSharedContext) {
  std::vector<std::string> order;
  flow::flow f("test");
  f.add_stage("first", [&](flow::flow_context& ctx) {
     order.push_back("first");
     ctx.name = "tiny";
     ctx.network = tiny_adder();
   }).add_stage("second", [&](flow::flow_context& ctx) {
    order.push_back("second");
    EXPECT_EQ(ctx.name, "tiny");  // sees the first stage's writes
    EXPECT_GT(ctx.network.num_gates(), 0u);
  });
  EXPECT_EQ(f.num_stages(), 2u);

  const auto r = f.run();
  EXPECT_EQ(order, (std::vector<std::string>{"first", "second"}));
  EXPECT_EQ(r.name, "tiny");
  ASSERT_EQ(r.timings.size(), 2u);
  EXPECT_EQ(r.timings[0].stage, "first");
  EXPECT_EQ(r.timings[1].stage, "second");
  EXPECT_GE(r.total_ms, 0.0);
  EXPECT_EQ(r.stage_ms("nonexistent"), 0.0);
}

TEST(Flow, SynthesisFlowCollectsAllStats) {
  const auto r = flow::run_flow("c432");
  EXPECT_EQ(r.name, "c432");
  // optimize_stats are consistent with the network the flow returned.
  EXPECT_EQ(r.opt_stats.final_gates, r.optimized.num_gates());
  EXPECT_LE(r.opt_stats.final_gates, r.opt_stats.initial_gates);
  // mapping and baseline both ran on the optimized network.
  EXPECT_GT(r.mapped.stats.jj, 0u);
  EXPECT_GT(r.baseline.jj_without_clock, r.mapped.stats.jj);
  // generate + optimize + map + baseline were each timed.
  ASSERT_EQ(r.timings.size(), 4u);
  EXPECT_EQ(r.timings[0].stage, "generate");
  EXPECT_EQ(r.timings[1].stage, "optimize");
  EXPECT_EQ(r.timings[2].stage, "map");
  EXPECT_EQ(r.timings[3].stage, "baseline");
}

TEST(Flow, OptionsSkipStages) {
  flow::flow_options options;
  options.run_optimize = false;
  options.run_baseline = false;
  const auto r = flow::run_flow(tiny_adder(), "tiny", options);
  ASSERT_EQ(r.timings.size(), 1u);
  EXPECT_EQ(r.timings[0].stage, "map");
  EXPECT_EQ(r.baseline.jj_without_clock, 0u);
}

TEST(Flow, EmitVerilogStageProducesModule) {
  flow::flow_options options;
  options.emit_verilog = true;
  const auto r = flow::run_flow(tiny_adder(), "tiny", options);
  EXPECT_NE(r.verilog.find("module"), std::string::npos);
  EXPECT_GT(r.stage_ms("emit"), 0.0);
}

TEST(Flow, EmitWithoutMapThrows) {
  flow::flow f;
  f.add_stage(flow::stages::preset(tiny_adder(), "tiny"));
  f.add_stage(flow::stages::emit_verilog());
  EXPECT_THROW(f.run(), std::logic_error);
}

TEST(Flow, NamedPassStage) {
  flow::flow f;
  f.add_stage(flow::stages::preset(tiny_adder(), "tiny"));
  f.add_stage(flow::stages::pass("b"));
  const auto r = f.run();
  EXPECT_GT(r.optimized.num_gates(), 0u);
  ASSERT_EQ(r.timings.size(), 2u);
  EXPECT_EQ(r.timings[1].stage, "b");
}

TEST(Flow, MatchesManualSequence) {
  // The pass manager must produce exactly what the hand-rolled sequence
  // produced before this subsystem existed.
  const aig g = benchgen::make_benchmark("c432");
  const aig opt = optimize(g);
  const auto mapped = map_to_xsfq(opt);
  const auto base = map_to_rsfq(opt);

  const auto r = flow::run_flow("c432");
  EXPECT_EQ(r.optimized.num_gates(), opt.num_gates());
  EXPECT_EQ(r.mapped.stats.jj, mapped.stats.jj);
  EXPECT_EQ(r.mapped.stats.la_cells, mapped.stats.la_cells);
  EXPECT_EQ(r.mapped.stats.fa_cells, mapped.stats.fa_cells);
  EXPECT_EQ(r.mapped.stats.splitters, mapped.stats.splitters);
  EXPECT_EQ(r.baseline.jj_without_clock, base.jj_without_clock);
  EXPECT_EQ(r.baseline.jj_with_clock, base.jj_with_clock);
}

// ---------------------------------------------------------------------------
// batch_runner
// ---------------------------------------------------------------------------

std::vector<std::string> small_suite() {
  return {"c432", "dec", "int2float", "s27", "c499"};
}

TEST(BatchRunner, ResultsComeBackInInputOrder) {
  flow::batch_runner runner(3);
  EXPECT_EQ(runner.num_threads(), 3u);
  const auto report = runner.run(small_suite());
  ASSERT_EQ(report.entries.size(), 5u);
  const auto names = small_suite();
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_TRUE(report.entries[i].ok) << report.entries[i].error;
    EXPECT_EQ(report.entries[i].name, names[i]);
    EXPECT_EQ(report.entries[i].result.name, names[i]);
  }
  EXPECT_EQ(report.num_ok(), 5u);
  EXPECT_EQ(report.num_failed(), 0u);
  EXPECT_GT(report.wall_ms, 0.0);
}

TEST(BatchRunner, MultiThreadedMatchesSingleThreaded) {
  const auto names = small_suite();
  const auto single = flow::run_batch(names, {}, 1);
  const auto multi = flow::run_batch(names, {}, 4);
  ASSERT_EQ(single.entries.size(), multi.entries.size());
  EXPECT_EQ(single.threads, 1u);
  EXPECT_EQ(multi.threads, 4u);
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto& s = single.entries[i].result;
    const auto& m = multi.entries[i].result;
    ASSERT_TRUE(single.entries[i].ok && multi.entries[i].ok);
    EXPECT_EQ(s.name, m.name);
    EXPECT_EQ(s.optimized.num_gates(), m.optimized.num_gates());
    EXPECT_EQ(s.optimized.depth(), m.optimized.depth());
    EXPECT_EQ(s.mapped.stats.jj, m.mapped.stats.jj);
    EXPECT_EQ(s.mapped.stats.la_cells, m.mapped.stats.la_cells);
    EXPECT_EQ(s.mapped.stats.fa_cells, m.mapped.stats.fa_cells);
    EXPECT_EQ(s.mapped.stats.splitters, m.mapped.stats.splitters);
    EXPECT_EQ(s.mapped.stats.duplication, m.mapped.stats.duplication);
    EXPECT_EQ(s.baseline.jj_without_clock, m.baseline.jj_without_clock);
    EXPECT_EQ(s.baseline.jj_with_clock, m.baseline.jj_with_clock);
  }
  const auto sum_single = flow::summarize(single);
  const auto sum_multi = flow::summarize(multi);
  EXPECT_EQ(sum_single.xsfq_jj, sum_multi.xsfq_jj);
  EXPECT_EQ(sum_single.rsfq_jj, sum_multi.rsfq_jj);
  EXPECT_DOUBLE_EQ(sum_single.geomean_savings, sum_multi.geomean_savings);
}

TEST(BatchRunner, FailedFlowIsIsolated) {
  const auto report =
      flow::run_batch({"dec", "no_such_circuit", "int2float"}, {}, 2);
  ASSERT_EQ(report.entries.size(), 3u);
  EXPECT_TRUE(report.entries[0].ok);
  EXPECT_FALSE(report.entries[1].ok);
  EXPECT_FALSE(report.entries[1].error.empty());
  EXPECT_TRUE(report.entries[2].ok);
  EXPECT_EQ(report.num_failed(), 1u);
  EXPECT_EQ(report.ok_results().size(), 2u);
  // summarize only counts the successful circuits.
  EXPECT_EQ(flow::summarize(report).circuits, 2u);
}

TEST(BatchRunner, PoolIsReusableAcrossBatches) {
  flow::batch_runner runner(2);
  const auto first = runner.run({"dec", "int2float"});
  const auto second = runner.run({"s27"});
  EXPECT_EQ(first.num_ok(), 2u);
  EXPECT_EQ(second.num_ok(), 1u);
  EXPECT_EQ(second.entries[0].name, "s27");
}

TEST(BatchRunner, CustomFlowFactory) {
  flow::batch_runner runner(2);
  const auto report = runner.run(
      {"dec", "int2float"}, [](const std::string& name) {
        flow::flow f(name);
        f.add_stage(flow::stages::benchmark(name));
        f.add_stage(flow::stages::map());  // raw mapping, no optimize
        return f;
      });
  ASSERT_EQ(report.num_ok(), 2u);
  for (const auto& e : report.entries) {
    EXPECT_EQ(e.result.timings.size(), 2u);
    EXPECT_GT(e.result.mapped.stats.jj, 0u);
  }
}

TEST(BatchRunner, JobNameMismatchThrows) {
  flow::batch_runner runner(1);
  EXPECT_THROW(runner.run_jobs({"a", "b"}, {}), std::invalid_argument);
}

TEST(BatchRunner, ParseThreadCount) {
  EXPECT_EQ(flow::parse_thread_count("4"), 4u);
  EXPECT_EQ(flow::parse_thread_count("0"), 0u);
  EXPECT_EQ(flow::parse_thread_count("256"), 256u);
  EXPECT_FALSE(flow::parse_thread_count("-1").has_value());
  EXPECT_FALSE(flow::parse_thread_count("257").has_value());
  EXPECT_FALSE(flow::parse_thread_count("four").has_value());
  EXPECT_FALSE(flow::parse_thread_count("4x").has_value());
  EXPECT_FALSE(flow::parse_thread_count("").has_value());
  EXPECT_FALSE(flow::parse_thread_count(nullptr).has_value());
}

TEST(Flow, OptimizeStageSurfacesSimCounters) {
  flow::flow_options options;
  options.opt.validate_passes = true;
  options.opt.validate_rounds = 8;
  const auto r = flow::run_flow("c432", options);
  bool found = false;
  for (const auto& t : r.timings) {
    if (t.stage != "optimize") continue;
    found = true;
    EXPECT_GT(t.counters.sim_words, 0u);
    EXPECT_GT(t.counters.sim_node_evals, 0u);
  }
  EXPECT_TRUE(found);
  // Validation must not change the synthesis outcome.
  const auto plain = flow::run_flow("c432");
  EXPECT_EQ(r.optimized.num_gates(), plain.optimized.num_gates());
  EXPECT_EQ(r.mapped.stats.jj, plain.mapped.stats.jj);
}

TEST(Flow, FingerprintSeparatesOptionSets) {
  const flow::flow_options base;
  EXPECT_EQ(flow::fingerprint(base), flow::fingerprint(flow::flow_options{}));
  flow::flow_options polarity = base;
  polarity.map.polarity = polarity_mode::direct_dual_rail;
  EXPECT_NE(flow::fingerprint(base), flow::fingerprint(polarity));
  flow::flow_options no_opt = base;
  no_opt.run_optimize = false;
  EXPECT_NE(flow::fingerprint(base), flow::fingerprint(no_opt));
  flow::flow_options rounds = base;
  rounds.opt.max_rounds = 2;
  EXPECT_NE(flow::fingerprint(base), flow::fingerprint(rounds));
  // Differing map options share the optimize-stage fingerprint.
  EXPECT_EQ(flow::fingerprint(base.opt), flow::fingerprint(polarity.opt));
}

// ---------------------------------------------------------------------------
// Work stealing.
// ---------------------------------------------------------------------------

TEST(BatchRunner, WorkStealingRebalancesSkewedJobs) {
  flow::batch_runner runner(2);
  // Round-robin submission parks jobs 0,2,4,6 on worker 0 and 1,3,5 on
  // worker 1.  Job 0 blocks worker 0, so worker 1 must steal 2/4/6 from
  // worker 0's deque to finish the batch.
  std::vector<std::string> names;
  std::vector<std::function<flow::flow_result()>> jobs;
  for (int i = 0; i < 7; ++i) {
    const std::string name = "job" + std::to_string(i);
    names.push_back(name);
    jobs.push_back([name, i] {
      if (i == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
      }
      flow::flow_result r;
      r.name = name;
      return r;
    });
  }
  const auto report = runner.run_jobs(names, std::move(jobs));
  ASSERT_EQ(report.entries.size(), 7u);
  for (int i = 0; i < 7; ++i) {
    EXPECT_TRUE(report.entries[i].ok);
    EXPECT_EQ(report.entries[i].name, "job" + std::to_string(i));
    EXPECT_EQ(report.entries[i].result.name, report.entries[i].name);
  }
  EXPECT_GE(runner.steals(), 1u);
}

TEST(BatchRunner, StealingKeepsRealFlowsByteIdenticalToSingleThread) {
  // Skewed sizes (c3540 first) force steals on the multi-threaded runner;
  // every deterministic field must still match the 1-thread run.
  const std::vector<std::string> names = {"c3540", "s27", "dec", "c432",
                                          "int2float", "ctrl"};
  flow::batch_runner single(1);
  flow::batch_runner multi(3);
  const auto a = single.run(names);
  const auto b = multi.run(names);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    ASSERT_TRUE(a.entries[i].ok && b.entries[i].ok);
    EXPECT_EQ(a.entries[i].name, b.entries[i].name);
    EXPECT_EQ(a.entries[i].result.optimized.num_gates(),
              b.entries[i].result.optimized.num_gates());
    EXPECT_EQ(a.entries[i].result.mapped.stats.jj,
              b.entries[i].result.mapped.stats.jj);
    EXPECT_EQ(a.entries[i].result.baseline.jj_without_clock,
              b.entries[i].result.baseline.jj_without_clock);
  }
}

// ---------------------------------------------------------------------------
// Cross-run result cache.
// ---------------------------------------------------------------------------

TEST(BatchRunner, ResultCacheServesRepeatedBatches) {
  flow::batch_runner runner(2);
  EXPECT_TRUE(runner.cache_enabled());
  const auto names = small_suite();
  const auto first = runner.run(names);
  const auto after_first = runner.cache_stats();
  EXPECT_EQ(after_first.full_hits, 0u);
  EXPECT_EQ(after_first.full_misses, names.size());
  EXPECT_EQ(after_first.opt_misses, names.size());

  const auto second = runner.run(names);
  const auto after_second = runner.cache_stats();
  EXPECT_EQ(after_second.full_hits, names.size());
  EXPECT_EQ(after_second.full_misses, names.size());

  ASSERT_EQ(first.entries.size(), second.entries.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    ASSERT_TRUE(second.entries[i].ok) << second.entries[i].error;
    EXPECT_EQ(second.entries[i].result.name, names[i]);
    EXPECT_EQ(first.entries[i].result.optimized.num_gates(),
              second.entries[i].result.optimized.num_gates());
    EXPECT_EQ(first.entries[i].result.mapped.stats.jj,
              second.entries[i].result.mapped.stats.jj);
    EXPECT_EQ(first.entries[i].result.baseline.jj_with_clock,
              second.entries[i].result.baseline.jj_with_clock);
    // Cached results keep the stage structure of a live run.
    ASSERT_EQ(second.entries[i].result.timings.size(),
              first.entries[i].result.timings.size());
    EXPECT_EQ(second.entries[i].result.timings.front().stage, "generate");
  }
}

TEST(BatchRunner, OptimizeCacheSharedAcrossMappingOptions) {
  flow::batch_runner runner(1);  // sequential: hit counts are deterministic
  std::vector<std::string> names = {"c432", "c432", "c432"};
  std::vector<flow::flow_options> options(3);
  options[0].map.polarity = polarity_mode::optimized;
  options[1].map.polarity = polarity_mode::positive_outputs;
  options[2].map.polarity = polarity_mode::direct_dual_rail;
  for (auto& o : options) o.run_baseline = false;

  const auto report = runner.run(names, options);
  ASSERT_EQ(report.num_ok(), 3u);
  const auto stats = runner.cache_stats();
  EXPECT_EQ(stats.full_misses, 3u);  // three distinct option fingerprints
  EXPECT_EQ(stats.full_hits, 0u);
  EXPECT_EQ(stats.opt_misses, 1u);  // optimized once...
  EXPECT_EQ(stats.opt_hits, 2u);    // ...then reused for the other mappings

  // Same optimized network, different mappings.
  EXPECT_EQ(report.entries[0].result.optimized.num_gates(),
            report.entries[1].result.optimized.num_gates());
  EXPECT_NE(report.entries[0].result.mapped.stats.jj,
            report.entries[2].result.mapped.stats.jj);
}

TEST(BatchRunner, CacheDisabledBypassesLookups) {
  flow::batch_runner runner(1);
  runner.set_cache_enabled(false);
  EXPECT_FALSE(runner.cache_enabled());
  const auto first = runner.run({"dec"});
  const auto second = runner.run({"dec"});
  const auto stats = runner.cache_stats();
  EXPECT_EQ(stats.full_hits + stats.full_misses, 0u);
  EXPECT_EQ(stats.opt_hits + stats.opt_misses, 0u);
  ASSERT_TRUE(first.entries[0].ok && second.entries[0].ok);
  EXPECT_EQ(first.entries[0].result.mapped.stats.jj,
            second.entries[0].result.mapped.stats.jj);
}

TEST(BatchRunner, CachedResultMatchesDirectFlow) {
  flow::batch_runner runner(1);
  (void)runner.run({"c499"});
  const auto cached = runner.run({"c499"});  // served from the full cache
  ASSERT_EQ(runner.cache_stats().full_hits, 1u);
  const auto direct = flow::run_flow("c499");
  const auto& r = cached.entries[0].result;
  EXPECT_EQ(r.name, direct.name);
  EXPECT_EQ(r.optimized.num_gates(), direct.optimized.num_gates());
  EXPECT_EQ(r.optimized.depth(), direct.optimized.depth());
  EXPECT_EQ(r.opt_stats.final_gates, direct.opt_stats.final_gates);
  EXPECT_EQ(r.mapped.stats.jj, direct.mapped.stats.jj);
  EXPECT_EQ(r.mapped.stats.splitters, direct.mapped.stats.splitters);
  EXPECT_EQ(r.baseline.jj_without_clock, direct.baseline.jj_without_clock);
  ASSERT_EQ(r.timings.size(), direct.timings.size());
  for (std::size_t i = 0; i < r.timings.size(); ++i) {
    EXPECT_EQ(r.timings[i].stage, direct.timings[i].stage);
  }
}

TEST(BatchRunner, ClearCacheForgetsEntries) {
  flow::batch_runner runner(1);
  (void)runner.run({"dec"});
  runner.clear_cache();
  (void)runner.run({"dec"});
  const auto stats = runner.cache_stats();
  EXPECT_EQ(stats.full_hits, 0u);
  EXPECT_EQ(stats.full_misses, 2u);
}

TEST(BatchRunner, PerEntryOptionsSizeMismatchThrows) {
  flow::batch_runner runner(1);
  EXPECT_THROW(runner.run({"a", "b"}, std::vector<flow::flow_options>(1)),
               std::invalid_argument);
}

TEST(BatchRunner, SummarizeAggregatesDeterministically) {
  const auto report = flow::run_batch({"dec", "c432"}, {}, 2);
  ASSERT_EQ(report.num_ok(), 2u);
  const auto s = flow::summarize(report);
  EXPECT_EQ(s.circuits, 2u);
  const auto& a = report.entries[0].result;
  const auto& b = report.entries[1].result;
  EXPECT_EQ(s.xsfq_jj, a.mapped.stats.jj + b.mapped.stats.jj);
  EXPECT_EQ(s.rsfq_jj,
            a.baseline.jj_without_clock + b.baseline.jj_without_clock);
  EXPECT_EQ(s.aig_gates, a.optimized.num_gates() + b.optimized.num_gates());
  EXPECT_GT(s.geomean_savings, 1.0);
  EXPECT_GT(s.geomean_savings_clock, s.geomean_savings);
}

}  // namespace
}  // namespace xsfq
