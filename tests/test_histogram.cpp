/// Tests for util/histogram: the fixed log-bucket latency histogram behind
/// the serve daemon's server_stats scrape — bucket boundary math, recording,
/// merging (the per-worker recycle/merge-on-read pattern), quantiles, and
/// the named histogram_set.
#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace xsfq {
namespace {

TEST(LogHistogram, BucketBoundaryMath) {
  // Bucket i spans [2^i, 2^(i+1)) microseconds.
  EXPECT_DOUBLE_EQ(log_histogram::bucket_lower_ms(0), 0.001);
  EXPECT_DOUBLE_EQ(log_histogram::bucket_upper_ms(0), 0.002);
  EXPECT_DOUBLE_EQ(log_histogram::bucket_lower_ms(10), 1.024);
  EXPECT_DOUBLE_EQ(log_histogram::bucket_upper_ms(10), 2.048);

  // Sub-microsecond, zero, negative, and NaN all land in bucket 0 instead
  // of indexing out of range.
  EXPECT_EQ(log_histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(log_histogram::bucket_index(-3.0), 0u);
  EXPECT_EQ(log_histogram::bucket_index(0.0005), 0u);
  EXPECT_EQ(log_histogram::bucket_index(
                std::numeric_limits<double>::quiet_NaN()),
            0u);

  // Exact powers of two microseconds open their own bucket.
  EXPECT_EQ(log_histogram::bucket_index(0.001), 0u);   // 1 us
  EXPECT_EQ(log_histogram::bucket_index(0.002), 1u);   // 2 us
  EXPECT_EQ(log_histogram::bucket_index(0.0039), 1u);  // just under 4 us
  EXPECT_EQ(log_histogram::bucket_index(0.004), 2u);
  EXPECT_EQ(log_histogram::bucket_index(1.024), 10u);  // 1.024 ms
  EXPECT_EQ(log_histogram::bucket_index(1000.0), 19u);  // ~1 s

  // The top bucket absorbs everything beyond the covered range.
  EXPECT_EQ(log_histogram::bucket_index(1e12),
            log_histogram::num_buckets - 1);
  EXPECT_EQ(log_histogram::bucket_index(
                std::numeric_limits<double>::infinity()),
            log_histogram::num_buckets - 1);

  // Every bucket's lower bound indexes back to itself (self-consistency).
  for (std::size_t i = 0; i < log_histogram::num_buckets; ++i) {
    EXPECT_EQ(log_histogram::bucket_index(log_histogram::bucket_lower_ms(i)),
              i)
        << i;
  }
}

TEST(LogHistogram, RecordAndAccessors) {
  log_histogram h;
  EXPECT_EQ(h.count(), 0u);
  h.record(1.5);   // bucket 10 ([1.024, 2.048) ms)
  h.record(1.9);   // same bucket
  h.record(100.0); // bucket 16
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum_ms(), 103.4);
  EXPECT_DOUBLE_EQ(h.max_ms(), 100.0);
  EXPECT_EQ(h.buckets()[10], 2u);
  EXPECT_EQ(h.buckets()[16], 1u);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum_ms(), 0.0);
  EXPECT_DOUBLE_EQ(h.max_ms(), 0.0);
  for (const auto b : h.buckets()) EXPECT_EQ(b, 0u);
}

TEST(LogHistogram, MergePreservesAllSamples) {
  log_histogram worker_a;
  log_histogram worker_b;
  worker_a.record(0.5);
  worker_a.record(2.0);
  worker_b.record(2.0);
  worker_b.record(512.0);

  log_histogram merged;
  merged.merge(worker_a);
  merged.merge(worker_b);
  EXPECT_EQ(merged.count(), 4u);
  EXPECT_DOUBLE_EQ(merged.sum_ms(), 516.5);
  EXPECT_DOUBLE_EQ(merged.max_ms(), 512.0);
  std::uint64_t total = 0;
  for (const auto b : merged.buckets()) total += b;
  EXPECT_EQ(total, 4u);
  // Merging is additive, not destructive: the sources are unchanged.
  EXPECT_EQ(worker_a.count(), 2u);
  EXPECT_EQ(worker_b.count(), 2u);
}

TEST(LogHistogram, QuantileReturnsBucketUpperBound) {
  log_histogram h;
  EXPECT_DOUBLE_EQ(h.quantile_ms(0.5), 0.0);  // empty: no estimate
  for (int i = 0; i < 90; ++i) h.record(1.5);    // bucket 10
  for (int i = 0; i < 10; ++i) h.record(1000.0); // bucket 19
  // p50 sits in the dense bucket, p99 in the tail bucket; the estimate is
  // the containing bucket's upper bound (conservative).
  EXPECT_DOUBLE_EQ(h.quantile_ms(0.5), log_histogram::bucket_upper_ms(10));
  EXPECT_DOUBLE_EQ(h.quantile_ms(0.99), log_histogram::bucket_upper_ms(19));
}

TEST(HistogramSet, FindOrCreateAndMerge) {
  histogram_set live;
  live.at("queue_wait").record(0.1);
  live.at("queue_wait").record(0.2);
  live.at("stage:optimize").record(25.0);
  EXPECT_EQ(live.entries().size(), 2u);
  EXPECT_EQ(live.at("queue_wait").count(), 2u);

  // The recycle pattern: merge a connection's set into the retired set,
  // matching histograms by name, creating absent ones.
  histogram_set retired;
  retired.at("queue_wait").record(0.4);
  live.merge_into(retired);
  EXPECT_EQ(retired.at("queue_wait").count(), 3u);
  EXPECT_EQ(retired.at("stage:optimize").count(), 1u);

  live.reset_counts();
  EXPECT_EQ(live.at("queue_wait").count(), 0u);
  // Names survive a reset — the whole point of recycling.
  EXPECT_EQ(live.entries().size(), 2u);
}

}  // namespace
}  // namespace xsfq
