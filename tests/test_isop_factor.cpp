#include <gtest/gtest.h>

#include "util/factor.hpp"
#include "util/isop.hpp"
#include "util/rng.hpp"

namespace xsfq {
namespace {

truth_table random_table(unsigned n, rng& gen) {
  truth_table f(n);
  for (std::uint64_t m = 0; m < f.num_bits(); ++m) {
    if (gen.flip()) f.set_bit(m);
  }
  return f;
}

TEST(Isop, CoversExactFunction) {
  rng gen(3);
  for (unsigned n = 1; n <= 8; ++n) {
    for (int round = 0; round < 10; ++round) {
      const auto f = random_table(n, gen);
      const auto cover = isop(f);
      EXPECT_EQ(cover_to_table(cover, n), f) << "n=" << n;
    }
  }
}

TEST(Isop, ConstantsAndLiterals) {
  EXPECT_TRUE(isop(truth_table::zeros(4)).empty());
  const auto ones_cover = isop(truth_table::ones(4));
  ASSERT_EQ(ones_cover.size(), 1u);
  EXPECT_EQ(ones_cover[0].num_literals(), 0u);
  const auto lit = isop(truth_table::nth_var(4, 2));
  ASSERT_EQ(lit.size(), 1u);
  EXPECT_EQ(lit[0].pos, 1u << 2);
  EXPECT_EQ(lit[0].neg, 0u);
}

TEST(Isop, RespectsDontCares) {
  // onset = x0&x1, dc = x0&~x1: a cover may collapse to just x0.
  const auto onset = truth_table::nth_var(2, 0) & truth_table::nth_var(2, 1);
  const auto dc = truth_table::nth_var(2, 0) & ~truth_table::nth_var(2, 1);
  const auto cover = isop(onset, dc);
  const auto result = cover_to_table(cover, 2);
  // Between onset and onset|dc.
  EXPECT_TRUE((onset & ~result).is_const0());
  EXPECT_TRUE((result & ~(onset | dc)).is_const0());
  EXPECT_EQ(cover_literals(cover), 1u);  // collapses to the single literal x0
}

TEST(Isop, IrredundantOnXor) {
  // XOR needs exactly 2 cubes of 2 literals each.
  const auto f = truth_table::nth_var(2, 0) ^ truth_table::nth_var(2, 1);
  const auto cover = isop(f);
  EXPECT_EQ(cover.size(), 2u);
  EXPECT_EQ(cover_literals(cover), 4u);
}

TEST(Factor, EvaluatesToOriginal) {
  rng gen(17);
  for (unsigned n = 1; n <= 6; ++n) {
    for (int round = 0; round < 20; ++round) {
      const auto f = random_table(n, gen);
      const auto expr = factor_function(f);
      for (std::uint64_t m = 0; m < f.num_bits(); ++m) {
        EXPECT_EQ(expr->evaluate(m), f.bit(m))
            << "n=" << n << " minterm=" << m << " expr=" << expr->to_string();
      }
    }
  }
}

TEST(Factor, Constants) {
  EXPECT_EQ(factor_function(truth_table::zeros(3))->op,
            factor_expr::kind::constant);
  EXPECT_FALSE(factor_function(truth_table::zeros(3))->const_value);
  EXPECT_TRUE(factor_function(truth_table::ones(3))->const_value);
}

TEST(Factor, SharesCommonLiteral) {
  // Factoring the explicit cover {ab, ac} produces a & (b | c): 3 literals.
  std::vector<cube> cover(2);
  cover[0].pos = 0b011;  // a & b
  cover[1].pos = 0b101;  // a & c
  const auto expr = factor_cover(cover);
  EXPECT_EQ(expr->num_literals(), 3u) << expr->to_string();
  // Through ISOP the cover may be disjoint (ab, a!bc) but factoring still
  // extracts the shared literal: at most 4 literals, never the naive 5.
  const auto a = truth_table::nth_var(3, 0);
  const auto b = truth_table::nth_var(3, 1);
  const auto c = truth_table::nth_var(3, 2);
  const auto expr2 = factor_function((a & b) | (a & c));
  EXPECT_LE(expr2->num_literals(), 4u) << expr2->to_string();
}

TEST(Factor, LiteralCountNeverExceedsCover) {
  rng gen(23);
  for (int round = 0; round < 30; ++round) {
    const auto f = random_table(5, gen);
    const auto cover = isop(f);
    const auto expr = factor_cover(cover);
    EXPECT_LE(expr->num_literals(), cover_literals(cover));
  }
}

}  // namespace
}  // namespace xsfq
