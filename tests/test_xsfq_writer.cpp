#include <algorithm>
#include <gtest/gtest.h>

#include "benchgen/registry.hpp"
#include "core/xsfq_writer.hpp"
#include "opt/script.hpp"

namespace xsfq {
namespace {

TEST(XsfqWriter, VerilogContainsAllCells) {
  const aig g = optimize(benchgen::make_benchmark("cavlc"));
  const auto m = map_to_xsfq(g);
  const std::string v = write_xsfq_verilog_string(m, "cavlc");
  EXPECT_NE(v.find("module cavlc"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // Instance counts match the netlist exactly.
  auto count_occurrences = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = v.find(needle); pos != std::string::npos;
         pos = v.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count_occurrences("\n  LA u"), m.stats.la_cells);
  EXPECT_EQ(count_occurrences("\n  FA u"), m.stats.fa_cells);
  EXPECT_EQ(count_occurrences("\n  SPLIT u"), m.stats.splitters);
}

TEST(XsfqWriter, SequentialVerilogClosesFeedback) {
  const aig g = optimize(benchgen::make_benchmark("s27"));
  mapping_params p;
  p.reg_style = register_style::pair_boundary;
  const auto m = map_to_xsfq(g, p);
  const std::string v = write_xsfq_verilog_string(m, "s27");
  EXPECT_NE(v.find("DROC_P"), std::string::npos);
  EXPECT_NE(v.find(".trg(trg"), std::string::npos);
  // Every boundary DROC data input references a wire, not an empty name.
  EXPECT_EQ(v.find("(.d(),"), std::string::npos);
}

TEST(XsfqWriter, DotIsBalancedAndAnnotated) {
  const aig g = optimize(benchgen::make_benchmark("c432"));
  mapping_params p;
  p.pipeline_stages = 1;
  const auto m = map_to_xsfq(g, p);
  const std::string dot = write_xsfq_dot_string(m, "c432");
  EXPECT_NE(dot.find("digraph c432"), std::string::npos);
  EXPECT_NE(dot.find("rank 1"), std::string::npos);
  EXPECT_NE(dot.find("rank 2"), std::string::npos);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(XsfqWriter, NamesAreSanitized) {
  aig g;
  const signal a = g.create_pi("a[0]");
  g.create_po(a, "out.q");
  const auto m = map_to_xsfq(g);
  const std::string v = write_xsfq_verilog_string(m, "weird-name");
  EXPECT_NE(v.find("module weird_name"), std::string::npos);
  EXPECT_NE(v.find("a_0__p"), std::string::npos);
  EXPECT_NE(v.find("out_q"), std::string::npos);
  EXPECT_EQ(v.find('['), std::string::npos);
}

}  // namespace
}  // namespace xsfq
