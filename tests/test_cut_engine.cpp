/// Parity tests for the allocation-free cut engine and opt_engine: the arena
/// enumeration must match a straightforward reference implementation cut for
/// cut (leaves, order, functions), optimize must reproduce the recorded seed
/// results on the ISCAS circuits, and every pass must stay simulation-
/// equivalent when run through one reused engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "aig/cuts.hpp"
#include "aig/simulate.hpp"
#include "benchgen/registry.hpp"
#include "opt/balance.hpp"
#include "opt/opt_engine.hpp"
#include "opt/script.hpp"
#include "util/rng.hpp"

namespace xsfq {
namespace {

/// Deterministic random AIG generator for property testing.
aig random_aig(unsigned num_pis, unsigned num_gates, std::uint64_t seed) {
  rng gen(seed);
  aig g;
  std::vector<signal> pool;
  for (unsigned i = 0; i < num_pis; ++i) pool.push_back(g.create_pi());
  for (unsigned i = 0; i < num_gates; ++i) {
    const signal a = pool[gen.below(pool.size())] ^ gen.flip();
    const signal b = pool[gen.below(pool.size())] ^ gen.flip();
    pool.push_back(g.create_and(a, b));
  }
  for (unsigned i = 0; i < 4 && i < pool.size(); ++i) {
    g.create_po(pool[pool.size() - 1 - i] ^ gen.flip());
  }
  return g.cleanup();
}

// ----- reference enumerator (the historical vector-of-vectors algorithm) ---

struct ref_cut {
  std::vector<aig::node_index> leaves;
  truth_table function;
  std::uint64_t signature = 0;

  [[nodiscard]] bool dominates(const ref_cut& other) const {
    if (leaves.size() > other.leaves.size()) return false;
    if ((signature & ~other.signature) != 0) return false;
    return std::includes(other.leaves.begin(), other.leaves.end(),
                         leaves.begin(), leaves.end());
  }
};

std::uint64_t ref_signature(const std::vector<aig::node_index>& leaves) {
  std::uint64_t s = 0;
  for (auto l : leaves) s |= std::uint64_t{1} << (l & 63u);
  return s;
}

bool ref_merge(const std::vector<aig::node_index>& a,
               const std::vector<aig::node_index>& b, unsigned k,
               std::vector<aig::node_index>& out) {
  out.clear();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() || j < b.size()) {
    if (out.size() > k) return false;
    if (j == b.size() || (i < a.size() && a[i] < b[j])) {
      out.push_back(a[i++]);
    } else if (i == a.size() || b[j] < a[i]) {
      out.push_back(b[j++]);
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  return out.size() <= k;
}

/// Bit-by-bit re-expression over a superset leaf set (the old hot loop).
truth_table ref_expand(const truth_table& t,
                       const std::vector<aig::node_index>& from,
                       const std::vector<aig::node_index>& to) {
  const auto num_vars = static_cast<unsigned>(to.size());
  std::vector<unsigned> position(from.size());
  for (std::size_t i = 0; i < from.size(); ++i) {
    const auto it = std::lower_bound(to.begin(), to.end(), from[i]);
    position[i] = static_cast<unsigned>(it - to.begin());
  }
  truth_table result(num_vars);
  const std::uint64_t bits = result.num_bits();
  for (std::uint64_t m = 0; m < bits; ++m) {
    std::uint64_t src = 0;
    for (std::size_t i = 0; i < from.size(); ++i) {
      if ((m >> position[i]) & 1u) src |= std::uint64_t{1} << i;
    }
    if (t.bit(src)) result.set_bit(m);
  }
  return result;
}

node_map<std::vector<ref_cut>> ref_enumerate(const aig& network,
                                             const cut_params& params) {
  node_map<std::vector<ref_cut>> cuts(network);
  auto make_trivial = [](aig::node_index n) {
    ref_cut c;
    c.leaves = {n};
    c.function = truth_table::nth_var(1, 0);
    c.signature = ref_signature(c.leaves);
    return c;
  };
  network.foreach_ci([&](signal s, std::size_t) {
    cuts[s.index()].push_back(make_trivial(s.index()));
  });
  {
    ref_cut c;
    c.function = truth_table::zeros(0);
    cuts[0].push_back(c);
  }
  std::vector<aig::node_index> merged;
  network.foreach_gate([&](aig::node_index n) {
    const signal f0 = network.fanin0(n);
    const signal f1 = network.fanin1(n);
    auto& out = cuts[n];
    for (const ref_cut& c0 : cuts[f0.index()]) {
      for (const ref_cut& c1 : cuts[f1.index()]) {
        if (!ref_merge(c0.leaves, c1.leaves, params.cut_size, merged)) {
          continue;
        }
        ref_cut c;
        c.leaves = merged;
        c.signature = ref_signature(c.leaves);
        bool dominated = false;
        for (const ref_cut& existing : out) {
          if (existing.dominates(c)) {
            dominated = true;
            break;
          }
        }
        if (dominated) continue;
        std::erase_if(out,
                      [&](const ref_cut& existing) { return c.dominates(existing); });
        const truth_table t0 = ref_expand(c0.function, c0.leaves, c.leaves);
        const truth_table t1 = ref_expand(c1.function, c1.leaves, c.leaves);
        c.function = (f0.is_complemented() ? ~t0 : t0) &
                     (f1.is_complemented() ? ~t1 : t1);
        out.push_back(std::move(c));
        if (out.size() >= params.cut_limit) break;
      }
      if (out.size() >= params.cut_limit) break;
    }
    if (params.include_trivial) out.push_back(make_trivial(n));
  });
  return cuts;
}

void expect_identical_cut_sets(const aig& g, const cut_params& params) {
  const auto reference = ref_enumerate(g, params);
  const cut_set engine_cuts = enumerate_cuts(g, params);
  g.foreach_node([&](aig::node_index n) {
    const auto set = engine_cuts[n];
    ASSERT_EQ(set.size(), reference[n].size()) << "node " << n;
    for (std::size_t i = 0; i < set.size(); ++i) {
      const cut_view c = set[i];
      const ref_cut& r = reference[n][i];
      EXPECT_TRUE(std::ranges::equal(c.leaves(), r.leaves))
          << "node " << n << " cut " << i;
      EXPECT_EQ(c.signature(), r.signature) << "node " << n << " cut " << i;
      EXPECT_EQ(c.function(), r.function) << "node " << n << " cut " << i;
    }
  });
}

TEST(CutEngine, MatchesReferenceEnumerationC432) {
  const aig g = benchgen::make_benchmark("c432");
  expect_identical_cut_sets(g, {4, 10, true});
  expect_identical_cut_sets(g, {6, 8, true});
}

TEST(CutEngine, MatchesReferenceOnRandomNetworks) {
  for (std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    expect_identical_cut_sets(random_aig(6, 80, seed), {4, 10, true});
    expect_identical_cut_sets(random_aig(8, 120, seed + 100), {5, 6, false});
  }
}

TEST(CutEngine, ReusedEngineMatchesFreshEngine) {
  const aig a = benchgen::make_benchmark("c432");
  const aig b = random_aig(6, 90, 7);
  cut_engine reused;
  // Warm the arena on a different network first, then on the target: the
  // recycled buffers must not leak state between enumerations.
  reused.enumerate(b, {4, 10, true});
  const cut_set& warm = reused.enumerate(a, {4, 10, true});
  const cut_set fresh = enumerate_cuts(a, {4, 10, true});
  ASSERT_EQ(warm.num_cuts(), fresh.num_cuts());
  ASSERT_EQ(warm.num_leaf_refs(), fresh.num_leaf_refs());
  a.foreach_node([&](aig::node_index n) {
    const auto ws = warm[n];
    const auto fs = fresh[n];
    ASSERT_EQ(ws.size(), fs.size());
    for (std::size_t i = 0; i < ws.size(); ++i) {
      EXPECT_TRUE(std::ranges::equal(ws[i].leaves(), fs[i].leaves()));
      EXPECT_EQ(ws[i].function(), fs[i].function());
    }
  });
}

TEST(CutEngine, MffcCalculatorMatchesFreeFunction) {
  const aig g = benchgen::make_benchmark("c880");
  const auto fanout = g.compute_fanout_counts();
  const auto cuts = enumerate_cuts(g, {4, 10, true});
  mffc_calculator calc;
  calc.attach(g);
  g.foreach_gate([&](aig::node_index n) {
    for (const cut_view c : cuts[n]) {
      const std::vector<aig::node_index> leaves(c.leaves().begin(),
                                                c.leaves().end());
      EXPECT_EQ(calc.size(n, c.leaves()), mffc_size(g, n, leaves, fanout));
    }
  });
  EXPECT_GT(calc.num_queries(), 0u);
}

// ----- golden optimize results (recorded from the seed implementation) -----

TEST(CutEngine, OptimizeReproducesSeedResults) {
  struct golden {
    const char* name;
    std::size_t gates;
    unsigned depth;
  };
  // Recorded from the pre-refactor engine (PR 1 tree, gcc Release).
  const golden expected[] = {{"c432", 143, 30}, {"c880", 449, 38},
                             {"c1908", 321, 20}};
  for (const auto& e : expected) {
    const aig g = benchgen::make_benchmark(e.name);
    const aig o = optimize(g);
    EXPECT_EQ(o.num_gates(), e.gates) << e.name;
    EXPECT_EQ(o.depth(), e.depth) << e.name;
    EXPECT_TRUE(random_equivalent(g, o, 64, 5)) << e.name;
  }
}

TEST(CutEngine, ReusedOptEngineMatchesFreeFunctions) {
  const aig g = benchgen::make_benchmark("c1908");
  opt_engine engine;
  // Passes through one engine, interleaved, must equal the one-shot free
  // functions (which construct a throwaway engine each).
  const aig b1 = engine.balance(g);
  const aig b2 = balance(g);
  EXPECT_EQ(b1.num_gates(), b2.num_gates());
  EXPECT_EQ(b1.depth(), b2.depth());
  const aig r1 = engine.rewrite(b1);
  const aig r2 = rewrite(b2);
  EXPECT_EQ(r1.num_gates(), r2.num_gates());
  EXPECT_EQ(r1.depth(), r2.depth());
  const aig f1 = engine.refactor(r1);
  const aig f2 = refactor(r2);
  EXPECT_EQ(f1.num_gates(), f2.num_gates());
  EXPECT_EQ(f1.depth(), f2.depth());
  EXPECT_TRUE(random_equivalent(f1, f2, 32, 3));

  optimize_stats st;
  const aig o1 = engine.optimize(g, {}, &st);
  const aig o2 = optimize(g);
  EXPECT_EQ(o1.num_gates(), o2.num_gates());
  EXPECT_EQ(o1.depth(), o2.depth());
  EXPECT_GT(st.work.passes, 0u);
  EXPECT_GT(st.work.cuts_enumerated, 0u);
  EXPECT_GT(st.work.mffc_queries, 0u);
  EXPECT_GT(st.work.cut_arena_bytes, 0u);
}

TEST(CutEngine, EveryPassStaysEquivalentThroughOneEngine) {
  const aig g = benchgen::make_benchmark("c880");
  opt_engine engine;
  aig current = g;
  for (const char* pass : {"b", "rw", "rf", "b", "rwz", "rfz", "clean"}) {
    const aig next = engine.run_pass(current, pass);
    ASSERT_TRUE(random_equivalent(g, next, 48, 3))
        << "pass " << pass << " broke equivalence";
    current = next;
  }
}

TEST(CutEngine, SequentialPassesPreserveRegisters) {
  const aig g = benchgen::make_benchmark("s298");
  opt_engine engine;
  const aig o = engine.optimize(g);
  EXPECT_EQ(o.num_registers(), g.num_registers());
  EXPECT_TRUE(random_sequential_equivalent(g, o, 8, 64));
}

}  // namespace
}  // namespace xsfq
