/// Tests for incremental ECO resynthesis: the edit-script grammar and its
/// position-stable replay (aig/edit.hpp), byte-identity of the incremental
/// service path against full resynthesis across the ISCAS85 circuits, the
/// batch_runner ECO surface (retained-network tier, patch/drop cache
/// entries, region counters), the v4 protocol payloads, and the synth_delta
/// request end to end against an in-process daemon, including the typed
/// unknown_base / bad_edit rejections.
#include "aig/edit.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "aig/simulate.hpp"
#include "benchgen/registry.hpp"
#include "flow/batch_runner.hpp"
#include "serve/client.hpp"
#include "serve/resilient_client.hpp"
#include "serve/server.hpp"
#include "serve/synth_service.hpp"

namespace xsfq {
namespace {

namespace fs = std::filesystem;
using namespace serve;

struct temp_dir {
  std::string path;
  temp_dir() {
    char tmpl[] = "/tmp/xsfq_eco_XXXXXX";
    path = mkdtemp(tmpl);
  }
  ~temp_dir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// a & b, !a & !b feeding two outputs — small but with every node consumed.
aig small_network() {
  aig g;
  const signal a = g.create_pi("a");
  const signal b = g.create_pi("b");
  const signal c = g.create_pi("c");
  const signal n4 = g.create_and(a, b);     // n4
  const signal n5 = g.create_and(n4, c);    // n5
  g.create_po(n5, "y0");
  g.create_po(!n4, "y1");
  return g;
}

std::string sig_token(const signal s) {
  std::string t = s.is_complemented() ? "!" : "";
  t += "n" + std::to_string(s.index());
  return t;
}

/// A deterministic single-gate edit on gate `which` (counted from the
/// middle of the array): flip the second fanin's complement in place.
/// Always legal (fanins already precede the target) and never a no-op
/// (the node array changes, so the content hash changes).
std::string flip_gate_edit(const aig& g, std::size_t which = 0) {
  std::vector<aig::node_index> gates;
  for (aig::node_index n = 0; n < g.size(); ++n) {
    if (g.is_gate(n)) gates.push_back(n);
  }
  const aig::node_index target = gates.at(gates.size() / 2 + which);
  const signal a = g.fanin0(target);
  const signal b = g.fanin1(target);
  return "replace n" + std::to_string(target) + " " + sig_token(a) + " " +
         sig_token(!b) + "\n";
}

// ---------------------------------------------------------------------------
// Edit script: parse errors.
// ---------------------------------------------------------------------------

TEST(EcoEdit, ParseRejectsMalformedScripts) {
  const char* bad[] = {
      "frobnicate n1 n2",        // unknown op
      "replace n4",              // missing operands
      "replace n4 n1 n2 n3",     // too many operands
      "replace !n4 n1 n2",       // complemented target
      "replace g0 n1 n2",        // wrong target kind
      "sub n4",                  // missing source
      "po x n1",                 // non-numeric output index
      "and g0 n1",               // missing operand
      "addpo",                   // missing signal
      "replace n4 q1 n2",        // bad signal token
      "replace n4 n n2",         // bare 'n'
  };
  for (const char* text : bad) {
    EXPECT_THROW(eco::parse_edit_script(text), eco::edit_error) << text;
  }
}

TEST(EcoEdit, ParseAcceptsCommentsBlanksAndNames) {
  const auto script = eco::parse_edit_script(
      "# full line comment\n"
      "\n"
      "  addpi extra_in  # trailing comment\n"
      "addpo !n4 extra_out\n");
  ASSERT_EQ(script.ops.size(), 2u);
  EXPECT_EQ(script.ops[0].name, "extra_in");
  EXPECT_EQ(script.ops[1].name, "extra_out");
  EXPECT_TRUE(script.ops[1].a.complement);
  EXPECT_EQ(script.ops[0].line, 3u);  // line numbers survive for errors
}

TEST(EcoEdit, EmptyScriptIsLegalAndANoOp) {
  aig g = small_network();
  const std::uint64_t before = g.content_hash();
  const auto info = eco::apply_edit_text(g, "# nothing\n\n");
  EXPECT_EQ(g.content_hash(), before);
  EXPECT_EQ(info.gates_replaced, 0u);
  EXPECT_EQ(info.first_touched, aig::null_node);
}

// ---------------------------------------------------------------------------
// Edit script: replay semantics and illegal-replay rejection.
// ---------------------------------------------------------------------------

TEST(EcoEdit, ReplaceRedefinesGateInPlace) {
  aig g = small_network();
  const std::size_t size_before = g.size();
  // n4 = a & b  ->  n4 = a & !b; every other node keeps its position.
  const auto info = eco::apply_edit_text(g, "replace n4 n1 !n2\n");
  EXPECT_EQ(g.size(), size_before);
  EXPECT_EQ(info.gates_replaced, 1u);
  EXPECT_EQ(info.first_touched, 4u);
  EXPECT_EQ(g.fanin1(4), !signal(2, false));

  aig expected;
  const signal a = expected.create_pi("a");
  const signal b = expected.create_pi("b");
  const signal c = expected.create_pi("c");
  const signal n4 = expected.create_and(a, !b);
  expected.create_po(expected.create_and(n4, c), "y0");
  expected.create_po(!n4, "y1");
  EXPECT_TRUE(exhaustive_equivalent(g, expected));
}

TEST(EcoEdit, SubstituteRedirectsEveryConsumer) {
  aig g = small_network();
  // Redirect every consumer of n4 (gate n5 and PO 1) to !a.
  const auto info = eco::apply_edit_text(g, "sub n4 !n1\n");
  EXPECT_EQ(info.substitutions, 1u);
  EXPECT_EQ(g.fanin0(5).index(), 1u);   // n5 now reads a directly
  EXPECT_EQ(g.po_signal(1).index(), 1u);

  aig expected;
  const signal a = expected.create_pi("a");
  expected.create_pi("b");
  const signal c = expected.create_pi("c");
  expected.create_po(expected.create_and(!a, c), "y0");
  expected.create_po(a, "y1");
  EXPECT_TRUE(exhaustive_equivalent(g, expected));

  // Within one script, a substituted-away node may not be referenced by any
  // later op (the deleted set is replay state, not network state).
  aig g2 = small_network();
  EXPECT_THROW(eco::apply_edit_text(g2, "sub n4 !n1\naddpo n4\n"),
               eco::edit_error);
  aig g3 = small_network();
  EXPECT_THROW(eco::apply_edit_text(g3, "sub n4 !n1\nsub n4 n2\n"),
               eco::edit_error);
}

TEST(EcoEdit, NewGatesAndPortsAppend) {
  aig g = small_network();
  const std::size_t size_before = g.size();
  const auto info = eco::apply_edit_text(g,
                                         "and g0 n4 !n3\n"
                                         "and g1 g0 n1\n"
                                         "addpi spare\n"
                                         "addpo !g1 y2\n"
                                         "po 0 g0\n");
  EXPECT_EQ(info.gates_added, 2u);
  EXPECT_EQ(info.pis_added, 1u);
  EXPECT_EQ(info.pos_added, 1u);
  EXPECT_EQ(info.pos_retargeted, 1u);
  // Appended, never inserted: the base prefix is untouched.
  EXPECT_EQ(g.size(), size_before + 3);  // 2 gates + 1 PI
  EXPECT_EQ(g.num_pos(), 3u);
  // New gates must be defined in ordinal order.
  EXPECT_THROW(eco::apply_edit_text(g, "and g5 n1 n2\n"), eco::edit_error);
}

TEST(EcoEdit, ReplayRejectsIllegalSteps) {
  const char* bad[] = {
      "replace n1 n2 n3",      // target is a PI, not a gate
      "replace n99 n1 n2",     // unknown node
      "replace n5 n5 n1",      // fanin does not precede the target
      "replace n5 n99 n1",     // unknown fanin
      "replace n4 n1 n1",      // degenerate gate (a == b)
      "replace n4 n1 !n1",     // degenerate gate (a == !a)
      "replace n4 const0 n1",  // constant fanin is degenerate here
      "sub n0 n1",             // constant node is not substitutable
      "sub n4 n4",             // source is the target itself
      "sub n4 n5",             // cyclic retarget: source after a consumer
      "po 7 n1",               // unknown output index
      "and g0 n1 n99",         // unknown fanin on a new gate
      "addpo g0",              // g0 never defined
  };
  for (const char* text : bad) {
    aig g = small_network();
    EXPECT_THROW(eco::apply_edit_text(g, text), eco::edit_error) << text;
  }
}

TEST(EcoEdit, ReplayIsPositionStableOnRealCircuit) {
  const aig base = benchgen::make_benchmark("c880");
  aig edited = base;
  const std::string script = flip_gate_edit(base);
  const auto info = eco::apply_edit_text(edited, script);
  ASSERT_EQ(info.gates_replaced, 1u);
  ASSERT_NE(info.first_touched, aig::null_node);
  EXPECT_NE(edited.content_hash(), base.content_hash());
  // Every node below the first touched index is bit-identical, and node
  // count is unchanged — the property the region cache keys on.
  ASSERT_EQ(edited.size(), base.size());
  for (aig::node_index n = 0; n < info.first_touched; ++n) {
    if (!base.is_gate(n)) continue;
    EXPECT_EQ(edited.fanin0(n), base.fanin0(n)) << n;
    EXPECT_EQ(edited.fanin1(n), base.fanin1(n)) << n;
  }
}

// ---------------------------------------------------------------------------
// Incremental vs full resynthesis: byte-identity through the service driver.
// ---------------------------------------------------------------------------

TEST(EcoFlow, DeltaMatchesFullResynthesisAcrossIscas85) {
  flow::batch_runner warm(1);    // serves the incremental path
  flow::batch_runner cold(1);    // computes the from-scratch expectation
  cold.set_cache_enabled(false);

  for (const char* name : {"c432", "c880", "c1908", "c6288"}) {
    synth_request base = make_request_for_spec(name);
    base.partition_grain = 32;
    base.want_verilog = true;
    const aig base_net = load_request_circuit(base);

    // Prime the warm runner exactly as a serving daemon would.
    const synth_response primed = run_synth(base, warm);
    ASSERT_TRUE(primed.ok) << name;
    EXPECT_EQ(primed.content_hash, base_net.content_hash()) << name;

    synth_delta_request dreq;
    dreq.base = base;
    dreq.base_content_hash = base_net.content_hash();
    dreq.edit_text = flip_gate_edit(base_net);
    dreq.supersede_base = false;

    eco_outcome outcome;
    const synth_response eco = run_synth_delta(dreq, warm, {}, &outcome);
    ASSERT_TRUE(eco.ok) << name;
    EXPECT_TRUE(outcome.base_retained) << name;

    // The from-scratch expectation: the force_full delta path runs the
    // identical flow with every cache tier bypassed, on a cache-disabled
    // runner that never saw the base (exercising the rebuild path too).
    aig edited = base_net;
    eco::apply_edit_text(edited, dreq.edit_text);
    synth_delta_request freq = dreq;
    freq.force_full = true;
    eco_outcome cold_outcome;
    const synth_response expected =
        run_synth_delta(freq, cold, {}, &cold_outcome);
    ASSERT_TRUE(expected.ok) << name;
    EXPECT_TRUE(cold_outcome.base_rebuilt) << name;

    // Wide-sim check that the edit actually changed the circuit's function
    // (the identity below must not be vacuous no-op-edit identity).
    EXPECT_FALSE(random_equivalent(base_net, edited)) << name;

    EXPECT_EQ(eco.report, expected.report) << name;
    EXPECT_EQ(eco.verilog, expected.verilog) << name;
    EXPECT_EQ(eco.content_hash, expected.content_hash) << name;
    EXPECT_EQ(eco.content_hash, edited.content_hash()) << name;
    EXPECT_NE(eco.content_hash, primed.content_hash) << name;
  }
}

TEST(EcoFlow, RegionCacheCountersTrackIncrementalWork) {
  flow::batch_runner runner(1);
  synth_request base = make_request_for_spec("c880");
  base.partition_grain = 64;
  const aig base_net = load_request_circuit(base);
  ASSERT_TRUE(run_synth(base, runner).ok);

  synth_delta_request dreq;
  dreq.base = base;
  dreq.base_content_hash = base_net.content_hash();
  dreq.edit_text = flip_gate_edit(base_net);

  const auto before = runner.cache_stats();
  ASSERT_TRUE(run_synth_delta(dreq, runner).ok);
  const auto after = runner.cache_stats();

  // The edit touches one region; every other region replays from the cache.
  EXPECT_GT(after.region_hits, before.region_hits);
  EXPECT_GT(after.region_misses, before.region_misses);
  EXPECT_GT(after.region_hits - before.region_hits,
            after.region_misses - before.region_misses);
  // supersede_base dropped the superseded entry.
  EXPECT_GT(after.eco_patches, before.eco_patches);
}

TEST(EcoFlow, SupersededBaseIsDroppedAndRebuildable) {
  flow::batch_runner runner(1);
  synth_request base = make_request_for_spec("c432");
  base.partition_grain = 32;
  const aig base_net = load_request_circuit(base);
  ASSERT_TRUE(run_synth(base, runner).ok);

  synth_delta_request dreq;
  dreq.base = base;
  dreq.base_content_hash = base_net.content_hash();
  dreq.edit_text = flip_gate_edit(base_net);
  dreq.supersede_base = true;
  ASSERT_TRUE(run_synth_delta(dreq, runner).ok);

  // The base entry is gone: dropping again finds nothing.
  flow::flow_options options;
  options.opt.partition_grain = 32;
  EXPECT_FALSE(runner.drop_entry(base_net.content_hash(), base_net.num_gates(),
                                 base.spec, options));

  // A delta naming a never-served base hash still succeeds when the
  // request's own circuit text hashes to that base (rebuild path).
  flow::batch_runner fresh(1);
  eco_outcome outcome;
  const synth_response r = run_synth_delta(dreq, fresh, {}, &outcome);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(outcome.base_rebuilt);
  EXPECT_FALSE(outcome.base_retained);
}

TEST(EcoFlow, UnknownBaseAndBadEditThrowTypedErrors) {
  flow::batch_runner runner(1);
  synth_request base = make_request_for_spec("c432");
  const aig base_net = load_request_circuit(base);

  synth_delta_request dreq;
  dreq.base = base;
  dreq.base_content_hash = 0xdeadbeefu;  // matches nothing
  dreq.edit_text = flip_gate_edit(base_net);
  try {
    run_synth_delta(dreq, runner);
    FAIL() << "expected unknown_base";
  } catch (const service_error& e) {
    EXPECT_EQ(e.code, error_code::unknown_base);
  }

  dreq.base_content_hash = base_net.content_hash();
  dreq.edit_text = "replace n1 n2 n3\n";  // PI target: illegal replay
  try {
    run_synth_delta(dreq, runner);
    FAIL() << "expected bad_edit";
  } catch (const service_error& e) {
    EXPECT_EQ(e.code, error_code::bad_edit);
  }
}

// ---------------------------------------------------------------------------
// batch_runner ECO surface.
// ---------------------------------------------------------------------------

TEST(EcoRunner, RetainedNetworkTierIsAByteBudgetedLru) {
  flow::batch_runner runner(1);
  synth_request req = make_request_for_spec("c432");
  const std::uint64_t hash = load_request_circuit(req).content_hash();
  ASSERT_TRUE(run_synth(req, runner).ok);

  const auto retained = runner.retained_network(hash);
  ASSERT_NE(retained, nullptr);
  EXPECT_EQ(retained->content_hash(), hash);
  EXPECT_EQ(runner.retained_network(hash ^ 1), nullptr);
  EXPECT_GE(runner.cache_stats().retained_networks, 1u);
  EXPECT_EQ(runner.cache_stats().retained_evictions, 0u);

  // Budget for ~3 copies of this circuit (the edited variants below are
  // the same size — replace edits keep the node count), then push edited
  // variants through the serving path: the coldest entries must go, every
  // eviction counted.  Each iteration flips a previously untouched gate,
  // so every content hash along the way is new.
  const std::size_t entry_bytes = retained->memory_bytes();
  runner.set_retained_bytes(3 * entry_bytes);
  aig net = load_request_circuit(req);
  std::vector<std::uint64_t> hashes;
  for (std::size_t i = 0; i < 6; ++i) {
    eco::apply_edit_text(net, flip_gate_edit(net, i));
    flow::flow_options options;
    runner.run_cached(net, "evict_" + std::to_string(i), options);
    hashes.push_back(net.content_hash());
  }
  EXPECT_EQ(runner.retained_network(hash), nullptr);  // base: evicted
  const flow::batch_cache_stats stats = runner.cache_stats();
  EXPECT_LE(stats.retained_networks, 3u);
  EXPECT_GE(stats.retained_evictions, 3u);

  // LRU, not FIFO: touching the oldest survivor must protect it — the
  // next insert evicts the now-least-recently-used entry instead.
  ASSERT_NE(runner.retained_network(hashes[3]), nullptr);  // touch
  eco::apply_edit_text(net, flip_gate_edit(net, 6));
  flow::flow_options options;
  runner.run_cached(net, "evict_6", options);
  EXPECT_NE(runner.retained_network(hashes[3]), nullptr);  // protected
  EXPECT_EQ(runner.retained_network(hashes[4]), nullptr);  // evicted

  // Shrinking the budget below one entry keeps the most recently used
  // network (hashes[3], touched above): evicting the base a session is
  // actively editing would turn every delta into a full rebuild.
  runner.set_retained_bytes(1);
  EXPECT_EQ(runner.cache_stats().retained_networks, 1u);
  EXPECT_NE(runner.retained_network(hashes[3]), nullptr);
}

TEST(EcoRunner, PatchEntryInstallsServableResult) {
  temp_dir dir;
  flow::batch_runner runner(1);
  runner.set_disk_cache(dir.path + "/cache");

  const aig net = benchgen::make_benchmark("c432");
  flow::flow_options options;
  const flow::flow_result computed =
      runner.run_uncached(net, "c432", options, {});
  EXPECT_EQ(runner.cache_stats().full_hits, 0u);

  runner.patch_entry(net.content_hash(), net.num_gates(), "c432", options,
                     computed);
  EXPECT_EQ(runner.cache_stats().eco_patches, 1u);

  // The patched entry serves the next request from memory...
  const flow::flow_result served = runner.run_cached(net, "c432", options);
  EXPECT_EQ(runner.cache_stats().full_hits, 1u);
  EXPECT_EQ(served.mapped.netlist.summary(), computed.mapped.netlist.summary());

  // ...and was persisted: a fresh runner on the same directory disk-hits.
  flow::batch_runner restarted(1);
  restarted.set_disk_cache(dir.path + "/cache");
  restarted.run_cached(net, "c432", options);
  EXPECT_EQ(restarted.cache_stats().disk_hits, 1u);
}

TEST(EcoRunner, DropEntryRemovesMemoryAndDiskTiers) {
  temp_dir dir;
  flow::batch_runner runner(1);
  runner.set_disk_cache(dir.path + "/cache");

  const aig net = benchgen::make_benchmark("c432");
  flow::flow_options options;
  runner.run_cached(net, "c432", options);

  EXPECT_TRUE(runner.drop_entry(net.content_hash(), net.num_gates(), "c432",
                                options));
  EXPECT_FALSE(runner.drop_entry(net.content_hash(), net.num_gates(), "c432",
                                 options));
  EXPECT_GE(runner.cache_stats().eco_patches, 1u);

  // Neither the memory tier nor the disk tier serves the dropped entry.
  runner.run_cached(net, "c432", options);
  EXPECT_EQ(runner.cache_stats().full_hits, 0u);
  EXPECT_EQ(runner.cache_stats().disk_hits, 0u);
}

// ---------------------------------------------------------------------------
// v4 protocol payloads.
// ---------------------------------------------------------------------------

TEST(EcoProtocol, SynthDeltaRequestRoundTrips) {
  synth_delta_request req;
  req.base = make_request_for_spec("c432");
  req.base.partition_grain = 48;
  req.base.flow_jobs = 2;
  req.base_content_hash = 0x0123456789abcdefull;
  req.edit_text = "replace n40 n3 !n7\naddpo g0 spare\n";
  req.supersede_base = false;
  req.force_full = true;

  const synth_delta_request back =
      decode_synth_delta_request(encode_synth_delta_request(req));
  EXPECT_EQ(back.base.spec, req.base.spec);
  EXPECT_EQ(back.base.partition_grain, 48u);
  EXPECT_EQ(back.base.flow_jobs, 2u);
  EXPECT_EQ(back.base_content_hash, req.base_content_hash);
  EXPECT_EQ(back.edit_text, req.edit_text);
  EXPECT_FALSE(back.supersede_base);
  EXPECT_TRUE(back.force_full);
}

TEST(EcoProtocol, ResponseContentHashAndEcoCountersRoundTrip) {
  synth_response resp;
  resp.ok = true;
  resp.report = "r";
  resp.content_hash = 0xfeedfacecafebeefull;
  EXPECT_EQ(decode_synth_response(encode_synth_response(resp)).content_hash,
            resp.content_hash);

  server_stats_reply stats;
  stats.eco_requests = 7;
  stats.eco_retained_hits = 5;
  stats.eco_base_rebuilds = 1;
  stats.eco_failures = 2;
  stats.cache.region_hits = 100;
  stats.cache.region_misses = 3;
  stats.cache.eco_patches = 9;
  stats.cache.retained_networks = 4;
  const server_stats_reply back =
      decode_server_stats(encode_server_stats(stats));
  EXPECT_EQ(back.eco_requests, 7u);
  EXPECT_EQ(back.eco_retained_hits, 5u);
  EXPECT_EQ(back.eco_base_rebuilds, 1u);
  EXPECT_EQ(back.eco_failures, 2u);
  EXPECT_EQ(back.cache.region_hits, 100u);
  EXPECT_EQ(back.cache.region_misses, 3u);
  EXPECT_EQ(back.cache.eco_patches, 9u);
  EXPECT_EQ(back.cache.retained_networks, 4u);
}

// ---------------------------------------------------------------------------
// End to end: synth_delta against an in-process daemon.
// ---------------------------------------------------------------------------

TEST(EcoEndToEnd, DeltaOverSocketMatchesForceFullByteForByte) {
  temp_dir dir;
  server_options options;
  options.socket_path = dir.path + "/served.sock";
  options.threads = 2;
  server srv(options);
  client cli(options.socket_path);

  synth_request base = make_request_for_spec("c880");
  base.partition_grain = 64;
  base.want_verilog = true;
  const aig base_net = load_request_circuit(base);
  const synth_response primed = cli.submit(base);
  ASSERT_TRUE(primed.ok);
  ASSERT_EQ(primed.content_hash, base_net.content_hash());

  synth_delta_request dreq;
  dreq.base = base;
  dreq.base_content_hash = primed.content_hash;
  dreq.edit_text = flip_gate_edit(base_net);
  dreq.supersede_base = false;
  const synth_response eco = cli.submit_delta(dreq);
  ASSERT_TRUE(eco.ok);

  synth_delta_request freq = dreq;
  freq.force_full = true;
  const synth_response full = cli.submit_delta(freq);
  ASSERT_TRUE(full.ok);
  EXPECT_EQ(eco.report, full.report);
  EXPECT_EQ(eco.verilog, full.verilog);
  EXPECT_EQ(eco.content_hash, full.content_hash);

  // Chaining: a second edit against the edited circuit's content hash.
  aig edited = base_net;
  eco::apply_edit_text(edited, dreq.edit_text);
  synth_delta_request chain;
  chain.base = base;
  chain.base_content_hash = eco.content_hash;
  chain.edit_text = flip_gate_edit(edited, 3);
  // The retained tier holds the edited network, so no circuit re-ship is
  // needed even though chain.base still carries the original circuit.
  const synth_response second = cli.submit_delta(chain);
  EXPECT_TRUE(second.ok);

  const server_stats_reply stats = cli.server_stats();
  EXPECT_EQ(stats.eco_requests, 3u);
  EXPECT_EQ(stats.eco_retained_hits, 3u);
  EXPECT_EQ(stats.eco_failures, 0u);
  EXPECT_GT(stats.cache.region_hits, 0u);
  EXPECT_GT(stats.cache.retained_networks, 0u);
}

TEST(EcoEndToEnd, TypedErrorsCrossTheWire) {
  temp_dir dir;
  server_options options;
  options.socket_path = dir.path + "/served.sock";
  options.threads = 1;
  server srv(options);
  client cli(options.socket_path);

  synth_request base = make_request_for_spec("c432");
  const aig base_net = load_request_circuit(base);

  synth_delta_request dreq;
  dreq.base = base;
  dreq.base_content_hash = 1;  // not retained, and the circuit disagrees
  dreq.edit_text = "po 0 const0\n";
  try {
    cli.submit_delta(dreq);
    FAIL() << "expected unknown_base";
  } catch (const service_error& e) {
    EXPECT_EQ(e.code, error_code::unknown_base);
  }

  dreq.base_content_hash = base_net.content_hash();
  dreq.edit_text = "sub n4 n4\n";
  try {
    cli.submit_delta(dreq);
    FAIL() << "expected bad_edit";
  } catch (const service_error& e) {
    EXPECT_EQ(e.code, error_code::bad_edit);
  }

  const server_stats_reply stats = cli.server_stats();
  EXPECT_EQ(stats.eco_requests, 2u);
  EXPECT_EQ(stats.eco_failures, 2u);
}

TEST(EcoEndToEnd, DeltaSurvivesDaemonRestartThroughRetryingClient) {
  temp_dir dir;
  server_options options;
  options.socket_path = dir.path + "/served.sock";
  options.cache_dir = dir.path + "/cache";
  options.threads = 2;
  auto srv = std::make_unique<server>(options);

  synth_request base = make_request_for_spec("c432");
  const aig base_net = load_request_circuit(base);

  endpoint ep;
  ep.socket_path = options.socket_path;
  retry_policy policy;
  policy.max_retries = 5;
  policy.initial_backoff_ms = 10;
  resilient_client rcli(ep, policy);
  ASSERT_TRUE(rcli.submit(base).ok);

  synth_delta_request dreq;
  dreq.base = base;
  dreq.base_content_hash = base_net.content_hash();
  dreq.edit_text = flip_gate_edit(base_net);
  const synth_response eco = rcli.submit_delta(dreq);
  ASSERT_TRUE(eco.ok);

  // Restart the daemon: the retained-network tier dies with the process and
  // the client's connection goes stale.  The delta request still carries
  // the base circuit, so the restarted daemon rebuilds the base, replays
  // the edit, and the retrying client never surfaces the outage.
  srv->stop();
  srv.reset();
  srv = std::make_unique<server>(options);

  const synth_response replayed = rcli.submit_delta(dreq);
  ASSERT_TRUE(replayed.ok);
  EXPECT_EQ(replayed.report, eco.report);
  EXPECT_EQ(replayed.content_hash, eco.content_hash);
  EXPECT_GE(rcli.reconnects(), 2u);

  client fresh(options.socket_path);
  const server_stats_reply stats = fresh.server_stats();
  EXPECT_EQ(stats.eco_requests, 1u);       // post-restart counters only
  EXPECT_EQ(stats.eco_retained_hits, 0u);  // the retained tier was lost...
  EXPECT_EQ(stats.eco_base_rebuilds, 1u);  // ...so the base was rebuilt
}

}  // namespace
}  // namespace xsfq
