#include "util/truth_table.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace xsfq {
namespace {

TEST(TruthTable, ConstantsAndProjections) {
  for (unsigned n = 0; n <= 8; ++n) {
    EXPECT_TRUE(truth_table::zeros(n).is_const0());
    EXPECT_TRUE(truth_table::ones(n).is_const1());
    EXPECT_EQ(truth_table::zeros(n).count_ones(), 0u);
    EXPECT_EQ(truth_table::ones(n).count_ones(), std::uint64_t{1} << n);
  }
  for (unsigned n = 1; n <= 10; ++n) {
    for (unsigned v = 0; v < n; ++v) {
      const auto t = truth_table::nth_var(n, v);
      EXPECT_EQ(t.count_ones(), std::uint64_t{1} << (n - 1));
      for (std::uint64_t m = 0; m < t.num_bits(); ++m) {
        EXPECT_EQ(t.bit(m), ((m >> v) & 1u) != 0);
      }
    }
  }
}

TEST(TruthTable, BitSetAndGet) {
  truth_table t(7);
  t.set_bit(0);
  t.set_bit(77);
  t.set_bit(127);
  EXPECT_TRUE(t.bit(0));
  EXPECT_TRUE(t.bit(77));
  EXPECT_TRUE(t.bit(127));
  EXPECT_FALSE(t.bit(1));
  EXPECT_EQ(t.count_ones(), 3u);
  t.set_bit(77, false);
  EXPECT_FALSE(t.bit(77));
}

TEST(TruthTable, BooleanAlgebra) {
  const auto a = truth_table::nth_var(3, 0);
  const auto b = truth_table::nth_var(3, 1);
  const auto c = truth_table::nth_var(3, 2);
  EXPECT_EQ((a & b) | (a & c), a & (b | c));
  EXPECT_EQ(~(a & b), ~a | ~b);
  EXPECT_EQ(a ^ b, (a | b) & ~(a & b));
  EXPECT_EQ(a ^ a, truth_table::zeros(3));
  EXPECT_EQ((~~a), a);
}

TEST(TruthTable, CofactorsAndSupport) {
  // f = x0 & x2 over 3 vars: independent of x1.
  const auto f = truth_table::nth_var(3, 0) & truth_table::nth_var(3, 2);
  EXPECT_TRUE(f.has_var(0));
  EXPECT_FALSE(f.has_var(1));
  EXPECT_TRUE(f.has_var(2));
  EXPECT_EQ(f.support_mask(), 0b101u);
  EXPECT_EQ(f.cofactor1(0), truth_table::nth_var(3, 2));
  EXPECT_TRUE(f.cofactor0(0).is_const0());
  // Shannon expansion identity.
  const auto x0 = truth_table::nth_var(3, 0);
  EXPECT_EQ(f, (x0 & f.cofactor1(0)) | (~x0 & f.cofactor0(0)));
}

TEST(TruthTable, CofactorAboveWordBoundary) {
  rng gen(11);
  truth_table f(8);
  for (std::uint64_t m = 0; m < f.num_bits(); ++m) {
    if (gen.flip()) f.set_bit(m);
  }
  for (unsigned v = 0; v < 8; ++v) {
    const auto c0 = f.cofactor0(v);
    const auto c1 = f.cofactor1(v);
    for (std::uint64_t m = 0; m < f.num_bits(); ++m) {
      EXPECT_EQ(c0.bit(m), f.bit(m & ~(std::uint64_t{1} << v)));
      EXPECT_EQ(c1.bit(m), f.bit(m | (std::uint64_t{1} << v)));
    }
    // Shannon expansion.
    const auto x = truth_table::nth_var(8, v);
    EXPECT_EQ(f, (x & c1) | (~x & c0));
  }
}

TEST(TruthTable, FlipAndSwap) {
  rng gen(5);
  truth_table f(7);
  for (std::uint64_t m = 0; m < f.num_bits(); ++m) {
    if (gen.flip()) f.set_bit(m);
  }
  for (unsigned v = 0; v < 7; ++v) {
    EXPECT_EQ(f.flip_var(v).flip_var(v), f);
    for (std::uint64_t m = 0; m < f.num_bits(); ++m) {
      EXPECT_EQ(f.flip_var(v).bit(m), f.bit(m ^ (std::uint64_t{1} << v)));
    }
  }
  for (unsigned a = 0; a < 7; ++a) {
    for (unsigned b = 0; b < 7; ++b) {
      EXPECT_EQ(f.swap_vars(a, b).swap_vars(a, b), f);
    }
  }
}

TEST(TruthTable, PermuteComposition) {
  const auto f = (truth_table::nth_var(4, 0) & truth_table::nth_var(4, 1)) |
                 truth_table::nth_var(4, 3);
  const std::vector<unsigned> rotate = {1, 2, 3, 0};
  auto g = f;
  for (int i = 0; i < 4; ++i) g = g.permute(rotate);
  EXPECT_EQ(g, f);  // four rotations = identity
  // Identity permutation is a no-op.
  EXPECT_EQ(f.permute({0, 1, 2, 3}), f);
}

TEST(TruthTable, HexRoundTrip) {
  rng gen(99);
  for (unsigned n : {2u, 4u, 6u, 8u}) {
    truth_table f(n);
    for (std::uint64_t m = 0; m < f.num_bits(); ++m) {
      if (gen.flip()) f.set_bit(m);
    }
    EXPECT_EQ(truth_table::from_hex(n, f.to_hex()), f);
  }
  EXPECT_EQ(truth_table::from_hex(4, "8000").count_ones(), 1u);
  EXPECT_TRUE(truth_table::from_hex(4, "8000").bit(15));
  EXPECT_THROW(truth_table::from_hex(4, "123"), std::invalid_argument);
  EXPECT_THROW(truth_table::from_hex(4, "12g4"), std::invalid_argument);
}

TEST(TruthTable, DomainMismatchThrows) {
  EXPECT_THROW(truth_table(3) & truth_table(4), std::invalid_argument);
  EXPECT_THROW(truth_table::nth_var(3, 3), std::invalid_argument);
  EXPECT_THROW(truth_table(17), std::invalid_argument);
}

TEST(TruthTable, HashDistinguishes) {
  const auto a = truth_table::nth_var(5, 0);
  const auto b = truth_table::nth_var(5, 1);
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_EQ(a.hash(), truth_table::nth_var(5, 0).hash());
}

class TruthTableWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(TruthTableWidths, DeMorganHoldsOnRandomFunctions) {
  const unsigned n = GetParam();
  rng gen(n * 17 + 1);
  for (int round = 0; round < 8; ++round) {
    truth_table f(n);
    truth_table g(n);
    for (std::uint64_t m = 0; m < f.num_bits(); ++m) {
      if (gen.flip()) f.set_bit(m);
      if (gen.flip()) g.set_bit(m);
    }
    EXPECT_EQ(~(f & g), ~f | ~g);
    EXPECT_EQ(~(f | g), ~f & ~g);
    EXPECT_EQ(f ^ g, (f & ~g) | (~f & g));
    EXPECT_EQ(f.count_ones() + (~f).count_ones(), f.num_bits());
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, TruthTableWidths,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           10u, 12u));

}  // namespace
}  // namespace xsfq
