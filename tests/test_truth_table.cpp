#include "util/truth_table.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace xsfq {
namespace {

TEST(TruthTable, ConstantsAndProjections) {
  for (unsigned n = 0; n <= 8; ++n) {
    EXPECT_TRUE(truth_table::zeros(n).is_const0());
    EXPECT_TRUE(truth_table::ones(n).is_const1());
    EXPECT_EQ(truth_table::zeros(n).count_ones(), 0u);
    EXPECT_EQ(truth_table::ones(n).count_ones(), std::uint64_t{1} << n);
  }
  for (unsigned n = 1; n <= 10; ++n) {
    for (unsigned v = 0; v < n; ++v) {
      const auto t = truth_table::nth_var(n, v);
      EXPECT_EQ(t.count_ones(), std::uint64_t{1} << (n - 1));
      for (std::uint64_t m = 0; m < t.num_bits(); ++m) {
        EXPECT_EQ(t.bit(m), ((m >> v) & 1u) != 0);
      }
    }
  }
}

TEST(TruthTable, BitSetAndGet) {
  truth_table t(7);
  t.set_bit(0);
  t.set_bit(77);
  t.set_bit(127);
  EXPECT_TRUE(t.bit(0));
  EXPECT_TRUE(t.bit(77));
  EXPECT_TRUE(t.bit(127));
  EXPECT_FALSE(t.bit(1));
  EXPECT_EQ(t.count_ones(), 3u);
  t.set_bit(77, false);
  EXPECT_FALSE(t.bit(77));
}

TEST(TruthTable, BooleanAlgebra) {
  const auto a = truth_table::nth_var(3, 0);
  const auto b = truth_table::nth_var(3, 1);
  const auto c = truth_table::nth_var(3, 2);
  EXPECT_EQ((a & b) | (a & c), a & (b | c));
  EXPECT_EQ(~(a & b), ~a | ~b);
  EXPECT_EQ(a ^ b, (a | b) & ~(a & b));
  EXPECT_EQ(a ^ a, truth_table::zeros(3));
  EXPECT_EQ((~~a), a);
}

TEST(TruthTable, CofactorsAndSupport) {
  // f = x0 & x2 over 3 vars: independent of x1.
  const auto f = truth_table::nth_var(3, 0) & truth_table::nth_var(3, 2);
  EXPECT_TRUE(f.has_var(0));
  EXPECT_FALSE(f.has_var(1));
  EXPECT_TRUE(f.has_var(2));
  EXPECT_EQ(f.support_mask(), 0b101u);
  EXPECT_EQ(f.cofactor1(0), truth_table::nth_var(3, 2));
  EXPECT_TRUE(f.cofactor0(0).is_const0());
  // Shannon expansion identity.
  const auto x0 = truth_table::nth_var(3, 0);
  EXPECT_EQ(f, (x0 & f.cofactor1(0)) | (~x0 & f.cofactor0(0)));
}

TEST(TruthTable, CofactorAboveWordBoundary) {
  rng gen(11);
  truth_table f(8);
  for (std::uint64_t m = 0; m < f.num_bits(); ++m) {
    if (gen.flip()) f.set_bit(m);
  }
  for (unsigned v = 0; v < 8; ++v) {
    const auto c0 = f.cofactor0(v);
    const auto c1 = f.cofactor1(v);
    for (std::uint64_t m = 0; m < f.num_bits(); ++m) {
      EXPECT_EQ(c0.bit(m), f.bit(m & ~(std::uint64_t{1} << v)));
      EXPECT_EQ(c1.bit(m), f.bit(m | (std::uint64_t{1} << v)));
    }
    // Shannon expansion.
    const auto x = truth_table::nth_var(8, v);
    EXPECT_EQ(f, (x & c1) | (~x & c0));
  }
}

TEST(TruthTable, FlipAndSwap) {
  rng gen(5);
  truth_table f(7);
  for (std::uint64_t m = 0; m < f.num_bits(); ++m) {
    if (gen.flip()) f.set_bit(m);
  }
  for (unsigned v = 0; v < 7; ++v) {
    EXPECT_EQ(f.flip_var(v).flip_var(v), f);
    for (std::uint64_t m = 0; m < f.num_bits(); ++m) {
      EXPECT_EQ(f.flip_var(v).bit(m), f.bit(m ^ (std::uint64_t{1} << v)));
    }
  }
  for (unsigned a = 0; a < 7; ++a) {
    for (unsigned b = 0; b < 7; ++b) {
      EXPECT_EQ(f.swap_vars(a, b).swap_vars(a, b), f);
    }
  }
}

TEST(TruthTable, PermuteComposition) {
  const auto f = (truth_table::nth_var(4, 0) & truth_table::nth_var(4, 1)) |
                 truth_table::nth_var(4, 3);
  const std::vector<unsigned> rotate = {1, 2, 3, 0};
  auto g = f;
  for (int i = 0; i < 4; ++i) g = g.permute(rotate);
  EXPECT_EQ(g, f);  // four rotations = identity
  // Identity permutation is a no-op.
  EXPECT_EQ(f.permute({0, 1, 2, 3}), f);
}

TEST(TruthTable, HexRoundTrip) {
  rng gen(99);
  for (unsigned n : {2u, 4u, 6u, 8u}) {
    truth_table f(n);
    for (std::uint64_t m = 0; m < f.num_bits(); ++m) {
      if (gen.flip()) f.set_bit(m);
    }
    EXPECT_EQ(truth_table::from_hex(n, f.to_hex()), f);
  }
  EXPECT_EQ(truth_table::from_hex(4, "8000").count_ones(), 1u);
  EXPECT_TRUE(truth_table::from_hex(4, "8000").bit(15));
  EXPECT_THROW(truth_table::from_hex(4, "123"), std::invalid_argument);
  EXPECT_THROW(truth_table::from_hex(4, "12g4"), std::invalid_argument);
}

TEST(TruthTable, DomainMismatchThrows) {
  EXPECT_THROW(truth_table(3) & truth_table(4), std::invalid_argument);
  EXPECT_THROW(truth_table::nth_var(3, 3), std::invalid_argument);
  EXPECT_THROW(truth_table(17), std::invalid_argument);
}

TEST(TruthTable, HashDistinguishes) {
  const auto a = truth_table::nth_var(5, 0);
  const auto b = truth_table::nth_var(5, 1);
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_EQ(a.hash(), truth_table::nth_var(5, 0).hash());
}

class TruthTableWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(TruthTableWidths, DeMorganHoldsOnRandomFunctions) {
  const unsigned n = GetParam();
  rng gen(n * 17 + 1);
  for (int round = 0; round < 8; ++round) {
    truth_table f(n);
    truth_table g(n);
    for (std::uint64_t m = 0; m < f.num_bits(); ++m) {
      if (gen.flip()) f.set_bit(m);
      if (gen.flip()) g.set_bit(m);
    }
    EXPECT_EQ(~(f & g), ~f | ~g);
    EXPECT_EQ(~(f | g), ~f & ~g);
    EXPECT_EQ(f ^ g, (f & ~g) | (~f & g));
    EXPECT_EQ(f.count_ones() + (~f).count_ones(), f.num_bits());
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, TruthTableWidths,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           10u, 12u));

// ----- small-buffer representation and word-parallel primitives ------------

TEST(TruthTable, SmallBufferInvariants) {
  for (unsigned n = 0; n <= 6; ++n) {
    EXPECT_TRUE(truth_table(n).is_small());
    EXPECT_EQ(truth_table(n).num_words(), 1u);
  }
  EXPECT_FALSE(truth_table(7).is_small());
  EXPECT_EQ(truth_table(7).num_words(), 2u);
  EXPECT_EQ(truth_table(10).num_words(), 16u);
  // words() stays usable as an indexed view on both representations.
  const auto small = truth_table::nth_var(4, 0);
  EXPECT_EQ(small.words()[0], 0xAAAAull);
  EXPECT_EQ(small.word0(), 0xAAAAull);
  const auto big = truth_table::nth_var(7, 6);
  EXPECT_EQ(big.words()[0], 0u);
  EXPECT_EQ(big.words()[1], ~std::uint64_t{0});
}

TEST(TruthTable, FromWordMasksTail) {
  const auto t = truth_table::from_word(2, 0xFFFFFFFFull);
  EXPECT_EQ(t.word0(), 0xFull);
  EXPECT_TRUE(t.is_const1());
  EXPECT_THROW(truth_table::from_word(7, 1), std::invalid_argument);
}

TEST(TruthTable, StretchWordMakesDontCares) {
  // x0 over 1 var stretched to 6 vars equals the projection mask.
  EXPECT_EQ(truth_table::stretch_word(0x2u, 1),
            truth_table::var_masks[0]);
  // A constant-1 over 0 vars stretches to all ones.
  EXPECT_EQ(truth_table::stretch_word(0x1u, 0), ~std::uint64_t{0});
}

TEST(TruthTable, SwapWordMatchesGenericSwap) {
  rng gen(123);
  for (int round = 0; round < 50; ++round) {
    truth_table f(6);
    for (std::uint64_t m = 0; m < 64; ++m) {
      if (gen.flip()) f.set_bit(m);
    }
    const auto a = static_cast<unsigned>(gen.below(6));
    const auto b = static_cast<unsigned>(gen.below(6));
    const auto swapped = truth_table::swap_word(f.word0(), a, b);
    for (std::uint64_t m = 0; m < 64; ++m) {
      std::uint64_t src = m & ~((std::uint64_t{1} << a) |
                                (std::uint64_t{1} << b));
      src |= (((m >> b) & 1u) << a) | (((m >> a) & 1u) << b);
      EXPECT_EQ((swapped >> m) & 1u, f.bit(src) ? 1u : 0u);
    }
  }
}

/// Bit-by-bit reference for expanded(): result(m) reads f on the gathered
/// minterm src with src bit i = m bit positions[i].
truth_table expand_reference(const truth_table& t, unsigned num_vars,
                             const std::vector<unsigned>& positions) {
  truth_table r(num_vars);
  for (std::uint64_t m = 0; m < r.num_bits(); ++m) {
    std::uint64_t src = 0;
    for (std::size_t i = 0; i < positions.size(); ++i) {
      if ((m >> positions[i]) & 1u) src |= std::uint64_t{1} << i;
    }
    if (t.bit(src)) r.set_bit(m);
  }
  return r;
}

TEST(TruthTable, ExpandedMatchesReferenceOnAllSubsets) {
  rng gen(321);
  for (unsigned to_vars = 1; to_vars <= 8; ++to_vars) {
    for (int round = 0; round < 20; ++round) {
      // Pick a random non-empty subset of the destination slots.
      std::vector<unsigned> positions;
      for (unsigned v = 0; v < to_vars; ++v) {
        if (gen.flip()) positions.push_back(v);
      }
      if (positions.empty()) positions.push_back(0);
      const auto from_vars = static_cast<unsigned>(positions.size());
      truth_table f(from_vars);
      for (std::uint64_t m = 0; m < f.num_bits(); ++m) {
        if (gen.flip()) f.set_bit(m);
      }
      EXPECT_EQ(f.expanded(to_vars, positions),
                expand_reference(f, to_vars, positions))
          << "to_vars=" << to_vars;
    }
  }
}

TEST(TruthTable, ExpandedValidatesArguments) {
  const auto f = truth_table::nth_var(2, 0);
  const std::vector<unsigned> too_few = {0};
  EXPECT_THROW(f.expanded(4, too_few), std::invalid_argument);
  const std::vector<unsigned> ok = {1, 3};
  EXPECT_EQ(f.expanded(4, ok), truth_table::nth_var(4, 1));
}

}  // namespace
}  // namespace xsfq
