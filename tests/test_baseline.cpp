#include <gtest/gtest.h>

#include "baseline/rsfq.hpp"
#include "benchgen/registry.hpp"
#include "core/mapper.hpp"
#include "opt/script.hpp"

namespace xsfq {
namespace {

TEST(Rsfq, SingleGateCosts) {
  aig g;
  const signal a = g.create_pi();
  const signal b = g.create_pi();
  g.create_po(g.create_and(a, b));
  const auto st = map_to_rsfq(g);
  EXPECT_EQ(st.logic_cells, 1u);
  EXPECT_EQ(st.not_cells, 0u);
  EXPECT_EQ(st.balancing_dros, 0u);
  EXPECT_EQ(st.jj_without_clock, 10u);
  EXPECT_EQ(st.jj_with_clock, 13u);  // one clock splitter for the gate
}

TEST(Rsfq, InverterCells) {
  aig g;
  const signal a = g.create_pi();
  const signal b = g.create_pi();
  g.create_po(!g.create_and(a, b));  // complemented PO needs a NOT
  const auto st = map_to_rsfq(g);
  EXPECT_EQ(st.not_cells, 1u);
}

TEST(Rsfq, PathBalancingInsertsDros) {
  // Unbalanced: y = (a&b) & c: the c edge skips one level -> 1 DRO; plus the
  // NOT-free PO at the same level as y needs none.
  aig g;
  const signal a = g.create_pi();
  const signal b = g.create_pi();
  const signal c = g.create_pi();
  g.create_po(g.create_and(g.create_and(a, b), c));
  const auto st = map_to_rsfq(g);
  EXPECT_EQ(st.balancing_dros, 1u);
  EXPECT_EQ(st.depth, 2u);
}

TEST(Rsfq, CoBalancingToCommonLevel) {
  // Two POs at different levels: the shallow one gets balancing DROs.
  aig g;
  const signal a = g.create_pi();
  const signal b = g.create_pi();
  const signal c = g.create_pi();
  const signal x = g.create_and(a, b);
  g.create_po(g.create_and(x, c));  // level 2
  g.create_po(x);                   // level 1 -> one DRO
  const auto st = map_to_rsfq(g);
  EXPECT_EQ(st.balancing_dros, 2u);  // 1 on the c edge + 1 on the x PO
}

TEST(Rsfq, XorDetectionSavesCells) {
  aig g;
  const signal a = g.create_pi();
  const signal b = g.create_pi();
  g.create_po(g.create_xor(a, b));
  rsfq_params with_xor;
  const auto st1 = map_to_rsfq(g, with_xor);
  EXPECT_EQ(st1.logic_cells, 1u);  // one XOR2 cell
  rsfq_params no_xor;
  no_xor.detect_xor = false;
  const auto st2 = map_to_rsfq(g, no_xor);
  EXPECT_EQ(st2.logic_cells, 3u);  // three AND cells
  EXPECT_LT(st1.jj_without_clock, st2.jj_without_clock);
}

TEST(Rsfq, ClockTreeAccounting) {
  const aig g = optimize(benchgen::make_benchmark("c432"));
  const auto st = map_to_rsfq(g);
  EXPECT_EQ(st.clocked_cells,
            st.logic_cells + st.not_cells + st.balancing_dros + st.dffs);
  EXPECT_EQ(st.jj_with_clock, st.jj_without_clock + 3 * st.clocked_cells);
}

TEST(Rsfq, SequentialCircuitsCountDffs) {
  const aig g = optimize(benchgen::make_benchmark("s298"));
  const auto st = map_to_rsfq(g);
  EXPECT_EQ(st.dffs, g.num_registers());
  EXPECT_GT(st.balancing_dros, 0u);
}

TEST(Rsfq, XsfqWinsOnEveryBenchmark) {
  // The paper's headline: xSFQ needs fewer JJs than the clocked baseline on
  // every evaluated circuit (Tables 4 and 6).
  for (const auto& entry : benchgen::all_benchmarks()) {
    if (entry.name == "voter" || entry.name == "sin") continue;  // slow ones
    const aig g = optimize(benchgen::make_benchmark(entry.name));
    const auto base = map_to_rsfq(g);
    const auto ours = map_to_xsfq(g);
    EXPECT_GT(base.jj_without_clock, ours.stats.jj) << entry.name;
    EXPECT_GT(base.jj_with_clock, ours.stats.jj) << entry.name;
  }
}

TEST(Rsfq, PathBalanceInvariantHolds) {
  // Recompute levels including DRO chains: every CI->CO path must cross the
  // same number of clocked stages.  We verify via the mapper's own slack
  // computation being non-negative and exact by construction: the total DRO
  // count equals the sum of per-edge slacks, which this re-derives.
  const aig g = optimize(benchgen::make_benchmark("int2float"));
  const auto st = map_to_rsfq(g);
  // With full balancing, depth * num_cos >= sum of CO levels, and the DRO
  // count is exactly the total slack; sanity-check the bounds.
  EXPECT_GE(st.balancing_dros, 0u);
  EXPECT_GT(st.depth, 0u);
  const auto ours = map_to_xsfq(g);
  // The paper's observation: balancing DROs dominate the baseline's cost on
  // arithmetic-ish control circuits.
  EXPECT_GT(st.balancing_dros * 5, ours.stats.jj / 2);
}

}  // namespace
}  // namespace xsfq
