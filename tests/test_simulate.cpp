/// Tests for the wide sim_engine and everything rebased onto it: parity of
/// the W-lane plane against a scalar reference simulator on ISCAS85
/// circuits, incremental (TFO-cone) resimulation, the engine-backed
/// simulate64/compute_co_tables/equivalence entry points, per-pass
/// validation in the opt_engine, and the aig content hash that keys the
/// batch result cache.
#include "aig/simulate.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "aig/sim_reference.hpp"
#include "benchgen/registry.hpp"
#include "opt/opt_engine.hpp"
#include "opt/script.hpp"
#include "util/rng.hpp"

namespace xsfq {
namespace {

aig tiny_adder() {
  aig g;
  const signal a = g.create_pi("a");
  const signal b = g.create_pi("b");
  const signal c = g.create_pi("cin");
  g.create_po(g.create_xor(g.create_xor(a, b), c), "s");
  g.create_po(g.create_maj(a, b, c), "cout");
  return g;
}

// ---------------------------------------------------------------------------
// Wide plane parity.
// ---------------------------------------------------------------------------

TEST(SimEngine, WideLanesMatchScalarReferenceOnIscas85) {
  for (const char* name : {"c432", "c880", "c1908"}) {
    const aig g = benchgen::make_benchmark(name);
    sim_engine engine(8);
    engine.attach(g);
    ASSERT_EQ(engine.width(), 8u);

    rng gen(7);
    std::vector<std::vector<std::uint64_t>> lane_patterns(
        8, std::vector<std::uint64_t>(g.num_cis()));
    for (std::size_t i = 0; i < g.num_cis(); ++i) {
      const auto words = engine.ci_words(i);
      for (unsigned lane = 0; lane < 8; ++lane) {
        const std::uint64_t p = gen();
        words[lane] = p;
        lane_patterns[lane][i] = p;
      }
    }
    engine.simulate();

    for (unsigned lane = 0; lane < 8; ++lane) {
      const auto ref = reference_simulate64(g, lane_patterns[lane]);
      for (std::size_t i = 0; i < g.num_cos(); ++i) {
        ASSERT_EQ(engine.co_word(i, lane), ref[i])
            << name << " CO " << i << " lane " << lane;
      }
    }
    const auto& counters = engine.counters();
    EXPECT_EQ(counters.traversals, 1u);
    EXPECT_EQ(counters.pattern_words, 8u);
    EXPECT_EQ(counters.node_evals, g.num_gates() * 8u);
  }
}

TEST(SimEngine, Simulate64MatchesReference) {
  for (const char* name : {"c880", "s27", "dec"}) {
    const aig g = benchgen::make_benchmark(name);
    rng gen(21);
    std::vector<std::uint64_t> patterns(g.num_cis());
    for (int rep = 0; rep < 4; ++rep) {
      for (auto& p : patterns) p = gen();
      EXPECT_EQ(simulate64(g, patterns), reference_simulate64(g, patterns))
          << name;
    }
  }
}

TEST(SimEngine, Simulate64RejectsPatternMismatch) {
  const aig g = tiny_adder();
  std::vector<std::uint64_t> too_few(2, 0);
  EXPECT_THROW((void)simulate64(g, too_few), std::invalid_argument);
}

TEST(SimEngine, ComputeCoTablesMatchesReferenceSmallDomain) {
  const aig g = tiny_adder();  // 3 CIs: single-word tables
  EXPECT_EQ(compute_co_tables(g), reference_co_tables(g));
}

TEST(SimEngine, ComputeCoTablesMatchesReferenceWideDomain) {
  const aig g = benchgen::make_benchmark("dec");  // 8 CIs: 4-word tables
  ASSERT_GT(g.num_cis(), truth_table::small_vars);
  EXPECT_EQ(compute_co_tables(g), reference_co_tables(g));
}

// ---------------------------------------------------------------------------
// Incremental resimulation.
// ---------------------------------------------------------------------------

TEST(SimEngine, IncrementalResimMatchesFullResim) {
  const aig g = benchgen::make_benchmark("c880");
  sim_engine incremental(8);
  sim_engine full(8);
  incremental.attach(g);
  full.attach(g);

  rng gen(13);
  std::vector<std::vector<std::uint64_t>> patterns(
      g.num_cis(), std::vector<std::uint64_t>(8));
  for (std::size_t i = 0; i < g.num_cis(); ++i) {
    for (auto& p : patterns[i]) p = gen();
    std::copy(patterns[i].begin(), patterns[i].end(),
              incremental.ci_words(i).begin());
  }
  incremental.simulate();

  // Touch two inputs; only their fanout cones may be re-evaluated.
  const std::uint64_t before_evals = incremental.counters().node_evals;
  for (const std::size_t ci : {std::size_t{3}, std::size_t{17}}) {
    for (auto& p : patterns[ci]) p = gen();
    std::copy(patterns[ci].begin(), patterns[ci].end(),
              incremental.ci_words(ci).begin());
  }
  incremental.resimulate();
  EXPECT_GT(incremental.counters().node_evals_skipped, 0u);
  EXPECT_LT(incremental.counters().node_evals - before_evals,
            g.num_gates() * 8u);

  for (std::size_t i = 0; i < g.num_cis(); ++i) {
    std::copy(patterns[i].begin(), patterns[i].end(),
              full.ci_words(i).begin());
  }
  full.simulate();
  EXPECT_TRUE(incremental.co_equal(full));
}

TEST(SimEngine, ResimWithoutChangesDoesNoWork) {
  const aig g = benchgen::make_benchmark("c432");
  sim_engine engine(4);
  engine.attach(g);
  rng gen(3);
  engine.randomize_inputs(gen);
  engine.simulate();
  const auto evals = engine.counters().node_evals;
  engine.resimulate();  // no CI was written: nothing to do
  EXPECT_EQ(engine.counters().node_evals, evals);
}

TEST(SimEngine, ResimBeforeFirstSweepFallsBackToFullSweep) {
  const aig g = tiny_adder();
  sim_engine engine(1);
  engine.attach(g);
  engine.ci_words(0)[0] = 0xF0F0;
  engine.ci_words(1)[0] = 0xFF00;
  engine.ci_words(2)[0] = 0xAAAA;
  engine.resimulate();  // valid full sweep despite never calling simulate()
  const std::vector<std::uint64_t> patterns = {0xF0F0, 0xFF00, 0xAAAA};
  const auto ref = reference_simulate64(g, patterns);
  EXPECT_EQ(engine.co_word(0, 0), ref[0]);
  EXPECT_EQ(engine.co_word(1, 0), ref[1]);
}

TEST(SimEngine, IncrementalResimStaysEquivalentAfterRewriteSteps) {
  const aig original = benchgen::make_benchmark("c432");
  opt_engine opt;
  aig previous = original;
  for (const char* pass : {"b", "rw", "rf", "rwz"}) {
    const aig next = opt.run_pass(previous, pass);

    sim_engine sim_prev(8);
    sim_engine sim_next(8);
    sim_prev.attach(previous);
    sim_next.attach(next);
    rng gen(29);
    for (std::size_t i = 0; i < previous.num_cis(); ++i) {
      const auto wp = sim_prev.ci_words(i);
      const auto wn = sim_next.ci_words(i);
      for (unsigned lane = 0; lane < 8; ++lane) wp[lane] = wn[lane] = gen();
    }
    sim_prev.simulate();
    sim_next.simulate();
    ASSERT_TRUE(sim_prev.co_equal(sim_next)) << pass;

    // Flip one input on both sides; the incremental cones must agree too.
    for (unsigned lane = 0; lane < 8; ++lane) {
      const std::uint64_t p = gen();
      sim_prev.ci_words(0)[lane] = p;
      sim_next.ci_words(0)[lane] = p;
    }
    sim_prev.resimulate();
    sim_next.resimulate();
    ASSERT_TRUE(sim_prev.co_equal(sim_next)) << pass << " (incremental)";
    previous = next;
  }
}

// ---------------------------------------------------------------------------
// Equivalence entry points.
// ---------------------------------------------------------------------------

TEST(SimEngine, EquivalenceChecksStaySoundOnNonEquivalentNetworks) {
  const aig adder = tiny_adder();
  aig broken;  // same interface, cout computed as AND instead of MAJ
  {
    const signal a = broken.create_pi("a");
    const signal b = broken.create_pi("b");
    const signal c = broken.create_pi("cin");
    broken.create_po(broken.create_xor(broken.create_xor(a, b), c), "s");
    broken.create_po(broken.create_and(a, b), "cout");
  }
  EXPECT_FALSE(random_equivalent(adder, broken, 8, 3));
  EXPECT_FALSE(exhaustive_equivalent(adder, broken));
  EXPECT_TRUE(random_equivalent(adder, adder, 8, 3));
  EXPECT_TRUE(exhaustive_equivalent(adder, adder));
}

TEST(SimEngine, ExhaustiveEquivalentOnWideDomain) {
  const aig g = benchgen::make_benchmark("dec");  // > 6 CIs: multi-word plane
  opt_engine opt;
  const aig balanced = opt.run_pass(g, "b");
  EXPECT_TRUE(exhaustive_equivalent(g, balanced));
}

TEST(SimEngine, EquivalenceCheckerRecyclesAcrossChecks) {
  equivalence_checker checker;
  const aig a = benchgen::make_benchmark("c432");
  const aig b = benchgen::make_benchmark("c880");
  EXPECT_TRUE(checker.check(a, a, 16, 1));
  EXPECT_TRUE(checker.check(b, b, 16, 1));   // re-attach to a larger network
  EXPECT_FALSE(checker.check(a, b, 16, 1));  // interface mismatch
  EXPECT_GT(checker.counters().pattern_words, 0u);
  EXPECT_GT(checker.counters().node_evals, 0u);
}

// ---------------------------------------------------------------------------
// Per-pass validation in the opt engine.
// ---------------------------------------------------------------------------

TEST(OptEngineValidation, ValidatePassesChecksEveryPassAndKeepsResults) {
  const aig g = benchgen::make_benchmark("c432");
  optimize_params validated;
  validated.validate_passes = true;
  validated.validate_rounds = 8;
  optimize_stats st;
  const aig opt = optimize(g, validated, &st);
  EXPECT_GT(st.work.equiv_checks, 0u);
  EXPECT_GT(st.work.sim_words, 0u);
  EXPECT_GT(st.work.sim_node_evals, 0u);
  // 5 passes per round.
  EXPECT_EQ(st.work.equiv_checks, st.work.passes);

  optimize_stats st_plain;
  const aig opt_plain = optimize(g, {}, &st_plain);
  EXPECT_EQ(opt.num_gates(), opt_plain.num_gates());
  EXPECT_EQ(opt.depth(), opt_plain.depth());
  EXPECT_EQ(st_plain.work.equiv_checks, 0u);
  EXPECT_EQ(st_plain.work.sim_words, 0u);
}

TEST(OptEngineValidation, VerifyPassThrowsOnBrokenEquivalence) {
  const aig adder = tiny_adder();
  aig broken;
  {
    const signal a = broken.create_pi("a");
    const signal b = broken.create_pi("b");
    const signal c = broken.create_pi("cin");
    broken.create_po(broken.create_or(broken.create_xor(a, b), c), "s");
    broken.create_po(broken.create_maj(a, b, c), "cout");
  }
  opt_engine engine;
  EXPECT_THROW(engine.verify_pass(adder, broken, "rw", 8),
               std::runtime_error);
  EXPECT_NO_THROW(engine.verify_pass(adder, adder, "b", 8));
  EXPECT_EQ(engine.counters().equiv_checks, 2u);
}

// ---------------------------------------------------------------------------
// Content hash (the circuit half of the batch result-cache key).
// ---------------------------------------------------------------------------

TEST(ContentHash, EqualConstructionHashesEqual) {
  const aig a = benchgen::make_benchmark("c432");
  const aig b = benchgen::make_benchmark("c432");
  EXPECT_EQ(a.content_hash(), b.content_hash());
  EXPECT_NE(a.content_hash(), benchgen::make_benchmark("c880").content_hash());
}

TEST(ContentHash, SensitiveToStructureNamesAndOutputs) {
  const aig base = tiny_adder();
  aig extra_gate = base;
  extra_gate.create_po(
      extra_gate.create_and(extra_gate.pi(0), extra_gate.pi(2)), "t");
  EXPECT_NE(base.content_hash(), extra_gate.content_hash());

  aig renamed;  // same structure, different PI name
  {
    const signal a = renamed.create_pi("a");
    const signal b = renamed.create_pi("b");
    const signal c = renamed.create_pi("carry_in");
    renamed.create_po(renamed.create_xor(renamed.create_xor(a, b), c), "s");
    renamed.create_po(renamed.create_maj(a, b, c), "cout");
  }
  EXPECT_NE(base.content_hash(), renamed.content_hash());

  aig flipped = base;  // same nodes, complemented PO
  flipped.replace_po(0, !flipped.po_signal(0));
  EXPECT_NE(base.content_hash(), flipped.content_hash());
}

}  // namespace
}  // namespace xsfq
