#include <gtest/gtest.h>

#include "aig/simulate.hpp"
#include "benchgen/iscas85.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/blif_io.hpp"
#include "netlist/dot_io.hpp"
#include "netlist/netlist.hpp"

namespace xsfq {
namespace {

constexpr const char* k_bench_text = R"(
# full adder
INPUT(a)
INPUT(b)
INPUT(cin)
OUTPUT(s)
OUTPUT(cout)
x = XOR(a, b)
s = XOR(x, cin)
t1 = AND(a, b)
t2 = AND(x, cin)
cout = OR(t1, t2)
)";

TEST(Bench, ParsesFullAdder) {
  const netlist n = read_bench_string(k_bench_text, "fa");
  EXPECT_EQ(n.num_inputs(), 3u);
  EXPECT_EQ(n.num_outputs(), 2u);
  EXPECT_EQ(n.num_gates(), 5u);
  const aig g = n.to_aig();
  // Validate function.
  const auto tables = compute_co_tables(g);
  const auto a = truth_table::nth_var(3, 0);
  const auto b = truth_table::nth_var(3, 1);
  const auto c = truth_table::nth_var(3, 2);
  EXPECT_EQ(tables[0], a ^ b ^ c);
  EXPECT_EQ(tables[1], (a & b) | (a & c) | (b & c));
}

TEST(Bench, ForwardReferencesAllowed) {
  const netlist n = read_bench_string(
      "INPUT(a)\nOUTPUT(y)\ny = NOT(x)\nx = BUFF(a)\n");
  const aig g = n.to_aig();
  EXPECT_EQ(compute_co_tables(g)[0], ~truth_table::nth_var(1, 0));
}

TEST(Bench, SequentialDffWithInit) {
  const netlist n = read_bench_string(
      "INPUT(d)\nOUTPUT(q)\nq = DFF(d, 1)\n");
  const aig g = n.to_aig();
  EXPECT_EQ(g.num_registers(), 1u);
  EXPECT_TRUE(g.register_at(0).init);
  sequential_simulator sim(g);
  EXPECT_EQ(sim.step({false})[0], true);   // init value
  EXPECT_EQ(sim.step({true})[0], false);   // captured 0
  EXPECT_EQ(sim.step({false})[0], true);
}

TEST(Bench, RoundTripThroughWriter) {
  const netlist n = read_bench_string(k_bench_text, "fa");
  const std::string text = write_bench_string(n);
  const netlist n2 = read_bench_string(text, "fa");
  EXPECT_TRUE(exhaustive_equivalent(n.to_aig(), n2.to_aig()));
}

TEST(Bench, AigRoundTrip) {
  const aig g = benchgen::make_c432();
  const netlist n = netlist_from_aig(g, "c432");
  const std::string text = write_bench_string(n);
  const aig g2 = read_bench_string(text).to_aig();
  EXPECT_TRUE(random_equivalent(g, g2, 32, 9));
}

TEST(Bench, Errors) {
  EXPECT_THROW(read_bench_string("y = FROB(a)\n"), std::invalid_argument);
  EXPECT_THROW(read_bench_string("INPUT(a)\ny = NOT(a, a)\n"),
               std::invalid_argument);
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(y)\n"),
               std::invalid_argument);  // y undriven
  EXPECT_THROW(read_bench_string("INPUT(a)\na = NOT(a)\n"),
               std::invalid_argument);  // driven twice
}

constexpr const char* k_blif_text = R"(
.model mux
.inputs s a b
.outputs y
.names s a t0
11 1
.names s b t1
01 1
.names t0 t1 y
1- 1
-1 1
.end
)";

TEST(Blif, ParsesMux) {
  const netlist n = read_blif_string(k_blif_text);
  EXPECT_EQ(n.name(), "mux");
  const aig g = n.to_aig();
  const auto tables = compute_co_tables(g);
  const auto s = truth_table::nth_var(3, 0);
  const auto a = truth_table::nth_var(3, 1);
  const auto b = truth_table::nth_var(3, 2);
  EXPECT_EQ(tables[0], (s & a) | (~s & b));
}

TEST(Blif, OffsetCover) {
  // Output listed through its offset: y=0 exactly when a=1,b=1 -> y = NAND.
  const netlist n = read_blif_string(
      ".model t\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n");
  const aig g = n.to_aig();
  EXPECT_EQ(compute_co_tables(g)[0],
            ~(truth_table::nth_var(2, 0) & truth_table::nth_var(2, 1)));
}

TEST(Blif, LatchWithInit) {
  const netlist n = read_blif_string(
      ".model c\n.inputs d\n.outputs q\n.latch d q re clk 1\n.end\n");
  const aig g = n.to_aig();
  EXPECT_EQ(g.num_registers(), 1u);
  EXPECT_TRUE(g.register_at(0).init);
}

TEST(Blif, ConstantNames) {
  const netlist n = read_blif_string(
      ".model k\n.outputs one zero\n.names one\n1\n.names zero\n.end\n");
  const aig g = n.to_aig();
  const auto tables = compute_co_tables(g);
  EXPECT_TRUE(tables[0].is_const1());
  EXPECT_TRUE(tables[1].is_const0());
}

TEST(Blif, RoundTripThroughWriter) {
  const netlist n = read_blif_string(k_blif_text);
  const netlist n2 = read_blif_string(write_blif_string(n));
  EXPECT_TRUE(exhaustive_equivalent(n.to_aig(), n2.to_aig()));
}

TEST(Blif, AigWithRegistersRoundTrip) {
  aig g;
  const signal in = g.create_pi("in");
  const signal r = g.create_register_output(true, "st");
  g.set_register_input(0, g.create_xor(in, r));
  g.create_po(g.create_and(r, in), "out");
  const netlist n = netlist_from_aig(g, "seq");
  const aig g2 = read_blif_string(write_blif_string(n)).to_aig();
  EXPECT_TRUE(random_sequential_equivalent(g, g2, 8, 64));
}

TEST(Dot, ContainsStructure) {
  aig g;
  const signal a = g.create_pi("a");
  const signal b = g.create_pi("b");
  g.create_po(!g.create_and(a, b), "y");
  const std::string dot = write_dot_string(g, "t");
  EXPECT_NE(dot.find("digraph t"), std::string::npos);
  EXPECT_NE(dot.find("style=dotted"), std::string::npos);  // the PO inversion
  EXPECT_NE(dot.find("label=\"a\""), std::string::npos);
}

}  // namespace
}  // namespace xsfq
