/// Tests for the serve subsystem: frame codec hardening (truncated,
/// oversized, version-mismatched, garbage frames), payload round trips,
/// and the in-process server end to end — concurrent clients receiving
/// byte-identical responses to direct driver runs, streamed progress,
/// warm disk-cache hits across a daemon restart, graceful drain, TCP with
/// shared-secret auth, typed cross-version errors, admission shedding
/// (overload + deadline), the connection cap, and the server_stats scrape.
#include "serve/server.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <thread>

#include "serve/client.hpp"
#include "serve/synth_service.hpp"

namespace xsfq {
namespace {

namespace fs = std::filesystem;
using namespace serve;

struct temp_dir {
  std::string path;
  temp_dir() {
    char tmpl[] = "/tmp/xsfq_serve_XXXXXX";
    path = mkdtemp(tmpl);
  }
  ~temp_dir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// read_fn over an in-memory byte buffer (possibly truncated).
read_fn buffer_reader(std::vector<std::uint8_t> bytes) {
  auto state = std::make_shared<std::pair<std::vector<std::uint8_t>,
                                          std::size_t>>(std::move(bytes), 0);
  return [state](void* dst, std::size_t n) -> std::size_t {
    const std::size_t avail = state->first.size() - state->second;
    const std::size_t take = std::min(n, avail);
    if (take > 0) {
      std::memcpy(dst, state->first.data() + state->second, take);
      state->second += take;
    }
    return take;
  };
}

// ---------------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------------

TEST(ServeProtocol, FrameRoundTrip) {
  const std::vector<std::uint8_t> payload{1, 2, 3, 250};
  const auto bytes = encode_frame(msg_type::submit, payload);
  const auto f = read_frame(buffer_reader(bytes));
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, msg_type::submit);
  EXPECT_EQ(f->payload, payload);
  // Clean end-of-stream before any header byte is not an error.
  EXPECT_FALSE(read_frame(buffer_reader({})).has_value());
}

TEST(ServeProtocol, TruncatedFramesRejected) {
  const auto bytes =
      encode_frame(msg_type::submit, std::vector<std::uint8_t>(16, 7));
  // Every strict prefix must throw (header or payload truncation).
  for (const std::size_t keep :
       {std::size_t{1}, std::size_t{5}, std::size_t{6}, bytes.size() - 1}) {
    std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + keep);
    EXPECT_THROW(read_frame(buffer_reader(cut)), protocol_error) << keep;
  }
}

TEST(ServeProtocol, OversizedAndGarbageFramesRejected) {
  // Header announcing more than max_frame_payload.
  byte_writer w;
  w.u32(max_frame_payload + 1);
  w.u8(protocol_version);
  w.u8(static_cast<std::uint8_t>(msg_type::submit));
  EXPECT_THROW(read_frame(buffer_reader(w.take())), protocol_error);
  // Implausible version bytes (how arbitrary garbage usually dies): zero and
  // far-future both throw at the frame level.
  for (const std::uint8_t bad : {std::uint8_t{0}, std::uint8_t{250}}) {
    byte_writer v;
    v.u32(0);
    v.u8(bad);
    v.u8(static_cast<std::uint8_t>(msg_type::ping));
    EXPECT_THROW(read_frame(buffer_reader(v.take())), protocol_error)
        << unsigned{bad};
  }
  // A *plausible* foreign version parses structurally (frozen header) and
  // surfaces in frame::version so the caller can answer with a typed error.
  const auto foreign =
      encode_frame(msg_type::ping, {}, protocol_version + 1);
  const auto f = read_frame(buffer_reader(foreign));
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->version, protocol_version + 1);
  EXPECT_EQ(f->type, msg_type::ping);
  // Garbage payload on a valid frame dies in the payload decoder.
  const std::vector<std::uint8_t> junk{0xde, 0xad, 0xbe, 0xef, 0x41, 0x41};
  EXPECT_THROW(decode_synth_request(junk), serialize_error);
  EXPECT_THROW(decode_synth_response(junk), serialize_error);
}

TEST(ServeProtocol, V3PayloadRoundTrips) {
  // Admission fields on the request.
  synth_request req;
  req.spec = "c432";
  req.priority = 210;
  req.deadline_ms = 75.5;
  const synth_request back = decode_synth_request(encode_synth_request(req));
  EXPECT_EQ(back.priority, 210u);
  EXPECT_DOUBLE_EQ(back.deadline_ms, 75.5);

  hello_request hreq;
  hreq.client_name = "test/1";
  const hello_request hback =
      decode_hello_request(encode_hello_request(hreq));
  EXPECT_EQ(hback.client_version, protocol_version);
  EXPECT_EQ(hback.client_name, "test/1");

  hello_reply hr;
  hr.auth_required = true;
  hr.capabilities = {"auth", "server_stats"};
  const hello_reply hrback = decode_hello_reply(encode_hello_reply(hr));
  EXPECT_TRUE(hrback.auth_required);
  EXPECT_EQ(hrback.max_payload, max_frame_payload);
  EXPECT_EQ(hrback.capabilities,
            (std::vector<std::string>{"auth", "server_stats"}));

  const auth_request aback =
      decode_auth_request(encode_auth_request({"s3cret"}));
  EXPECT_EQ(aback.token, "s3cret");

  // Typed errors round trip; unknown future codes degrade to generic.
  const error_reply err =
      decode_error(encode_error(error_code::overloaded, "full"));
  EXPECT_EQ(err.code, error_code::overloaded);
  EXPECT_EQ(err.message, "full");
  EXPECT_EQ(err.retry_after_ms, 0u);
  byte_writer fw;
  fw.u8(200);  // a code this build does not know
  fw.str("from the future");
  const error_reply fut = decode_error(fw.take());
  EXPECT_EQ(fut.code, error_code::generic);
  EXPECT_EQ(fut.message, "from the future");
  EXPECT_EQ(decode_legacy_error(encode_legacy_error("old")), "old");

  server_stats_reply stats;
  stats.status.jobs_submitted = 7;
  stats.cache.full_hits = 3;
  stats.cache.disk_quarantined = 2;
  stats.accepted = 5;
  stats.rejected_overload = 2;
  stats.queue_depth = 1;
  stats.runner_queue_depth = 4;
  stats.io_timeouts = 6;
  stats.fault_fired = 3;
  stats.fault_sites.push_back({"serve.send.reset", 9, 3});
  histogram_snapshot h;
  h.name = "queue_wait";
  h.count = 2;
  h.sum_ms = 3.5;
  h.max_ms = 3.0;
  h.buckets.assign(log_histogram::num_buckets, 0);
  h.buckets[4] = 2;
  stats.histograms.push_back(h);
  const server_stats_reply sback =
      decode_server_stats(encode_server_stats(stats));
  EXPECT_EQ(sback.status.jobs_submitted, 7u);
  EXPECT_EQ(sback.cache.full_hits, 3u);
  EXPECT_EQ(sback.accepted, 5u);
  EXPECT_EQ(sback.rejected_overload, 2u);
  EXPECT_EQ(sback.queue_depth, 1u);
  EXPECT_EQ(sback.runner_queue_depth, 4u);
  EXPECT_EQ(sback.cache.disk_quarantined, 2u);
  EXPECT_EQ(sback.io_timeouts, 6u);
  EXPECT_EQ(sback.fault_fired, 3u);
  ASSERT_EQ(sback.fault_sites.size(), 1u);
  EXPECT_EQ(sback.fault_sites[0].site, "serve.send.reset");
  EXPECT_EQ(sback.fault_sites[0].hits, 9u);
  EXPECT_EQ(sback.fault_sites[0].fired, 3u);
  ASSERT_EQ(sback.histograms.size(), 1u);
  EXPECT_EQ(sback.histograms[0].name, "queue_wait");
  EXPECT_EQ(sback.histograms[0].count, 2u);
  ASSERT_EQ(sback.histograms[0].buckets.size(), log_histogram::num_buckets);
  EXPECT_EQ(sback.histograms[0].buckets[4], 2u);
}

TEST(ServeProtocol, V6TracePayloadRoundTrips) {
  // The trace id rides the tail of synth_request (absent = 0/0 untraced).
  synth_request req;
  req.spec = "c432";
  req.trace_hi = 0x0123456789abcdefull;
  req.trace_lo = 0xfedcba9876543210ull;
  const synth_request back = decode_synth_request(encode_synth_request(req));
  EXPECT_EQ(back.trace_hi, req.trace_hi);
  EXPECT_EQ(back.trace_lo, req.trace_lo);

  const trace_request tback = decode_trace_request(
      encode_trace_request({0x1111ull, 0x2222ull}));
  EXPECT_EQ(tback.trace_hi, 0x1111ull);
  EXPECT_EQ(tback.trace_lo, 0x2222ull);

  trace_reply reply;
  reply.trace_hi = 0x1111ull;
  reply.trace_lo = 0x2222ull;
  reply.spans.push_back({"queue_wait", 100, 25, 3});
  reply.spans.push_back({"stage:optimize", 130, 900, 4});
  reply.spans.push_back({"request_total", 100, 1000, 3});
  const trace_reply rback = decode_trace_reply(encode_trace_reply(reply));
  EXPECT_EQ(rback.trace_hi, reply.trace_hi);
  EXPECT_EQ(rback.trace_lo, reply.trace_lo);
  ASSERT_EQ(rback.spans.size(), 3u);
  EXPECT_EQ(rback.spans[0].name, "queue_wait");
  EXPECT_EQ(rback.spans[0].start_us, 100u);
  EXPECT_EQ(rback.spans[0].dur_us, 25u);
  EXPECT_EQ(rback.spans[0].tid, 3u);
  EXPECT_EQ(rback.spans[1].name, "stage:optimize");
  EXPECT_EQ(rback.spans[2].name, "request_total");

  // Empty reply (unknown id) round trips too.
  const trace_reply eback =
      decode_trace_reply(encode_trace_reply({0x9ull, 0x9ull, {}}));
  EXPECT_EQ(eback.trace_hi, 0x9ull);
  EXPECT_TRUE(eback.spans.empty());

  // v6 flight-recorder counters in the stats scrape.
  server_stats_reply stats;
  stats.trace_spans_recorded = 12345;
  stats.trace_spans_dropped = 67;
  const server_stats_reply sback =
      decode_server_stats(encode_server_stats(stats));
  EXPECT_EQ(sback.trace_spans_recorded, 12345u);
  EXPECT_EQ(sback.trace_spans_dropped, 67u);
}

TEST(ServeProtocol, V7RetainedAndQuarantineCountersRoundTrip) {
  // v7 appends the retained-tier LRU eviction count and the quarantine
  // prune count to both stats codecs.
  cache_stats_reply cache;
  cache.stats.retained_networks = 3;
  cache.stats.retained_evictions = 11;
  cache.stats.disk_quarantine_pruned = 4;
  cache.disk_directory = "/tmp/somewhere";
  const cache_stats_reply cback =
      decode_cache_stats(encode_cache_stats(cache));
  EXPECT_EQ(cback.stats.retained_networks, 3u);
  EXPECT_EQ(cback.stats.retained_evictions, 11u);
  EXPECT_EQ(cback.stats.disk_quarantine_pruned, 4u);
  EXPECT_EQ(cback.disk_directory, "/tmp/somewhere");

  server_stats_reply stats;
  stats.cache.retained_evictions = 7;
  stats.cache.disk_quarantine_pruned = 2;
  const server_stats_reply sback =
      decode_server_stats(encode_server_stats(stats));
  EXPECT_EQ(sback.cache.retained_evictions, 7u);
  EXPECT_EQ(sback.cache.disk_quarantine_pruned, 2u);

  // And both surface in the Prometheus rendering.
  const std::string text = format_server_stats_text(sback);
  EXPECT_NE(text.find("xsfq_eco_retained_evictions_total 7"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("xsfq_cache_disk_quarantine_pruned_total 2"),
            std::string::npos)
      << text;
}

TEST(ServeProtocol, RetryAfterHintRoundTripsAndDegradesPerVersion) {
  // v5 payload carries the hint...
  const error_reply hinted =
      decode_error(encode_error(error_code::overloaded, "full", 1234));
  EXPECT_EQ(hinted.code, error_code::overloaded);
  EXPECT_EQ(hinted.retry_after_ms, 1234u);
  // ...and the one decoder reads every vintage: a v3/v4 payload (no
  // trailing hint) decodes with hint 0 instead of throwing.
  const auto v4_payload = encode_error_for_version(
      4, error_code::overloaded, "full", 1234);
  const error_reply v4_err = decode_error(v4_payload);
  EXPECT_EQ(v4_err.code, error_code::overloaded);
  EXPECT_EQ(v4_err.retry_after_ms, 0u);  // hint dropped for the v4 peer
  EXPECT_LT(v4_payload.size(),
            encode_error(error_code::overloaded, "full", 1234).size());
  // A pre-v3 peer gets the legacy bare-string payload.
  EXPECT_EQ(decode_legacy_error(encode_error_for_version(
                2, error_code::overloaded, "full", 1234)),
            "full");
  // v5+ peers (and the future) get the full layout.
  EXPECT_EQ(decode_error(encode_error_for_version(
                            5, error_code::overloaded, "full", 777))
                .retry_after_ms,
            777u);
}

TEST(ServeProtocol, ConstantTimeEqualCompares) {
  EXPECT_TRUE(constant_time_equal("", ""));
  EXPECT_TRUE(constant_time_equal("topsecret", "topsecret"));
  EXPECT_FALSE(constant_time_equal("topsecret", "topsecrer"));
  EXPECT_FALSE(constant_time_equal("topsecret", "topsecret "));
  EXPECT_FALSE(constant_time_equal("", "x"));
  EXPECT_FALSE(constant_time_equal("x", ""));
}

TEST(ServeProtocol, PayloadRoundTrips) {
  synth_request req;
  req.spec = "adder.bench";
  req.source = circuit_source::bench_text;
  req.source_text = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
  req.model = "adder";
  req.map.polarity = polarity_mode::positive_outputs;
  req.map.pipeline_stages = 3;
  req.map.reg_style = register_style::pair_boundary;
  req.map.forced_polarities = std::vector<bool>{true, false, true};
  req.validate = true;
  req.want_verilog = true;
  req.stream_progress = true;
  req.flow_jobs = 6;
  const synth_request back = decode_synth_request(encode_synth_request(req));
  EXPECT_EQ(back.spec, req.spec);
  EXPECT_EQ(back.source, circuit_source::bench_text);
  EXPECT_EQ(back.source_text, req.source_text);
  EXPECT_EQ(back.model, req.model);
  EXPECT_EQ(back.map.polarity, req.map.polarity);
  EXPECT_EQ(back.map.pipeline_stages, 3u);
  EXPECT_EQ(back.map.reg_style, register_style::pair_boundary);
  EXPECT_EQ(back.map.forced_polarities, req.map.forced_polarities);
  EXPECT_TRUE(back.validate && back.want_verilog && back.stream_progress);
  EXPECT_FALSE(back.want_dot);
  EXPECT_EQ(back.flow_jobs, 6u);

  synth_response resp;
  resp.ok = true;
  resp.report = "loaded ...\n";
  resp.validate_report = "validate: PASS\n";
  resp.verilog = "module m; endmodule\n";
  resp.timings.push_back({"optimize", 1.5, {}});
  resp.timings[0].counters.nodes = 42;
  resp.total_ms = 2.25;
  resp.served_from_cache = true;
  const synth_response rback =
      decode_synth_response(encode_synth_response(resp));
  EXPECT_TRUE(rback.ok);
  EXPECT_EQ(rback.report, resp.report);
  EXPECT_EQ(rback.verilog, resp.verilog);
  ASSERT_EQ(rback.timings.size(), 1u);
  EXPECT_EQ(rback.timings[0].stage, "optimize");
  EXPECT_EQ(rback.timings[0].counters.nodes, 42u);
  EXPECT_TRUE(rback.served_from_cache);

  progress_event ev{"map", 2, 4, 0.5, {}, true};
  const progress_event eback =
      decode_progress_event(encode_progress_event(ev));
  EXPECT_EQ(eback.stage, "map");
  EXPECT_EQ(eback.index, 2u);
  EXPECT_EQ(eback.total, 4u);
  EXPECT_TRUE(eback.from_cache);
}

// ---------------------------------------------------------------------------
// End to end against an in-process server.
// ---------------------------------------------------------------------------

struct server_fixture {
  temp_dir dir;
  std::unique_ptr<server> srv;

  std::string socket_path() const { return dir.path + "/served.sock"; }
  std::string cache_dir() const { return dir.path + "/cache"; }

  void start(unsigned threads = 2, bool with_disk_cache = true) {
    server_options options;
    options.socket_path = socket_path();
    options.threads = threads;
    if (with_disk_cache) options.cache_dir = cache_dir();
    start_with(options);
  }

  /// Caller-tuned options; socket_path is filled in when left empty.
  void start_with(server_options options) {
    if (options.socket_path.empty() && options.listen_address.empty()) {
      options.socket_path = socket_path();
    }
    srv = std::make_unique<server>(std::move(options));
  }
};

TEST(ServeEndToEnd, SubmitMatchesDirectDriverByteForByte) {
  server_fixture fx;
  fx.start();
  const synth_request req = make_request_for_spec("c432");

  flow::batch_runner local(1);
  const synth_response expected = run_synth(req, local);
  ASSERT_TRUE(expected.ok);

  client cli(fx.socket_path());
  const synth_response served = cli.submit(req);
  ASSERT_TRUE(served.ok);
  EXPECT_EQ(served.report, expected.report);
  EXPECT_EQ(served.validate_report, expected.validate_report);
}

TEST(ServeEndToEnd, ConcurrentClientsGetByteIdenticalResults) {
  server_fixture fx;
  fx.start(/*threads=*/4);

  const std::vector<std::string> circuits{"c432", "c880", "c432", "c1908",
                                          "c880", "c432"};
  // Expected deterministic output, computed through the same driver.
  flow::batch_runner local(2);
  std::vector<std::string> expected_reports;
  for (const auto& name : circuits) {
    const synth_response r = run_synth(make_request_for_spec(name), local);
    ASSERT_TRUE(r.ok) << name;
    expected_reports.push_back(r.report);
  }

  // >= 4 simultaneous clients, each on its own connection (acceptance
  // criterion); repeated circuits also exercise the in-flight dedup and
  // memory-cache tiers under concurrency.
  std::vector<std::thread> threads;
  std::vector<std::string> got(circuits.size());
  std::vector<bool> ok(circuits.size(), false);
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    threads.emplace_back([&, i] {
      client cli(fx.socket_path());
      const synth_response r =
          cli.submit(make_request_for_spec(circuits[i]));
      got[i] = r.report;
      ok[i] = r.ok;
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    EXPECT_TRUE(ok[i]) << circuits[i];
    EXPECT_EQ(got[i], expected_reports[i]) << circuits[i];
  }
  const auto status = fx.srv->status();
  EXPECT_EQ(status.jobs_submitted, circuits.size());
  EXPECT_EQ(status.jobs_completed, circuits.size());
}

TEST(ServeEndToEnd, ProgressEventsStreamPerStage) {
  server_fixture fx;
  fx.start();
  client cli(fx.socket_path());

  synth_request req = make_request_for_spec("c432");
  req.stream_progress = true;
  std::vector<progress_event> events;
  const synth_response resp =
      cli.submit(req, [&](const progress_event& ev) { events.push_back(ev); });
  ASSERT_TRUE(resp.ok);
  ASSERT_EQ(events.size(), 4u);  // generate, optimize, map, baseline
  EXPECT_EQ(events[0].stage, "generate");
  EXPECT_EQ(events[1].stage, "optimize");
  EXPECT_EQ(events[2].stage, "map");
  EXPECT_EQ(events[3].stage, "baseline");
  for (const auto& ev : events) {
    EXPECT_EQ(ev.total, 4u);
    EXPECT_FALSE(ev.from_cache);  // cold run
  }
  EXPECT_FALSE(resp.served_from_cache);
  // The events mirror flow_result.timings stage for stage.
  ASSERT_EQ(resp.timings.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].stage, resp.timings[i].stage);
  }

  // Warm repeat: same events, now replayed from the cache.
  events.clear();
  const synth_response warm =
      cli.submit(req, [&](const progress_event& ev) { events.push_back(ev); });
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.served_from_cache);
  ASSERT_EQ(events.size(), 4u);
  for (const auto& ev : events) EXPECT_TRUE(ev.from_cache);
  EXPECT_EQ(warm.report, resp.report);
}

TEST(ServeEndToEnd, DiskCacheSurvivesDaemonRestart) {
  server_fixture fx;
  fx.start();
  const synth_request req = make_request_for_spec("c880");
  std::string cold_report;
  {
    client cli(fx.socket_path());
    const synth_response cold = cli.submit(req);
    ASSERT_TRUE(cold.ok);
    EXPECT_FALSE(cold.served_from_cache);
    cold_report = cold.report;
    const auto stats = cli.cache_stats().stats;
    EXPECT_EQ(stats.disk_writes, 1u);
  }
  fx.srv->stop();  // drain the "daemon"
  fx.start();      // restart over the same cache directory

  client cli(fx.socket_path());
  const synth_response warm = cli.submit(req);
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.served_from_cache);
  EXPECT_EQ(warm.report, cold_report);
  const auto reply = cli.cache_stats();
  EXPECT_EQ(reply.stats.disk_hits, 1u);   // served from the disk tier
  EXPECT_EQ(reply.stats.full_hits, 0u);   // memory cache was cold
  EXPECT_EQ(reply.disk_directory, fx.cache_dir());
}

TEST(ServeEndToEnd, BenchTextRequestsServeParsedCircuits) {
  server_fixture fx;
  fx.start();
  // An inline .bench payload, as xsfq_client sends for file specs.
  synth_request req;
  req.spec = "inline.bench";
  req.source = circuit_source::bench_text;
  req.model = "inline";
  req.source_text =
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n";
  client cli(fx.socket_path());
  const synth_response resp = cli.submit(req);
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_NE(resp.report.find("loaded inline.bench: 2 PI, 1 PO"),
            std::string::npos)
      << resp.report;
}

TEST(ServeEndToEnd, FailuresComeBackAsErrorResponsesNotHangs) {
  server_fixture fx;
  fx.start();
  client cli(fx.socket_path());
  synth_request req;
  req.spec = "no_such_benchmark_xyz";
  const synth_response resp = cli.submit(req);
  EXPECT_FALSE(resp.ok);
  EXPECT_FALSE(resp.error.empty());
  // The connection survives a failed request.
  EXPECT_TRUE(cli.ping());
  EXPECT_EQ(fx.srv->status().jobs_failed, 1u);
}

TEST(ServeEndToEnd, UnknownAndGarbageFramesGetErrorFrames) {
  server_fixture fx;
  fx.start();
  // Raw connection speaking nonsense.
  client cli(fx.socket_path());  // establishes the path works first
  {
    // Unknown message type.
    struct raw {
      int fd;
      explicit raw(const std::string& path) {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                            sizeof(addr)),
                  0);
      }
      ~raw() { ::close(fd); }
    };
    raw conn(fx.socket_path());
    write_frame_fd(conn.fd, static_cast<msg_type>(42), {});
    const auto reply = read_frame_fd(conn.fd);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, msg_type::error);

    // A submit frame whose payload is garbage: error frame, then close.
    raw conn2(fx.socket_path());
    const std::vector<std::uint8_t> junk{1, 2, 3};
    write_frame_fd(conn2.fd, msg_type::submit, junk);
    const auto reply2 = read_frame_fd(conn2.fd);
    ASSERT_TRUE(reply2.has_value());
    EXPECT_EQ(reply2->type, msg_type::error);
    EXPECT_FALSE(read_frame_fd(conn2.fd).has_value());  // closed after
  }
  EXPECT_TRUE(cli.ping());  // the daemon itself is unscathed
}

TEST(ServeEndToEnd, ShutdownRequestAndGracefulStop) {
  server_fixture fx;
  fx.start();
  EXPECT_FALSE(fx.srv->shutdown_requested());
  {
    client cli(fx.socket_path());
    EXPECT_TRUE(cli.ping());
    cli.shutdown_server();
  }
  fx.srv->wait_shutdown_requested();
  EXPECT_TRUE(fx.srv->shutdown_requested());
  fx.srv->stop();  // drain; idempotent
  fx.srv->stop();
  // Socket file is gone and new connections are refused.
  EXPECT_FALSE(fs::exists(fx.socket_path()));
  EXPECT_THROW({ client refused(fx.socket_path()); }, std::runtime_error);
}

// ---------------------------------------------------------------------------
// v3: TCP + auth, admission control, metrics.
// ---------------------------------------------------------------------------

/// Raw Unix-socket connection for tests that speak the protocol by hand.
struct raw_unix_conn {
  int fd;
  explicit raw_unix_conn(const std::string& path) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
        0);
  }
  ~raw_unix_conn() { ::close(fd); }
};

TEST(ServeEndToEnd, TcpWithAuthServesByteIdenticalToUnixSocket) {
  server_fixture fx;
  server_options options;
  options.socket_path = fx.socket_path();
  options.listen_address = "127.0.0.1:0";  // ephemeral port
  options.auth_token = "hunter2";
  options.threads = 2;
  fx.start_with(options);
  ASSERT_NE(fx.srv->tcp_port(), 0);

  const synth_request req = make_request_for_spec("c432");
  client unix_cli(fx.socket_path());  // Unix transport needs no auth
  const synth_response via_unix = unix_cli.submit(req);
  ASSERT_TRUE(via_unix.ok);

  client tcp_cli("127.0.0.1", fx.srv->tcp_port());
  const hello_reply hello = tcp_cli.hello();
  EXPECT_EQ(hello.server_version, protocol_version);
  EXPECT_TRUE(hello.auth_required);
  tcp_cli.authenticate("hunter2");
  EXPECT_FALSE(tcp_cli.hello().auth_required);  // this connection is authed
  const synth_response via_tcp = tcp_cli.submit(req);
  ASSERT_TRUE(via_tcp.ok);
  EXPECT_EQ(via_tcp.report, via_unix.report);
  EXPECT_EQ(via_tcp.validate_report, via_unix.validate_report);
}

TEST(ServeEndToEnd, TcpRejectsUnauthenticatedAndBadTokens) {
  server_fixture fx;
  server_options options;
  options.socket_path = fx.socket_path();
  options.listen_address = "127.0.0.1:0";
  options.auth_token = "hunter2";
  fx.start_with(options);

  {
    // Any request before auth: typed auth_required, then the daemon closes.
    client cli("127.0.0.1", fx.srv->tcp_port());
    try {
      (void)cli.status();
      FAIL() << "unauthenticated status should have thrown";
    } catch (const service_error& e) {
      EXPECT_EQ(e.code, error_code::auth_required);
    }
    EXPECT_FALSE(cli.ping());  // connection is gone
  }
  {
    // Wrong token: typed auth_failed, then close (no retry on one stream).
    client cli("127.0.0.1", fx.srv->tcp_port());
    try {
      cli.authenticate("wrong");
      FAIL() << "bad token should have thrown";
    } catch (const service_error& e) {
      EXPECT_EQ(e.code, error_code::auth_failed);
    }
    EXPECT_FALSE(cli.ping());
  }
  // The Unix socket's trust boundary is file permissions: no auth needed.
  client unix_cli(fx.socket_path());
  EXPECT_TRUE(unix_cli.ping());
  const server_stats_reply stats = unix_cli.server_stats();
  EXPECT_EQ(stats.rejected_auth, 2u);
}

TEST(ServeEndToEnd, OldClientVersionGetsTypedErrorNotAHang) {
  server_fixture fx;
  fx.start();
  // A "v2 client": same frozen frame header, older version byte.  The v3
  // daemon must answer with an error frame AT v2 (legacy payload) and close.
  raw_unix_conn conn(fx.socket_path());
  write_frame_fd(conn.fd, msg_type::ping, {}, /*version=*/2);
  const auto reply = read_frame_fd(conn.fd);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, msg_type::error);
  EXPECT_EQ(reply->version, 2);
  const std::string message = decode_legacy_error(reply->payload);
  EXPECT_NE(message.find("version mismatch"), std::string::npos) << message;
  EXPECT_FALSE(read_frame_fd(conn.fd).has_value());  // closed after
}

TEST(ServeEndToEnd, OverloadShedsWithTypedErrorWhileAcceptedWorkCompletes) {
  server_fixture fx;
  server_options options;
  options.socket_path = fx.socket_path();
  options.threads = 2;
  options.max_inflight = 1;  // one executing request...
  options.max_queue = 0;     // ...and zero queueing: burst -> overloaded
  fx.start_with(options);

  // Request A (a big multiplier, long optimize) occupies the single slot;
  // its first streamed progress event proves it is admitted and executing.
  std::atomic<bool> a_running{false};
  synth_response resp_a;
  std::thread a_thread([&] {
    client cli(fx.socket_path());
    synth_request req = make_request_for_spec("c6288");
    req.stream_progress = true;
    resp_a = cli.submit(
        req, [&](const progress_event&) { a_running.store(true); });
  });
  while (!a_running.load()) std::this_thread::yield();

  // Burst request B: deterministically shed with a typed overloaded error;
  // the connection survives the rejection.
  client cli_b(fx.socket_path());
  try {
    (void)cli_b.submit(make_request_for_spec("c432"));
    FAIL() << "burst submit should have been shed";
  } catch (const service_error& e) {
    EXPECT_EQ(e.code, error_code::overloaded);
    // v5 retry contract: shedding carries a non-zero backoff hint.
    EXPECT_GT(e.retry_after_ms, 0u);
    EXPECT_LE(e.retry_after_ms, 10000u);
  }
  EXPECT_TRUE(cli_b.ping());

  a_thread.join();
  EXPECT_TRUE(resp_a.ok);  // the accepted request completed normally
  const server_stats_reply stats = cli_b.server_stats();
  EXPECT_EQ(stats.rejected_overload, 1u);
  EXPECT_EQ(stats.accepted, 1u);
}

TEST(ServeEndToEnd, DeadlineExpiresWhileQueuedBehindSlowRequest) {
  server_fixture fx;
  server_options options;
  options.socket_path = fx.socket_path();
  options.threads = 2;
  options.max_inflight = 1;
  options.max_queue = 4;  // queueing allowed; the deadline does the shedding
  fx.start_with(options);

  std::atomic<bool> a_running{false};
  synth_response resp_a;
  std::thread a_thread([&] {
    client cli(fx.socket_path());
    synth_request req = make_request_for_spec("c6288");
    req.stream_progress = true;
    resp_a = cli.submit(
        req, [&](const progress_event&) { a_running.store(true); });
  });
  while (!a_running.load()) std::this_thread::yield();

  client cli_b(fx.socket_path());
  synth_request req_b = make_request_for_spec("c432");
  req_b.deadline_ms = 5.0;  // c6288 holds the slot far longer than this
  try {
    (void)cli_b.submit(req_b);
    FAIL() << "deadlined submit should have expired in the queue";
  } catch (const service_error& e) {
    EXPECT_EQ(e.code, error_code::deadline_expired);
  }
  EXPECT_TRUE(cli_b.ping());

  a_thread.join();
  EXPECT_TRUE(resp_a.ok);
  const server_stats_reply stats = cli_b.server_stats();
  EXPECT_EQ(stats.rejected_deadline, 1u);
}

TEST(ServeEndToEnd, ConnectionCapBouncesWithTypedError) {
  server_fixture fx;
  server_options options;
  options.socket_path = fx.socket_path();
  options.max_conns = 1;
  fx.start_with(options);

  auto first = std::make_unique<client>(fx.socket_path());
  EXPECT_TRUE(first->ping());  // the one allowed connection is live

  // The next connection is bounced before any handler thread exists.
  {
    raw_unix_conn extra(fx.socket_path());
    const auto reply = read_frame_fd(extra.fd);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, msg_type::error);
    const error_reply err = decode_error(reply->payload);
    EXPECT_EQ(err.code, error_code::too_many_connections);
    EXPECT_GT(err.retry_after_ms, 0u);  // v5: bounce carries a backoff hint
    EXPECT_FALSE(read_frame_fd(extra.fd).has_value());
  }
  EXPECT_TRUE(first->ping());  // the admitted connection is unaffected

  // Freeing the slot admits a newcomer (reaped on a later accept).
  first.reset();
  bool reconnected = false;
  for (int attempt = 0; attempt < 200 && !reconnected; ++attempt) {
    client retry(fx.socket_path());
    reconnected = retry.ping();
    if (!reconnected) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(reconnected);
  EXPECT_GE(fx.srv->stats().rejected_conns, 1u);
}

TEST(ServeEndToEnd, ServerStatsReportsCountersAndLatencyHistograms) {
  server_fixture fx;
  fx.start();
  client cli(fx.socket_path());

  const synth_request req = make_request_for_spec("c432");
  ASSERT_TRUE(cli.submit(req).ok);  // cold: every stage executes
  const synth_response warm = cli.submit(req);
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.served_from_cache);

  const server_stats_reply stats = cli.server_stats();
  EXPECT_EQ(stats.status.jobs_submitted, 2u);
  EXPECT_EQ(stats.status.jobs_completed, 2u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.rejected_overload, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_GT(stats.max_inflight, 0u);
  EXPECT_EQ(stats.cache.full_hits, 1u);  // the warm repeat
  EXPECT_EQ(stats.disk_directory, fx.cache_dir());

  const auto find_hist =
      [&](const std::string& name) -> const histogram_snapshot* {
    for (const auto& h : stats.histograms) {
      if (h.name == name) return &h;
    }
    return nullptr;
  };
  // Both requests waited (instantly) for admission and timed end to end;
  // only the cold one executed real stages.
  const histogram_snapshot* queue_wait = find_hist("queue_wait");
  ASSERT_NE(queue_wait, nullptr);
  EXPECT_EQ(queue_wait->count, 2u);
  const histogram_snapshot* total = find_hist("request_total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->count, 2u);
  EXPECT_GT(total->sum_ms, 0.0);
  std::uint64_t bucket_sum = 0;
  for (const auto b : total->buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, total->count);  // every sample landed in a bucket
  const histogram_snapshot* optimize = find_hist("stage:optimize");
  ASSERT_NE(optimize, nullptr);
  EXPECT_EQ(optimize->count, 1u);  // cache replays are not re-recorded

  // The plaintext rendering is scrape-parseable and carries the counters.
  const std::string text = format_server_stats_text(stats);
  EXPECT_NE(text.find("xsfq_jobs_submitted_total 2"), std::string::npos);
  EXPECT_NE(text.find("xsfq_admission_accepted_total 2"), std::string::npos);
  EXPECT_NE(
      text.find("xsfq_latency_ms_count{name=\"request_total\"} 2"),
      std::string::npos)
      << text;
  // v6: the build-identity gauge and flight-recorder counters are always
  // present (values vary; the series must not).
  EXPECT_NE(text.find("xsfq_build_info{version=\""), std::string::npos);
  EXPECT_NE(text.find("xsfq_trace_spans_recorded_total "), std::string::npos);
  EXPECT_NE(text.find("xsfq_trace_spans_dropped_total "), std::string::npos);
}

// ---------------------------------------------------------------------------
// v6: end-to-end request tracing.
// ---------------------------------------------------------------------------

TEST(ServeEndToEnd, TracedSubmitCollectsSpansThatAddUp) {
  server_fixture fx;
  fx.start(/*threads=*/2);
  client cli(fx.socket_path());

  synth_request req = make_request_for_spec("c432");
  req.trace_hi = 0x0123456789abcdefull;
  req.trace_lo = 0xfedcba9876543210ull;
  ASSERT_TRUE(cli.submit(req).ok);

  trace_request treq;
  treq.trace_hi = req.trace_hi;
  treq.trace_lo = req.trace_lo;
  const trace_reply reply = cli.trace(treq);
  EXPECT_EQ(reply.trace_hi, req.trace_hi);
  EXPECT_EQ(reply.trace_lo, req.trace_lo);
  ASSERT_FALSE(reply.spans.empty());

  // Sorted by start, and every expected span kind present exactly once
  // (cold run: queue_wait, runner_queue, each live stage, request_total).
  const auto count = [&](const std::string& name) {
    std::size_t n = 0;
    for (const auto& s : reply.spans) n += (s.name == name);
    return n;
  };
  EXPECT_EQ(count("queue_wait"), 1u);
  EXPECT_EQ(count("runner_queue"), 1u);
  EXPECT_EQ(count("request_total"), 1u);
  EXPECT_EQ(count("stage:optimize"), 1u);
  for (std::size_t i = 1; i < reply.spans.size(); ++i) {
    EXPECT_LE(reply.spans[i - 1].start_us, reply.spans[i].start_us);
  }

  // The waterfall acceptance invariant: stage spans sum to no more than
  // the measured end-to-end total, and the total contains every span.
  std::uint64_t total_dur = 0, total_start = 0, stage_sum = 0;
  for (const auto& s : reply.spans) {
    if (s.name == "request_total") {
      total_dur = s.dur_us;
      total_start = s.start_us;
    }
    if (s.name.rfind("stage:", 0) == 0) stage_sum += s.dur_us;
  }
  EXPECT_GT(total_dur, 0u);
  EXPECT_GT(stage_sum, 0u);
  EXPECT_LE(stage_sum, total_dur);
  for (const auto& s : reply.spans) {
    // queue_wait precedes the total; send follows it (the response bytes
    // leave after the handler's request_total span closed).
    if (s.name == "queue_wait" || s.name == "request_total" ||
        s.name == "send") {
      continue;
    }
    EXPECT_GE(s.start_us + s.dur_us, total_start) << s.name;
    EXPECT_LE(s.start_us + s.dur_us, total_start + total_dur) << s.name;
  }

  // The scrape counts the recorded spans.
  const server_stats_reply stats = cli.server_stats();
  EXPECT_GE(stats.trace_spans_recorded, reply.spans.size());
}

TEST(ServeEndToEnd, UntracedSubmitCollectsNothingAndUnknownIdIsEmpty) {
  server_fixture fx;
  fx.start();
  client cli(fx.socket_path());

  // hello advertises the capability.
  const hello_reply hello = cli.hello();
  bool has_trace = false;
  for (const auto& cap : hello.capabilities) has_trace |= (cap == "trace");
  EXPECT_TRUE(has_trace);

  ASSERT_TRUE(cli.submit(make_request_for_spec("c432")).ok);  // untraced

  trace_request treq;
  treq.trace_hi = 0xdeadbeefdeadbeefull;
  treq.trace_lo = 0x1111111111111111ull;
  // Unknown id: empty reply, not an error, and the connection stays usable.
  EXPECT_TRUE(cli.trace(treq).spans.empty());
  EXPECT_TRUE(cli.ping());
}

TEST(ServeEndToEnd, TraceOutDirExportsChromeJsonPerTracedRequest) {
  server_fixture fx;
  const std::string out_dir = fx.dir.path + "/traces";
  fs::create_directories(out_dir);
  {
    server_options options;
    options.socket_path = fx.socket_path();
    options.threads = 2;
    options.trace_out_dir = out_dir;
    fx.start_with(std::move(options));
  }
  client cli(fx.socket_path());
  synth_request req = make_request_for_spec("c432");
  req.trace_hi = 1;
  req.trace_lo = 2;
  ASSERT_TRUE(cli.submit(req).ok);

  // Exactly one export, named by the hex trace id, valid Chrome JSON shape.
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(out_dir)) {
    files.push_back(entry.path().string());
  }
  ASSERT_EQ(files.size(), 1u);
  EXPECT_NE(files[0].find("trace_00000000000000010000000000000002.json"),
            std::string::npos);
  std::ifstream in(files[0]);
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"request_total\""), std::string::npos);
  EXPECT_NE(
      json.find("\"trace_id\":\"00000000000000010000000000000002\""),
      std::string::npos);
}

TEST(ServeEndToEnd, RetainedByteBudgetEvictsAndSurfacesInScrape) {
  // A deliberately starved retained-network budget: every new session
  // evicts the previous one (the most recent entry is always kept), and
  // the v7 counters show up in cache_stats and the Prometheus scrape.
  server_fixture fx;
  {
    server_options options;
    options.threads = 2;
    options.retained_bytes = 1;  // below any real network's footprint
    fx.start_with(std::move(options));
  }
  client cli(fx.socket_path());

  for (const char* name : {"c432", "c880", "c1908"}) {
    synth_request base = make_request_for_spec(name);
    const aig base_net = load_request_circuit(base);
    ASSERT_TRUE(cli.submit(base).ok) << name;

    synth_delta_request dreq;
    dreq.base = base;
    dreq.base_content_hash = base_net.content_hash();
    // Flip one gate's fanin complement — always a legal, non-no-op edit.
    aig::node_index target = 0;
    for (aig::node_index n = 0; n < base_net.size(); ++n) {
      if (base_net.is_gate(n)) target = n;
    }
    const signal a = base_net.fanin0(target);
    const signal b = base_net.fanin1(target);
    const auto tok = [](const signal s) {
      return std::string(s.is_complemented() ? "!" : "") + "n" +
             std::to_string(s.index());
    };
    dreq.edit_text = "replace n" + std::to_string(target) + " " + tok(a) +
                     " " + tok(!b) + "\n";
    ASSERT_TRUE(cli.submit_delta(dreq).ok) << name;
  }

  const cache_stats_reply cache = cli.cache_stats();
  EXPECT_GT(cache.stats.retained_evictions, 0u);
  EXPECT_LE(cache.stats.retained_networks, 1u);  // budget keeps only newest

  const std::string text = format_server_stats_text(cli.server_stats());
  EXPECT_NE(text.find("xsfq_eco_retained_evictions_total"),
            std::string::npos);
  EXPECT_NE(text.find("xsfq_cache_disk_quarantine_pruned_total"),
            std::string::npos);
}

}  // namespace
}  // namespace xsfq
