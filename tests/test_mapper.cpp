#include <gtest/gtest.h>

#include "benchgen/registry.hpp"
#include "core/mapper.hpp"
#include "opt/script.hpp"

namespace xsfq {
namespace {

aig paper_full_adder() {
  aig g;
  const signal a = g.create_pi("a");
  const signal b = g.create_pi("b");
  const signal c = g.create_pi("cin");
  const signal n1 = g.create_and(a, b);
  const signal n2 = g.create_and(!a, !b);
  const signal n3 = g.create_and(!n1, !n2);
  const signal n4 = g.create_and(n3, c);
  const signal n5 = g.create_and(!n3, !c);
  g.create_po(g.create_and(!n4, !n5), "s");
  g.create_po(!g.create_and(!n1, !n4), "cout");
  return g;
}

TEST(Mapper, FullAdderReproducesPaperFigures) {
  const aig g = paper_full_adder();
  // Section 3.1.1 direct mapping on the 7-node AIG: 14 cells.
  {
    mapping_params p;
    p.polarity = polarity_mode::direct_dual_rail;
    const auto m = map_to_xsfq(g, p);
    EXPECT_EQ(m.stats.la_cells + m.stats.fa_cells, 14u);
  }
  // Figure 5i: positive outputs -> 11 cells.
  {
    mapping_params p;
    p.polarity = polarity_mode::positive_outputs;
    const auto m = map_to_xsfq(g, p);
    EXPECT_EQ(m.stats.la_cells + m.stats.fa_cells, 11u);
    EXPECT_EQ(m.stats.splitters, 7u);
  }
  // Figure 5ii: optimized polarity -> 10 cells, 6 splitters, 58/138 JJ.
  {
    mapping_params p;
    p.polarity = polarity_mode::optimized;
    const auto m = map_to_xsfq(g, p);
    EXPECT_EQ(m.stats.la_cells + m.stats.fa_cells, 10u);
    EXPECT_EQ(m.stats.splitters, 6u);
    EXPECT_EQ(m.stats.jj, 58u);
    EXPECT_EQ(m.stats.jj_ptl, 138u);
  }
}

TEST(Mapper, Eq1MatchesExactSplitterCount) {
  // When every input rail is consumed, Eq. (1) equals the exact count.
  for (const char* name : {"c432", "cavlc", "int2float"}) {
    const aig g = optimize(benchgen::make_benchmark(name));
    const auto m = map_to_xsfq(g);
    EXPECT_EQ(static_cast<long>(m.stats.splitters), m.stats.eq1_splitters)
        << name;
  }
}

TEST(Mapper, SummaryLineMatchesNetlistSummary) {
  // summary_line() renders the report line from mapping_stats alone (the
  // serving hot path formats responses without re-walking the netlist); it
  // must stay byte-identical to the netlist's own summary().  Cover
  // combinational, pipelined, and sequential mappings — DROC counts and
  // splitter depth all appear in the line.
  for (const char* name : {"c432", "c6288", "s641", "s526"}) {
    const aig g = optimize(benchgen::make_benchmark(name));
    const auto m = map_to_xsfq(g);
    EXPECT_EQ(summary_line(m.stats), m.netlist.summary()) << name;
  }
  mapping_params pipelined;
  pipelined.pipeline_stages = 2;
  const auto m =
      map_to_xsfq(optimize(benchgen::make_benchmark("c880")), pipelined);
  EXPECT_EQ(summary_line(m.stats), m.netlist.summary());
}

TEST(Mapper, JjFormulaHolds) {
  const aig g = optimize(benchgen::make_benchmark("c880"));
  const auto m = map_to_xsfq(g);
  EXPECT_EQ(m.stats.jj, 4 * (m.stats.la_cells + m.stats.fa_cells) +
                            3 * m.stats.splitters +
                            13 * m.stats.drocs_plain +
                            22 * m.stats.drocs_preload);
  // Footnote 1: splitters never pay PTL costs.
  EXPECT_EQ(m.stats.jj_ptl, 12 * (m.stats.la_cells + m.stats.fa_cells) +
                                3 * m.stats.splitters +
                                27 * m.stats.drocs_plain +
                                36 * m.stats.drocs_preload);
}

TEST(Mapper, NetlistPassesStructuralChecks) {
  for (const char* name : {"c499", "router", "dec"}) {
    const aig g = optimize(benchgen::make_benchmark(name));
    const auto m = map_to_xsfq(g);
    EXPECT_NO_THROW(m.netlist.check()) << name;
    // Combinational circuits need no DROCs (the paper's Table 4 point).
    EXPECT_EQ(m.stats.drocs_plain + m.stats.drocs_preload, 0u) << name;
  }
}

TEST(Mapper, EveryPortHasAtMostOneConsumer) {
  const aig g = optimize(benchgen::make_benchmark("c1355"));
  const auto m = map_to_xsfq(g);
  std::vector<std::array<unsigned, 2>> uses(m.netlist.size(), {0, 0});
  for (const auto& e : m.netlist.elements()) {
    switch (e.kind) {
      case element_kind::la:
      case element_kind::fa:
        ++uses[e.fanin0.element][e.fanin0.port];
        ++uses[e.fanin1.element][e.fanin1.port];
        break;
      case element_kind::splitter:
      case element_kind::output_port:
        ++uses[e.fanin0.element][e.fanin0.port];
        break;
      case element_kind::droc:
      case element_kind::droc_preload:
        if (!e.feedback_input) ++uses[e.fanin0.element][e.fanin0.port];
        break;
      default:
        break;
    }
  }
  for (const auto& u : uses) {
    EXPECT_LE(u[0], 1u);
    EXPECT_LE(u[1], 1u);
  }
}

TEST(Mapper, PipelineRanksAndPreloadPattern) {
  const aig g = optimize(benchgen::make_benchmark("c6288"));
  for (unsigned k : {1u, 2u}) {
    mapping_params p;
    p.pipeline_stages = k;
    const auto m = map_to_xsfq(g, p);
    // Even ranks carry preload hardware, odd ranks do not.
    unsigned max_rank = 0;
    for (const auto& e : m.netlist.elements()) {
      if (e.pipeline_rank == 0) continue;
      max_rank = std::max<unsigned>(max_rank, e.pipeline_rank);
      if (e.kind == element_kind::droc_preload) {
        EXPECT_EQ(e.pipeline_rank % 2, 0u);
      } else if (e.kind == element_kind::droc) {
        EXPECT_EQ(e.pipeline_rank % 2, 1u);
      }
    }
    EXPECT_EQ(max_rank, 2 * k);
    EXPECT_GT(m.stats.drocs_plain, 0u);
    EXPECT_GT(m.stats.drocs_preload, 0u);
    // The output rank has one DROC per distinct PO driver node.
    EXPECT_GE(m.stats.drocs_preload, g.num_pos() / 2);
  }
}

TEST(Mapper, PipeliningReducesDepthAndRaisesFrequency) {
  const aig g = optimize(benchgen::make_benchmark("c6288"));
  mapping_params p0;
  const auto m0 = map_to_xsfq(g, p0);
  mapping_params p1;
  p1.pipeline_stages = 1;
  const auto m1 = map_to_xsfq(g, p1);
  mapping_params p2;
  p2.pipeline_stages = 2;
  const auto m2 = map_to_xsfq(g, p2);
  EXPECT_LT(m1.stats.depth, m0.stats.depth);
  EXPECT_LT(m2.stats.depth, m1.stats.depth);
  EXPECT_GT(m1.stats.circuit_ghz, m0.stats.circuit_ghz);
  EXPECT_GT(m2.stats.circuit_ghz, m1.stats.circuit_ghz);
  // Architectural frequency is half the circuit frequency (Sec. 4.2.2).
  EXPECT_DOUBLE_EQ(m1.stats.architectural_ghz, m1.stats.circuit_ghz / 2.0);
}

TEST(Mapper, SequentialBoundaryPairs) {
  const aig g = benchgen::make_benchmark("s27");
  mapping_params p;
  p.reg_style = register_style::pair_boundary;
  const auto m = map_to_xsfq(g, p);
  EXPECT_EQ(m.stats.drocs_preload, g.num_registers());
  EXPECT_EQ(m.stats.drocs_plain, g.num_registers());
  EXPECT_EQ(m.register_feedback.size(), g.num_registers());
}

TEST(Mapper, SequentialRetimedRankCounts) {
  const aig g = optimize(benchgen::make_benchmark("s298"));
  mapping_params p;
  p.reg_style = register_style::pair_retimed;
  const auto m = map_to_xsfq(g, p);
  // Preloaded = one per logical flip-flop (the boundary rank, Table 6).
  EXPECT_EQ(m.stats.drocs_preload, g.num_registers());
  // The retimed rank crosses the mid-level cut; it exists and generally
  // differs from the flip-flop count.
  EXPECT_GT(m.stats.drocs_plain, 0u);
}

TEST(Mapper, RejectsInvalidCombinations) {
  const aig seq = benchgen::make_benchmark("s27");
  mapping_params p;
  p.pipeline_stages = 1;
  EXPECT_THROW(map_to_xsfq(seq, p), std::invalid_argument);

  aig incomplete;
  incomplete.create_register_output();
  EXPECT_THROW(map_to_xsfq(incomplete), std::invalid_argument);
}

TEST(Mapper, DuplicationMatchesDemandAnalysis) {
  for (const char* name : {"c880", "priority", "voter_sop"}) {
    const aig g = optimize(benchgen::make_benchmark(name));
    const auto m = map_to_xsfq(g);
    const auto stats = demand_stats(
        g, compute_rail_demands(g, m.co_negated));
    EXPECT_EQ(m.stats.la_cells + m.stats.fa_cells, stats.cells) << name;
    EXPECT_DOUBLE_EQ(m.stats.duplication, stats.duplication()) << name;
  }
}

}  // namespace
}  // namespace xsfq
