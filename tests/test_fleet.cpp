/// Tests for the sharded fleet client (serve/fleet.hpp) against real
/// in-process daemons: routed placement, byte-identical failover when a
/// shard dies mid-corpus, the health state machine's probe-driven recovery,
/// the fleet.* fault sites, hedged sends, the unknown_base → full
/// resynthesis ECO fallback, and the merged --stats scrape.
#include "serve/fleet.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "aig/aig.hpp"
#include "aig/edit.hpp"
#include "flow/batch_runner.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/synth_service.hpp"
#include "util/fault.hpp"

namespace xsfq {
namespace {

namespace fs = std::filesystem;
using namespace serve;

struct temp_dir {
  std::string path;
  temp_dir() {
    char tmpl[] = "/tmp/xsfq_fleet_XXXXXX";
    path = mkdtemp(tmpl);
  }
  ~temp_dir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// N in-process daemons, each on its own Unix socket, plus the fleet
/// endpoint list pointing at them.
struct fleet_fixture {
  temp_dir dir;
  std::vector<std::unique_ptr<server>> servers;

  explicit fleet_fixture(std::size_t n, unsigned threads = 2) {
    for (std::size_t i = 0; i < n; ++i) {
      server_options options;
      options.socket_path = socket_path(i);
      options.threads = threads;
      servers.push_back(std::make_unique<server>(options));
    }
  }

  std::string socket_path(std::size_t i) const {
    return dir.path + "/shard" + std::to_string(i) + ".sock";
  }

  std::vector<endpoint> endpoints() const {
    std::vector<endpoint> eps;
    for (std::size_t i = 0; i < servers.size(); ++i) {
      endpoint ep;
      ep.socket_path = socket_path(i);
      eps.push_back(std::move(ep));
    }
    return eps;
  }

  /// Index of the daemon whose ring identity is `id` ("unix:<path>").
  std::size_t index_of(const std::string& id) const {
    for (std::size_t i = 0; i < servers.size(); ++i) {
      if (id == "unix:" + socket_path(i)) return i;
    }
    ADD_FAILURE() << "no shard with id " << id;
    return 0;
  }
};

/// Fast-converging fleet options for tests: quick sweeps, quick probes,
/// one failure marks an endpoint down.
fleet_options test_options() {
  fleet_options o;
  o.policy.max_retries = 2;
  o.policy.initial_backoff_ms = 1;
  o.policy.max_backoff_ms = 20;
  o.probe_interval_ms = 5;
  o.down_after = 1;
  return o;
}

/// A deterministic functional edit: flip the second fanin of a gate in the
/// middle of the node array (same shape as test_eco's helper).
std::string flip_gate_edit(const aig& g) {
  std::vector<aig::node_index> gates;
  for (aig::node_index n = 0; n < g.size(); ++n) {
    if (g.is_gate(n)) gates.push_back(n);
  }
  const aig::node_index target = gates.at(gates.size() / 2);
  const signal a = g.fanin0(target);
  const signal b = g.fanin1(target);
  const auto tok = [](const signal s) {
    return std::string(s.is_complemented() ? "!" : "") + "n" +
           std::to_string(s.index());
  };
  return "replace n" + std::to_string(target) + " " + tok(a) + " " +
         tok(!b) + "\n";
}

TEST(FleetEndToEnd, CorpusSurvivesShardDeathByteIdentically) {
  const std::vector<std::string> corpus{"c432", "c880", "c1908", "c6288"};

  // The single source of truth: a direct driver run of each circuit.
  flow::batch_runner local(2);
  std::vector<std::string> expected;
  for (const auto& name : corpus) {
    const synth_response r = run_synth(make_request_for_spec(name), local);
    ASSERT_TRUE(r.ok) << name;
    expected.push_back(r.report);
  }

  fleet_fixture fx(3);
  fleet_client fleet(fx.endpoints(), test_options());
  ASSERT_EQ(fleet.size(), 3u);

  // Healthy pass: every circuit routes and matches the direct run.
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const synth_response r = fleet.submit(make_request_for_spec(corpus[i]));
    ASSERT_TRUE(r.ok) << corpus[i];
    EXPECT_EQ(r.report, expected[i]) << corpus[i];
  }
  EXPECT_EQ(fleet.counters().failovers, 0u);

  // Kill the primary owner of the first circuit (kill -9 equivalent for an
  // in-process daemon: stop unlinks the socket and refuses reconnects).
  const auto owners = fleet.owners_for(
      fleet_client::routing_key(make_request_for_spec(corpus[0])));
  ASSERT_EQ(owners.size(), 2u);  // replicas=2
  const std::size_t victim = fx.index_of(owners[0]);
  fx.servers[victim]->stop();

  // Full corpus again: every request still succeeds, byte-identical, and
  // at least the victim's keys needed a failover.
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const synth_response r = fleet.submit(make_request_for_spec(corpus[i]));
    ASSERT_TRUE(r.ok) << corpus[i];
    EXPECT_EQ(r.report, expected[i]) << corpus[i];
  }
  EXPECT_GE(fleet.counters().failovers, 1u);

  // The health machinery noticed: the victim is no longer healthy.
  bool victim_unhealthy = false;
  for (const endpoint_status& st : fleet.endpoint_statuses()) {
    if (fx.index_of(st.id) == victim) {
      victim_unhealthy = st.health != endpoint_health::healthy;
    }
  }
  EXPECT_TRUE(victim_unhealthy);
}

TEST(FleetEndToEnd, ProbeRecoveryRestoresRoutingToRevivedShard) {
  fleet_fixture fx(2);
  fleet_options options = test_options();
  fleet_client fleet(fx.endpoints(), options);

  const synth_request req = make_request_for_spec("c432");
  const auto owners = fleet.owners_for(fleet_client::routing_key(req));
  const std::size_t primary = fx.index_of(owners[0]);

  ASSERT_TRUE(fleet.submit(req).ok);  // warm, healthy pass
  const std::string expected_report = fleet.submit(req).report;

  // Kill the primary; the next submit fails over and marks it down
  // (down_after=1 in test_options).
  fx.servers[primary]->stop();
  ASSERT_TRUE(fleet.submit(req).ok);
  EXPECT_GE(fleet.counters().failovers, 1u);
  for (const endpoint_status& st : fleet.endpoint_statuses()) {
    if (fx.index_of(st.id) == primary) {
      EXPECT_EQ(st.health, endpoint_health::down);
    }
  }

  // Revive the daemon on the same socket and let the probe interval lapse;
  // the next request probes (down -> probing), routes to the revived
  // primary again, and its success completes recovery to healthy.
  server_options srv_options;
  srv_options.socket_path = fx.socket_path(primary);
  srv_options.threads = 2;
  fx.servers[primary] = std::make_unique<server>(srv_options);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const synth_response r = fleet.submit(req);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.report, expected_report);
  EXPECT_GE(fleet.counters().probes, 1u);
  for (const endpoint_status& st : fleet.endpoint_statuses()) {
    if (fx.index_of(st.id) == primary) {
      EXPECT_EQ(st.health, endpoint_health::healthy);
    }
  }
}

TEST(FleetFaults, RouteDownFaultForcesFailoverDeterministically) {
  fleet_fixture fx(2);
  fleet_client fleet(fx.endpoints(), test_options());

  fault::arm("fleet.route.down:nth=1");
  const synth_response r = fleet.submit(make_request_for_spec("c432"));
  fault::disarm();

  ASSERT_TRUE(r.ok);
  EXPECT_GE(fleet.counters().failovers, 1u);
  bool fired = false;
  for (const auto& site : fault::stats()) {
    if (site.site == "fleet.route.down") fired = site.fired == 1;
  }
  EXPECT_TRUE(fired);
}

TEST(FleetFaults, ProbeFailFaultKeepsEndpointDown) {
  fleet_fixture fx(2);
  fleet_client fleet(fx.endpoints(), test_options());

  const synth_request req = make_request_for_spec("c880");
  const std::size_t primary =
      fx.index_of(fleet.owners_for(fleet_client::routing_key(req))[0]);
  fx.servers[primary]->stop();
  ASSERT_TRUE(fleet.submit(req).ok);  // failover; primary marked down

  // Revive it — but force every probe to fail: the endpoint must stay
  // down (probe failures never promote), while requests keep succeeding
  // on the surviving replica.
  server_options srv_options;
  srv_options.socket_path = fx.socket_path(primary);
  srv_options.threads = 2;
  fx.servers[primary] = std::make_unique<server>(srv_options);
  fault::arm("fleet.probe.fail:repeat=0");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(fleet.submit(req).ok);
  fault::disarm();

  EXPECT_GE(fleet.counters().probe_failures, 1u);
  for (const endpoint_status& st : fleet.endpoint_statuses()) {
    if (fx.index_of(st.id) == primary) {
      EXPECT_EQ(st.health, endpoint_health::down);
    }
  }
}

TEST(FleetEndToEnd, HedgedSendAbandonsSlowShardAndWinsOnReplica) {
  fleet_fixture fx(2);
  fleet_options options = test_options();
  // Arm hedging after a single sample, with a floor so low every first
  // attempt runs under a ~1 ms deadline — a cold c6288 synthesis cannot
  // finish in that, so the hedge deterministically fires and the replica
  // completes the request.
  options.hedge_min_samples = 1;
  options.hedge_floor_ms = 0.001;
  options.hedge_multiplier = 1e-9;
  fleet_client fleet(fx.endpoints(), options);

  flow::batch_runner local(2);
  const synth_request slow = make_request_for_spec("c6288");
  const synth_response expected = run_synth(slow, local);
  ASSERT_TRUE(expected.ok);

  ASSERT_TRUE(fleet.submit(make_request_for_spec("c432")).ok);  // 1st sample
  const synth_response r = fleet.submit(slow);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.report, expected.report);
  EXPECT_GE(fleet.counters().hedged, 1u);
  EXPECT_GE(fleet.counters().hedge_wins, 1u);
}

TEST(FleetEco, UnknownBaseFallsBackToFullResynthesisByteIdentically) {
  // Expected: the same delta served by a lone daemon with no fault armed
  // (it rebuilds the base from the embedded request and replays the edit).
  synth_request base = make_request_for_spec("c432");
  const aig base_net = load_request_circuit(base);
  synth_delta_request dreq;
  dreq.base = base;
  dreq.base_content_hash = base_net.content_hash();
  dreq.edit_text = flip_gate_edit(base_net);

  std::string expected_report;
  std::uint64_t expected_hash = 0;
  {
    fleet_fixture lone(1);
    client cli(lone.socket_path(0));
    const synth_response r = cli.submit_delta(dreq);
    ASSERT_TRUE(r.ok) << r.error;
    expected_report = r.report;
    expected_hash = r.content_hash;
  }

  // Fleet path: the owner shard is forced to answer unknown_base (the
  // injected stand-in for "this delta failed over to a shard that never
  // retained the base and cannot rebuild it").  The fleet applies the edit
  // locally and submits the edited circuit as a plain request.
  fleet_fixture fx(2);
  fleet_client fleet(fx.endpoints(), test_options());
  fault::arm("serve.eco.unknown_base:nth=1");
  const synth_response r = fleet.submit_delta(dreq);
  fault::disarm();

  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.report, expected_report);
  EXPECT_EQ(r.content_hash, expected_hash);
  EXPECT_EQ(fleet.counters().eco_full_fallbacks, 1u);

  // A chained delta naming an intermediate hash the embedded base does not
  // match is unrecoverable by design: the typed error must stand.
  aig edited = base_net;
  eco::apply_edit_text(edited, dreq.edit_text);
  synth_delta_request chained = dreq;
  chained.base_content_hash = edited.content_hash();  // embedded base lies
  fault::arm("serve.eco.unknown_base:nth=1");
  try {
    (void)fleet.submit_delta(chained);
    FAIL() << "chained unknown_base should not be recoverable";
  } catch (const service_error& e) {
    EXPECT_EQ(e.code, error_code::unknown_base);
  }
  fault::disarm();
}

TEST(FleetStats, MergedScrapeSumsShardsAndReportsHealth) {
  fleet_fixture fx(3);
  fleet_client fleet(fx.endpoints(), test_options());

  // Two distinct circuits land wherever the ring says; the merged scrape
  // must account for both no matter the placement.
  ASSERT_TRUE(fleet.submit(make_request_for_spec("c432")).ok);
  ASSERT_TRUE(fleet.submit(make_request_for_spec("c880")).ok);

  fleet_stats stats = fleet.stats();
  EXPECT_EQ(stats.endpoints_total, 3u);
  EXPECT_EQ(stats.endpoints_up, 3u);
  EXPECT_EQ(stats.merged.status.jobs_submitted, 2u);
  EXPECT_EQ(stats.merged.status.jobs_completed, 2u);
  EXPECT_EQ(stats.merged.status.worker_threads, 6u);  // 3 daemons x 2
  EXPECT_EQ(stats.counters.requests, 2u);
  ASSERT_EQ(stats.endpoints.size(), 3u);

  const std::string text = format_fleet_stats_text(stats);
  EXPECT_NE(text.find("xsfq_jobs_submitted_total 2"), std::string::npos);
  EXPECT_NE(text.find("xsfq_fleet_endpoints 3"), std::string::npos);
  EXPECT_NE(text.find("xsfq_fleet_endpoints_up 3"), std::string::npos);
  EXPECT_NE(text.find("xsfq_fleet_requests_total 2"), std::string::npos);
  EXPECT_NE(text.find("xsfq_fleet_endpoint_up{endpoint=\"unix:" +
                      fx.socket_path(0) + "\"} 1"),
            std::string::npos)
      << text;

  // Stop one shard: the scrape degrades instead of throwing, and the dead
  // endpoint reports down with up 0.
  fx.servers[1]->stop();
  stats = fleet.stats();
  EXPECT_EQ(stats.endpoints_total, 3u);
  EXPECT_EQ(stats.endpoints_up, 2u);
  const std::string degraded = format_fleet_stats_text(stats);
  EXPECT_NE(degraded.find("xsfq_fleet_endpoint_up{endpoint=\"unix:" +
                          fx.socket_path(1) + "\"} 0"),
            std::string::npos)
      << degraded;
  EXPECT_NE(degraded.find("state=\"down\"} 1"), std::string::npos);
}

}  // namespace
}  // namespace xsfq
