#include "aig/aig.hpp"

#include <gtest/gtest.h>

#include "aig/simulate.hpp"

namespace xsfq {
namespace {

TEST(Signal, ComplementAlgebra) {
  const signal s(5, false);
  EXPECT_EQ(s.index(), 5u);
  EXPECT_FALSE(s.is_complemented());
  EXPECT_TRUE((!s).is_complemented());
  EXPECT_EQ(!!s, s);
  EXPECT_EQ(s ^ true, !s);
  EXPECT_EQ(s ^ false, s);
}

TEST(Aig, TrivialAndRules) {
  aig g;
  const signal a = g.create_pi();
  const signal b = g.create_pi();
  const signal t = g.get_constant(true);
  const signal f = g.get_constant(false);
  EXPECT_EQ(g.create_and(a, a), a);
  EXPECT_EQ(g.create_and(a, !a), f);
  EXPECT_EQ(g.create_and(a, t), a);
  EXPECT_EQ(g.create_and(t, b), b);
  EXPECT_EQ(g.create_and(a, f), f);
  EXPECT_EQ(g.num_gates(), 0u);
}

TEST(Aig, StructuralHashing) {
  aig g;
  const signal a = g.create_pi();
  const signal b = g.create_pi();
  const signal x = g.create_and(a, b);
  EXPECT_EQ(g.create_and(a, b), x);
  EXPECT_EQ(g.create_and(b, a), x);  // commutative
  EXPECT_EQ(g.num_gates(), 1u);
  EXPECT_NE(g.create_and(!a, b), x);
  EXPECT_EQ(g.num_gates(), 2u);
}

TEST(Aig, FindAndMatchesCreate) {
  aig g;
  const signal a = g.create_pi();
  const signal b = g.create_pi();
  EXPECT_EQ(g.find_and(a, g.get_constant(true)), a);
  EXPECT_EQ(g.find_and(a, a), a);
  EXPECT_EQ(g.find_and(a, b), std::nullopt);
  const signal x = g.create_and(a, b);
  EXPECT_EQ(g.find_and(b, a), x);
}

TEST(Aig, DerivedGatesComputeCorrectFunctions) {
  aig g;
  const signal a = g.create_pi();
  const signal b = g.create_pi();
  const signal c = g.create_pi();
  g.create_po(g.create_or(a, b));
  g.create_po(g.create_xor(a, b));
  g.create_po(g.create_mux(a, b, c));
  g.create_po(g.create_maj(a, b, c));
  g.create_po(g.create_nand(a, b));
  g.create_po(g.create_nor(a, b));
  g.create_po(g.create_xnor(a, b));
  const auto tables = compute_co_tables(g);
  const auto ta = truth_table::nth_var(3, 0);
  const auto tb = truth_table::nth_var(3, 1);
  const auto tc = truth_table::nth_var(3, 2);
  EXPECT_EQ(tables[0], ta | tb);
  EXPECT_EQ(tables[1], ta ^ tb);
  EXPECT_EQ(tables[2], (ta & tb) | (~ta & tc));
  EXPECT_EQ(tables[3], (ta & tb) | (ta & tc) | (tb & tc));
  EXPECT_EQ(tables[4], ~(ta & tb));
  EXPECT_EQ(tables[5], ~(ta | tb));
  EXPECT_EQ(tables[6], ~(ta ^ tb));
}

TEST(Aig, ReductionGates) {
  aig g;
  std::vector<signal> pis;
  for (int i = 0; i < 5; ++i) pis.push_back(g.create_pi());
  g.create_po(g.create_and_n(pis));
  g.create_po(g.create_or_n(pis));
  g.create_po(g.create_xor_n(pis));
  const auto tables = compute_co_tables(g);
  truth_table and_t = truth_table::ones(5);
  truth_table or_t = truth_table::zeros(5);
  truth_table xor_t = truth_table::zeros(5);
  for (unsigned v = 0; v < 5; ++v) {
    and_t &= truth_table::nth_var(5, v);
    or_t |= truth_table::nth_var(5, v);
    xor_t ^= truth_table::nth_var(5, v);
  }
  EXPECT_EQ(tables[0], and_t);
  EXPECT_EQ(tables[1], or_t);
  EXPECT_EQ(tables[2], xor_t);
  // Empty reductions give identities.
  EXPECT_EQ(g.create_and_n({}), g.get_constant(true));
  EXPECT_EQ(g.create_or_n({}), g.get_constant(false));
  EXPECT_EQ(g.create_xor_n({}), g.get_constant(false));
}

TEST(Aig, LevelsAndDepth) {
  aig g;
  const signal a = g.create_pi();
  const signal b = g.create_pi();
  const signal c = g.create_pi();
  const signal x = g.create_and(a, b);
  const signal y = g.create_and(x, c);
  g.create_po(y);
  const auto levels = g.compute_levels();
  EXPECT_EQ(levels[x.index()], 1u);
  EXPECT_EQ(levels[y.index()], 2u);
  EXPECT_EQ(g.depth(), 2u);
}

TEST(Aig, FanoutCounts) {
  aig g;
  const signal a = g.create_pi();
  const signal b = g.create_pi();
  const signal x = g.create_and(a, b);
  g.create_and(x, a);
  g.create_po(x);
  const auto fanout = g.compute_fanout_counts();
  EXPECT_EQ(fanout[x.index()], 2u);  // gate + PO
  EXPECT_EQ(fanout[a.index()], 2u);
}

TEST(Aig, CleanupRemovesDanglingAndPreservesFunction) {
  aig g;
  const signal a = g.create_pi();
  const signal b = g.create_pi();
  const signal used = g.create_and(a, b);
  g.create_and(!a, !b);  // dangling
  g.create_po(!used);
  const aig clean = g.cleanup();
  EXPECT_EQ(clean.num_gates(), 1u);
  EXPECT_EQ(clean.num_pis(), 2u);
  EXPECT_TRUE(exhaustive_equivalent(g, clean));
}

TEST(Aig, RegistersRoundTrip) {
  aig g;
  const signal en = g.create_pi("en");
  const signal r = g.create_register_output(true, "state");
  g.set_register_input(0, g.create_xor(r, en));
  g.create_po(r, "q");
  EXPECT_TRUE(g.is_well_formed());
  EXPECT_EQ(g.num_registers(), 1u);
  EXPECT_EQ(g.register_at(0).init, true);

  sequential_simulator sim(g);
  // Toggle FF starting at 1.
  EXPECT_EQ(sim.step({true})[0], true);
  EXPECT_EQ(sim.step({true})[0], false);
  EXPECT_EQ(sim.step({false})[0], true);
  EXPECT_EQ(sim.step({true})[0], true);
  sim.reset();
  EXPECT_EQ(sim.step({false})[0], true);
}

TEST(Aig, CleanupKeepsRegisters) {
  aig g;
  const signal r0 = g.create_register_output(false, "r0");
  const signal r1 = g.create_register_output(false, "r1");
  g.set_register_input(0, !r0);
  g.set_register_input(1, g.create_xor(r0, r1));
  g.create_po(r1);
  const aig clean = g.cleanup();
  EXPECT_EQ(clean.num_registers(), 2u);
  EXPECT_TRUE(random_sequential_equivalent(g, clean, 4, 32));
}

TEST(Aig, NamesArePreserved) {
  aig g;
  g.create_pi("alpha");
  g.create_po(g.get_constant(false), "beta");
  g.create_register_output(false, "gamma");
  g.set_register_input(0, g.get_constant(false));
  EXPECT_EQ(g.pi_name(0), "alpha");
  EXPECT_EQ(g.po_name(0), "beta");
  EXPECT_EQ(g.register_name(0), "gamma");
  const aig clean = g.cleanup();
  EXPECT_EQ(clean.pi_name(0), "alpha");
  EXPECT_EQ(clean.po_name(0), "beta");
  EXPECT_EQ(clean.register_name(0), "gamma");
}

TEST(Aig, InvalidUsageThrows) {
  aig g;
  EXPECT_THROW(g.create_po(signal(99, false)), std::invalid_argument);
  EXPECT_THROW(g.set_register_input(0, g.get_constant(false)),
               std::out_of_range);
  const signal r = g.create_register_output();
  (void)r;
  EXPECT_FALSE(g.is_well_formed());
  EXPECT_THROW(sequential_simulator sim(g), std::invalid_argument);
}

}  // namespace
}  // namespace xsfq
