#include <gtest/gtest.h>

#include "benchgen/registry.hpp"
#include "opt/script.hpp"
#include "pulsesim/pulse_sim.hpp"
#include "util/rng.hpp"

#include <algorithm>

namespace xsfq {
namespace {

aig counter2() {
  aig g;
  const signal r0 = g.create_register_output(false, "r0");
  const signal r1 = g.create_register_output(false, "r1");
  g.set_register_input(0, !r0);
  g.set_register_input(1, g.create_xor(r0, r1));
  g.create_po(r0, "out0");
  g.create_po(r1, "out1");
  return g;
}

TEST(PulseSim, Table1LaFaSemantics) {
  // Build a 1-gate circuit per cell type and drive all four input patterns;
  // this exercises exactly the excite/relax rows of Table 1.
  aig g;
  const signal a = g.create_pi("a");
  const signal b = g.create_pi("b");
  g.create_po(g.create_and(a, b), "la");  // positive rail = LA cell
  g.create_po(!g.create_and(a, b), "fa"); // negative rail = FA cell
  mapping_params p;
  p.polarity = polarity_mode::positive_outputs;
  const auto m = map_to_xsfq(g, p);
  pulse_simulator sim(m.netlist);
  for (int pattern = 0; pattern < 4; ++pattern) {
    const bool va = pattern & 1;
    const bool vb = pattern & 2;
    const auto r = sim.run_cycle({va, vb});
    EXPECT_TRUE(r.alternating_ok) << "cells must reinitialize (Table 1)";
    EXPECT_TRUE(r.outputs_consistent);
    EXPECT_EQ(r.outputs[0], va && vb);
    EXPECT_EQ(r.outputs[1], !(va && vb));
  }
}

TEST(PulseSim, CombinationalExhaustiveAllPolarities) {
  // 3-input circuit checked on all 8 input patterns in all mapping modes.
  aig g;
  const signal a = g.create_pi();
  const signal b = g.create_pi();
  const signal c = g.create_pi();
  g.create_po(g.create_maj(a, b, c));
  g.create_po(g.create_xor(g.create_xor(a, b), c));
  g.create_po(!g.create_and(a, g.create_or(b, c)));
  for (const auto mode :
       {polarity_mode::direct_dual_rail, polarity_mode::positive_outputs,
        polarity_mode::optimized}) {
    mapping_params p;
    p.polarity = mode;
    const auto m = map_to_xsfq(g, p);
    pulse_simulator sim(m.netlist);
    for (int pattern = 0; pattern < 8; ++pattern) {
      const std::vector<bool> pis = {(pattern & 1) != 0, (pattern & 2) != 0,
                                     (pattern & 4) != 0};
      const auto r = sim.run_cycle(pis);
      EXPECT_TRUE(r.alternating_ok);
      EXPECT_TRUE(r.outputs_consistent);
      const bool maj = (pis[0] && pis[1]) || (pis[0] && pis[2]) ||
                       (pis[1] && pis[2]);
      EXPECT_EQ(r.outputs[0], maj);
      EXPECT_EQ(r.outputs[1], pis[0] ^ pis[1] ^ pis[2]);
      EXPECT_EQ(r.outputs[2], !(pis[0] && (pis[1] || pis[2])));
    }
  }
}

class PulseSimBenchmarks
    : public ::testing::TestWithParam<std::tuple<const char*, polarity_mode>> {
};

TEST_P(PulseSimBenchmarks, MappedNetlistMatchesGoldenAig) {
  const auto [name, mode] = GetParam();
  const aig g = optimize(benchgen::make_benchmark(name));
  mapping_params p;
  p.polarity = mode;
  const auto m = map_to_xsfq(g, p);
  EXPECT_TRUE(pulse_simulator::equivalent_to_aig(g, m, 24, 3))
      << name << " mode " << static_cast<int>(mode);
}

INSTANTIATE_TEST_SUITE_P(
    Suites, PulseSimBenchmarks,
    ::testing::Combine(::testing::Values("c432", "cavlc", "int2float", "ctrl",
                                         "router", "voter_sop"),
                       ::testing::Values(polarity_mode::direct_dual_rail,
                                         polarity_mode::positive_outputs,
                                         polarity_mode::optimized)));

TEST(PulseSim, PipelinedCircuitsStayCorrect) {
  const aig g = optimize(benchgen::make_benchmark("c1908"));
  for (unsigned k : {1u, 2u, 3u}) {
    mapping_params p;
    p.pipeline_stages = k;
    const auto m = map_to_xsfq(g, p);
    EXPECT_TRUE(pulse_simulator::equivalent_to_aig(g, m, 16 + 2 * k, 7))
        << "k=" << k;
  }
}

TEST(PulseSim, CounterCountsWithBoundaryPairs) {
  const aig g = counter2();
  mapping_params p;
  p.reg_style = register_style::pair_boundary;
  const auto m = map_to_xsfq(g, p);
  pulse_simulator sim(m.netlist, m.register_feedback);
  sim.reset();
  const int expected[] = {0, 1, 2, 3, 0, 1, 2, 3};
  for (int cycle = 0; cycle < 8; ++cycle) {
    const auto r = sim.run_cycle({});
    EXPECT_TRUE(r.alternating_ok) << "cycle " << cycle;
    EXPECT_TRUE(r.outputs_consistent);
    const int value = (r.outputs[1] ? 2 : 0) + (r.outputs[0] ? 1 : 0);
    EXPECT_EQ(value, expected[cycle]) << "cycle " << cycle;
  }
}

TEST(PulseSim, CounterWithNonzeroReset) {
  const aig g = [&] {
    aig n;
    const signal r0 = n.create_register_output(true, "r0");
    const signal r1 = n.create_register_output(false, "r1");
    n.set_register_input(0, !r0);
    n.set_register_input(1, n.create_xor(r0, r1));
    n.create_po(r0);
    n.create_po(r1);
    return n;
  }();
  mapping_params p;
  p.reg_style = register_style::pair_boundary;
  const auto m = map_to_xsfq(g, p);
  EXPECT_TRUE(pulse_simulator::equivalent_to_aig(g, m, 16));
}

TEST(PulseSim, SequentialBenchmarksMatchGolden) {
  for (const char* name : {"s27", "s298", "s386", "s820"}) {
    const aig g = optimize(benchgen::make_benchmark(name));
    mapping_params p;
    p.reg_style = register_style::pair_boundary;
    const auto m = map_to_xsfq(g, p);
    EXPECT_TRUE(pulse_simulator::equivalent_to_aig(g, m, 24, 11)) << name;
  }
}

TEST(PulseSim, RetimedCounterRunsThroughItsOrbit) {
  // Sec. 3.2 / Fig. 7: after the one-shot trigger, the initial state of a
  // retimed design is set by the trigger wave (f1 applied to the preload
  // pattern), not by the declared reset values.  The counter therefore
  // enters its 4-state orbit at a wave-determined point and steps through
  // all four states every 4 cycles with perfectly consistent dual-phase
  // output encoding.
  const aig g = counter2();
  mapping_params p;
  p.reg_style = register_style::pair_retimed;
  const auto m = map_to_xsfq(g, p);
  pulse_simulator sim(m.netlist, m.register_feedback);
  EXPECT_TRUE(sim.has_retimed_ranks());
  sim.reset();
  sim.fire_trigger();
  // Note: PO sampling of retimed designs is phase-shifted relative to the
  // run_cycle window (the dual-rail output converter re-aligns it in real
  // hardware), so only the excite-phase decode is asserted here.
  std::vector<int> values;
  for (int cycle = 0; cycle < 9; ++cycle) {
    const auto r = sim.run_cycle({});
    values.push_back((r.outputs[1] ? 2 : 0) + (r.outputs[0] ? 1 : 0));
  }
  // Period-4 orbit covering all states (from cycle 1 on).
  for (int cycle = 1; cycle + 4 < 9; ++cycle) {
    EXPECT_EQ(values[static_cast<std::size_t>(cycle)],
              values[static_cast<std::size_t>(cycle + 4)]);
  }
  std::vector<int> window(values.begin() + 1, values.begin() + 5);
  std::sort(window.begin(), window.end());
  EXPECT_EQ(window, (std::vector<int>{0, 1, 2, 3}));
}

TEST(PulseSim, RetimedSequentialStructureAndEncoding) {
  // Retimed netlists with primary inputs are validated structurally and for
  // protocol consistency; cycle-exact golden comparison additionally needs
  // interface-side warm-up phasing, which the interchange simulator does
  // not model (documented in EXPERIMENTS.md).
  for (const char* name : {"s27", "s386"}) {
    const aig g = optimize(benchgen::make_benchmark(name));
    mapping_params p;
    p.reg_style = register_style::pair_retimed;
    const auto m = map_to_xsfq(g, p);
    EXPECT_EQ(m.stats.drocs_preload, g.num_registers()) << name;
    pulse_simulator sim(m.netlist, m.register_feedback);
    EXPECT_TRUE(sim.has_retimed_ranks());
    sim.reset();
    sim.fire_trigger();
    rng gen(13);
    for (int cycle = 0; cycle < 16; ++cycle) {
      std::vector<bool> pis(g.num_pis());
      for (std::size_t i = 0; i < pis.size(); ++i) pis[i] = gen.flip();
      EXPECT_NO_THROW(sim.run_cycle(pis)) << name << " cycle " << cycle;
    }
  }
}

TEST(PulseSim, TraceRecordsPulses) {
  const aig g = counter2();
  mapping_params p;
  p.reg_style = register_style::pair_boundary;
  const auto m = map_to_xsfq(g, p);
  pulse_simulator sim(m.netlist, m.register_feedback);
  sim.enable_trace(true);
  sim.reset();
  sim.enable_trace(true);
  sim.run_cycle({});
  sim.run_cycle({});
  EXPECT_FALSE(sim.trace().empty());
  // Phases advance two per logical cycle.
  EXPECT_EQ(sim.current_phase(), 4u);
}

TEST(PulseSim, DetectsMissingSplitters) {
  // Hand-build an illegal netlist: one port fanning out to two consumers.
  xsfq_netlist nl;
  xsfq_element in;
  in.kind = element_kind::input_rail;
  const auto src = nl.add_element(in);
  xsfq_element out1;
  out1.kind = element_kind::output_port;
  out1.fanin0 = {src, 0};
  nl.add_element(out1);
  xsfq_element out2;
  out2.kind = element_kind::output_port;
  out2.fanin0 = {src, 0};
  nl.add_element(out2);
  EXPECT_THROW(pulse_simulator sim(nl), std::invalid_argument);
}

}  // namespace
}  // namespace xsfq
