// Machine-checks docs/protocol.md against src/serve/protocol.hpp: the
// protocol version, the frame payload cap, the histogram bucket count, and
// every row of the message-type and error-code tables must match the header's
// constants exactly — in both directions (no undocumented enumerator, no
// documented phantom).  This is what makes protocol.md a *normative*
// reference instead of prose that drifts.
//
// The doc is located via XSFQ_SOURCE_DIR (a compile definition set in
// CMakeLists.txt), so the test runs from any build directory.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "serve/protocol.hpp"
#include "util/histogram.hpp"

namespace {

using namespace xsfq;

std::string read_doc() {
  const std::string path = std::string(XSFQ_SOURCE_DIR) + "/docs/protocol.md";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// First "**<digits>**" after `marker`, as an integer.  The doc states its
// normative numbers in bold, which doubles as the machine-readable anchor.
std::uint64_t bold_number_after(const std::string& doc,
                                const std::string& marker) {
  auto pos = doc.find(marker);
  EXPECT_NE(pos, std::string::npos) << "doc lost the line: " << marker;
  pos = doc.find("**", pos);
  EXPECT_NE(pos, std::string::npos);
  pos += 2;
  auto end = doc.find("**", pos);
  EXPECT_NE(end, std::string::npos);
  return std::stoull(doc.substr(pos, end - pos));
}

// Parses every table row of the form "| `name` | value |..." inside the
// section that starts at `heading` and ends at the next "## " heading.
std::map<std::string, std::uint64_t> table_rows(const std::string& doc,
                                                const std::string& heading) {
  auto begin = doc.find(heading);
  EXPECT_NE(begin, std::string::npos) << "doc lost the section: " << heading;
  auto end = doc.find("\n## ", begin);
  if (end == std::string::npos) end = doc.size();

  std::map<std::string, std::uint64_t> rows;
  std::istringstream lines(doc.substr(begin, end - begin));
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("| `", 0) != 0) continue;  // not a named table row
    const auto name_end = line.find('`', 3);
    const auto cell =
        name_end == std::string::npos ? name_end : line.find('|', name_end);
    if (cell == std::string::npos) {
      ADD_FAILURE() << "malformed doc table row: " << line;
      continue;
    }
    const std::string name = line.substr(3, name_end - 3);
    // Second cell is the numeric value (right-aligned, so trim spaces).
    const std::uint64_t value = std::stoull(line.substr(cell + 1));
    EXPECT_TRUE(rows.emplace(name, value).second)
        << "duplicate doc row: " << name;
  }
  return rows;
}

TEST(ProtocolDoc, VersionAndLimitsMatchHeader) {
  const std::string doc = read_doc();
  EXPECT_EQ(bold_number_after(doc, "Protocol version:"),
            serve::protocol_version);
  EXPECT_EQ(bold_number_after(doc, "Maximum payload length:"),
            serve::max_frame_payload);
  // The server_stats section states the histogram bucket count.
  EXPECT_NE(doc.find(std::to_string(log_histogram::num_buckets) +
                     " buckets"),
            std::string::npos)
      << "doc's histogram bucket count disagrees with util/histogram.hpp";
}

TEST(ProtocolDoc, MessageTypeTableMatchesEnum) {
  const auto rows = table_rows(read_doc(), "## Message types");

  // Every enumerator, explicitly: adding a msg_type without documenting it
  // fails here (count check below), documenting a wrong value fails the
  // per-row expectation.
  const std::map<std::string, serve::msg_type> expected = {
      {"submit", serve::msg_type::submit},
      {"status", serve::msg_type::status},
      {"cache_stats", serve::msg_type::cache_stats},
      {"shutdown", serve::msg_type::shutdown},
      {"ping", serve::msg_type::ping},
      {"hello", serve::msg_type::hello},
      {"auth", serve::msg_type::auth},
      {"server_stats", serve::msg_type::server_stats},
      {"synth_delta", serve::msg_type::synth_delta},
      {"trace", serve::msg_type::trace},
      {"result", serve::msg_type::result},
      {"status_ok", serve::msg_type::status_ok},
      {"cache_stats_ok", serve::msg_type::cache_stats_ok},
      {"shutdown_ok", serve::msg_type::shutdown_ok},
      {"pong", serve::msg_type::pong},
      {"hello_ok", serve::msg_type::hello_ok},
      {"auth_ok", serve::msg_type::auth_ok},
      {"server_stats_ok", serve::msg_type::server_stats_ok},
      {"trace_ok", serve::msg_type::trace_ok},
      {"progress", serve::msg_type::progress},
      {"error", serve::msg_type::error},
  };
  EXPECT_EQ(rows.size(), expected.size())
      << "message-type table row count != msg_type enumerator count";
  for (const auto& [name, type] : expected) {
    auto it = rows.find(name);
    ASSERT_NE(it, rows.end()) << "message type undocumented: " << name;
    EXPECT_EQ(it->second, static_cast<std::uint64_t>(type))
        << "documented value wrong for message type: " << name;
  }
}

TEST(ProtocolDoc, ErrorCodeTableMatchesEnum) {
  const auto rows = table_rows(read_doc(), "## Error codes");

  const std::map<std::string, serve::error_code> expected = {
      {"generic", serve::error_code::generic},
      {"bad_request", serve::error_code::bad_request},
      {"unsupported_version", serve::error_code::unsupported_version},
      {"auth_required", serve::error_code::auth_required},
      {"auth_failed", serve::error_code::auth_failed},
      {"overloaded", serve::error_code::overloaded},
      {"deadline_expired", serve::error_code::deadline_expired},
      {"too_many_connections", serve::error_code::too_many_connections},
      {"shutting_down", serve::error_code::shutting_down},
      {"unknown_base", serve::error_code::unknown_base},
      {"bad_edit", serve::error_code::bad_edit},
      {"io_timeout", serve::error_code::io_timeout},
  };
  EXPECT_EQ(rows.size(), expected.size())
      << "error-code table row count != error_code enumerator count";
  for (const auto& [name, code] : expected) {
    auto it = rows.find(name);
    ASSERT_NE(it, rows.end()) << "error code undocumented: " << name;
    EXPECT_EQ(it->second, static_cast<std::uint64_t>(code))
        << "documented value wrong for error code: " << name;
  }
}

}  // namespace
