/// Tests the Prometheus plaintext rendering of the server_stats scrape
/// (format_server_stats_text in serve/synth_service.hpp) against the
/// standalone lint in tools/check_prometheus_text.py: metric-name and
/// label-escaping rules, and `_total`/`_count` monotonicity across two
/// scrapes.  The python checker is the exact tool the CI serve smoke runs
/// against a live daemon, so this test keeps the renderer and the checker
/// honest against each other without needing a socket.
///
/// Skips (not fails) when python3 is unavailable in the environment.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "serve/protocol.hpp"
#include "serve/synth_service.hpp"
#include "util/histogram.hpp"

namespace fs = std::filesystem;

namespace xsfq {
namespace {

struct temp_dir {
  std::string path;
  temp_dir() {
    char tmpl[] = "/tmp/xsfq_prom_XXXXXX";
    path = mkdtemp(tmpl);
  }
  ~temp_dir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

bool have_python3() {
  return std::system("python3 -c 'pass' >/dev/null 2>&1") == 0;
}

std::string checker_path() {
  return std::string(XSFQ_SOURCE_DIR) + "/tools/check_prometheus_text.py";
}

int run_checker(const std::string& args) {
  const std::string cmd =
      "python3 " + checker_path() + " " + args + " >/dev/null 2>&1";
  return std::system(cmd.c_str());
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
  ASSERT_TRUE(out.good()) << "cannot write " << path;
}

/// A scrape with every section populated: non-zero counters, a fault
/// site (exercises label escaping), and two histograms.
serve::server_stats_reply sample_stats() {
  serve::server_stats_reply stats;
  stats.status.jobs_submitted = 10;
  stats.status.jobs_completed = 9;
  stats.status.jobs_failed = 1;
  stats.status.active_connections = 2;
  stats.status.worker_threads = 4;
  stats.status.steals = 3;
  stats.status.uptime_s = 12.5;
  stats.cache.full_hits = 5;
  stats.cache.full_misses = 5;
  stats.cache.disk_writes = 3;
  stats.accepted = 10;
  stats.rejected_overload = 1;
  stats.rejected_auth = 2;
  stats.peak_queue_depth = 4;
  stats.queue_depth = 1;
  stats.inflight = 2;
  stats.max_queue = 64;
  stats.max_inflight = 8;
  stats.max_conns = 32;
  stats.eco_requests = 3;
  stats.eco_retained_hits = 2;
  stats.io_timeouts = 1;
  stats.fault_fired = 2;
  stats.trace_spans_recorded = 100;
  stats.trace_spans_dropped = 1;
  stats.fault_sites.push_back({"disk.write", 7, 2});
  serve::histogram_snapshot h;
  h.name = "request_total";
  h.count = 10;
  h.sum_ms = 17.25;
  h.max_ms = 4.5;
  h.buckets.assign(log_histogram::num_buckets, 0);
  h.buckets[3] = 10;
  stats.histograms.push_back(h);
  h.name = "stage:optimize";  // ':' is legal in a metric/label value
  stats.histograms.push_back(h);
  return stats;
}

TEST(PrometheusText, SelfTestPasses) {
  if (!have_python3()) GTEST_SKIP() << "python3 not available";
  EXPECT_EQ(run_checker("--self-test"), 0);
}

TEST(PrometheusText, RenderedScrapePassesTheLint) {
  if (!have_python3()) GTEST_SKIP() << "python3 not available";
  temp_dir dir;
  const std::string path = dir.path + "/scrape1.txt";
  write_file(path, serve::format_server_stats_text(sample_stats()));
  EXPECT_EQ(run_checker(path), 0)
      << "format_server_stats_text output rejected by the lint";
}

TEST(PrometheusText, GrowingCountersPassMonotonicity) {
  if (!have_python3()) GTEST_SKIP() << "python3 not available";
  temp_dir dir;
  serve::server_stats_reply s1 = sample_stats();
  serve::server_stats_reply s2 = s1;
  s2.status.jobs_submitted += 5;
  s2.accepted += 5;
  s2.trace_spans_recorded += 50;
  s2.histograms[0].count += 5;
  s2.histograms[0].buckets[3] += 5;
  const std::string p1 = dir.path + "/scrape1.txt";
  const std::string p2 = dir.path + "/scrape2.txt";
  write_file(p1, serve::format_server_stats_text(s1));
  write_file(p2, serve::format_server_stats_text(s2));
  EXPECT_EQ(run_checker(p1 + " " + p2), 0);
}

TEST(PrometheusText, ShrinkingCounterFailsMonotonicity) {
  if (!have_python3()) GTEST_SKIP() << "python3 not available";
  temp_dir dir;
  serve::server_stats_reply s1 = sample_stats();
  serve::server_stats_reply s2 = s1;
  s2.status.jobs_submitted -= 5;  // a counter must never go backwards
  const std::string p1 = dir.path + "/scrape1.txt";
  const std::string p2 = dir.path + "/scrape2.txt";
  write_file(p1, serve::format_server_stats_text(s1));
  write_file(p2, serve::format_server_stats_text(s2));
  EXPECT_NE(run_checker(p1 + " " + p2), 0)
      << "checker accepted a decreasing _total counter";
}

TEST(PrometheusText, MalformedExpositionFails) {
  if (!have_python3()) GTEST_SKIP() << "python3 not available";
  temp_dir dir;
  const std::string path = dir.path + "/bad.txt";
  write_file(path, "9bad_name 1\n");
  EXPECT_NE(run_checker(path), 0);
}

TEST(PrometheusText, BuildInfoAndTraceCountersAreExposed) {
  const std::string text = serve::format_server_stats_text(sample_stats());
  EXPECT_EQ(text.find("xsfq_build_info{version=\""), 0u)
      << "build info should lead the scrape";
  EXPECT_NE(text.find("git_sha=\""), std::string::npos);
  EXPECT_NE(text.find("xsfq_trace_spans_recorded_total 100\n"),
            std::string::npos);
  EXPECT_NE(text.find("xsfq_trace_spans_dropped_total 1\n"),
            std::string::npos);
}

}  // namespace
}  // namespace xsfq
