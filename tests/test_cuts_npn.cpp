#include <gtest/gtest.h>

#include <algorithm>

#include "aig/cuts.hpp"
#include "aig/npn.hpp"
#include "aig/simulate.hpp"
#include "benchgen/iscas85.hpp"
#include "util/rng.hpp"

namespace xsfq {
namespace {

aig small_test_network() {
  aig g;
  const signal a = g.create_pi();
  const signal b = g.create_pi();
  const signal c = g.create_pi();
  const signal d = g.create_pi();
  const signal x = g.create_and(a, b);
  const signal y = g.create_or(c, d);
  g.create_po(g.create_xor(x, y));
  return g;
}

TEST(Cuts, LeavesAreSortedAndUnique) {
  const aig g = benchgen::make_c432();
  const auto cuts = enumerate_cuts(g, {4, 8, true});
  g.foreach_gate([&](aig::node_index n) {
    for (const cut_view c : cuts[n]) {
      EXPECT_LE(c.size(), 4u);
      const auto leaves = c.leaves();
      for (std::size_t i = 1; i < leaves.size(); ++i) {
        EXPECT_LT(leaves[i - 1], leaves[i]);
      }
      EXPECT_EQ(c.function().num_vars(), c.size());
    }
  });
}

TEST(Cuts, TrivialCutPresent) {
  const aig g = small_test_network();
  const auto cuts = enumerate_cuts(g);
  g.foreach_gate([&](aig::node_index n) {
    bool found = false;
    for (const cut_view c : cuts[n]) {
      if (c.size() == 1 && c.leaves()[0] == n) found = true;
    }
    EXPECT_TRUE(found);
  });
}

TEST(Cuts, FunctionsMatchSimulation) {
  const aig g = small_test_network();
  const auto cuts = enumerate_cuts(g);
  // Check every cut function by exhaustive evaluation over the PIs.
  const auto node_tables = [&] {
    std::vector<truth_table> tt(g.size(), truth_table(4));
    g.foreach_ci([&](signal s, std::size_t i) {
      tt[s.index()] = truth_table::nth_var(4, static_cast<unsigned>(i));
    });
    g.foreach_gate([&](aig::node_index n) {
      const signal f0 = g.fanin0(n);
      const signal f1 = g.fanin1(n);
      const auto t0 = f0.is_complemented() ? ~tt[f0.index()] : tt[f0.index()];
      const auto t1 = f1.is_complemented() ? ~tt[f1.index()] : tt[f1.index()];
      tt[n] = t0 & t1;
    });
    return tt;
  }();

  g.foreach_gate([&](aig::node_index n) {
    for (const cut_view c : cuts[n]) {
      // Evaluate the cut function on the leaves' global tables.
      const auto leaves = c.leaves();
      for (std::uint64_t m = 0; m < 16; ++m) {
        std::uint64_t leaf_values = 0;
        for (std::size_t i = 0; i < leaves.size(); ++i) {
          if (node_tables[leaves[i]].bit(m)) leaf_values |= 1u << i;
        }
        EXPECT_EQ(c.function().bit(leaf_values), node_tables[n].bit(m))
            << "node " << n;
      }
    }
  });
}

TEST(Cuts, DominatedCutsPruned) {
  const aig g = benchgen::make_c432();
  const auto cuts = enumerate_cuts(g, {4, 10, true});
  g.foreach_gate([&](aig::node_index n) {
    const auto set = cuts[n];
    for (std::size_t i = 0; i < set.size(); ++i) {
      for (std::size_t j = 0; j < set.size(); ++j) {
        if (i == j) continue;
        // No strict domination between stored cuts (trivial cut excepted:
        // it is appended last and may be dominated by a unit cut).
        if (set[i].size() == 1 && set[i].leaves()[0] == n) continue;
        if (set[j].size() == 1 && set[j].leaves()[0] == n) continue;
        if (set[i].dominates(set[j])) {
          EXPECT_TRUE(std::ranges::equal(set[i].leaves(), set[j].leaves()));
        }
      }
    }
  });
}

TEST(Mffc, SingleOutputChain) {
  aig g;
  const signal a = g.create_pi();
  const signal b = g.create_pi();
  const signal c = g.create_pi();
  const signal x = g.create_and(a, b);
  const signal y = g.create_and(x, c);
  g.create_po(y);
  const auto fanout = g.compute_fanout_counts();
  // MFFC of y over PIs includes both gates.
  EXPECT_EQ(mffc_size(g, y.index(),
                      {a.index(), b.index(), c.index()}, fanout),
            2u);
  // If x is also a leaf, only y dies (leaves must be sorted ascending).
  EXPECT_EQ(mffc_size(g, y.index(), {c.index(), x.index()}, fanout), 1u);
}

TEST(Mffc, SharedNodeNotCounted) {
  aig g;
  const signal a = g.create_pi();
  const signal b = g.create_pi();
  const signal c = g.create_pi();
  const signal x = g.create_and(a, b);
  const signal y = g.create_and(x, c);
  g.create_po(y);
  g.create_po(x);  // x has another user
  const auto fanout = g.compute_fanout_counts();
  EXPECT_EQ(mffc_size(g, y.index(),
                      {a.index(), b.index(), c.index()}, fanout),
            1u);
}

// ----- NPN ---------------------------------------------------------------

TEST(Npn, ApplyIdentity) {
  for (std::uint32_t f : {0x0000u, 0xAAAAu, 0x1234u, 0xFFFFu, 0x8001u}) {
    EXPECT_EQ(npn4_apply(static_cast<std::uint16_t>(f), npn4_transform{}),
              f);
  }
}

TEST(Npn, CanonicalizeIsClassInvariant) {
  rng gen(7);
  for (int round = 0; round < 50; ++round) {
    const auto f = static_cast<std::uint16_t>(gen() & 0xFFFF);
    const auto [canon, t] = npn4_canonicalize(f);
    EXPECT_EQ(npn4_apply(f, t), canon);
    // Any transformed version canonicalizes to the same representative.
    npn4_transform random_t;
    random_t.perm = {1, 3, 0, 2};
    random_t.input_neg_mask = static_cast<std::uint8_t>(gen() & 0xF);
    random_t.output_neg = gen.flip();
    const auto g2 = npn4_apply(f, random_t);
    EXPECT_EQ(npn4_canonicalize(g2).first, canon);
  }
}

TEST(Npn, CanonicalIsMinimal) {
  rng gen(13);
  for (int round = 0; round < 20; ++round) {
    const auto f = static_cast<std::uint16_t>(gen() & 0xFFFF);
    const auto [canon, t] = npn4_canonicalize(f);
    EXPECT_LE(canon, f);
  }
}

TEST(Npn, ClassCountIs222) {
  EXPECT_EQ(npn4_class_representatives().size(), 222u);
}

TEST(Npn, RealizationReconstructsFunction) {
  rng gen(29);
  for (int round = 0; round < 50; ++round) {
    const auto f = static_cast<std::uint16_t>(gen() & 0xFFFF);
    const auto [canon, t] = npn4_canonicalize(f);
    const auto r = realization_from_transform(t);
    // f(y) = canon(x) ^ out, x_v = y[leaf_of_var[v]] ^ leaf_complemented[v].
    for (unsigned y = 0; y < 16; ++y) {
      unsigned x = 0;
      for (unsigned v = 0; v < 4; ++v) {
        const bool bit =
            (((y >> r.leaf_of_var[v]) & 1u) != 0) != r.leaf_complemented[v];
        if (bit) x |= 1u << v;
      }
      const bool canon_bit = ((canon >> x) & 1u) != 0;
      EXPECT_EQ(canon_bit != r.output_complemented, ((f >> y) & 1u) != 0)
          << "f=" << f;
    }
  }
}

}  // namespace
}  // namespace xsfq
