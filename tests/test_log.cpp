/// Tests for the structured logfmt logger (src/util/log.hpp): level
/// gating, the replaceable sink, value quoting/escaping, the kv()
/// overload formatting, destructor emission, and parse_level /
/// level_name round trips.
///
/// The logger is process-global, so every test installs a capturing sink
/// and a known level in a fixture and restores both afterwards.

#include "util/log.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace xsfq {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = log::get_level();
    log::set_level(log::level::trace);
    log::set_sink([this](std::string_view ln) { lines_.emplace_back(ln); });
  }

  void TearDown() override {
    log::set_sink(nullptr);
    log::set_level(saved_level_);
  }

  std::vector<std::string> lines_;
  log::level saved_level_ = log::level::info;
};

TEST_F(LogTest, EmitsOneLineWithHeaderFields) {
  log::line(log::level::info, "test.event").kv("k", "v").done();
  ASSERT_EQ(lines_.size(), 1u);
  const std::string& ln = lines_[0];
  EXPECT_EQ(ln.rfind("ts=", 0), 0u);
  EXPECT_NE(ln.find(" level=info "), std::string::npos);
  EXPECT_NE(ln.find(" event=test.event "), std::string::npos);
  EXPECT_NE(ln.find(" k=v\n"), std::string::npos);
  EXPECT_EQ(ln.back(), '\n');
}

TEST_F(LogTest, DisabledLevelEmitsNothing) {
  log::set_level(log::level::warn);
  EXPECT_FALSE(log::enabled(log::level::info));
  EXPECT_TRUE(log::enabled(log::level::warn));
  EXPECT_TRUE(log::enabled(log::level::error));
  log::line(log::level::info, "test.suppressed").kv("k", "v").done();
  EXPECT_TRUE(lines_.empty());
  log::line(log::level::warn, "test.passes").done();
  ASSERT_EQ(lines_.size(), 1u);
}

TEST_F(LogTest, OffSilencesEverything) {
  log::set_level(log::level::off);
  EXPECT_FALSE(log::enabled(log::level::error));
  log::line(log::level::error, "test.off").done();
  EXPECT_TRUE(lines_.empty());
}

TEST_F(LogTest, DestructorEmitsWhenDoneNotCalled) {
  { log::line(log::level::info, "test.raii").kv("k", std::uint64_t{7}); }
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_NE(lines_[0].find("event=test.raii"), std::string::npos);
  EXPECT_NE(lines_[0].find("k=7"), std::string::npos);
}

TEST_F(LogTest, DoneIsIdempotent) {
  {
    log::line ln(log::level::info, "test.once");
    ln.done();
    ln.done();  // second call and the destructor must not re-emit
  }
  EXPECT_EQ(lines_.size(), 1u);
}

TEST_F(LogTest, PlainValuesStayUnquoted) {
  log::line(log::level::info, "test.plain")
      .kv("path", "/tmp/x.json")
      .kv("id", "00f1d2")
      .done();
  EXPECT_NE(lines_[0].find("path=/tmp/x.json"), std::string::npos);
  EXPECT_NE(lines_[0].find("id=00f1d2"), std::string::npos);
  EXPECT_EQ(lines_[0].find('"'), std::string::npos);
}

TEST_F(LogTest, ValuesNeedingQuotesAreQuotedAndEscaped) {
  log::line(log::level::info, "test.quote")
      .kv("msg", "has space")
      .kv("eq", "a=b")
      .kv("empty", "")
      .kv("tricky", "quote\" slash\\ nl\n tab\t")
      .done();
  const std::string& ln = lines_[0];
  EXPECT_NE(ln.find("msg=\"has space\""), std::string::npos);
  EXPECT_NE(ln.find("eq=\"a=b\""), std::string::npos);
  EXPECT_NE(ln.find("empty=\"\""), std::string::npos);
  EXPECT_NE(ln.find("tricky=\"quote\\\" slash\\\\ nl\\n tab\\t\""),
            std::string::npos);
  // The record itself stays one line: the only raw newline is the trailer.
  EXPECT_EQ(ln.find('\n'), ln.size() - 1);
}

TEST_F(LogTest, NumericAndBoolOverloadsFormat) {
  log::line(log::level::info, "test.num")
      .kv("u64", std::uint64_t{18446744073709551615ull})
      .kv("i64", std::int64_t{-42})
      .kv("u32", std::uint32_t{7})
      .kv("i", -3)
      .kv("ms", 1.7254)
      .kv("ok", true)
      .kv("bad", false)
      .kv_hex("hash", std::uint64_t{0xabcull})
      .done();
  const std::string& ln = lines_[0];
  EXPECT_NE(ln.find("u64=18446744073709551615"), std::string::npos);
  EXPECT_NE(ln.find("i64=-42"), std::string::npos);
  EXPECT_NE(ln.find("u32=7"), std::string::npos);
  EXPECT_NE(ln.find("i=-3"), std::string::npos);
  EXPECT_NE(ln.find("ms=1.725"), std::string::npos);  // %.3f
  EXPECT_NE(ln.find("ok=true"), std::string::npos);
  EXPECT_NE(ln.find("bad=false"), std::string::npos);
  EXPECT_NE(ln.find("hash=0000000000000abc"), std::string::npos);
}

TEST_F(LogTest, TimestampLooksIso8601Utc) {
  log::line(log::level::info, "test.ts").done();
  const std::string& ln = lines_[0];
  // ts=YYYY-MM-DDTHH:MM:SS.mmmZ
  ASSERT_GE(ln.size(), 28u);
  EXPECT_EQ(ln.substr(0, 3), "ts=");
  EXPECT_EQ(ln[7], '-');
  EXPECT_EQ(ln[10], '-');
  EXPECT_EQ(ln[13], 'T');
  EXPECT_EQ(ln[16], ':');
  EXPECT_EQ(ln[19], ':');
  EXPECT_EQ(ln[22], '.');
  EXPECT_EQ(ln[26], 'Z');
}

TEST_F(LogTest, SinkRestoreFallsBackToDefault) {
  log::set_sink(nullptr);
  // Goes to stderr (the default sink); just must not crash or loop back
  // into the removed capture sink.
  log::set_level(log::level::off);  // keep test output clean
  log::line(log::level::info, "test.default_sink").done();
  EXPECT_TRUE(lines_.empty());
}

TEST(LogLevel, ParseRoundTripsEveryName) {
  using log::level;
  for (level l : {level::trace, level::debug, level::info, level::warn,
                  level::error, level::off}) {
    level parsed = level::info;
    ASSERT_TRUE(log::parse_level(log::level_name(l), parsed))
        << log::level_name(l);
    EXPECT_EQ(parsed, l);
  }
  level untouched = level::warn;
  EXPECT_FALSE(log::parse_level("", untouched));
  EXPECT_FALSE(log::parse_level("INFO", untouched));
  EXPECT_FALSE(log::parse_level("verbose", untouched));
  EXPECT_EQ(untouched, level::warn);
}

}  // namespace
}  // namespace xsfq
