/// Pins for the zero-rebuild optimization pipeline (in-place balance/map on
/// recycled network arenas, partitioned intra-flow parallelism):
///  * golden fingerprints recorded from the pre-refactor copy-out pipeline —
///    the arena rewrite must be bit-identical end to end (optimized AIG,
///    mapped netlist, emitted Verilog);
///  * a test-local copy of the pre-refactor balance algorithm diffed against
///    the in-place engine on every ISCAS pin circuit;
///  * steady-state allocation counts: after one warm-up, optimize and map
///    must run with a small constant number of heap allocations (arena
///    reuse across >= 3 runs);
///  * partitioned optimize: deterministic (inline == threads == pool) for
///    every partition count 1..8, equivalent to the input, and exactly the
///    sequential script at flow_jobs = 1;
///  * the single-word ISOP fast path against the truth_table recursion.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "aig/simulate.hpp"
#include "benchgen/registry.hpp"
#include "core/mapper.hpp"
#include "core/xsfq_writer.hpp"
#include "flow/batch_runner.hpp"
#include "flow/flow.hpp"
#include "opt/opt_engine.hpp"
#include "opt/partition.hpp"
#include "opt/script.hpp"
#include "util/hash.hpp"
#include "util/isop.hpp"
#include "util/rng.hpp"

using namespace xsfq;


// ---------------------------------------------------------------------------
// Allocation counting: every scalar operator new in this binary bumps the
// counter, so a window delta counts the heap traffic of the code under test.
// ---------------------------------------------------------------------------

namespace {
std::atomic<long> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

long alloc_count() { return g_alloc_count.load(std::memory_order_relaxed); }

std::uint64_t verilog_hash(const mapping_result& mapped, const char* name) {
  return hash_mix_str(0x9E3779B97F4A7C15ull,
                      write_xsfq_verilog_string(mapped, name));
}

// ---------------------------------------------------------------------------
// The pre-refactor balance pass, verbatim (fresh destination network, copy
// out, cleanup): the reference copy path the in-place engine must match.
// ---------------------------------------------------------------------------

void reference_collect_conjuncts(const aig& network, aig::node_index n,
                                 const std::vector<std::uint32_t>& fanout,
                                 std::vector<xsfq::signal>& leaves) {
  for (const xsfq::signal f : {network.fanin0(n), network.fanin1(n)}) {
    if (!f.is_complemented() && network.is_gate(f.index()) &&
        fanout[f.index()] == 1) {
      reference_collect_conjuncts(network, f.index(), fanout, leaves);
    } else {
      leaves.push_back(f);
    }
  }
}

aig reference_balance(const aig& network) {
  const auto fanout = network.compute_fanout_counts();

  aig dest;
  std::vector<xsfq::signal> map(network.size(), dest.get_constant(false));
  std::vector<std::uint32_t> dest_level(1, 0);

  auto level_of = [&](xsfq::signal s) { return dest_level[s.index()]; };
  auto create_and_leveled = [&](xsfq::signal a, xsfq::signal b) {
    const xsfq::signal r = dest.create_and(a, b);
    if (r.index() >= dest_level.size()) {
      dest_level.resize(r.index() + 1, 1 + std::max(level_of(a), level_of(b)));
    }
    return r;
  };

  for (std::size_t i = 0; i < network.num_pis(); ++i) {
    const xsfq::signal s = dest.create_pi(network.pi_name(i));
    map[network.pi(i).index()] = s;
    dest_level.resize(s.index() + 1, 0);
  }
  for (std::size_t i = 0; i < network.num_registers(); ++i) {
    const xsfq::signal s = dest.create_register_output(network.register_at(i).init,
                                                 network.register_name(i));
    map[network.register_at(i).output_node] = s;
    dest_level.resize(s.index() + 1, 0);
  }

  std::vector<bool> is_root(network.size(), false);
  network.foreach_gate([&](aig::node_index n) {
    for (const xsfq::signal f : {network.fanin0(n), network.fanin1(n)}) {
      if (network.is_gate(f.index()) &&
          (f.is_complemented() || fanout[f.index()] != 1)) {
        is_root[f.index()] = true;
      }
    }
  });
  network.foreach_co([&](xsfq::signal s, std::size_t) {
    if (network.is_gate(s.index())) is_root[s.index()] = true;
  });

  using item = std::pair<std::uint32_t, xsfq::signal>;
  auto cmp = [](const item& a, const item& b) { return a.first > b.first; };

  network.foreach_gate([&](aig::node_index n) {
    if (!is_root[n]) return;
    std::vector<xsfq::signal> conjuncts;
    reference_collect_conjuncts(network, n, fanout, conjuncts);

    std::vector<item> heap;
    for (const xsfq::signal c : conjuncts) {
      const xsfq::signal m = map[c.index()] ^ c.is_complemented();
      heap.emplace_back(level_of(m), m);
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
    while (heap.size() > 1) {
      const item a = heap.front();
      std::pop_heap(heap.begin(), heap.end(), cmp);
      heap.pop_back();
      const item b = heap.front();
      std::pop_heap(heap.begin(), heap.end(), cmp);
      heap.pop_back();
      const xsfq::signal r = create_and_leveled(a.second, b.second);
      heap.emplace_back(level_of(r), r);
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
    map[n] = heap.front().second;
  });

  for (std::size_t i = 0; i < network.num_pos(); ++i) {
    const xsfq::signal po = network.po_signal(i);
    dest.create_po(map[po.index()] ^ po.is_complemented(),
                   network.po_name(i));
  }
  for (std::size_t i = 0; i < network.num_registers(); ++i) {
    const auto& reg = network.register_at(i);
    if (reg.input_set) {
      dest.set_register_input(i, map[reg.input.index()] ^
                                     reg.input.is_complemented());
    }
  }
  return dest.cleanup();
}

const char* const kPinCircuits[] = {"c432", "c880", "c1908", "c6288"};

}  // namespace

// ---------------------------------------------------------------------------
// Bit-identity vs the pre-refactor copy pipeline.
// ---------------------------------------------------------------------------

TEST(OptArena, GoldenFingerprintsMatchPreRefactorPipeline) {
  struct golden {
    const char* name;
    std::size_t gates;
    unsigned depth;
    std::uint64_t content_hash;
    std::size_t netlist_elements;
    std::size_t jj;
    std::uint64_t verilog_hash;
  };
  // Recorded from the PR 4 tree (copy-out passes, per-call mapper), gcc
  // Release, immediately before the arena refactor.
  const golden expected[] = {
      {"c432", 143u, 30u, 0x8C4AD169DF088ECAull, 403u, 1166u,
       0xEC8783A56B8EF953ull},
      {"c880", 449u, 38u, 0x3C2EC18836CAAE1Aull, 1706u, 5507u,
       0xD8C1DB5FF9D86987ull},
      {"c1908", 321u, 20u, 0xBD3FCF1E8B794FBEull, 1230u, 4004u,
       0x582A15FDF748FB02ull},
      {"c6288", 2704u, 128u, 0xDF904711FED958ACull, 10668u, 37018u,
       0xCD4CB37CFE410FA4ull},
  };
  for (const golden& e : expected) {
    const aig g = benchgen::make_benchmark(e.name);
    const aig o = optimize(g);
    EXPECT_EQ(o.num_gates(), e.gates) << e.name;
    EXPECT_EQ(o.depth(), e.depth) << e.name;
    EXPECT_EQ(o.content_hash(), e.content_hash) << e.name;
    const mapping_result m = map_to_xsfq(o);
    EXPECT_EQ(m.netlist.size(), e.netlist_elements) << e.name;
    EXPECT_EQ(m.stats.jj, e.jj) << e.name;
    EXPECT_EQ(verilog_hash(m, e.name), e.verilog_hash) << e.name;
  }
}

TEST(OptArena, InPlaceBalanceMatchesReferenceCopyPath) {
  opt_engine engine;
  for (const char* name : kPinCircuits) {
    const aig g = benchgen::make_benchmark(name);
    const aig in_place = engine.balance(g);
    const aig reference = reference_balance(g);
    EXPECT_EQ(in_place.content_hash(), reference.content_hash()) << name;
    // And again through the warm engine: arena reuse must not leak state.
    const aig warm = engine.balance(g);
    EXPECT_EQ(warm.content_hash(), reference.content_hash()) << name;
  }
}

TEST(OptArena, RecycledMapperMatchesFreshMapperAcrossCircuits) {
  xsfq_mapper recycled;
  mapping_result reused;
  for (const char* name : kPinCircuits) {
    const aig o = optimize(benchgen::make_benchmark(name));
    xsfq_mapper fresh;
    const mapping_result expected = fresh.map(o);
    recycled.map_into(o, {}, reused);  // buffers warmed by previous circuits
    EXPECT_EQ(reused.netlist.size(), expected.netlist.size()) << name;
    EXPECT_EQ(reused.stats.jj, expected.stats.jj) << name;
    EXPECT_EQ(write_xsfq_verilog_string(reused, name),
              write_xsfq_verilog_string(expected, name))
        << name;
  }
}

// ---------------------------------------------------------------------------
// Steady-state allocation pins (arena reuse across >= 3 runs).
// ---------------------------------------------------------------------------

TEST(OptArena, OptimizeSteadyStateAllocationsNearZero) {
  const aig g = benchgen::make_benchmark("c880");
  opt_engine engine;
  aig first = engine.optimize(g);  // cold: arenas and caches reach high water
  const long cold = alloc_count();
  aig warmup = engine.optimize(g);
  const long after_warmup = alloc_count();
  (void)warmup;
  for (int run = 0; run < 3; ++run) {
    const long before = alloc_count();
    const aig out = engine.optimize(g);
    const long steady = alloc_count() - before;
    EXPECT_EQ(out.content_hash(), first.content_hash());
    // The only allocations left are the returned network's own buffers (the
    // one copy that leaves the arena) — a small constant, not O(passes) or
    // O(nodes) many.
    EXPECT_LT(steady, 64) << "run " << run;
  }
  // The warm-up itself must already be in the recycled regime relative to
  // the cold run (which built arenas, caches, and the baked-library mirror).
  EXPECT_LT((after_warmup - cold) * 4, cold);
}

TEST(OptArena, BalanceAndMapSteadyStateAllocationsNearZero) {
  const aig g = benchgen::make_benchmark("c880");
  opt_engine engine;
  const aig opt = engine.optimize(g);
  xsfq_mapper mapper;
  mapping_result out;
  (void)engine.balance(opt);
  mapper.map_into(opt, {}, out);  // warm-up run
  const std::uint64_t expected = verilog_hash(out, "c880");
  for (int run = 0; run < 3; ++run) {
    const long before = alloc_count();
    const aig balanced = engine.balance(opt);
    const long balance_allocs = alloc_count() - before;
    EXPECT_GT(balanced.num_gates(), 0u);
    // balance_into writes into the recycled arena; the only allocations are
    // the returned copy's buffers.
    EXPECT_LT(balance_allocs, 32) << "run " << run;

    const long before_map = alloc_count();
    mapper.map_into(opt, {}, out);
    const long map_allocs = alloc_count() - before_map;
    EXPECT_EQ(verilog_hash(out, "c880"), expected);
    // Chains, proto elements, splitter bookkeeping, demand propagation, and
    // the output netlist are all recycled; what remains is a small constant
    // (polarity-search closure collection), not O(elements).
    EXPECT_LT(map_allocs, 64) << "run " << run;
  }
}

// ---------------------------------------------------------------------------
// Partitioned intra-flow parallelism.
// ---------------------------------------------------------------------------

TEST(OptArena, PartitionedOptimizeDeterministicForEveryPartitionCount) {
  for (const char* name : {"c880", "c1908"}) {
    const aig g = benchgen::make_benchmark(name);
    const std::uint64_t sequential = optimize(g).content_hash();
    for (unsigned jobs = 1; jobs <= 8; ++jobs) {
      optimize_params inline_params;
      inline_params.flow_jobs = jobs;
      optimize_stats st;
      partition_info info;
      const aig inline_result =
          optimize_partitioned(g, inline_params, &st, &info);

      // Same partitioning on raw threads: byte-identical to the inline run.
      optimize_params threaded = inline_params;
      threaded.executor = [](std::vector<std::function<void()>>&& tasks) {
        std::vector<std::thread> threads;
        threads.reserve(tasks.size());
        for (auto& task : tasks) threads.emplace_back(std::move(task));
        for (auto& t : threads) t.join();
      };
      const aig threaded_result = optimize_partitioned(g, threaded, nullptr);
      EXPECT_EQ(threaded_result.content_hash(), inline_result.content_hash())
          << name << " jobs=" << jobs;

      // Equivalent to the input, and jobs=1 is exactly the sequential script.
      EXPECT_TRUE(random_equivalent(g, inline_result, 32, 7))
          << name << " jobs=" << jobs;
      if (jobs == 1 || info.partitions == 1) {
        EXPECT_EQ(inline_result.content_hash(), sequential) << name;
      }
      EXPECT_GE(st.work.passes, 5u) << name << " jobs=" << jobs;
    }
  }
}

TEST(OptArena, PartitionedOptimizeOnBatchRunnerPoolMatchesInline) {
  const aig g = benchgen::make_benchmark("c880");
  optimize_params params;
  params.flow_jobs = 4;
  const aig inline_result = optimize_partitioned(g, params, nullptr);

  flow::batch_runner runner(4);
  params.executor = runner.make_subtask_runner();
  for (int rep = 0; rep < 3; ++rep) {
    const aig pooled = optimize_partitioned(g, params, nullptr);
    EXPECT_EQ(pooled.content_hash(), inline_result.content_hash());
  }
}

TEST(OptArena, FlowJobsJoinsFingerprintAndRunnerPath) {
  optimize_params one;
  optimize_params four;
  four.flow_jobs = 4;
  EXPECT_NE(flow::fingerprint(one), flow::fingerprint(four));

  flow::flow_options options_one;
  flow::flow_options options_four;
  options_four.opt.flow_jobs = 4;
  EXPECT_NE(flow::fingerprint(options_one), flow::fingerprint(options_four));

  // Through the cached runner: the partitioned flow result matches a direct
  // partitioned optimize, and both pool widths produce identical bytes.
  const aig g = benchgen::make_benchmark("c880");
  const aig expected = optimize_partitioned(g, four, nullptr);
  for (unsigned threads : {1u, 4u}) {
    flow::batch_runner runner(threads);
    runner.set_cache_enabled(false);
    const flow::flow_result r = runner.run_cached(g, "c880", options_four);
    EXPECT_EQ(r.optimized.content_hash(), expected.content_hash())
        << "threads=" << threads;
  }
}

TEST(OptArena, PartitionedValidationCatchesNothingOnHealthyCircuits) {
  const aig g = benchgen::make_benchmark("c499");
  optimize_params params;
  params.flow_jobs = 3;
  params.validate_passes = true;
  params.validate_rounds = 8;
  optimize_stats st;
  const aig out = optimize_partitioned(g, params, &st, nullptr);
  EXPECT_TRUE(random_equivalent(g, out, 32, 11));
  EXPECT_GT(st.work.equiv_checks, 0u);
  EXPECT_EQ(st.work.equiv_checks, st.work.passes);
}

// ---------------------------------------------------------------------------
// Counters and fast-path parity.
// ---------------------------------------------------------------------------

TEST(OptArena, ArenaCountersSurfaceThroughFlowTimings) {
  const auto r = flow::run_flow("c432");
  bool found = false;
  for (const auto& t : r.timings) {
    if (t.stage != "optimize") continue;
    found = true;
    EXPECT_GT(t.counters.arena_peak_bytes, 0u);
    EXPECT_GT(t.counters.rebuilds_avoided, 0u);
  }
  EXPECT_TRUE(found);
}

TEST(OptArena, SuiteValidationOnRecycledWorkerPlanesIsDeterministic) {
  // Per-pass validation of a whole suite runs on each worker's persistent
  // engine: one wide-sim plane pair per worker, sized by its largest
  // circuit, recycled across every entry.  Reuse must not change results or
  // per-entry sim counters — a 4-worker run (interleaved entries per
  // engine) must match a 1-worker run exactly.
  flow::flow_options options;
  options.opt.validate_passes = true;
  options.opt.validate_rounds = 8;
  const std::vector<std::string> names = {"c432", "c499", "c880", "c1355",
                                          "c1908"};
  flow::batch_runner one(1);
  one.set_cache_enabled(false);
  flow::batch_runner four(4);
  four.set_cache_enabled(false);
  const flow::batch_report r1 = one.run(names, options);
  const flow::batch_report r4 = four.run(names, options);
  ASSERT_EQ(r1.num_ok(), names.size());
  ASSERT_EQ(r4.num_ok(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    const flow::flow_result& a = r1.entries[i].result;
    const flow::flow_result& b = r4.entries[i].result;
    EXPECT_EQ(a.optimized.content_hash(), b.optimized.content_hash())
        << names[i];
    bool found = false;
    for (std::size_t t = 0; t < a.timings.size(); ++t) {
      if (a.timings[t].stage != "optimize") continue;
      found = true;
      EXPECT_EQ(a.timings[t].counters.sim_words,
                b.timings[t].counters.sim_words)
          << names[i];
      EXPECT_EQ(a.timings[t].counters.sim_node_evals,
                b.timings[t].counters.sim_node_evals)
          << names[i];
      EXPECT_GT(a.timings[t].counters.sim_words, 0u) << names[i];
    }
    EXPECT_TRUE(found) << names[i];
  }
}

TEST(OptArena, SingleWordIsopMatchesTruthTableRecursion) {
  rng gen(0xFAC70Dull);
  std::vector<cube> fast;
  for (unsigned vars = 0; vars <= 6; ++vars) {
    for (int i = 0; i < 200; ++i) {
      const truth_table t =
          truth_table::from_word(vars, gen());
      const std::vector<cube> reference = isop(t);
      isop_word_into(t.word0(), vars, fast);
      ASSERT_EQ(fast.size(), reference.size()) << "vars=" << vars;
      for (std::size_t c = 0; c < fast.size(); ++c) {
        EXPECT_EQ(fast[c].pos, reference[c].pos);
        EXPECT_EQ(fast[c].neg, reference[c].neg);
      }
      // And the cover must implement the function.
      EXPECT_EQ(cover_to_table(fast, vars), t);
    }
  }
}
