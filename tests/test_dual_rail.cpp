#include <gtest/gtest.h>

#include "core/dual_rail.hpp"
#include "util/rng.hpp"

namespace xsfq {
namespace {

/// The paper's 7-node full adder AIG (Figure 4): sum shares the x^y product
/// term with carry.
aig paper_full_adder() {
  aig g;
  const signal a = g.create_pi("a");
  const signal b = g.create_pi("b");
  const signal c = g.create_pi("cin");
  const signal n1 = g.create_and(a, b);
  const signal n2 = g.create_and(!a, !b);
  const signal n3 = g.create_and(!n1, !n2);  // a ^ b
  const signal n4 = g.create_and(n3, c);
  const signal n5 = g.create_and(!n3, !c);
  const signal n6 = g.create_and(!n4, !n5);  // sum
  const signal n8 = g.create_and(!n1, !n4);  // !cout
  g.create_po(n6, "s");
  g.create_po(!n8, "cout");
  return g;
}

TEST(DualRail, DirectMappingDoublesEverything) {
  const aig g = paper_full_adder();
  const auto demands = direct_dual_rail_demands(g);
  const auto stats = demand_stats(g, demands);
  EXPECT_EQ(stats.nodes_used, 7u);
  EXPECT_EQ(stats.cells, 14u);  // the paper's "14 LA/FA cells" after AIG opt
  EXPECT_DOUBLE_EQ(stats.duplication(), 1.0);  // 100%
}

TEST(DualRail, PositiveOutputsGiveElevenCells) {
  // Figure 5i: 11 LA/FA cells with both outputs in positive polarity.
  const aig g = paper_full_adder();
  const auto demands =
      compute_rail_demands(g, std::vector<bool>(g.num_cos(), false));
  EXPECT_EQ(demand_stats(g, demands).cells, 11u);
}

TEST(DualRail, OptimizedPolarityGivesTenCells) {
  // Figure 5ii: choosing cout's negative polarity reaches 10 cells.
  const aig g = paper_full_adder();
  const auto negate = optimize_co_polarities(g);
  const auto demands = compute_rail_demands(g, negate);
  EXPECT_EQ(demand_stats(g, demands).cells, 10u);
}

TEST(DualRail, DemandPropagationFollowsDeMorgan) {
  // y = !(a & b): PO rail positive means the node's NEGATIVE rail (an FA).
  aig g;
  const signal a = g.create_pi();
  const signal b = g.create_pi();
  const signal n = g.create_and(a, b);
  g.create_po(!n);
  const auto demands = compute_rail_demands(g, {false});
  EXPECT_FALSE(demands.positive(n.index()));
  EXPECT_TRUE(demands.negative(n.index()));
  // With the negated output polarity, the positive rail suffices.
  const auto demands2 = compute_rail_demands(g, {true});
  EXPECT_TRUE(demands2.positive(n.index()));
  EXPECT_FALSE(demands2.negative(n.index()));
}

TEST(DualRail, ChainDemandsSingleRail) {
  // A chain with no fanout needs exactly one rail per node.
  aig g;
  signal acc = g.create_pi();
  for (int i = 0; i < 6; ++i) acc = g.create_and(acc, g.create_pi());
  g.create_po(acc);
  const auto demands = compute_rail_demands(g, {false});
  const auto stats = demand_stats(g, demands);
  EXPECT_EQ(stats.cells, stats.nodes_used);
  EXPECT_DOUBLE_EQ(stats.duplication(), 0.0);
}

TEST(DualRail, ComplementedChainAlternatesRails) {
  // NAND chain: y = !(!( ... ) & x): rails alternate but still one per node.
  aig g;
  signal acc = g.create_pi();
  for (int i = 0; i < 6; ++i) acc = !g.create_and(acc, g.create_pi());
  g.create_po(acc);
  const auto stats =
      demand_stats(g, compute_rail_demands(g, {false}));
  EXPECT_EQ(stats.cells, stats.nodes_used);
}

TEST(DualRail, BothPolaritiesConsumedForcesPair) {
  // A node whose both rails are consumed must be an LA-FA pair.
  aig g;
  const signal a = g.create_pi();
  const signal b = g.create_pi();
  const signal c = g.create_pi();
  const signal n = g.create_and(a, b);
  g.create_po(g.create_and(n, c));    // uses positive rail
  g.create_po(g.create_and(!n, c));   // uses negative rail
  const auto demands = compute_rail_demands(g, {false, false});
  EXPECT_TRUE(demands.positive(n.index()));
  EXPECT_TRUE(demands.negative(n.index()));
}

TEST(DualRail, OptimizerNeverWorseThanAllPositive) {
  rng gen(55);
  for (int round = 0; round < 10; ++round) {
    aig g;
    std::vector<signal> pool;
    for (int i = 0; i < 6; ++i) pool.push_back(g.create_pi());
    for (int i = 0; i < 50; ++i) {
      const signal x = pool[gen.below(pool.size())] ^ gen.flip();
      const signal y = pool[gen.below(pool.size())] ^ gen.flip();
      pool.push_back(g.create_and(x, y));
    }
    for (int i = 0; i < 5; ++i) {
      g.create_po(pool[pool.size() - 1 - static_cast<std::size_t>(i)] ^ gen.flip());
    }
    const aig clean = g.cleanup();
    const auto all_pos = demand_stats(
        clean, compute_rail_demands(clean,
                                    std::vector<bool>(clean.num_cos(), false)));
    const auto optimized = demand_stats(
        clean, compute_rail_demands(clean, optimize_co_polarities(clean)));
    EXPECT_LE(optimized.cells, all_pos.cells);
  }
}

TEST(DualRail, RegisterInputsParticipateInPolarityChoice) {
  aig g;
  const signal r = g.create_register_output(false, "r");
  const signal a = g.create_pi();
  g.set_register_input(0, !g.create_and(r, a));  // complemented feedback
  g.create_po(r);
  // All-positive choice demands the negative rail of the AND.
  const auto demands = compute_rail_demands(g, {false, false});
  const auto n = g.register_at(0).input.index();
  EXPECT_TRUE(demands.negative(n));
  // Negating the register input flips the demand.
  const auto demands2 = compute_rail_demands(g, {false, true});
  EXPECT_TRUE(demands2.positive(n));
  EXPECT_FALSE(demands2.negative(n));
}

}  // namespace
}  // namespace xsfq
