#include <bit>
#include <gtest/gtest.h>

#include "aig/simulate.hpp"
#include "benchgen/blocks.hpp"
#include "benchgen/epfl.hpp"
#include "benchgen/iscas85.hpp"
#include "benchgen/iscas89.hpp"
#include "benchgen/registry.hpp"
#include "util/rng.hpp"

namespace xsfq {
namespace {

using namespace benchgen;

TEST(Blocks, RippleAdderAddsCorrectly) {
  aig g;
  std::vector<signal> a;
  std::vector<signal> b;
  for (int i = 0; i < 6; ++i) a.push_back(g.create_pi());
  for (int i = 0; i < 6; ++i) b.push_back(g.create_pi());
  const auto sum = blocks::ripple_adder(g, a, b, g.get_constant(false));
  for (const signal s : sum.sum) g.create_po(s);
  g.create_po(sum.carry);

  rng gen(2);
  for (int round = 0; round < 100; ++round) {
    const std::uint64_t va = gen.below(64);
    const std::uint64_t vb = gen.below(64);
    std::vector<std::uint64_t> ci(12);
    for (int i = 0; i < 6; ++i) {
      ci[static_cast<std::size_t>(i)] = (va >> i) & 1 ? ~0ull : 0;
      ci[static_cast<std::size_t>(6 + i)] = (vb >> i) & 1 ? ~0ull : 0;
    }
    const auto out = simulate64(g, ci);
    std::uint64_t result = 0;
    for (int i = 0; i < 7; ++i) {
      if (out[static_cast<std::size_t>(i)] & 1) result |= 1ull << i;
    }
    EXPECT_EQ(result, va + vb);
  }
}

TEST(Blocks, MultiplierMultiplies) {
  aig g;
  std::vector<signal> a;
  std::vector<signal> b;
  for (int i = 0; i < 5; ++i) a.push_back(g.create_pi());
  for (int i = 0; i < 5; ++i) b.push_back(g.create_pi());
  for (const signal p : blocks::array_multiplier(g, a, b)) g.create_po(p);

  rng gen(3);
  for (int round = 0; round < 100; ++round) {
    const std::uint64_t va = gen.below(32);
    const std::uint64_t vb = gen.below(32);
    std::vector<std::uint64_t> ci(10);
    for (int i = 0; i < 5; ++i) {
      ci[static_cast<std::size_t>(i)] = (va >> i) & 1 ? ~0ull : 0;
      ci[static_cast<std::size_t>(5 + i)] = (vb >> i) & 1 ? ~0ull : 0;
    }
    const auto out = simulate64(g, ci);
    std::uint64_t result = 0;
    for (int i = 0; i < 10; ++i) {
      if (out[static_cast<std::size_t>(i)] & 1) result |= 1ull << i;
    }
    EXPECT_EQ(result, va * vb);
  }
}

TEST(Blocks, ComparatorAndMajority) {
  aig g;
  std::vector<signal> a;
  std::vector<signal> b;
  for (int i = 0; i < 4; ++i) a.push_back(g.create_pi());
  for (int i = 0; i < 4; ++i) b.push_back(g.create_pi());
  g.create_po(blocks::equals(g, a, b));
  g.create_po(blocks::less_than(g, a, b));
  std::vector<signal> maj_in(a.begin(), a.end());
  maj_in.push_back(b[0]);
  g.create_po(blocks::majority(g, maj_in));

  for (unsigned va = 0; va < 16; ++va) {
    for (unsigned vb = 0; vb < 16; ++vb) {
      std::vector<std::uint64_t> ci(8);
      for (int i = 0; i < 4; ++i) {
        ci[static_cast<std::size_t>(i)] = (va >> i) & 1 ? ~0ull : 0;
        ci[static_cast<std::size_t>(4 + i)] = (vb >> i) & 1 ? ~0ull : 0;
      }
      const auto out = simulate64(g, ci);
      EXPECT_EQ((out[0] & 1) != 0, va == vb);
      EXPECT_EQ((out[1] & 1) != 0, va < vb);
      const int pop = std::popcount(va) + ((vb & 1u) != 0 ? 1 : 0);
      EXPECT_EQ((out[2] & 1) != 0, pop >= 3);
    }
  }
}

TEST(Blocks, HammingCorrectsSingleErrors) {
  // Build encoder + corrector; flip each data bit and verify correction.
  aig g;
  std::vector<signal> data;
  for (int i = 0; i < 16; ++i) data.push_back(g.create_pi());
  std::vector<signal> parity_in;
  for (int i = 0; i < 5; ++i) parity_in.push_back(g.create_pi());
  for (const signal s : blocks::hamming_correct(g, data, parity_in)) {
    g.create_po(s);
  }
  // Reference parity from a second network.
  aig enc;
  std::vector<signal> enc_data;
  for (int i = 0; i < 16; ++i) enc_data.push_back(enc.create_pi());
  for (const signal s : blocks::hamming_parity(enc, enc_data)) {
    enc.create_po(s);
  }

  rng gen(4);
  for (int round = 0; round < 50; ++round) {
    const auto word = static_cast<std::uint32_t>(gen.below(1u << 16));
    std::vector<std::uint64_t> enc_ci(16);
    for (int i = 0; i < 16; ++i) {
      enc_ci[static_cast<std::size_t>(i)] = (word >> i) & 1 ? ~0ull : 0;
    }
    const auto parity = simulate64(enc, enc_ci);

    // Corrupt one random data bit.
    const auto flip = static_cast<unsigned>(gen.below(16));
    std::vector<std::uint64_t> ci(21);
    for (int i = 0; i < 16; ++i) {
      const bool bit = (((word >> i) & 1) != 0) != (static_cast<unsigned>(i) == flip);
      ci[static_cast<std::size_t>(i)] = bit ? ~0ull : 0;
    }
    for (int p = 0; p < 5; ++p) {
      ci[static_cast<std::size_t>(16 + p)] = parity[static_cast<std::size_t>(p)];
    }
    const auto corrected = simulate64(g, ci);
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ((corrected[static_cast<std::size_t>(i)] & 1) != 0,
                ((word >> i) & 1) != 0)
          << "bit " << i << " flip " << flip;
    }
  }
}

TEST(Benchgen, DecIsAFullDecoder) {
  const aig g = make_dec();
  ASSERT_EQ(g.num_pis(), 8u);
  ASSERT_EQ(g.num_pos(), 256u);
  for (unsigned v : {0u, 1u, 37u, 200u, 255u}) {
    std::vector<std::uint64_t> ci(8);
    for (int i = 0; i < 8; ++i) {
      ci[static_cast<std::size_t>(i)] = (v >> i) & 1 ? ~0ull : 0;
    }
    const auto out = simulate64(g, ci);
    for (unsigned o = 0; o < 256; ++o) {
      EXPECT_EQ((out[o] & 1) != 0, o == v);
    }
  }
}

TEST(Benchgen, PriorityEncodesHighestPriorityRequest) {
  const aig g = make_priority();
  ASSERT_EQ(g.num_pis(), 128u);
  ASSERT_EQ(g.num_pos(), 8u);
  rng gen(5);
  for (int round = 0; round < 30; ++round) {
    const auto req = static_cast<unsigned>(gen.below(128));
    std::vector<std::uint64_t> ci(128, 0);
    ci[req] = ~0ull;
    // Also set some lower-priority (higher index) requests.
    for (int extra = 0; extra < 3; ++extra) {
      ci[req + gen.below(128 - req)] |= ~0ull;
    }
    ci[req] = ~0ull;
    const auto out = simulate64(g, ci);
    unsigned encoded = 0;
    for (int b = 0; b < 7; ++b) {
      if (out[static_cast<std::size_t>(b)] & 1) encoded |= 1u << b;
    }
    EXPECT_EQ(encoded, req);
    EXPECT_TRUE(out[7] & 1);  // valid
  }
}

TEST(Benchgen, VoterMatchesMajority) {
  const aig g = make_voter();
  ASSERT_EQ(g.num_pis(), 1001u);
  rng gen(6);
  for (int round = 0; round < 4; ++round) {
    std::vector<std::uint64_t> ci(1001);
    // 64 random ballots at once.
    for (auto& w : ci) w = gen();
    const auto out = simulate64(g, ci);
    for (int lane = 0; lane < 64; ++lane) {
      int count = 0;
      for (const auto w : ci) count += static_cast<int>((w >> lane) & 1);
      EXPECT_EQ((out[0] >> lane) & 1, count >= 501 ? 1u : 0u);
    }
  }
}

TEST(Benchgen, VoterSopEquivalentToMajority15) {
  const aig g = make_voter_sop();
  ASSERT_EQ(g.num_pis(), 15u);
  aig ref;
  std::vector<signal> in;
  for (int i = 0; i < 15; ++i) in.push_back(ref.create_pi());
  ref.create_po(blocks::majority(ref, in));
  EXPECT_TRUE(random_equivalent(g, ref, 64, 7));
}

TEST(Benchgen, C6288IsA16x16Multiplier) {
  const aig g = make_c6288();
  ASSERT_EQ(g.num_pis(), 32u);
  ASSERT_EQ(g.num_pos(), 32u);
  rng gen(8);
  for (int round = 0; round < 20; ++round) {
    const std::uint64_t a = gen.below(1u << 16);
    const std::uint64_t b = gen.below(1u << 16);
    std::vector<std::uint64_t> ci(32);
    for (int i = 0; i < 16; ++i) {
      ci[static_cast<std::size_t>(i)] = (a >> i) & 1 ? ~0ull : 0;
      ci[static_cast<std::size_t>(16 + i)] = (b >> i) & 1 ? ~0ull : 0;
    }
    const auto out = simulate64(g, ci);
    std::uint64_t p = 0;
    for (int i = 0; i < 32; ++i) {
      if (out[static_cast<std::size_t>(i)] & 1) p |= 1ull << i;
    }
    EXPECT_EQ(p, a * b);
  }
}

TEST(Benchgen, InterfaceProfilesMatch) {
  // ISCAS89 circuits must match their documented interface shapes.
  for (const auto& profile : iscas89_profiles()) {
    const aig g = make_iscas89(profile.name);
    EXPECT_EQ(g.num_pis(), profile.inputs) << profile.name;
    EXPECT_EQ(g.num_pos(), profile.outputs) << profile.name;
    EXPECT_EQ(g.num_registers(), profile.flip_flops) << profile.name;
    EXPECT_TRUE(g.is_well_formed()) << profile.name;
  }
}

TEST(Benchgen, GeneratorsAreDeterministic) {
  for (const char* name : {"c880", "s641", "router", "cavlc"}) {
    const aig a = make_benchmark(name);
    const aig b = make_benchmark(name);
    EXPECT_EQ(a.num_gates(), b.num_gates()) << name;
    if (a.num_registers() == 0) {
      EXPECT_TRUE(random_equivalent(a, b, 16, 11)) << name;
    } else {
      EXPECT_TRUE(random_sequential_equivalent(a, b, 4, 32)) << name;
    }
  }
}

TEST(Benchgen, RegistryCoversAllSuites) {
  const auto& all = all_benchmarks();
  EXPECT_GE(all.size(), 35u);
  unsigned sequential = 0;
  for (const auto& e : all) {
    if (e.sequential) ++sequential;
    EXPECT_NO_THROW(make_benchmark(e.name)) << e.name;
  }
  EXPECT_EQ(sequential, 16u);
  EXPECT_THROW(make_benchmark("nonexistent"), std::invalid_argument);
}

TEST(Benchgen, Int2FloatNormalizes) {
  const aig g = make_int2float();
  ASSERT_EQ(g.num_pis(), 11u);
  ASSERT_EQ(g.num_pos(), 7u);
  // Spot-check: value 0 encodes exponent 0; 1 << 10 encodes exponent 11.
  auto encode = [&](std::uint64_t v) {
    std::vector<std::uint64_t> ci(11);
    for (int i = 0; i < 11; ++i) ci[static_cast<std::size_t>(i)] = (v >> i) & 1 ? ~0ull : 0;
    const auto out = simulate64(g, ci);
    unsigned exponent = 0;
    for (int b = 0; b < 4; ++b) {
      if (out[static_cast<std::size_t>(3 + b)] & 1) exponent |= 1u << b;
    }
    return exponent;
  };
  EXPECT_EQ(encode(0), 0u);
  EXPECT_EQ(encode(1), 1u);        // leading one at bit 0 -> exponent 1
  EXPECT_EQ(encode(1u << 10), 11u);
  EXPECT_EQ(encode(0x5A0), 11u);   // leading one still at bit 10
}

}  // namespace
}  // namespace xsfq
