/// Tests for the deterministic fault-injection subsystem (util/fault) and
/// the recovery behavior it exists to prove: schedule grammar, seeded
/// determinism, per-site counters; disk-cache crash consistency under
/// injected short writes / full disks / crashes on either side of the
/// rename (entries quarantined, never silently served); and the serve layer
/// under chaos — connection resets recovered byte-identically by the
/// retrying client, stalled peers reaped at the I/O deadline, daemon
/// restarts survived transparently mid-session.
#include "util/fault.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "flow/disk_cache.hpp"
#include "flow/flow.hpp"
#include "serve/client.hpp"
#include "serve/resilient_client.hpp"
#include "serve/server.hpp"
#include "serve/synth_service.hpp"

namespace xsfq {
namespace {

namespace fs = std::filesystem;
using namespace serve;

/// The registry is process-global: every test disarms AND clears the rule
/// table (arm("") drops the rules, so counters of a previous test cannot
/// leak into this one's assertions).
struct fault_reset {
  fault_reset() { fault::arm(""); }
  ~fault_reset() { fault::arm(""); }
};

struct temp_dir {
  std::string path;
  temp_dir() {
    char tmpl[] = "/tmp/xsfq_fault_XXXXXX";
    path = mkdtemp(tmpl);
  }
  ~temp_dir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// One real flow_result to persist in disk-cache tests (computed once).
const flow::flow_result& sample_result() {
  static const flow::flow_result r = flow::run_flow("c432");
  return r;
}

std::vector<std::string> files_in(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(dir, ec)) {
    if (de.is_regular_file()) names.push_back(de.path().filename().string());
  }
  return names;
}

bool any_ends_with(const std::vector<std::string>& names,
                   const std::string& suffix) {
  for (const auto& n : names) {
    if (n.size() >= suffix.size() &&
        n.compare(n.size() - suffix.size(), suffix.size(), suffix) == 0) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Schedule grammar and determinism.
// ---------------------------------------------------------------------------

TEST(FaultSchedule, ParsesArmsAndDescribes) {
  fault_reset guard;
  EXPECT_FALSE(fault::armed());
  EXPECT_EQ(fault::describe(), "(disarmed)");
  fault::arm("seed=9; a.site:nth=2:repeat=3 , b.site:prob=0.5:repeat=0");
  EXPECT_TRUE(fault::armed());
  EXPECT_NE(fault::describe().find("a.site"), std::string::npos);
  // A site not in the schedule never fires.
  EXPECT_FALSE(fault::fire("c.not_scheduled"));
  fault::disarm();
  EXPECT_FALSE(fault::armed());
  EXPECT_EQ(fault::describe(), "(disarmed)");
  EXPECT_FALSE(fault::fire("a.site"));
}

TEST(FaultSchedule, FiresOnNthHitForRepeatCount) {
  fault_reset guard;
  fault::arm("x.site:nth=3:repeat=2");
  const std::vector<bool> expected{false, false, true, true, false, false};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(fault::fire("x.site"), expected[i]) << "hit " << (i + 1);
  }
  const auto stats = fault::stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].site, "x.site");
  EXPECT_EQ(stats[0].hits, expected.size());
  EXPECT_EQ(stats[0].fired, 2u);
  EXPECT_EQ(fault::total_fired(), 2u);
  // Counters survive disarm() for post-drill assertions.
  fault::disarm();
  EXPECT_EQ(fault::total_fired(), 2u);
}

TEST(FaultSchedule, RepeatZeroFiresForever) {
  fault_reset guard;
  fault::arm("x.site:nth=2:repeat=0");
  EXPECT_FALSE(fault::fire("x.site"));
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(fault::fire("x.site"));
}

TEST(FaultSchedule, ProbabilisticFiringIsSeedDeterministic) {
  fault_reset guard;
  const std::string schedule = "seed=123;p.site:prob=0.4:repeat=0";
  const auto run = [&] {
    fault::arm(schedule);
    std::vector<bool> pattern;
    for (int i = 0; i < 200; ++i) pattern.push_back(fault::fire("p.site"));
    return pattern;
  };
  const std::vector<bool> first = run();
  const std::vector<bool> again = run();
  EXPECT_EQ(first, again);  // same seed -> same failure sequence
  const auto fired = static_cast<std::size_t>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, first.size());  // prob < 1 actually thins the fires
}

TEST(FaultSchedule, MalformedSchedulesThrowWithoutDisturbingTheArmedOne) {
  fault_reset guard;
  fault::arm("good.site:repeat=0");
  for (const char* bad :
       {"x:nth=0", "x:prob=1.5", "x:prob=-0.1", "x:nth=abc", "x:wat=1",
        "seed=1:nth=2", "x:prob", ":nth=1", "seed=zzz"}) {
    EXPECT_THROW(fault::arm(bad), std::invalid_argument) << bad;
  }
  // A rejected schedule must not have replaced the working one.
  EXPECT_TRUE(fault::armed());
  EXPECT_TRUE(fault::fire("good.site"));
}

TEST(FaultSchedule, ArmsFromEnvironment) {
  fault_reset guard;
  ::unsetenv("XSFQ_FAULTS");
  EXPECT_FALSE(fault::arm_from_env());
  ::setenv("XSFQ_FAULTS", "env.site:repeat=0", 1);
  EXPECT_TRUE(fault::arm_from_env());
  EXPECT_TRUE(fault::fire("env.site"));
  ::unsetenv("XSFQ_FAULTS");
}

// ---------------------------------------------------------------------------
// Disk cache: crash consistency under injected storage failures.
// ---------------------------------------------------------------------------

TEST(FaultDiskCache, ShortWriteReadsAsMissAndIsQuarantined) {
  fault_reset guard;
  temp_dir dir;
  const std::string cache_dir = dir.path + "/cache";
  flow::disk_result_cache cache(cache_dir);
  fault::arm("disk_cache.write.short");
  cache.store(1, 2, sample_result());  // truncated bytes survive the rename
  fault::disarm();

  EXPECT_FALSE(cache.load(1, 2).has_value());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_GE(stats.misses, 1u);
  // The poisoned bytes were preserved for inspection, not erased.
  EXPECT_TRUE(any_ends_with(files_in(cache.quarantine_directory()),
                            ".undecodable"));
  EXPECT_FALSE(any_ends_with(files_in(cache_dir), ".xfr"));

  // A clean rewrite of the same key serves again.
  cache.store(1, 2, sample_result());
  const auto loaded = cache.load(1, 2);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->optimized.content_hash(),
            sample_result().optimized.content_hash());
}

TEST(FaultDiskCache, EnospcDuringWriteLeavesNoEntryAndNoTemp) {
  fault_reset guard;
  temp_dir dir;
  const std::string cache_dir = dir.path + "/cache";
  flow::disk_result_cache cache(cache_dir);
  fault::arm("disk_cache.write.enospc");
  cache.store(3, 4, sample_result());
  fault::disarm();

  EXPECT_FALSE(cache.load(3, 4).has_value());
  EXPECT_TRUE(files_in(cache_dir).empty());  // no entry, no tmp orphan
  EXPECT_EQ(cache.stats().writes, 0u);
}

TEST(FaultDiskCache, CrashBeforeRenameOrphansTmpWhichRecoveryQuarantines) {
  fault_reset guard;
  temp_dir dir;
  const std::string cache_dir = dir.path + "/cache";
  {
    flow::disk_result_cache cache(cache_dir);
    fault::arm("disk_cache.rename.crash_before");
    cache.store(5, 6, sample_result());
    fault::disarm();
    EXPECT_FALSE(cache.load(5, 6).has_value());  // never renamed into place
  }
  const auto names = files_in(cache_dir);
  ASSERT_EQ(names.size(), 1u);
  EXPECT_NE(names[0].find(".xfr.tmp."), std::string::npos);

  // A fresh daemon's recovery scan leaves a YOUNG orphan alone (a sibling
  // writer may be mid-store right now)...
  {
    flow::disk_result_cache cache(cache_dir);
    EXPECT_EQ(cache.stats().quarantined, 0u);
  }
  EXPECT_EQ(files_in(cache_dir).size(), 1u);
  // ...but quarantines one old enough to rule that out.
  const fs::path orphan = fs::path(cache_dir) / names[0];
  fs::last_write_time(orphan,
                      fs::file_time_type::clock::now() - std::chrono::hours(2));
  flow::disk_result_cache recovered(cache_dir);
  EXPECT_EQ(recovered.stats().quarantined, 1u);
  EXPECT_FALSE(fs::exists(orphan));
  EXPECT_TRUE(any_ends_with(files_in(recovered.quarantine_directory()),
                            ".orphaned_tmp"));
}

TEST(FaultDiskCache, CrashAfterRenameLeavesAServableEntry) {
  fault_reset guard;
  temp_dir dir;
  const std::string cache_dir = dir.path + "/cache";
  {
    flow::disk_result_cache cache(cache_dir);
    fault::arm("disk_cache.rename.crash_after");
    cache.store(7, 8, sample_result());
    fault::disarm();
    EXPECT_EQ(cache.stats().writes, 0u);  // bookkeeping "crashed" away
  }
  // The atomic rename already committed the full bytes: a restarted daemon
  // serves the entry normally.
  flow::disk_result_cache cache(cache_dir);
  const auto loaded = cache.load(7, 8);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->optimized.content_hash(),
            sample_result().optimized.content_hash());
}

TEST(FaultDiskCache, CorruptionClassesAreQuarantinedWithTypedReasons) {
  fault_reset guard;
  temp_dir dir;
  const std::string cache_dir = dir.path + "/cache";
  std::string entry_a, entry_b;
  {
    flow::disk_result_cache cache(cache_dir);
    cache.store(0x10, 0x11, sample_result());
    cache.store(0x20, 0x21, sample_result());
    cache.store(0x30, 0x31, sample_result());  // stays pristine
    entry_a = cache_dir + "/0000000000000010-0000000000000011.xfr";
    entry_b = cache_dir + "/0000000000000020-0000000000000021.xfr";
    ASSERT_TRUE(fs::exists(entry_a));
    ASSERT_TRUE(fs::exists(entry_b));
  }
  const auto original_size = fs::file_size(entry_a);
  const auto flip_bytes = [](const std::string& path, std::size_t offset,
                             std::size_t count) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    for (std::size_t i = 0; i < count; ++i) {
      f.seekg(static_cast<std::streamoff>(offset + i));
      char byte = 0;
      f.get(byte);
      f.seekp(static_cast<std::streamoff>(offset + i));
      f.put(static_cast<char>(byte ^ 0x41));
    }
  };

  // Header bit-flip (magic): caught by the startup recovery scan.
  flip_bytes(entry_a, 0, 1);
  // Body bit-flips right after the 24-byte prologue: the header is sound,
  // so the entry survives the scan and dies (and is quarantined) on the
  // load path's full structural verification instead.
  flip_bytes(entry_b, 24, 64);
  // Key mismatch: a valid entry filed under the wrong name.
  const std::string wrong_name =
      cache_dir + "/00000000000000aa-00000000000000bb.xfr";
  fs::copy_file(cache_dir + "/0000000000000030-0000000000000031.xfr",
                wrong_name);
  // Name that is not <hex>-<hex>.xfr at all.
  const std::string bad_name = cache_dir + "/not-a-cache-key.xfr";
  std::ofstream(bad_name, std::ios::binary) << "junk";
  // Too short to even hold the 24-byte prologue.
  const std::string stub = cache_dir + "/0000000000000040-0000000000000041.xfr";
  std::ofstream(stub, std::ios::binary) << "XFRC";

  flow::disk_result_cache cache(cache_dir);
  EXPECT_EQ(cache.stats().quarantined, 4u);  // magic, keys, name, truncated
  EXPECT_FALSE(cache.load(0x10, 0x11).has_value());
  EXPECT_FALSE(cache.load(0x20, 0x21).has_value());  // body flip -> load path
  EXPECT_EQ(cache.stats().quarantined, 5u);
  const auto quarantined = files_in(cache.quarantine_directory());
  EXPECT_TRUE(any_ends_with(quarantined, ".bad_magic"));
  EXPECT_TRUE(any_ends_with(quarantined, ".key_mismatch"));
  EXPECT_TRUE(any_ends_with(quarantined, ".bad_name"));
  EXPECT_TRUE(any_ends_with(quarantined, ".truncated_header"));
  EXPECT_TRUE(any_ends_with(quarantined, ".undecodable"));
  // Quarantine preserves the evidence byte for byte.
  EXPECT_EQ(fs::file_size(fs::path(cache.quarantine_directory()) /
                          "0000000000000010-0000000000000011.xfr.bad_magic"),
            original_size);
  // The untouched entry still serves.
  EXPECT_TRUE(cache.load(0x30, 0x31).has_value());
}

// ---------------------------------------------------------------------------
// Serve layer under chaos.
// ---------------------------------------------------------------------------

/// Raw Unix-socket connection for tests that stall on purpose.
struct raw_unix_conn {
  int fd;
  explicit raw_unix_conn(const std::string& path) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
        0);
  }
  ~raw_unix_conn() { ::close(fd); }
};

TEST(FaultServe, ConnectionResetMidResponseRecoveredByteIdentically) {
  fault_reset guard;
  temp_dir dir;
  server_options options;
  options.socket_path = dir.path + "/served.sock";
  options.cache_dir = dir.path + "/cache";
  options.threads = 2;
  server srv(options);

  const synth_request req = make_request_for_spec("c432");
  std::string expected_report;
  {
    client cli(options.socket_path);  // fault-free reference run
    const synth_response clean = cli.submit(req);
    ASSERT_TRUE(clean.ok);
    expected_report = clean.report;
  }

  // The daemon's next response write "resets" the connection; the retrying
  // client must resubmit and land the byte-identical (cached) result.
  fault::arm("serve.send.reset");
  endpoint ep;
  ep.socket_path = options.socket_path;
  retry_policy policy;
  policy.max_retries = 4;
  policy.initial_backoff_ms = 5;
  resilient_client rcli(ep, policy);
  const synth_response recovered = rcli.submit(req);
  fault::disarm();
  ASSERT_TRUE(recovered.ok);
  EXPECT_EQ(recovered.report, expected_report);
  EXPECT_GE(rcli.retries(), 1u);
  EXPECT_GE(rcli.reconnects(), 2u);
  EXPECT_EQ(fault::total_fired(), 1u);
}

TEST(FaultServe, InjectedRecvStallSurfacesTypedTimeoutAndCountsIt) {
  fault_reset guard;
  temp_dir dir;
  server_options options;
  options.socket_path = dir.path + "/served.sock";
  options.threads = 1;
  server srv(options);

  // Raw connection: after the stall fires the daemon pushes the typed
  // error unprompted and closes, so the test must READ without writing
  // again (a write would race the close into EPIPE).
  raw_unix_conn conn(options.socket_path);
  write_frame_fd(conn.fd, msg_type::ping, {});
  auto pong = read_frame_fd(conn.fd);
  ASSERT_TRUE(pong.has_value());
  ASSERT_EQ(pong->type, msg_type::pong);
  fault::arm("serve.recv.stall");
  // The handler's next fire-check stalls it; depending on where the handler
  // thread was when we armed, that is before or after this ping.
  write_frame_fd(conn.fd, msg_type::ping, {});
  auto reply = read_frame_fd(conn.fd);
  ASSERT_TRUE(reply.has_value());
  if (reply->type == msg_type::pong) {
    reply = read_frame_fd(conn.fd);  // the unprompted error frame
    ASSERT_TRUE(reply.has_value());
  }
  EXPECT_EQ(reply->type, msg_type::error);
  EXPECT_EQ(decode_error(reply->payload).code, error_code::io_timeout);
  EXPECT_FALSE(read_frame_fd(conn.fd).has_value());  // closed after
  fault::disarm();

  client fresh(options.socket_path);
  const server_stats_reply stats = fresh.server_stats();
  EXPECT_EQ(stats.io_timeouts, 1u);
  EXPECT_EQ(stats.fault_fired, 1u);
  ASSERT_EQ(stats.fault_sites.size(), 1u);
  EXPECT_EQ(stats.fault_sites[0].site, "serve.recv.stall");
  EXPECT_EQ(stats.fault_sites[0].fired, 1u);
  // The scrape rendering carries the chaos counters for the CI greps.
  const std::string text = format_server_stats_text(stats);
  EXPECT_NE(text.find("xsfq_io_timeouts_total 1"), std::string::npos);
  EXPECT_NE(text.find("xsfq_fault_fired_total 1"), std::string::npos);
  EXPECT_NE(text.find("xsfq_fault_fired{site=\"serve.recv.stall\"} 1"),
            std::string::npos)
      << text;
}

TEST(FaultServe, StalledPeerIsReapedWithinTwiceTheIoDeadline) {
  temp_dir dir;
  server_options options;
  options.socket_path = dir.path + "/served.sock";
  options.threads = 1;
  options.io_timeout_ms = 1000;
  server srv(options);

  // A slowloris peer: two header bytes, then silence.  The handler must
  // come back from read_frame_fd at the deadline, answer with a typed
  // io_timeout error, and close — reclaiming its thread.
  raw_unix_conn conn(options.socket_path);
  const std::uint8_t partial[2] = {0x01, 0x00};
  ASSERT_EQ(::send(conn.fd, partial, sizeof(partial), 0),
            static_cast<ssize_t>(sizeof(partial)));
  const auto start = std::chrono::steady_clock::now();
  const auto reply = read_frame_fd(conn.fd);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, msg_type::error);
  EXPECT_EQ(decode_error(reply->payload).code, error_code::io_timeout);
  EXPECT_LT(elapsed_ms, 2.0 * options.io_timeout_ms);
  EXPECT_FALSE(read_frame_fd(conn.fd).has_value());  // connection closed

  client cli(options.socket_path);  // the daemon itself kept serving
  EXPECT_TRUE(cli.ping());
  EXPECT_EQ(cli.server_stats().io_timeouts, 1u);
}

TEST(FaultServe, IdlePeerIsReapedAtTheIdleDeadline) {
  temp_dir dir;
  server_options options;
  options.socket_path = dir.path + "/served.sock";
  options.threads = 1;
  options.idle_timeout_ms = 300;
  server srv(options);

  // Connects and never sends a byte: reaped at the idle deadline (between
  // frames the io deadline does not apply — an idle client is legitimate
  // unless the operator bounds it).
  raw_unix_conn conn(options.socket_path);
  const auto reply = read_frame_fd(conn.fd);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, msg_type::error);
  EXPECT_EQ(decode_error(reply->payload).code, error_code::io_timeout);
  EXPECT_FALSE(read_frame_fd(conn.fd).has_value());
}

TEST(FaultServe, InjectedConnectFailureRetriedTransparently) {
  fault_reset guard;
  temp_dir dir;
  server_options options;
  options.socket_path = dir.path + "/served.sock";
  options.threads = 1;
  server srv(options);

  fault::arm("client.connect.fail");
  EXPECT_THROW({ client direct(options.socket_path); }, std::runtime_error);

  fault::arm("client.connect.fail");  // re-arm: the resilient path eats it
  endpoint ep;
  ep.socket_path = options.socket_path;
  retry_policy policy;
  policy.max_retries = 3;
  policy.initial_backoff_ms = 5;
  resilient_client rcli(ep, policy);
  EXPECT_TRUE(rcli.ping());
  fault::disarm();
  EXPECT_EQ(rcli.retries(), 1u);
  EXPECT_EQ(rcli.reconnects(), 1u);  // the failed dial never counted
}

TEST(FaultServe, DaemonRestartMidSessionIsTransparentOverTcpWithAuth) {
  temp_dir dir;
  server_options options;
  options.socket_path = dir.path + "/served.sock";
  options.listen_address = "127.0.0.1:0";
  options.auth_token = "hunter2";
  options.cache_dir = dir.path + "/cache";
  options.threads = 2;
  auto srv = std::make_unique<server>(options);
  const std::uint16_t port = srv->tcp_port();
  ASSERT_NE(port, 0);

  endpoint ep;
  ep.host = "127.0.0.1";
  ep.port = port;
  ep.auth_token = "hunter2";
  retry_policy policy;
  policy.max_retries = 6;
  policy.initial_backoff_ms = 10;
  resilient_client rcli(ep, policy);

  const synth_request req = make_request_for_spec("c432");
  const synth_response cold = rcli.submit(req);
  ASSERT_TRUE(cold.ok);
  EXPECT_EQ(rcli.reconnects(), 1u);

  // Kill and restart the daemon on the same port and cache directory.  The
  // client's live connection is now dead; the next request must reconnect,
  // replay auth, resubmit, and land the byte-identical disk-cached result.
  srv->stop();
  srv.reset();
  options.listen_address = "127.0.0.1:" + std::to_string(port);
  srv = std::make_unique<server>(options);

  const synth_response warm = rcli.submit(req);
  ASSERT_TRUE(warm.ok);
  EXPECT_EQ(warm.report, cold.report);
  EXPECT_TRUE(warm.served_from_cache);
  EXPECT_GE(rcli.reconnects(), 2u);
  EXPECT_GE(rcli.retries(), 1u);
}

}  // namespace
}  // namespace xsfq
