#include <gtest/gtest.h>

#include "aig/simulate.hpp"
#include "benchgen/registry.hpp"
#include "opt/balance.hpp"
#include "opt/cut_rewriting.hpp"
#include "opt/rewrite_library.hpp"
#include "opt/script.hpp"
#include "util/rng.hpp"

namespace xsfq {
namespace {

/// Deterministic random AIG generator for property testing.
aig random_aig(unsigned num_pis, unsigned num_gates, std::uint64_t seed) {
  rng gen(seed);
  aig g;
  std::vector<signal> pool;
  for (unsigned i = 0; i < num_pis; ++i) pool.push_back(g.create_pi());
  for (unsigned i = 0; i < num_gates; ++i) {
    const signal a = pool[gen.below(pool.size())] ^ gen.flip();
    const signal b = pool[gen.below(pool.size())] ^ gen.flip();
    pool.push_back(g.create_and(a, b));
  }
  for (unsigned i = 0; i < 4 && i < pool.size(); ++i) {
    g.create_po(pool[pool.size() - 1 - i] ^ gen.flip());
  }
  return g.cleanup();
}

TEST(RewriteLibrary, StructuresEvaluateCorrectly) {
  const auto& lib = rewrite_library::instance();
  EXPECT_GT(lib.num_settled(), 60000u);
  EXPECT_GE(lib.num_classes_covered(), 210u);
  rng gen(31);
  for (int round = 0; round < 200; ++round) {
    const auto f = static_cast<std::uint16_t>(gen() & 0xFFFF);
    const auto s = lib.structure(f);
    if (!s) continue;
    const auto tt = s->evaluate();
    EXPECT_EQ(tt.words()[0] & 0xFFFF, f);
    // Shared substructures may need fewer steps than the tree cost.
    EXPECT_LE(s->num_steps(), *lib.cost(f));
  }
}

TEST(RewriteLibrary, BakedTableMatchesFreshClosure) {
  // instance() loads the build-time baked table (when the build bakes one);
  // it must be indistinguishable from running the closure in-process.
  const auto& baked = rewrite_library::instance();
  const rewrite_library fresh;
  ASSERT_EQ(baked.num_settled(), fresh.num_settled());
  EXPECT_EQ(baked.num_classes_covered(), fresh.num_classes_covered());
  for (std::uint32_t f = 0; f < 65536; ++f) {
    const auto table = static_cast<std::uint16_t>(f);
    ASSERT_EQ(baked.cost(table), fresh.cost(table)) << "function " << f;
  }
  rng structure_gen(17);
  for (int round = 0; round < 200; ++round) {
    const auto f = static_cast<std::uint16_t>(structure_gen() & 0xFFFF);
    const auto sb = baked.structure(f);
    const auto sf = fresh.structure(f);
    ASSERT_EQ(sb.has_value(), sf.has_value()) << "function " << f;
    if (!sb) continue;
    EXPECT_EQ(sb->num_leaves, sf->num_leaves);
    EXPECT_EQ(sb->out_lit, sf->out_lit);
    ASSERT_EQ(sb->steps.size(), sf->steps.size());
    for (std::size_t i = 0; i < sb->steps.size(); ++i) {
      EXPECT_EQ(sb->steps[i].lit0, sf->steps[i].lit0);
      EXPECT_EQ(sb->steps[i].lit1, sf->steps[i].lit1);
    }
  }
}

TEST(RewriteLibrary, BaseCostsAreZero) {
  const auto& lib = rewrite_library::instance();
  EXPECT_EQ(lib.cost(0xAAAA), 0u);
  EXPECT_EQ(lib.cost(0x5555), 0u);
  EXPECT_EQ(lib.cost(0x0000), 0u);
  EXPECT_EQ(lib.cost(0xFFFF), 0u);
  // AND of two variables costs one gate.
  EXPECT_EQ(lib.cost(0xAAAA & 0xCCCC), 1u);
  // XOR costs three.
  EXPECT_EQ(lib.cost(0xAAAA ^ 0xCCCC), 3u);
}

class OptPasses : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptPasses, RewritePreservesFunction) {
  const aig g = random_aig(6, 60, GetParam());
  const aig r = rewrite(g);
  EXPECT_TRUE(exhaustive_equivalent(g, r));
  EXPECT_LE(r.num_gates(), g.num_gates());
}

TEST_P(OptPasses, RefactorPreservesFunction) {
  const aig g = random_aig(6, 60, GetParam() + 1000);
  const aig r = refactor(g);
  EXPECT_TRUE(exhaustive_equivalent(g, r));
  EXPECT_LE(r.num_gates(), g.num_gates());
}

TEST_P(OptPasses, BalancePreservesFunction) {
  const aig g = random_aig(6, 60, GetParam() + 2000);
  const aig b = balance(g);
  EXPECT_TRUE(exhaustive_equivalent(g, b));
  EXPECT_LE(b.depth(), g.depth());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptPasses,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(Balance, ReducesChainDepth) {
  aig g;
  std::vector<signal> pis;
  for (int i = 0; i < 16; ++i) pis.push_back(g.create_pi());
  // Left-leaning AND chain of depth 15.
  signal acc = pis[0];
  for (std::size_t i = 1; i < 16; ++i) acc = g.create_and(acc, pis[i]);
  g.create_po(acc);
  EXPECT_EQ(g.depth(), 15u);
  const aig b = balance(g);
  EXPECT_EQ(b.depth(), 4u);  // log2(16)
  EXPECT_TRUE(exhaustive_equivalent(g, b));
}

TEST(Rewrite, RemovesRedundantLogic) {
  aig g;
  const signal a = g.create_pi();
  const signal b = g.create_pi();
  const signal c = g.create_pi();
  // (a & b) | (a & !b) == a, built the long way via distinct structure.
  const signal x = g.create_and(a, b);
  const signal y = g.create_and(a, !b);
  g.create_po(g.create_or(x, y));
  g.create_po(c);
  const aig r = optimize(g);
  EXPECT_TRUE(exhaustive_equivalent(g, r));
  EXPECT_EQ(r.num_gates(), 0u) << "redundant cone must collapse to a wire";
}

TEST(Optimize, BenchmarksShrinkAndStayEquivalent) {
  for (const char* name : {"c432", "cavlc", "int2float", "ctrl"}) {
    const aig g = benchgen::make_benchmark(name);
    optimize_stats st;
    const aig o = optimize(g, {}, &st);
    EXPECT_LE(o.num_gates(), g.num_gates()) << name;
    EXPECT_TRUE(random_equivalent(g, o, 64, 5)) << name;
    EXPECT_EQ(st.final_gates, o.num_gates());
  }
}

TEST(Optimize, SequentialCircuitPreserved) {
  const aig g = benchgen::make_benchmark("s298");
  const aig o = optimize(g);
  EXPECT_EQ(o.num_registers(), g.num_registers());
  EXPECT_TRUE(random_sequential_equivalent(g, o, 8, 64));
}

TEST(RunPass, NamedPassesWork) {
  const aig g = random_aig(5, 40, 77);
  for (const char* pass : {"b", "rw", "rwz", "rf", "rfz", "clean"}) {
    const aig r = run_pass(g, pass);
    EXPECT_TRUE(exhaustive_equivalent(g, r)) << pass;
  }
  EXPECT_THROW(run_pass(g, "nosuch"), std::invalid_argument);
}

TEST(CutRewriting, StatsReportReplacements) {
  const aig g = benchgen::make_benchmark("c1908");
  cut_rewriting_stats st;
  const auto& lib = rewrite_library::instance();
  cut_rewriting_params params;
  const aig r = cut_rewriting(
      g,
      [&lib](const truth_table& f) {
        const std::uint64_t w = f.words()[0];
        std::uint16_t t = 0;
        switch (f.num_vars()) {
          case 0: t = (w & 1) ? 0xFFFF : 0; break;
          case 1: t = static_cast<std::uint16_t>((w & 3) * 0x5555); break;
          case 2: t = static_cast<std::uint16_t>((w & 0xF) * 0x1111); break;
          case 3: t = static_cast<std::uint16_t>((w & 0xFF) * 0x0101); break;
          default: t = static_cast<std::uint16_t>(w & 0xFFFF); break;
        }
        return lib.structure(t);
      },
      params, &st);
  EXPECT_TRUE(random_equivalent(g, r, 32, 3));
  EXPECT_GT(st.replacements, 0u);
}

}  // namespace
}  // namespace xsfq
