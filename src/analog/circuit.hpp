#pragma once
/// \file circuit.hpp
/// \brief Superconducting circuit transient simulation (RCSJ junction model).
///
/// Stands in for the paper's HSPICE + MIT-LL SFQ5ee characterization flow
/// (Sec. 2.3).  Junctions follow the resistively-and-capacitively-shunted
/// model:   I = Ic*sin(phi) + (Phi0/2pi) * phi_dot / R + C*(Phi0/2pi)*phi_ddot
/// Circuits are described in node-phase coordinates (theta_n, the time
/// integral of node voltage scaled by 2pi/Phi0), which makes inductor
/// currents algebraic in theta and keeps flux quantization exact.  The state
/// [theta, v = theta_dot] is integrated with fixed-step RK4; every node
/// carries a small parasitic capacitance so the system stays an ODE.
///
/// Delay characterization follows the paper's method: propagation delay is
/// measured between 2pi phase slips of the input and output junctions.
///
/// Units: ps, mV, mA, pH, pF, Ohm (all mutually consistent: mV = mA*Ohm,
/// 1 pH * 1 mA/ps = 1 mV, 1 pF * 1 mV/ps = 1 mA, Phi0 = 2.0678 mV*ps).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace xsfq::analog {

/// Flux quantum in mV*ps (2.0678e-15 Wb = 2.0678 mV*ps).
inline constexpr double k_phi0 = 2.0678;
/// Phi0 / 2pi in mV*ps.
inline constexpr double k_phi0_bar = k_phi0 / 6.283185307179586;

/// Circuit node handle (0 is ground).
using node = std::uint32_t;

/// One Josephson junction's parameters (SFQ5ee-like defaults: 0.1 mA
/// critical current, near-critically damped: beta_c = 2*pi*Ic*R^2*C/Phi0
/// ~ 0.24 with the values below).
struct jj_params {
  double critical_current_ma = 0.1;
  double shunt_resistance_ohm = 4.0;
  double capacitance_pf = 0.05;
};

/// A transient circuit: build with add_* calls, then run().
class circuit {
public:
  node add_node(std::string name = {});
  [[nodiscard]] std::size_t num_nodes() const { return names_.size(); }

  /// Adds a junction between `a` and `b`; returns its index for probing.
  std::size_t add_jj(node a, node b, const jj_params& params = {});
  void add_inductor(node a, node b, double inductance_ph);
  void add_resistor(node a, node b, double resistance_ohm);
  /// DC bias current injected into `into` (from ground).
  void add_bias(node into, double current_ma);
  /// Time-dependent current source (ma as a function of ps).
  void add_source(node into, std::function<double(double)> current_ma);

  /// Injects an SFQ-like Gaussian current pulse carrying one Phi0 of charge
  /// through `into` at time t0 (width sigma in ps).
  void add_pulse(node into, double t0_ps, double amplitude_ma = 0.5,
                 double sigma_ps = 1.0);

  struct probe_data {
    std::vector<double> time_ps;
    /// Junction phases [junction][sample].
    std::vector<std::vector<double>> jj_phase;
    /// Node voltages (mV) [node][sample].
    std::vector<std::vector<double>> node_voltage;
  };

  /// Runs a transient for `duration_ps`; samples every `sample_every` steps.
  /// The default step resolves the junction plasma period (~2.5 ps) and the
  /// shunt RC constant (~0.2 ps) comfortably.
  probe_data run(double duration_ps, double dt_ps = 0.01,
                 unsigned sample_every = 20);

  /// Times (ps) at which junction `jj` slipped by 2pi (pulse emissions),
  /// extracted from a probe record.
  static std::vector<double> phase_slips(const probe_data& data,
                                         std::size_t jj);

private:
  struct jj_instance {
    node a, b;
    jj_params params;
  };
  struct two_terminal {
    node a, b;
    double value;
  };
  struct source {
    node into;
    std::function<double(double)> current_ma;
  };

  /// Computes d(state)/dt into `deriv`; state = [theta..., v...].
  void derivative(double t, const std::vector<double>& state,
                  std::vector<double>& deriv) const;

  std::vector<std::string> names_{"gnd"};
  std::vector<jj_instance> jjs_;
  std::vector<two_terminal> inductors_;
  std::vector<two_terminal> resistors_;
  std::vector<source> sources_;
  std::vector<double> node_capacitance_;  ///< parasitic + JJ caps per node
};

}  // namespace xsfq::analog
