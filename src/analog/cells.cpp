#include "analog/cells.hpp"

namespace xsfq::analog {
namespace {

/// Standard JTL stage values (SFQ5ee-flavoured): 0.1 mA junctions biased at
/// 70%, ~4 pH linking inductors.
constexpr double k_link_inductance_ph = 4.0;
constexpr double k_bias_ma = 0.07;

}  // namespace

cell_deck make_jtl(unsigned stages) {
  cell_deck d;
  const node in = d.ckt.add_node("in");
  d.inputs.push_back(in);
  node prev = in;
  for (unsigned s = 0; s < stages; ++s) {
    const node n = d.ckt.add_node("jtl" + std::to_string(s));
    d.ckt.add_inductor(prev, n, k_link_inductance_ph);
    const std::size_t j = d.ckt.add_jj(n, 0);
    d.ckt.add_bias(n, k_bias_ma);
    if (s == 0) d.input_jjs.push_back(j);
    if (s + 1 == stages) d.output_jjs.push_back(j);
    prev = n;
  }
  return d;
}

cell_deck make_dc_sfq() {
  cell_deck d;
  const node in = d.ckt.add_node("in");
  const node x = d.ckt.add_node("x");
  d.inputs.push_back(in);
  d.ckt.add_inductor(in, x, 8.0);
  const std::size_t j = d.ckt.add_jj(x, 0);
  d.ckt.add_bias(x, 0.05);
  d.input_jjs.push_back(j);
  d.output_jjs.push_back(j);
  return d;
}

cell_deck make_splitter() {
  cell_deck d;
  const node in = d.ckt.add_node("in");
  d.inputs.push_back(in);
  const node hub = d.ckt.add_node("hub");
  d.ckt.add_inductor(in, hub, k_link_inductance_ph);
  const std::size_t j_in = d.ckt.add_jj(hub, 0, {0.15, 4.0, 0.07});
  d.ckt.add_bias(hub, 0.105);
  d.input_jjs.push_back(j_in);
  for (int branch = 0; branch < 2; ++branch) {
    const node out = d.ckt.add_node(branch ? "out_b" : "out_a");
    d.ckt.add_inductor(hub, out, k_link_inductance_ph + 1.0);
    const std::size_t j = d.ckt.add_jj(out, 0);
    d.ckt.add_bias(out, k_bias_ma);
    d.output_jjs.push_back(j);
  }
  return d;
}

cell_deck make_la_cell() {
  cell_deck d;
  // Two flux-storage input loops feeding a common output junction whose
  // critical current requires both loops to be charged (coincidence AND).
  const node m = d.ckt.add_node("merge");
  for (int i = 0; i < 2; ++i) {
    const node in = d.ckt.add_node(i ? "b" : "a");
    d.inputs.push_back(in);
    const node loop = d.ckt.add_node(i ? "loop_b" : "loop_a");
    d.ckt.add_inductor(in, loop, k_link_inductance_ph);
    // Escape junction isolates the input from back-action.
    d.input_jjs.push_back(d.ckt.add_jj(loop, 0, {0.16, 4.0, 0.07}));
    d.ckt.add_bias(loop, 0.04);
    // Storage inductor: one quantum contributes ~Phi0/L ~ 0.065 mA.
    d.ckt.add_inductor(loop, m, 32.0);
  }
  const std::size_t j_out = d.ckt.add_jj(m, 0, {0.12, 4.0, 0.06});
  d.ckt.add_bias(m, 0.015);
  d.output_jjs.push_back(j_out);
  return d;
}

cell_deck make_fa_cell() {
  cell_deck d;
  // Confluence-style merge: either input pulse drives the output junction
  // over its critical current (first arrival wins).
  const node m = d.ckt.add_node("merge");
  for (int i = 0; i < 2; ++i) {
    const node in = d.ckt.add_node(i ? "b" : "a");
    d.inputs.push_back(in);
    const node stage = d.ckt.add_node(i ? "st_b" : "st_a");
    d.ckt.add_inductor(in, stage, k_link_inductance_ph);
    d.input_jjs.push_back(d.ckt.add_jj(stage, 0, {0.12, 4.0, 0.06}));
    d.ckt.add_bias(stage, 0.07);
    d.ckt.add_inductor(stage, m, 6.0);
  }
  const std::size_t j_out = d.ckt.add_jj(m, 0);
  d.ckt.add_bias(m, 0.07);
  d.output_jjs.push_back(j_out);
  return d;
}

cell_deck make_dro_preload() {
  cell_deck d;
  // Storage loop (write junction -> L -> readout junction); a data pulse
  // stores one quantum, the clock pulse reads it out destructively.  The
  // preload path is a DC-to-SFQ converter whose output merges with data,
  // reproducing Figure 3's block diagram.
  const node data = d.ckt.add_node("data");
  const node clk = d.ckt.add_node("clk");
  const node pre = d.ckt.add_node("preload");
  d.inputs = {data, clk, pre};

  const node w = d.ckt.add_node("write");
  d.ckt.add_inductor(data, w, k_link_inductance_ph);
  const std::size_t j_write = d.ckt.add_jj(w, 0, {0.14, 4.0, 0.07});
  d.ckt.add_bias(w, 0.03);
  d.input_jjs.push_back(j_write);

  // Preload DC-to-SFQ merged into the write node.
  const node px = d.ckt.add_node("pre_x");
  d.ckt.add_inductor(pre, px, 8.0);
  const std::size_t j_pre = d.ckt.add_jj(px, 0);
  d.ckt.add_bias(px, 0.05);
  d.ckt.add_inductor(px, w, 6.0);
  d.input_jjs.push_back(j_pre);

  // Storage inductor into the readout junction (values chosen so a bare
  // clock or a bare write never fires the readout; see tests).
  const node r = d.ckt.add_node("read");
  d.ckt.add_inductor(w, r, 34.0);
  const std::size_t j_read = d.ckt.add_jj(r, 0, {0.18, 4.0, 0.06});
  d.output_jjs.push_back(j_read);

  // Clock injection into the readout junction.
  const node cx = d.ckt.add_node("clk_x");
  d.ckt.add_inductor(clk, cx, k_link_inductance_ph);
  const std::size_t j_clk = d.ckt.add_jj(cx, 0, {0.16, 4.0, 0.07});
  d.ckt.add_bias(cx, 0.04);
  d.ckt.add_inductor(cx, r, 12.0);
  d.input_jjs.push_back(j_clk);
  return d;
}

double propagation_delay_ps(const circuit::probe_data& data,
                            std::size_t input_jj, std::size_t output_jj,
                            std::size_t pulse_index) {
  const auto in_slips = circuit::phase_slips(data, input_jj);
  const auto out_slips = circuit::phase_slips(data, output_jj);
  if (in_slips.size() <= pulse_index || out_slips.size() <= pulse_index) {
    return -1.0;
  }
  return out_slips[pulse_index] - in_slips[pulse_index];
}

}  // namespace xsfq::analog
