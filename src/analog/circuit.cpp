#include "analog/circuit.hpp"

#include <cmath>
#include <stdexcept>

namespace xsfq::analog {

node circuit::add_node(std::string name) {
  if (name.empty()) name = "n" + std::to_string(names_.size());
  names_.push_back(std::move(name));
  return static_cast<node>(names_.size() - 1);
}

std::size_t circuit::add_jj(node a, node b, const jj_params& params) {
  jjs_.push_back({a, b, params});
  return jjs_.size() - 1;
}

void circuit::add_inductor(node a, node b, double inductance_ph) {
  if (inductance_ph <= 0) {
    throw std::invalid_argument("circuit: inductance must be positive");
  }
  inductors_.push_back({a, b, inductance_ph});
}

void circuit::add_resistor(node a, node b, double resistance_ohm) {
  resistors_.push_back({a, b, resistance_ohm});
}

void circuit::add_bias(node into, double current_ma) {
  sources_.push_back({into, [current_ma](double) { return current_ma; }});
}

void circuit::add_source(node into, std::function<double(double)> current_ma) {
  sources_.push_back({into, std::move(current_ma)});
}

void circuit::add_pulse(node into, double t0_ps, double amplitude_ma,
                        double sigma_ps) {
  sources_.push_back({into, [=](double t) {
                        const double x = (t - t0_ps) / sigma_ps;
                        return amplitude_ma * std::exp(-0.5 * x * x);
                      }});
}

void circuit::derivative(double t, const std::vector<double>& state,
                         std::vector<double>& deriv) const {
  const std::size_t n = names_.size();
  // state: theta[0..n-1], v[0..n-1]; ground clamped.
  const double* theta = state.data();
  const double* v = state.data() + n;
  double* dtheta = deriv.data();
  double* dv = deriv.data() + n;
  for (std::size_t i = 0; i < n; ++i) {
    dtheta[i] = v[i];
    dv[i] = 0.0;  // accumulates current; divided by capacitance below
  }
  dtheta[0] = 0.0;

  auto inject = [&](node a, node b, double current) {
    // Current flowing a -> b removes charge from a, adds to b.
    dv[a] -= current;
    dv[b] += current;
  };

  for (const auto& j : jjs_) {
    const double phi = theta[j.a] - theta[j.b];
    const double dphi = v[j.a] - v[j.b];
    const double current = j.params.critical_current_ma * std::sin(phi) +
                           k_phi0_bar * dphi / j.params.shunt_resistance_ohm;
    inject(j.a, j.b, current);
  }
  for (const auto& l : inductors_) {
    const double current = k_phi0_bar * (theta[l.a] - theta[l.b]) / l.value;
    inject(l.a, l.b, current);
  }
  for (const auto& r : resistors_) {
    const double current = k_phi0_bar * (v[r.a] - v[r.b]) / r.value;
    inject(r.a, r.b, current);
  }
  for (const auto& s : sources_) {
    dv[s.into] += s.current_ma(t);
  }

  for (std::size_t i = 1; i < n; ++i) {
    dv[i] /= node_capacitance_[i] * k_phi0_bar;
  }
  dv[0] = 0.0;
}

circuit::probe_data circuit::run(double duration_ps, double dt_ps,
                                 unsigned sample_every) {
  const std::size_t n = names_.size();
  // Node capacitance: parasitic floor plus junction capacitances.
  node_capacitance_.assign(n, 0.02);  // 20 fF parasitic floor per node
  for (const auto& j : jjs_) {
    node_capacitance_[j.a] += j.params.capacitance_pf;
    node_capacitance_[j.b] += j.params.capacitance_pf;
  }

  std::vector<double> state(2 * n, 0.0);
  std::vector<double> k1(2 * n), k2(2 * n), k3(2 * n), k4(2 * n),
      tmp(2 * n);

  probe_data data;
  data.jj_phase.resize(jjs_.size());
  data.node_voltage.resize(n);

  const auto steps = static_cast<std::size_t>(duration_ps / dt_ps);
  for (std::size_t step = 0; step <= steps; ++step) {
    const double t = static_cast<double>(step) * dt_ps;
    if (step % sample_every == 0) {
      data.time_ps.push_back(t);
      for (std::size_t j = 0; j < jjs_.size(); ++j) {
        data.jj_phase[j].push_back(state[jjs_[j].a] - state[jjs_[j].b]);
      }
      for (std::size_t i = 0; i < n; ++i) {
        // v is the scaled phase rate; node voltage = phi0_bar * v (mV).
        data.node_voltage[i].push_back(k_phi0_bar * state[n + i]);
      }
    }
    // Classic RK4 step.
    derivative(t, state, k1);
    for (std::size_t i = 0; i < 2 * n; ++i) tmp[i] = state[i] + 0.5 * dt_ps * k1[i];
    derivative(t + 0.5 * dt_ps, tmp, k2);
    for (std::size_t i = 0; i < 2 * n; ++i) tmp[i] = state[i] + 0.5 * dt_ps * k2[i];
    derivative(t + 0.5 * dt_ps, tmp, k3);
    for (std::size_t i = 0; i < 2 * n; ++i) tmp[i] = state[i] + dt_ps * k3[i];
    derivative(t + dt_ps, tmp, k4);
    for (std::size_t i = 0; i < 2 * n; ++i) {
      state[i] += dt_ps / 6.0 * (k1[i] + 2 * k2[i] + 2 * k3[i] + k4[i]);
    }
  }
  return data;
}

std::vector<double> circuit::phase_slips(const probe_data& data,
                                         std::size_t jj) {
  std::vector<double> slips;
  const auto& phase = data.jj_phase.at(jj);
  constexpr double two_pi = 6.283185307179586;
  double next_threshold = two_pi * 0.5;
  int count = 0;
  for (std::size_t i = 0; i < phase.size(); ++i) {
    // The guard bounds runaway counting if an ill-conditioned deck diverges.
    while (std::isfinite(phase[i]) && phase[i] > next_threshold &&
           count < 100000) {
      slips.push_back(data.time_ps[i]);
      ++count;
      next_threshold = two_pi * 0.5 + two_pi * count;
    }
  }
  return slips;
}

}  // namespace xsfq::analog
