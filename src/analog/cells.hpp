#pragma once
/// \file cells.hpp
/// \brief Analog cell decks for the xSFQ library (Figures 2 and 3).
///
/// Each deck builds an RCSJ-level circuit for one cell and returns the
/// junction indices to probe.  The JTL, DC-to-SFQ and splitter decks are
/// standard textbook designs and propagate real SFQ pulses in this
/// simulator.  The LA/FA decks demonstrate the last-arrival (coincidence)
/// and first-arrival (merge) behaviours of Figure 2 with flux-storage input
/// loops; they are qualitative demonstrations of the cell *principle* — the
/// cycle-accurate cell semantics used by synthesis are validated separately
/// in src/pulsesim (see DESIGN.md's substitution notes).

#include "analog/circuit.hpp"

namespace xsfq::analog {

/// A built cell deck: the circuit plus probe points.
struct cell_deck {
  circuit ckt;
  std::vector<node> inputs;        ///< pulse-injection nodes
  std::vector<std::size_t> input_jjs;   ///< junction index per input
  std::vector<std::size_t> output_jjs;  ///< junction index per output
};

/// Josephson transmission line with `stages` biased junctions.
cell_deck make_jtl(unsigned stages = 3);

/// DC-to-SFQ converter: a current ramp on input 0 produces one pulse.
cell_deck make_dc_sfq();

/// 1-to-2 splitter: one input junction, two output branches.
cell_deck make_splitter();

/// Last-Arrival demonstrator: the output junction fires only after both
/// input loops hold flux (C-element / dual-rail AND behaviour).
cell_deck make_la_cell();

/// First-Arrival demonstrator: the output junction fires on the first
/// arriving input pulse (inverse C-element / dual-rail OR behaviour).
cell_deck make_fa_cell();

/// DRO storage demonstrator with a DC-to-SFQ preloading path (Figure 3):
/// input 0 = data, input 1 = clock, input 2 = preload ramp enable.
cell_deck make_dro_preload();

/// Measured propagation delay: time from the n-th input-junction slip to the
/// n-th output-junction slip; returns negative when no propagation happened.
double propagation_delay_ps(const circuit::probe_data& data,
                            std::size_t input_jj, std::size_t output_jj,
                            std::size_t pulse_index = 0);

}  // namespace xsfq::analog
