#pragma once
/// \file hash.hpp
/// \brief Shared 64-bit hash combinators.
///
/// Both halves of the flow result-cache key — `aig::content_hash()` and
/// `flow::fingerprint()` — mix through these functions, so their avalanche
/// behaviour stays in lockstep.

#include <cstdint>
#include <string>

namespace xsfq {

/// splitmix64-style avalanche combine: strong enough that a 64-bit
/// collision between distinct inputs is practically impossible at
/// result-cache scale.
inline std::uint64_t hash_mix(std::uint64_t h, std::uint64_t x) {
  std::uint64_t z = h ^ (x + 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Length-prefixed string mix (distinguishes {"ab","c"} from {"a","bc"}).
inline std::uint64_t hash_mix_str(std::uint64_t h, const std::string& s) {
  h = hash_mix(h, s.size());
  for (const char c : s) h = hash_mix(h, static_cast<unsigned char>(c));
  return h;
}

}  // namespace xsfq
