#include "util/isop.hpp"

#include <stdexcept>

namespace xsfq {
namespace {

/// Minato-Morreale recursion.  Computes an ISOP of some g with
/// on <= g <= on|dc, appending cubes to `cover` and returning the table of
/// the cover restricted to the current variable set.
truth_table isop_rec(const truth_table& on, const truth_table& dc,
                     unsigned num_vars, std::vector<cube>& cover) {
  if (on.is_const0()) return truth_table::zeros(on.num_vars());
  const truth_table upper = on | dc;
  if (upper.is_const1()) {
    cover.push_back(cube{});
    return truth_table::ones(on.num_vars());
  }

  // Find the top variable in the support of on or dc-boundary.
  unsigned var = num_vars;
  while (var-- > 0) {
    if (on.has_var(var) || upper.has_var(var)) break;
  }

  const truth_table on0 = on.cofactor0(var);
  const truth_table on1 = on.cofactor1(var);
  const truth_table dc0 = dc.cofactor0(var);
  const truth_table dc1 = dc.cofactor1(var);

  // Cubes containing !x_var must cover on0 outside (on1|dc1).
  const std::size_t begin0 = cover.size();
  const truth_table res0 =
      isop_rec(on0 & ~(on1 | dc1), dc0, var, cover);
  for (std::size_t i = begin0; i < cover.size(); ++i) {
    cover[i].neg |= 1u << var;
  }

  // Cubes containing x_var must cover on1 outside (on0|dc0).
  const std::size_t begin1 = cover.size();
  const truth_table res1 =
      isop_rec(on1 & ~(on0 | dc0), dc1, var, cover);
  for (std::size_t i = begin1; i < cover.size(); ++i) {
    cover[i].pos |= 1u << var;
  }

  // The remainder must be covered by cubes independent of x_var.
  const truth_table on_common = (on0 & ~res0) | (on1 & ~res1);
  const truth_table dc_common = (dc0 | res0) & (dc1 | res1);
  const truth_table res2 = isop_rec(on_common, dc_common & ~on_common,
                                    var, cover);

  const truth_table x = truth_table::nth_var(on.num_vars(), var);
  return (res0 & ~x) | (res1 & x) | res2;
}

/// Single-word mirror of isop_rec for tail-masked <= 6-variable tables:
/// identical recursion, identical cube order, raw uint64 arithmetic.
std::uint64_t isop_rec_word(std::uint64_t on, std::uint64_t dc,
                            unsigned num_vars, std::uint64_t full,
                            std::vector<cube>& cover) {
  if (on == 0) return 0;
  const std::uint64_t upper = on | dc;
  if (upper == full) {
    cover.push_back(cube{});
    return full;
  }

  const auto cof0 = [](std::uint64_t w, unsigned v) {
    const std::uint64_t low = w & ~truth_table::var_masks[v];
    return low | (low << (1u << v));
  };
  const auto cof1 = [](std::uint64_t w, unsigned v) {
    const std::uint64_t high = w & truth_table::var_masks[v];
    return high | (high >> (1u << v));
  };
  const auto depends = [&](std::uint64_t w, unsigned v) {
    return cof0(w, v) != cof1(w, v);
  };

  unsigned var = num_vars;
  while (var-- > 0) {
    if (depends(on, var) || depends(upper, var)) break;
  }

  const std::uint64_t on0 = cof0(on, var);
  const std::uint64_t on1 = cof1(on, var);
  const std::uint64_t dc0 = cof0(dc, var);
  const std::uint64_t dc1 = cof1(dc, var);

  const std::size_t begin0 = cover.size();
  const std::uint64_t res0 =
      isop_rec_word(on0 & ~(on1 | dc1) & full, dc0, var, full, cover);
  for (std::size_t i = begin0; i < cover.size(); ++i) {
    cover[i].neg |= 1u << var;
  }

  const std::size_t begin1 = cover.size();
  const std::uint64_t res1 =
      isop_rec_word(on1 & ~(on0 | dc0) & full, dc1, var, full, cover);
  for (std::size_t i = begin1; i < cover.size(); ++i) {
    cover[i].pos |= 1u << var;
  }

  const std::uint64_t on_common = (on0 & ~res0) | (on1 & ~res1);
  const std::uint64_t dc_common = (dc0 | res0) & (dc1 | res1) & full;
  const std::uint64_t res2 = isop_rec_word(
      on_common & full, dc_common & ~on_common, var, full, cover);

  const std::uint64_t x = truth_table::var_masks[var] & full;
  return ((res0 & ~x) | (res1 & x) | res2) & full;
}

}  // namespace

void isop_word_into(std::uint64_t onset, unsigned num_vars,
                    std::vector<cube>& cover) {
  if (num_vars > truth_table::small_vars) {
    throw std::invalid_argument("isop_word_into: more than 6 variables");
  }
  const std::uint64_t full =
      num_vars == 6 ? ~std::uint64_t{0}
                    : (std::uint64_t{1} << (1u << num_vars)) - 1;
  cover.clear();
  isop_rec_word(onset & full, 0, num_vars, full, cover);
}

void isop_into(const truth_table& onset, const truth_table& dcset,
               std::vector<cube>& cover) {
  if (onset.num_vars() != dcset.num_vars()) {
    throw std::invalid_argument("isop: domain mismatch");
  }
  if (onset.num_vars() > 32) {
    throw std::invalid_argument("isop: more than 32 variables");
  }
  cover.clear();
  isop_rec(onset, dcset, onset.num_vars(), cover);
}

std::vector<cube> isop(const truth_table& onset, const truth_table& dcset) {
  std::vector<cube> cover;
  isop_into(onset, dcset, cover);
  return cover;
}

std::vector<cube> isop(const truth_table& function) {
  return isop(function, truth_table::zeros(function.num_vars()));
}

truth_table cover_to_table(const std::vector<cube>& cover, unsigned num_vars) {
  truth_table t(num_vars);
  for (std::uint64_t m = 0; m < t.num_bits(); ++m) {
    for (const auto& c : cover) {
      if (c.evaluates_true(m)) {
        t.set_bit(m);
        break;
      }
    }
  }
  return t;
}

unsigned cover_literals(const std::vector<cube>& cover) {
  unsigned n = 0;
  for (const auto& c : cover) n += c.num_literals();
  return n;
}

}  // namespace xsfq
