#include "util/table_printer.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace xsfq {

table_printer::table_printer(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void table_printer::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::invalid_argument("table_printer: too many cells in row");
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void table_printer::add_separator() { rows_.emplace_back(); }

void table_printer::print(std::ostream& os) const { os << to_string(); }

std::string table_printer::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      os << ' ' << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  auto emit_separator = [&] {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << std::string(width[c] + 2, '-') << '|';
    }
    os << '\n';
  };

  emit_row(headers_);
  emit_separator();
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_separator();
    } else {
      emit_row(row);
    }
  }
  return os.str();
}

std::string table_printer::fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string table_printer::pair(const std::string& a, const std::string& b) {
  return a + "/" + b;
}

std::string table_printer::ratio(double value, int precision) {
  return fixed(value, precision) + "x";
}

std::string table_printer::percent(double fraction, int precision) {
  return fixed(fraction * 100.0, precision) + "%";
}

}  // namespace xsfq
