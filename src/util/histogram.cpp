#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace xsfq {

double log_histogram::bucket_lower_ms(std::size_t i) {
  return 0.001 * static_cast<double>(std::uint64_t{1} << i);
}

double log_histogram::bucket_upper_ms(std::size_t i) {
  return bucket_lower_ms(i + 1);
}

std::size_t log_histogram::bucket_index(double ms) {
  if (!(ms > 0.001)) return 0;  // also catches NaN and sub-microsecond
  // floor(log2(ms / 0.001)): ilogb is exact for the power-of-two boundaries
  // doubles can represent, so 0.002 lands in bucket 1, not bucket 0.
  const int exp = std::ilogb(ms * 1000.0);
  if (exp <= 0) return 0;
  return std::min<std::size_t>(static_cast<std::size_t>(exp),
                               num_buckets - 1);
}

void log_histogram::record(double ms) {
  ++buckets_[bucket_index(ms)];
  ++count_;
  if (ms > 0.0 && !std::isnan(ms)) {
    sum_ms_ += ms;
    max_ms_ = std::max(max_ms_, ms);
  }
}

void log_histogram::merge(const log_histogram& other) {
  for (std::size_t i = 0; i < num_buckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ms_ += other.sum_ms_;
  max_ms_ = std::max(max_ms_, other.max_ms_);
}

void log_histogram::reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ms_ = 0.0;
  max_ms_ = 0.0;
}

double log_histogram::quantile_ms(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < num_buckets; ++i) {
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) >= target) return bucket_upper_ms(i);
  }
  return bucket_upper_ms(num_buckets - 1);
}

log_histogram& histogram_set::at(std::string_view name) {
  for (auto& [key, hist] : entries_) {
    if (key == name) return hist;
  }
  entries_.emplace_back(std::string(name), log_histogram{});
  return entries_.back().second;
}

void histogram_set::merge_into(histogram_set& target) const {
  for (const auto& [key, hist] : entries_) {
    target.at(key).merge(hist);
  }
}

void histogram_set::reset_counts() {
  for (auto& [key, hist] : entries_) {
    (void)key;
    hist.reset();
  }
}

}  // namespace xsfq
