#include "util/truth_table.hpp"

#include <algorithm>

namespace xsfq {
namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("truth_table: bad hex digit");
}

}  // namespace

truth_table truth_table::nth_var(unsigned num_vars, unsigned var) {
  if (var >= num_vars) {
    throw std::invalid_argument("truth_table::nth_var: variable out of range");
  }
  truth_table t(num_vars);
  if (var < 6) {
    for (std::size_t i = 0; i < t.num_words(); ++i) {
      t.data()[i] = var_masks[var];
    }
  } else {
    // Variable >= 6 selects whole words: blocks of 2^(var-6) words alternate.
    const std::size_t block = std::size_t{1} << (var - 6);
    for (std::size_t i = 0; i < t.num_words(); ++i) {
      if ((i / block) & 1u) t.data()[i] = ~std::uint64_t{0};
    }
  }
  t.mask_tail();
  return t;
}

truth_table truth_table::from_hex(unsigned num_vars, const std::string& hex) {
  truth_table t(num_vars);
  const std::uint64_t bits = t.num_bits();
  const std::size_t nibbles = bits >= 4 ? bits / 4 : 1;
  if (hex.size() != nibbles) {
    throw std::invalid_argument("truth_table::from_hex: wrong digit count");
  }
  for (std::size_t i = 0; i < hex.size(); ++i) {
    // Most significant nibble first.
    const auto value = static_cast<std::uint64_t>(hex_digit(hex[i]));
    const std::size_t nibble_index = hex.size() - 1 - i;
    t.data()[nibble_index / 16] |= value << (4 * (nibble_index % 16));
  }
  t.mask_tail();
  return t;
}

truth_table truth_table::expanded(unsigned num_vars,
                                  std::span<const unsigned> positions) const {
  if (positions.size() != num_vars_ || num_vars < num_vars_ ||
      num_vars > max_vars) {
    throw std::invalid_argument("truth_table::expanded: bad position map");
  }
  for (std::size_t i = 0; i < positions.size(); ++i) {
    // Strictly increasing slots (insertion-only, never a permutation) —
    // the single-word fast path relies on it.
    if (positions[i] >= num_vars || (i > 0 && positions[i] <= positions[i - 1])) {
      throw std::invalid_argument("truth_table::expanded: bad position map");
    }
  }
  truth_table r(num_vars);
  if (num_vars <= small_vars) {
    r.word0_ = expand_word(word0_, num_vars_, positions.data());
    r.mask_tail();
    return r;
  }
  // Generic spill path (cut sizes > 6); bit-by-bit over the result domain.
  const std::uint64_t bits = r.num_bits();
  for (std::uint64_t m = 0; m < bits; ++m) {
    std::uint64_t src = 0;
    for (std::size_t i = 0; i < positions.size(); ++i) {
      if ((m >> positions[i]) & 1u) src |= std::uint64_t{1} << i;
    }
    if (bit(src)) r.set_bit(m);
  }
  return r;
}

truth_table truth_table::cofactor0(unsigned var) const {
  truth_table r(*this);
  if (var < 6) {
    const std::uint64_t mask = ~var_masks[var];
    const unsigned shift = 1u << var;
    for (std::size_t i = 0; i < r.num_words(); ++i) {
      const std::uint64_t low = r.data()[i] & mask;
      r.data()[i] = low | (low << shift);
    }
  } else {
    const std::size_t block = std::size_t{1} << (var - 6);
    for (std::size_t i = 0; i < r.num_words(); i += 2 * block) {
      for (std::size_t j = 0; j < block; ++j) {
        r.data()[i + block + j] = r.data()[i + j];
      }
    }
  }
  return r;
}

truth_table truth_table::cofactor1(unsigned var) const {
  truth_table r(*this);
  if (var < 6) {
    const std::uint64_t mask = var_masks[var];
    const unsigned shift = 1u << var;
    for (std::size_t i = 0; i < r.num_words(); ++i) {
      const std::uint64_t high = r.data()[i] & mask;
      r.data()[i] = high | (high >> shift);
    }
  } else {
    const std::size_t block = std::size_t{1} << (var - 6);
    for (std::size_t i = 0; i < r.num_words(); i += 2 * block) {
      for (std::size_t j = 0; j < block; ++j) {
        r.data()[i + j] = r.data()[i + block + j];
      }
    }
  }
  return r;
}

truth_table truth_table::flip_var(unsigned var) const {
  truth_table r(num_vars_);
  if (var < 6) {
    const unsigned shift = 1u << var;
    const std::uint64_t mask = var_masks[var];
    for (std::size_t i = 0; i < num_words(); ++i) {
      const std::uint64_t w = data()[i];
      r.data()[i] = ((w & mask) >> shift) | ((w & ~mask) << shift);
    }
  } else {
    const std::size_t block = std::size_t{1} << (var - 6);
    for (std::size_t i = 0; i < num_words(); i += 2 * block) {
      for (std::size_t j = 0; j < block; ++j) {
        r.data()[i + j] = data()[i + block + j];
        r.data()[i + block + j] = data()[i + j];
      }
    }
  }
  return r;
}

truth_table truth_table::swap_vars(unsigned var_a, unsigned var_b) const {
  if (var_a == var_b) return *this;
  if (is_small()) {
    truth_table r(num_vars_);
    r.word0_ = swap_word(word0_, var_a, var_b);
    r.mask_tail();
    return r;
  }
  // Generic spill implementation via minterm remapping; large tables are only
  // swapped during canonicalization experiments, never on the hot path.
  truth_table r(num_vars_);
  const std::uint64_t bits = num_bits();
  for (std::uint64_t m = 0; m < bits; ++m) {
    const std::uint64_t a = (m >> var_a) & 1u;
    const std::uint64_t b = (m >> var_b) & 1u;
    std::uint64_t src = m & ~((std::uint64_t{1} << var_a) |
                              (std::uint64_t{1} << var_b));
    src |= (b << var_a) | (a << var_b);
    if (bit(src)) r.set_bit(m);
  }
  return r;
}

truth_table truth_table::permute(const std::vector<unsigned>& perm) const {
  if (perm.size() != num_vars_) {
    throw std::invalid_argument("truth_table::permute: wrong permutation size");
  }
  truth_table r(num_vars_);
  const std::uint64_t bits = num_bits();
  for (std::uint64_t m = 0; m < bits; ++m) {
    std::uint64_t src = 0;
    for (unsigned v = 0; v < num_vars_; ++v) {
      if ((m >> v) & 1u) src |= std::uint64_t{1} << perm[v];
    }
    if (bit(src)) r.set_bit(m);
  }
  return r;
}

std::string truth_table::to_hex() const {
  static const char* digits = "0123456789abcdef";
  const std::uint64_t bits = num_bits();
  const std::size_t nibbles = bits >= 4 ? bits / 4 : 1;
  std::string s(nibbles, '0');
  for (std::size_t n = 0; n < nibbles; ++n) {
    const std::uint64_t value = (data()[n / 16] >> (4 * (n % 16))) & 0xFu;
    s[nibbles - 1 - n] = digits[value];
  }
  return s;
}

std::string truth_table::to_binary() const {
  const std::uint64_t bits = num_bits();
  std::string s(bits, '0');
  for (std::uint64_t m = 0; m < bits; ++m) {
    if (bit(m)) s[bits - 1 - m] = '1';
  }
  return s;
}

}  // namespace xsfq
