#include "util/truth_table.hpp"

#include <algorithm>
#include <array>

namespace xsfq {
namespace {

/// Repeating bit patterns of the first six projection variables.
constexpr std::array<std::uint64_t, 6> k_var_masks = {
    0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0xF0F0F0F0F0F0F0F0ull,
    0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull, 0xFFFFFFFF00000000ull};

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("truth_table: bad hex digit");
}

}  // namespace

truth_table truth_table::nth_var(unsigned num_vars, unsigned var) {
  if (var >= num_vars) {
    throw std::invalid_argument("truth_table::nth_var: variable out of range");
  }
  truth_table t(num_vars);
  if (var < 6) {
    for (auto& w : t.words_) w = k_var_masks[var];
  } else {
    // Variable >= 6 selects whole words: blocks of 2^(var-6) words alternate.
    const std::size_t block = std::size_t{1} << (var - 6);
    for (std::size_t i = 0; i < t.words_.size(); ++i) {
      if ((i / block) & 1u) t.words_[i] = ~std::uint64_t{0};
    }
  }
  t.mask_tail();
  return t;
}

truth_table truth_table::from_hex(unsigned num_vars, const std::string& hex) {
  truth_table t(num_vars);
  const std::uint64_t bits = t.num_bits();
  const std::size_t nibbles = bits >= 4 ? bits / 4 : 1;
  if (hex.size() != nibbles) {
    throw std::invalid_argument("truth_table::from_hex: wrong digit count");
  }
  for (std::size_t i = 0; i < hex.size(); ++i) {
    // Most significant nibble first.
    const auto value = static_cast<std::uint64_t>(hex_digit(hex[i]));
    const std::size_t nibble_index = hex.size() - 1 - i;
    t.words_[nibble_index / 16] |= value << (4 * (nibble_index % 16));
  }
  t.mask_tail();
  return t;
}

truth_table truth_table::cofactor0(unsigned var) const {
  truth_table r(*this);
  if (var < 6) {
    const std::uint64_t mask = ~k_var_masks[var];
    const unsigned shift = 1u << var;
    for (auto& w : r.words_) {
      const std::uint64_t low = w & mask;
      w = low | (low << shift);
    }
  } else {
    const std::size_t block = std::size_t{1} << (var - 6);
    for (std::size_t i = 0; i < r.words_.size(); i += 2 * block) {
      for (std::size_t j = 0; j < block; ++j) {
        r.words_[i + block + j] = r.words_[i + j];
      }
    }
  }
  return r;
}

truth_table truth_table::cofactor1(unsigned var) const {
  truth_table r(*this);
  if (var < 6) {
    const std::uint64_t mask = k_var_masks[var];
    const unsigned shift = 1u << var;
    for (auto& w : r.words_) {
      const std::uint64_t high = w & mask;
      w = high | (high >> shift);
    }
  } else {
    const std::size_t block = std::size_t{1} << (var - 6);
    for (std::size_t i = 0; i < r.words_.size(); i += 2 * block) {
      for (std::size_t j = 0; j < block; ++j) {
        r.words_[i + j] = r.words_[i + block + j];
      }
    }
  }
  return r;
}

truth_table truth_table::flip_var(unsigned var) const {
  truth_table r(num_vars_);
  if (var < 6) {
    const unsigned shift = 1u << var;
    const std::uint64_t mask = k_var_masks[var];
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t w = words_[i];
      r.words_[i] = ((w & mask) >> shift) | ((w & ~mask) << shift);
    }
  } else {
    const std::size_t block = std::size_t{1} << (var - 6);
    for (std::size_t i = 0; i < words_.size(); i += 2 * block) {
      for (std::size_t j = 0; j < block; ++j) {
        r.words_[i + j] = words_[i + block + j];
        r.words_[i + block + j] = words_[i + j];
      }
    }
  }
  return r;
}

truth_table truth_table::swap_vars(unsigned var_a, unsigned var_b) const {
  if (var_a == var_b) return *this;
  // Generic (and simple) implementation via minterm remapping; tables used for
  // canonicalization are small (<= 6 vars, single word), so this is fine.
  truth_table r(num_vars_);
  const std::uint64_t bits = num_bits();
  for (std::uint64_t m = 0; m < bits; ++m) {
    const std::uint64_t a = (m >> var_a) & 1u;
    const std::uint64_t b = (m >> var_b) & 1u;
    std::uint64_t src = m & ~((std::uint64_t{1} << var_a) |
                              (std::uint64_t{1} << var_b));
    src |= (b << var_a) | (a << var_b);
    if (bit(src)) r.set_bit(m);
  }
  return r;
}

truth_table truth_table::permute(const std::vector<unsigned>& perm) const {
  if (perm.size() != num_vars_) {
    throw std::invalid_argument("truth_table::permute: wrong permutation size");
  }
  truth_table r(num_vars_);
  const std::uint64_t bits = num_bits();
  for (std::uint64_t m = 0; m < bits; ++m) {
    std::uint64_t src = 0;
    for (unsigned v = 0; v < num_vars_; ++v) {
      if ((m >> v) & 1u) src |= std::uint64_t{1} << perm[v];
    }
    if (bit(src)) r.set_bit(m);
  }
  return r;
}

std::string truth_table::to_hex() const {
  static const char* digits = "0123456789abcdef";
  const std::uint64_t bits = num_bits();
  const std::size_t nibbles = bits >= 4 ? bits / 4 : 1;
  std::string s(nibbles, '0');
  for (std::size_t n = 0; n < nibbles; ++n) {
    const std::uint64_t value = (words_[n / 16] >> (4 * (n % 16))) & 0xFu;
    s[nibbles - 1 - n] = digits[value];
  }
  return s;
}

std::string truth_table::to_binary() const {
  const std::uint64_t bits = num_bits();
  std::string s(bits, '0');
  for (std::uint64_t m = 0; m < bits; ++m) {
    if (bit(m)) s[bits - 1 - m] = '1';
  }
  return s;
}

}  // namespace xsfq
