#pragma once
/// \file log.hpp
/// \brief Level-gated structured (logfmt) logger for the service binaries.
///
/// One event per line, `key=value` pairs, values quoted/escaped only when
/// they need it — the format Grafana/Loki-style pipelines ingest without a
/// parser config, and grep still works:
///
///   ts=2026-08-07T12:34:56.789Z level=info event=request.done conn=3
///       trace_id=00f1d2... ms=1.72
///
/// Design constraints, in order:
///  - A disabled level must cost one relaxed atomic load and a branch, so
///    `debug`-level instrumentation can stay in the request hot path.
///  - A line is assembled in one buffer and handed to the sink as a single
///    call, so concurrent handler threads never interleave mid-line.
///  - The sink is replaceable (tests capture lines; the daemon keeps the
///    default stderr sink).
///
/// This is the daemon's operational voice.  It deliberately does NOT replace
/// stdout result output (xsfq_client's stdout stays byte-identical to
/// xsfq_synth — the served/local diff contract) and it is independent of the
/// flight recorder in util/trace.hpp: logs are for humans tailing a box,
/// spans are for per-request waterfalls.  Lifecycle events carry the
/// request's trace_id so the two correlate.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace xsfq::log {

enum class level : int {
  trace = 0,
  debug = 1,
  info = 2,
  warn = 3,
  error = 4,
  off = 5,  ///< nothing is emitted
};

namespace detail {
extern std::atomic<int> g_level;  // default: info
}

/// The one hot-path check: relaxed load + compare.
inline bool enabled(level l) {
  return static_cast<int>(l) >=
         detail::g_level.load(std::memory_order_relaxed);
}

void set_level(level l);
level get_level();

/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off" (what --log-level
/// accepts).  Returns false and leaves `out` untouched on anything else.
bool parse_level(std::string_view text, level& out);
/// The inverse, for printing the active level back ("info", ...).
std::string_view level_name(level l);

/// Replaces the line sink (default: one write(2)-ish call to stderr per
/// line, newline included).  Pass nullptr to restore the default.  Intended
/// for tests; swap sinks only while no other thread is logging.
void set_sink(std::function<void(std::string_view line)> sink);

/// Fluent single-line builder.  Usage:
///
///   log::line(log::level::info, "conn.accept")
///       .kv("conn", id).kv("peer", peer).done();
///
/// When the level is disabled the constructor short-circuits and every kv()
/// is a no-op on a dead object (no formatting, no allocation beyond the
/// empty string).  done() emits; the destructor emits if done() was not
/// called, so early returns cannot swallow a line.
class line {
 public:
  line(level l, std::string_view event);
  ~line();
  line(const line&) = delete;
  line& operator=(const line&) = delete;

  line& kv(std::string_view key, std::string_view value);
  line& kv(std::string_view key, const char* value) {
    return kv(key, std::string_view(value));
  }
  line& kv(std::string_view key, const std::string& value) {
    return kv(key, std::string_view(value));
  }
  line& kv(std::string_view key, bool value);
  line& kv(std::string_view key, std::uint64_t value);
  line& kv(std::string_view key, std::int64_t value);
  line& kv(std::string_view key, std::uint32_t value) {
    return kv(key, static_cast<std::uint64_t>(value));
  }
  line& kv(std::string_view key, int value) {
    return kv(key, static_cast<std::int64_t>(value));
  }
  /// Fixed 3 decimal places — millisecond values line up in a terminal.
  line& kv(std::string_view key, double value);
  /// 16 lowercase hex digits, zero-padded (content hashes, half trace ids).
  line& kv_hex(std::string_view key, std::uint64_t value);

  void done();

 private:
  std::string buf_;
  bool active_ = false;
  bool emitted_ = false;
};

}  // namespace xsfq::log
