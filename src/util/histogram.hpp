#pragma once
/// \file histogram.hpp
/// \brief Fixed log-bucket latency histograms for the serving metrics path.
///
/// `log_histogram` is a fixed-size array of power-of-two buckets over
/// milliseconds: bucket i counts samples in [2^i, 2^(i+1)) microseconds
/// (bucket 0 also absorbs everything below 1 us, the last bucket everything
/// above its lower bound).  Recording is a branch-free index computation
/// plus one increment — cheap enough to sit on every request — and the
/// fixed layout makes merging a word-wise add, so the serving layer can keep
/// one recycled histogram per worker/connection and merge them only when a
/// stats reader asks (`server_stats`), never on the request path.
///
/// Neither class is internally synchronized: the owner either confines an
/// instance to one thread or guards it with its own lock (src/serve/server
/// does the latter, one short-lived lock per connection).

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xsfq {

/// Log-bucket latency histogram over milliseconds.  Value semantics; fixed
/// footprint (no allocation after construction); merge is element-wise.
class log_histogram {
 public:
  /// Bucket count: 1 us (2^0 us) up to ~2.2 minutes (2^27 us), which brackets
  /// every latency this codebase produces, from a warm cache hit (~100 us)
  /// to a cold validated c6288 run on a loaded debug build.
  static constexpr std::size_t num_buckets = 28;

  /// Lower bound of bucket `i` in milliseconds: 0.001 * 2^i.
  static double bucket_lower_ms(std::size_t i);
  /// Exclusive upper bound of bucket `i` in milliseconds (lower of i+1).
  static double bucket_upper_ms(std::size_t i);
  /// The bucket a sample falls into (clamped to [0, num_buckets-1];
  /// non-positive and NaN samples land in bucket 0).
  static std::size_t bucket_index(double ms);

  /// Adds one sample.  O(1), no allocation.
  void record(double ms);
  /// Adds every sample of `other` into this histogram (bucket-wise).
  void merge(const log_histogram& other);
  /// Zeroes all counts; keeps the fixed storage (recycling entry point).
  void reset();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum_ms() const { return sum_ms_; }
  [[nodiscard]] double max_ms() const { return max_ms_; }
  [[nodiscard]] const std::array<std::uint64_t, num_buckets>& buckets() const {
    return buckets_;
  }

  /// Upper bound of the bucket where the cumulative count first reaches
  /// `q * count()` (q in [0,1]).  Returns 0 for an empty histogram.  A bucket
  /// bound, not an interpolation: the error is at most one octave, which is
  /// the resolution this histogram promises.
  [[nodiscard]] double quantile_ms(double q) const;

 private:
  std::array<std::uint64_t, num_buckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ms_ = 0.0;
  double max_ms_ = 0.0;
};

/// A small ordered collection of named histograms ("queue_wait",
/// "stage:optimize", ...).  Lookup is linear — the set holds a handful of
/// stage names, and `at()` sits on the request path where a hash map's
/// allocation churn would cost more than the scan.  Insertion order is
/// stable, so merged snapshots list histograms in first-recorded order.
class histogram_set {
 public:
  /// Find-or-create the histogram named `name`.
  log_histogram& at(std::string_view name);
  /// Merges every named histogram into `target` (creating names as needed).
  void merge_into(histogram_set& target) const;
  /// Resets every histogram's counts; keeps the names (recycling).
  void reset_counts();

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] const std::vector<std::pair<std::string, log_histogram>>&
  entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, log_histogram>> entries_;
};

}  // namespace xsfq
