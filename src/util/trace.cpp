/// \file trace.cpp
/// \brief Ring storage, interning, collection, and the Chrome JSON writer.

#include "util/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include <unistd.h>

namespace xsfq::trace {

namespace {

// ---------------------------------------------------------------------------
// Clock.
// ---------------------------------------------------------------------------

std::chrono::steady_clock::time_point process_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

// Touch the epoch at static-init time so the first now_us() caller (maybe
// on a worker thread) races nothing.
const auto g_epoch_init = process_epoch();

// ---------------------------------------------------------------------------
// Name interning.
// ---------------------------------------------------------------------------

const char* intern_slow(std::string_view name) {
  static std::mutex mutex;
  static std::unordered_set<std::string> table;
  std::lock_guard<std::mutex> lock(mutex);
  return table.emplace(name).first->c_str();
}

struct sv_hash {
  using is_transparent = void;
  std::size_t operator()(std::string_view v) const {
    return std::hash<std::string_view>{}(v);
  }
};
struct sv_eq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const {
    return a == b;
  }
};

const char* intern(std::string_view name) {
  // Per-thread cache in front of the global table: steady-state record()
  // never takes the intern lock and never allocates (heterogeneous
  // lookup).  The vocabulary is small — a few dozen site names.
  thread_local std::unordered_map<std::string, const char*, sv_hash, sv_eq>
      cache;
  auto it = cache.find(name);
  if (it != cache.end()) return it->second;
  const char* interned = intern_slow(name);
  cache.emplace(std::string(name), interned);
  return interned;
}

// ---------------------------------------------------------------------------
// Per-thread ring.
// ---------------------------------------------------------------------------

/// One recorder slot.  seq is a per-slot seqlock: 0 = never written,
/// odd = write in progress, even > 0 = stable (value 2*(entry_index+1)).
/// Every payload field is a relaxed atomic so cross-thread snapshots are
/// race-free; only the owning thread writes.
struct slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> id_hi{0};
  std::atomic<std::uint64_t> id_lo{0};
  std::atomic<std::uint64_t> start_us{0};
  std::atomic<std::uint64_t> dur_us{0};
  std::atomic<const char*> name{nullptr};
};

constexpr std::size_t ring_slots = 2048;  // power of two, ~128 KiB/thread

struct ring {
  slot slots[ring_slots];
  std::atomic<std::uint64_t> head{0};
  std::uint32_t tid = 0;

  void push(trace_id id, const char* name, std::uint64_t start,
            std::uint64_t dur, std::atomic<std::uint64_t>& dropped) {
    const std::uint64_t i = head.load(std::memory_order_relaxed);
    slot& s = slots[i & (ring_slots - 1)];
    if (s.seq.load(std::memory_order_relaxed) != 0)
      dropped.fetch_add(1, std::memory_order_relaxed);  // overwriting
    s.seq.store(2 * i + 1, std::memory_order_relaxed);  // odd: writing
    s.id_hi.store(id.hi, std::memory_order_relaxed);
    s.id_lo.store(id.lo, std::memory_order_relaxed);
    s.start_us.store(start, std::memory_order_relaxed);
    s.dur_us.store(dur, std::memory_order_relaxed);
    s.name.store(name, std::memory_order_relaxed);
    s.seq.store(2 * (i + 1), std::memory_order_release);  // even: stable
    head.store(i + 1, std::memory_order_release);
  }

  /// Collects every stable slot.  A slot mid-write (odd seq, or seq that
  /// moved under us) is skipped — at most one per ring.
  void collect(std::vector<span>& out) const {
    for (const slot& s : slots) {
      const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
      if (s1 == 0 || (s1 & 1)) continue;
      span sp;
      sp.id.hi = s.id_hi.load(std::memory_order_relaxed);
      sp.id.lo = s.id_lo.load(std::memory_order_relaxed);
      sp.start_us = s.start_us.load(std::memory_order_relaxed);
      sp.dur_us = s.dur_us.load(std::memory_order_relaxed);
      const char* n = s.name.load(std::memory_order_relaxed);
      const std::uint64_t s2 = s.seq.load(std::memory_order_acquire);
      if (s1 != s2 || n == nullptr) continue;
      sp.name = n;
      sp.tid = tid;
      out.push_back(std::move(sp));
    }
  }
};

// ---------------------------------------------------------------------------
// Global state: ring registry, retired spans, collector, counters.
// ---------------------------------------------------------------------------

constexpr std::size_t retired_cap = 8192;       // spans kept from dead threads
constexpr std::size_t collector_max_traces = 64;
constexpr std::size_t collector_max_spans = 512;  // per trace

struct global_state {
  std::mutex registry_mutex;
  std::vector<ring*> rings;
  std::atomic<std::uint32_t> next_tid{1};

  std::mutex retired_mutex;
  std::deque<span> retired;

  std::mutex collector_mutex;
  struct key_hash {
    std::size_t operator()(const trace_id& k) const {
      return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ull));
    }
  };
  std::unordered_map<trace_id, std::vector<span>, key_hash> traces;
  std::deque<trace_id> trace_order;  // FIFO eviction

  std::atomic<std::uint64_t> recorded{0};
  std::atomic<std::uint64_t> dropped{0};
};

global_state& g() {
  static global_state* s = new global_state;  // immortal: threads may
  return *s;                                  // retire after main() returns
}

/// Owns the calling thread's ring: registers on first span, merges the
/// ring's surviving spans into the bounded retired set at thread exit so a
/// per-connection thread's last moments stay visible after it is reaped.
struct ring_owner {
  ring* r;

  ring_owner() : r(new ring) {
    global_state& s = g();
    r->tid = s.next_tid.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(s.registry_mutex);
    s.rings.push_back(r);
  }

  ~ring_owner() {
    global_state& s = g();
    {
      std::lock_guard<std::mutex> lock(s.registry_mutex);
      std::erase(s.rings, r);
    }
    std::vector<span> spans;
    r->collect(spans);
    {
      std::lock_guard<std::mutex> lock(s.retired_mutex);
      for (span& sp : spans) {
        if (s.retired.size() >= retired_cap) {
          s.retired.pop_front();
          s.dropped.fetch_add(1, std::memory_order_relaxed);
        }
        s.retired.push_back(std::move(sp));
      }
    }
    delete r;
  }
};

ring& my_ring() {
  thread_local ring_owner owner;
  return *owner.r;
}

thread_local trace_id t_current{};

void collect_for_trace(trace_id id, const char* name, std::uint64_t start,
                       std::uint64_t dur, std::uint32_t tid) {
  global_state& s = g();
  std::lock_guard<std::mutex> lock(s.collector_mutex);
  auto it = s.traces.find(id);
  if (it == s.traces.end()) {
    while (s.traces.size() >= collector_max_traces) {
      s.traces.erase(s.trace_order.front());
      s.trace_order.pop_front();
    }
    s.trace_order.push_back(id);
    it = s.traces.emplace(id, std::vector<span>{}).first;
    it->second.reserve(16);
  }
  if (it->second.size() >= collector_max_spans) {
    s.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  span sp;
  sp.id = id;
  sp.name = name;
  sp.start_us = start;
  sp.dur_us = dur;
  sp.tid = tid;
  it->second.push_back(std::move(sp));
}

void record_impl(trace_id id, std::string_view name, std::uint64_t start,
                 std::uint64_t dur) {
  const char* interned = intern(name);
  global_state& s = g();
  ring& r = my_ring();
  r.push(id, interned, start, dur, s.dropped);
  s.recorded.fetch_add(1, std::memory_order_relaxed);
  if (id.valid()) collect_for_trace(id, interned, start, dur, r.tid);
}

void append_json_escaped(std::string& out, std::string_view v) {
  for (char c : v) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (u < 0x20) {
      char esc[8];
      std::snprintf(esc, sizeof esc, "\\u%04x", u);
      out.append(esc);
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

std::string to_hex(trace_id id) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%016" PRIx64 "%016" PRIx64, id.hi, id.lo);
  return buf;
}

bool from_hex(std::string_view text, trace_id& out) {
  if (text.size() != 32) return false;
  std::uint64_t words[2] = {0, 0};
  for (int w = 0; w < 2; ++w) {
    for (int i = 0; i < 16; ++i) {
      const char c = text[static_cast<std::size_t>(w * 16 + i)];
      std::uint64_t nib;
      if (c >= '0' && c <= '9') nib = static_cast<std::uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        nib = static_cast<std::uint64_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        nib = static_cast<std::uint64_t>(c - 'A' + 10);
      else
        return false;
      words[w] = (words[w] << 4) | nib;
    }
  }
  out.hi = words[0];
  out.lo = words[1];
  return true;
}

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - process_epoch())
          .count());
}

void record(std::string_view name, std::uint64_t start_us,
            std::uint64_t dur_us) {
  record_impl(t_current, name, start_us, dur_us);
}

void record_for(trace_id id, std::string_view name, std::uint64_t start_us,
                std::uint64_t dur_us) {
  record_impl(id, name, start_us, dur_us);
}

scoped_span::~scoped_span() {
  const std::uint64_t end = now_us();
  record_impl(t_current, name_, start_us_,
              end > start_us_ ? end - start_us_ : 0);
}

trace_id current() { return t_current; }
void set_current(trace_id id) { t_current = id; }

std::vector<span> collected(trace_id id) {
  global_state& s = g();
  std::vector<span> out;
  {
    std::lock_guard<std::mutex> lock(s.collector_mutex);
    auto it = s.traces.find(id);
    if (it != s.traces.end()) out = it->second;
  }
  std::sort(out.begin(), out.end(), [](const span& a, const span& b) {
    if (a.start_us != b.start_us) return a.start_us < b.start_us;
    return a.dur_us > b.dur_us;  // enclosing span first
  });
  return out;
}

std::vector<span> snapshot() {
  global_state& s = g();
  std::vector<span> out;
  {
    std::lock_guard<std::mutex> lock(s.registry_mutex);
    for (const ring* r : s.rings) r->collect(out);
  }
  {
    std::lock_guard<std::mutex> lock(s.retired_mutex);
    out.insert(out.end(), s.retired.begin(), s.retired.end());
  }
  std::sort(out.begin(), out.end(), [](const span& a, const span& b) {
    if (a.start_us != b.start_us) return a.start_us < b.start_us;
    return a.dur_us > b.dur_us;
  });
  return out;
}

std::uint64_t spans_recorded() {
  return g().recorded.load(std::memory_order_relaxed);
}

std::uint64_t spans_dropped() {
  return g().dropped.load(std::memory_order_relaxed);
}

std::string chrome_trace_json(const std::vector<span>& spans) {
  std::string out;
  out.reserve(64 + spans.size() * 128);
  out.append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  const int pid = static_cast<int>(::getpid());
  bool first = true;
  for (const span& sp : spans) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":\"");
    append_json_escaped(out, sp.name);
    char num[160];
    std::snprintf(num, sizeof num,
                  "\",\"ph\":\"X\",\"ts\":%" PRIu64 ",\"dur\":%" PRIu64
                  ",\"pid\":%d,\"tid\":%u",
                  sp.start_us, sp.dur_us, pid, sp.tid);
    out.append(num);
    if (sp.id.valid()) {
      out.append(",\"args\":{\"trace_id\":\"");
      out.append(to_hex(sp.id));
      out.append("\"}");
    }
    out.append("}");
  }
  out.append("]}\n");
  return out;
}

bool dump_chrome_trace(const std::string& path) {
  const std::string json = chrome_trace_json(snapshot());
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(json.data(), 1, json.size(), f) ==
                     json.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace xsfq::trace
