#pragma once
/// \file serialize.hpp
/// \brief Bounds-checked binary serialization primitives.
///
/// One pair of tiny codec classes shared by everything that moves structured
/// data as bytes: the disk-persistent flow result cache (src/flow/disk_cache)
/// and the serve wire protocol (src/serve/protocol).  Encoding is explicit
/// little-endian with fixed widths, so a cache entry written on one machine
/// decodes identically on any other, independent of host endianness or ABI.
///
/// The reader throws `serialize_error` on any underrun or implausible length
/// instead of reading past the buffer — a truncated or corrupted input (a
/// chopped cache file, a garbage protocol frame) surfaces as one typed
/// exception the caller converts into "cache miss" or "reject frame".

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace xsfq {

struct serialize_error : std::runtime_error {
  explicit serialize_error(const std::string& what)
      : std::runtime_error("serialize: " + what) {}
};

/// Append-only little-endian byte sink.
class byte_writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v, 2); }
  void u32(std::uint32_t v) { put_le(v, 4); }
  void u64(std::uint64_t v) { put_le(v, 8); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  /// Length-prefixed string.
  void str(const std::string& s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void put_le(std::uint64_t v, unsigned n) {
    for (unsigned i = 0; i < n; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian byte source over a borrowed buffer.
class byte_reader {
 public:
  explicit byte_reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(get_le(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(get_le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(get_le(4)); }
  std::uint64_t u64() { return get_le(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) throw serialize_error("bool byte out of range");
    return v != 0;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    // The length prefix can never legitimately exceed what is left in the
    // buffer; checking before allocating keeps garbage input from turning
    // into a multi-gigabyte allocation.
    if (n > remaining()) throw serialize_error("string length exceeds buffer");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }
  /// Consumes `n` bytes and returns them as a subspan — how a codec nests
  /// another codec's payload without copying it.
  std::span<const std::uint8_t> raw(std::size_t n) {
    if (n > remaining()) throw serialize_error("raw length exceeds buffer");
    const auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  /// Reads a count prefix for a sequence whose elements take at least
  /// `min_element_bytes` each; rejects counts the buffer cannot hold.
  std::size_t count(std::size_t min_element_bytes) {
    const std::uint64_t n = u64();
    if (min_element_bytes != 0 && n > remaining() / min_element_bytes) {
      throw serialize_error("sequence count exceeds buffer");
    }
    return static_cast<std::size_t>(n);
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  /// Decoders call this last: trailing bytes mean a format mismatch.
  void expect_done() const {
    if (!done()) throw serialize_error("trailing bytes after payload");
  }

 private:
  std::uint64_t get_le(unsigned n) {
    if (remaining() < n) throw serialize_error("unexpected end of input");
    std::uint64_t v = 0;
    for (unsigned i = 0; i < n; ++i) {
      v |= std::uint64_t{data_[pos_ + i]} << (8 * i);
    }
    pos_ += n;
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace xsfq
