#pragma once
/// \file isop.hpp
/// \brief Irredundant sum-of-products computation (Minato-Morreale ISOP).
///
/// Produces cube covers used by the refactoring pass and the duplication-free
/// voter rewrite described in the paper (Sec. 3.1.5, sum-of-products form).

#include <cstdint>
#include <vector>

#include "util/truth_table.hpp"

namespace xsfq {

/// A product term over up to 32 variables: variable v appears positively when
/// bit v of `pos` is set and negatively when bit v of `neg` is set.
struct cube {
  std::uint32_t pos = 0;
  std::uint32_t neg = 0;

  bool operator==(const cube&) const = default;

  /// Number of literals in the cube.
  [[nodiscard]] unsigned num_literals() const {
    return static_cast<unsigned>(std::popcount(pos) + std::popcount(neg));
  }
  /// Evaluates the cube on a minterm (bit i of `minterm` = value of x_i).
  [[nodiscard]] bool evaluates_true(std::uint64_t minterm) const {
    const auto m = static_cast<std::uint32_t>(minterm);
    return (m & pos) == pos && (~m & neg) == neg;
  }
};

/// Computes an irredundant SOP cover of any function g with
/// `onset` <= g <= `onset | dcset` using the Minato-Morreale procedure.
/// The returned cubes are pairwise-irredundant and cover the onset.
std::vector<cube> isop(const truth_table& onset, const truth_table& dcset);

/// Scratch-reusing variant: fills `cover` in place (cleared first).
void isop_into(const truth_table& onset, const truth_table& dcset,
               std::vector<cube>& cover);

/// Single-word fast path (<= 6 variables, empty DC set): identical cover —
/// same cubes in the same order — as isop() on the equivalent truth_table,
/// without constructing any.  `onset` must be tail-masked for `num_vars`
/// (truth_table::word0() of a valid table always is).
void isop_word_into(std::uint64_t onset, unsigned num_vars,
                    std::vector<cube>& cover);

/// Convenience overload: exact cover of `function` (empty don't-care set).
std::vector<cube> isop(const truth_table& function);

/// Re-evaluates a cover into a truth table over `num_vars` variables.
truth_table cover_to_table(const std::vector<cube>& cover, unsigned num_vars);

/// Total literal count of a cover.
unsigned cover_literals(const std::vector<cube>& cover);

}  // namespace xsfq
