#pragma once
/// \file truth_table.hpp
/// \brief Dynamic truth tables over up to 16 variables.
///
/// A truth table stores the output column of a Boolean function f(x0..x_{n-1})
/// packed into 64-bit words; bit position m of the table holds f evaluated on
/// the minterm whose i-th variable equals bit i of m.  Tables are the lingua
/// franca of cut-based optimization (NPN classification, rewriting, ISOP) in
/// this library, mirroring the role they play inside ABC and mockturtle.

#include <bit>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace xsfq {

/// Truth table of a Boolean function over `num_vars()` variables (0..16).
class truth_table {
public:
  /// Constructs the constant-zero function over `num_vars` variables.
  explicit truth_table(unsigned num_vars = 0) : num_vars_(num_vars) {
    if (num_vars > max_vars) {
      throw std::invalid_argument("truth_table: too many variables");
    }
    words_.assign(word_count(num_vars), 0u);
  }

  static constexpr unsigned max_vars = 16;

  /// Number of variables in the function's domain.
  [[nodiscard]] unsigned num_vars() const { return num_vars_; }
  /// Number of rows (minterms) in the table, i.e. 2^num_vars.
  [[nodiscard]] std::uint64_t num_bits() const {
    return std::uint64_t{1} << num_vars_;
  }

  /// Value of the function on minterm `index`.
  [[nodiscard]] bool bit(std::uint64_t index) const {
    return (words_[index >> 6] >> (index & 63u)) & 1u;
  }
  /// Sets the function value on minterm `index`.
  void set_bit(std::uint64_t index, bool value = true) {
    const std::uint64_t mask = std::uint64_t{1} << (index & 63u);
    if (value) {
      words_[index >> 6] |= mask;
    } else {
      words_[index >> 6] &= ~mask;
    }
  }

  /// Raw packed words (low minterms in word 0, bit 0).
  [[nodiscard]] const std::vector<std::uint64_t>& words() const {
    return words_;
  }
  [[nodiscard]] std::vector<std::uint64_t>& words() { return words_; }

  /// The projection function x_var over `num_vars` variables.
  static truth_table nth_var(unsigned num_vars, unsigned var);
  /// The constant-one function over `num_vars` variables.
  static truth_table ones(unsigned num_vars) {
    truth_table t(num_vars);
    for (auto& w : t.words_) w = ~std::uint64_t{0};
    t.mask_tail();
    return t;
  }
  /// The constant-zero function over `num_vars` variables.
  static truth_table zeros(unsigned num_vars) { return truth_table(num_vars); }
  /// Builds a table from a hex string, most significant nibble first.
  static truth_table from_hex(unsigned num_vars, const std::string& hex);

  truth_table operator~() const {
    truth_table r(*this);
    for (auto& w : r.words_) w = ~w;
    r.mask_tail();
    return r;
  }
  truth_table operator&(const truth_table& o) const {
    return apply(o, [](std::uint64_t a, std::uint64_t b) { return a & b; });
  }
  truth_table operator|(const truth_table& o) const {
    return apply(o, [](std::uint64_t a, std::uint64_t b) { return a | b; });
  }
  truth_table operator^(const truth_table& o) const {
    return apply(o, [](std::uint64_t a, std::uint64_t b) { return a ^ b; });
  }
  truth_table& operator&=(const truth_table& o) { return assign(o, '&'); }
  truth_table& operator|=(const truth_table& o) { return assign(o, '|'); }
  truth_table& operator^=(const truth_table& o) { return assign(o, '^'); }

  bool operator==(const truth_table& o) const {
    return num_vars_ == o.num_vars_ && words_ == o.words_;
  }
  bool operator!=(const truth_table& o) const { return !(*this == o); }
  /// Lexicographic order on (num_vars, words); used for canonical pick.
  bool operator<(const truth_table& o) const {
    if (num_vars_ != o.num_vars_) return num_vars_ < o.num_vars_;
    for (std::size_t i = words_.size(); i-- > 0;) {
      if (words_[i] != o.words_[i]) return words_[i] < o.words_[i];
    }
    return false;
  }

  [[nodiscard]] bool is_const0() const {
    for (auto w : words_) {
      if (w != 0) return false;
    }
    return true;
  }
  [[nodiscard]] bool is_const1() const { return (~*this).is_const0(); }

  /// Number of minterms on which the function is 1.
  [[nodiscard]] std::uint64_t count_ones() const {
    std::uint64_t n = 0;
    for (auto w : words_) n += static_cast<std::uint64_t>(std::popcount(w));
    return n;
  }

  /// Negative cofactor f|_{x_var = 0}, domain unchanged.
  [[nodiscard]] truth_table cofactor0(unsigned var) const;
  /// Positive cofactor f|_{x_var = 1}, domain unchanged.
  [[nodiscard]] truth_table cofactor1(unsigned var) const;
  /// True iff the function depends on x_var.
  [[nodiscard]] bool has_var(unsigned var) const {
    return cofactor0(var) != cofactor1(var);
  }
  /// Bitmask of variables in the functional support.
  [[nodiscard]] std::uint32_t support_mask() const {
    std::uint32_t m = 0;
    for (unsigned v = 0; v < num_vars_; ++v) {
      if (has_var(v)) m |= (1u << v);
    }
    return m;
  }

  /// Returns the same function with inputs `var_a` and `var_b` swapped.
  [[nodiscard]] truth_table swap_vars(unsigned var_a, unsigned var_b) const;
  /// Returns the same function with input `var` complemented.
  [[nodiscard]] truth_table flip_var(unsigned var) const;
  /// Applies a full input permutation: new variable i reads old variable
  /// perm[i] (i.e. result(m) = f applied to the permuted minterm).
  [[nodiscard]] truth_table permute(const std::vector<unsigned>& perm) const;

  /// Hex string, most significant nibble first (ABC convention).
  [[nodiscard]] std::string to_hex() const;
  /// Binary string, minterm 2^n-1 first.
  [[nodiscard]] std::string to_binary() const;

  /// 64-bit hash of the packed contents (FNV-1a over words).
  [[nodiscard]] std::uint64_t hash() const {
    std::uint64_t h = 1469598103934665603ull;
    for (auto w : words_) {
      h ^= w;
      h *= 1099511628211ull;
    }
    h ^= num_vars_;
    h *= 1099511628211ull;
    return h;
  }

private:
  static std::size_t word_count(unsigned num_vars) {
    return num_vars <= 6 ? 1 : (std::size_t{1} << (num_vars - 6));
  }
  template <typename Op>
  truth_table apply(const truth_table& o, Op op) const {
    if (num_vars_ != o.num_vars_) {
      throw std::invalid_argument("truth_table: domain mismatch");
    }
    truth_table r(num_vars_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
      r.words_[i] = op(words_[i], o.words_[i]);
    }
    return r;
  }
  truth_table& assign(const truth_table& o, char op) {
    if (num_vars_ != o.num_vars_) {
      throw std::invalid_argument("truth_table: domain mismatch");
    }
    for (std::size_t i = 0; i < words_.size(); ++i) {
      switch (op) {
        case '&': words_[i] &= o.words_[i]; break;
        case '|': words_[i] |= o.words_[i]; break;
        default: words_[i] ^= o.words_[i]; break;
      }
    }
    return *this;
  }
  /// Clears bits beyond 2^num_vars in the last word (tables < 6 vars).
  void mask_tail() {
    if (num_vars_ < 6) {
      words_[0] &= (std::uint64_t{1} << (std::uint64_t{1} << num_vars_)) - 1;
    }
  }

  unsigned num_vars_;
  std::vector<std::uint64_t> words_;
};

}  // namespace xsfq

template <>
struct std::hash<xsfq::truth_table> {
  std::size_t operator()(const xsfq::truth_table& t) const noexcept {
    return static_cast<std::size_t>(t.hash());
  }
};
