#pragma once
/// \file truth_table.hpp
/// \brief Dynamic truth tables over up to 16 variables.
///
/// A truth table stores the output column of a Boolean function f(x0..x_{n-1})
/// packed into 64-bit words; bit position m of the table holds f evaluated on
/// the minterm whose i-th variable equals bit i of m.  Tables are the lingua
/// franca of cut-based optimization (NPN classification, rewriting, ISOP) in
/// this library, mirroring the role they play inside ABC and mockturtle.
///
/// Storage uses a small-buffer representation: functions over at most
/// `small_vars` (6) variables fit in one inline word and never touch the
/// heap; larger domains spill to a heap-backed word vector.  Cut-based
/// optimization only ever manipulates <= 6-variable tables, so the entire
/// rewrite/refactor hot path runs allocation-free.  Word-parallel variable
/// primitives (stretch/swap/expand on a single word) replace the bit-by-bit
/// minterm loops that cut merging would otherwise need.

#include <array>
#include <bit>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace xsfq {

/// Truth table of a Boolean function over `num_vars()` variables (0..16).
class truth_table {
public:
  /// Constructs the constant-zero function over `num_vars` variables.
  explicit truth_table(unsigned num_vars = 0) : num_vars_(num_vars) {
    if (num_vars > max_vars) {
      throw std::invalid_argument("truth_table: too many variables");
    }
    if (num_vars > small_vars) {
      heap_.assign(word_count(num_vars), 0u);
    }
  }

  static constexpr unsigned max_vars = 16;
  /// Largest domain stored inline (one 64-bit word, no heap allocation).
  static constexpr unsigned small_vars = 6;

  /// Repeating bit patterns of the first six projection variables.
  static constexpr std::array<std::uint64_t, 6> var_masks = {
      0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0xF0F0F0F0F0F0F0F0ull,
      0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull, 0xFFFFFFFF00000000ull};

  /// Number of variables in the function's domain.
  [[nodiscard]] unsigned num_vars() const { return num_vars_; }
  /// Number of rows (minterms) in the table, i.e. 2^num_vars.
  [[nodiscard]] std::uint64_t num_bits() const {
    return std::uint64_t{1} << num_vars_;
  }
  /// True when the table is stored inline (<= small_vars variables).
  [[nodiscard]] bool is_small() const { return num_vars_ <= small_vars; }
  /// Number of packed 64-bit words backing the table.
  [[nodiscard]] std::size_t num_words() const {
    return is_small() ? 1 : heap_.size();
  }
  [[nodiscard]] const std::uint64_t* data() const {
    return is_small() ? &word0_ : heap_.data();
  }
  [[nodiscard]] std::uint64_t* data() {
    return is_small() ? &word0_ : heap_.data();
  }

  /// Value of the function on minterm `index`.
  [[nodiscard]] bool bit(std::uint64_t index) const {
    return (data()[index >> 6] >> (index & 63u)) & 1u;
  }
  /// Sets the function value on minterm `index`.
  void set_bit(std::uint64_t index, bool value = true) {
    const std::uint64_t mask = std::uint64_t{1} << (index & 63u);
    if (value) {
      data()[index >> 6] |= mask;
    } else {
      data()[index >> 6] &= ~mask;
    }
  }

  /// Raw packed words (low minterms in word 0, bit 0).
  [[nodiscard]] std::span<const std::uint64_t> words() const {
    return {data(), num_words()};
  }
  [[nodiscard]] std::span<std::uint64_t> words() {
    return {data(), num_words()};
  }
  /// First packed word (the whole table for <= 6 variables).
  [[nodiscard]] std::uint64_t word0() const { return data()[0]; }

  /// The projection function x_var over `num_vars` variables.
  static truth_table nth_var(unsigned num_vars, unsigned var);
  /// The constant-one function over `num_vars` variables.
  static truth_table ones(unsigned num_vars) {
    truth_table t(num_vars);
    for (std::size_t i = 0; i < t.num_words(); ++i) {
      t.data()[i] = ~std::uint64_t{0};
    }
    t.mask_tail();
    return t;
  }
  /// The constant-zero function over `num_vars` variables.
  static truth_table zeros(unsigned num_vars) { return truth_table(num_vars); }
  /// A small (<= 6 variables) table from its packed word.
  static truth_table from_word(unsigned num_vars, std::uint64_t word) {
    if (num_vars > small_vars) {
      throw std::invalid_argument("truth_table::from_word: too many variables");
    }
    truth_table t(num_vars);
    t.word0_ = word;
    t.mask_tail();
    return t;
  }
  /// Builds a table from a hex string, most significant nibble first.
  static truth_table from_hex(unsigned num_vars, const std::string& hex);

  // ----- word-parallel single-word primitives (<= 6-variable domain) -------

  /// Replicates a table over `from_vars` variables across the full 6-variable
  /// word, making variables from_vars..5 don't-cares.  The input word must be
  /// tail-masked (no bits above 2^from_vars).
  static constexpr std::uint64_t stretch_word(std::uint64_t w,
                                              unsigned from_vars) {
    for (unsigned v = from_vars; v < small_vars; ++v) {
      w |= w << (1u << v);
    }
    return w;
  }

  /// Constant-time exchange of variables `a` and `b` on a 6-variable word.
  static constexpr std::uint64_t swap_word(std::uint64_t w, unsigned a,
                                           unsigned b) {
    if (a == b) return w;
    if (a > b) {
      const unsigned tmp = a;
      a = b;
      b = tmp;
    }
    const std::uint64_t va = var_masks[a];
    const std::uint64_t vb = var_masks[b];
    const unsigned shift = (1u << b) - (1u << a);
    return (w & ((va & vb) | (~va & ~vb))) | ((w & (va & ~vb)) << shift) |
           ((w & (vb & ~va)) >> shift);
  }

  /// Re-expresses a word over `from_vars` variables on a superset of slots:
  /// variable i moves to slot positions[i].  Positions must be strictly
  /// increasing (an insertion of don't-care variables, never a permutation),
  /// which is exactly the shape cut merging produces from sorted leaf sets.
  /// The result is a full 6-variable word; callers mask to their domain.
  static constexpr std::uint64_t expand_word(std::uint64_t w,
                                             unsigned from_vars,
                                             const unsigned* positions) {
    w = stretch_word(w, from_vars);
    // Move variables top-down: slot positions[i] holds a don't-care by the
    // time variable i gets there (all larger targets are already placed).
    for (unsigned i = from_vars; i-- > 0;) {
      if (positions[i] != i) w = swap_word(w, i, positions[i]);
    }
    return w;
  }

  /// Re-expresses this function over `num_vars` >= num_vars() variables with
  /// variable i moving to slot positions[i] (strictly increasing).  The
  /// single-word case runs word-parallel; larger domains fall back to a
  /// minterm loop.
  [[nodiscard]] truth_table expanded(
      unsigned num_vars, std::span<const unsigned> positions) const;

  truth_table operator~() const {
    truth_table r(*this);
    for (std::size_t i = 0; i < r.num_words(); ++i) r.data()[i] = ~r.data()[i];
    r.mask_tail();
    return r;
  }
  truth_table operator&(const truth_table& o) const {
    return apply(o, [](std::uint64_t a, std::uint64_t b) { return a & b; });
  }
  truth_table operator|(const truth_table& o) const {
    return apply(o, [](std::uint64_t a, std::uint64_t b) { return a | b; });
  }
  truth_table operator^(const truth_table& o) const {
    return apply(o, [](std::uint64_t a, std::uint64_t b) { return a ^ b; });
  }
  truth_table& operator&=(const truth_table& o) { return assign(o, '&'); }
  truth_table& operator|=(const truth_table& o) { return assign(o, '|'); }
  truth_table& operator^=(const truth_table& o) { return assign(o, '^'); }

  bool operator==(const truth_table& o) const {
    if (num_vars_ != o.num_vars_) return false;
    for (std::size_t i = 0; i < num_words(); ++i) {
      if (data()[i] != o.data()[i]) return false;
    }
    return true;
  }
  bool operator!=(const truth_table& o) const { return !(*this == o); }
  /// Lexicographic order on (num_vars, words); used for canonical pick.
  bool operator<(const truth_table& o) const {
    if (num_vars_ != o.num_vars_) return num_vars_ < o.num_vars_;
    for (std::size_t i = num_words(); i-- > 0;) {
      if (data()[i] != o.data()[i]) return data()[i] < o.data()[i];
    }
    return false;
  }

  [[nodiscard]] bool is_const0() const {
    for (std::size_t i = 0; i < num_words(); ++i) {
      if (data()[i] != 0) return false;
    }
    return true;
  }
  [[nodiscard]] bool is_const1() const { return (~*this).is_const0(); }

  /// Number of minterms on which the function is 1.
  [[nodiscard]] std::uint64_t count_ones() const {
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < num_words(); ++i) {
      n += static_cast<std::uint64_t>(std::popcount(data()[i]));
    }
    return n;
  }

  /// Negative cofactor f|_{x_var = 0}, domain unchanged.
  [[nodiscard]] truth_table cofactor0(unsigned var) const;
  /// Positive cofactor f|_{x_var = 1}, domain unchanged.
  [[nodiscard]] truth_table cofactor1(unsigned var) const;
  /// True iff the function depends on x_var.
  [[nodiscard]] bool has_var(unsigned var) const {
    return cofactor0(var) != cofactor1(var);
  }
  /// Bitmask of variables in the functional support.
  [[nodiscard]] std::uint32_t support_mask() const {
    std::uint32_t m = 0;
    for (unsigned v = 0; v < num_vars_; ++v) {
      if (has_var(v)) m |= (1u << v);
    }
    return m;
  }

  /// Returns the same function with inputs `var_a` and `var_b` swapped.
  [[nodiscard]] truth_table swap_vars(unsigned var_a, unsigned var_b) const;
  /// Returns the same function with input `var` complemented.
  [[nodiscard]] truth_table flip_var(unsigned var) const;
  /// Applies a full input permutation: new variable i reads old variable
  /// perm[i] (i.e. result(m) = f applied to the permuted minterm).
  [[nodiscard]] truth_table permute(const std::vector<unsigned>& perm) const;

  /// Hex string, most significant nibble first (ABC convention).
  [[nodiscard]] std::string to_hex() const;
  /// Binary string, minterm 2^n-1 first.
  [[nodiscard]] std::string to_binary() const;

  /// 64-bit hash of the packed contents (FNV-1a over words).
  [[nodiscard]] std::uint64_t hash() const {
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < num_words(); ++i) {
      h ^= data()[i];
      h *= 1099511628211ull;
    }
    h ^= num_vars_;
    h *= 1099511628211ull;
    return h;
  }

private:
  static std::size_t word_count(unsigned num_vars) {
    return num_vars <= 6 ? 1 : (std::size_t{1} << (num_vars - 6));
  }
  template <typename Op>
  truth_table apply(const truth_table& o, Op op) const {
    if (num_vars_ != o.num_vars_) {
      throw std::invalid_argument("truth_table: domain mismatch");
    }
    truth_table r(num_vars_);
    for (std::size_t i = 0; i < num_words(); ++i) {
      r.data()[i] = op(data()[i], o.data()[i]);
    }
    return r;
  }
  truth_table& assign(const truth_table& o, char op) {
    if (num_vars_ != o.num_vars_) {
      throw std::invalid_argument("truth_table: domain mismatch");
    }
    for (std::size_t i = 0; i < num_words(); ++i) {
      switch (op) {
        case '&': data()[i] &= o.data()[i]; break;
        case '|': data()[i] |= o.data()[i]; break;
        default: data()[i] ^= o.data()[i]; break;
      }
    }
    return *this;
  }
  /// Clears bits beyond 2^num_vars in the inline word (tables < 6 vars).
  void mask_tail() {
    if (num_vars_ < small_vars) {
      word0_ &= (std::uint64_t{1} << (std::uint64_t{1} << num_vars_)) - 1;
    }
  }

  unsigned num_vars_;
  std::uint64_t word0_ = 0;          ///< inline storage for <= 6 variables
  std::vector<std::uint64_t> heap_;  ///< spill storage for > 6 variables
};

}  // namespace xsfq

template <>
struct std::hash<xsfq::truth_table> {
  std::size_t operator()(const xsfq::truth_table& t) const noexcept {
    return static_cast<std::size_t>(t.hash());
  }
};
