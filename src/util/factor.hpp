#pragma once
/// \file factor.hpp
/// \brief Algebraic factoring of SOP covers into expression trees.
///
/// The refactoring pass (src/opt/refactor.*) resynthesizes cut functions by
/// computing an ISOP and factoring it; the factored tree is then rebuilt as
/// an AIG fragment.  Factoring uses most-frequent-literal weak division — the
/// same "quick factor" idea used by SIS/ABC.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/isop.hpp"

namespace xsfq {

/// Node of a factored Boolean expression tree.
struct factor_expr {
  enum class kind : std::uint8_t { constant, literal, and_op, or_op };

  kind op = kind::constant;
  bool const_value = false;            ///< for kind::constant
  unsigned var = 0;                    ///< for kind::literal
  bool complemented = false;           ///< for kind::literal
  std::vector<std::unique_ptr<factor_expr>> children;  ///< for and/or

  /// Number of literal leaves in the tree.
  [[nodiscard]] unsigned num_literals() const;
  /// Human-readable rendering, e.g. "(a & !b) | c".
  [[nodiscard]] std::string to_string() const;
  /// Evaluates the expression on a minterm.
  [[nodiscard]] bool evaluate(std::uint64_t minterm) const;
};

/// The literal occurring in the most cubes of `cover` (ties keep the lowest
/// variable, positive before negative); returns the occurrence count.  This
/// is the division pivot of factor_cover, exposed so tree-free emitters
/// (opt/opt_engine.cpp) can replicate its factoring decisions exactly.
unsigned most_common_literal(const std::vector<cube>& cover, unsigned& var,
                             bool& complemented);

/// Factors an SOP cover into an expression tree.  The cover of the constant
/// functions must be passed as an empty vector (const 0) or a vector holding
/// one empty cube (const 1).
std::unique_ptr<factor_expr> factor_cover(const std::vector<cube>& cover);

/// Convenience: ISOP + factoring of a truth table.
std::unique_ptr<factor_expr> factor_function(const truth_table& function);

}  // namespace xsfq
