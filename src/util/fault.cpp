/// \file fault.cpp
/// \brief Schedule parsing and the armed slow path for fault injection.

#include "util/fault.hpp"

#include <cstdlib>
#include <mutex>
#include <stdexcept>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace xsfq::fault {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

/// One parsed schedule entry plus its live counters.  Each rule carries its
/// own generator (seeded from the schedule seed mixed with the site name) so
/// fire sequences are independent of evaluation order across sites.
struct rule {
  std::string site;
  std::uint64_t nth = 1;     // first eligible hit (1-based)
  double prob = 1.0;         // per-eligible-hit fire probability
  std::uint64_t repeat = 1;  // max fires; 0 = unlimited
  rng gen;

  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
};

struct registry {
  std::mutex mutex;
  std::vector<rule> rules;
  std::string schedule_text;
};

registry& reg() {
  static registry r;
  return r;
}

[[noreturn]] void bad(const std::string& schedule, const std::string& why) {
  throw std::invalid_argument("bad fault schedule \"" + schedule +
                              "\": " + why);
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::uint64_t parse_u64(const std::string& schedule, const std::string& text,
                        const std::string& what) {
  std::uint64_t v = 0;
  std::size_t pos = 0;
  try {
    v = std::stoull(text, &pos);
  } catch (const std::exception&) {
    bad(schedule, what + " is not an integer: " + text);
  }
  if (pos != text.size() || text.empty() || text[0] == '-')
    bad(schedule, what + " is not an integer: " + text);
  return v;
}

double parse_prob(const std::string& schedule, const std::string& text) {
  double v = 0.0;
  std::size_t pos = 0;
  try {
    v = std::stod(text, &pos);
  } catch (const std::exception&) {
    bad(schedule, "prob is not a number: " + text);
  }
  if (pos != text.size() || v < 0.0 || v > 1.0)
    bad(schedule, "prob must be in [0,1]: " + text);
  return v;
}

std::vector<std::string> split(const std::string& s, const char* seps) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find_first_of(seps, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

}  // namespace

void arm(const std::string& schedule) {
  std::uint64_t seed = 0;
  std::vector<rule> rules;

  for (const std::string& raw_entry : split(schedule, ";,")) {
    const std::string entry = trim(raw_entry);
    if (entry.empty()) continue;

    std::vector<std::string> parts = split(entry, ":");
    const std::string head = trim(parts[0]);
    if (head.rfind("seed=", 0) == 0) {
      if (parts.size() != 1) bad(schedule, "seed entry takes no options");
      seed = parse_u64(schedule, trim(head.substr(5)), "seed");
      continue;
    }
    if (head.empty()) bad(schedule, "empty site name in \"" + entry + "\"");
    if (head.find('=') != std::string::npos)
      bad(schedule, "unknown directive \"" + head + "\"");

    rule r;
    r.site = head;
    for (std::size_t i = 1; i < parts.size(); ++i) {
      const std::string opt = trim(parts[i]);
      const std::size_t eq = opt.find('=');
      if (eq == std::string::npos)
        bad(schedule, "option \"" + opt + "\" is not key=value");
      const std::string key = trim(opt.substr(0, eq));
      const std::string val = trim(opt.substr(eq + 1));
      if (key == "nth") {
        r.nth = parse_u64(schedule, val, "nth");
        if (r.nth == 0) bad(schedule, "nth must be >= 1");
      } else if (key == "prob") {
        r.prob = parse_prob(schedule, val);
      } else if (key == "repeat") {
        r.repeat = parse_u64(schedule, val, "repeat");
      } else {
        bad(schedule, "unknown option \"" + key + "\"");
      }
    }
    rules.push_back(std::move(r));
  }

  // Seed after parsing: every rule mixes the shared seed with its site name,
  // so adding a rule never perturbs another rule's fire sequence.
  for (rule& r : rules)
    r.gen = rng(hash_mix(hash_mix(0x66617578ull, seed),
                         hash_mix_str(0, r.site)));

  registry& g = reg();
  std::lock_guard<std::mutex> lock(g.mutex);
  g.rules = std::move(rules);
  g.schedule_text = g.rules.empty() ? std::string{} : trim(schedule);
  detail::g_armed.store(!g.rules.empty(), std::memory_order_relaxed);
}

bool arm_from_env() {
  const char* env = std::getenv("XSFQ_FAULTS");
  if (env == nullptr || *env == '\0') return false;
  arm(env);
  return armed();
}

void disarm() {
  registry& g = reg();
  std::lock_guard<std::mutex> lock(g.mutex);
  // Counters survive so a drill can disarm, then assert on what fired.
  detail::g_armed.store(false, std::memory_order_relaxed);
}

namespace detail {

bool check_slow(std::string_view site) {
  registry& g = reg();
  std::lock_guard<std::mutex> lock(g.mutex);
  if (!g_armed.load(std::memory_order_relaxed)) return false;
  for (rule& r : g.rules) {
    if (r.site != site) continue;
    ++r.hits;
    if (r.hits < r.nth) return false;
    if (r.repeat != 0 && r.fired >= r.repeat) return false;
    if (r.prob < 1.0 && r.gen.uniform() >= r.prob) return false;
    ++r.fired;
    return true;
  }
  return false;
}

}  // namespace detail

std::vector<site_stats> stats() {
  registry& g = reg();
  std::lock_guard<std::mutex> lock(g.mutex);
  std::vector<site_stats> out;
  out.reserve(g.rules.size());
  for (const rule& r : g.rules) out.push_back({r.site, r.hits, r.fired});
  return out;
}

std::uint64_t total_fired() {
  registry& g = reg();
  std::lock_guard<std::mutex> lock(g.mutex);
  std::uint64_t total = 0;
  for (const rule& r : g.rules) total += r.fired;
  return total;
}

std::string describe() {
  registry& g = reg();
  std::lock_guard<std::mutex> lock(g.mutex);
  if (!detail::g_armed.load(std::memory_order_relaxed) || g.rules.empty())
    return "(disarmed)";
  return g.schedule_text;
}

}  // namespace xsfq::fault
