#pragma once
/// \file rng.hpp
/// \brief Small deterministic PRNG (xoshiro256**) for simulation stimuli.
///
/// All randomized algorithms and tests in the library take an explicit seed so
/// results are reproducible run-to-run (a requirement for the benchmark
/// harness: every table it prints must be stable).

#include <cstdint>

namespace xsfq {

/// Deterministic 64-bit generator; satisfies UniformRandomBitGenerator.
class rng {
public:
  using result_type = std::uint64_t;

  explicit rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    for (auto& word : state_) {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound).
  std::uint64_t below(std::uint64_t bound) { return (*this)() % bound; }
  /// Fair coin.
  bool flip() { return ((*this)() >> 63) != 0; }
  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace xsfq
