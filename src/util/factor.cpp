#include "util/factor.hpp"

#include <algorithm>
#include <array>
#include <bit>

namespace xsfq {
namespace {

std::unique_ptr<factor_expr> make_const(bool value) {
  auto e = std::make_unique<factor_expr>();
  e->op = factor_expr::kind::constant;
  e->const_value = value;
  return e;
}

std::unique_ptr<factor_expr> make_literal(unsigned var, bool complemented) {
  auto e = std::make_unique<factor_expr>();
  e->op = factor_expr::kind::literal;
  e->var = var;
  e->complemented = complemented;
  return e;
}

std::unique_ptr<factor_expr> make_cube_expr(const cube& c) {
  std::vector<std::unique_ptr<factor_expr>> lits;
  // Walk only the set bits (ascending, positives before negatives per
  // variable — the exact order of the historical 0..31 scan).
  for (std::uint32_t bits = c.pos | c.neg; bits != 0; bits &= bits - 1) {
    const auto v = static_cast<unsigned>(std::countr_zero(bits));
    if (c.pos & (1u << v)) lits.push_back(make_literal(v, false));
    if (c.neg & (1u << v)) lits.push_back(make_literal(v, true));
  }
  if (lits.empty()) return make_const(true);
  if (lits.size() == 1) return std::move(lits.front());
  auto e = std::make_unique<factor_expr>();
  e->op = factor_expr::kind::and_op;
  e->children = std::move(lits);
  return e;
}

}  // namespace

unsigned most_common_literal(const std::vector<cube>& cover, unsigned& var,
                             bool& complemented) {
  std::array<unsigned, 32> pos_count{};
  std::array<unsigned, 32> neg_count{};
  std::uint32_t support = 0;
  for (const auto& c : cover) {
    support |= c.pos | c.neg;
    for (std::uint32_t bits = c.pos; bits != 0; bits &= bits - 1) {
      ++pos_count[std::countr_zero(bits)];
    }
    for (std::uint32_t bits = c.neg; bits != 0; bits &= bits - 1) {
      ++neg_count[std::countr_zero(bits)];
    }
  }
  unsigned best = 0;
  for (std::uint32_t bits = support; bits != 0; bits &= bits - 1) {
    const auto v = static_cast<unsigned>(std::countr_zero(bits));
    if (pos_count[v] > best) {
      best = pos_count[v];
      var = v;
      complemented = false;
    }
    if (neg_count[v] > best) {
      best = neg_count[v];
      var = v;
      complemented = true;
    }
  }
  return best;
}

namespace {

std::unique_ptr<factor_expr> factor_rec(std::vector<cube> cover) {
  if (cover.empty()) return make_const(false);
  if (cover.size() == 1) return make_cube_expr(cover.front());

  unsigned var = 0;
  bool complemented = false;
  const unsigned occurrences = most_common_literal(cover, var, complemented);
  if (occurrences < 2) {
    // Cube-free: plain OR of the cube expressions.
    auto e = std::make_unique<factor_expr>();
    e->op = factor_expr::kind::or_op;
    for (const auto& c : cover) e->children.push_back(make_cube_expr(c));
    return e;
  }

  const std::uint32_t mask = 1u << var;
  std::vector<cube> quotient;
  std::vector<cube> remainder;
  for (const auto& c : cover) {
    const bool has = complemented ? (c.neg & mask) : (c.pos & mask);
    if (has) {
      cube q = c;
      if (complemented) {
        q.neg &= ~mask;
      } else {
        q.pos &= ~mask;
      }
      quotient.push_back(q);
    } else {
      remainder.push_back(c);
    }
  }

  // literal & factor(quotient)
  auto product = std::make_unique<factor_expr>();
  product->op = factor_expr::kind::and_op;
  product->children.push_back(make_literal(var, complemented));
  auto q_expr = factor_rec(std::move(quotient));
  if (q_expr->op == factor_expr::kind::constant) {
    // Quotient is const 1 only if a cube equalled the literal itself.
    if (q_expr->const_value) {
      product = make_literal(var, complemented);
    } else {
      product = make_const(false);
    }
  } else {
    product->children.push_back(std::move(q_expr));
  }

  if (remainder.empty()) return product;
  auto sum = std::make_unique<factor_expr>();
  sum->op = factor_expr::kind::or_op;
  sum->children.push_back(std::move(product));
  sum->children.push_back(factor_rec(std::move(remainder)));
  return sum;
}

}  // namespace

unsigned factor_expr::num_literals() const {
  switch (op) {
    case kind::constant: return 0;
    case kind::literal: return 1;
    case kind::and_op:
    case kind::or_op: {
      unsigned n = 0;
      for (const auto& c : children) n += c->num_literals();
      return n;
    }
  }
  return 0;
}

std::string factor_expr::to_string() const {
  switch (op) {
    case kind::constant: return const_value ? "1" : "0";
    case kind::literal: {
      std::string s = complemented ? "!" : "";
      s += 'a' + static_cast<char>(var % 26);
      if (var >= 26) s += std::to_string(var / 26);
      return s;
    }
    case kind::and_op:
    case kind::or_op: {
      const char* sep = op == kind::and_op ? " & " : " | ";
      std::string s = "(";
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (i) s += sep;
        s += children[i]->to_string();
      }
      return s + ")";
    }
  }
  return "?";
}

bool factor_expr::evaluate(std::uint64_t minterm) const {
  switch (op) {
    case kind::constant: return const_value;
    case kind::literal:
      return (((minterm >> var) & 1u) != 0) != complemented;
    case kind::and_op:
      return std::all_of(children.begin(), children.end(),
                         [&](const auto& c) { return c->evaluate(minterm); });
    case kind::or_op:
      return std::any_of(children.begin(), children.end(),
                         [&](const auto& c) { return c->evaluate(minterm); });
  }
  return false;
}

std::unique_ptr<factor_expr> factor_cover(const std::vector<cube>& cover) {
  return factor_rec(cover);
}

std::unique_ptr<factor_expr> factor_function(const truth_table& function) {
  if (function.is_const0()) return factor_cover({});
  if (function.is_const1()) return factor_cover({cube{}});
  return factor_cover(isop(function));
}

}  // namespace xsfq
