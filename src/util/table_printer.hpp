#pragma once
/// \file table_printer.hpp
/// \brief Minimal aligned ASCII table formatting for the benchmark harness.
///
/// Every bench binary regenerates one paper table/figure as text; this helper
/// keeps their output format consistent and diff-friendly.

#include <iosfwd>
#include <string>
#include <vector>

namespace xsfq {

/// Collects rows of string cells and renders them with aligned columns.
class table_printer {
public:
  /// Creates a table with the given column headers.
  explicit table_printer(std::vector<std::string> headers);

  /// Appends one row; missing cells render empty, extra cells are an error.
  void add_row(std::vector<std::string> cells);
  /// Appends a horizontal separator line.
  void add_separator();

  /// Renders the table.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  /// Formats a double with fixed precision (helper for numeric cells).
  static std::string fixed(double value, int precision = 1);
  /// Formats "a/b" pairs like the paper's without/with columns.
  static std::string pair(const std::string& a, const std::string& b);
  /// Formats a ratio as "4.4x".
  static std::string ratio(double value, int precision = 1);
  /// Formats a fraction as a percentage, e.g. 0.5 -> "50%".
  static std::string percent(double fraction, int precision = 0);

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty vector = separator
};

}  // namespace xsfq
