#pragma once
/// \file fault.hpp
/// \brief Deterministic fault injection for the service path.
///
/// Production failure modes — a peer resetting its connection mid-response,
/// a disk filling up under a cache write, a crash between a temp-file write
/// and its rename — are rare enough that the code handling them is the least
/// exercised in the tree.  This subsystem makes them *injectable on demand*:
/// hot paths carry named injection sites (`fault::fire("disk_cache.write.
/// short")`), and a seeded schedule armed from the `XSFQ_FAULTS` environment
/// variable or a `--faults=` flag decides which sites fire, on which hit,
/// with what probability, how many times.  The same schedule string with the
/// same seed reproduces the same failure sequence run after run, which is
/// what lets a chaos test assert byte-identical recovery instead of
/// shrugging at flaky nondeterminism.
///
/// Cost contract: an unarmed site is one relaxed atomic load and a branch —
/// measurably free on every hot path that carries one (the perf gate runs
/// with the hooks compiled in).  The slow path (schedule lookup under a
/// mutex) only runs while a schedule is armed, i.e. during chaos drills.
///
/// Schedule grammar (entries split on ';' or ','):
///
///   [seed=S;]site[:nth=N][:prob=P][:repeat=R][;site2...]
///
///   - `site`   exact site name, e.g. `serve.send.reset`
///   - `nth=N`  first fire on the Nth hit of the site (default 1)
///   - `prob=P` once eligible, each hit fires with probability P (default
///              1.0), drawn from a deterministic per-rule generator seeded
///              by `seed` and the site name
///   - `repeat=R` stop after R fires (default 1; 0 = fire forever)
///   - `seed=S` seeds every probabilistic rule (default 0)
///
/// Example: `XSFQ_FAULTS="seed=7;serve.send.reset:nth=2:repeat=3;
/// disk_cache.write.enospc:prob=0.5:repeat=0"`.
///
/// Thread-safety: fire()/arm()/disarm()/stats() are safe from any thread.
/// The registry is process-global (one schedule per process), matching how a
/// chaos drill drives one daemon.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xsfq::fault {

namespace detail {
/// Fast-path gate: false whenever no schedule is armed.
extern std::atomic<bool> g_armed;
bool check_slow(std::string_view site);
}  // namespace detail

/// Hot-path check: returns true when the armed schedule says this hit of
/// `site` must fail.  Unarmed cost is one relaxed load + branch.
inline bool fire(std::string_view site) {
  if (!detail::g_armed.load(std::memory_order_relaxed)) return false;
  return detail::check_slow(site);
}

/// Whether any schedule is currently armed.
inline bool armed() {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// Parses and arms `schedule` (see the grammar above), replacing any
/// previously armed schedule.  An empty/whitespace string disarms.  Throws
/// std::invalid_argument on malformed input — a typo in a chaos drill must
/// abort loudly, not silently run fault-free.
void arm(const std::string& schedule);

/// Arms from the XSFQ_FAULTS environment variable when it is set and
/// non-empty; returns whether a schedule was armed.
bool arm_from_env();

/// Drops the schedule; every site reverts to the one-load fast path.
/// Fire counters of the dropped schedule are retained until the next arm()
/// so post-run assertions can still read them.
void disarm();

/// One scheduled site's observation counters.
struct site_stats {
  std::string site;
  std::uint64_t hits = 0;   ///< times the site was evaluated while armed
  std::uint64_t fired = 0;  ///< times it was told to fail
};

/// Counters for every site in the current (or last disarmed) schedule.
std::vector<site_stats> stats();

/// Total fires across all sites since the last arm().
std::uint64_t total_fired();

/// Human-readable description of the armed schedule ("(disarmed)" when
/// none) — for daemon startup lines and drill logs.
std::string describe();

}  // namespace xsfq::fault
