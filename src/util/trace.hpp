#pragma once
/// \file trace.hpp
/// \brief Always-on flight recorder + per-request trace collection.
///
/// Two layers, one record() call:
///
///  1. **Flight recorder** — every span lands in a lock-free fixed-size
///     ring owned by the recording thread.  The ring is ALWAYS on: the
///     write is an interned-name lookup plus a handful of relaxed atomic
///     stores (no locks, no allocation after the first span on a thread),
///     the same cost contract as util/fault.hpp's unarmed sites — pinned by
///     the perf gate.  SIGUSR1 on the daemon (or trace::dump_chrome_trace)
///     snapshots every live ring plus the retired ring into Chrome
///     trace-event JSON loadable in Perfetto, so "what was this process
///     doing just now?" is answerable after the fact with zero setup.
///     Overwritten entries are counted (`spans_dropped`) so overflow is
///     visible in the metrics scrape rather than silent.
///
///  2. **Per-request collection** — when the calling thread carries a
///     valid (non-zero) trace context (the 16-byte trace_id a v6 client
///     sent on submit/synth_delta), the span is additionally appended to a
///     bounded per-trace collector, which the server's `trace` request
///     reads back to the client for the per-stage waterfall.  Untraced
///     traffic never touches the collector or its lock.
///
/// Context propagates by thread: the server's handler installs a
/// context_scope per request, batch_runner captures current() into enqueued
/// jobs, so spans recorded on pool threads attribute to the right request.
///
/// Snapshot safety: slots are seqlock-stamped (odd = mid-write) and every
/// field is a relaxed atomic, so a cross-thread snapshot is race-free and
/// simply skips the (at most one) slot being rewritten.  Span names are
/// interned `const char*`s so a slot is a fixed-size, pointer-stable
/// record; the intern table only ever grows (span names are a small
/// closed-ish vocabulary: "queue_wait", "stage:optimize", ...).

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xsfq::trace {

/// 16-byte request trace identifier (client-generated, 0/0 = untraced).
struct trace_id {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  bool valid() const { return (hi | lo) != 0; }
  bool operator==(const trace_id&) const = default;
};

/// 32 lowercase hex digits (hi then lo) — the form logs and JSON carry.
std::string to_hex(trace_id id);
/// Inverse of to_hex; accepts exactly 32 hex digits.  Returns false (and
/// leaves `out` alone) on anything else.
bool from_hex(std::string_view text, trace_id& out);

/// Microseconds since an arbitrary process-wide steady epoch.  All spans
/// and the Chrome JSON `ts` field share this clock, so cross-thread spans
/// line up on one timeline.
std::uint64_t now_us();

/// A completed span, as read back out of the recorder.
struct span {
  trace_id id;        ///< 0/0 for untraced background work
  std::string name;   ///< interned site name ("queue_wait", "stage:map", ...)
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;  ///< recording thread, stable per thread
};

// ---------------------------------------------------------------------------
// Recording.
// ---------------------------------------------------------------------------

/// Records one completed span against the calling thread's current trace
/// context.  Always lands in the flight-recorder ring; additionally lands
/// in the per-trace collector when the context is valid.
void record(std::string_view name, std::uint64_t start_us,
            std::uint64_t dur_us);

/// As record(), but against an explicit id instead of the thread context
/// (used where the owning request is known but the context is not
/// installed, e.g. the server's send path after the scope closed).
void record_for(trace_id id, std::string_view name, std::uint64_t start_us,
                std::uint64_t dur_us);

/// RAII span: stamps start at construction, records at destruction.
class scoped_span {
 public:
  explicit scoped_span(std::string_view name)
      : name_(name), start_us_(now_us()) {}
  ~scoped_span();
  scoped_span(const scoped_span&) = delete;
  scoped_span& operator=(const scoped_span&) = delete;

 private:
  std::string_view name_;
  std::uint64_t start_us_;
};

// ---------------------------------------------------------------------------
// Thread context.
// ---------------------------------------------------------------------------

/// The calling thread's current trace context (0/0 when none installed).
trace_id current();
void set_current(trace_id id);

/// RAII context install/restore.  The server's request handler and the
/// batch_runner job wrapper bracket work with one of these.
class context_scope {
 public:
  explicit context_scope(trace_id id) : saved_(current()) { set_current(id); }
  ~context_scope() { set_current(saved_); }
  context_scope(const context_scope&) = delete;
  context_scope& operator=(const context_scope&) = delete;

 private:
  trace_id saved_;
};

// ---------------------------------------------------------------------------
// Reading back.
// ---------------------------------------------------------------------------

/// Spans collected for one trace id, sorted by start time.  Empty when the
/// id is unknown (never seen, or evicted by newer traces).
std::vector<span> collected(trace_id id);

/// Flight-recorder snapshot: every stable slot of every live ring plus the
/// retired ring (spans from threads that have exited), sorted by start.
std::vector<span> snapshot();

/// Cumulative counters (process lifetime, all threads).
std::uint64_t spans_recorded();
/// Ring slots overwritten before any snapshot saw them + collector
/// evictions — the "your window was too small" signal.
std::uint64_t spans_dropped();

// ---------------------------------------------------------------------------
// Export.
// ---------------------------------------------------------------------------

/// Chrome trace-event JSON (the Perfetto/about:tracing "X" complete-event
/// form): {"traceEvents":[{"name":..,"ph":"X","ts":..,"dur":..,"pid":..,
/// "tid":..,"args":{"trace_id":"..hex.."}},...]}.
std::string chrome_trace_json(const std::vector<span>& spans);

/// snapshot() -> chrome_trace_json -> atomic write (tmp + rename) to
/// `path`.  Returns false on I/O failure; never throws (callable from the
/// daemon's signal-handling thread).
bool dump_chrome_trace(const std::string& path);

}  // namespace xsfq::trace
