/// \file log.cpp
/// \brief Logfmt assembly, value escaping, and the stderr sink.

#include "util/log.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace xsfq::log {

namespace detail {
std::atomic<int> g_level{static_cast<int>(level::info)};
}  // namespace detail

namespace {

std::mutex g_sink_mutex;
std::function<void(std::string_view)> g_sink;  // empty = default stderr

void default_sink(std::string_view ln) {
  // One fwrite per line: stdio buffers the whole thing, so concurrent
  // lines never interleave mid-record on the (unbuffered-ish) stderr.
  std::fwrite(ln.data(), 1, ln.size(), stderr);
}

void emit(std::string_view ln) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink)
    g_sink(ln);
  else
    default_sink(ln);
}

bool needs_quoting(std::string_view v) {
  if (v.empty()) return true;
  for (char c : v) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (u <= ' ' || c == '"' || c == '=' || c == '\\' || u == 0x7f)
      return true;
  }
  return false;
}

void append_value(std::string& buf, std::string_view v) {
  if (!needs_quoting(v)) {
    buf.append(v);
    return;
  }
  buf.push_back('"');
  for (char c : v) {
    switch (c) {
      case '"': buf.append("\\\""); break;
      case '\\': buf.append("\\\\"); break;
      case '\n': buf.append("\\n"); break;
      case '\r': buf.append("\\r"); break;
      case '\t': buf.append("\\t"); break;
      default: {
        const unsigned char u = static_cast<unsigned char>(c);
        if (u < 0x20 || u == 0x7f) {
          char esc[8];
          std::snprintf(esc, sizeof esc, "\\x%02x", u);
          buf.append(esc);
        } else {
          buf.push_back(c);
        }
      }
    }
  }
  buf.push_back('"');
}

void append_timestamp(std::string& buf) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char stamp[40];
  std::snprintf(stamp, sizeof stamp,
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", tm.tm_year + 1900,
                tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min, tm.tm_sec,
                static_cast<int>(ms));
  buf.append(stamp);
}

}  // namespace

void set_level(level l) {
  detail::g_level.store(static_cast<int>(l), std::memory_order_relaxed);
}

level get_level() {
  return static_cast<level>(detail::g_level.load(std::memory_order_relaxed));
}

bool parse_level(std::string_view text, level& out) {
  if (text == "trace") out = level::trace;
  else if (text == "debug") out = level::debug;
  else if (text == "info") out = level::info;
  else if (text == "warn") out = level::warn;
  else if (text == "error") out = level::error;
  else if (text == "off") out = level::off;
  else return false;
  return true;
}

std::string_view level_name(level l) {
  switch (l) {
    case level::trace: return "trace";
    case level::debug: return "debug";
    case level::info: return "info";
    case level::warn: return "warn";
    case level::error: return "error";
    case level::off: return "off";
  }
  return "info";
}

void set_sink(std::function<void(std::string_view line)> sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

line::line(level l, std::string_view event) {
  if (!enabled(l)) return;
  active_ = true;
  buf_.reserve(160);
  buf_.append("ts=");
  append_timestamp(buf_);
  buf_.append(" level=");
  buf_.append(level_name(l));
  buf_.append(" event=");
  append_value(buf_, event);
}

line::~line() {
  if (active_ && !emitted_) done();
}

line& line::kv(std::string_view key, std::string_view value) {
  if (!active_) return *this;
  buf_.push_back(' ');
  buf_.append(key);
  buf_.push_back('=');
  append_value(buf_, value);
  return *this;
}

line& line::kv(std::string_view key, bool value) {
  return kv(key, value ? std::string_view("true") : std::string_view("false"));
}

line& line::kv(std::string_view key, std::uint64_t value) {
  char num[24];
  std::snprintf(num, sizeof num, "%" PRIu64, value);
  return kv(key, std::string_view(num));
}

line& line::kv(std::string_view key, std::int64_t value) {
  char num[24];
  std::snprintf(num, sizeof num, "%" PRId64, value);
  return kv(key, std::string_view(num));
}

line& line::kv(std::string_view key, double value) {
  char num[40];
  std::snprintf(num, sizeof num, "%.3f", value);
  return kv(key, std::string_view(num));
}

line& line::kv_hex(std::string_view key, std::uint64_t value) {
  char num[20];
  std::snprintf(num, sizeof num, "%016" PRIx64, value);
  return kv(key, std::string_view(num));
}

void line::done() {
  if (!active_ || emitted_) return;
  emitted_ = true;
  buf_.push_back('\n');
  emit(buf_);
}

}  // namespace xsfq::log
