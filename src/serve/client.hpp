#pragma once
/// \file client.hpp
/// \brief Client side of the serve protocol (xsfq_client's engine).
///
/// One `client` is one connection to a running xsfq_served daemon.  Requests
/// are synchronous: submit() writes the request frame and consumes response
/// frames — streamed progress events first, when requested — until the
/// terminal result arrives.  A server-reported failure comes back as
/// synth_response{ok=false}; transport and framing failures throw
/// protocol_error.

#include <functional>
#include <string>

#include "serve/protocol.hpp"

namespace xsfq::serve {

class client {
 public:
  /// Connects to the daemon's Unix socket.  Throws std::runtime_error when
  /// the daemon is not reachable at `socket_path`.
  explicit client(const std::string& socket_path);
  ~client();
  client(const client&) = delete;
  client& operator=(const client&) = delete;

  using progress_fn = std::function<void(const progress_event&)>;

  /// Runs one synthesis request on the daemon.  When req.stream_progress is
  /// set, `progress` receives every streamed per-stage event before the
  /// response returns.
  synth_response submit(const synth_request& req,
                        const progress_fn& progress = {});

  server_status status();
  cache_stats_reply cache_stats();
  /// Asks the daemon to drain and exit; returns once it acknowledged.
  void shutdown_server();
  bool ping();

 private:
  frame roundtrip(msg_type request, std::span<const std::uint8_t> payload,
                  msg_type expected);

  int fd_ = -1;
};

}  // namespace xsfq::serve
