#pragma once
/// \file client.hpp
/// \brief Client side of the serve protocol (xsfq_client's engine).
///
/// One `client` is one connection to a running xsfq_served daemon, over
/// either the Unix-domain socket or TCP.  Requests are synchronous: submit()
/// writes the request frame and consumes response frames — streamed progress
/// events first, when requested — until the terminal result arrives.
///
/// Error surface: a server-reported per-request failure comes back as
/// synth_response{ok=false}; a typed protocol-level rejection (auth
/// required/failed, overloaded, deadline_expired, unsupported_version, ...)
/// throws `service_error` carrying its error_code; transport and framing
/// failures throw plain `protocol_error`.  An error frame from a pre-v3
/// daemon (bare-string payload, announced by its header version) is decoded
/// at that version and surfaces as service_error{generic}.
///
/// Not thread-safe: one client is one ordered request/response stream; use
/// one client per thread.

#include <cstdint>
#include <functional>
#include <string>

#include "serve/protocol.hpp"

namespace xsfq::serve {

class client {
 public:
  /// Connects to the daemon's Unix socket.  Throws std::runtime_error when
  /// the daemon is not reachable at `socket_path`.
  explicit client(const std::string& socket_path);

  /// Connects over TCP.  If the daemon was started with an auth token, every
  /// request other than hello() will be rejected until authenticate()
  /// succeeds on this connection.  Throws std::runtime_error when the
  /// daemon is not reachable.
  client(const std::string& host, std::uint16_t port);

  ~client();
  client(const client&) = delete;
  client& operator=(const client&) = delete;

  /// Bounds every subsequent read on this connection (SO_RCVTIMEO): a
  /// response that takes longer than `timeout_ms` throws io_timeout_error
  /// instead of blocking forever on a hung daemon.  <= 0 restores the
  /// default (wait forever).  The connection is NOT safely reusable after a
  /// timeout mid-response — reconnect and resubmit (resilient_client does).
  void set_receive_timeout_ms(int timeout_ms);

  using progress_fn = std::function<void(const progress_event&)>;

  /// v3 capability exchange: the daemon's version, whether THIS connection
  /// still needs auth, and its capability strings.  Allowed before auth.
  hello_reply hello(const std::string& client_name = "xsfq_client");

  /// Presents the shared-secret token.  Returns normally on success; throws
  /// service_error{auth_failed} on mismatch (the daemon also closes the
  /// connection, so a failed client must reconnect to retry).
  void authenticate(const std::string& token);

  /// Runs one synthesis request on the daemon.  When req.stream_progress is
  /// set, `progress` receives every streamed per-stage event before the
  /// response returns.  Admission rejections (overloaded, deadline_expired)
  /// throw service_error with the corresponding code; the connection remains
  /// usable afterwards.
  synth_response submit(const synth_request& req,
                        const progress_fn& progress = {});

  /// v4: runs one incremental-resynthesis request (an edit script against a
  /// previously synthesized base named by content hash).  Response shape and
  /// streaming match submit(); the ECO-specific rejections come back as
  /// service_error{unknown_base} (resubmit the full circuit) and
  /// service_error{bad_edit} (fix the script).
  synth_response submit_delta(const synth_delta_request& req,
                              const progress_fn& progress = {});

  /// v6: fetches the span tree the daemon's flight recorder collected for a
  /// traced request (one whose submit carried a non-zero trace_id).  An
  /// unknown or already-evicted id returns an empty span list, not an error.
  trace_reply trace(const trace_request& req);

  server_status status();
  cache_stats_reply cache_stats();
  /// The full v3 metrics scrape (admission counters, cache tiers, latency
  /// histograms).
  server_stats_reply server_stats();
  /// Asks the daemon to drain and exit; returns once it acknowledged.
  void shutdown_server();
  bool ping();

 private:
  frame roundtrip(msg_type request, std::span<const std::uint8_t> payload,
                  msg_type expected);
  /// Shared progress/result consumption loop of submit() and submit_delta().
  synth_response read_submit_response(const progress_fn& progress);

  int fd_ = -1;
};

}  // namespace xsfq::serve
