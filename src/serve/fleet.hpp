#pragma once
/// \file fleet.hpp
/// \brief Client-side sharded fleet: consistent-hash routing, health-checked
/// failover, hedged sends, merged fleet stats.
///
/// One resilient_client heals one connection; `fleet_client` heals across
/// *daemons*.  It routes every request by the circuit's content hash over a
/// consistent-hash ring (serve/ring.hpp) of N endpoints with R-way replica
/// placement, so the same circuit always lands on the same shard (hot
/// retained-network and result caches) and every request has fallback
/// owners when that shard dies.
///
/// The robustness machinery on top:
///
///  - Per-endpoint health state machine: healthy → suspect → down →
///    probing.  Connect failures and I/O timeouts drive an endpoint toward
///    `down`; while non-healthy it is pinged at seeded-jitter intervals
///    (lazily, on the request path — the client owns no threads).  A probe
///    success moves down → probing (traffic allowed again); a real request
///    success completes recovery to healthy.
///  - Failover: `overloaded`/`too_many_connections` (and their
///    retry_after_ms hints) mean *this* shard is busy, not that the request
///    is doomed — the fleet routes to the next replica instead of sleeping
///    and retrying the same socket.  Transport failures do the same on a
///    fresh connection.  Only when a full pass over the owner list fails
///    does the client back off (capped, seeded jitter) and sweep again.
///  - Hedged sends: once enough latencies are recorded, the first attempt
///    of a request runs under an adaptive deadline derived from a high
///    quantile of observed latency; a request stuck past it is re-sent to
///    the next replica.  Byte-identical results make the abandoned attempt
///    harmless — the slow shard finishes, caches, and moves on.
///  - Ring-aware ECO: a synth_delta routes by its base hash, but a
///    failed-over shard may never have retained that base.  The daemon
///    rebuilds it from the embedded base request when the hashes agree; if
///    it still answers `unknown_base`, the fleet applies the edit locally
///    to the embedded base and submits the edited circuit as a plain full
///    request — byte-identical output by the determinism contract.
///
/// Fault sites `fleet.route.down` (an endpoint treated as dead pre-send)
/// and `fleet.probe.fail` (a health probe forced to fail) plug the routing
/// layer into the util/fault.hpp chaos harness.
///
/// Not thread-safe, like `client`: one fleet_client per thread.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/resilient_client.hpp"
#include "serve/ring.hpp"
#include "util/histogram.hpp"

namespace xsfq::serve {

struct fleet_options {
  /// Distinct owners per key (placement fan-out; clamped to fleet size).
  std::size_t replicas = 2;
  /// Ring points per endpoint.
  unsigned vnodes = 64;
  /// Backoff shape between full sweeps of the owner list, per-attempt
  /// receive deadline, and the seed for every jittered interval.
  retry_policy policy;
  /// Base interval between health probes of a non-healthy endpoint
  /// (jittered ±policy.jitter so a fleet of clients decorrelates).
  unsigned probe_interval_ms = 250;
  /// Consecutive transport failures that mark an endpoint down (one
  /// failure already marks it suspect).
  unsigned down_after = 3;
  /// Hedging: first attempts run under a deadline of
  /// max(hedge_floor_ms, hedge_multiplier * quantile_ms(hedge_quantile))
  /// once hedge_min_samples latencies are recorded; 0 quantile disables.
  double hedge_quantile = 0.99;
  std::size_t hedge_min_samples = 32;
  double hedge_floor_ms = 25.0;
  double hedge_multiplier = 2.0;
};

/// Health of one endpoint as seen by this client.
enum class endpoint_health : std::uint8_t {
  healthy,  ///< full member of the route set
  suspect,  ///< recent failure(s); still routed, probed when idle
  down,     ///< skipped by routing (unless every owner is down); probed
  probing,  ///< a probe succeeded after down; one real success to recover
};

const char* to_string(endpoint_health h);

/// Per-endpoint health/traffic snapshot (for --stats and assertions).
struct endpoint_status {
  std::string id;  ///< ring identity, e.g. "unix:/tmp/a.sock"
  endpoint_health health = endpoint_health::healthy;
  std::uint64_t requests = 0;       ///< attempts sent to this endpoint
  std::uint64_t failures = 0;       ///< attempts that failed on it
  std::uint64_t probes = 0;
  std::uint64_t probe_failures = 0;
  std::uint32_t consecutive_failures = 0;
};

/// Fleet-level counters (client-side; merged into the --stats scrape).
struct fleet_counters {
  std::uint64_t requests = 0;    ///< submit/submit_delta calls
  std::uint64_t failovers = 0;   ///< attempts re-routed after a failure
  std::uint64_t hedged = 0;      ///< first attempts abandoned at the hedge
                                 ///< deadline and re-sent elsewhere
  std::uint64_t hedge_wins = 0;  ///< hedged requests a replica completed
  std::uint64_t probes = 0;
  std::uint64_t probe_failures = 0;
  std::uint64_t eco_full_fallbacks = 0;  ///< unknown_base → local edit +
                                         ///< full resynthesis fallback
};

/// Merged fleet scrape: every reachable daemon's server_stats summed
/// (histograms merged bucket-wise), plus per-endpoint health and the
/// client-side fleet counters.
struct fleet_stats {
  server_stats_reply merged;
  std::size_t endpoints_total = 0;
  std::size_t endpoints_up = 0;  ///< endpoints that answered server_stats
  std::vector<endpoint_status> endpoints;
  fleet_counters counters;
};

class fleet_client {
 public:
  explicit fleet_client(std::vector<endpoint> endpoints,
                        fleet_options options = {});
  ~fleet_client();
  fleet_client(const fleet_client&) = delete;
  fleet_client& operator=(const fleet_client&) = delete;

  /// Routed submit: key = the request circuit's content hash (falls back
  /// to a hash of the request text when the circuit does not load — the
  /// daemon will reject it, but deterministically on the same shard).
  synth_response submit(const synth_request& req);
  /// Routed by `base_content_hash` so a session's deltas pin to the shard
  /// holding the retained base.  See the ECO fallback contract above.
  synth_response submit_delta(const synth_delta_request& req);

  /// Polls every endpoint for server_stats and merges (down endpoints are
  /// skipped, reflected in endpoints_up).  Never throws on unreachable
  /// endpoints; throws only when the fleet definition itself is unusable.
  fleet_stats stats();

  /// Routing introspection: owner ids for a key, in preference order
  /// (pure ring lookup — no health filtering, no I/O).
  [[nodiscard]] std::vector<std::string> owners_for(std::uint64_t key) const;
  /// The routing key submit() would use for `req`.
  [[nodiscard]] static std::uint64_t routing_key(const synth_request& req);
  /// Canonical ring identity of an endpoint ("unix:<path>" or
  /// "tcp:<host>:<port>").
  [[nodiscard]] static std::string endpoint_id(const endpoint& ep);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const fleet_counters& counters() const { return counters_; }
  [[nodiscard]] std::vector<endpoint_status> endpoint_statuses() const;

 private:
  struct shard;

  template <typename Fn>
  synth_response with_failover(std::uint64_t key, Fn&& send);
  client& shard_connection(shard& sh);
  void mark_transport_failure(shard& sh);
  void mark_success(shard& sh);
  /// Probes every non-healthy endpoint whose jittered deadline arrived.
  void run_due_probes();
  void schedule_probe(shard& sh);
  void backoff(unsigned sweep, std::uint32_t server_hint_ms);
  [[nodiscard]] double hedge_deadline_ms() const;
  void record_latency(double ms);

  fleet_options options_;
  consistent_ring ring_;
  std::vector<std::unique_ptr<shard>> shards_;
  fleet_counters counters_;
  std::uint64_t rng_state_;
  // Client-observed request latencies feeding the hedge quantile.
  log_histogram latency_;
};

/// Renders a merged fleet scrape in the Prometheus text format: the full
/// single-daemon exposition over the merged counters, plus xsfq_fleet_*
/// series (endpoint gauges, failover/hedge/probe counters, per-endpoint
/// health).
std::string format_fleet_stats_text(const fleet_stats& stats);

}  // namespace xsfq::serve
