#include "serve/server.hpp"

#include <errno.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "serve/synth_service.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/trace.hpp"

namespace xsfq::serve {

namespace {

void close_quietly(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Per-request trace export (--trace-out): the collected span set of one
/// traced request as Chrome trace-event JSON, atomically written.  Failures
/// are logged and swallowed — exporting must never fail a request.
void export_trace(const std::string& dir, trace::trace_id id) {
  const std::vector<trace::span> spans = trace::collected(id);
  const std::string path = dir + "/trace_" + trace::to_hex(id) + ".json";
  const std::string json = trace::chrome_trace_json(spans);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  bool ok = f != nullptr;
  if (ok) {
    ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    ok = (std::fclose(f) == 0) && ok;
    if (ok) ok = std::rename(tmp.c_str(), path.c_str()) == 0;
    if (!ok) std::remove(tmp.c_str());
  }
  if (!ok) {
    log::line(log::level::warn, "trace.export_failed")
        .kv("path", path)
        .kv("spans", static_cast<std::uint64_t>(spans.size()));
  } else {
    log::line(log::level::debug, "trace.exported")
        .kv("path", path)
        .kv("spans", static_cast<std::uint64_t>(spans.size()));
  }
}

/// Splits "host:port" (the last ':' wins, so a future "[::1]:80" parse can
/// slot in) and resolves it into a bound, listening TCP socket.  Returns the
/// fd; fills `bound_port` with the kernel-assigned port (for ":0" binds).
int listen_tcp(const std::string& address, std::uint16_t& bound_port) {
  const auto colon = address.find_last_of(':');
  if (colon == std::string::npos || colon == address.size() - 1) {
    throw std::runtime_error("serve: --listen expects HOST:PORT, got: " +
                             address);
  }
  const std::string host = address.substr(0, colon);
  const std::string port = address.substr(colon + 1);

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               port.c_str(), &hints, &res);
  if (rc != 0) {
    throw std::runtime_error("serve: cannot resolve listen address " +
                             address + ": " + gai_strerror(rc));
  }
  int fd = -1;
  std::string last_error = "no usable address";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, 64) == 0) {
      sockaddr_storage bound{};
      socklen_t len = sizeof(bound);
      if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
        if (bound.ss_family == AF_INET) {
          bound_port = ntohs(
              reinterpret_cast<const sockaddr_in*>(&bound)->sin_port);
        } else if (bound.ss_family == AF_INET6) {
          bound_port = ntohs(
              reinterpret_cast<const sockaddr_in6*>(&bound)->sin6_port);
        }
      }
      ::freeaddrinfo(res);
      return fd;
    }
    last_error = std::strerror(errno);
    close_quietly(fd);
  }
  ::freeaddrinfo(res);
  throw std::runtime_error("serve: cannot listen on " + address + ": " +
                           last_error);
}

}  // namespace

/// One accepted connection: the fd plus its handler thread's lifecycle
/// bookkeeping (reaped opportunistically and on stop()) and the per-worker
/// latency histograms, recycled across this connection's requests and
/// merged into the server's retired set when the connection is reaped.
struct server::connection {
  int fd = -1;
  std::uint64_t id = 0;     ///< monotonic, correlates log lines
  bool is_tcp = false;
  bool needs_auth = false;  ///< TCP with a configured token; cleared by auth
  std::thread thread;
  std::atomic<bool> done{false};
  /// Guards hist against a concurrent server_stats() merge; recording takes
  /// this uncontended lock once per sample, readers once per scrape.
  std::mutex hist_mutex;
  histogram_set hist;

  ~connection() {
    int fd_copy = fd;
    close_quietly(fd_copy);
  }
};

server::server(server_options options)
    : options_(std::move(options)),
      runner_(std::make_unique<flow::batch_runner>(options_.threads)),
      // max_inflight=0 defaults to the runner's resolved worker count
      // (threads=0 resolves to hardware concurrency inside the runner).
      admission_(options_.max_queue,
                 options_.max_inflight != 0 ? options_.max_inflight
                                            : runner_->num_threads()) {
  if (options_.socket_path.empty() && options_.listen_address.empty()) {
    throw std::runtime_error(
        "serve: need a socket path or a TCP listen address");
  }
  if (!options_.cache_dir.empty()) {
    runner_->set_disk_cache(options_.cache_dir, options_.max_disk_entries);
  }
  runner_->set_retained_bytes(options_.retained_bytes);

  if (!options_.socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("serve: socket path too long: " +
                               options_.socket_path);
    }
    std::strncpy(addr.sun_path, options_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      throw std::runtime_error(std::string("serve: socket failed: ") +
                               std::strerror(errno));
    }
    ::unlink(options_.socket_path.c_str());  // stale socket from a prior run
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      const std::string what =
          std::string("serve: bind/listen failed on ") + options_.socket_path +
          ": " + std::strerror(errno);
      close_quietly(listen_fd_);
      throw std::runtime_error(what);
    }
  }

  if (!options_.listen_address.empty()) {
    try {
      tcp_listen_fd_ = listen_tcp(options_.listen_address, tcp_port_);
    } catch (...) {
      close_quietly(listen_fd_);
      throw;
    }
  }

  start_time_ = std::chrono::steady_clock::now();
  if (listen_fd_ >= 0) {
    accept_thread_ =
        std::thread([this] { accept_loop(listen_fd_, /*is_tcp=*/false); });
  }
  if (tcp_listen_fd_ >= 0) {
    tcp_accept_thread_ =
        std::thread([this] { accept_loop(tcp_listen_fd_, /*is_tcp=*/true); });
  }
}

server::~server() { stop(); }

void server::accept_loop(int listen_fd, bool is_tcp) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (stop()) or fatal: exit the loop
    }
    auto conn = std::make_shared<connection>();
    conn->fd = fd;
    conn->id = next_conn_id_.fetch_add(1);
    conn->is_tcp = is_tcp;
    conn->needs_auth = is_tcp && !options_.auth_token.empty();
    bool over_cap = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        ::close(fd);
        conn->fd = -1;
        return;
      }
      reap_finished_locked();
      over_cap = active_connections_locked() >= options_.max_conns;
      if (!over_cap) connections_.push_back(conn);
    }
    if (over_cap) {
      // Bounce BEFORE a handler thread exists: a connection flood must hit
      // this cap, not the thread allocator.  Best-effort write — the frame
      // fits any socket buffer, and a peer that vanished just loses it.
      rejected_conns_.fetch_add(1);
      log::line(log::level::warn, "conn.bounce")
          .kv("conn", conn->id)
          .kv("reason", "too_many_connections")
          .kv("max_conns", static_cast<std::uint64_t>(options_.max_conns));
      try {
        write_frame_fd(fd, msg_type::error,
                       encode_error(error_code::too_many_connections,
                                    "connection limit reached (" +
                                        std::to_string(options_.max_conns) +
                                        "); retry later",
                                    retry_after_hint_ms()));
      } catch (const protocol_error&) {
      }
      ::close(fd);
      conn->fd = -1;
      continue;
    }
    log::line(log::level::debug, "conn.accept")
        .kv("conn", conn->id)
        .kv("transport", is_tcp ? "tcp" : "unix");
    conn->thread =
        std::thread([this, conn] { handle_connection(conn); });
  }
}

void server::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      {
        // Keep the samples: merge the dead connection's histograms into the
        // retired set before the object goes away.
        std::lock_guard<std::mutex> hist_lock((*it)->hist_mutex);
        (*it)->hist.merge_into(retired_hist_);
      }
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t server::active_connections_locked() const {
  std::size_t active = 0;
  for (const auto& conn : connections_) {
    if (!conn->done.load()) ++active;
  }
  return active;
}

void server::handle_connection(const std::shared_ptr<connection>& conn) {
  const int fd = conn->fd;
  bool writable = true;
  bool authed = !conn->needs_auth;
  const auto send = [&](msg_type type,
                        const std::vector<std::uint8_t>& payload) {
    if (!writable) return;
    if (fault::fire("serve.send.reset")) {
      // Chaos: the connection "resets" before this response hits the wire.
      // The peer sees a mid-request EOF — exactly what a daemon crash or a
      // dropped route looks like — and must recover by resubmitting.
      ::shutdown(fd, SHUT_RDWR);
      writable = false;
      return;
    }
    try {
      // The send path is a traced stage too: a slow client that drains its
      // socket lazily shows up as a long "send" span, not as mystery time.
      const std::uint64_t send_start = trace::now_us();
      write_frame_fd(fd, type, payload, protocol_version,
                     options_.io_timeout_ms);
      trace::record("send", send_start, trace::now_us() - send_start);
    } catch (const io_timeout_error&) {
      // The peer stopped draining its socket: reclaim this thread instead
      // of blocking in send() forever at its mercy.
      io_timeouts_.fetch_add(1);
      log::line(log::level::warn, "conn.send_timeout").kv("conn", conn->id);
      writable = false;
    } catch (const protocol_error& e) {
      // An over-limit encode throws before any byte hits the wire, so the
      // stream is still clean — tell the client why before giving up.
      // Transport failures just mark the connection dead; either way the
      // handler closes below rather than leaving the client blocked on a
      // response that will never come.
      if (payload.size() > max_frame_payload) {
        try {
          write_frame_fd(fd, msg_type::error,
                         encode_error(error_code::generic, e.what()));
        } catch (const protocol_error&) {
        }
      }
      writable = false;
    }
  };
  const auto record_ms = [&](std::string_view name, double ms) {
    std::lock_guard<std::mutex> lock(conn->hist_mutex);
    conn->hist.at(name).record(ms);
  };

  try {
    for (;;) {
      if (fault::fire("serve.recv.stall")) {
        // Chaos: behave exactly as if this peer went silent mid-frame and
        // the poll deadline expired — drives the io_timeout handling below.
        throw io_timeout_error("injected stall (serve.recv.stall)");
      }
      std::optional<frame> f =
          read_frame_fd(fd, options_.io_timeout_ms, options_.idle_timeout_ms);
      if (!f) break;  // clean end-of-stream (client closed, or drain)
      if (f->version != protocol_version) {
        // Typed, decodable rejection instead of a hang: the header layout
        // is frozen, so we answer AT THE PEER'S VERSION (legacy string
        // payload below v3, no retry_after hint below v5) and close.
        const std::string what =
            "protocol version mismatch: daemon speaks v" +
            std::to_string(protocol_version) + ", client sent v" +
            std::to_string(f->version) + "; upgrade the client";
        try {
          write_frame_fd(fd, msg_type::error,
                         encode_error_for_version(
                             f->version, error_code::unsupported_version, what),
                         f->version);
        } catch (const protocol_error&) {
        }
        break;
      }
      if (!authed && f->type != msg_type::hello && f->type != msg_type::auth) {
        rejected_auth_.fetch_add(1);
        log::line(log::level::warn, "auth.required")
            .kv("conn", conn->id)
            .kv("type", static_cast<std::uint64_t>(f->type));
        send(msg_type::error,
             encode_error(error_code::auth_required,
                          "authenticate first: this transport requires an "
                          "auth token frame before any request"));
        break;
      }
      switch (f->type) {
        case msg_type::hello: {
          const hello_request hello = decode_hello_request(f->payload);
          (void)hello;  // client version/name are informational in v3
          hello_reply reply;
          reply.server_version = protocol_version;
          reply.auth_required = !authed;
          reply.max_payload = max_frame_payload;
          reply.capabilities = {"auth",     "priorities",  "deadlines",
                                "server_stats", "progress", "synth_delta",
                                "trace"};
          send(msg_type::hello_ok, encode_hello_reply(reply));
          break;
        }
        case msg_type::auth: {
          const auth_request auth = decode_auth_request(f->payload);
          if (constant_time_equal(auth.token, options_.auth_token)) {
            authed = true;
            send(msg_type::auth_ok, {});
          } else {
            rejected_auth_.fetch_add(1);
            log::line(log::level::warn, "auth.fail").kv("conn", conn->id);
            send(msg_type::error,
                 encode_error(error_code::auth_failed, "auth token mismatch"));
            writable = false;  // close: do not offer retries on one stream
          }
          break;
        }
        case msg_type::submit: {
          const synth_request req = decode_synth_request(f->payload);
          jobs_submitted_.fetch_add(1);
          // Install the request's trace context for this handler thread:
          // every span recorded below (and on pool threads, via the
          // batch_runner's context capture) attributes to this id.
          const trace::trace_id tid{req.trace_hi, req.trace_lo};
          trace::context_scope tscope(tid);
          log::line(log::level::debug, "request.start")
              .kv("conn", conn->id)
              .kv("type", "submit")
              .kv("spec", req.spec)
              .kv("trace_id", tid.valid() ? trace::to_hex(tid) : "");
          const std::uint64_t admit_start = trace::now_us();
          const auto ticket = admission_.acquire(req.priority, req.deadline_ms);
          trace::record("queue_wait", admit_start,
                        trace::now_us() - admit_start);
          if (ticket.outcome == admission_queue::verdict::overloaded) {
            jobs_failed_.fetch_add(1);
            log::line(log::level::warn, "request.shed")
                .kv("conn", conn->id)
                .kv("reason", "overloaded")
                .kv("trace_id", tid.valid() ? trace::to_hex(tid) : "");
            send(msg_type::error,
                 encode_error(error_code::overloaded,
                              "admission queue full (max_queue=" +
                                  std::to_string(options_.max_queue) +
                                  "); retry later",
                              retry_after_hint_ms()));
            break;
          }
          if (ticket.outcome == admission_queue::verdict::deadline_expired) {
            jobs_failed_.fetch_add(1);
            log::line(log::level::warn, "request.shed")
                .kv("conn", conn->id)
                .kv("reason", "deadline_expired")
                .kv("queued_ms", ticket.queued_ms)
                .kv("trace_id", tid.valid() ? trace::to_hex(tid) : "");
            send(msg_type::error,
                 encode_error(error_code::deadline_expired,
                              "deadline passed after " +
                                  std::to_string(ticket.queued_ms) +
                                  " ms in the admission queue"));
            break;
          }
          record_ms("queue_wait", ticket.queued_ms);
          // Progress events stream from the executing worker thread; every
          // event happens strictly before run_synth returns, so writes to
          // the socket never interleave with the result frame below.
          const auto progress = [&](const progress_event& ev) {
            if (!ev.from_cache) {
              record_ms("stage:" + ev.stage, ev.ms);
              // The stage just finished on the calling thread: spans are
              // recorded end-anchored (start = now - duration).
              const std::uint64_t dur_us =
                  static_cast<std::uint64_t>(ev.ms * 1000.0);
              const std::uint64_t end_us = trace::now_us();
              trace::record("stage:" + ev.stage,
                            end_us > dur_us ? end_us - dur_us : 0, dur_us);
            }
            if (req.stream_progress) {
              send(msg_type::progress, encode_progress_event(ev));
            }
          };
          const auto started = std::chrono::steady_clock::now();
          const std::uint64_t started_us = trace::now_us();
          synth_response resp;
          try {
            resp = run_synth(req, *runner_, progress);
          } catch (...) {
            admission_.release();
            throw;
          }
          admission_.release();
          const double total_ms = std::chrono::duration<double, std::milli>(
                                      std::chrono::steady_clock::now() - started)
                                      .count();
          trace::record("request_total", started_us,
                        trace::now_us() - started_us);
          record_ms("request_total", total_ms);
          record_request_ms(total_ms);
          (resp.ok ? jobs_completed_ : jobs_failed_).fetch_add(1);
          log::line(log::level::info, "request.done")
              .kv("conn", conn->id)
              .kv("type", "submit")
              .kv("spec", req.spec)
              .kv("ok", resp.ok)
              .kv("cached", resp.served_from_cache)
              .kv("ms", total_ms)
              .kv("trace_id", tid.valid() ? trace::to_hex(tid) : "");
          send(msg_type::result, encode_synth_response(resp));
          if (tid.valid() && !options_.trace_out_dir.empty()) {
            export_trace(options_.trace_out_dir, tid);
          }
          break;
        }
        case msg_type::synth_delta: {
          const synth_delta_request req =
              decode_synth_delta_request(f->payload);
          jobs_submitted_.fetch_add(1);
          eco_requests_.fetch_add(1);
          // The trace id rides on the nested base request.
          const trace::trace_id tid{req.base.trace_hi, req.base.trace_lo};
          trace::context_scope tscope(tid);
          log::line(log::level::debug, "request.start")
              .kv("conn", conn->id)
              .kv("type", "synth_delta")
              .kv("spec", req.base.spec)
              .kv_hex("base", req.base_content_hash)
              .kv("trace_id", tid.valid() ? trace::to_hex(tid) : "");
          const std::uint64_t admit_start = trace::now_us();
          const auto ticket = admission_.acquire(req.base.priority,
                                                 req.base.deadline_ms);
          trace::record("queue_wait", admit_start,
                        trace::now_us() - admit_start);
          if (ticket.outcome == admission_queue::verdict::overloaded) {
            jobs_failed_.fetch_add(1);
            log::line(log::level::warn, "request.shed")
                .kv("conn", conn->id)
                .kv("reason", "overloaded")
                .kv("trace_id", tid.valid() ? trace::to_hex(tid) : "");
            send(msg_type::error,
                 encode_error(error_code::overloaded,
                              "admission queue full (max_queue=" +
                                  std::to_string(options_.max_queue) +
                                  "); retry later",
                              retry_after_hint_ms()));
            break;
          }
          if (ticket.outcome == admission_queue::verdict::deadline_expired) {
            jobs_failed_.fetch_add(1);
            log::line(log::level::warn, "request.shed")
                .kv("conn", conn->id)
                .kv("reason", "deadline_expired")
                .kv("queued_ms", ticket.queued_ms)
                .kv("trace_id", tid.valid() ? trace::to_hex(tid) : "");
            send(msg_type::error,
                 encode_error(error_code::deadline_expired,
                              "deadline passed after " +
                                  std::to_string(ticket.queued_ms) +
                                  " ms in the admission queue"));
            break;
          }
          record_ms("queue_wait", ticket.queued_ms);
          const auto progress = [&](const progress_event& ev) {
            if (!ev.from_cache) {
              record_ms("stage:" + ev.stage, ev.ms);
              const std::uint64_t dur_us =
                  static_cast<std::uint64_t>(ev.ms * 1000.0);
              const std::uint64_t end_us = trace::now_us();
              trace::record("stage:" + ev.stage,
                            end_us > dur_us ? end_us - dur_us : 0, dur_us);
            }
            if (req.base.stream_progress) {
              send(msg_type::progress, encode_progress_event(ev));
            }
          };
          const auto started = std::chrono::steady_clock::now();
          const std::uint64_t started_us = trace::now_us();
          synth_response resp;
          eco_outcome outcome;
          try {
            resp = run_synth_delta(req, *runner_, progress, &outcome);
          } catch (const service_error& e) {
            // unknown_base / bad_edit: the client's mistake, typed so an
            // interactive session can resubmit the full circuit instead.
            admission_.release();
            jobs_failed_.fetch_add(1);
            eco_failures_.fetch_add(1);
            log::line(log::level::warn, "request.error")
                .kv("conn", conn->id)
                .kv("type", "synth_delta")
                .kv("error", e.what())
                .kv("trace_id", tid.valid() ? trace::to_hex(tid) : "");
            send(msg_type::error, encode_error(e.code, e.what()));
            break;
          } catch (...) {
            admission_.release();
            throw;
          }
          admission_.release();
          if (outcome.base_retained) eco_retained_hits_.fetch_add(1);
          if (outcome.base_rebuilt) eco_base_rebuilds_.fetch_add(1);
          const double total_ms = std::chrono::duration<double, std::milli>(
                                      std::chrono::steady_clock::now() - started)
                                      .count();
          trace::record("request_total", started_us,
                        trace::now_us() - started_us);
          record_ms("eco_total", total_ms);
          record_request_ms(total_ms);
          (resp.ok ? jobs_completed_ : jobs_failed_).fetch_add(1);
          log::line(log::level::info, "request.done")
              .kv("conn", conn->id)
              .kv("type", "synth_delta")
              .kv("spec", req.base.spec)
              .kv("ok", resp.ok)
              .kv("retained", outcome.base_retained)
              .kv("ms", total_ms)
              .kv("trace_id", tid.valid() ? trace::to_hex(tid) : "");
          send(msg_type::result, encode_synth_response(resp));
          if (tid.valid() && !options_.trace_out_dir.empty()) {
            export_trace(options_.trace_out_dir, tid);
          }
          break;
        }
        case msg_type::status: {
          send(msg_type::status_ok, encode_server_status(status()));
          break;
        }
        case msg_type::cache_stats: {
          cache_stats_reply reply;
          reply.stats = runner_->cache_stats();
          reply.disk_directory = runner_->disk_cache_directory();
          send(msg_type::cache_stats_ok, encode_cache_stats(reply));
          break;
        }
        case msg_type::server_stats: {
          send(msg_type::server_stats_ok, encode_server_stats(stats()));
          break;
        }
        case msg_type::trace: {
          const trace_request req = decode_trace_request(f->payload);
          trace_reply reply;
          reply.trace_hi = req.trace_hi;
          reply.trace_lo = req.trace_lo;
          // Unknown/evicted ids answer with an empty span list rather than
          // an error: the collector is a bounded window by design.
          for (const trace::span& sp :
               trace::collected({req.trace_hi, req.trace_lo})) {
            reply.spans.push_back({sp.name, sp.start_us, sp.dur_us, sp.tid});
          }
          send(msg_type::trace_ok, encode_trace_reply(reply));
          break;
        }
        case msg_type::shutdown: {
          send(msg_type::shutdown_ok, {});
          {
            std::lock_guard<std::mutex> lock(mutex_);
            shutdown_requested_ = true;
          }
          shutdown_cv_.notify_all();
          break;
        }
        case msg_type::ping: {
          send(msg_type::pong, {});
          break;
        }
        default:
          send(msg_type::error,
               encode_error(error_code::bad_request,
                            "unknown request type " +
                                std::to_string(static_cast<unsigned>(f->type))));
          break;
      }
      if (!writable) break;  // response undeliverable: close, don't strand
    }
  } catch (const serialize_error& e) {
    log::line(log::level::warn, "conn.bad_request")
        .kv("conn", conn->id)
        .kv("error", e.what());
    send(msg_type::error, encode_error(error_code::bad_request, e.what()));
  } catch (const io_timeout_error& e) {
    // The peer stalled past the I/O deadline (or the idle timeout lapsed):
    // count it, tell the peer why if its socket still drains — the write
    // itself is under the same deadline via send() — and reclaim the
    // thread.  This is the slowloris defense: the handler is back in the
    // pool within ~io_timeout_ms of the stall, never pinned.
    io_timeouts_.fetch_add(1);
    log::line(log::level::warn, "conn.io_timeout")
        .kv("conn", conn->id)
        .kv("error", e.what());
    send(msg_type::error, encode_error(error_code::io_timeout, e.what()));
  } catch (const protocol_error& e) {
    log::line(log::level::warn, "conn.protocol_error")
        .kv("conn", conn->id)
        .kv("error", e.what());
    send(msg_type::error, encode_error(error_code::bad_request, e.what()));
  } catch (const std::exception& e) {
    log::line(log::level::error, "conn.internal_error")
        .kv("conn", conn->id)
        .kv("error", e.what());
    send(msg_type::error,
         encode_error(error_code::generic,
                      std::string("internal: ") + e.what()));
  }
  log::line(log::level::debug, "conn.close").kv("conn", conn->id);
  // Signal end-of-stream to the peer now; the fd itself is closed when the
  // connection object is reaped (next accept or stop()).
  ::shutdown(fd, SHUT_RDWR);
  conn->done.store(true);
}

void server::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // Another caller already drained (or is draining); nothing to do
      // beyond waking any wait_shutdown_requested() sleeper.
      shutdown_cv_.notify_all();
      return;
    }
    stopping_ = true;
  }
  shutdown_cv_.notify_all();

  // Wake the accept loops, then stop new reads on every connection.  SHUT_RD
  // only: a handler mid-request keeps its write half to finish the response
  // (the drain), then observes end-of-stream and exits.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (tcp_listen_fd_ >= 0) ::shutdown(tcp_listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (tcp_accept_thread_.joinable()) tcp_accept_thread_.join();
  close_quietly(listen_fd_);
  close_quietly(tcp_listen_fd_);

  std::vector<std::shared_ptr<connection>> to_join;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    to_join = connections_;
    connections_.clear();
  }
  for (const auto& conn : to_join) {
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RD);
  }
  for (const auto& conn : to_join) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  {
    // The joined handlers can no longer record; keep their samples.
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& conn : to_join) {
      conn->hist.merge_into(retired_hist_);
    }
  }
  if (!options_.socket_path.empty()) {
    ::unlink(options_.socket_path.c_str());
  }
}

void server::wait_shutdown_requested() {
  std::unique_lock<std::mutex> lock(mutex_);
  shutdown_cv_.wait(lock,
                    [this] { return shutdown_requested_ || stopping_; });
}

bool server::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shutdown_requested_;
}

void server::record_request_ms(double ms) {
  std::lock_guard<std::mutex> lock(request_hist_mutex_);
  request_hist_.record(ms);
}

std::uint32_t server::retry_after_hint_ms() const {
  // "Come back once the backlog ahead of you has plausibly drained": depth
  // of the admission queue times the recent median end-to-end latency.
  // Before any request has completed, fall back to a nominal warm-request
  // figure; clamp the product so one slow cold run cannot tell clients to
  // go away for an hour, and a zero-depth race never returns 0 (which the
  // wire format reserves for "no hint").
  double median_ms;
  {
    std::lock_guard<std::mutex> lock(request_hist_mutex_);
    median_ms = request_hist_.count() > 0 ? request_hist_.quantile_ms(0.5)
                                          : 25.0;
  }
  const std::size_t depth = admission_.snapshot().queue_depth;
  const double hint =
      std::max(1.0, static_cast<double>(depth)) * std::max(median_ms, 1.0);
  return static_cast<std::uint32_t>(std::clamp(hint, 10.0, 10000.0));
}

server_status server::status() const {
  server_status s;
  s.jobs_submitted = jobs_submitted_.load();
  s.jobs_completed = jobs_completed_.load();
  s.jobs_failed = jobs_failed_.load();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.active_connections = active_connections_locked();
  }
  s.worker_threads = runner_->num_threads();
  s.steals = runner_->steals();
  s.uptime_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_time_)
                   .count();
  return s;
}

server_stats_reply server::stats() const {
  server_stats_reply reply;
  reply.status = status();
  reply.cache = runner_->cache_stats();
  reply.disk_directory = runner_->disk_cache_directory();

  const admission_stats adm = admission_.snapshot();
  reply.accepted = adm.accepted;
  reply.rejected_overload = adm.rejected_overload;
  reply.rejected_deadline = adm.rejected_deadline;
  reply.rejected_auth = rejected_auth_.load();
  reply.rejected_conns = rejected_conns_.load();
  reply.peak_queue_depth = adm.peak_queue_depth;
  reply.queue_depth = static_cast<std::uint32_t>(adm.queue_depth);
  reply.inflight = static_cast<std::uint32_t>(adm.inflight);
  reply.max_queue = static_cast<std::uint32_t>(adm.max_queue);
  reply.max_inflight = static_cast<std::uint32_t>(adm.max_inflight);
  reply.max_conns = static_cast<std::uint32_t>(options_.max_conns);
  reply.runner_queue_depth = runner_->queue_depth();
  reply.eco_requests = eco_requests_.load();
  reply.eco_retained_hits = eco_retained_hits_.load();
  reply.eco_base_rebuilds = eco_base_rebuilds_.load();
  reply.eco_failures = eco_failures_.load();
  reply.io_timeouts = io_timeouts_.load();
  // Flight-recorder counters (process-global; see util/trace.hpp).
  reply.trace_spans_recorded = trace::spans_recorded();
  reply.trace_spans_dropped = trace::spans_dropped();
  // Fault-injection counters: all zero / empty outside chaos drills (the
  // registry is process-global; an armed schedule covers every layer).
  reply.fault_fired = fault::total_fired();
  for (const auto& s : fault::stats()) {
    reply.fault_sites.push_back({s.site, s.hits, s.fired});
  }

  // Merge-on-read: the retired set plus every live connection's recycled
  // per-worker histograms, none of which pay anything on the request path.
  histogram_set merged;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    retired_hist_.merge_into(merged);
    for (const auto& conn : connections_) {
      std::lock_guard<std::mutex> hist_lock(conn->hist_mutex);
      conn->hist.merge_into(merged);
    }
  }
  for (const auto& [name, hist] : merged.entries()) {
    histogram_snapshot snap;
    snap.name = name;
    snap.count = hist.count();
    snap.sum_ms = hist.sum_ms();
    snap.max_ms = hist.max_ms();
    snap.buckets.assign(hist.buckets().begin(), hist.buckets().end());
    reply.histograms.push_back(std::move(snap));
  }
  return reply;
}

}  // namespace xsfq::serve
