#include "serve/server.hpp"

#include <errno.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <utility>

#include "serve/synth_service.hpp"

namespace xsfq::serve {

namespace {

void close_quietly(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

/// One accepted connection: the fd plus its handler thread's lifecycle
/// bookkeeping (reaped opportunistically and on stop()).
struct server::connection {
  int fd = -1;
  std::thread thread;
  std::atomic<bool> done{false};

  ~connection() {
    int fd_copy = fd;
    close_quietly(fd_copy);
  }
};

server::server(server_options options) : options_(std::move(options)) {
  if (options_.socket_path.empty()) {
    throw std::runtime_error("serve: socket path must not be empty");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve: socket path too long: " +
                             options_.socket_path);
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  runner_ = std::make_unique<flow::batch_runner>(options_.threads);
  if (!options_.cache_dir.empty()) {
    runner_->set_disk_cache(options_.cache_dir, options_.max_disk_entries);
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("serve: socket failed: ") +
                             std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());  // stale socket from a prior run
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string what =
        std::string("serve: bind/listen failed on ") + options_.socket_path +
        ": " + std::strerror(errno);
    close_quietly(listen_fd_);
    throw std::runtime_error(what);
  }

  start_time_ = std::chrono::steady_clock::now();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

server::~server() { stop(); }

void server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (stop()) or fatal: exit the loop
    }
    auto conn = std::make_shared<connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        ::close(fd);
        conn->fd = -1;
        return;
      }
      reap_finished_locked();
      connections_.push_back(conn);
    }
    conn->thread =
        std::thread([this, conn] { handle_connection(conn); });
  }
}

void server::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void server::handle_connection(const std::shared_ptr<connection>& conn) {
  const int fd = conn->fd;
  bool writable = true;
  const auto send = [&](msg_type type,
                        const std::vector<std::uint8_t>& payload) {
    if (!writable) return;
    try {
      write_frame_fd(fd, type, payload);
    } catch (const protocol_error& e) {
      // An over-limit encode throws before any byte hits the wire, so the
      // stream is still clean — tell the client why before giving up.
      // Transport failures just mark the connection dead; either way the
      // handler closes below rather than leaving the client blocked on a
      // response that will never come.
      if (payload.size() > max_frame_payload) {
        try {
          write_frame_fd(fd, msg_type::error, encode_error(e.what()));
        } catch (const protocol_error&) {
        }
      }
      writable = false;
    }
  };

  try {
    for (;;) {
      std::optional<frame> f = read_frame_fd(fd);
      if (!f) break;  // clean end-of-stream (client closed, or drain)
      switch (f->type) {
        case msg_type::submit: {
          const synth_request req = decode_synth_request(f->payload);
          jobs_submitted_.fetch_add(1);
          // Progress events stream from the executing worker thread; every
          // event happens strictly before run_synth returns, so writes to
          // the socket never interleave with the result frame below.
          const auto progress = [&](const progress_event& ev) {
            if (req.stream_progress) {
              send(msg_type::progress, encode_progress_event(ev));
            }
          };
          const synth_response resp = run_synth(req, *runner_, progress);
          (resp.ok ? jobs_completed_ : jobs_failed_).fetch_add(1);
          send(msg_type::result, encode_synth_response(resp));
          break;
        }
        case msg_type::status: {
          send(msg_type::status_ok, encode_server_status(status()));
          break;
        }
        case msg_type::cache_stats: {
          cache_stats_reply reply;
          reply.stats = runner_->cache_stats();
          reply.disk_directory = runner_->disk_cache_directory();
          send(msg_type::cache_stats_ok, encode_cache_stats(reply));
          break;
        }
        case msg_type::shutdown: {
          send(msg_type::shutdown_ok, {});
          {
            std::lock_guard<std::mutex> lock(mutex_);
            shutdown_requested_ = true;
          }
          shutdown_cv_.notify_all();
          break;
        }
        case msg_type::ping: {
          send(msg_type::pong, {});
          break;
        }
        default:
          send(msg_type::error,
               encode_error("unknown request type " +
                            std::to_string(static_cast<unsigned>(f->type))));
          break;
      }
      if (!writable) break;  // response undeliverable: close, don't strand
    }
  } catch (const serialize_error& e) {
    send(msg_type::error, encode_error(e.what()));
  } catch (const protocol_error& e) {
    send(msg_type::error, encode_error(e.what()));
  } catch (const std::exception& e) {
    send(msg_type::error, encode_error(std::string("internal: ") + e.what()));
  }
  // Signal end-of-stream to the peer now; the fd itself is closed when the
  // connection object is reaped (next accept or stop()).
  ::shutdown(fd, SHUT_RDWR);
  conn->done.store(true);
}

void server::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // Another caller already drained (or is draining); nothing to do
      // beyond waking any wait_shutdown_requested() sleeper.
      shutdown_cv_.notify_all();
      return;
    }
    stopping_ = true;
  }
  shutdown_cv_.notify_all();

  // Wake the accept loop, then stop new reads on every connection.  SHUT_RD
  // only: a handler mid-request keeps its write half to finish the response
  // (the drain), then observes end-of-stream and exits.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  close_quietly(listen_fd_);

  std::vector<std::shared_ptr<connection>> to_join;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    to_join = connections_;
    connections_.clear();
  }
  for (const auto& conn : to_join) {
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RD);
  }
  for (const auto& conn : to_join) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  ::unlink(options_.socket_path.c_str());
}

void server::wait_shutdown_requested() {
  std::unique_lock<std::mutex> lock(mutex_);
  shutdown_cv_.wait(lock,
                    [this] { return shutdown_requested_ || stopping_; });
}

bool server::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shutdown_requested_;
}

server_status server::status() const {
  server_status s;
  s.jobs_submitted = jobs_submitted_.load();
  s.jobs_completed = jobs_completed_.load();
  s.jobs_failed = jobs_failed_.load();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t active = 0;
    for (const auto& conn : connections_) {
      if (!conn->done.load()) ++active;
    }
    s.active_connections = active;
  }
  s.worker_threads = runner_->num_threads();
  s.steals = runner_->steals();
  s.uptime_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_time_)
                   .count();
  return s;
}

}  // namespace xsfq::serve
