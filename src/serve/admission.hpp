#pragma once
/// \file admission.hpp
/// \brief Bounded, priority-ordered admission control for the serving path.
///
/// One `admission_queue` sits between the connection handlers and the
/// batch_runner: every `submit` must acquire a slot before it may dispatch
/// work.  At most `max_inflight` requests execute at once; up to `max_queue`
/// more wait in priority order (highest `priority` first, FIFO within a
/// priority); anything beyond that is rejected immediately with
/// `overloaded` instead of accepting unbounded work.  A waiting request
/// whose relative deadline passes before a slot frees is failed with
/// `deadline_expired` without ever reaching the worker pool.
///
/// The queue never touches the work itself — callers run their job between
/// acquire() and release() — so it composes with any executor.  All methods
/// are thread-safe; acquire() blocks the calling (connection-handler)
/// thread, which is exactly the backpressure a per-connection transport
/// wants.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <set>
#include <tuple>

namespace xsfq::serve {

/// Counters and gauges of one admission_queue, snapshot atomically.
struct admission_stats {
  std::uint64_t accepted = 0;           ///< acquire() calls that admitted
  std::uint64_t rejected_overload = 0;  ///< bounced: queue was full
  std::uint64_t rejected_deadline = 0;  ///< expired while waiting
  std::uint64_t peak_queue_depth = 0;   ///< high-water mark of waiters
  std::size_t queue_depth = 0;          ///< waiters right now
  std::size_t inflight = 0;             ///< admitted and not yet released
  std::size_t max_queue = 0;            ///< configured bound
  std::size_t max_inflight = 0;         ///< configured bound
};

class admission_queue {
 public:
  enum class verdict : std::uint8_t {
    admitted,          ///< caller owns a slot; must call release()
    overloaded,        ///< queue full at arrival; nothing to release
    deadline_expired,  ///< deadline passed while queued; nothing to release
  };

  /// Outcome of one acquire() call.  `queued_ms` is the wall-clock the
  /// request spent waiting for its slot (0 for an immediate admit).
  struct ticket {
    verdict outcome = verdict::overloaded;
    double queued_ms = 0.0;
  };

  /// \param max_queue     waiters allowed beyond the in-flight set; arrivals
  ///                      beyond it are bounced as overloaded.
  /// \param max_inflight  concurrently admitted requests (>= 1).
  admission_queue(std::size_t max_queue, std::size_t max_inflight);

  /// Blocks until a slot is free (priority-ordered), the deadline passes,
  /// or the queue bound rejects the request outright.  `priority` is
  /// 0..255, higher first; `deadline_ms` is relative to now, 0 = none.
  /// An admitted caller MUST call release() when its work finishes.
  [[nodiscard]] ticket acquire(unsigned priority, double deadline_ms);

  /// Returns an admitted slot; wakes the best waiting request, if any.
  void release();

  [[nodiscard]] admission_stats snapshot() const;

 private:
  // Waiters ordered best-first: highest priority, then earliest arrival.
  // (255 - priority, seq) ascending puts the next admit at begin().
  using waiter_key = std::tuple<unsigned, std::uint64_t>;

  mutable std::mutex mutex_;
  std::condition_variable slot_free_;
  std::set<waiter_key> waiters_;
  std::size_t inflight_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t max_queue_;
  std::size_t max_inflight_;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_overload_ = 0;
  std::uint64_t rejected_deadline_ = 0;
  std::uint64_t peak_queue_depth_ = 0;
};

}  // namespace xsfq::serve
