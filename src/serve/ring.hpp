#pragma once
/// \file ring.hpp
/// \brief Deterministic consistent-hash ring for fleet routing.
///
/// The fleet client places every request on a fixed ring keyed by the
/// circuit's `content_hash`, so the same circuit always lands on the same
/// daemon (maximizing that daemon's retained-network and result-cache hit
/// rates) and adding or removing a daemon only moves ~1/N of the keyspace.
/// Each endpoint contributes `vnodes` points to the ring; a request's owner
/// list is the next R *distinct* endpoints clockwise from the key's point.
///
/// Determinism contract: the ring is a pure function of the endpoint
/// identity strings and the vnode count.  Point hashes use FNV-1a plus a
/// splitmix64 finalizer — never std::hash, whose value is
/// implementation-defined — so two processes (e.g. the CI chaos driver
/// picking a kill victim via `xsfq_client --route`, and the fleet client
/// it later kills out from under) always agree on placement.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace xsfq::serve {

/// Immutable consistent-hash ring over a set of endpoint identity strings
/// (e.g. "unix:/tmp/a.sock", "tcp:127.0.0.1:9090").  Cheap to copy; all
/// queries are const and thread-safe after construction.
class consistent_ring {
 public:
  /// Builds the ring.  `endpoint_ids` order is irrelevant to placement
  /// (points are position-independent hashes of the id strings) but the
  /// returned owner indices refer to this vector.  Duplicate ids would
  /// make replica sets degenerate and throw std::invalid_argument, as
  /// does an empty endpoint list or zero vnodes.
  explicit consistent_ring(std::vector<std::string> endpoint_ids,
                           unsigned vnodes = 64);

  /// Number of endpoints on the ring.
  [[nodiscard]] std::size_t size() const { return ids_.size(); }

  /// Identity string of endpoint `index`.
  [[nodiscard]] const std::string& id(std::size_t index) const {
    return ids_[index];
  }

  /// Owner indices for `key` in preference order: the first R distinct
  /// endpoints clockwise from the key's ring position.  Returns
  /// min(replicas, size()) indices; replicas == 0 is treated as 1.
  [[nodiscard]] std::vector<std::size_t> route(std::uint64_t key,
                                               std::size_t replicas) const;

  /// The first owner for `key` (== route(key, 1)[0]).
  [[nodiscard]] std::size_t primary(std::uint64_t key) const;

  /// Ring position of a request key.  content_hash values are already
  /// well mixed, but the finalizer keeps weak keys (tests routing small
  /// integers) uniformly spread too.
  static std::uint64_t key_point(std::uint64_t key);

  /// Ring position of vnode `replica` of endpoint `id` (exposed for the
  /// placement-stability tests).
  static std::uint64_t endpoint_point(const std::string& id,
                                      unsigned replica);

 private:
  struct point {
    std::uint64_t position;  ///< location on the [0, 2^64) ring
    std::uint32_t owner;     ///< index into ids_
  };

  std::vector<std::string> ids_;
  std::vector<point> points_;  ///< sorted by position
};

}  // namespace xsfq::serve
