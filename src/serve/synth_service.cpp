#include "serve/synth_service.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "aig/edit.hpp"
#include "benchgen/registry.hpp"
#include "cells/cell_library.hpp"
#include "core/xsfq_writer.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/blif_io.hpp"
#include "util/fault.hpp"
#include "pulsesim/pulse_sim.hpp"

namespace xsfq::serve {

namespace {

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::invalid_argument("cannot open " + path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

std::string basename_without_extension(const std::string& path) {
  std::string model = path;
  if (const auto slash = model.find_last_of('/'); slash != std::string::npos) {
    model = model.substr(slash + 1);
  }
  if (const auto dot = model.find_last_of('.'); dot != std::string::npos) {
    model = model.substr(0, dot);
  }
  return model;
}

}  // namespace

synth_request make_request_for_spec(const std::string& spec) {
  synth_request req;
  req.spec = spec;
  if (spec.size() > 6 && spec.ends_with(".bench")) {
    req.source = circuit_source::bench_text;
    req.source_text = read_file(spec);
    // read_bench_file names the model after the file; inlined text must
    // reproduce that so served and local runs stay byte-identical.
    req.model = basename_without_extension(spec);
  } else if (spec.size() > 5 && spec.ends_with(".blif")) {
    req.source = circuit_source::blif_text;
    req.source_text = read_file(spec);
  }
  return req;
}

aig load_request_circuit(const synth_request& req) {
  switch (req.source) {
    case circuit_source::bench_text:
      return read_bench_string(req.source_text,
                               req.model.empty() ? "top" : req.model)
          .to_aig();
    case circuit_source::blif_text:
      return read_blif_string(req.source_text).to_aig();
    case circuit_source::registry:
    default:
      return benchgen::make_benchmark(req.spec);
  }
}

namespace {

/// The request's synthesis knobs as flow options — one translation, shared
/// by the submit path, the delta path, and the delta path's cache
/// supersession (drop_entry must key exactly what run_cached stored).
flow::flow_options options_for(const synth_request& req) {
  flow::flow_options options;
  options.map = req.map;
  // --validate also pins every optimize pass to its input with the wide
  // sim engine (the pulse-level check in run_synth_on covers mapping).
  options.opt.validate_passes = req.validate;
  // Intra-flow parallelism: the runner installs its own pool as the
  // partition executor when flow_jobs > 1.
  options.opt.flow_jobs = req.flow_jobs == 0 ? 1u : req.flow_jobs;
  // Fixed-grain region partitioning (v4): the shape that makes synth_delta
  // requests cheap.  The runner installs its cross-request region cache.
  options.opt.partition_grain = req.partition_grain;
  return options;
}

/// The shared back half of run_synth and run_synth_delta: synthesizes an
/// already-materialized network under the request's options and renders the
/// response.  Byte-identity between the submit and delta paths holds because
/// both funnel through here with nothing but the network differing.
synth_response run_synth_on(
    const synth_request& req, aig network, flow::batch_runner& runner,
    const std::function<void(const progress_event&)>& progress,
    bool force_full, bool inline_exec) {
  synth_response resp;
  try {
    std::ostringstream report;
    report << "loaded " << req.spec << ": " << network.num_pis() << " PI, "
           << network.num_pos() << " PO, " << network.num_registers()
           << " FF, " << network.num_gates() << " AIG nodes\n";

    const flow::flow_options options = options_for(req);
    resp.content_hash = network.content_hash();

    bool any_live_stage = false;
    bool any_stage = false;
    const flow::stage_observer observer =
        [&](const flow::stage_event& ev) {
          // Runs on the executing worker; all calls happen strictly before
          // the future below becomes ready, so these captures are safe.
          any_stage = true;
          if (!ev.from_cache) any_live_stage = true;
          if (progress) {
            progress({ev.stage, static_cast<std::uint32_t>(ev.index),
                      static_cast<std::uint32_t>(ev.total), ev.ms,
                      ev.counters, ev.from_cache});
          }
        };
    // Delta requests (inline_exec) run on the calling thread — the daemon's
    // connection handler — skipping the pool handoff entirely: two context
    // switches are real money against a sub-ms budget, and admission control
    // already bounds how many handlers synthesize at once.  Plain submits
    // keep the pool path.  Determinism makes the two execution modes
    // byte-identical; force_full is the ECO comparator, the identical flow
    // with every cache tier bypassed.
    std::shared_ptr<const flow::flow_result> shared;
    if (inline_exec) {
      shared = force_full
                   ? std::make_shared<const flow::flow_result>(
                         runner.run_uncached(std::move(network), req.spec,
                                             options, observer))
                   : runner.run_cached_shared(std::move(network), req.spec,
                                              options, observer);
    } else {
      shared = std::make_shared<const flow::flow_result>(
          force_full
              ? runner
                    .enqueue_job([&runner, network = std::move(network),
                                  spec = req.spec, options,
                                  observer]() mutable {
                      return runner.run_uncached(std::move(network), spec,
                                                 options, observer);
                    })
                    .get()
              : runner.enqueue(std::move(network), req.spec, options, observer)
                    .get());
    }
    const flow::flow_result& r = *shared;

    report << "optimized: " << r.opt_stats.initial_gates << " -> "
           << r.opt_stats.final_gates << " nodes (depth "
           << r.opt_stats.initial_depth << " -> " << r.opt_stats.final_depth
           << ")\n";
    report << "mapped:    " << summary_line(r.mapped.stats) << "\n";
    report << "baseline:  clocked RSFQ " << r.baseline.jj_without_clock
           << " JJ (" << r.baseline.jj_with_clock
           << " with clock tree) -> savings "
           << static_cast<double>(r.baseline.jj_without_clock) /
                  static_cast<double>(r.mapped.stats.jj)
           << "x\n";
    resp.report = report.str();
    resp.timings = r.timings;
    resp.total_ms = r.total_ms;
    resp.served_from_cache = any_stage && !any_live_stage;

    if (req.validate) {
      std::ostringstream validate;
      const bool seq_retimed =
          r.optimized.num_registers() > 0 &&
          req.map.reg_style == register_style::pair_retimed;
      if (seq_retimed) {
        validate << "validate:  (retimed sequential: structural checks only;"
                    " use --registers=boundary for cycle-exact validation)\n";
      } else {
        const bool ok =
            pulse_simulator::equivalent_to_aig(r.optimized, r.mapped, 32);
        validate << "validate:  pulse-level equivalence "
                 << (ok ? "PASS" : "FAIL") << "\n";
        resp.validate_ok = ok;
      }
      resp.validate_report = validate.str();
    }
    if (req.want_verilog) {
      resp.verilog = write_xsfq_verilog_string(r.mapped, req.spec);
    }
    if (req.want_dot) {
      resp.dot = write_xsfq_dot_string(r.mapped);
    }
    resp.ok = true;
  } catch (const std::exception& e) {
    resp.ok = false;
    resp.error = e.what();
  }
  return resp;
}

}  // namespace

synth_response run_synth(
    const synth_request& req, flow::batch_runner& runner,
    const std::function<void(const progress_event&)>& progress) {
  aig network;
  try {
    network = load_request_circuit(req);
  } catch (const std::exception& e) {
    synth_response resp;
    resp.ok = false;
    resp.error = e.what();
    return resp;
  }
  return run_synth_on(req, std::move(network), runner, progress,
                      /*force_full=*/false, /*inline_exec=*/false);
}

synth_response run_synth_delta(
    const synth_delta_request& req, flow::batch_runner& runner,
    const std::function<void(const progress_event&)>& progress,
    eco_outcome* outcome) {
  eco_outcome scratch;
  eco_outcome& out = outcome ? *outcome : scratch;

  // Chaos site: simulate the shard that can NEITHER find the base retained
  // NOR rebuild it — what a fleet client sees after failing over a chained
  // delta to a shard that never served the session.  Drives the client-side
  // full-resynthesis fallback in tests without needing a real second shard.
  if (fault::fire("serve.eco.unknown_base")) {
    throw service_error(error_code::unknown_base,
                        "injected unknown_base (serve.eco.unknown_base)");
  }

  // Locate the base: the retained tier is the fast path (no parse, no
  // registry build); a cold daemon re-materializes the base from the
  // request's own circuit spec and verifies it IS the named base.
  aig base;
  if (const auto retained = runner.retained_network(req.base_content_hash)) {
    base = *retained;
    out.base_retained = true;
  } else {
    try {
      base = load_request_circuit(req.base);
    } catch (const std::exception& e) {
      throw service_error(error_code::unknown_base,
                          "base network not retained and the request's "
                          "circuit cannot be loaded: " +
                              std::string(e.what()));
    }
    if (base.content_hash() != req.base_content_hash) {
      char hex[2 * sizeof(std::uint64_t) + 1];
      std::snprintf(hex, sizeof(hex), "%016llx",
                    static_cast<unsigned long long>(base.content_hash()));
      throw service_error(error_code::unknown_base,
                          "base network not retained and the request's "
                          "circuit hashes to " +
                              std::string(hex) +
                              ", not the named base hash");
    }
    out.base_rebuilt = true;
  }
  const std::size_t base_gates = base.num_gates();

  // Replay the edit in place.  Position-stable replay (aig/edit.hpp) keeps
  // untouched regions byte-identical, which is what the region cache keys
  // on; a malformed or illegal script is the client's error, typed.
  try {
    eco::apply_edit_text(base, req.edit_text);
  } catch (const eco::edit_error& e) {
    throw service_error(error_code::bad_edit, e.what());
  }

  synth_response resp =
      run_synth_on(req.base, std::move(base), runner, progress,
                   req.force_full, /*inline_exec=*/true);

  // Supersede: the interactive session has edited the base away, so its
  // cache entries (memory + disk) would never be requested again.  An empty
  // edit leaves the hash unchanged — dropping would evict the entry we just
  // served from.
  if (resp.ok && req.supersede_base &&
      resp.content_hash != req.base_content_hash) {
    runner.drop_entry(req.base_content_hash, base_gates, req.base.spec,
                      options_for(req.base));
  }
  return resp;
}

std::string format_timing_line(const std::vector<flow::stage_timing>& timings,
                               double total_ms) {
  std::ostringstream os;
  os << "timing:   ";
  for (const auto& st : timings) {
    os << " " << st.stage << " " << st.ms << " ms";
  }
  os << " (total " << total_ms << " ms)\n";
  return os.str();
}

std::string format_timing_csv(
    const std::vector<flow::stage_timing>& timings) {
  std::ostringstream os;
  os << "stage,ms,nodes,cuts,replacements,arena_bytes,sim_words,"
        "sim_node_evals,arena_peak_bytes,rebuilds_avoided\n";
  for (const auto& st : timings) {
    const auto& c = st.counters;
    os << st.stage << "," << st.ms << "," << c.nodes << "," << c.cuts << ","
       << c.replacements << "," << c.arena_bytes << "," << c.sim_words << ","
       << c.sim_node_evals << "," << c.arena_peak_bytes << ","
       << c.rebuilds_avoided << "\n";
  }
  return os.str();
}

std::string cli_value(const std::string& arg, const std::string& key) {
  if (arg.rfind(key + "=", 0) == 0) return arg.substr(key.size() + 1);
  return {};
}

cli_parse parse_synth_option(const std::string& arg, synth_cli_options& cli,
                             std::string& error) {
  if (auto v = cli_value(arg, "--polarity"); !v.empty()) {
    if (v == "direct") {
      cli.map.polarity = polarity_mode::direct_dual_rail;
    } else if (v == "positive") {
      cli.map.polarity = polarity_mode::positive_outputs;
    } else if (v == "optimized") {
      cli.map.polarity = polarity_mode::optimized;
    } else {
      // A typo must not synthesize (and cache) under options the user
      // never chose.
      error = "--polarity expects direct|positive|optimized, got: " + v;
      return cli_parse::invalid;
    }
  } else if (auto v2 = cli_value(arg, "--pipeline"); !v2.empty()) {
    char* end = nullptr;
    const unsigned long k = std::strtoul(v2.c_str(), &end, 10);
    if (end == v2.c_str() || *end != '\0' || k > 64) {
      error = "--pipeline expects a stage count 0..64, got: " + v2;
      return cli_parse::invalid;
    }
    cli.map.pipeline_stages = static_cast<unsigned>(k);
  } else if (auto v3 = cli_value(arg, "--registers"); !v3.empty()) {
    if (v3 == "boundary") {
      cli.map.reg_style = register_style::pair_boundary;
    } else if (v3 == "retimed") {
      cli.map.reg_style = register_style::pair_retimed;
    } else {
      error = "--registers expects boundary|retimed, got: " + v3;
      return cli_parse::invalid;
    }
  } else if (auto v4 = cli_value(arg, "--verilog"); !v4.empty()) {
    cli.verilog_path = v4;
  } else if (auto v5 = cli_value(arg, "--dot"); !v5.empty()) {
    cli.dot_path = v5;
  } else if (auto v6 = cli_value(arg, "--liberty"); !v6.empty()) {
    cli.liberty_path = v6;
  } else if (auto v7 = cli_value(arg, "--flow-jobs"); !v7.empty()) {
    char* end = nullptr;
    const unsigned long n = std::strtoul(v7.c_str(), &end, 10);
    if (end == v7.c_str() || *end != '\0' || n == 0 || n > 256) {
      error = "--flow-jobs expects a partition count 1..256, got: " + v7;
      return cli_parse::invalid;
    }
    cli.flow_jobs = static_cast<unsigned>(n);
  } else if (auto v8 = cli_value(arg, "--partition-grain"); !v8.empty()) {
    char* end = nullptr;
    const unsigned long n = std::strtoul(v8.c_str(), &end, 10);
    if (end == v8.c_str() || *end != '\0' || n > 100000) {
      error = "--partition-grain expects gates-per-region 0..100000, got: " +
              v8;
      return cli_parse::invalid;
    }
    cli.partition_grain = static_cast<unsigned>(n);
  } else if (arg == "--validate") {
    cli.validate = true;
  } else if (arg == "--timing") {
    cli.timing_csv = true;
  } else if (arg == "--no-timing") {
    cli.no_timing = true;
  } else if (arg == "--progress") {
    cli.progress = true;
  } else {
    return cli_parse::not_synth_option;
  }
  return cli_parse::consumed;
}

void apply_cli_options(const synth_cli_options& cli, synth_request& req) {
  req.map = cli.map;
  req.validate = cli.validate;
  req.want_verilog = !cli.verilog_path.empty();
  req.want_dot = !cli.dot_path.empty();
  req.flow_jobs = cli.flow_jobs;
  req.partition_grain = cli.partition_grain;
}

void print_progress_event(const progress_event& ev) {
  std::cerr << "stage " << ev.index + 1 << "/" << ev.total << " " << ev.stage
            << ": " << ev.ms << " ms" << (ev.from_cache ? " (cached)" : "")
            << "\n";
}

int render_synth_response(const synth_response& resp,
                          const synth_cli_options& cli) {
  if (!resp.ok) {
    std::cerr << "error: " << resp.error << "\n";
    return 1;
  }
  std::cout << resp.report;
  if (!cli.no_timing) {
    std::cout << format_timing_line(resp.timings, resp.total_ms);
  }
  if (cli.timing_csv) {
    std::cout << format_timing_csv(resp.timings);
  }
  std::cout << resp.validate_report;
  if (cli.validate && !resp.validate_ok) {
    return 1;  // never emit output files for a netlist that failed validation
  }
  if (!cli.verilog_path.empty()) {
    std::ofstream os(cli.verilog_path);
    os << resp.verilog;
    std::cout << "wrote " << cli.verilog_path << "\n";
  }
  if (!cli.dot_path.empty()) {
    std::ofstream os(cli.dot_path);
    os << resp.dot;
    std::cout << "wrote " << cli.dot_path << "\n";
  }
  if (!cli.liberty_path.empty()) {
    std::ofstream os(cli.liberty_path);
    os << cell_library::sfq5ee().to_liberty("xsfq_sfq5ee");
    std::cout << "wrote " << cli.liberty_path << "\n";
  }
  return 0;
}

// Baked in by the build system (CMake passes the working tree's short sha);
// fallbacks keep non-CMake builds (and tooling that compiles this file in
// isolation) compiling.
#ifndef XSFQ_VERSION
#define XSFQ_VERSION "dev"
#endif
#ifndef XSFQ_GIT_SHA
#define XSFQ_GIT_SHA "unknown"
#endif

std::string format_server_stats_text(const server_stats_reply& stats) {
  std::ostringstream os;
  const auto& st = stats.status;
  // The standard build-identity gauge: constant 1, identity in the labels,
  // so dashboards can join any series against the running version.
  os << "xsfq_build_info{version=\"" XSFQ_VERSION "\",git_sha=\"" XSFQ_GIT_SHA
        "\"} 1\n";
  os << "xsfq_uptime_seconds " << st.uptime_s << "\n"
     << "xsfq_worker_threads " << st.worker_threads << "\n"
     << "xsfq_active_connections " << st.active_connections << "\n"
     << "xsfq_jobs_submitted_total " << st.jobs_submitted << "\n"
     << "xsfq_jobs_completed_total " << st.jobs_completed << "\n"
     << "xsfq_jobs_failed_total " << st.jobs_failed << "\n"
     << "xsfq_steals_total " << st.steals << "\n";

  const auto& c = stats.cache;
  os << "xsfq_cache_hits_total{tier=\"full\"} " << c.full_hits << "\n"
     << "xsfq_cache_misses_total{tier=\"full\"} " << c.full_misses << "\n"
     << "xsfq_cache_hits_total{tier=\"opt\"} " << c.opt_hits << "\n"
     << "xsfq_cache_misses_total{tier=\"opt\"} " << c.opt_misses << "\n"
     << "xsfq_cache_hits_total{tier=\"disk\"} " << c.disk_hits << "\n"
     << "xsfq_cache_misses_total{tier=\"disk\"} " << c.disk_misses << "\n"
     << "xsfq_cache_disk_writes_total " << c.disk_writes << "\n"
     << "xsfq_cache_disk_quarantined_total " << c.disk_quarantined << "\n"
     << "xsfq_cache_disk_quarantine_pruned_total " << c.disk_quarantine_pruned
     << "\n"
     << "xsfq_cache_hits_total{tier=\"region\"} " << c.region_hits << "\n"
     << "xsfq_cache_misses_total{tier=\"region\"} " << c.region_misses
     << "\n";

  os << "xsfq_eco_requests_total " << stats.eco_requests << "\n"
     << "xsfq_eco_retained_hits_total " << stats.eco_retained_hits << "\n"
     << "xsfq_eco_base_rebuilds_total " << stats.eco_base_rebuilds << "\n"
     << "xsfq_eco_failures_total " << stats.eco_failures << "\n"
     << "xsfq_eco_patches_total " << c.eco_patches << "\n"
     << "xsfq_eco_retained_networks " << c.retained_networks << "\n"
     << "xsfq_eco_retained_evictions_total " << c.retained_evictions << "\n";

  os << "xsfq_admission_accepted_total " << stats.accepted << "\n"
     << "xsfq_admission_rejected_total{reason=\"overload\"} "
     << stats.rejected_overload << "\n"
     << "xsfq_admission_rejected_total{reason=\"deadline\"} "
     << stats.rejected_deadline << "\n"
     << "xsfq_rejected_total{reason=\"auth\"} " << stats.rejected_auth << "\n"
     << "xsfq_rejected_total{reason=\"connections\"} " << stats.rejected_conns
     << "\n"
     << "xsfq_admission_queue_depth " << stats.queue_depth << "\n"
     << "xsfq_admission_queue_depth_peak " << stats.peak_queue_depth << "\n"
     << "xsfq_admission_inflight " << stats.inflight << "\n"
     << "xsfq_admission_max_queue " << stats.max_queue << "\n"
     << "xsfq_admission_max_inflight " << stats.max_inflight << "\n"
     << "xsfq_max_connections " << stats.max_conns << "\n"
     << "xsfq_runner_queue_depth " << stats.runner_queue_depth << "\n";

  // v6 flight-recorder counters: spans written into the per-thread rings
  // and spans lost to ring-wrap or collector caps.  A growing dropped count
  // under normal load means the rings are undersized for the span rate.
  os << "xsfq_trace_spans_recorded_total " << stats.trace_spans_recorded
     << "\n"
     << "xsfq_trace_spans_dropped_total " << stats.trace_spans_dropped
     << "\n";

  // v5 robustness counters.  Per-site lines appear only during chaos
  // drills (the fault registry is empty otherwise), so a production scrape
  // carries no fault noise.
  os << "xsfq_io_timeouts_total " << stats.io_timeouts << "\n"
     << "xsfq_fault_fired_total " << stats.fault_fired << "\n";
  for (const auto& site : stats.fault_sites) {
    os << "xsfq_fault_hits{site=\"" << site.site << "\"} " << site.hits
       << "\n"
       << "xsfq_fault_fired{site=\"" << site.site << "\"} " << site.fired
       << "\n";
  }

  // Sparse cumulative exposition: only buckets that actually hold samples
  // get a line (28 log buckets x N histograms would mostly be zeros), then
  // the implicit +Inf bucket equals _count as Prometheus requires.
  for (const auto& h : stats.histograms) {
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      cumulative += h.buckets[i];
      os << "xsfq_latency_ms_bucket{name=\"" << h.name << "\",le=\""
         << log_histogram::bucket_upper_ms(i) << "\"} " << cumulative << "\n";
    }
    os << "xsfq_latency_ms_bucket{name=\"" << h.name << "\",le=\"+Inf\"} "
       << h.count << "\n"
       << "xsfq_latency_ms_sum{name=\"" << h.name << "\"} " << h.sum_ms << "\n"
       << "xsfq_latency_ms_count{name=\"" << h.name << "\"} " << h.count
       << "\n"
       << "xsfq_latency_ms_max{name=\"" << h.name << "\"} " << h.max_ms
       << "\n";
  }
  return os.str();
}

}  // namespace xsfq::serve
