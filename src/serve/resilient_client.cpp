/// \file resilient_client.cpp
/// \brief Retry/reconnect loop around the plain serve client.

#include "serve/resilient_client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace xsfq::serve {

namespace {

/// Attaches the calling thread's current trace id (when one is installed)
/// so retry noise can be correlated with the request it delayed.
log::line& with_trace(log::line& l) {
  const trace::trace_id id = trace::current();
  if (id.valid()) l.kv("trace_id", trace::to_hex(id));
  return l;
}

/// Whether a service-level rejection is worth retrying at all.  Load
/// shedding and lifecycle races clear up on their own; everything else
/// (bad_request, auth_failed, unknown_base, bad_edit, ...) indicts the
/// request or the credentials, which a retry cannot fix.
bool retryable_service_error(error_code code) {
  switch (code) {
    case error_code::overloaded:
    case error_code::too_many_connections:
    case error_code::shutting_down:
    case error_code::io_timeout:
      return true;
    default:
      return false;
  }
}

}  // namespace

resilient_client::resilient_client(endpoint ep, retry_policy policy)
    : endpoint_(std::move(ep)),
      policy_(policy),
      rng_state_(policy.seed) {}

resilient_client::~resilient_client() = default;

client& resilient_client::ensure_connected() {
  if (conn_) return *conn_;
  if (!endpoint_.socket_path.empty()) {
    conn_ = std::make_unique<client>(endpoint_.socket_path);
  } else {
    conn_ = std::make_unique<client>(endpoint_.host, endpoint_.port);
  }
  ++reconnects_;
  if (log::enabled(log::level::debug)) {
    log::line l(log::level::debug, "client.reconnect");
    with_trace(l)
        .kv("target", endpoint_.socket_path.empty()
                          ? endpoint_.host + ":" + std::to_string(endpoint_.port)
                          : endpoint_.socket_path)
        .kv("reconnects", reconnects_);
  }
  if (policy_.request_timeout_ms > 0) {
    conn_->set_receive_timeout_ms(policy_.request_timeout_ms);
  }
  if (!endpoint_.auth_token.empty()) {
    try {
      conn_->authenticate(endpoint_.auth_token);
    } catch (...) {
      // A half-authenticated connection must not linger as "live".
      conn_.reset();
      throw;
    }
  }
  return *conn_;
}

void resilient_client::drop_connection() { conn_.reset(); }

void resilient_client::backoff(unsigned attempt, std::uint32_t server_hint_ms) {
  // Capped exponential: initial * 2^attempt, saturating at max_backoff_ms.
  double ms = static_cast<double>(policy_.initial_backoff_ms);
  for (unsigned i = 0; i < attempt && ms < policy_.max_backoff_ms; ++i) {
    ms *= 2.0;
  }
  ms = std::min(ms, static_cast<double>(policy_.max_backoff_ms));
  if (policy_.jitter > 0.0) {
    // Deterministic jitter stream (seeded) so a drill replays identically;
    // ± jitter fraction around the nominal backoff.
    rng jitter_rng(rng_state_);
    rng_state_ = jitter_rng();  // advance the stream per sleep
    const double u = jitter_rng.uniform() * 2.0 - 1.0;  // [-1, 1)
    ms *= 1.0 + policy_.jitter * u;
  }
  // The server knows its backlog better than our exponential guess does.
  ms = std::max(ms, static_cast<double>(server_hint_ms));
  ++retries_;
  if (log::enabled(log::level::debug)) {
    log::line l(log::level::debug, "client.backoff");
    with_trace(l).kv("attempt", attempt).kv("sleep_ms", ms).kv(
        "server_hint_ms", server_hint_ms);
  }
  if (ms >= 1.0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<long>(ms)));
  }
}

template <typename Fn>
auto resilient_client::with_retries(Fn&& fn)
    -> decltype(fn(std::declval<client&>())) {
  unsigned attempt = 0;
  for (;;) {
    std::uint32_t hint_ms = 0;
    try {
      return fn(ensure_connected());
    } catch (const service_error& e) {
      if (!retryable_service_error(e.code) || attempt >= policy_.max_retries) {
        throw;
      }
      hint_ms = e.retry_after_ms;
      {
        log::line l(log::level::warn, "client.retry");
        with_trace(l)
            .kv("attempt", attempt + 1)
            .kv("reason", "service_error")
            .kv("code", static_cast<std::uint64_t>(e.code))
            .kv("what", e.what());
      }
      // Shedding errors keep the connection usable EXCEPT
      // too_many_connections/io_timeout, where the server closes it; a
      // fresh dial is correct in every case and costs one socket.
      drop_connection();
    } catch (const protocol_error& e) {
      // Transport/framing failure (daemon died mid-request, connection
      // reset, response timeout): the connection is poisoned.  Resubmitting
      // on a new one is idempotent — results are a pure function of the
      // request — so this is exactly the recovery path.
      if (attempt >= policy_.max_retries) throw;
      {
        log::line l(log::level::warn, "client.retry");
        with_trace(l)
            .kv("attempt", attempt + 1)
            .kv("reason", "transport")
            .kv("what", e.what());
      }
      drop_connection();
    } catch (const std::exception& e) {
      // Connect failures (daemon restarting: ECONNREFUSED, missing socket
      // file) arrive as std::runtime_error from the client constructor.
      if (attempt >= policy_.max_retries) throw;
      {
        log::line l(log::level::warn, "client.retry");
        with_trace(l)
            .kv("attempt", attempt + 1)
            .kv("reason", "connect")
            .kv("what", e.what());
      }
      drop_connection();
    }
    backoff(attempt, hint_ms);
    ++attempt;
  }
}

synth_response resilient_client::submit(const synth_request& req,
                                        const client::progress_fn& progress) {
  return with_retries(
      [&](client& c) { return c.submit(req, progress); });
}

synth_response resilient_client::submit_delta(
    const synth_delta_request& req, const client::progress_fn& progress) {
  return with_retries(
      [&](client& c) { return c.submit_delta(req, progress); });
}

server_status resilient_client::status() {
  return with_retries([](client& c) { return c.status(); });
}

cache_stats_reply resilient_client::cache_stats() {
  return with_retries([](client& c) { return c.cache_stats(); });
}

server_stats_reply resilient_client::server_stats() {
  return with_retries([](client& c) { return c.server_stats(); });
}

trace_reply resilient_client::trace(const trace_request& req) {
  return with_retries([&](client& c) { return c.trace(req); });
}

bool resilient_client::ping() {
  try {
    return with_retries([](client& c) { return c.ping(); });
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace xsfq::serve
