#include "serve/ring.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace xsfq::serve {

namespace {

/// splitmix64 finalizer: full-avalanche mix of a 64-bit value.  The ring
/// must hash identically in every process, so everything below is spelled
/// out rather than delegated to std::hash.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// FNV-1a over the id bytes — stable across platforms and runs.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

std::uint64_t consistent_ring::key_point(std::uint64_t key) {
  return mix64(key);
}

std::uint64_t consistent_ring::endpoint_point(const std::string& id,
                                              unsigned replica) {
  return mix64(fnv1a(id) ^ (0xA24BAED4963EE407ull * (replica + 1)));
}

consistent_ring::consistent_ring(std::vector<std::string> endpoint_ids,
                                 unsigned vnodes)
    : ids_(std::move(endpoint_ids)) {
  if (ids_.empty()) {
    throw std::invalid_argument("consistent_ring: no endpoints");
  }
  if (vnodes == 0) {
    throw std::invalid_argument("consistent_ring: vnodes must be > 0");
  }
  std::unordered_set<std::string> seen;
  for (const std::string& id : ids_) {
    if (!seen.insert(id).second) {
      throw std::invalid_argument("consistent_ring: duplicate endpoint " + id);
    }
  }
  points_.reserve(ids_.size() * vnodes);
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    for (unsigned v = 0; v < vnodes; ++v) {
      points_.push_back({endpoint_point(ids_[i], v),
                         static_cast<std::uint32_t>(i)});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const point& a, const point& b) {
              // Position ties (astronomically unlikely) break on owner so
              // the sort — and therefore placement — is fully determined.
              return a.position != b.position ? a.position < b.position
                                              : a.owner < b.owner;
            });
}

std::vector<std::size_t> consistent_ring::route(std::uint64_t key,
                                                std::size_t replicas) const {
  const std::size_t want = std::min(std::max<std::size_t>(replicas, 1),
                                    ids_.size());
  const std::uint64_t pos = key_point(key);
  auto it = std::lower_bound(points_.begin(), points_.end(), pos,
                             [](const point& p, std::uint64_t value) {
                               return p.position < value;
                             });
  std::vector<std::size_t> owners;
  owners.reserve(want);
  std::vector<bool> taken(ids_.size(), false);
  for (std::size_t walked = 0; walked < points_.size() && owners.size() < want;
       ++walked) {
    if (it == points_.end()) it = points_.begin();
    if (!taken[it->owner]) {
      taken[it->owner] = true;
      owners.push_back(it->owner);
    }
    ++it;
  }
  return owners;
}

std::size_t consistent_ring::primary(std::uint64_t key) const {
  return route(key, 1).front();
}

}  // namespace xsfq::serve
