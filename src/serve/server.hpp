#pragma once
/// \file server.hpp
/// \brief The synthesis-as-a-service daemon core (xsfq_served's engine).
///
/// One `server` owns one long-lived flow::batch_runner — the work-stealing
/// pool plus every result-cache tier, including the optional disk-persistent
/// one — behind up to two listening sockets speaking the serve protocol: a
/// Unix-domain socket (local clients, trusted by file permissions) and an
/// optional TCP listener (`listen_address`, remote fleets).  TCP
/// connections must present the shared-secret auth token (constant-time
/// compare) before any request when a token is configured.
///
/// Each accepted connection gets a handler thread, capped at `max_conns`
/// (excess connections receive a typed `too_many_connections` error and are
/// closed before a thread is spawned).  Submits pass the bounded
/// priority/deadline admission queue (serve/admission.hpp) and then
/// multiplex onto the shared pool through batch_runner::enqueue, so N
/// clients synthesizing concurrently share workers, de-duplicate identical
/// in-flight optimize stages through the shared-future tier, and hit each
/// other's cached results.  Per-request latencies (queue wait, each flow
/// stage, end-to-end) are recorded into per-connection log-bucket
/// histograms, recycled across requests and merged only when a
/// `server_stats` scrape asks.
///
/// Shutdown is a drain, triggered either by stop() (the daemon calls it on
/// SIGINT/SIGTERM) or by a client's `shutdown` request: the listeners
/// close, idle connections see end-of-stream, handlers mid-request (queued
/// or executing) finish the request and write the response, every handler
/// thread is joined, and disk cache writes — which are synchronous and
/// atomic — are already on disk.
///
/// Thread-safety: every public method is safe to call from any thread;
/// stop() is idempotent.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "flow/batch_runner.hpp"
#include "serve/admission.hpp"
#include "serve/protocol.hpp"
#include "util/histogram.hpp"

namespace xsfq::serve {

struct server_options {
  std::string socket_path;     ///< Unix-domain listener; empty disables it
  /// TCP listener as "host:port" (e.g. "127.0.0.1:7341", "0.0.0.0:0" for an
  /// ephemeral port — read it back via tcp_port()).  Empty disables TCP.
  std::string listen_address;
  /// Shared secret TCP clients must present in an `auth` frame before any
  /// request.  Empty = no auth (Unix-socket-only deployments).  The Unix
  /// listener never requires auth; its trust boundary is file permissions.
  std::string auth_token;
  unsigned threads = 0;        ///< runner workers; 0 = hardware concurrency
  std::string cache_dir;       ///< empty disables the disk-persistent tier
  std::size_t max_disk_entries = 1024;
  /// v7: byte budget of the ECO retained-network LRU (xsfq_served
  /// --retained-bytes).  Evictions surface as retained_evictions in
  /// server_stats.
  std::size_t retained_bytes = 256u << 20;
  std::size_t max_queue = 64;     ///< admission waiters before shedding
  std::size_t max_inflight = 0;   ///< concurrent submits; 0 = worker count
  std::size_t max_conns = 256;    ///< concurrent connections before bouncing
  /// Per-connection I/O deadline in ms (<= 0 disables).  Bounds every read
  /// once a frame has started arriving and every write: a peer that stalls
  /// mid-frame or stops draining its socket (slowloris) gets a typed
  /// `io_timeout` error and its handler thread back within this bound,
  /// instead of pinning the thread forever.
  int io_timeout_ms = 30000;
  /// How long a connection may sit idle BETWEEN frames before it is closed
  /// (<= 0 = forever).  Separate from io_timeout_ms because an idle
  /// keep-alive connection is legitimate for much longer than a stall in
  /// the middle of a frame.
  int idle_timeout_ms = 0;
  /// v6: when non-empty, every traced request (non-zero trace_id) writes its
  /// collected span set as Chrome trace-event JSON to
  /// `<trace_out_dir>/trace_<id>.json` after the result is sent.  The
  /// directory must exist; write failures are logged, never fatal.
  std::string trace_out_dir;
};

class server {
 public:
  /// Binds, listens, and starts accepting on every configured transport.  A
  /// stale Unix socket file at the path is removed first.  Throws
  /// std::runtime_error on bind/listen failure.
  explicit server(server_options options);
  ~server();
  server(const server&) = delete;
  server& operator=(const server&) = delete;

  /// Graceful drain; idempotent.  Returns after every connection handler
  /// has finished and joined (queued submits run to completion first).
  void stop();

  /// Blocks until a client sends a `shutdown` request or stop() is called.
  void wait_shutdown_requested();
  [[nodiscard]] bool shutdown_requested() const;

  /// The TCP listener's bound port (useful with an ephemeral ":0" bind), or
  /// 0 when TCP is disabled.
  [[nodiscard]] std::uint16_t tcp_port() const { return tcp_port_; }

  [[nodiscard]] flow::batch_runner& runner() { return *runner_; }
  [[nodiscard]] const server_options& options() const { return options_; }
  /// v2 status gauges (jobs, connections, workers, uptime).
  [[nodiscard]] server_status status() const;
  /// The full v3 metrics scrape: status + cache tiers + admission counters
  /// + latency histograms merged across live and retired connections.
  [[nodiscard]] server_stats_reply stats() const;

 private:
  struct connection;

  void accept_loop(int listen_fd, bool is_tcp);
  void handle_connection(const std::shared_ptr<connection>& conn);
  void reap_finished_locked();
  std::size_t active_connections_locked() const;
  /// Backoff hint for overloaded/too_many_connections errors: queue depth ×
  /// the recent request_total median (clamped to a sane window), i.e. "how
  /// long until the backlog ahead of you plausibly drains".
  std::uint32_t retry_after_hint_ms() const;
  void record_request_ms(double ms);

  server_options options_;
  std::unique_ptr<flow::batch_runner> runner_;
  admission_queue admission_;
  int listen_fd_ = -1;      ///< Unix-domain listener (-1 when disabled)
  int tcp_listen_fd_ = -1;  ///< TCP listener (-1 when disabled)
  std::uint16_t tcp_port_ = 0;
  std::thread accept_thread_;
  std::thread tcp_accept_thread_;

  mutable std::mutex mutex_;
  std::condition_variable shutdown_cv_;
  bool stopping_ = false;
  bool shutdown_requested_ = false;
  std::vector<std::shared_ptr<connection>> connections_;
  /// Histograms of reaped connections, merged in under mutex_ so their
  /// samples survive the connection objects.
  histogram_set retired_hist_;

  /// Server-wide copy of every request's end-to-end latency, kept separate
  /// from the per-connection scrape histograms so retry_after_hint_ms() can
  /// read a median without merging the whole histogram set per rejection.
  mutable std::mutex request_hist_mutex_;
  log_histogram request_hist_;

  std::atomic<std::uint64_t> jobs_submitted_{0};
  std::atomic<std::uint64_t> jobs_completed_{0};
  std::atomic<std::uint64_t> jobs_failed_{0};
  std::atomic<std::uint64_t> rejected_auth_{0};
  std::atomic<std::uint64_t> rejected_conns_{0};
  std::atomic<std::uint64_t> io_timeouts_{0};  ///< connections dropped at a
                                               ///< read/write deadline (v5)
  // v4 incremental-resynthesis (synth_delta) outcome counters.
  std::atomic<std::uint64_t> eco_requests_{0};
  std::atomic<std::uint64_t> eco_retained_hits_{0};
  std::atomic<std::uint64_t> eco_base_rebuilds_{0};
  std::atomic<std::uint64_t> eco_failures_{0};
  /// Monotonic connection id, only for correlating log lines.
  std::atomic<std::uint64_t> next_conn_id_{1};
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace xsfq::serve
