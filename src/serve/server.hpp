#pragma once
/// \file server.hpp
/// \brief The synthesis-as-a-service daemon core (xsfq_served's engine).
///
/// One `server` owns one long-lived flow::batch_runner — the work-stealing
/// pool plus every result-cache tier, including the optional disk-persistent
/// one — and a Unix-domain listening socket speaking the serve protocol.
/// Each accepted connection gets a handler thread; submits multiplex onto
/// the shared pool through batch_runner::enqueue, so N clients synthesizing
/// concurrently share workers, de-duplicate identical in-flight optimize
/// stages through the shared-future tier, and hit each other's cached
/// results.
///
/// Shutdown is a drain, triggered either by stop() (the daemon calls it on
/// SIGINT/SIGTERM) or by a client's `shutdown` request: the listener closes,
/// idle connections see end-of-stream, handlers mid-request finish the
/// request and write the response, every handler thread is joined, and disk
/// cache writes — which are synchronous and atomic — are already on disk.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "flow/batch_runner.hpp"
#include "serve/protocol.hpp"

namespace xsfq::serve {

struct server_options {
  std::string socket_path;
  unsigned threads = 0;        ///< runner workers; 0 = hardware concurrency
  std::string cache_dir;       ///< empty disables the disk-persistent tier
  std::size_t max_disk_entries = 1024;
};

class server {
 public:
  /// Binds, listens, and starts accepting.  A stale socket file at the path
  /// is removed first.  Throws std::runtime_error on bind/listen failure.
  explicit server(server_options options);
  ~server();
  server(const server&) = delete;
  server& operator=(const server&) = delete;

  /// Graceful drain; idempotent.  Returns after every connection handler
  /// has finished and joined.
  void stop();

  /// Blocks until a client sends a `shutdown` request or stop() is called.
  void wait_shutdown_requested();
  [[nodiscard]] bool shutdown_requested() const;

  [[nodiscard]] flow::batch_runner& runner() { return *runner_; }
  [[nodiscard]] const server_options& options() const { return options_; }
  [[nodiscard]] server_status status() const;

 private:
  struct connection;

  void accept_loop();
  void handle_connection(const std::shared_ptr<connection>& conn);
  void reap_finished_locked();

  server_options options_;
  std::unique_ptr<flow::batch_runner> runner_;
  int listen_fd_ = -1;
  std::thread accept_thread_;

  mutable std::mutex mutex_;
  std::condition_variable shutdown_cv_;
  bool stopping_ = false;
  bool shutdown_requested_ = false;
  std::vector<std::shared_ptr<connection>> connections_;

  std::atomic<std::uint64_t> jobs_submitted_{0};
  std::atomic<std::uint64_t> jobs_completed_{0};
  std::atomic<std::uint64_t> jobs_failed_{0};
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace xsfq::serve
