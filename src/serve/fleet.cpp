/// \file fleet.cpp
/// \brief Sharded fleet client: routing, health, failover, hedging, stats.

#include "serve/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <utility>

#include "aig/edit.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/netlist.hpp"
#include "serve/synth_service.hpp"
#include "util/fault.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace xsfq::serve {

namespace {

using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point start) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - start)
      .count();
}

/// Same classification resilient_client uses: shedding and lifecycle races
/// are worth another attempt (on another shard, here); everything else
/// indicts the request.
bool retryable_service_error(error_code code) {
  switch (code) {
    case error_code::overloaded:
    case error_code::too_many_connections:
    case error_code::shutting_down:
    case error_code::io_timeout:
      return true;
    default:
      return false;
  }
}

void merge_status(server_status& into, const server_status& from) {
  into.jobs_submitted += from.jobs_submitted;
  into.jobs_completed += from.jobs_completed;
  into.jobs_failed += from.jobs_failed;
  into.active_connections += from.active_connections;
  into.worker_threads += from.worker_threads;
  into.steals += from.steals;
  // Fleet uptime = the longest-lived member (restarted shards report less).
  into.uptime_s = std::max(into.uptime_s, from.uptime_s);
}

void merge_cache(flow::batch_cache_stats& into,
                 const flow::batch_cache_stats& from) {
  into.full_hits += from.full_hits;
  into.full_misses += from.full_misses;
  into.opt_hits += from.opt_hits;
  into.opt_misses += from.opt_misses;
  into.disk_hits += from.disk_hits;
  into.disk_misses += from.disk_misses;
  into.disk_writes += from.disk_writes;
  into.disk_quarantined += from.disk_quarantined;
  into.disk_quarantine_pruned += from.disk_quarantine_pruned;
  into.region_hits += from.region_hits;
  into.region_misses += from.region_misses;
  into.eco_patches += from.eco_patches;
  into.retained_networks += from.retained_networks;
  into.retained_evictions += from.retained_evictions;
}

void merge_stats(server_stats_reply& into, const server_stats_reply& from) {
  merge_status(into.status, from.status);
  merge_cache(into.cache, from.cache);
  if (into.disk_directory.empty()) into.disk_directory = from.disk_directory;
  into.accepted += from.accepted;
  into.rejected_overload += from.rejected_overload;
  into.rejected_deadline += from.rejected_deadline;
  into.rejected_auth += from.rejected_auth;
  into.rejected_conns += from.rejected_conns;
  into.peak_queue_depth += from.peak_queue_depth;
  into.queue_depth += from.queue_depth;
  into.inflight += from.inflight;
  // Capacity gauges sum to total fleet capacity.
  into.max_queue += from.max_queue;
  into.max_inflight += from.max_inflight;
  into.max_conns += from.max_conns;
  into.runner_queue_depth += from.runner_queue_depth;
  into.eco_requests += from.eco_requests;
  into.eco_retained_hits += from.eco_retained_hits;
  into.eco_base_rebuilds += from.eco_base_rebuilds;
  into.eco_failures += from.eco_failures;
  into.io_timeouts += from.io_timeouts;
  into.fault_fired += from.fault_fired;
  into.trace_spans_recorded += from.trace_spans_recorded;
  into.trace_spans_dropped += from.trace_spans_dropped;
  for (const fault_site_snapshot& site : from.fault_sites) {
    auto it = std::find_if(into.fault_sites.begin(), into.fault_sites.end(),
                           [&](const fault_site_snapshot& s) {
                             return s.site == site.site;
                           });
    if (it == into.fault_sites.end()) {
      into.fault_sites.push_back(site);
    } else {
      it->hits += site.hits;
      it->fired += site.fired;
    }
  }
  for (const histogram_snapshot& h : from.histograms) {
    auto it = std::find_if(into.histograms.begin(), into.histograms.end(),
                           [&](const histogram_snapshot& s) {
                             return s.name == h.name;
                           });
    if (it == into.histograms.end()) {
      into.histograms.push_back(h);
      continue;
    }
    it->count += h.count;
    it->sum_ms += h.sum_ms;
    it->max_ms = std::max(it->max_ms, h.max_ms);
    if (it->buckets.size() < h.buckets.size()) {
      it->buckets.resize(h.buckets.size(), 0);
    }
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      it->buckets[i] += h.buckets[i];
    }
  }
}

}  // namespace

const char* to_string(endpoint_health h) {
  switch (h) {
    case endpoint_health::healthy: return "healthy";
    case endpoint_health::suspect: return "suspect";
    case endpoint_health::down: return "down";
    case endpoint_health::probing: return "probing";
  }
  return "unknown";
}

/// One fleet member: the endpoint description, its (lazily dialed)
/// connection, and the health state machine this client maintains for it.
struct fleet_client::shard {
  endpoint ep;
  std::string id;
  std::unique_ptr<client> conn;
  endpoint_health health = endpoint_health::healthy;
  std::uint32_t consecutive_failures = 0;
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;
  std::uint64_t probes = 0;
  std::uint64_t probe_failures = 0;
  clock_type::time_point next_probe{};  ///< meaningful while non-healthy
};

std::string fleet_client::endpoint_id(const endpoint& ep) {
  if (!ep.socket_path.empty()) return "unix:" + ep.socket_path;
  return "tcp:" + ep.host + ":" + std::to_string(ep.port);
}

namespace {
std::vector<std::string> make_ids(const std::vector<endpoint>& endpoints) {
  std::vector<std::string> ids;
  ids.reserve(endpoints.size());
  for (const endpoint& ep : endpoints) {
    ids.push_back(fleet_client::endpoint_id(ep));
  }
  return ids;
}
}  // namespace

fleet_client::fleet_client(std::vector<endpoint> endpoints,
                           fleet_options options)
    : options_(options),
      ring_(make_ids(endpoints), options.vnodes),
      rng_state_(options.policy.seed) {
  shards_.reserve(endpoints.size());
  for (endpoint& ep : endpoints) {
    auto sh = std::make_unique<shard>();
    sh->id = endpoint_id(ep);
    sh->ep = std::move(ep);
    shards_.push_back(std::move(sh));
  }
}

fleet_client::~fleet_client() = default;

std::size_t fleet_client::size() const { return shards_.size(); }

std::uint64_t fleet_client::routing_key(const synth_request& req) {
  try {
    return load_request_circuit(req).content_hash();
  } catch (const std::exception&) {
    // Unloadable circuit: the daemon will reject it with a typed error, but
    // it must still route deterministically (same shard every retry).
    std::uint64_t h = hash_mix(0x1eefu, static_cast<std::uint64_t>(req.source));
    h = hash_mix_str(h, req.spec);
    h = hash_mix_str(h, req.source_text);
    h = hash_mix_str(h, req.model);
    return h;
  }
}

std::vector<std::string> fleet_client::owners_for(std::uint64_t key) const {
  std::vector<std::string> ids;
  for (const std::size_t owner : ring_.route(key, options_.replicas)) {
    ids.push_back(ring_.id(owner));
  }
  return ids;
}

client& fleet_client::shard_connection(shard& sh) {
  if (sh.conn) return *sh.conn;
  std::unique_ptr<client> conn;
  if (!sh.ep.socket_path.empty()) {
    conn = std::make_unique<client>(sh.ep.socket_path);
  } else {
    conn = std::make_unique<client>(sh.ep.host, sh.ep.port);
  }
  if (!sh.ep.auth_token.empty()) {
    conn->authenticate(sh.ep.auth_token);
  }
  sh.conn = std::move(conn);
  return *sh.conn;
}

void fleet_client::mark_transport_failure(shard& sh) {
  ++sh.failures;
  ++sh.consecutive_failures;
  if (sh.health == endpoint_health::probing ||
      sh.consecutive_failures >= options_.down_after) {
    sh.health = endpoint_health::down;
  } else {
    sh.health = endpoint_health::suspect;
  }
  schedule_probe(sh);
}

void fleet_client::mark_success(shard& sh) {
  sh.consecutive_failures = 0;
  sh.health = endpoint_health::healthy;
}

void fleet_client::schedule_probe(shard& sh) {
  // Seeded-jitter probe interval (±policy.jitter), decorrelating a fleet of
  // clients that all watched the same shard die.
  double ms = static_cast<double>(options_.probe_interval_ms);
  if (options_.policy.jitter > 0.0) {
    rng jitter_rng(rng_state_);
    rng_state_ = jitter_rng();
    const double u = jitter_rng.uniform() * 2.0 - 1.0;  // [-1, 1)
    ms *= 1.0 + options_.policy.jitter * u;
  }
  sh.next_probe =
      clock_type::now() + std::chrono::milliseconds(
                              static_cast<long>(std::max(ms, 1.0)));
}

void fleet_client::run_due_probes() {
  const auto now = clock_type::now();
  for (const std::unique_ptr<shard>& sp : shards_) {
    shard& sh = *sp;
    if (sh.health == endpoint_health::healthy || now < sh.next_probe) {
      continue;
    }
    ++counters_.probes;
    ++sh.probes;
    bool ok = false;
    if (!fault::fire("fleet.probe.fail")) {
      try {
        sh.conn.reset();  // probe on a fresh dial: the old socket is suspect
        ok = shard_connection(sh).ping();
      } catch (const std::exception&) {
        ok = false;
      }
    }
    if (ok) {
      // down → probing (traffic allowed again; one real success completes
      // recovery), anything milder → healthy.
      sh.health = sh.health == endpoint_health::down
                      ? endpoint_health::probing
                      : endpoint_health::healthy;
      sh.consecutive_failures = 0;
      if (log::enabled(log::level::info)) {
        log::line(log::level::info, "fleet.probe.ok")
            .kv("endpoint", sh.id)
            .kv("health", to_string(sh.health));
      }
    } else {
      ++counters_.probe_failures;
      ++sh.probe_failures;
      sh.conn.reset();
      sh.health = endpoint_health::down;
      if (log::enabled(log::level::debug)) {
        log::line(log::level::debug, "fleet.probe.fail")
            .kv("endpoint", sh.id)
            .kv("probe_failures", sh.probe_failures);
      }
    }
    schedule_probe(sh);
  }
}

void fleet_client::backoff(unsigned sweep, std::uint32_t server_hint_ms) {
  double ms = static_cast<double>(options_.policy.initial_backoff_ms);
  for (unsigned i = 0; i < sweep && ms < options_.policy.max_backoff_ms; ++i) {
    ms *= 2.0;
  }
  ms = std::min(ms, static_cast<double>(options_.policy.max_backoff_ms));
  if (options_.policy.jitter > 0.0) {
    rng jitter_rng(rng_state_);
    rng_state_ = jitter_rng();
    const double u = jitter_rng.uniform() * 2.0 - 1.0;
    ms *= 1.0 + options_.policy.jitter * u;
  }
  ms = std::max(ms, static_cast<double>(server_hint_ms));
  if (ms >= 1.0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<long>(ms)));
  }
}

double fleet_client::hedge_deadline_ms() const {
  if (options_.hedge_quantile <= 0.0 || shards_.size() < 2 ||
      latency_.count() < options_.hedge_min_samples) {
    return 0.0;
  }
  const double q = latency_.quantile_ms(options_.hedge_quantile);
  double deadline =
      std::max(options_.hedge_floor_ms, q * options_.hedge_multiplier);
  if (options_.policy.request_timeout_ms > 0) {
    deadline = std::min(
        deadline, static_cast<double>(options_.policy.request_timeout_ms));
  }
  return deadline;
}

void fleet_client::record_latency(double ms) { latency_.record(ms); }

template <typename Fn>
synth_response fleet_client::with_failover(std::uint64_t key, Fn&& send) {
  ++counters_.requests;
  const std::vector<std::size_t> owners = ring_.route(key, options_.replicas);
  bool hedge_pending = false;
  std::uint64_t attempt_index = 0;
  std::exception_ptr last_error;
  for (unsigned sweep = 0; sweep <= options_.policy.max_retries; ++sweep) {
    run_due_probes();
    // Down endpoints are skipped — unless every owner is down, where trying
    // anyway beats failing without a single packet sent.
    bool all_down = true;
    for (const std::size_t o : owners) {
      if (shards_[o]->health != endpoint_health::down) {
        all_down = false;
        break;
      }
    }
    std::uint32_t sweep_hint_ms = 0;
    for (const std::size_t o : owners) {
      shard& sh = *shards_[o];
      if (sh.health == endpoint_health::down && !all_down) continue;
      // The first attempt of a request runs under the adaptive hedge
      // deadline (when armed); a request stuck past it is abandoned and
      // re-sent to the next replica.  The slow shard finishes and caches
      // the byte-identical result on its own time.
      const double hedge_ms = attempt_index == 0 ? hedge_deadline_ms() : 0.0;
      ++attempt_index;
      const char* reason = nullptr;
      try {
        if (fault::fire("fleet.route.down")) {
          throw protocol_error("injected endpoint failure (fleet.route.down)");
        }
        client& c = shard_connection(sh);
        int timeout_ms = options_.policy.request_timeout_ms;
        if (hedge_ms > 0.0) {
          timeout_ms = std::max(1, static_cast<int>(std::ceil(hedge_ms)));
        }
        c.set_receive_timeout_ms(timeout_ms);
        ++sh.requests;
        const auto start = clock_type::now();
        synth_response r = send(c);
        record_latency(ms_since(start));
        mark_success(sh);
        if (hedge_pending) ++counters_.hedge_wins;
        return r;
      } catch (const service_error& e) {
        last_error = std::current_exception();
        if (!retryable_service_error(e.code)) throw;
        // The shard is shedding load (or draining) — alive, just busy, so
        // this is not a health event.  retry_after_ms means "not me, not
        // now": route to the next replica immediately and only honor the
        // hint if the whole sweep comes up empty.
        ++sh.failures;
        sweep_hint_ms = std::max(sweep_hint_ms, e.retry_after_ms);
        sh.conn.reset();  // shedding closes or poisons the connection
        if (e.code == error_code::io_timeout) mark_transport_failure(sh);
        reason = "shed";
      } catch (const io_timeout_error&) {
        last_error = std::current_exception();
        if (hedge_ms > 0.0) {
          ++counters_.hedged;
          hedge_pending = true;
          reason = "hedge";
        } else {
          reason = "timeout";
        }
        sh.conn.reset();
        mark_transport_failure(sh);
      } catch (const protocol_error&) {
        last_error = std::current_exception();
        sh.conn.reset();
        mark_transport_failure(sh);
        reason = "transport";
      } catch (const std::exception&) {
        // Connect failure (daemon dead/restarting): ECONNREFUSED, missing
        // socket file — std::runtime_error from the client constructor.
        last_error = std::current_exception();
        sh.conn.reset();
        mark_transport_failure(sh);
        reason = "connect";
      }
      ++counters_.failovers;
      if (log::enabled(log::level::warn)) {
        log::line(log::level::warn, "fleet.failover")
            .kv("endpoint", sh.id)
            .kv("reason", reason)
            .kv("health", to_string(sh.health))
            .kv("attempt", attempt_index);
      }
    }
    if (sweep < options_.policy.max_retries) backoff(sweep, sweep_hint_ms);
  }
  if (last_error) std::rethrow_exception(last_error);
  throw protocol_error("fleet: no owner reachable for key");
}

synth_response fleet_client::submit(const synth_request& req) {
  return with_failover(routing_key(req),
                       [&](client& c) { return c.submit(req); });
}

synth_response fleet_client::submit_delta(const synth_delta_request& req) {
  try {
    return with_failover(req.base_content_hash,
                         [&](client& c) { return c.submit_delta(req); });
  } catch (const service_error& e) {
    if (e.code != error_code::unknown_base) throw;
    // A failed-over shard cannot reconstruct the base this delta names.
    // When the embedded base request *is* that base (the hashes agree),
    // the fleet can finish the job itself: apply the edit locally and
    // submit the edited circuit as a plain full request — byte-identical
    // output by the determinism contract.  When the hashes disagree the
    // request names a chained intermediate state only the original shard
    // ever held; no fallback can reconstruct it, so the error stands.
    aig base;
    try {
      base = load_request_circuit(req.base);
    } catch (const std::exception&) {
      throw e;
    }
    if (base.content_hash() != req.base_content_hash) throw;
    eco::apply_edit_text(base, req.edit_text);
    ++counters_.eco_full_fallbacks;
    synth_request full = req.base;
    full.source = circuit_source::bench_text;
    full.model = full.model.empty() ? "top" : full.model;
    full.source_text = write_bench_string(netlist_from_aig(base, full.model));
    if (log::enabled(log::level::warn)) {
      log::line(log::level::warn, "fleet.eco.full_fallback")
          .kv("base_hash", req.base_content_hash)
          .kv("edited_hash", base.content_hash());
    }
    return with_failover(base.content_hash(),
                         [&](client& c) { return c.submit(full); });
  }
}

fleet_stats fleet_client::stats() {
  fleet_stats out;
  out.endpoints_total = shards_.size();
  for (const std::unique_ptr<shard>& sp : shards_) {
    shard& sh = *sp;
    try {
      client& c = shard_connection(sh);
      c.set_receive_timeout_ms(options_.policy.request_timeout_ms > 0
                                   ? options_.policy.request_timeout_ms
                                   : 5000);
      merge_stats(out.merged, c.server_stats());
      ++out.endpoints_up;
      mark_success(sh);
    } catch (const std::exception&) {
      sh.conn.reset();
      mark_transport_failure(sh);
    }
  }
  out.endpoints = endpoint_statuses();
  out.counters = counters_;
  return out;
}

std::vector<endpoint_status> fleet_client::endpoint_statuses() const {
  std::vector<endpoint_status> out;
  out.reserve(shards_.size());
  for (const std::unique_ptr<shard>& sp : shards_) {
    endpoint_status st;
    st.id = sp->id;
    st.health = sp->health;
    st.requests = sp->requests;
    st.failures = sp->failures;
    st.probes = sp->probes;
    st.probe_failures = sp->probe_failures;
    st.consecutive_failures = sp->consecutive_failures;
    out.push_back(std::move(st));
  }
  return out;
}

std::string format_fleet_stats_text(const fleet_stats& stats) {
  std::string out = format_server_stats_text(stats.merged);
  auto line = [&out](const std::string& name, std::uint64_t value) {
    out += name + " " + std::to_string(value) + "\n";
  };
  out += "# HELP xsfq_fleet_endpoints Fleet members (client view).\n";
  out += "# TYPE xsfq_fleet_endpoints gauge\n";
  line("xsfq_fleet_endpoints", stats.endpoints_total);
  out += "# HELP xsfq_fleet_endpoints_up Members that answered the scrape.\n";
  out += "# TYPE xsfq_fleet_endpoints_up gauge\n";
  line("xsfq_fleet_endpoints_up", stats.endpoints_up);
  out += "# HELP xsfq_fleet_requests_total Requests routed by this client.\n";
  out += "# TYPE xsfq_fleet_requests_total counter\n";
  line("xsfq_fleet_requests_total", stats.counters.requests);
  out += "# HELP xsfq_fleet_failovers_total Attempts that failed and were "
         "re-routed to another replica.\n";
  out += "# TYPE xsfq_fleet_failovers_total counter\n";
  line("xsfq_fleet_failovers_total", stats.counters.failovers);
  out += "# HELP xsfq_fleet_hedged_total First attempts abandoned at the "
         "hedge deadline and re-sent.\n";
  out += "# TYPE xsfq_fleet_hedged_total counter\n";
  line("xsfq_fleet_hedged_total", stats.counters.hedged);
  out += "# HELP xsfq_fleet_hedge_wins_total Hedged requests completed by a "
         "replica.\n";
  out += "# TYPE xsfq_fleet_hedge_wins_total counter\n";
  line("xsfq_fleet_hedge_wins_total", stats.counters.hedge_wins);
  out += "# HELP xsfq_fleet_probes_total Health probes sent.\n";
  out += "# TYPE xsfq_fleet_probes_total counter\n";
  line("xsfq_fleet_probes_total", stats.counters.probes);
  out += "# HELP xsfq_fleet_probe_failures_total Health probes that "
         "failed.\n";
  out += "# TYPE xsfq_fleet_probe_failures_total counter\n";
  line("xsfq_fleet_probe_failures_total", stats.counters.probe_failures);
  out += "# HELP xsfq_fleet_eco_full_fallbacks_total unknown_base deltas "
         "finished via local edit + full resynthesis.\n";
  out += "# TYPE xsfq_fleet_eco_full_fallbacks_total counter\n";
  line("xsfq_fleet_eco_full_fallbacks_total",
       stats.counters.eco_full_fallbacks);
  out += "# HELP xsfq_fleet_endpoint_up Per-endpoint health (1 = routable).\n";
  out += "# TYPE xsfq_fleet_endpoint_up gauge\n";
  for (const endpoint_status& ep : stats.endpoints) {
    out += "xsfq_fleet_endpoint_up{endpoint=\"" + ep.id + "\"} " +
           std::to_string(ep.health == endpoint_health::down ? 0 : 1) + "\n";
  }
  out += "# HELP xsfq_fleet_endpoint_health Per-endpoint state machine "
         "position (1 at the current state).\n";
  out += "# TYPE xsfq_fleet_endpoint_health gauge\n";
  for (const endpoint_status& ep : stats.endpoints) {
    out += "xsfq_fleet_endpoint_health{endpoint=\"" + ep.id + "\",state=\"" +
           to_string(ep.health) + "\"} 1\n";
  }
  out += "# HELP xsfq_fleet_endpoint_requests_total Attempts sent per "
         "endpoint.\n";
  out += "# TYPE xsfq_fleet_endpoint_requests_total counter\n";
  for (const endpoint_status& ep : stats.endpoints) {
    out += "xsfq_fleet_endpoint_requests_total{endpoint=\"" + ep.id + "\"} " +
           std::to_string(ep.requests) + "\n";
  }
  out += "# HELP xsfq_fleet_endpoint_failures_total Failed attempts per "
         "endpoint.\n";
  out += "# TYPE xsfq_fleet_endpoint_failures_total counter\n";
  for (const endpoint_status& ep : stats.endpoints) {
    out += "xsfq_fleet_endpoint_failures_total{endpoint=\"" + ep.id + "\"} " +
           std::to_string(ep.failures) + "\n";
  }
  return out;
}

}  // namespace xsfq::serve
