#include "serve/client.hpp"

#include <errno.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace xsfq::serve {

client::client(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve: socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("serve: socket failed: ") +
                             std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string what = "serve: cannot connect to daemon at " +
                             socket_path + ": " + std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error(what);
  }
}

client::~client() {
  if (fd_ >= 0) ::close(fd_);
}

frame client::roundtrip(msg_type request,
                        std::span<const std::uint8_t> payload,
                        msg_type expected) {
  write_frame_fd(fd_, request, payload);
  std::optional<frame> f = read_frame_fd(fd_);
  if (!f) throw protocol_error("daemon closed the connection");
  if (f->type == msg_type::error) {
    throw protocol_error("daemon error: " + decode_error(f->payload));
  }
  if (f->type != expected) {
    throw protocol_error("unexpected response type " +
                         std::to_string(static_cast<unsigned>(f->type)));
  }
  return *std::move(f);
}

synth_response client::submit(const synth_request& req,
                              const progress_fn& progress) {
  write_frame_fd(fd_, msg_type::submit, encode_synth_request(req));
  for (;;) {
    std::optional<frame> f = read_frame_fd(fd_);
    if (!f) throw protocol_error("daemon closed the connection mid-request");
    switch (f->type) {
      case msg_type::progress:
        if (progress) progress(decode_progress_event(f->payload));
        break;
      case msg_type::result:
        return decode_synth_response(f->payload);
      case msg_type::error:
        throw protocol_error("daemon error: " + decode_error(f->payload));
      default:
        throw protocol_error("unexpected frame type " +
                             std::to_string(static_cast<unsigned>(f->type)));
    }
  }
}

server_status client::status() {
  const frame f = roundtrip(msg_type::status, {}, msg_type::status_ok);
  return decode_server_status(f.payload);
}

cache_stats_reply client::cache_stats() {
  const frame f =
      roundtrip(msg_type::cache_stats, {}, msg_type::cache_stats_ok);
  return decode_cache_stats(f.payload);
}

void client::shutdown_server() {
  roundtrip(msg_type::shutdown, {}, msg_type::shutdown_ok);
}

bool client::ping() {
  try {
    roundtrip(msg_type::ping, {}, msg_type::pong);
    return true;
  } catch (const protocol_error&) {
    return false;
  }
}

}  // namespace xsfq::serve
