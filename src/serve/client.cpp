#include "serve/client.hpp"

#include <errno.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "util/fault.hpp"

namespace xsfq::serve {

namespace {

/// Maps a received error frame to the exception the caller should see,
/// honoring the frame's announced version: a pre-v3 daemon sends the legacy
/// bare-string payload, which degrades to service_error{generic}.
[[noreturn]] void throw_error_frame(const frame& f) {
  if (f.version < 3) {
    throw service_error(error_code::generic,
                        "daemon error: " + decode_legacy_error(f.payload));
  }
  const error_reply err = decode_error(f.payload);
  throw service_error(err.code, "daemon error: " + err.message,
                      err.retry_after_ms);
}

}  // namespace

client::client(const std::string& socket_path) {
  if (fault::fire("client.connect.fail")) {
    throw std::runtime_error("serve: injected connect failure "
                             "(client.connect.fail)");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve: socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("serve: socket failed: ") +
                             std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string what = "serve: cannot connect to daemon at " +
                             socket_path + ": " + std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error(what);
  }
}

client::client(const std::string& host, std::uint16_t port) {
  if (fault::fire("client.connect.fail")) {
    throw std::runtime_error("serve: injected connect failure "
                             "(client.connect.fail)");
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? "127.0.0.1" : host.c_str(),
                               service.c_str(), &hints, &res);
  if (rc != 0) {
    throw std::runtime_error("serve: cannot resolve " + host + ":" + service +
                             ": " + gai_strerror(rc));
  }
  std::string last_error = "no usable address";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd_ = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd_ < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    if (::connect(fd_, ai->ai_addr, ai->ai_addrlen) == 0) {
      // Request frames are small and latency-sensitive; don't batch them.
      const int one = 1;
      ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::freeaddrinfo(res);
      return;
    }
    last_error = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
  }
  ::freeaddrinfo(res);
  throw std::runtime_error("serve: cannot connect to daemon at " + host + ":" +
                           service + ": " + last_error);
}

client::~client() {
  if (fd_ >= 0) ::close(fd_);
}

void client::set_receive_timeout_ms(int timeout_ms) {
  timeval tv{};
  if (timeout_ms > 0) {
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  }
  // 0/negative clears the deadline (timeval{0,0} = block forever).  A read
  // that trips the deadline surfaces as io_timeout_error out of
  // read_frame_fd (EAGAIN mapping), which resilient_client treats as a
  // reconnect-and-resubmit signal.
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

frame client::roundtrip(msg_type request,
                        std::span<const std::uint8_t> payload,
                        msg_type expected) {
  write_frame_fd(fd_, request, payload);
  std::optional<frame> f = read_frame_fd(fd_);
  if (!f) throw protocol_error("daemon closed the connection");
  if (f->type == msg_type::error) throw_error_frame(*f);
  if (f->type != expected) {
    throw protocol_error("unexpected response type " +
                         std::to_string(static_cast<unsigned>(f->type)));
  }
  return *std::move(f);
}

hello_reply client::hello(const std::string& client_name) {
  hello_request req;
  req.client_name = client_name;
  const frame f =
      roundtrip(msg_type::hello, encode_hello_request(req), msg_type::hello_ok);
  return decode_hello_reply(f.payload);
}

void client::authenticate(const std::string& token) {
  auth_request req;
  req.token = token;
  roundtrip(msg_type::auth, encode_auth_request(req), msg_type::auth_ok);
}

synth_response client::submit(const synth_request& req,
                              const progress_fn& progress) {
  write_frame_fd(fd_, msg_type::submit, encode_synth_request(req));
  return read_submit_response(progress);
}

synth_response client::submit_delta(const synth_delta_request& req,
                                    const progress_fn& progress) {
  write_frame_fd(fd_, msg_type::synth_delta,
                 encode_synth_delta_request(req));
  return read_submit_response(progress);
}

synth_response client::read_submit_response(const progress_fn& progress) {
  for (;;) {
    std::optional<frame> f = read_frame_fd(fd_);
    if (!f) throw protocol_error("daemon closed the connection mid-request");
    switch (f->type) {
      case msg_type::progress:
        if (progress) progress(decode_progress_event(f->payload));
        break;
      case msg_type::result:
        return decode_synth_response(f->payload);
      case msg_type::error:
        throw_error_frame(*f);
      default:
        throw protocol_error("unexpected frame type " +
                             std::to_string(static_cast<unsigned>(f->type)));
    }
  }
}

trace_reply client::trace(const trace_request& req) {
  const frame f = roundtrip(msg_type::trace, encode_trace_request(req),
                            msg_type::trace_ok);
  return decode_trace_reply(f.payload);
}

server_status client::status() {
  const frame f = roundtrip(msg_type::status, {}, msg_type::status_ok);
  return decode_server_status(f.payload);
}

cache_stats_reply client::cache_stats() {
  const frame f =
      roundtrip(msg_type::cache_stats, {}, msg_type::cache_stats_ok);
  return decode_cache_stats(f.payload);
}

server_stats_reply client::server_stats() {
  const frame f =
      roundtrip(msg_type::server_stats, {}, msg_type::server_stats_ok);
  return decode_server_stats(f.payload);
}

void client::shutdown_server() {
  roundtrip(msg_type::shutdown, {}, msg_type::shutdown_ok);
}

bool client::ping() {
  try {
    roundtrip(msg_type::ping, {}, msg_type::pong);
    return true;
  } catch (const protocol_error&) {
    return false;
  }
}

}  // namespace xsfq::serve
