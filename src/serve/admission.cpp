#include "serve/admission.hpp"

#include <algorithm>
#include <chrono>

namespace xsfq::serve {

admission_queue::admission_queue(std::size_t max_queue,
                                 std::size_t max_inflight)
    : max_queue_(max_queue), max_inflight_(std::max<std::size_t>(1,
                                                                 max_inflight)) {}

admission_queue::ticket admission_queue::acquire(unsigned priority,
                                                 double deadline_ms) {
  using clock = std::chrono::steady_clock;
  const auto arrival = clock::now();
  const bool has_deadline = deadline_ms > 0.0;
  const auto deadline =
      arrival + std::chrono::duration_cast<clock::duration>(
                    std::chrono::duration<double, std::milli>(deadline_ms));

  std::unique_lock<std::mutex> lock(mutex_);
  // Fast path: a free slot and nobody with a better claim waiting.
  if (inflight_ < max_inflight_ && waiters_.empty()) {
    ++inflight_;
    ++accepted_;
    return {verdict::admitted, 0.0};
  }
  if (waiters_.size() >= max_queue_) {
    ++rejected_overload_;
    return {verdict::overloaded, 0.0};
  }

  const waiter_key me{255u - std::min(priority, 255u), next_seq_++};
  waiters_.insert(me);
  peak_queue_depth_ = std::max<std::uint64_t>(peak_queue_depth_,
                                              waiters_.size());
  const auto admissible = [&] {
    return inflight_ < max_inflight_ && *waiters_.begin() == me;
  };
  bool admitted;
  if (has_deadline) {
    admitted = slot_free_.wait_until(lock, deadline, admissible);
  } else {
    slot_free_.wait(lock, admissible);
    admitted = true;
  }
  waiters_.erase(me);
  if (!admitted) {
    ++rejected_deadline_;
    // If we were the front, a free slot now belongs to the next waiter.
    slot_free_.notify_all();
    return {verdict::deadline_expired, 0.0};
  }
  ++inflight_;
  ++accepted_;
  // A slot may still be free for the next waiter (max_inflight_ > 1).
  if (inflight_ < max_inflight_) slot_free_.notify_all();
  const double queued_ms =
      std::chrono::duration<double, std::milli>(clock::now() - arrival)
          .count();
  return {verdict::admitted, queued_ms};
}

void admission_queue::release() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (inflight_ > 0) --inflight_;
  }
  slot_free_.notify_all();
}

admission_stats admission_queue::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  admission_stats s;
  s.accepted = accepted_;
  s.rejected_overload = rejected_overload_;
  s.rejected_deadline = rejected_deadline_;
  s.peak_queue_depth = peak_queue_depth_;
  s.queue_depth = waiters_.size();
  s.inflight = inflight_;
  s.max_queue = max_queue_;
  s.max_inflight = max_inflight_;
  return s;
}

}  // namespace xsfq::serve
