#include "serve/protocol.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "flow/result_io.hpp"

namespace xsfq::serve {

namespace {

constexpr std::size_t header_bytes = 6;  // u32 len + u8 version + u8 type

void write_mapping_params(byte_writer& w, const mapping_params& params) {
  w.u8(static_cast<std::uint8_t>(params.polarity));
  w.u32(params.pipeline_stages);
  w.u8(static_cast<std::uint8_t>(params.reg_style));
  w.boolean(params.forced_polarities.has_value());
  if (params.forced_polarities) {
    w.u64(params.forced_polarities->size());
    for (const bool negate : *params.forced_polarities) w.boolean(negate);
  }
}

mapping_params read_mapping_params(byte_reader& r) {
  mapping_params params;
  const std::uint8_t polarity = r.u8();
  if (polarity > static_cast<std::uint8_t>(polarity_mode::optimized)) {
    throw serialize_error("polarity mode out of range");
  }
  params.polarity = static_cast<polarity_mode>(polarity);
  params.pipeline_stages = r.u32();
  // Same cap the CLIs enforce; a long-lived daemon must not run the mapper
  // with an absurd rank count from one hand-crafted frame.
  if (params.pipeline_stages > 64) {
    throw serialize_error("pipeline stage count out of range");
  }
  const std::uint8_t style = r.u8();
  if (style > static_cast<std::uint8_t>(register_style::pair_retimed)) {
    throw serialize_error("register style out of range");
  }
  params.reg_style = static_cast<register_style>(style);
  if (r.boolean()) {
    const std::size_t n = r.count(/*min_element_bytes=*/1);
    std::vector<bool> forced(n);
    for (std::size_t i = 0; i < n; ++i) forced[i] = r.boolean();
    params.forced_polarities = std::move(forced);
  }
  return params;
}

}  // namespace

std::vector<std::uint8_t> encode_frame(msg_type type,
                                       std::span<const std::uint8_t> payload,
                                       std::uint8_t version) {
  if (payload.size() > max_frame_payload) {
    throw protocol_error("payload exceeds max frame size");
  }
  byte_writer w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u8(version);
  w.u8(static_cast<std::uint8_t>(type));
  w.bytes(payload.data(), payload.size());
  return w.take();
}

std::optional<frame> read_frame(const read_fn& read) {
  std::uint8_t header[header_bytes];
  std::size_t got = 0;
  while (got < header_bytes) {
    const std::size_t n = read(header + got, header_bytes - got);
    if (n == 0) {
      if (got == 0) return std::nullopt;  // clean end-of-stream
      throw protocol_error("truncated frame header");
    }
    got += n;
  }
  byte_reader hr(std::span<const std::uint8_t>(header, header_bytes));
  const std::uint32_t len = hr.u32();
  const std::uint8_t version = hr.u8();
  const std::uint8_t type = hr.u8();
  // The header layout is frozen across versions, so any *plausible* version
  // byte parses structurally and the caller applies its version policy (the
  // server answers a mismatched peer with a typed error at the peer's
  // version).  0 and far-future values are how random garbage usually looks.
  if (version == 0 || version > protocol_version + 4) {
    throw protocol_error("implausible protocol version byte " +
                         std::to_string(version));
  }
  if (len > max_frame_payload) {
    throw protocol_error("oversized frame (" + std::to_string(len) +
                         " bytes)");
  }
  frame f;
  f.type = static_cast<msg_type>(type);
  f.version = version;
  f.payload.resize(len);
  std::size_t read_total = 0;
  while (read_total < len) {
    const std::size_t n =
        read(f.payload.data() + read_total, len - read_total);
    if (n == 0) throw protocol_error("truncated frame payload");
    read_total += n;
  }
  return f;
}

std::optional<frame> read_frame_fd(int fd) {
  return read_frame([fd](void* dst, std::size_t n) -> std::size_t {
    for (;;) {
      const ssize_t got = ::read(fd, dst, n);
      if (got >= 0) return static_cast<std::size_t>(got);
      if (errno == EINTR) continue;
      // A receive timeout set on the socket (SO_RCVTIMEO, the client-side
      // deadline) surfaces as EAGAIN — map it to the typed timeout so
      // callers can distinguish "peer is slow" from "peer sent garbage".
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw io_timeout_error("read timed out");
      throw protocol_error(std::string("read failed: ") +
                           std::strerror(errno));
    }
  });
}

std::optional<frame> read_frame_fd(int fd, int io_timeout_ms,
                                   int idle_timeout_ms) {
  // The first poll of a frame waits under the idle deadline (nothing is in
  // flight yet; an idle keep-alive connection is legitimate for longer);
  // every later byte falls under the stricter io deadline — a peer that
  // sent half a header and stopped is a stalled or malicious peer, and must
  // not pin this handler thread beyond it.
  bool mid_frame = false;
  return read_frame([fd, io_timeout_ms, idle_timeout_ms,
                     &mid_frame](void* dst, std::size_t n) -> std::size_t {
    const int timeout_ms = mid_frame ? io_timeout_ms : idle_timeout_ms;
    for (;;) {
      struct pollfd pfd = {fd, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : -1);
      if (rc < 0) {
        if (errno == EINTR) continue;
        throw protocol_error(std::string("poll failed: ") +
                             std::strerror(errno));
      }
      if (rc == 0)
        throw io_timeout_error(mid_frame ? "read timed out mid-frame"
                                         : "idle timeout");
      const ssize_t got = ::read(fd, dst, n);
      if (got >= 0) {
        if (got > 0) mid_frame = true;
        return static_cast<std::size_t>(got);
      }
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;  // spurious wakeup — re-poll under the same deadline
      throw protocol_error(std::string("read failed: ") +
                           std::strerror(errno));
    }
  });
}

void write_frame_fd(int fd, msg_type type,
                    std::span<const std::uint8_t> payload,
                    std::uint8_t version) {
  write_frame_fd(fd, type, payload, version, /*io_timeout_ms=*/0);
}

void write_frame_fd(int fd, msg_type type,
                    std::span<const std::uint8_t> payload,
                    std::uint8_t version, int io_timeout_ms) {
  const std::vector<std::uint8_t> bytes = encode_frame(type, payload, version);
  std::size_t written = 0;
  while (written < bytes.size()) {
    if (io_timeout_ms > 0) {
      // A peer that stopped draining its socket fills the kernel buffer and
      // would block this send forever; poll bounds each wait.
      struct pollfd pfd = {fd, POLLOUT, 0};
      const int rc = ::poll(&pfd, 1, io_timeout_ms);
      if (rc < 0) {
        if (errno == EINTR) continue;
        throw protocol_error(std::string("poll failed: ") +
                             std::strerror(errno));
      }
      if (rc == 0) throw io_timeout_error("write timed out");
    }
    // MSG_NOSIGNAL: a peer that disappeared mid-response must surface as a
    // protocol_error on this connection, not as SIGPIPE for the process.
    const ssize_t n = ::send(fd, bytes.data() + written,
                             bytes.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw protocol_error(std::string("write failed: ") +
                           std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
}

// ---------------------------------------------------------------------------
// Payload codecs.
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_synth_request(const synth_request& req) {
  byte_writer w;
  w.str(req.spec);
  w.u8(static_cast<std::uint8_t>(req.source));
  w.str(req.source_text);
  w.str(req.model);
  write_mapping_params(w, req.map);
  w.boolean(req.validate);
  w.boolean(req.want_verilog);
  w.boolean(req.want_dot);
  w.boolean(req.stream_progress);
  w.u32(req.flow_jobs);
  w.u8(req.priority);
  w.f64(req.deadline_ms);
  w.u32(req.partition_grain);
  w.u64(req.trace_hi);
  w.u64(req.trace_lo);
  return w.take();
}

synth_request decode_synth_request(std::span<const std::uint8_t> payload) {
  byte_reader r(payload);
  synth_request req;
  req.spec = r.str();
  const std::uint8_t source = r.u8();
  if (source > static_cast<std::uint8_t>(circuit_source::blif_text)) {
    throw serialize_error("circuit source out of range");
  }
  req.source = static_cast<circuit_source>(source);
  req.source_text = r.str();
  req.model = r.str();
  req.map = read_mapping_params(r);
  req.validate = r.boolean();
  req.want_verilog = r.boolean();
  req.want_dot = r.boolean();
  req.stream_progress = r.boolean();
  req.flow_jobs = r.u32();
  if (req.flow_jobs == 0 || req.flow_jobs > 256) {
    throw serialize_error("flow_jobs out of range");
  }
  req.priority = r.u8();
  req.deadline_ms = r.f64();
  if (std::isnan(req.deadline_ms) || req.deadline_ms < 0.0) {
    throw serialize_error("deadline_ms out of range");
  }
  req.partition_grain = r.u32();
  // Same cap as --partition-grain; one hand-crafted frame must not make the
  // daemon partition into degenerate single-gate regions forever.
  if (req.partition_grain > 100000) {
    throw serialize_error("partition_grain out of range");
  }
  req.trace_hi = r.u64();
  req.trace_lo = r.u64();
  r.expect_done();
  return req;
}

std::vector<std::uint8_t> encode_synth_delta_request(
    const synth_delta_request& req) {
  byte_writer w;
  const std::vector<std::uint8_t> base = encode_synth_request(req.base);
  w.u64(base.size());
  w.bytes(base.data(), base.size());
  w.u64(req.base_content_hash);
  w.str(req.edit_text);
  w.boolean(req.supersede_base);
  w.boolean(req.force_full);
  return w.take();
}

synth_delta_request decode_synth_delta_request(
    std::span<const std::uint8_t> payload) {
  byte_reader r(payload);
  synth_delta_request req;
  // The base request is nested as a length-prefixed blob so its codec can
  // grow without the delta codec knowing its field list.
  const std::size_t base_len = r.count(/*min_element_bytes=*/1);
  req.base = decode_synth_request(r.raw(base_len));
  req.base_content_hash = r.u64();
  req.edit_text = r.str();
  req.supersede_base = r.boolean();
  req.force_full = r.boolean();
  r.expect_done();
  return req;
}

std::vector<std::uint8_t> encode_progress_event(const progress_event& ev) {
  byte_writer w;
  w.str(ev.stage);
  w.u32(ev.index);
  w.u32(ev.total);
  w.f64(ev.ms);
  flow::write_stage_counters(w, ev.counters);
  w.boolean(ev.from_cache);
  return w.take();
}

progress_event decode_progress_event(std::span<const std::uint8_t> payload) {
  byte_reader r(payload);
  progress_event ev;
  ev.stage = r.str();
  ev.index = r.u32();
  ev.total = r.u32();
  ev.ms = r.f64();
  ev.counters = flow::read_stage_counters(r);
  ev.from_cache = r.boolean();
  r.expect_done();
  return ev;
}

std::vector<std::uint8_t> encode_synth_response(const synth_response& resp) {
  byte_writer w;
  w.boolean(resp.ok);
  w.str(resp.error);
  w.str(resp.report);
  w.str(resp.validate_report);
  w.boolean(resp.validate_ok);
  w.str(resp.verilog);
  w.str(resp.dot);
  flow::write_stage_timings(w, resp.timings);
  w.f64(resp.total_ms);
  w.boolean(resp.served_from_cache);
  w.u64(resp.content_hash);
  return w.take();
}

synth_response decode_synth_response(std::span<const std::uint8_t> payload) {
  byte_reader r(payload);
  synth_response resp;
  resp.ok = r.boolean();
  resp.error = r.str();
  resp.report = r.str();
  resp.validate_report = r.str();
  resp.validate_ok = r.boolean();
  resp.verilog = r.str();
  resp.dot = r.str();
  resp.timings = flow::read_stage_timings(r);
  resp.total_ms = r.f64();
  resp.served_from_cache = r.boolean();
  resp.content_hash = r.u64();
  r.expect_done();
  return resp;
}

std::vector<std::uint8_t> encode_server_status(const server_status& status) {
  byte_writer w;
  w.u64(status.jobs_submitted);
  w.u64(status.jobs_completed);
  w.u64(status.jobs_failed);
  w.u64(status.active_connections);
  w.u32(status.worker_threads);
  w.u64(status.steals);
  w.f64(status.uptime_s);
  return w.take();
}

server_status decode_server_status(std::span<const std::uint8_t> payload) {
  byte_reader r(payload);
  server_status status;
  status.jobs_submitted = r.u64();
  status.jobs_completed = r.u64();
  status.jobs_failed = r.u64();
  status.active_connections = r.u64();
  status.worker_threads = r.u32();
  status.steals = r.u64();
  status.uptime_s = r.f64();
  r.expect_done();
  return status;
}

std::vector<std::uint8_t> encode_cache_stats(const cache_stats_reply& reply) {
  byte_writer w;
  w.u64(reply.stats.full_hits);
  w.u64(reply.stats.full_misses);
  w.u64(reply.stats.opt_hits);
  w.u64(reply.stats.opt_misses);
  w.u64(reply.stats.disk_hits);
  w.u64(reply.stats.disk_misses);
  w.u64(reply.stats.disk_writes);
  w.u64(reply.stats.disk_quarantined);
  w.u64(reply.stats.region_hits);
  w.u64(reply.stats.region_misses);
  w.u64(reply.stats.eco_patches);
  w.u64(reply.stats.retained_networks);
  w.u64(reply.stats.retained_evictions);       // v7
  w.u64(reply.stats.disk_quarantine_pruned);   // v7
  w.str(reply.disk_directory);
  return w.take();
}

cache_stats_reply decode_cache_stats(std::span<const std::uint8_t> payload) {
  byte_reader r(payload);
  cache_stats_reply reply;
  reply.stats.full_hits = r.u64();
  reply.stats.full_misses = r.u64();
  reply.stats.opt_hits = r.u64();
  reply.stats.opt_misses = r.u64();
  reply.stats.disk_hits = r.u64();
  reply.stats.disk_misses = r.u64();
  reply.stats.disk_writes = r.u64();
  reply.stats.disk_quarantined = r.u64();
  reply.stats.region_hits = r.u64();
  reply.stats.region_misses = r.u64();
  reply.stats.eco_patches = r.u64();
  reply.stats.retained_networks = r.u64();
  reply.stats.retained_evictions = r.u64();      // v7
  reply.stats.disk_quarantine_pruned = r.u64();  // v7
  reply.disk_directory = r.str();
  r.expect_done();
  return reply;
}

std::vector<std::uint8_t> encode_hello_request(const hello_request& req) {
  byte_writer w;
  w.u8(req.client_version);
  w.str(req.client_name);
  return w.take();
}

hello_request decode_hello_request(std::span<const std::uint8_t> payload) {
  byte_reader r(payload);
  hello_request req;
  req.client_version = r.u8();
  req.client_name = r.str();
  r.expect_done();
  return req;
}

std::vector<std::uint8_t> encode_hello_reply(const hello_reply& reply) {
  byte_writer w;
  w.u8(reply.server_version);
  w.boolean(reply.auth_required);
  w.u32(reply.max_payload);
  w.u64(reply.capabilities.size());
  for (const auto& cap : reply.capabilities) w.str(cap);
  return w.take();
}

hello_reply decode_hello_reply(std::span<const std::uint8_t> payload) {
  byte_reader r(payload);
  hello_reply reply;
  reply.server_version = r.u8();
  reply.auth_required = r.boolean();
  reply.max_payload = r.u32();
  const std::size_t n = r.count(/*min_element_bytes=*/8);
  reply.capabilities.reserve(n);
  for (std::size_t i = 0; i < n; ++i) reply.capabilities.push_back(r.str());
  r.expect_done();
  return reply;
}

std::vector<std::uint8_t> encode_auth_request(const auth_request& req) {
  byte_writer w;
  w.str(req.token);
  return w.take();
}

auth_request decode_auth_request(std::span<const std::uint8_t> payload) {
  byte_reader r(payload);
  auth_request req;
  req.token = r.str();
  r.expect_done();
  return req;
}

std::vector<std::uint8_t> encode_trace_request(const trace_request& req) {
  byte_writer w;
  w.u64(req.trace_hi);
  w.u64(req.trace_lo);
  return w.take();
}

trace_request decode_trace_request(std::span<const std::uint8_t> payload) {
  byte_reader r(payload);
  trace_request req;
  req.trace_hi = r.u64();
  req.trace_lo = r.u64();
  r.expect_done();
  return req;
}

std::vector<std::uint8_t> encode_trace_reply(const trace_reply& reply) {
  byte_writer w;
  w.u64(reply.trace_hi);
  w.u64(reply.trace_lo);
  w.u64(reply.spans.size());
  for (const auto& s : reply.spans) {
    w.str(s.name);
    w.u64(s.start_us);
    w.u64(s.dur_us);
    w.u32(s.tid);
  }
  return w.take();
}

trace_reply decode_trace_reply(std::span<const std::uint8_t> payload) {
  byte_reader r(payload);
  trace_reply reply;
  reply.trace_hi = r.u64();
  reply.trace_lo = r.u64();
  const std::size_t n = r.count(/*min_element_bytes=*/8);
  reply.spans.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    trace_span s;
    s.name = r.str();
    s.start_us = r.u64();
    s.dur_us = r.u64();
    s.tid = r.u32();
    reply.spans.push_back(std::move(s));
  }
  r.expect_done();
  return reply;
}

std::vector<std::uint8_t> encode_server_stats(
    const server_stats_reply& reply) {
  byte_writer w;
  w.u64(reply.status.jobs_submitted);
  w.u64(reply.status.jobs_completed);
  w.u64(reply.status.jobs_failed);
  w.u64(reply.status.active_connections);
  w.u32(reply.status.worker_threads);
  w.u64(reply.status.steals);
  w.f64(reply.status.uptime_s);
  w.u64(reply.cache.full_hits);
  w.u64(reply.cache.full_misses);
  w.u64(reply.cache.opt_hits);
  w.u64(reply.cache.opt_misses);
  w.u64(reply.cache.disk_hits);
  w.u64(reply.cache.disk_misses);
  w.u64(reply.cache.disk_writes);
  w.u64(reply.cache.disk_quarantined);
  w.u64(reply.cache.region_hits);
  w.u64(reply.cache.region_misses);
  w.u64(reply.cache.eco_patches);
  w.u64(reply.cache.retained_networks);
  w.u64(reply.cache.retained_evictions);       // v7
  w.u64(reply.cache.disk_quarantine_pruned);   // v7
  w.str(reply.disk_directory);
  w.u64(reply.accepted);
  w.u64(reply.rejected_overload);
  w.u64(reply.rejected_deadline);
  w.u64(reply.rejected_auth);
  w.u64(reply.rejected_conns);
  w.u64(reply.peak_queue_depth);
  w.u32(reply.queue_depth);
  w.u32(reply.inflight);
  w.u32(reply.max_queue);
  w.u32(reply.max_inflight);
  w.u32(reply.max_conns);
  w.u64(reply.runner_queue_depth);
  w.u64(reply.eco_requests);
  w.u64(reply.eco_retained_hits);
  w.u64(reply.eco_base_rebuilds);
  w.u64(reply.eco_failures);
  w.u64(reply.io_timeouts);
  w.u64(reply.fault_fired);
  w.u64(reply.trace_spans_recorded);
  w.u64(reply.trace_spans_dropped);
  w.u64(reply.fault_sites.size());
  for (const auto& s : reply.fault_sites) {
    w.str(s.site);
    w.u64(s.hits);
    w.u64(s.fired);
  }
  w.u64(reply.histograms.size());
  for (const auto& h : reply.histograms) {
    w.str(h.name);
    w.u64(h.count);
    w.f64(h.sum_ms);
    w.f64(h.max_ms);
    w.u64(h.buckets.size());
    for (const std::uint64_t b : h.buckets) w.u64(b);
  }
  return w.take();
}

server_stats_reply decode_server_stats(std::span<const std::uint8_t> payload) {
  byte_reader r(payload);
  server_stats_reply reply;
  reply.status.jobs_submitted = r.u64();
  reply.status.jobs_completed = r.u64();
  reply.status.jobs_failed = r.u64();
  reply.status.active_connections = r.u64();
  reply.status.worker_threads = r.u32();
  reply.status.steals = r.u64();
  reply.status.uptime_s = r.f64();
  reply.cache.full_hits = r.u64();
  reply.cache.full_misses = r.u64();
  reply.cache.opt_hits = r.u64();
  reply.cache.opt_misses = r.u64();
  reply.cache.disk_hits = r.u64();
  reply.cache.disk_misses = r.u64();
  reply.cache.disk_writes = r.u64();
  reply.cache.disk_quarantined = r.u64();
  reply.cache.region_hits = r.u64();
  reply.cache.region_misses = r.u64();
  reply.cache.eco_patches = r.u64();
  reply.cache.retained_networks = r.u64();
  reply.cache.retained_evictions = r.u64();      // v7
  reply.cache.disk_quarantine_pruned = r.u64();  // v7
  reply.disk_directory = r.str();
  reply.accepted = r.u64();
  reply.rejected_overload = r.u64();
  reply.rejected_deadline = r.u64();
  reply.rejected_auth = r.u64();
  reply.rejected_conns = r.u64();
  reply.peak_queue_depth = r.u64();
  reply.queue_depth = r.u32();
  reply.inflight = r.u32();
  reply.max_queue = r.u32();
  reply.max_inflight = r.u32();
  reply.max_conns = r.u32();
  reply.runner_queue_depth = r.u64();
  reply.eco_requests = r.u64();
  reply.eco_retained_hits = r.u64();
  reply.eco_base_rebuilds = r.u64();
  reply.eco_failures = r.u64();
  reply.io_timeouts = r.u64();
  reply.fault_fired = r.u64();
  reply.trace_spans_recorded = r.u64();
  reply.trace_spans_dropped = r.u64();
  const std::size_t nf = r.count(/*min_element_bytes=*/8);
  reply.fault_sites.reserve(nf);
  for (std::size_t i = 0; i < nf; ++i) {
    fault_site_snapshot s;
    s.site = r.str();
    s.hits = r.u64();
    s.fired = r.u64();
    reply.fault_sites.push_back(std::move(s));
  }
  const std::size_t n = r.count(/*min_element_bytes=*/8);
  reply.histograms.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    histogram_snapshot h;
    h.name = r.str();
    h.count = r.u64();
    h.sum_ms = r.f64();
    h.max_ms = r.f64();
    const std::size_t nb = r.count(/*min_element_bytes=*/8);
    h.buckets.reserve(nb);
    for (std::size_t j = 0; j < nb; ++j) h.buckets.push_back(r.u64());
    reply.histograms.push_back(std::move(h));
  }
  r.expect_done();
  return reply;
}

std::vector<std::uint8_t> encode_error(error_code code,
                                       const std::string& message,
                                       std::uint32_t retry_after_ms) {
  byte_writer w;
  w.u8(static_cast<std::uint8_t>(code));
  w.str(message);
  w.u32(retry_after_ms);
  return w.take();
}

error_reply decode_error(std::span<const std::uint8_t> payload) {
  byte_reader r(payload);
  error_reply reply;
  const std::uint8_t code = r.u8();
  reply.code = code > static_cast<std::uint8_t>(error_code::io_timeout)
                   ? error_code::generic
                   : static_cast<error_code>(code);
  reply.message = r.str();
  // v5 appended the backoff hint; a v3/v4 payload simply ends here.
  if (r.remaining() > 0) reply.retry_after_ms = r.u32();
  r.expect_done();
  return reply;
}

std::vector<std::uint8_t> encode_error_for_version(
    std::uint8_t peer_version, error_code code, const std::string& message,
    std::uint32_t retry_after_ms) {
  if (peer_version < 3) return encode_legacy_error(message);
  if (peer_version < 5) {
    // v3/v4 layout: typed code + message, no trailing hint (their decoder
    // calls expect_done() and would reject extra bytes).
    byte_writer w;
    w.u8(static_cast<std::uint8_t>(code));
    w.str(message);
    return w.take();
  }
  return encode_error(code, message, retry_after_ms);
}

std::vector<std::uint8_t> encode_legacy_error(const std::string& message) {
  byte_writer w;
  w.str(message);
  return w.take();
}

std::string decode_legacy_error(std::span<const std::uint8_t> payload) {
  byte_reader r(payload);
  std::string message = r.str();
  r.expect_done();
  return message;
}

bool constant_time_equal(const std::string& a, const std::string& b) {
  unsigned char acc = a.size() == b.size() ? 0 : 1;
  const std::size_t n = std::max(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned char ca =
        i < a.size() ? static_cast<unsigned char>(a[i]) : 0;
    const unsigned char cb =
        i < b.size() ? static_cast<unsigned char>(b[i]) : 0;
    acc = static_cast<unsigned char>(acc | (ca ^ cb));
  }
  return acc == 0;
}

}  // namespace xsfq::serve
