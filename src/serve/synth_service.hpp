#pragma once
/// \file synth_service.hpp
/// \brief The one synthesis-request driver behind xsfq_synth, the daemon,
/// and xsfq_client.
///
/// Both front ends reduce a command line to a `synth_request`, and both
/// render the outcome from a `synth_response` — the daemon executes this
/// driver server-side, the CLI executes it in-process — so a served run and
/// a local run of the same circuit+options produce byte-identical
/// deterministic output (everything except the wall-clock timing lines) by
/// construction rather than by parallel maintenance of two printers.
///
/// Requests run through batch_runner::enqueue, which multiplexes any number
/// of concurrent callers onto the work-stealing pool and applies every
/// result-cache tier (memory, in-flight optimize dedup, disk).

#include <string>

#include "flow/batch_runner.hpp"
#include "serve/protocol.hpp"

namespace xsfq::serve {

/// Builds a request from a CLI circuit spec: a registry benchmark name, or
/// a .bench/.blif path whose content is inlined into the request (so the
/// same request works locally and across the socket).  Throws
/// std::invalid_argument when a file cannot be read.
synth_request make_request_for_spec(const std::string& spec);

/// Materializes the request's circuit (registry lookup or netlist parse).
/// Throws on unknown benchmarks or parse errors.
aig load_request_circuit(const synth_request& req);

/// Runs one request on the runner's pool with all cache tiers applied and
/// renders the full response, including the deterministic report text and
/// any requested Verilog/DOT payloads.  `progress` (optional) receives one
/// event per stage, called from the executing worker thread.  Never throws
/// for request-level failures: they come back as ok=false.
synth_response run_synth(const synth_request& req, flow::batch_runner& runner,
                         const std::function<void(const progress_event&)>&
                             progress = {});

/// How a delta request located its base network — the server's eco_*
/// counters distinguish the fast path (retained) from the rebuild.
struct eco_outcome {
  bool base_retained = false;  ///< served from the runner's retained tier
  bool base_rebuilt = false;   ///< re-materialized from the request's circuit
};

/// Runs one v4 incremental-resynthesis request: locates the base network
/// (retained tier, else rebuilt from req.base and verified against
/// base_content_hash), replays the edit script, and synthesizes the edited
/// circuit through the identical flow a plain submit would run — so the
/// response is byte-identical to submitting the edited circuit from scratch,
/// only faster (region/result caches skip everything the edit left alone).
/// On success the base circuit's cache entries are dropped when
/// `supersede_base` asks for it.  Throws service_error{unknown_base} when
/// the base cannot be reconstructed and service_error{bad_edit} on a
/// malformed or illegal edit script (the server maps both onto typed error
/// frames); other request-level failures come back as ok=false.
synth_response run_synth_delta(const synth_delta_request& req,
                               flow::batch_runner& runner,
                               const std::function<void(const progress_event&)>&
                                   progress = {},
                               eco_outcome* outcome = nullptr);

/// The non-deterministic stage-timing footer ("timing:   ... (total X ms)").
std::string format_timing_line(const std::vector<flow::stage_timing>& timings,
                               double total_ms);

/// Per-stage counter CSV (xsfq_synth --timing).
std::string format_timing_csv(const std::vector<flow::stage_timing>& timings);

// ---------------------------------------------------------------------------
// Shared CLI vocabulary.  xsfq_synth and xsfq_client both parse the same
// synthesis options and render the same response through these helpers, so
// their byte-identity contract cannot drift: a new option or a changed
// default lands in both binaries or in neither.
// ---------------------------------------------------------------------------

/// Synthesis options common to both front ends (each binary parses its own
/// transport/mode flags — --socket, --corpus, --cache-dir, ... — itself).
struct synth_cli_options {
  mapping_params map;
  std::string verilog_path;
  std::string dot_path;
  std::string liberty_path;
  bool validate = false;
  bool timing_csv = false;   ///< --timing
  bool no_timing = false;    ///< --no-timing
  bool progress = false;     ///< --progress (stderr)
  unsigned flow_jobs = 1;    ///< --flow-jobs=N (intra-flow parallelism)
  /// --partition-grain=N (fixed-grain region partitioning; 0 = legacy
  /// monolithic optimize).  The knob interactive ECO sessions set so edits
  /// resynthesize in region-cache time.
  unsigned partition_grain = 0;
};

enum class cli_parse {
  consumed,          ///< the argument was a shared synthesis option
  not_synth_option,  ///< not ours; the caller handles it
  invalid,           ///< recognized but malformed; `error` explains
};

cli_parse parse_synth_option(const std::string& arg, synth_cli_options& cli,
                             std::string& error);

/// "--key=value" extraction; empty when `arg` is not that key.  The one
/// helper behind every front end's flag parsing.
std::string cli_value(const std::string& arg, const std::string& key);

/// Copies the shared options into a request (map/validate/want_* fields).
void apply_cli_options(const synth_cli_options& cli, synth_request& req);

/// One streamed progress event, printed to stderr (stdout stays diffable).
void print_progress_event(const progress_event& ev);

/// Prints the response exactly as both front ends must (report, timing
/// footer and CSV per the flags, validation verdict, requested output
/// files) and returns the process exit code (0, or 1 on a request error or
/// failed validation).
int render_synth_response(const synth_response& resp,
                          const synth_cli_options& cli);

/// Renders a server_stats scrape as Prometheus-style plaintext exposition
/// (`xsfq_...` gauge/counter lines; histograms as sparse cumulative
/// `_bucket{le="..."}` lines plus `_sum`/`_count`).  Behind
/// `xsfq_client --stats`, and scrape-parseable by the CI smoke test.
std::string format_server_stats_text(const server_stats_reply& stats);

}  // namespace xsfq::serve
