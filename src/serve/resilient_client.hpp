#pragma once
/// \file resilient_client.hpp
/// \brief Self-healing wrapper around serve::client: reconnect + retry.
///
/// A plain `client` is one connection: any transport failure — the daemon
/// restarting, a connection reset mid-response, an I/O timeout — kills the
/// request and the connection with it.  `resilient_client` owns the
/// endpoint description instead of the socket, and turns those failures
/// into bounded retries: reconnect, capped exponential backoff with
/// deterministic jitter, then resubmit the same request.
///
/// Resubmission is safe by construction: synthesis is a pure function of
/// (circuit content hash, options fingerprint) — the same key every cache
/// tier uses — so replaying a request can only produce the byte-identical
/// result, never a duplicate side effect.  That idempotence is what lets
/// the retry loop treat "daemon died mid-request" and "response never
/// arrived" the same way as "connection refused".
///
/// The server cooperates through the v5 retry contract (docs/protocol.md):
/// `overloaded` and `too_many_connections` errors carry a `retry_after_ms`
/// hint, which the loop honors when it exceeds the computed backoff.
/// Non-retryable service errors (bad_request, auth_failed, bad_edit, ...)
/// propagate immediately — retrying a rejected request cannot fix it.
///
/// Not thread-safe, like `client`: one resilient_client per thread.

#include <cstdint>
#include <memory>
#include <string>

#include "serve/client.hpp"
#include "serve/protocol.hpp"

namespace xsfq::serve {

/// Where and how to (re)connect: exactly the inputs of the two `client`
/// constructors plus the auth token to replay after every reconnect.
struct endpoint {
  std::string socket_path;  ///< Unix socket; used when non-empty
  std::string host;         ///< TCP host (with port) when socket_path empty
  std::uint16_t port = 0;
  std::string auth_token;   ///< replayed after each reconnect when non-empty
};

struct retry_policy {
  /// Retries after the first attempt (0 = behave like a plain client).
  unsigned max_retries = 4;
  /// First backoff; doubles per consecutive failure up to max_backoff_ms.
  unsigned initial_backoff_ms = 50;
  unsigned max_backoff_ms = 2000;
  /// Uniform jitter fraction applied to each backoff (0.25 = ±25%),
  /// decorrelating a fleet of clients that all saw the same failure.
  double jitter = 0.25;
  /// Per-attempt receive deadline (SO_RCVTIMEO) in ms; 0 = wait forever.
  /// A response slower than this counts as a transport failure and is
  /// retried on a fresh connection.
  int request_timeout_ms = 0;
  /// Seeds the jitter sequence — deterministic for reproducible drills.
  std::uint64_t seed = 0x5eedc0deull;
};

class resilient_client {
 public:
  resilient_client(endpoint ep, retry_policy policy = {});
  ~resilient_client();
  resilient_client(const resilient_client&) = delete;
  resilient_client& operator=(const resilient_client&) = delete;

  /// submit/submit_delta with the retry loop around them.  Throws the last
  /// failure when max_retries is exhausted; non-retryable service errors
  /// propagate immediately.  Progress events may replay from the start on
  /// a retry (the terminal result is still exactly one response).
  synth_response submit(const synth_request& req,
                        const client::progress_fn& progress = {});
  synth_response submit_delta(const synth_delta_request& req,
                              const client::progress_fn& progress = {});

  server_status status();
  cache_stats_reply cache_stats();
  server_stats_reply server_stats();
  /// v6: fetch a traced request's span tree (read-only, safely retryable —
  /// an evicted id just comes back empty).
  trace_reply trace(const trace_request& req);
  bool ping();

  /// Total retry sleeps taken and reconnects performed since construction
  /// (for drill assertions and the CLI's client_retries report).
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  [[nodiscard]] std::uint64_t reconnects() const { return reconnects_; }

 private:
  /// Ensures a live, authenticated connection, (re)dialing if needed.
  client& ensure_connected();
  void drop_connection();
  /// One backoff sleep for failure number `attempt` (0-based), honoring a
  /// server hint when it is longer.
  void backoff(unsigned attempt, std::uint32_t server_hint_ms);
  template <typename Fn>
  auto with_retries(Fn&& fn) -> decltype(fn(std::declval<client&>()));

  endpoint endpoint_;
  retry_policy policy_;
  std::unique_ptr<client> conn_;
  std::uint64_t rng_state_;
  std::uint64_t retries_ = 0;
  std::uint64_t reconnects_ = 0;
};

}  // namespace xsfq::serve
