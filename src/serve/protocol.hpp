#pragma once
/// \file protocol.hpp
/// \brief Wire protocol of the synthesis service (xsfq_served / xsfq_client).
///
/// A connection carries a sequence of length-prefixed frames over a stream
/// socket (Unix-domain or TCP):
///
///   [u32 payload_len][u8 version][u8 msg_type][payload bytes...]
///
/// all little-endian (the codec in util/serialize.hpp).  The 6-byte header
/// layout is FROZEN across protocol versions: any peer can read any frame's
/// header, which is how a v3 daemon answers a v2 client with a typed error
/// frame the v2 client can decode (encoded at the client's version) instead
/// of both sides hanging or dying on a raw read.  Payload layouts are
/// version-specific; a daemon only decodes payloads of its own version and
/// rejects every other version at the frame level.
///
/// A client sends one request frame and reads response frames until the
/// terminal one: `submit` yields zero or more `progress` frames (when
/// streaming was requested) followed by exactly one `result` or `error`;
/// every other request yields exactly one response frame.  Framing
/// violations — implausible version byte, payload over `max_frame_payload`,
/// truncation mid-frame, undecodable payload — raise `protocol_error`; the
/// server answers with an `error` frame when the connection is still
/// writable and closes it.
///
/// v3 adds: a `hello`/`hello_ok` capability exchange, a shared-secret
/// `auth` frame (required before any other request on TCP transports when
/// the daemon holds a token; compared in constant time), per-request
/// `priority`/`deadline_ms` admission fields, structured `error` payloads
/// carrying a typed `error_code`, and the `server_stats` metrics request
/// (admission counters + latency histograms) generalizing v2's
/// `cache_stats`.
///
/// v4 adds incremental ECO resynthesis: the `synth_delta` request names a
/// previously synthesized base circuit by content hash and ships a textual
/// edit script (aig/edit.hpp grammar); the daemon replays the edit onto the
/// retained base network and resynthesizes incrementally, bit-identical to
/// a from-scratch run of the edited circuit.  `synth_request` gains
/// `partition_grain` (the fixed-grain region partitioning that makes edits
/// cheap), `synth_response` gains `content_hash` (the served circuit's
/// identity, which a later delta request names as its base), `cache_stats`
/// gains the region/ECO tier counters, and the `unknown_base`/`bad_edit`
/// error codes type the two ECO-specific failures.
///
/// v5 adds the failure/retry contract: the `io_timeout` error code (a peer
/// blew the daemon's per-connection read/write deadline), a trailing
/// `retry_after_ms` hint on the typed error payload (non-zero on
/// `overloaded`/`too_many_connections`, telling a well-behaved client how
/// long to back off before resubmitting — results are deterministic, so a
/// resubmit is idempotent by construction), and `io_timeouts`/fault-site
/// counters in the `server_stats` scrape.
///
/// v6 adds end-to-end request tracing: `synth_request` carries an optional
/// 16-byte client-generated `trace_id` (zero = untraced) that the daemon
/// threads through admission wait, runner queueing, cache lookups, flow
/// stages, and the send path (util/trace.hpp), and the new `trace` request
/// returns the completed span set for a given id so the client can print a
/// per-stage waterfall.  `server_stats` gains the flight-recorder counters
/// (`trace_spans_recorded`/`trace_spans_dropped`).  Replies to older peers
/// are still encoded at THEIR version via encode_error_for_version.
/// docs/protocol.md is the normative reference; a test cross-checks its
/// constant tables against this header.
///
/// Thread-safety: every free function here is stateless and safe to call
/// concurrently; the fd helpers assume at most one reader and one writer
/// per fd at a time (the client and the per-connection handler both
/// guarantee that by construction).

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/mapper.hpp"
#include "flow/batch_runner.hpp"
#include "util/histogram.hpp"
#include "util/serialize.hpp"

namespace xsfq::serve {

// v2: synth_request gained flow_jobs (intra-flow parallelism), stage
// counters gained arena_peak_bytes + rebuilds_avoided.
// v3: hello/auth/server_stats messages, error codes, priority + deadline_ms
// on synth_request.
// v4: synth_delta (incremental ECO resynthesis), partition_grain on
// synth_request, content_hash on synth_response, region/ECO cache counters.
// v5: io_timeout error code, retry_after_ms hint on error payloads,
// io_timeouts + fault-injection counters in server_stats.
// v6: trace_id on synth_request, the trace request/reply pair, flight-
// recorder span counters in server_stats
// v7: retained-tier LRU + quarantine-bound counters (retained_evictions,
// disk_quarantine_pruned) in cache/server stats
// (see docs/protocol.md for the full history).
inline constexpr std::uint8_t protocol_version = 7;
/// Upper bound on one frame's payload; a header announcing more is garbage
/// (the largest legitimate payload is a synth_response with Verilog text).
inline constexpr std::uint32_t max_frame_payload = 64u << 20;
/// Default rendezvous path shared by the daemon and client binaries.
inline constexpr const char* default_socket_path = "/tmp/xsfq_served.sock";

enum class msg_type : std::uint8_t {
  // requests
  submit = 1,
  status = 2,
  cache_stats = 3,
  shutdown = 4,
  ping = 5,
  hello = 6,         ///< v3: capability/version exchange, always allowed
  auth = 7,          ///< v3: shared-secret token, must precede requests on TCP
  server_stats = 8,  ///< v3: metrics scrape (generalizes cache_stats)
  synth_delta = 9,   ///< v4: edit script against a retained base network
  trace = 10,        ///< v6: fetch the span set of a completed traced request
  // responses
  result = 64,
  status_ok = 65,
  cache_stats_ok = 66,
  shutdown_ok = 67,
  pong = 68,
  hello_ok = 69,
  auth_ok = 70,
  server_stats_ok = 71,
  trace_ok = 72,  ///< v6: reply to `trace`
  progress = 96,  ///< streamed before `result` when the client asked for it
  error = 127,
};

/// Typed reason on every v3 `error` frame, so clients and load balancers can
/// react programmatically (retry elsewhere on overloaded, re-auth on
/// auth_failed, upgrade on unsupported_version) instead of parsing prose.
enum class error_code : std::uint8_t {
  generic = 0,              ///< unclassified server-side failure
  bad_request = 1,          ///< undecodable or unknown request frame
  unsupported_version = 2,  ///< peer spoke a different protocol version
  auth_required = 3,        ///< request arrived before a successful auth
  auth_failed = 4,          ///< token mismatch; connection is closed
  overloaded = 5,           ///< admission queue full; retry later/elsewhere
  deadline_expired = 6,     ///< deadline passed while queued
  too_many_connections = 7, ///< connection cap reached; connection is closed
  shutting_down = 8,        ///< daemon is draining
  unknown_base = 9,         ///< v4: delta names a base hash the daemon cannot
                            ///< reconstruct (not retained, and the request's
                            ///< circuit hashes differently)
  bad_edit = 10,            ///< v4: malformed edit script or illegal replay
  io_timeout = 11,          ///< v5: peer blew the daemon's I/O deadline;
                            ///< connection is closed (resubmit on a new one)
};

struct protocol_error : std::runtime_error {
  explicit protocol_error(const std::string& what)
      : std::runtime_error("protocol: " + what) {}
};

/// An I/O deadline expired while reading or writing a frame.  Distinct from
/// protocol_error so callers can tell "the peer is slow/stalled" (retryable
/// with backoff) from "the peer is speaking garbage" (it is not).
struct io_timeout_error : protocol_error {
  explicit io_timeout_error(const std::string& what) : protocol_error(what) {}
};

/// A server-reported error frame, decoded: carries the typed code alongside
/// the human-readable message.  Thrown by the client's request methods.
struct service_error : protocol_error {
  error_code code;
  /// v5: server's backoff hint in ms (0 = none).  Non-zero on
  /// overloaded/too_many_connections; resilient_client honors it.
  std::uint32_t retry_after_ms = 0;
  service_error(error_code c, const std::string& message,
                std::uint32_t retry_after = 0)
      : protocol_error(message), code(c), retry_after_ms(retry_after) {}
};

struct frame {
  msg_type type = msg_type::error;
  /// Version byte the peer announced.  The frame header layout is frozen,
  /// so frames of any plausible version parse structurally; callers enforce
  /// their own version policy (the server rejects != protocol_version with
  /// a typed error encoded at the peer's version).
  std::uint8_t version = protocol_version;
  std::vector<std::uint8_t> payload;
};

/// Serializes one frame (header + payload) ready for a single write.
/// `version` stamps the header: responses to a mismatched peer are encoded
/// at the PEER's version so it can decode them (payload must then use the
/// legacy layout — see encode_legacy_error).
std::vector<std::uint8_t> encode_frame(msg_type type,
                                       std::span<const std::uint8_t> payload,
                                       std::uint8_t version = protocol_version);

/// Pull-style byte source: fill up to `n` bytes into `dst`, return the count
/// actually produced (0 = end of stream).  Lets the framing layer be tested
/// against plain byte buffers and reused over any fd-like transport.
using read_fn = std::function<std::size_t(void* dst, std::size_t n)>;

/// Reads one frame.  Returns nullopt on a clean end-of-stream *before* any
/// header byte; throws protocol_error on truncation mid-frame, an
/// implausible version byte (0 or far beyond the current version — how
/// arbitrary garbage usually dies), or an oversized payload announcement.
/// A *plausible* foreign version parses fine and surfaces in
/// frame::version for the caller to reject with a typed error.
std::optional<frame> read_frame(const read_fn& read);

/// fd convenience wrappers (retry on EINTR; write loops until complete).
std::optional<frame> read_frame_fd(int fd);
void write_frame_fd(int fd, msg_type type,
                    std::span<const std::uint8_t> payload,
                    std::uint8_t version = protocol_version);

/// Deadline variant: poll()s the fd before every read.  `io_timeout_ms`
/// bounds each wait once the first header byte has arrived (a peer stalled
/// MID-frame — the slowloris case); `idle_timeout_ms` bounds the wait for
/// the first byte of the NEXT frame (an idle keep-alive connection).  A
/// timeout of <= 0 means wait forever for that phase.  Throws
/// io_timeout_error when a deadline expires.
std::optional<frame> read_frame_fd(int fd, int io_timeout_ms,
                                   int idle_timeout_ms);

/// Deadline variant of the writer: poll()s for writability before every
/// send, so a peer that stopped draining its socket cannot pin the caller.
/// Throws io_timeout_error when `io_timeout_ms` (> 0) expires.
void write_frame_fd(int fd, msg_type type,
                    std::span<const std::uint8_t> payload,
                    std::uint8_t version, int io_timeout_ms);

/// Timing-safe token comparison: examines every byte of the longer input
/// regardless of where the first mismatch sits, so a remote attacker cannot
/// binary-search the shared secret through response-latency differences.
bool constant_time_equal(const std::string& a, const std::string& b);

// ---------------------------------------------------------------------------
// Payloads.
// ---------------------------------------------------------------------------

/// How the request's circuit text is interpreted server-side.
enum class circuit_source : std::uint8_t {
  registry = 0,    ///< `spec` is a benchgen registry name; no text
  bench_text = 1,  ///< `source_text` is .bench content; `model` names it
  blif_text = 2,   ///< `source_text` is .blif content (model from header)
};

/// One synthesis request: the circuit plus exactly the knobs xsfq_synth
/// exposes, so a served run and a local run are the same computation.
struct synth_request {
  std::string spec;  ///< display name (registry name or original file path)
  circuit_source source = circuit_source::registry;
  std::string source_text;  ///< inline netlist text for bench/blif sources
  std::string model;        ///< bench model name (basename of the file)
  mapping_params map;
  bool validate = false;       ///< per-pass sim checks + pulse-level check
  bool want_verilog = false;   ///< fill synth_response::verilog
  bool want_dot = false;       ///< fill synth_response::dot
  bool stream_progress = false;
  /// Intra-flow parallelism for the optimize stage (partitioned regions on
  /// the server's worker pool); 1 = the sequential pipeline.  Joins the
  /// result-cache fingerprint because the partition count changes results.
  std::uint32_t flow_jobs = 1;
  /// Admission priority, 0..255, higher admitted first (default 100).
  /// Orders only the wait for an execution slot; execution itself is
  /// unaffected.
  std::uint8_t priority = 100;
  /// Relative admission deadline in ms (0 = none): if no execution slot
  /// frees within this budget of the request's arrival, the daemon fails it
  /// with `deadline_expired` instead of running work nobody is waiting for.
  double deadline_ms = 0.0;
  /// v4: fixed-grain region partitioning for the optimize stage (0 = the
  /// legacy monolithic/flow_jobs pipeline).  Regions of ~grain gates are
  /// optimized independently and their results cached across requests,
  /// which is what makes a later `synth_delta` against this circuit cheap.
  /// Joins the result-cache fingerprint (the partition shape changes the
  /// optimized network).
  std::uint32_t partition_grain = 0;
  /// v6: client-generated 16-byte trace id (both halves zero = untraced).
  /// The daemon records every stage of this request's life against it; a
  /// later `trace` request with the same id returns the span set.  Does NOT
  /// join any cache fingerprint — tracing never changes results.
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
};

/// v4: one incremental-resynthesis request.  `base` carries the circuit and
/// every synthesis knob exactly as a plain submit would (so the daemon can
/// rebuild the base when it is no longer retained, and so the edited run is
/// keyed/cached like any other request); `base_content_hash` names the
/// synthesized network the edit applies to.
struct synth_delta_request {
  synth_request base;
  std::uint64_t base_content_hash = 0;
  /// Edit script in the aig/edit.hpp grammar (replace/sub/po/and/addpi/
  /// addpo lines).  An empty script is legal and degrades to a plain cached
  /// submit of the base circuit.
  std::string edit_text;
  /// Drop the base circuit's memory/disk cache entries once the edited
  /// result is stored: an interactive session edits a design *away*, so the
  /// superseded entry would never be requested again.
  bool supersede_base = true;
  /// Bypass every cache tier (region, optimized-network, full-result) and
  /// resynthesize the edited circuit from scratch.  The ECO comparator: a
  /// client can assert byte-identity between the incremental and the cold
  /// path end-to-end.
  bool force_full = false;
};

/// One per-stage progress notification (flow::stage_event on the wire).
struct progress_event {
  std::string stage;
  std::uint32_t index = 0;
  std::uint32_t total = 0;
  double ms = 0.0;
  flow::stage_counters counters;
  bool from_cache = false;
};

/// Everything a submit yields.  `report` and `validate_report` are the
/// deterministic parts of the xsfq_synth output (byte-identical between a
/// served and a local run); the timings are wall-clock and vary per run.
struct synth_response {
  bool ok = false;
  std::string error;  ///< stage exception text when !ok
  std::string report;
  std::string validate_report;  ///< empty unless validation was requested
  bool validate_ok = true;
  std::string verilog;  ///< filled when want_verilog
  std::string dot;      ///< filled when want_dot
  std::vector<flow::stage_timing> timings;
  double total_ms = 0.0;
  bool served_from_cache = false;  ///< every stage replayed from a cache tier
  /// v4: content hash of the request's (edited) input circuit — the identity
  /// a later synth_delta request names as its base.
  std::uint64_t content_hash = 0;
};

/// Client side of the v3 capability exchange.
struct hello_request {
  std::uint8_t client_version = protocol_version;
  std::string client_name;  ///< free-form, e.g. "xsfq_client/0.1"
};

/// Daemon side of the v3 capability exchange.
struct hello_reply {
  std::uint8_t server_version = protocol_version;
  bool auth_required = false;  ///< this connection must auth before requests
  std::uint32_t max_payload = max_frame_payload;
  std::vector<std::string> capabilities;  ///< e.g. "auth", "server_stats"
};

/// Shared-secret credential frame (v3).  Sent once, before any request, on
/// transports the daemon requires auth for.
struct auth_request {
  std::string token;
};

/// v6: asks for the span set collected for one traced request.  Sent after
/// the result arrived (spans complete when the response does); the reply
/// for an unknown/evicted id is an empty span list, not an error.
struct trace_request {
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
};

/// One completed span on the wire (util/trace.hpp span, minus the id — the
/// reply is already scoped to one trace).
struct trace_span {
  std::string name;  ///< "queue_wait", "stage:optimize", "request_total", ...
  std::uint64_t start_us = 0;  ///< daemon-side steady clock, see trace.hpp
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;  ///< daemon thread that recorded the span
};

/// v6: reply to `trace` — every span the daemon collected for the id,
/// sorted by start time.
struct trace_reply {
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::vector<trace_span> spans;
};

struct server_status {
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t active_connections = 0;
  std::uint32_t worker_threads = 0;
  std::uint64_t steals = 0;
  double uptime_s = 0.0;
};

struct cache_stats_reply {
  flow::batch_cache_stats stats;
  std::string disk_directory;  ///< empty when the disk tier is disabled
};

/// v5: one fault-injection site's counters inside a server_stats scrape
/// (mirrors fault::site_stats; populated only while a schedule is armed).
struct fault_site_snapshot {
  std::string site;
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
};

/// One named latency histogram inside a server_stats scrape (the fixed
/// log-bucket layout of util/histogram.hpp on the wire).
struct histogram_snapshot {
  std::string name;  ///< "queue_wait", "request_total", "stage:optimize", ...
  std::uint64_t count = 0;
  double sum_ms = 0.0;
  double max_ms = 0.0;
  std::vector<std::uint64_t> buckets;  ///< log_histogram::num_buckets counts
};

/// The v3 metrics scrape: everything a load balancer or dashboard needs in
/// one frame — job/connection gauges, every cache tier, admission counters,
/// and per-stage latency histograms merged across workers at read time.
struct server_stats_reply {
  server_status status;
  flow::batch_cache_stats cache;
  std::string disk_directory;
  // Admission control (see serve/admission.hpp).
  std::uint64_t accepted = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t rejected_auth = 0;   ///< failed or missing auth attempts
  std::uint64_t rejected_conns = 0;  ///< connections bounced at the cap
  std::uint64_t peak_queue_depth = 0;
  std::uint32_t queue_depth = 0;  ///< admission waiters right now
  std::uint32_t inflight = 0;     ///< admitted requests executing
  std::uint32_t max_queue = 0;
  std::uint32_t max_inflight = 0;
  std::uint32_t max_conns = 0;
  /// Jobs sitting in the batch_runner's worker deques (scheduled, not yet
  /// picked up) — distinct from the admission queue in front of it.
  std::uint64_t runner_queue_depth = 0;
  // v4: incremental-resynthesis (ECO) counters.  The cache-tier side
  // (region hits/misses, eco_patches, retained_networks) lives in `cache`;
  // these count the request-level outcomes.
  std::uint64_t eco_requests = 0;       ///< synth_delta frames accepted
  std::uint64_t eco_retained_hits = 0;  ///< base found in the retained tier
  std::uint64_t eco_base_rebuilds = 0;  ///< base re-materialized from request
  std::uint64_t eco_failures = 0;       ///< unknown_base + bad_edit rejections
  // v5: robustness counters.
  std::uint64_t io_timeouts = 0;   ///< connections dropped at an I/O deadline
  std::uint64_t fault_fired = 0;   ///< injected faults fired (chaos drills)
  // v6: flight-recorder counters (util/trace.hpp) — dropped > 0 means the
  // per-thread rings or the per-trace collector overflowed their windows.
  std::uint64_t trace_spans_recorded = 0;
  std::uint64_t trace_spans_dropped = 0;
  /// Per-site fire counters of the armed fault schedule (empty outside
  /// drills) — lets a chaos harness assert exactly which sites fired.
  std::vector<fault_site_snapshot> fault_sites;
  std::vector<histogram_snapshot> histograms;
};

// Encoders return the payload bytes; decoders throw serialize_error (a
// protocol violation the caller maps to an error frame) on malformed input.
std::vector<std::uint8_t> encode_synth_request(const synth_request& req);
synth_request decode_synth_request(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_synth_delta_request(
    const synth_delta_request& req);
synth_delta_request decode_synth_delta_request(
    std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_progress_event(const progress_event& ev);
progress_event decode_progress_event(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_synth_response(const synth_response& resp);
synth_response decode_synth_response(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_hello_request(const hello_request& req);
hello_request decode_hello_request(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_hello_reply(const hello_reply& reply);
hello_reply decode_hello_reply(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_auth_request(const auth_request& req);
auth_request decode_auth_request(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_trace_request(const trace_request& req);
trace_request decode_trace_request(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_trace_reply(const trace_reply& reply);
trace_reply decode_trace_reply(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_server_status(const server_status& status);
server_status decode_server_status(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_cache_stats(const cache_stats_reply& reply);
cache_stats_reply decode_cache_stats(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_server_stats(const server_stats_reply& reply);
server_stats_reply decode_server_stats(std::span<const std::uint8_t> payload);

/// Typed error payload: [u8 code][str message][u32 retry_after_ms (v5+)].
/// The trailing hint is OPTIONAL on decode — a v3/v4 payload without it
/// parses fine — so one decoder handles every typed-error vintage.
std::vector<std::uint8_t> encode_error(error_code code,
                                       const std::string& message,
                                       std::uint32_t retry_after_ms = 0);
/// Decoded typed error payload (out-of-range codes map to
/// error_code::generic so a newer daemon's codes degrade gracefully).
struct error_reply {
  error_code code = error_code::generic;
  std::string message;
  std::uint32_t retry_after_ms = 0;  ///< absent on the wire decodes as 0
};
error_reply decode_error(std::span<const std::uint8_t> payload);

/// Encodes an error payload in the layout the PEER's announced version can
/// decode: bare string below v3, [code][message] for v3/v4, the full v5
/// layout with retry_after_ms at v5+.  The version-mismatch reply path and
/// every best-effort error frame funnel through this.
std::vector<std::uint8_t> encode_error_for_version(
    std::uint8_t peer_version, error_code code, const std::string& message,
    std::uint32_t retry_after_ms = 0);

/// v1/v2 error payload (bare string) — used only when answering a peer that
/// announced an older version, encoded at THAT version so it can decode.
std::vector<std::uint8_t> encode_legacy_error(const std::string& message);
/// The inverse: what a v3 client does with an error frame whose header
/// announces an older version (a pre-v3 daemon rejecting us).
std::string decode_legacy_error(std::span<const std::uint8_t> payload);

}  // namespace xsfq::serve
