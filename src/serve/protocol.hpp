#pragma once
/// \file protocol.hpp
/// \brief Wire protocol of the synthesis service (xsfq_served / xsfq_client).
///
/// A connection carries a sequence of length-prefixed frames over a
/// Unix-domain stream socket:
///
///   [u32 payload_len][u8 version][u8 msg_type][payload bytes...]
///
/// all little-endian (the codec in util/serialize.hpp).  A client sends one
/// request frame and reads response frames until the terminal one: `submit`
/// yields zero or more `progress` frames (when streaming was requested)
/// followed by exactly one `result` or `error`; every other request yields
/// exactly one response frame.  Framing violations — version mismatch,
/// payload over `max_frame_payload`, truncation mid-frame, undecodable
/// payload — raise `protocol_error`; the server answers with an `error`
/// frame when the connection is still writable and closes it.
///
/// The payload structs below are the complete vocabulary: a synthesis
/// request (circuit by registry name or inline .bench/.blif text + the same
/// knobs xsfq_synth takes), per-stage progress events sourced from
/// flow_result timings, the full response, daemon status, and cache stats.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/mapper.hpp"
#include "flow/batch_runner.hpp"
#include "util/serialize.hpp"

namespace xsfq::serve {

// v2: synth_request gained flow_jobs (intra-flow parallelism), stage
// counters gained arena_peak_bytes + rebuilds_avoided.
inline constexpr std::uint8_t protocol_version = 2;
/// Upper bound on one frame's payload; a header announcing more is garbage
/// (the largest legitimate payload is a synth_response with Verilog text).
inline constexpr std::uint32_t max_frame_payload = 64u << 20;
/// Default rendezvous path shared by the daemon and client binaries.
inline constexpr const char* default_socket_path = "/tmp/xsfq_served.sock";

enum class msg_type : std::uint8_t {
  // requests
  submit = 1,
  status = 2,
  cache_stats = 3,
  shutdown = 4,
  ping = 5,
  // responses
  result = 64,
  status_ok = 65,
  cache_stats_ok = 66,
  shutdown_ok = 67,
  pong = 68,
  progress = 96,  ///< streamed before `result` when the client asked for it
  error = 127,
};

struct protocol_error : std::runtime_error {
  explicit protocol_error(const std::string& what)
      : std::runtime_error("protocol: " + what) {}
};

struct frame {
  msg_type type = msg_type::error;
  std::vector<std::uint8_t> payload;
};

/// Serializes one frame (header + payload) ready for a single write.
std::vector<std::uint8_t> encode_frame(msg_type type,
                                       std::span<const std::uint8_t> payload);

/// Pull-style byte source: fill up to `n` bytes into `dst`, return the count
/// actually produced (0 = end of stream).  Lets the framing layer be tested
/// against plain byte buffers and reused over any fd-like transport.
using read_fn = std::function<std::size_t(void* dst, std::size_t n)>;

/// Reads one frame.  Returns nullopt on a clean end-of-stream *before* any
/// header byte; throws protocol_error on truncation mid-frame, version
/// mismatch, or an oversized payload announcement.
std::optional<frame> read_frame(const read_fn& read);

/// fd convenience wrappers (retry on EINTR; write loops until complete).
std::optional<frame> read_frame_fd(int fd);
void write_frame_fd(int fd, msg_type type,
                    std::span<const std::uint8_t> payload);

// ---------------------------------------------------------------------------
// Payloads.
// ---------------------------------------------------------------------------

/// How the request's circuit text is interpreted server-side.
enum class circuit_source : std::uint8_t {
  registry = 0,    ///< `spec` is a benchgen registry name; no text
  bench_text = 1,  ///< `source_text` is .bench content; `model` names it
  blif_text = 2,   ///< `source_text` is .blif content (model from header)
};

/// One synthesis request: the circuit plus exactly the knobs xsfq_synth
/// exposes, so a served run and a local run are the same computation.
struct synth_request {
  std::string spec;  ///< display name (registry name or original file path)
  circuit_source source = circuit_source::registry;
  std::string source_text;  ///< inline netlist text for bench/blif sources
  std::string model;        ///< bench model name (basename of the file)
  mapping_params map;
  bool validate = false;       ///< per-pass sim checks + pulse-level check
  bool want_verilog = false;   ///< fill synth_response::verilog
  bool want_dot = false;       ///< fill synth_response::dot
  bool stream_progress = false;
  /// Intra-flow parallelism for the optimize stage (partitioned regions on
  /// the server's worker pool); 1 = the sequential pipeline.  Joins the
  /// result-cache fingerprint because the partition count changes results.
  std::uint32_t flow_jobs = 1;
};

/// One per-stage progress notification (flow::stage_event on the wire).
struct progress_event {
  std::string stage;
  std::uint32_t index = 0;
  std::uint32_t total = 0;
  double ms = 0.0;
  flow::stage_counters counters;
  bool from_cache = false;
};

/// Everything a submit yields.  `report` and `validate_report` are the
/// deterministic parts of the xsfq_synth output (byte-identical between a
/// served and a local run); the timings are wall-clock and vary per run.
struct synth_response {
  bool ok = false;
  std::string error;  ///< stage exception text when !ok
  std::string report;
  std::string validate_report;  ///< empty unless validation was requested
  bool validate_ok = true;
  std::string verilog;  ///< filled when want_verilog
  std::string dot;      ///< filled when want_dot
  std::vector<flow::stage_timing> timings;
  double total_ms = 0.0;
  bool served_from_cache = false;  ///< every stage replayed from a cache tier
};

struct server_status {
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t active_connections = 0;
  std::uint32_t worker_threads = 0;
  std::uint64_t steals = 0;
  double uptime_s = 0.0;
};

struct cache_stats_reply {
  flow::batch_cache_stats stats;
  std::string disk_directory;  ///< empty when the disk tier is disabled
};

// Encoders return the payload bytes; decoders throw serialize_error (a
// protocol violation the caller maps to an error frame) on malformed input.
std::vector<std::uint8_t> encode_synth_request(const synth_request& req);
synth_request decode_synth_request(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_progress_event(const progress_event& ev);
progress_event decode_progress_event(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_synth_response(const synth_response& resp);
synth_response decode_synth_response(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_server_status(const server_status& status);
server_status decode_server_status(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_cache_stats(const cache_stats_reply& reply);
cache_stats_reply decode_cache_stats(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_error(const std::string& message);
std::string decode_error(std::span<const std::uint8_t> payload);

}  // namespace xsfq::serve
