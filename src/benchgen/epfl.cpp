#include "benchgen/epfl.hpp"

#include <stdexcept>

#include "benchgen/blocks.hpp"

namespace xsfq::benchgen {

using namespace blocks;

namespace {

std::vector<signal> make_pis(aig& g, unsigned count, const std::string& prefix) {
  std::vector<signal> pis;
  pis.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    pis.push_back(g.create_pi(prefix + std::to_string(i)));
  }
  return pis;
}

void make_pos(aig& g, std::span<const signal> outs, const std::string& prefix) {
  for (std::size_t i = 0; i < outs.size(); ++i) {
    g.create_po(outs[i], prefix + std::to_string(i));
  }
}

}  // namespace

aig make_arbiter() {
  // 128 requestors with a 128-bit one-hot round-robin pointer; outputs the
  // 128 one-hot grants plus a bus-busy flag.
  aig g;
  const auto req = make_pis(g, 128, "req");
  const auto ptr = make_pis(g, 128, "ptr");
  const auto grant = round_robin_arbiter(g, req, ptr);
  std::vector<signal> outs = grant;
  outs.push_back(g.create_or_n(req));
  make_pos(g, outs, "gnt");
  return g.cleanup();
}

aig make_cavlc() {
  // CAVLC coefficient-token encoder: maps (TotalCoeff[0..4], TrailingOnes
  // [0..1], context[0..2]) through a code table to (length[0..3],
  // value[0..6]).  Implemented as table logic over the 10-bit input.
  aig g;
  const auto coeff = make_pis(g, 5, "tc");
  const auto ones = make_pis(g, 2, "t1");
  const auto ctx = make_pis(g, 3, "ctx");

  // Deterministic pseudo-table (documented in DESIGN.md): code length is a
  // saturating function of coeff and ones, value mixes the fields.  The point
  // is matching workload shape (dense 10-in/11-out control logic).
  std::vector<signal> in;
  in.insert(in.end(), coeff.begin(), coeff.end());
  in.insert(in.end(), ones.begin(), ones.end());
  in.insert(in.end(), ctx.begin(), ctx.end());

  const auto sum = ripple_adder(g, coeff, std::vector<signal>{ones[0], ones[1], ctx[0], ctx[1], ctx[2]}, g.get_constant(false));
  std::vector<signal> outs;
  // length[0..3]: saturated sum.
  for (unsigned i = 0; i < 4; ++i) outs.push_back(sum.sum[i]);
  // value[0..6]: mixed products of fields.
  outs.push_back(g.create_and(coeff[0], g.create_xor(ones[0], ctx[0])));
  outs.push_back(g.create_or(g.create_and(coeff[1], ones[1]), ctx[1]));
  outs.push_back(g.create_xor(g.create_and(coeff[2], ctx[2]), ones[0]));
  outs.push_back(g.create_mux(ctx[0], coeff[3], coeff[4]));
  outs.push_back(g.create_maj(coeff[0], coeff[2], ctx[1]));
  outs.push_back(g.create_xor(sum.carry, g.create_and(ones[0], ones[1])));
  outs.push_back(g.create_and(g.create_or(coeff[3], coeff[4]), !ctx[2]));
  make_pos(g, outs, "code");
  return g.cleanup();
}

aig make_ctrl() {
  // Small instruction decoder: 7-bit opcode to 26 control strobes.
  aig g;
  const auto op = make_pis(g, 7, "op");
  const auto onehot = decoder(g, std::span<const signal>(op.data(), 5));
  std::vector<signal> outs;
  for (unsigned i = 0; i < 20; ++i) {
    outs.push_back(g.create_and(onehot[i], op[5 + (i % 2)]));
  }
  outs.push_back(g.create_or_n(std::span<const signal>(onehot.data(), 8)));
  outs.push_back(g.create_or_n(std::span<const signal>(onehot.data() + 8, 8)));
  outs.push_back(g.create_xor(op[5], op[6]));
  outs.push_back(g.create_and(op[5], op[6]));
  outs.push_back(g.create_nor(op[5], op[6]));
  outs.push_back(g.create_xor_n(op));
  make_pos(g, outs, "ctl");
  return g.cleanup();
}

aig make_dec() {
  aig g;
  const auto sel = make_pis(g, 8, "sel");
  const auto onehot = decoder(g, sel);
  make_pos(g, onehot, "d");
  return g.cleanup();
}

aig make_i2c() {
  // I2C master controller slice: command/status datapath without state
  // (the sequential part of the original is in its registers; here the
  // combinational next-state/output cloud is generated, 147 in / 142 out).
  aig g;
  const auto state = make_pis(g, 16, "st");     // current-state vector
  const auto cmd = make_pis(g, 8, "cmd");
  const auto data = make_pis(g, 8, "dat");
  const auto shift = make_pis(g, 8, "shf");
  const auto cnt = make_pis(g, 8, "cnt");
  const auto bus = make_pis(g, 3, "bus");       // scl/sda/arb
  const auto misc = make_pis(g, 96, "misc");

  std::vector<signal> outs;
  // Next-state logic: one-hot-ish transition cloud.
  const auto dec_state = decoder(g, std::span<const signal>(state.data(), 4));
  for (unsigned i = 0; i < 16; ++i) {
    const signal take = g.create_and(dec_state[i], g.create_mux(bus[0], cmd[i % 8], data[(i + 3) % 8]));
    outs.push_back(g.create_or(take, g.create_and(state[i], !bus[1])));
  }
  // Shift-register next values.
  for (unsigned i = 0; i < 8; ++i) {
    const signal shifted = i == 0 ? bus[2] : shift[i - 1];
    outs.push_back(g.create_mux(cmd[0], shifted, shift[i]));
  }
  // Counter increment.
  const auto inc = ripple_adder(g, cnt, constant_word(g, 1, 8), g.get_constant(false));
  for (unsigned i = 0; i < 8; ++i) {
    outs.push_back(g.create_mux(cmd[1], inc.sum[i], cnt[i]));
  }
  // Status flags and masked misc bus.
  outs.push_back(equals(g, cnt, cmd));
  outs.push_back(g.create_and(bus[0], bus[1]));
  for (unsigned i = 0; i < 96; ++i) {
    outs.push_back(g.create_and(misc[i], g.create_xor(state[i % 16], cmd[i % 8])));
  }
  // Arbitration-lost strobes.
  outs.push_back(g.create_and(bus[2], !bus[1]));
  outs.push_back(g.create_or(outs[32], outs[33]));
  outs.push_back(g.create_xor_n(std::span<const signal>(state.data(), 16)));
  outs.push_back(g.create_or_n(std::span<const signal>(cmd.data(), 8)));
  // Per-command acknowledge strobes (pads the interface to 142 outputs).
  for (unsigned i = 0; i < 8; ++i) {
    outs.push_back(g.create_and(cmd[i], g.create_xor(shift[i], data[i])));
  }
  make_pos(g, outs, "o");
  return g.cleanup();
}

aig make_int2float() {
  aig g;
  const auto v = make_pis(g, 11, "i");
  const auto f = int_to_float(g, v);
  make_pos(g, f, "f");
  return g.cleanup();
}

aig make_mem_ctrl() {
  // Memory controller slice: request arbitration across 4 banks, address
  // decode, refresh counter compare, byte-mask expansion.  The original EPFL
  // circuit has a 1204-bit interface; this keeps the same logic styles at
  // 115 in / 90 out (documented scaling).
  aig g;
  const auto req = make_pis(g, 16, "req");       // 4 banks x 4 requestors
  const auto ptr = make_pis(g, 16, "ptr");
  const auto addr = make_pis(g, 24, "addr");
  const auto wdata_mask = make_pis(g, 8, "wm");
  const auto refresh = make_pis(g, 12, "rc");
  const auto limit = make_pis(g, 12, "rl");
  const auto cfg = make_pis(g, 27, "cfg");

  std::vector<signal> outs;
  // Per-bank round-robin grants.
  for (unsigned bank = 0; bank < 4; ++bank) {
    const std::span<const signal> bank_req(req.data() + 4 * bank, 4);
    const std::span<const signal> bank_ptr(ptr.data() + 4 * bank, 4);
    const auto grant = round_robin_arbiter(g, bank_req, bank_ptr);
    outs.insert(outs.end(), grant.begin(), grant.end());  // 16 total
  }
  // Row/column decode of the address.
  const auto row_dec = decoder(g, std::span<const signal>(addr.data(), 5));
  outs.insert(outs.end(), row_dec.begin(), row_dec.end());  // 48
  // Refresh due.
  outs.push_back(!less_than(g, refresh, limit));            // 49
  // Byte masks expanded under config.
  for (unsigned i = 0; i < 8; ++i) {
    outs.push_back(g.create_and(wdata_mask[i], cfg[i]));
    outs.push_back(g.create_or(wdata_mask[i], cfg[8 + i]));  // 65
  }
  // Bank-collision detectors.
  for (unsigned bank = 0; bank < 4; ++bank) {
    std::vector<signal> bank_bits(req.begin() + 4 * bank,
                                  req.begin() + 4 * bank + 4);
    outs.push_back(g.create_and(g.create_or_n(bank_bits),
                                g.create_and(addr[5 + bank], cfg[16 + bank])));
  }
  // Config parity / checksum outs.
  for (unsigned grp = 0; grp < 21; ++grp) {
    std::vector<signal> grp_bits;
    for (unsigned i = grp; i < 27; i += 21) grp_bits.push_back(cfg[i]);
    grp_bits.push_back(addr[grp % 24]);
    outs.push_back(g.create_xor_n(grp_bits));  // 90
  }
  make_pos(g, outs, "o");
  return g.cleanup();
}

aig make_priority() {
  aig g;
  const auto req = make_pis(g, 128, "req");
  const auto pri = priority_encode(g, req);
  std::vector<signal> outs = pri.encoded;  // 7 bits
  outs.push_back(pri.valid);               // 8
  make_pos(g, outs, "p");
  return g.cleanup();
}

aig make_router() {
  // Packet router address logic: match destination field against 4 port
  // prefixes, compute credit-based route validity.
  aig g;
  const auto dest = make_pis(g, 16, "dst");
  const auto prefix = make_pis(g, 32, "pfx");   // 4 ports x 8-bit prefix
  const auto credit = make_pis(g, 12, "crd");   // 4 ports x 3-bit credits

  std::vector<signal> outs;
  std::vector<signal> match;
  for (unsigned port = 0; port < 4; ++port) {
    const std::span<const signal> p(prefix.data() + 8 * port, 8);
    const std::span<const signal> d(dest.data(), 8);
    match.push_back(equals(g, d, p));
  }
  const auto pri = priority_encode(g, match);
  for (unsigned port = 0; port < 4; ++port) {
    const std::span<const signal> c(credit.data() + 3 * port, 3);
    const signal has_credit = g.create_or_n(c);
    outs.push_back(g.create_and(pri.grant[port], has_credit));  // route strobe
    // Decremented credit.
    const auto dec = subtractor(g, c, constant_word(g, 1, 3));
    for (unsigned b = 0; b < 3; ++b) {
      outs.push_back(g.create_mux(pri.grant[port], dec.sum[b], c[b]));
    }
    outs.push_back(g.create_and(pri.grant[port], !has_credit));  // stall
    outs.push_back(equals(g, std::span<const signal>(dest.data() + 8, 8),
                          std::span<const signal>(prefix.data() + 8 * port, 8)));
  }  // 24 so far
  outs.push_back(pri.valid);
  outs.push_back(!pri.valid);
  outs.push_back(g.create_xor_n(dest));
  outs.push_back(g.create_or_n(std::span<const signal>(credit.data(), 12)));
  outs.push_back(g.create_and(match[0], match[1]));
  outs.push_back(g.create_or(match[2], match[3]));  // 30
  make_pos(g, outs, "r");
  return g.cleanup();
}

aig make_voter() {
  aig g;
  const auto in = make_pis(g, 1001, "v");
  g.create_po(majority(g, in), "maj");
  return g.cleanup();
}

aig make_voter_sop() {
  // Sum-of-products majority-of-15: one product per minimal winning
  // coalition of 8 (C(15,8) = 6435 cubes would be exact; the generator uses
  // the recursive threshold expansion which yields an OR-of-AND tree without
  // complemented internal fanouts — the property that gives 0% duplication).
  aig g;
  const auto in = make_pis(g, 15, "v");
  // th(k, i): at least k of in[i..14] are 1, built with only AND/OR of
  // positive literals (monotone), memoized.
  std::vector<std::vector<signal>> memo(16, std::vector<signal>(16, g.get_constant(false)));
  std::vector<std::vector<bool>> ready(16, std::vector<bool>(16, false));
  auto th = [&](auto&& self, unsigned k, unsigned i) -> signal {
    if (k == 0) return g.get_constant(true);
    if (15 - i < k) return g.get_constant(false);
    if (ready[k][i]) return memo[k][i];
    const signal with = g.create_and(in[i], self(self, k - 1, i + 1));
    const signal without = self(self, k, i + 1);
    const signal r = g.create_or(with, without);
    memo[k][i] = r;
    ready[k][i] = true;
    return r;
  };
  g.create_po(th(th, 8, 0), "maj");
  return g.cleanup();
}

aig make_sin() {
  aig g;
  const auto angle = make_pis(g, 24, "x");
  const auto y = cordic_sin(g, angle, 14);
  // 25 output bits (paper's sin has 25 outputs; ours: 24+2 guard, drop MSB).
  make_pos(g, std::span<const signal>(y.data(), 25), "s");
  return g.cleanup();
}

const std::vector<std::string>& epfl_control_names() {
  static const std::vector<std::string> names = {
      "arbiter", "cavlc", "ctrl", "dec", "i2c",
      "int2float", "mem_ctrl", "priority", "router", "voter"};
  return names;
}

const std::vector<std::string>& epfl_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> all = epfl_control_names();
    all.push_back("voter_sop");
    all.push_back("sin");
    return all;
  }();
  return names;
}

aig make_epfl(const std::string& name) {
  if (name == "arbiter") return make_arbiter();
  if (name == "cavlc") return make_cavlc();
  if (name == "ctrl") return make_ctrl();
  if (name == "dec") return make_dec();
  if (name == "i2c") return make_i2c();
  if (name == "int2float") return make_int2float();
  if (name == "mem_ctrl") return make_mem_ctrl();
  if (name == "priority") return make_priority();
  if (name == "router") return make_router();
  if (name == "voter") return make_voter();
  if (name == "voter_sop") return make_voter_sop();
  if (name == "sin") return make_sin();
  throw std::invalid_argument("make_epfl: unknown circuit " + name);
}

}  // namespace xsfq::benchgen
