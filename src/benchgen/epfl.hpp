#pragma once
/// \file epfl.hpp
/// \brief Generators for EPFL-benchmark-equivalent circuits.
///
/// Covers the ten "random/control" circuits used in the paper's Table 3 plus
/// the arithmetic circuits referenced in Table 4 ("sin", "int2float", "dec",
/// "priority", "cavlc").  As with ISCAS85, the original files are not
/// redistributable here; the generators build the documented function with
/// matching interface shapes (the wide mem_ctrl/arbiter interfaces are scaled
/// where noted in DESIGN.md to keep laptop-scale runtimes).
///
/// `make_voter_sop` additionally provides the paper's alternative
/// sum-of-products voter implementation with a 0% duplication penalty
/// (Sec. 3.1.5 discussion).

#include <string>
#include <vector>

#include "aig/aig.hpp"

namespace xsfq::benchgen {

aig make_arbiter();    ///< 256 in / 129 out — round-robin bus arbiter
aig make_cavlc();      ///< 10 in / 11 out — CAVLC coefficient-token encoder
aig make_ctrl();       ///< 7 in / 26 out — simple instruction decoder
aig make_dec();        ///< 8 in / 256 out — full binary decoder
aig make_i2c();        ///< 147 in / 142 out — I2C controller slice
aig make_int2float();  ///< 11 in / 7 out — integer to mini-float converter
aig make_mem_ctrl();   ///< 115 in / 90 out — memory controller slice (scaled)
aig make_priority();   ///< 128 in / 8 out — 128-bit priority encoder
aig make_router();     ///< 60 in / 30 out — packet router address logic
aig make_voter();      ///< 1001 in / 1 out — majority voter (popcount form)
aig make_voter_sop();  ///< 15 in / 1 out — SOP-form voter (0% duplication)
aig make_sin();        ///< 24 in / 25 out — CORDIC sine (arithmetic suite)

/// The ten control circuits of Table 3 in the paper's order.
const std::vector<std::string>& epfl_control_names();
/// All supported EPFL circuits.
const std::vector<std::string>& epfl_names();
aig make_epfl(const std::string& name);

}  // namespace xsfq::benchgen
