#pragma once
/// \file registry.hpp
/// \brief Name-based lookup across all benchmark suites.

#include <string>
#include <vector>

#include "aig/aig.hpp"

namespace xsfq::benchgen {

enum class suite { iscas85, epfl, iscas89 };

struct benchmark_entry {
  std::string name;
  suite which_suite;
  bool sequential;
};

/// All benchmark circuits this library can generate.
const std::vector<benchmark_entry>& all_benchmarks();

/// Builds any benchmark by name; throws on unknown names.
aig make_benchmark(const std::string& name);

}  // namespace xsfq::benchgen
