#pragma once
/// \file iscas89.hpp
/// \brief Generators for ISCAS89-equivalent sequential circuits.
///
/// Each generator builds a sequential design with the documented interface
/// shape of the named ISCAS89 benchmark (primary inputs / outputs / flip-flop
/// count) and a functional character matching its published description
/// (traffic-light and protocol FSMs, fractional counters, PLD-style control).
/// Used by the Table 6 experiment.  See DESIGN.md "Substitutions".

#include <string>
#include <vector>

#include "aig/aig.hpp"

namespace xsfq::benchgen {

/// Interface profile of an ISCAS89-equivalent circuit.
struct iscas89_profile {
  std::string name;
  unsigned inputs;
  unsigned outputs;
  unsigned flip_flops;
};

/// Profiles of the sixteen circuits used in the paper's Table 6.
const std::vector<iscas89_profile>& iscas89_profiles();

/// Builds a circuit by name ("s27", "s298", ..., "s838.1").
aig make_iscas89(const std::string& name);

/// Generic FSM + datapath generator backing most of the suite: builds a
/// deterministic circuit with the requested interface from a seeded mix of
/// counter, shift-register and next-state logic.  Exposed for tests.
aig make_sequential_equiv(const iscas89_profile& profile, std::uint64_t seed);

}  // namespace xsfq::benchgen
