#include "benchgen/registry.hpp"

#include <stdexcept>

#include "benchgen/epfl.hpp"
#include "benchgen/iscas85.hpp"
#include "benchgen/iscas89.hpp"

namespace xsfq::benchgen {

const std::vector<benchmark_entry>& all_benchmarks() {
  static const std::vector<benchmark_entry> entries = [] {
    std::vector<benchmark_entry> all;
    for (const auto& name : iscas85_names()) {
      all.push_back({name, suite::iscas85, false});
    }
    for (const auto& name : epfl_names()) {
      all.push_back({name, suite::epfl, false});
    }
    for (const auto& profile : iscas89_profiles()) {
      all.push_back({profile.name, suite::iscas89, true});
    }
    return all;
  }();
  return entries;
}

aig make_benchmark(const std::string& name) {
  for (const auto& entry : all_benchmarks()) {
    if (entry.name != name) continue;
    switch (entry.which_suite) {
      case suite::iscas85: return make_iscas85(name);
      case suite::epfl: return make_epfl(name);
      case suite::iscas89: return make_iscas89(name);
    }
  }
  throw std::invalid_argument("make_benchmark: unknown circuit " + name);
}

}  // namespace xsfq::benchgen
