#include "benchgen/iscas85.hpp"

#include <stdexcept>

#include "benchgen/blocks.hpp"

namespace xsfq::benchgen {

using namespace blocks;

namespace {

std::vector<signal> make_pis(aig& g, unsigned count, const std::string& prefix) {
  std::vector<signal> pis;
  pis.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    pis.push_back(g.create_pi(prefix + std::to_string(i)));
  }
  return pis;
}

void make_pos(aig& g, std::span<const signal> outs, const std::string& prefix) {
  for (std::size_t i = 0; i < outs.size(); ++i) {
    g.create_po(outs[i], prefix + std::to_string(i));
  }
}

std::span<const signal> slice(const std::vector<signal>& v, std::size_t begin,
                              std::size_t count) {
  return {v.data() + begin, count};
}

}  // namespace

aig make_c432() {
  // 27-channel interrupt controller: 27 request lines + 9 mask/mode bits.
  // Priority-encodes enabled requests in three 9-channel groups and combines.
  aig g;
  const auto req = make_pis(g, 27, "req");
  const auto mask = make_pis(g, 9, "mask");

  std::vector<signal> enabled;
  for (unsigned i = 0; i < 27; ++i) {
    enabled.push_back(g.create_and(req[i], !mask[i % 9]));
  }
  std::vector<signal> outs;
  // Per-group any-request flags.
  for (unsigned grp = 0; grp < 3; ++grp) {
    outs.push_back(g.create_or_n(slice(enabled, grp * 9, 9)));
  }
  // Global priority encode over all enabled lines -> 5-bit channel index,
  // gated by a valid flag folded into the encoding like the original's PA..PE.
  const auto pri = priority_encode(g, enabled);
  for (unsigned b = 0; b < 4 && b < pri.encoded.size(); ++b) {
    outs.push_back(g.create_and(pri.encoded[b], pri.valid));
  }
  make_pos(g, outs, "po");
  return g.cleanup();
}

namespace {

/// Shared body for c499/c1355 (identical function per ISCAS85 documentation;
/// c1355 expands each XOR into NAND trees, which an AIG does implicitly).
aig make_sec32(bool expand_hint) {
  (void)expand_hint;  // both variants lower identically in an AIG
  aig g;
  const auto data = make_pis(g, 32, "id");
  const auto parity = make_pis(g, 6, "ic");     // 6 Hamming check bits
  const auto channel = make_pis(g, 3, "r");     // rate/control lines
  // Corrector with channel-conditioned data scrambling (keeps all 41 inputs
  // in the support, like the original's control inputs).
  std::vector<signal> scrambled;
  for (unsigned i = 0; i < 32; ++i) {
    const signal sel = channel[i % 3];
    scrambled.push_back(g.create_xor(data[i], g.create_and(sel, data[(i + 8) % 32])));
  }
  const auto corrected = hamming_correct(g, scrambled, parity);
  make_pos(g, corrected, "od");
  return g.cleanup();
}

}  // namespace

aig make_c499() { return make_sec32(false); }
aig make_c1355() { return make_sec32(true); }

aig make_c880() {
  // 8-bit ALU core: opcode-selected arithmetic/logic plus parity and status.
  aig g;
  const auto a = make_pis(g, 8, "a");
  const auto b = make_pis(g, 8, "b");
  const auto c = make_pis(g, 8, "c");
  const auto op = make_pis(g, 3, "op");
  const auto ctl = make_pis(g, 33, "ctl");

  const auto main = alu(g, a, b, op);
  // Secondary datapath: c masked by control bits, added to the ALU result.
  std::vector<signal> masked;
  for (unsigned i = 0; i < 8; ++i) {
    masked.push_back(g.create_and(c[i], ctl[i]));
  }
  const auto second = ripple_adder(g, main.value, masked, ctl[8]);

  std::vector<signal> outs = main.value;                       // 8
  outs.insert(outs.end(), second.sum.begin(), second.sum.end());  // 16
  outs.push_back(main.carry);                                  // 17
  outs.push_back(second.carry);                                // 18
  outs.push_back(main.zero);                                   // 19
  // Parity trees over control groups (keeps all 60 inputs live).
  for (unsigned grp = 0; grp < 7; ++grp) {
    std::vector<signal> grp_bits;
    for (unsigned i = grp; i < 33; i += 7) grp_bits.push_back(ctl[i]);
    grp_bits.push_back(a[grp % 8]);
    outs.push_back(g.create_xor_n(grp_bits));                  // 26
  }
  make_pos(g, outs, "po");
  return g.cleanup();
}

aig make_c1908() {
  // 16-bit single-error-correcting / double-error-detecting circuit.
  aig g;
  const auto data = make_pis(g, 16, "d");
  const auto check = make_pis(g, 5, "c");
  const auto overall = make_pis(g, 1, "p");
  const auto mode = make_pis(g, 11, "m");

  std::vector<signal> conditioned;
  for (unsigned i = 0; i < 16; ++i) {
    conditioned.push_back(g.create_xor(data[i], g.create_and(mode[i % 11], mode[(i + 3) % 11])));
  }
  const auto corrected = hamming_correct(g, conditioned, check);
  std::vector<signal> outs = corrected;  // 16
  // Double-error-detected flag: overall parity mismatch while syndrome != 0.
  std::vector<signal> everything(conditioned.begin(), conditioned.end());
  everything.insert(everything.end(), check.begin(), check.end());
  const signal whole_parity = g.create_xor_n(everything);
  const signal ded = g.create_xor(whole_parity, overall[0]);
  outs.push_back(ded);                        // 17
  // Syndrome-derived status outputs.
  const auto recomputed = hamming_parity(g, conditioned);
  for (unsigned i = 0; i < 5; ++i) {
    outs.push_back(g.create_xor(recomputed[i], check[i]));  // 22
  }
  outs.push_back(g.create_and(ded, !outs[16]));
  outs.push_back(g.create_or(ded, whole_parity));
  outs.push_back(whole_parity);  // 25
  make_pos(g, outs, "po");
  return g.cleanup();
}

aig make_c2670() {
  // 12-bit ALU plus equality/magnitude comparators and parity network.
  aig g;
  const auto a = make_pis(g, 12, "a");
  const auto b = make_pis(g, 12, "b");
  const auto c = make_pis(g, 12, "c");
  const auto d = make_pis(g, 12, "d");
  const auto op = make_pis(g, 3, "op");
  const auto ctl = make_pis(g, 106, "ctl");

  const auto main = alu(g, a, b, op);
  std::vector<signal> outs = main.value;  // 12
  outs.push_back(main.carry);
  outs.push_back(main.zero);

  outs.push_back(equals(g, c, d));
  outs.push_back(less_than(g, c, d));
  const auto sum_cd = ripple_adder(g, c, d, g.get_constant(false));
  outs.insert(outs.end(), sum_cd.sum.begin(), sum_cd.sum.end());  // 28
  outs.push_back(sum_cd.carry);

  // Control-plane logic: AND/OR/XOR reductions over control groups.
  for (unsigned grp = 0; grp < 35; ++grp) {
    std::vector<signal> grp_bits;
    for (unsigned i = grp; i < 106; i += 35) grp_bits.push_back(ctl[i]);
    switch (grp % 3) {
      case 0: outs.push_back(g.create_and_n(grp_bits)); break;
      case 1: outs.push_back(g.create_or_n(grp_bits)); break;
      default: outs.push_back(g.create_xor_n(grp_bits)); break;
    }
  }
  make_pos(g, outs, "po");
  return g.cleanup();
}

aig make_c3540() {
  // 8-bit ALU with a BCD arithmetic path and a barrel shifter.
  aig g;
  const auto a = make_pis(g, 8, "a");
  const auto b = make_pis(g, 8, "b");
  const auto op = make_pis(g, 3, "op");
  const auto sh = make_pis(g, 3, "sh");
  const auto ctl = make_pis(g, 28, "ctl");

  const auto main = alu(g, a, b, op);
  // BCD path: two digits per operand.
  const auto bcd_low = bcd_adder(g, slice(a, 0, 4), slice(b, 0, 4));
  const auto bcd_high = bcd_adder(g, slice(a, 4, 4), slice(b, 4, 4));
  const auto shifted = barrel_shift_left(g, main.value, sh);

  std::vector<signal> outs;
  // Select between binary and BCD result per ctl[0].
  std::vector<signal> bcd_bits(bcd_low.begin(), bcd_low.begin() + 4);
  bcd_bits.insert(bcd_bits.end(), bcd_high.begin(), bcd_high.begin() + 4);
  const auto selected = mux_word(g, ctl[0], bcd_bits, shifted);
  outs.insert(outs.end(), selected.begin(), selected.end());  // 8
  outs.push_back(main.carry);
  outs.push_back(bcd_low[4]);
  outs.push_back(bcd_high[4]);
  outs.push_back(main.zero);  // 12
  // Flag outputs over control bits.
  for (unsigned grp = 0; grp < 10; ++grp) {
    std::vector<signal> grp_bits;
    for (unsigned i = grp; i < 28; i += 10) grp_bits.push_back(ctl[i]);
    grp_bits.push_back(main.value[grp % 8]);
    outs.push_back(grp % 2 ? g.create_or_n(grp_bits)
                           : g.create_xor_n(grp_bits));  // 22
  }
  make_pos(g, outs, "po");
  return g.cleanup();
}

aig make_c5315() {
  // 9-bit ALU with two parallel datapaths and wide status logic.
  aig g;
  const auto a = make_pis(g, 9, "a");
  const auto b = make_pis(g, 9, "b");
  const auto c = make_pis(g, 9, "c");
  const auto d = make_pis(g, 9, "d");
  const auto e = make_pis(g, 9, "e");
  const auto f = make_pis(g, 9, "f");
  const auto op1 = make_pis(g, 3, "op1");
  const auto op2 = make_pis(g, 3, "op2");
  const auto ctl = make_pis(g, 118, "ctl");

  const auto alu1 = alu(g, a, b, op1);
  const auto alu2 = alu(g, c, d, op2);
  const auto sum_ef = ripple_adder(g, e, f, g.get_constant(false));
  const auto prod = array_multiplier(g, slice(e, 0, 5), slice(f, 0, 5));

  std::vector<signal> outs = alu1.value;                           // 9
  outs.insert(outs.end(), alu2.value.begin(), alu2.value.end());   // 18
  outs.insert(outs.end(), sum_ef.sum.begin(), sum_ef.sum.end());   // 27
  outs.insert(outs.end(), prod.begin(), prod.end());               // 37
  outs.push_back(alu1.carry);
  outs.push_back(alu2.carry);
  outs.push_back(sum_ef.carry);
  outs.push_back(alu1.zero);
  outs.push_back(alu2.zero);                                       // 42
  outs.push_back(equals(g, a, c));
  outs.push_back(less_than(g, b, d));                              // 44
  // Masked-bus outputs: datapath results gated by control bits.
  for (unsigned i = 0; i < 40; ++i) {
    outs.push_back(g.create_and(outs[i], ctl[i]));                 // 84
  }
  for (unsigned grp = 0; grp < 39; ++grp) {
    std::vector<signal> grp_bits;
    for (unsigned i = 40 + grp; i < 118; i += 39) grp_bits.push_back(ctl[i]);
    grp_bits.push_back(alu1.value[grp % 9]);
    outs.push_back(grp % 2 ? g.create_xor_n(grp_bits)
                           : g.create_or_n(grp_bits));             // 123
  }
  make_pos(g, outs, "po");
  return g.cleanup();
}

aig make_c6288() {
  // Structurally faithful: 16x16 array multiplier from carry-save rows.
  aig g;
  std::vector<signal> a;
  std::vector<signal> b;
  for (unsigned i = 0; i < 16; ++i) a.push_back(g.create_pi("a" + std::to_string(i)));
  for (unsigned i = 0; i < 16; ++i) b.push_back(g.create_pi("b" + std::to_string(i)));
  const auto product = array_multiplier(g, a, b);
  make_pos(g, product, "p");
  return g.cleanup();
}

aig make_c7552() {
  // 32-bit adder/comparator with parity checking (the documented function).
  aig g;
  const auto a = make_pis(g, 32, "a");
  const auto b = make_pis(g, 32, "b");
  const auto c = make_pis(g, 32, "c");
  const auto ctl = make_pis(g, 110, "ctl");

  const auto sum = ripple_adder(g, a, b, ctl[0]);
  const auto diff = subtractor(g, a, c);

  std::vector<signal> outs = sum.sum;                            // 32
  outs.push_back(sum.carry);
  outs.push_back(equals(g, a, b));
  outs.push_back(less_than(g, a, b));
  outs.push_back(less_than(g, b, a));                            // 36
  outs.push_back(equals(g, a, c));
  outs.push_back(g.create_xor_n(std::vector<signal>(a.begin(), a.end())));
  outs.push_back(g.create_xor_n(std::vector<signal>(b.begin(), b.end())));
  outs.push_back(g.create_xor_n(std::vector<signal>(c.begin(), c.end())));  // 40
  // Masked difference bus.
  for (unsigned i = 0; i < 32; ++i) {
    outs.push_back(g.create_mux(ctl[1], diff.sum[i], g.create_and(sum.sum[i], ctl[2 + (i % 16)])));  // 72
  }
  // Control reductions.
  for (unsigned grp = 0; grp < 35; ++grp) {
    std::vector<signal> grp_bits;
    for (unsigned i = 18 + grp; i < 110; i += 35) grp_bits.push_back(ctl[i]);
    grp_bits.push_back(diff.sum[grp % 32]);
    outs.push_back(grp % 2 ? g.create_or_n(grp_bits)
                           : g.create_xor_n(grp_bits));          // 107
  }
  make_pos(g, outs, "po");
  return g.cleanup();
}

const std::vector<std::string>& iscas85_names() {
  static const std::vector<std::string> names = {
      "c432", "c499", "c880", "c1355", "c1908",
      "c2670", "c3540", "c5315", "c6288", "c7552"};
  return names;
}

aig make_iscas85(const std::string& name) {
  if (name == "c432") return make_c432();
  if (name == "c499") return make_c499();
  if (name == "c880") return make_c880();
  if (name == "c1355") return make_c1355();
  if (name == "c1908") return make_c1908();
  if (name == "c2670") return make_c2670();
  if (name == "c3540") return make_c3540();
  if (name == "c5315") return make_c5315();
  if (name == "c6288") return make_c6288();
  if (name == "c7552") return make_c7552();
  throw std::invalid_argument("make_iscas85: unknown circuit " + name);
}

}  // namespace xsfq::benchgen
