#include "benchgen/blocks.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace xsfq::blocks {
namespace {

signal full_adder_sum(aig& g, signal a, signal b, signal c) {
  return g.create_xor(g.create_xor(a, b), c);
}

signal full_adder_carry(aig& g, signal a, signal b, signal c) {
  return g.create_maj(a, b, c);
}

void require_same_width(std::span<const signal> a, std::span<const signal> b,
                        const char* what) {
  if (a.size() != b.size()) {
    throw std::invalid_argument(std::string(what) + ": width mismatch");
  }
}

}  // namespace

add_result ripple_adder(aig& g, std::span<const signal> a,
                        std::span<const signal> b, signal carry_in) {
  require_same_width(a, b, "ripple_adder");
  add_result r;
  signal carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    r.sum.push_back(full_adder_sum(g, a[i], b[i], carry));
    carry = full_adder_carry(g, a[i], b[i], carry);
  }
  r.carry = carry;
  return r;
}

add_result subtractor(aig& g, std::span<const signal> a,
                      std::span<const signal> b) {
  require_same_width(a, b, "subtractor");
  std::vector<signal> not_b;
  not_b.reserve(b.size());
  for (const signal s : b) not_b.push_back(!s);
  return ripple_adder(g, a, not_b, g.get_constant(true));
}

std::vector<signal> array_multiplier(aig& g, std::span<const signal> a,
                                     std::span<const signal> b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  std::vector<signal> acc(n + m, g.get_constant(false));
  // Row-by-row carry-save accumulation (the c6288 structure).
  for (std::size_t i = 0; i < m; ++i) {
    signal carry = g.get_constant(false);
    for (std::size_t j = 0; j < n; ++j) {
      const signal pp = g.create_and(a[j], b[i]);
      const signal sum = full_adder_sum(g, acc[i + j], pp, carry);
      carry = full_adder_carry(g, acc[i + j], pp, carry);
      acc[i + j] = sum;
    }
    // Propagate the row carry into the next column.
    for (std::size_t k = i + n; k < n + m && !(carry == g.get_constant(false));
         ++k) {
      const signal sum = g.create_xor(acc[k], carry);
      carry = g.create_and(acc[k], carry);
      acc[k] = sum;
    }
  }
  return acc;
}

signal equals(aig& g, std::span<const signal> a, std::span<const signal> b) {
  require_same_width(a, b, "equals");
  std::vector<signal> bits;
  bits.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    bits.push_back(g.create_xnor(a[i], b[i]));
  }
  return g.create_and_n(bits);
}

signal less_than(aig& g, std::span<const signal> a,
                 std::span<const signal> b) {
  require_same_width(a, b, "less_than");
  // MSB-first chain: lt = (!a & b) | (a==b) & lt_lower.
  signal lt = g.get_constant(false);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const signal ai = a[i];
    const signal bi = b[i];
    const signal here = g.create_and(!ai, bi);
    const signal same = g.create_xnor(ai, bi);
    lt = g.create_or(here, g.create_and(same, lt));
  }
  return lt;
}

alu_result alu(aig& g, std::span<const signal> a, std::span<const signal> b,
               std::span<const signal> opcode) {
  require_same_width(a, b, "alu");
  if (opcode.size() != 3) {
    throw std::invalid_argument("alu: opcode must be 3 bits");
  }
  const std::size_t n = a.size();
  const auto add = ripple_adder(g, a, b, g.get_constant(false));
  const auto sub = subtractor(g, a, b);
  const signal slt = less_than(g, a, b);

  alu_result r;
  for (std::size_t i = 0; i < n; ++i) {
    const signal and_bit = g.create_and(a[i], b[i]);
    const signal or_bit = g.create_or(a[i], b[i]);
    const signal xor_bit = g.create_xor(a[i], b[i]);
    const signal nor_bit = !or_bit;
    const signal slt_bit = i == 0 ? slt : g.get_constant(false);

    // 8:1 mux over the opcode.
    const signal m00 = g.create_mux(opcode[0], sub.sum[i], add.sum[i]);
    const signal m01 = g.create_mux(opcode[0], or_bit, and_bit);
    const signal m10 = g.create_mux(opcode[0], nor_bit, xor_bit);
    const signal m11 = g.create_mux(opcode[0], b[i], slt_bit);
    const signal m0 = g.create_mux(opcode[1], m01, m00);
    const signal m1 = g.create_mux(opcode[1], m11, m10);
    r.value.push_back(g.create_mux(opcode[2], m1, m0));
  }
  r.carry = g.create_mux(opcode[0], sub.carry, add.carry);
  std::vector<signal> nonzero;
  nonzero.reserve(n);
  for (const signal v : r.value) nonzero.push_back(v);
  r.zero = !g.create_or_n(nonzero);
  return r;
}

priority_result priority_encode(aig& g, std::span<const signal> req) {
  priority_result r;
  signal blocked = g.get_constant(false);  // some earlier request active
  for (std::size_t i = 0; i < req.size(); ++i) {
    r.grant.push_back(g.create_and(req[i], !blocked));
    blocked = g.create_or(blocked, req[i]);
  }
  r.valid = blocked;
  // Binary encoding of the one-hot grant.
  unsigned bits = 0;
  while ((std::size_t{1} << bits) < req.size()) ++bits;
  for (unsigned b = 0; b < bits; ++b) {
    std::vector<signal> ors;
    for (std::size_t i = 0; i < req.size(); ++i) {
      if ((i >> b) & 1u) ors.push_back(r.grant[i]);
    }
    r.encoded.push_back(g.create_or_n(ors));
  }
  return r;
}

std::vector<signal> decoder(aig& g, std::span<const signal> sel) {
  std::vector<signal> out;
  const std::size_t n = sel.size();
  out.reserve(std::size_t{1} << n);
  // Recursive halves would share more, but the straightforward product
  // matches the EPFL "dec" circuit structure.
  std::vector<signal> lows;
  std::vector<signal> highs;
  // Split-level decoding for sharing: decode low and high halves, AND pairs.
  const std::size_t half = n / 2;
  auto decode_range = [&](std::size_t begin, std::size_t end) {
    std::vector<signal> result{g.get_constant(true)};
    for (std::size_t i = begin; i < end; ++i) {
      std::vector<signal> next;
      next.reserve(result.size() * 2);
      for (const signal s : result) next.push_back(g.create_and(s, !sel[i]));
      for (const signal s : result) next.push_back(g.create_and(s, sel[i]));
      result = std::move(next);
    }
    return result;
  };
  lows = decode_range(0, half);
  highs = decode_range(half, n);
  for (const signal h : highs) {
    for (const signal l : lows) {
      out.push_back(g.create_and(h, l));
    }
  }
  return out;
}

std::vector<signal> popcount(aig& g, std::span<const signal> inputs) {
  // Tree of ripple additions over growing widths.
  std::vector<std::vector<signal>> terms;
  for (const signal s : inputs) terms.push_back({s});
  while (terms.size() > 1) {
    std::vector<std::vector<signal>> next;
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      auto& a = terms[i];
      auto& b = terms[i + 1];
      const std::size_t w = std::max(a.size(), b.size());
      a.resize(w, g.get_constant(false));
      b.resize(w, g.get_constant(false));
      auto sum = ripple_adder(g, a, b, g.get_constant(false));
      sum.sum.push_back(sum.carry);
      next.push_back(std::move(sum.sum));
    }
    if (terms.size() % 2) next.push_back(std::move(terms.back()));
    terms = std::move(next);
  }
  return terms.front();
}

signal majority(aig& g, std::span<const signal> inputs) {
  if (inputs.size() % 2 == 0) {
    throw std::invalid_argument("majority: needs an odd input count");
  }
  const auto count = popcount(g, inputs);
  const auto threshold =
      constant_word(g, inputs.size() / 2 + 1, static_cast<unsigned>(count.size()));
  // majority <=> count >= threshold <=> !(count < threshold)
  return !less_than(g, count, threshold);
}

namespace {
/// Data-bit positions covered by Hamming parity bit p (1-based positions).
bool hamming_covers(unsigned parity_index, unsigned position) {
  return (position >> parity_index) & 1u;
}
}  // namespace

std::vector<signal> hamming_parity(aig& g, std::span<const signal> data) {
  // Place data bits at non-power-of-two positions 3,5,6,7,9,... (1-based).
  std::vector<unsigned> position_of_bit;
  unsigned position = 1;
  while (position_of_bit.size() < data.size()) {
    ++position;
    if ((position & (position - 1)) != 0) position_of_bit.push_back(position);
  }
  unsigned num_parity = 0;
  while ((1u << num_parity) <= position_of_bit.back()) ++num_parity;

  std::vector<signal> parity;
  for (unsigned p = 0; p < num_parity; ++p) {
    std::vector<signal> covered;
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (hamming_covers(p, position_of_bit[i])) covered.push_back(data[i]);
    }
    parity.push_back(g.create_xor_n(covered));
  }
  return parity;
}

std::vector<signal> hamming_correct(aig& g, std::span<const signal> data,
                                    std::span<const signal> parity) {
  const auto recomputed = hamming_parity(g, data);
  if (parity.size() != recomputed.size()) {
    throw std::invalid_argument("hamming_correct: parity width mismatch");
  }
  std::vector<signal> syndrome;
  for (std::size_t p = 0; p < parity.size(); ++p) {
    syndrome.push_back(g.create_xor(parity[p], recomputed[p]));
  }
  // Flip the data bit whose position matches the syndrome.
  std::vector<unsigned> position_of_bit;
  unsigned position = 1;
  while (position_of_bit.size() < data.size()) {
    ++position;
    if ((position & (position - 1)) != 0) position_of_bit.push_back(position);
  }
  std::vector<signal> corrected;
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::vector<signal> match_bits;
    for (std::size_t p = 0; p < syndrome.size(); ++p) {
      const bool want = hamming_covers(static_cast<unsigned>(p),
                                       position_of_bit[i]);
      match_bits.push_back(want ? syndrome[p] : !syndrome[p]);
    }
    const signal flip = g.create_and_n(match_bits);
    corrected.push_back(g.create_xor(data[i], flip));
  }
  return corrected;
}

std::vector<signal> barrel_shift_left(aig& g, std::span<const signal> value,
                                      std::span<const signal> amount) {
  std::vector<signal> current(value.begin(), value.end());
  for (std::size_t stage = 0; stage < amount.size(); ++stage) {
    const std::size_t shift = std::size_t{1} << stage;
    std::vector<signal> shifted(current.size(), g.get_constant(false));
    for (std::size_t i = shift; i < current.size(); ++i) {
      shifted[i] = current[i - shift];
    }
    current = mux_word(g, amount[stage], shifted, current);
  }
  return current;
}

std::vector<signal> bcd_adder(aig& g, std::span<const signal> a,
                              std::span<const signal> b) {
  if (a.size() != 4 || b.size() != 4) {
    throw std::invalid_argument("bcd_adder: digits are 4 bits");
  }
  auto raw = ripple_adder(g, a, b, g.get_constant(false));
  raw.sum.push_back(raw.carry);  // 5-bit raw sum
  // Correction: add 6 when sum > 9.
  const signal gt9 = g.create_or(
      raw.sum[4],
      g.create_and(raw.sum[3], g.create_or(raw.sum[2], raw.sum[1])));
  const auto six = constant_word(g, 6, 5);
  std::vector<signal> six_or_zero;
  for (const signal s : six) six_or_zero.push_back(g.create_and(s, gt9));
  const auto corrected = ripple_adder(g, raw.sum, six_or_zero,
                                      g.get_constant(false));
  std::vector<signal> out(corrected.sum.begin(), corrected.sum.begin() + 4);
  out.push_back(gt9);  // digit carry
  return out;
}

std::vector<signal> cordic_sin(aig& g, std::span<const signal> angle,
                               unsigned iterations) {
  // Fixed-point CORDIC in rotation mode.  Width: angle bits + 2 guard bits.
  const unsigned w = static_cast<unsigned>(angle.size()) + 2;
  // z accumulates the residual angle (signed, in turns scaled by 2^w).
  std::vector<signal> z(angle.begin(), angle.end());
  z.resize(w, g.get_constant(false));

  // x starts at the CORDIC gain-corrected constant, y at 0.
  const auto gain = static_cast<std::uint64_t>(0.607252935 * (1u << (w - 2)));
  std::vector<signal> x = constant_word(g, gain, w);
  std::vector<signal> y = constant_word(g, 0, w);

  for (unsigned k = 0; k < iterations && k + 1 < w; ++k) {
    // arctan(2^-k) / (2*pi), scaled to w bits of turn.
    const double atan_turns = std::atan(std::ldexp(1.0, -static_cast<int>(k))) /
                              (2.0 * 3.14159265358979323846);
    const auto alpha = static_cast<std::uint64_t>(
        atan_turns * std::ldexp(1.0, static_cast<int>(w)));
    const auto alpha_word = constant_word(g, alpha, w);

    // Arithmetic shifts of x and y by k (signed).
    auto shift_right = [&](const std::vector<signal>& v) {
      std::vector<signal> s(v.size(), v.back());  // sign extension
      for (std::size_t i = 0; i + k < v.size(); ++i) s[i] = v[i + k];
      return s;
    };
    const auto x_shift = shift_right(x);
    const auto y_shift = shift_right(y);

    // Rotation direction: sign of z (MSB clear = rotate positive).
    const signal positive = !z.back();

    const auto x_plus = subtractor(g, x, y_shift);
    const auto x_minus = ripple_adder(g, x, y_shift, g.get_constant(false));
    const auto y_plus = ripple_adder(g, y, x_shift, g.get_constant(false));
    const auto y_minus = subtractor(g, y, x_shift);
    const auto z_plus = subtractor(g, z, alpha_word);
    const auto z_minus = ripple_adder(g, z, alpha_word, g.get_constant(false));

    x = mux_word(g, positive, x_plus.sum, x_minus.sum);
    y = mux_word(g, positive, y_plus.sum, y_minus.sum);
    z = mux_word(g, positive, z_plus.sum, z_minus.sum);
  }
  return y;
}

std::vector<signal> int_to_float(aig& g, std::span<const signal> value) {
  // Normalize: find the leading one, exponent = its position + 1 (0 if zero),
  // mantissa = next 3 bits after the leading one.
  const std::size_t n = value.size();
  std::vector<signal> rev(value.rbegin(), value.rend());
  const auto pri = priority_encode(g, rev);  // grant i <=> leading one at MSB-i

  std::vector<signal> mantissa(3, g.get_constant(false));
  for (std::size_t i = 0; i < n; ++i) {
    // Leading one at bit position p = n-1-i (grant index i): mantissa bits
    // are value[p-1], value[p-2], value[p-3] (zero-padded).
    for (unsigned m = 0; m < 3; ++m) {
      const std::size_t p = n - 1 - i;
      if (p >= m + 1) {
        mantissa[2 - m] = g.create_or(
            mantissa[2 - m], g.create_and(pri.grant[i], value[p - 1 - m]));
      }
    }
  }
  // Exponent = p + 1 where p = position of leading one.
  std::vector<signal> exponent(4, g.get_constant(false));
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t code = n - i;  // p + 1
    for (unsigned b = 0; b < 4; ++b) {
      if ((code >> b) & 1u) {
        exponent[b] = g.create_or(exponent[b], pri.grant[i]);
      }
    }
  }
  std::vector<signal> out;
  out.insert(out.end(), mantissa.begin(), mantissa.end());
  out.insert(out.end(), exponent.begin(), exponent.end());
  return out;  // 7 bits: mantissa[0..2], exponent[0..3]
}

std::vector<signal> round_robin_arbiter(aig& g, std::span<const signal> req,
                                        std::span<const signal> pointer) {
  if (req.size() != pointer.size()) {
    throw std::invalid_argument("round_robin_arbiter: width mismatch");
  }
  const std::size_t n = req.size();
  // Mask requests at or after the pointer (thermometer mask from pointer).
  std::vector<signal> mask(n, g.get_constant(false));
  signal seen = g.get_constant(false);
  for (std::size_t i = 0; i < n; ++i) {
    seen = g.create_or(seen, pointer[i]);
    mask[i] = seen;
  }
  std::vector<signal> high;
  std::vector<signal> low;
  for (std::size_t i = 0; i < n; ++i) {
    high.push_back(g.create_and(req[i], mask[i]));
    low.push_back(req[i]);
  }
  const auto high_grant = priority_encode(g, high);
  const auto low_grant = priority_encode(g, low);
  std::vector<signal> grant;
  for (std::size_t i = 0; i < n; ++i) {
    grant.push_back(g.create_mux(high_grant.valid, high_grant.grant[i],
                                 low_grant.grant[i]));
  }
  return grant;
}

std::vector<signal> constant_word(aig& g, std::uint64_t value,
                                  unsigned width) {
  std::vector<signal> out;
  out.reserve(width);
  for (unsigned i = 0; i < width; ++i) {
    out.push_back(g.get_constant(((value >> i) & 1u) != 0));
  }
  return out;
}

std::vector<signal> mux_word(aig& g, signal sel, std::span<const signal> t,
                             std::span<const signal> e) {
  require_same_width(t, e, "mux_word");
  std::vector<signal> out;
  out.reserve(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    out.push_back(g.create_mux(sel, t[i], e[i]));
  }
  return out;
}

}  // namespace xsfq::blocks
