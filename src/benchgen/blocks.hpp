#pragma once
/// \file blocks.hpp
/// \brief Parametric combinational building blocks used by the benchmark
/// generators (adders, multipliers, ALUs, encoders, ECC, CORDIC, ...).
///
/// The original ISCAS85/EPFL/ISCAS89 netlist files are not redistributable
/// here, so src/benchgen re-creates functionally representative circuits
/// from these blocks (see DESIGN.md "Substitutions").  All builders append
/// logic to a caller-provided AIG and return output signals, so they compose.

#include <cstdint>
#include <span>
#include <vector>

#include "aig/aig.hpp"

namespace xsfq::blocks {

/// Result of an addition: sum bits plus carry-out.
struct add_result {
  std::vector<signal> sum;
  signal carry;
};

/// Ripple-carry adder; `a` and `b` must have equal width.
add_result ripple_adder(aig& g, std::span<const signal> a,
                        std::span<const signal> b, signal carry_in);

/// Two's-complement subtractor (a - b); carry is the borrow-free flag.
add_result subtractor(aig& g, std::span<const signal> a,
                      std::span<const signal> b);

/// Array multiplier; returns a.size()+b.size() product bits.  This is the
/// exact structure of ISCAS85 c6288 (a 16x16 array multiplier built from
/// carry-save adder rows).
std::vector<signal> array_multiplier(aig& g, std::span<const signal> a,
                                     std::span<const signal> b);

/// Equality / less-than (unsigned) comparator.
signal equals(aig& g, std::span<const signal> a, std::span<const signal> b);
signal less_than(aig& g, std::span<const signal> a, std::span<const signal> b);

/// Simple n-bit ALU with 3-bit opcode: 000 add, 001 sub, 010 and, 011 or,
/// 100 xor, 101 nor, 110 slt, 111 pass-b.  Returns result bits + carry flag.
struct alu_result {
  std::vector<signal> value;
  signal carry;
  signal zero;
};
alu_result alu(aig& g, std::span<const signal> a, std::span<const signal> b,
               std::span<const signal> opcode);

/// One-hot priority encoder over `req` (bit 0 = highest priority): returns
/// the one-hot grant vector plus a "some request" valid flag.
struct priority_result {
  std::vector<signal> grant;     ///< one-hot
  std::vector<signal> encoded;   ///< binary index of the granted line
  signal valid;
};
priority_result priority_encode(aig& g, std::span<const signal> req);

/// Full binary decoder: n select bits to 2^n one-hot outputs.
std::vector<signal> decoder(aig& g, std::span<const signal> sel);

/// Majority vote over an odd number of inputs (sorting-network-free
/// population-count comparison, the "voter" workload).
signal majority(aig& g, std::span<const signal> inputs);

/// Population count: returns ceil(log2(n+1)) sum bits.
std::vector<signal> popcount(aig& g, std::span<const signal> inputs);

/// Hamming(38,32) single-error-correcting encoder/decoder pair used as the
/// c499/c1355/c1908-style ECC workload: decode takes 32 data + 6 parity
/// +1 overall-parity bits and returns the corrected 32-bit word.
std::vector<signal> hamming_parity(aig& g, std::span<const signal> data);
std::vector<signal> hamming_correct(aig& g, std::span<const signal> data,
                                    std::span<const signal> parity);

/// Barrel shifter (logical left) with log2(width) shift-amount bits.
std::vector<signal> barrel_shift_left(aig& g, std::span<const signal> value,
                                      std::span<const signal> amount);

/// BCD (two-digit) adder used by the c3540-style ALU workload.
std::vector<signal> bcd_adder(aig& g, std::span<const signal> a,
                              std::span<const signal> b);

/// Fixed-point CORDIC sine: `angle` in turns (unsigned fixed point),
/// `iterations` rotation steps, result width = angle width + 1.
/// Reproduces the "sin" arithmetic workload from the EPFL suite.
std::vector<signal> cordic_sin(aig& g, std::span<const signal> angle,
                               unsigned iterations);

/// Integer-to-float converter: 11-bit unsigned integer in, 7-bit float out
/// (4-bit exponent, 3-bit mantissa), matching EPFL int2float's interface.
std::vector<signal> int_to_float(aig& g, std::span<const signal> value);

/// Round-robin arbiter over n requestors with a `pointer` priority input;
/// returns one-hot grants (the EPFL "arbiter" workload shape).
std::vector<signal> round_robin_arbiter(aig& g, std::span<const signal> req,
                                        std::span<const signal> pointer);

/// Constant-vector helper: bits of `value`, LSB first.
std::vector<signal> constant_word(aig& g, std::uint64_t value, unsigned width);

/// Mux between two equal-width words.
std::vector<signal> mux_word(aig& g, signal sel, std::span<const signal> t,
                             std::span<const signal> e);

}  // namespace xsfq::blocks
