#include "benchgen/iscas89.hpp"

#include <stdexcept>

#include "benchgen/blocks.hpp"
#include "util/rng.hpp"

namespace xsfq::benchgen {

using namespace blocks;

const std::vector<iscas89_profile>& iscas89_profiles() {
  // Interface shapes of the original benchmarks (inputs/outputs/FFs).
  static const std::vector<iscas89_profile> profiles = {
      {"s27", 4, 1, 3},      {"s298", 3, 6, 14},   {"s344", 9, 11, 15},
      {"s349", 9, 11, 15},   {"s382", 3, 6, 21},   {"s386", 7, 7, 6},
      {"s400", 3, 6, 21},    {"s420.1", 18, 1, 16}, {"s444", 3, 6, 21},
      {"s510", 19, 7, 6},    {"s526", 3, 6, 21},   {"s641", 35, 24, 19},
      {"s713", 35, 23, 19},  {"s820", 18, 19, 5},  {"s832", 18, 19, 5},
      {"s838.1", 34, 1, 32}};
  return profiles;
}

aig make_sequential_equiv(const iscas89_profile& profile, std::uint64_t seed) {
  aig g;
  rng gen(seed);

  std::vector<signal> pis;
  for (unsigned i = 0; i < profile.inputs; ++i) {
    pis.push_back(g.create_pi("in" + std::to_string(i)));
  }
  std::vector<signal> state;
  for (unsigned i = 0; i < profile.flip_flops; ++i) {
    state.push_back(g.create_register_output(false, "ff" + std::to_string(i)));
  }

  // State is split into a counter segment, a shift segment and an FSM
  // segment, mirroring the control+datapath mix of the original circuits.
  const unsigned counter_bits = std::max(1u, profile.flip_flops / 3);
  const unsigned shift_bits = std::max(1u, profile.flip_flops / 3);
  const unsigned fsm_bits = profile.flip_flops - counter_bits - shift_bits;

  std::vector<signal> next(profile.flip_flops, g.get_constant(false));

  // Counter segment: increments when a PI-derived enable is high.
  const signal enable =
      profile.inputs >= 2 ? g.create_or(pis[0], pis[1]) : pis[0];
  {
    const std::span<const signal> cnt(state.data(), counter_bits);
    const auto inc = ripple_adder(g, cnt, constant_word(g, 1, counter_bits),
                                  g.get_constant(false));
    for (unsigned i = 0; i < counter_bits; ++i) {
      next[i] = g.create_mux(enable, inc.sum[i], state[i]);
    }
  }
  // Shift segment: serial input scrambled from the PIs.
  {
    std::vector<signal> taps;
    for (unsigned i = 0; i < profile.inputs; i += 2) taps.push_back(pis[i]);
    const signal serial = g.create_xor_n(taps);
    next[counter_bits] = serial;
    for (unsigned i = 1; i < shift_bits; ++i) {
      next[counter_bits + i] = state[counter_bits + i - 1];
    }
  }
  // FSM segment: seeded multi-level next-state cones over state and inputs.
  // Cone depth/width is sized so the generated circuits land in the gate-count
  // range of the original benchmarks (a few gates per FF in the small
  // circuits, tens per FF in s641/s713-class circuits).
  const unsigned cone_ops = 2 + static_cast<unsigned>(
      (profile.inputs + profile.outputs) / 4);
  auto random_operand = [&]() -> signal {
    const bool from_state = gen.flip() && !state.empty();
    const signal s = from_state ? state[gen.below(profile.flip_flops)]
                                : pis[gen.below(profile.inputs)];
    return s ^ gen.flip();
  };
  auto random_cone = [&]() -> signal {
    signal acc = random_operand();
    for (unsigned k = 0; k < cone_ops; ++k) {
      const signal x = random_operand();
      const signal y = random_operand();
      switch (gen.below(4)) {
        case 0: acc = g.create_mux(x, acc, y); break;
        case 1: acc = g.create_xor(acc, g.create_and(x, y)); break;
        case 2: acc = g.create_maj(acc, x, y); break;
        default: acc = g.create_and(g.create_or(acc, x), !g.create_and(x, y)); break;
      }
    }
    return acc;
  };
  for (unsigned i = 0; i < fsm_bits; ++i) {
    const unsigned base = counter_bits + shift_bits;
    next[base + i] = random_cone();
  }

  for (unsigned i = 0; i < profile.flip_flops; ++i) {
    g.set_register_input(i, next[i]);
  }

  // Outputs: seeded multi-level cones of state and inputs.
  for (unsigned o = 0; o < profile.outputs; ++o) {
    g.create_po(random_cone(), "out" + std::to_string(o));
  }
  return g.cleanup();
}

namespace {

/// s420.1 / s838.1 are documented as fractional counters: a wide counter
/// with enable/reset inputs and a single terminal-count output.
aig make_fractional_counter(const iscas89_profile& profile) {
  aig g;
  std::vector<signal> pis;
  for (unsigned i = 0; i < profile.inputs; ++i) {
    pis.push_back(g.create_pi("in" + std::to_string(i)));
  }
  std::vector<signal> state;
  for (unsigned i = 0; i < profile.flip_flops; ++i) {
    state.push_back(g.create_register_output(false, "ff" + std::to_string(i)));
  }
  // Per-nibble enables come from the inputs (the original chains 4-bit
  // counter slices gated by dedicated enables).
  const signal master_enable = pis[0];
  const signal load = pis[1];
  signal ripple = master_enable;
  for (unsigned i = 0; i < profile.flip_flops; ++i) {
    const signal toggled = g.create_xor(state[i], ripple);
    ripple = g.create_and(ripple, state[i]);
    // Parallel-load path from the remaining inputs.
    const signal load_bit = pis[2 + (i % (profile.inputs - 2))];
    g.set_register_input(i, g.create_mux(load, load_bit, toggled));
  }
  g.create_po(ripple, "tc");  // terminal count
  return g.cleanup();
}

}  // namespace

aig make_iscas89(const std::string& name) {
  if (name == "s420.1" || name == "s838.1") {
    for (const auto& p : iscas89_profiles()) {
      if (p.name == name) return make_fractional_counter(p);
    }
  }
  std::uint64_t seed = 0x5EED;
  for (const auto& p : iscas89_profiles()) {
    ++seed;
    if (p.name == name) return make_sequential_equiv(p, seed);
  }
  throw std::invalid_argument("make_iscas89: unknown circuit " + name);
}

}  // namespace xsfq::benchgen
