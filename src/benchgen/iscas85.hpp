#pragma once
/// \file iscas85.hpp
/// \brief Generators for ISCAS85-equivalent combinational circuits.
///
/// The original ISCAS85 netlists are not redistributable in this repository,
/// so each generator builds a circuit computing the *documented function* of
/// the benchmark with matching primary-input/output counts (see the table in
/// DESIGN.md).  c6288 is structurally faithful (a 16x16 array multiplier
/// built from carry-save adder rows); the others are functional equivalents,
/// so absolute gate counts differ from the historical files while preserving
/// the workload character used in the paper's Tables 4 and 5.

#include <string>
#include <vector>

#include "aig/aig.hpp"

namespace xsfq::benchgen {

aig make_c432();   ///< 36 in /  7 out — 27-channel interrupt controller
aig make_c499();   ///< 41 in / 32 out — 32-bit SEC (Hamming) corrector
aig make_c880();   ///< 60 in / 26 out — 8-bit ALU with parity/status
aig make_c1355();  ///< 41 in / 32 out — c499 with expanded XOR trees
aig make_c1908();  ///< 33 in / 25 out — 16-bit SEC/ED corrector
aig make_c2670();  ///< 157 in / 64 out — 12-bit ALU + comparators
aig make_c3540();  ///< 50 in / 22 out — 8-bit ALU with BCD path
aig make_c5315();  ///< 178 in / 123 out — 9-bit ALU, dual datapaths
aig make_c6288();  ///< 32 in / 32 out — 16x16 array multiplier (faithful)
aig make_c7552();  ///< 206 in / 107 out — 32-bit adder/comparator + parity

/// Names accepted by make_iscas85 (canonical benchmark spelling).
const std::vector<std::string>& iscas85_names();
/// Builds a circuit by name ("c432", ..., "c7552"); throws on unknown names.
aig make_iscas85(const std::string& name);

}  // namespace xsfq::benchgen
