#include "core/xsfq_netlist.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace xsfq {

const char* element_kind_name(element_kind kind) {
  switch (kind) {
    case element_kind::input_rail: return "IN";
    case element_kind::const_rail: return "CONST";
    case element_kind::la: return "LA";
    case element_kind::fa: return "FA";
    case element_kind::splitter: return "SPLIT";
    case element_kind::droc: return "DROC";
    case element_kind::droc_preload: return "DROC_P";
    case element_kind::output_port: return "OUT";
  }
  return "?";
}

xsfq_netlist::element_index xsfq_netlist::add_element(xsfq_element element) {
  elements_.push_back(std::move(element));
  return static_cast<element_index>(elements_.size() - 1);
}

std::size_t xsfq_netlist::count(element_kind kind) const {
  return static_cast<std::size_t>(
      std::count_if(elements_.begin(), elements_.end(),
                    [kind](const xsfq_element& e) { return e.kind == kind; }));
}

std::size_t xsfq_netlist::jj_count(bool with_ptl) const {
  const cell_library& lib = cell_library::sfq5ee();
  std::size_t total = 0;
  for (const auto& e : elements_) {
    switch (e.kind) {
      case element_kind::la:
        total += lib.jj_count(cell_type::la, with_ptl);
        break;
      case element_kind::fa:
        total += lib.jj_count(cell_type::fa, with_ptl);
        break;
      case element_kind::splitter:
        // Footnote 1 of the paper: cell abutment is assumed at splitter
        // outputs, so splitters never pay PTL driver/receiver costs.  This
        // reproduces the paper's 120/264 (direct full adder) and 58/138
        // (Fig. 5ii) JJ figures exactly.
        total += lib.jj_count(cell_type::splitter, /*with_ptl=*/false);
        break;
      case element_kind::droc:
        total += lib.jj_count(cell_type::droc, with_ptl);
        break;
      case element_kind::droc_preload:
        total += lib.jj_count(cell_type::droc_preload, with_ptl);
        break;
      default:
        break;  // interface pseudo-elements are free
    }
  }
  return total;
}

namespace {

bool is_path_start(element_kind kind) {
  return kind == element_kind::input_rail || kind == element_kind::const_rail ||
         kind == element_kind::droc || kind == element_kind::droc_preload;
}

bool has_fanin1(element_kind kind) {
  return kind == element_kind::la || kind == element_kind::fa;
}

bool has_fanin0(element_kind kind) {
  return kind == element_kind::la || kind == element_kind::fa ||
         kind == element_kind::splitter || kind == element_kind::droc ||
         kind == element_kind::droc_preload ||
         kind == element_kind::output_port;
}

}  // namespace

unsigned xsfq_netlist::logical_depth() const {
  // Elements are in topological order (construction invariant).
  std::vector<unsigned> depth(elements_.size(), 0);
  unsigned worst = 0;
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    const auto& e = elements_[i];
    if (is_path_start(e.kind)) {
      depth[i] = 0;
      continue;
    }
    unsigned arrival = 0;
    if (has_fanin0(e.kind)) arrival = depth[e.fanin0.element];
    if (has_fanin1(e.kind)) {
      arrival = std::max(arrival, depth[e.fanin1.element]);
    }
    const bool counts = e.kind == element_kind::la || e.kind == element_kind::fa;
    depth[i] = arrival + (counts ? 1 : 0);
    worst = std::max(worst, depth[i]);
  }
  return worst;
}

unsigned xsfq_netlist::logical_depth_with_splitters() const {
  std::vector<unsigned> depth(elements_.size(), 0);
  unsigned worst = 0;
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    const auto& e = elements_[i];
    if (is_path_start(e.kind)) {
      depth[i] = 0;
      continue;
    }
    unsigned arrival = 0;
    if (has_fanin0(e.kind)) arrival = depth[e.fanin0.element];
    if (has_fanin1(e.kind)) {
      arrival = std::max(arrival, depth[e.fanin1.element]);
    }
    const bool counts = e.kind == element_kind::la ||
                        e.kind == element_kind::fa ||
                        e.kind == element_kind::splitter;
    depth[i] = arrival + (counts ? 1 : 0);
    worst = std::max(worst, depth[i]);
  }
  return worst;
}

double xsfq_netlist::critical_path_ps(bool with_ptl) const {
  const cell_library& lib = cell_library::sfq5ee();
  const double d_la = lib.delay_ps(cell_type::la, with_ptl);
  const double d_fa = lib.delay_ps(cell_type::fa, with_ptl);
  const double d_sp = lib.delay_ps(cell_type::splitter, with_ptl);
  // Clock-to-Q of a DROC (worst of Qp / Qn arcs).
  const auto& droc_spec = lib.spec(cell_type::droc);
  const double d_cq = with_ptl
                          ? std::max(droc_spec.delay_ps_ptl,
                                     droc_spec.delay_qn_ps_ptl)
                          : std::max(droc_spec.delay_ps, droc_spec.delay_qn_ps);

  std::vector<double> arrival(elements_.size(), 0.0);
  double worst = 0.0;
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    const auto& e = elements_[i];
    if (is_path_start(e.kind)) {
      const bool is_droc = e.kind == element_kind::droc ||
                           e.kind == element_kind::droc_preload;
      arrival[i] = is_droc ? d_cq : 0.0;
      worst = std::max(worst, arrival[i]);
      continue;
    }
    double in_time = 0.0;
    if (has_fanin0(e.kind)) in_time = arrival[e.fanin0.element];
    if (has_fanin1(e.kind)) {
      in_time = std::max(in_time, arrival[e.fanin1.element]);
    }
    switch (e.kind) {
      case element_kind::la: arrival[i] = in_time + d_la; break;
      case element_kind::fa: arrival[i] = in_time + d_fa; break;
      case element_kind::splitter: arrival[i] = in_time + d_sp; break;
      default: arrival[i] = in_time; break;  // output ports add no delay
    }
    worst = std::max(worst, arrival[i]);
  }
  return worst;
}

double xsfq_netlist::circuit_frequency_ghz(bool with_ptl) const {
  const double path = critical_path_ps(with_ptl);
  if (path <= 0.0) return 0.0;
  return 1000.0 / path;  // ps -> GHz
}

xsfq_netlist::stats_tally xsfq_netlist::tally() const {
  const cell_library& lib = cell_library::sfq5ee();
  const std::size_t jj_la = lib.jj_count(cell_type::la, false);
  const std::size_t jj_fa = lib.jj_count(cell_type::fa, false);
  const std::size_t jj_sp = lib.jj_count(cell_type::splitter, false);
  const std::size_t jj_dr = lib.jj_count(cell_type::droc, false);
  const std::size_t jj_dp = lib.jj_count(cell_type::droc_preload, false);
  const std::size_t jj_la_p = lib.jj_count(cell_type::la, true);
  const std::size_t jj_fa_p = lib.jj_count(cell_type::fa, true);
  const std::size_t jj_dr_p = lib.jj_count(cell_type::droc, true);
  const std::size_t jj_dp_p = lib.jj_count(cell_type::droc_preload, true);
  const double d_la = lib.delay_ps(cell_type::la, false);
  const double d_fa = lib.delay_ps(cell_type::fa, false);
  const double d_sp = lib.delay_ps(cell_type::splitter, false);
  const double d_la_p = lib.delay_ps(cell_type::la, true);
  const double d_fa_p = lib.delay_ps(cell_type::fa, true);
  const double d_sp_p = lib.delay_ps(cell_type::splitter, true);
  const auto& droc_spec = lib.spec(cell_type::droc);
  const double d_cq = std::max(droc_spec.delay_ps, droc_spec.delay_qn_ps);
  const double d_cq_p =
      std::max(droc_spec.delay_ps_ptl, droc_spec.delay_qn_ps_ptl);

  stats_tally t;
  // Per-element DP state: {depth, depth+splitters, arrival, arrival ptl}.
  struct dp_state {
    unsigned depth = 0;
    unsigned depth_sp = 0;
    double arrival = 0.0;
    double arrival_ptl = 0.0;
  };
  std::vector<dp_state> dp(elements_.size());
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    const auto& e = elements_[i];
    switch (e.kind) {
      case element_kind::la:
        ++t.la;
        t.jj += jj_la;
        t.jj_ptl += jj_la_p;
        break;
      case element_kind::fa:
        ++t.fa;
        t.jj += jj_fa;
        t.jj_ptl += jj_fa_p;
        break;
      case element_kind::splitter:
        ++t.splitters;
        // Footnote 1: splitters never pay PTL costs (see jj_count()).
        t.jj += jj_sp;
        t.jj_ptl += jj_sp;
        break;
      case element_kind::droc:
        ++t.drocs_plain;
        t.jj += jj_dr;
        t.jj_ptl += jj_dr_p;
        break;
      case element_kind::droc_preload:
        ++t.drocs_preload;
        t.jj += jj_dp;
        t.jj_ptl += jj_dp_p;
        break;
      default:
        break;
    }

    dp_state& s = dp[i];
    if (is_path_start(e.kind)) {
      const bool is_droc = e.kind == element_kind::droc ||
                           e.kind == element_kind::droc_preload;
      s.arrival = is_droc ? d_cq : 0.0;
      s.arrival_ptl = is_droc ? d_cq_p : 0.0;
      t.critical_path_ps = std::max(t.critical_path_ps, s.arrival);
      t.critical_path_ps_ptl = std::max(t.critical_path_ps_ptl, s.arrival_ptl);
      continue;
    }
    unsigned in_depth = 0;
    unsigned in_depth_sp = 0;
    double in_time = 0.0;
    double in_time_ptl = 0.0;
    if (has_fanin0(e.kind)) {
      const dp_state& f = dp[e.fanin0.element];
      in_depth = f.depth;
      in_depth_sp = f.depth_sp;
      in_time = f.arrival;
      in_time_ptl = f.arrival_ptl;
    }
    if (has_fanin1(e.kind)) {
      const dp_state& f = dp[e.fanin1.element];
      in_depth = std::max(in_depth, f.depth);
      in_depth_sp = std::max(in_depth_sp, f.depth_sp);
      in_time = std::max(in_time, f.arrival);
      in_time_ptl = std::max(in_time_ptl, f.arrival_ptl);
    }
    const bool logic = e.kind == element_kind::la || e.kind == element_kind::fa;
    const bool split = e.kind == element_kind::splitter;
    s.depth = in_depth + (logic ? 1 : 0);
    s.depth_sp = in_depth_sp + (logic || split ? 1 : 0);
    switch (e.kind) {
      case element_kind::la:
        s.arrival = in_time + d_la;
        s.arrival_ptl = in_time_ptl + d_la_p;
        break;
      case element_kind::fa:
        s.arrival = in_time + d_fa;
        s.arrival_ptl = in_time_ptl + d_fa_p;
        break;
      case element_kind::splitter:
        s.arrival = in_time + d_sp;
        s.arrival_ptl = in_time_ptl + d_sp_p;
        break;
      default:
        s.arrival = in_time;
        s.arrival_ptl = in_time_ptl;
        break;
    }
    t.depth = std::max(t.depth, s.depth);
    t.depth_with_splitters = std::max(t.depth_with_splitters, s.depth_sp);
    t.critical_path_ps = std::max(t.critical_path_ps, s.arrival);
    t.critical_path_ps_ptl = std::max(t.critical_path_ps_ptl, s.arrival_ptl);
  }
  return t;
}

void xsfq_netlist::check() const {
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    const auto& e = elements_[i];
    auto check_ref = [&](port_ref r, const char* which) {
      if (r.element >= i) {
        throw std::logic_error(std::string("xsfq_netlist: ") + which +
                               " of element " + std::to_string(i) +
                               " is not topologically earlier");
      }
      const auto& src = elements_[r.element];
      const std::uint8_t max_port =
          (src.kind == element_kind::splitter ||
           src.kind == element_kind::droc ||
           src.kind == element_kind::droc_preload)
              ? 1
              : 0;
      if (r.port > max_port) {
        throw std::logic_error("xsfq_netlist: bad port reference");
      }
      if (src.kind == element_kind::output_port) {
        throw std::logic_error("xsfq_netlist: output port used as source");
      }
    };
    if (has_fanin0(e.kind) && !e.feedback_input) {
      check_ref(e.fanin0, "fanin0");
    }
    if (has_fanin1(e.kind)) check_ref(e.fanin1, "fanin1");
  }
}

std::string xsfq_netlist::summary() const {
  // One tally pass, not nine separate walks — this renders on the serving
  // hot path for every request, including sub-ms ECO responses.
  const stats_tally t = tally();
  std::ostringstream os;
  os << "xSFQ netlist: " << t.la << " LA, " << t.fa << " FA, "
     << t.splitters << " splitters, " << t.drocs_plain << "+"
     << t.drocs_preload << " DROC, JJ " << t.jj << " (" << t.jj_ptl
     << " with PTL), depth " << t.depth << "/" << t.depth_with_splitters;
  return os.str();
}

}  // namespace xsfq
