#pragma once
/// \file dual_rail.hpp
/// \brief Rail-demand analysis and output polarity optimization.
///
/// Sections 3.1.1-3.1.5 of the paper in algorithmic form.  A dual-rail xSFQ
/// circuit needs, for every AIG node, its positive rail (an LA cell), its
/// negative rail (an FA cell), or both.  Which rails are needed is determined
/// purely by demand propagation from the combinational outputs:
///
///  * a CO demands exactly one rail of its driver (DROC inputs and dual-rail
///    converters are single-rail, Sec. 3.1.4);
///  * the positive rail of node n = AND(f0^c0, f1^c1) consumes rail c_i of
///    each fanin f_i; the negative rail consumes rail !c_i (De Morgan);
///  * CIs provide both rails for free (input converters / DROC Qp+Qn).
///
/// "Backward bubble pushing" is implicit: an edge complement is just a rail
/// swap at the consumer, so no inverter cells ever exist.  The *output phase
/// assignment* freedom of Sec. 3.1.5 (a PO may be produced in negative
/// polarity, like domino logic [6,14]) is exposed as a per-CO negation flag,
/// and `optimize_co_polarities` runs the greedy improvement heuristic.

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"

namespace xsfq {

/// How combinational-output polarities are chosen before mapping.
enum class polarity_mode : std::uint8_t {
  direct_dual_rail,  ///< Sec. 3.1.1: every used node gets an LA-FA pair
  positive_outputs,  ///< Sec. 3.1.4: all COs positive, demands propagated
  optimized,         ///< Sec. 3.1.5: per-CO polarity chosen by the heuristic
};

/// Rail demand per node: bit 0 = positive rail, bit 1 = negative rail.
struct rail_demands {
  std::vector<std::uint8_t> bits;

  [[nodiscard]] bool positive(aig::node_index n) const {
    return bits[n] & 1u;
  }
  [[nodiscard]] bool negative(aig::node_index n) const {
    return bits[n] & 2u;
  }
  [[nodiscard]] bool any(aig::node_index n) const { return bits[n] != 0; }
};

/// Statistics of a demand assignment over the AIG's gates.
struct dual_rail_stats {
  std::size_t cells = 0;       ///< LA + FA cells
  std::size_t nodes_used = 0;  ///< gates needing at least one rail
  /// The paper's duplication penalty: extra cells over one per used node.
  [[nodiscard]] double duplication() const {
    return nodes_used == 0
               ? 0.0
               : static_cast<double>(cells - nodes_used) /
                     static_cast<double>(nodes_used);
  }
};

/// Reusable scratch for the demand-propagation routines below: the polarity
/// heuristic evaluates demands once per CO per sweep, so recycling the
/// worklist and demand bits keeps the whole mapping front end allocation-free
/// in the steady state (core/mapper.cpp holds one per mapper engine).
struct demand_scratch {
  std::vector<std::pair<aig::node_index, bool>> worklist;
  rail_demands trial;  ///< demand bits of candidate polarity assignments
  // Closure-pool scratch of the greedy polarity search (all internal to
  // optimize_co_polarities_into; recycled so the serving hot path maps
  // allocation-free in the steady state).
  std::vector<std::uint64_t> reach;     ///< per-(node,rail) CO-closure masks
  std::vector<std::uint64_t> act;       ///< active-closure bits of the search
  std::vector<std::uint32_t> pool;      ///< flattened per-closure entry lists
  std::vector<std::uint32_t> refs;      ///< active-closure reference counts
  std::vector<std::uint32_t> stamp;     ///< trial-epoch membership marks
  std::vector<std::pair<std::uint32_t, std::uint32_t>> spans;
};

/// Computes rail demands given per-CO negation flags (`co_negate[i]` true
/// means CO i is produced in negative polarity).
rail_demands compute_rail_demands(const aig& network,
                                  const std::vector<bool>& co_negate);
/// Scratch-reusing variant: fills `out` in place.
void compute_rail_demands_into(const aig& network,
                               const std::vector<bool>& co_negate,
                               demand_scratch& scratch, rail_demands& out);

/// Demands for the direct LA-FA-pair mapping (both rails everywhere).
rail_demands direct_dual_rail_demands(const aig& network);
/// Scratch-reusing variant: fills `out` in place.
void direct_dual_rail_demands_into(const aig& network, demand_scratch& scratch,
                                   rail_demands& out);

dual_rail_stats demand_stats(const aig& network, const rail_demands& demands);

/// Greedy output-phase assignment (the domino-logic heuristic of Sec. 3.1.5):
/// starts all-positive and flips CO polarities while the LA/FA cell count
/// improves, for up to `max_passes` sweeps.  Deterministic.
std::vector<bool> optimize_co_polarities(const aig& network,
                                         unsigned max_passes = 8);

/// Resolves a polarity mode to concrete flags (+ demands via the above).
std::vector<bool> co_polarities_for_mode(const aig& network,
                                         polarity_mode mode);
/// Scratch-reusing variant: fills `negate` in place.
void co_polarities_for_mode_into(const aig& network, polarity_mode mode,
                                 demand_scratch& scratch,
                                 std::vector<bool>& negate);

}  // namespace xsfq
