#include "core/dual_rail.hpp"

#include <stdexcept>

namespace xsfq {

void compute_rail_demands_into(const aig& network,
                               const std::vector<bool>& co_negate,
                               demand_scratch& scratch, rail_demands& out) {
  if (co_negate.size() != network.num_cos()) {
    throw std::invalid_argument("compute_rail_demands: flag count mismatch");
  }
  out.bits.assign(network.size(), 0);

  auto& worklist = scratch.worklist;  // (node, negative-rail demanded)
  worklist.clear();
  network.foreach_co([&](signal s, std::size_t i) {
    if (!network.is_gate(s.index())) return;  // CI/constant rails are free
    worklist.emplace_back(s.index(),
                          s.is_complemented() ^ co_negate[i]);
  });

  while (!worklist.empty()) {
    const auto [n, neg] = worklist.back();
    worklist.pop_back();
    const std::uint8_t bit = neg ? 2u : 1u;
    if (out.bits[n] & bit) continue;
    out.bits[n] |= bit;
    for (const signal f : {network.fanin0(n), network.fanin1(n)}) {
      if (!network.is_gate(f.index())) continue;
      // Positive rail (LA) consumes fanin rail c; negative (FA) consumes !c.
      const bool child_neg = f.is_complemented() ^ neg;
      worklist.emplace_back(f.index(), child_neg);
    }
  }
}

rail_demands compute_rail_demands(const aig& network,
                                  const std::vector<bool>& co_negate) {
  demand_scratch scratch;
  rail_demands demands;
  compute_rail_demands_into(network, co_negate, scratch, demands);
  return demands;
}

void direct_dual_rail_demands_into(const aig& network, demand_scratch& scratch,
                                   rail_demands& out) {
  // Both rails for every gate in the transitive fanin of some CO.
  out.bits.assign(network.size(), 0);
  auto& stack = scratch.worklist;  // bool half unused here
  stack.clear();
  network.foreach_co([&](signal s, std::size_t) {
    if (network.is_gate(s.index())) stack.emplace_back(s.index(), false);
  });
  while (!stack.empty()) {
    const aig::node_index n = stack.back().first;
    stack.pop_back();
    if (out.bits[n]) continue;
    out.bits[n] = 3u;
    for (const signal f : {network.fanin0(n), network.fanin1(n)}) {
      if (network.is_gate(f.index())) stack.emplace_back(f.index(), false);
    }
  }
}

rail_demands direct_dual_rail_demands(const aig& network) {
  demand_scratch scratch;
  rail_demands demands;
  direct_dual_rail_demands_into(network, scratch, demands);
  return demands;
}

dual_rail_stats demand_stats(const aig& network, const rail_demands& demands) {
  dual_rail_stats stats;
  network.foreach_gate([&](aig::node_index n) {
    const std::uint8_t bits = demands.bits[n];
    if (!bits) return;
    ++stats.nodes_used;
    stats.cells += (bits & 1u) ? 1u : 0u;
    stats.cells += (bits & 2u) ? 1u : 0u;
  });
  return stats;
}

namespace {

/// The closure of one CO's demand propagation as a flat list of
/// (node << 1 | negative-rail) ids, gates only.  Demand propagation is a
/// monotone per-(node, rail) closure, so the full network's demand set is
/// exactly the union of these per-CO closures — which makes the greedy
/// polarity search incremental: flipping one CO swaps one list in and one
/// out of a reference-counted union instead of re-propagating the network.
void co_closure(const aig& network, signal s, bool neg_rail,
                std::vector<std::pair<aig::node_index, bool>>& worklist,
                std::vector<std::uint8_t>& visited,
                std::vector<std::uint32_t>& out) {
  if (!network.is_gate(s.index())) return;
  worklist.clear();
  worklist.emplace_back(s.index(), s.is_complemented() ^ neg_rail);
  while (!worklist.empty()) {
    const auto [n, neg] = worklist.back();
    worklist.pop_back();
    const std::uint8_t bit = neg ? 2u : 1u;
    if (visited[n] & bit) continue;
    visited[n] |= bit;
    out.push_back((n << 1) | (neg ? 1u : 0u));
    for (const signal f : {network.fanin0(n), network.fanin1(n)}) {
      if (!network.is_gate(f.index())) continue;
      worklist.emplace_back(f.index(), f.is_complemented() ^ neg);
    }
  }
  for (const std::uint32_t id : out) visited[id >> 1] = 0;  // cheap reset
}

/// Exact greedy polarity search (identical decisions and result to the
/// historical recompute-the-network-per-flip version; a test pins parity).
void optimize_co_polarities_into(const aig& network, unsigned max_passes,
                                 demand_scratch& scratch,
                                 std::vector<bool>& negate) {
  const std::size_t num_cos = network.num_cos();
  negate.assign(num_cos, false);
  if (num_cos == 0) return;

  // The greedy search needs, per CO, the closure of its demand propagation
  // under either polarity.  The normal tier computes every closure as a
  // bitmask in ONE reverse-topological sweep: each (node, rail) carries a
  // mask over the 2*num_cos closure roots that reach it, pushed
  // consumer-to-fanin down the topologically sorted node array.  The search
  // then runs DIRECTLY on the masks: the cell count is the number of
  // (node, rail) pairs whose mask intersects the set of active closures, so
  // a flip trial is a branch-free scan comparing the intersection under the
  // current and the toggled active-bit word — no per-closure entry lists,
  // no reference counts, and commit is one XOR.  Decisions and result are
  // identical to the historical recompute-per-flip search (a test pins
  // parity); wide-CO networks whose masks would not fit the budget fall
  // back to DFS-built closure lists, and a pathological closure volume to
  // the recompute-per-flip search.
  const std::size_t entry_cap = 1u << 26;
  const std::size_t mask_word_budget = 1u << 22;  // 32 MiB of mask words
  const std::size_t mask_words = (2 * num_cos + 63) / 64;
  auto& pool = scratch.pool;
  auto& spans = scratch.spans;
  pool.clear();
  spans.assign(2 * num_cos, {0, 0});
  bool overflow = false;
  if (2 * network.size() * mask_words <= mask_word_budget) {
    auto& reach = scratch.reach;
    reach.assign(2 * network.size() * mask_words, 0);
    const auto rail_at = [&](aig::node_index n, bool neg) {
      return (2 * static_cast<std::size_t>(n) + (neg ? 1 : 0)) * mask_words;
    };
    network.foreach_co([&](signal s, std::size_t i) {
      if (!network.is_gate(s.index())) return;
      for (int flag = 0; flag < 2; ++flag) {
        const std::size_t bit = 2 * i + flag;
        reach[rail_at(s.index(), s.is_complemented() ^ (flag != 0)) +
              bit / 64] |= std::uint64_t{1} << (bit % 64);
      }
    });
    for (aig::node_index n = static_cast<aig::node_index>(network.size());
         n-- > 1;) {
      if (!network.is_gate(n)) continue;
      for (int rail = 0; rail < 2; ++rail) {
        const std::size_t src = rail_at(n, rail != 0);
        bool empty = true;
        for (std::size_t w = 0; w < mask_words && empty; ++w) {
          empty = reach[src + w] == 0;
        }
        if (empty) continue;
        for (const signal f : {network.fanin0(n), network.fanin1(n)}) {
          if (!network.is_gate(f.index())) continue;
          const std::size_t dst =
              rail_at(f.index(), f.is_complemented() ^ (rail != 0));
          for (std::size_t w = 0; w < mask_words; ++w) {
            reach[dst + w] |= reach[src + w];
          }
        }
      }
    }
    // Active-closure bit per CO (bit 2i+flag; flag = current polarity).
    // Both flags of one CO share a mask word, so a flip toggles two
    // adjacent bits of a single word.
    const std::size_t rails = 2 * network.size();
    auto& act = scratch.act;
    act.assign(mask_words, 0);
    for (std::size_t i = 0; i < num_cos; ++i) {
      act[(2 * i) / 64] |= std::uint64_t{1} << ((2 * i) % 64);
    }
    std::size_t cells = 0;
    for (std::size_t x = 0; x < rails; ++x) {
      const std::uint64_t* m = &reach[x * mask_words];
      bool covered = false;
      for (std::size_t w = 0; w < mask_words && !covered; ++w) {
        covered = (m[w] & act[w]) != 0;
      }
      if (covered) ++cells;
    }
    std::size_t best = cells;
    for (unsigned pass = 0; pass < max_passes; ++pass) {
      bool improved = false;
      for (std::size_t i = 0; i < num_cos; ++i) {
        const std::size_t w0 = (2 * i) / 64;
        const std::uint64_t act0 = act[w0];
        const std::uint64_t act1 = act0 ^ (std::uint64_t{3} << ((2 * i) % 64));
        std::ptrdiff_t delta = 0;
        if (mask_words == 1) {
          for (std::size_t x = 0; x < rails; ++x) {
            const std::uint64_t m = reach[x];
            delta += static_cast<std::ptrdiff_t>((m & act1) != 0) -
                     static_cast<std::ptrdiff_t>((m & act0) != 0);
          }
        } else {
          for (std::size_t x = 0; x < rails; ++x) {
            const std::uint64_t* m = &reach[x * mask_words];
            bool other = false;
            for (std::size_t w = 0; w < mask_words && !other; ++w) {
              other = w != w0 && (m[w] & act[w]) != 0;
            }
            if (other) continue;  // covered regardless of this flip
            delta += static_cast<std::ptrdiff_t>((m[w0] & act1) != 0) -
                     static_cast<std::ptrdiff_t>((m[w0] & act0) != 0);
          }
        }
        if (cells + static_cast<std::size_t>(delta) < best) {
          act[w0] = act1;
          cells += static_cast<std::size_t>(delta);
          best = cells;
          negate[i] = !negate[i];
          improved = true;
        }
      }
      if (!improved) break;
    }
    return;
  }
  {
    std::vector<std::uint8_t> visited(network.size(), 0);
    std::vector<std::uint32_t> closure;
    for (std::size_t i = 0; i < num_cos && !overflow; ++i) {
      for (int flag = 0; flag < 2; ++flag) {
        closure.clear();
        co_closure(network, network.co(i), flag != 0, scratch.worklist,
                   visited, closure);
        spans[2 * i + flag] = {static_cast<std::uint32_t>(pool.size()),
                               static_cast<std::uint32_t>(closure.size())};
        pool.insert(pool.end(), closure.begin(), closure.end());
        if (pool.size() > entry_cap) {
          overflow = true;
          break;
        }
      }
    }
  }
  if (overflow) {
    auto cost = [&](const std::vector<bool>& flags) {
      compute_rail_demands_into(network, flags, scratch, scratch.trial);
      return demand_stats(network, scratch.trial).cells;
    };
    std::size_t best = cost(negate);
    for (unsigned pass = 0; pass < max_passes; ++pass) {
      bool improved = false;
      for (std::size_t i = 0; i < negate.size(); ++i) {
        negate[i] = !negate[i];
        const std::size_t candidate = cost(negate);
        if (candidate < best) {
          best = candidate;
          improved = true;
        } else {
          negate[i] = !negate[i];
        }
      }
      if (!improved) break;
    }
    return;
  }

  // Reference-counted union of the active closures; `cells` tracks the
  // number of demanded (gate, rail) pairs = demand_stats().cells.
  auto& refs = scratch.refs;
  refs.assign(2 * network.size(), 0);
  std::size_t cells = 0;
  const auto apply = [&](std::size_t i, bool flag, int delta) {
    const auto [begin, count] = spans[2 * i + (flag ? 1 : 0)];
    if (delta > 0) {
      for (std::uint32_t k = 0; k < count; ++k) {
        if (refs[pool[begin + k]]++ == 0) ++cells;
      }
    } else {
      for (std::uint32_t k = 0; k < count; ++k) {
        if (--refs[pool[begin + k]] == 0) --cells;
      }
    }
  };
  for (std::size_t i = 0; i < num_cos; ++i) apply(i, false, +1);

  // Each flip trial is evaluated WITHOUT mutating the refcounts: one scan
  // of the outgoing closure (stamping membership, counting uniquely covered
  // entries) and one of the incoming closure (counting entries that would
  // become covered) yield the exact cell delta, so a rejected flip costs two
  // closure scans instead of the four of a mutate-then-undo round trip.
  // Accepted flips commit through apply() as before — decisions and result
  // are identical to the historical search (a test pins parity).
  auto& stamp = scratch.stamp;
  stamp.assign(2 * network.size(), 0);
  std::uint32_t epoch = 0;
  const auto flip_delta = [&](std::size_t i) {
    ++epoch;
    const auto [a_begin, a_count] = spans[2 * i + (negate[i] ? 1 : 0)];
    const auto [b_begin, b_count] = spans[2 * i + (negate[i] ? 0 : 1)];
    std::ptrdiff_t delta = 0;
    for (std::uint32_t k = 0; k < a_count; ++k) {
      const std::uint32_t x = pool[a_begin + k];
      stamp[x] = epoch;
      if (refs[x] == 1) --delta;  // uniquely covered by the outgoing closure
    }
    for (std::uint32_t k = 0; k < b_count; ++k) {
      const std::uint32_t x = pool[b_begin + k];
      // Covered after the flip iff nothing else holds it: refs drops by one
      // on outgoing-closure members first.
      const std::uint32_t held = stamp[x] == epoch ? 1u : 0u;
      if (refs[x] == held) ++delta;
    }
    return delta;
  };

  std::size_t best = cells;
  for (unsigned pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    for (std::size_t i = 0; i < num_cos; ++i) {
      const std::ptrdiff_t delta = flip_delta(i);
      if (cells + static_cast<std::size_t>(delta) < best) {
        apply(i, negate[i], -1);
        apply(i, !negate[i], +1);
        best = cells;
        negate[i] = !negate[i];
        improved = true;
      }
    }
    if (!improved) break;
  }
}

}  // namespace

std::vector<bool> optimize_co_polarities(const aig& network,
                                         unsigned max_passes) {
  demand_scratch scratch;
  std::vector<bool> negate;
  optimize_co_polarities_into(network, max_passes, scratch, negate);
  return negate;
}

void co_polarities_for_mode_into(const aig& network, polarity_mode mode,
                                 demand_scratch& scratch,
                                 std::vector<bool>& negate) {
  switch (mode) {
    case polarity_mode::direct_dual_rail:
    case polarity_mode::positive_outputs:
      negate.assign(network.num_cos(), false);
      return;
    case polarity_mode::optimized:
      optimize_co_polarities_into(network, /*max_passes=*/8, scratch, negate);
      return;
  }
  throw std::logic_error("co_polarities_for_mode: bad mode");
}

std::vector<bool> co_polarities_for_mode(const aig& network,
                                         polarity_mode mode) {
  demand_scratch scratch;
  std::vector<bool> negate;
  co_polarities_for_mode_into(network, mode, scratch, negate);
  return negate;
}

}  // namespace xsfq
