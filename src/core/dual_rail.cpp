#include "core/dual_rail.hpp"

#include <stdexcept>

namespace xsfq {

void compute_rail_demands_into(const aig& network,
                               const std::vector<bool>& co_negate,
                               demand_scratch& scratch, rail_demands& out) {
  if (co_negate.size() != network.num_cos()) {
    throw std::invalid_argument("compute_rail_demands: flag count mismatch");
  }
  out.bits.assign(network.size(), 0);

  auto& worklist = scratch.worklist;  // (node, negative-rail demanded)
  worklist.clear();
  network.foreach_co([&](signal s, std::size_t i) {
    if (!network.is_gate(s.index())) return;  // CI/constant rails are free
    worklist.emplace_back(s.index(),
                          s.is_complemented() ^ co_negate[i]);
  });

  while (!worklist.empty()) {
    const auto [n, neg] = worklist.back();
    worklist.pop_back();
    const std::uint8_t bit = neg ? 2u : 1u;
    if (out.bits[n] & bit) continue;
    out.bits[n] |= bit;
    for (const signal f : {network.fanin0(n), network.fanin1(n)}) {
      if (!network.is_gate(f.index())) continue;
      // Positive rail (LA) consumes fanin rail c; negative (FA) consumes !c.
      const bool child_neg = f.is_complemented() ^ neg;
      worklist.emplace_back(f.index(), child_neg);
    }
  }
}

rail_demands compute_rail_demands(const aig& network,
                                  const std::vector<bool>& co_negate) {
  demand_scratch scratch;
  rail_demands demands;
  compute_rail_demands_into(network, co_negate, scratch, demands);
  return demands;
}

void direct_dual_rail_demands_into(const aig& network, demand_scratch& scratch,
                                   rail_demands& out) {
  // Both rails for every gate in the transitive fanin of some CO.
  out.bits.assign(network.size(), 0);
  auto& stack = scratch.worklist;  // bool half unused here
  stack.clear();
  network.foreach_co([&](signal s, std::size_t) {
    if (network.is_gate(s.index())) stack.emplace_back(s.index(), false);
  });
  while (!stack.empty()) {
    const aig::node_index n = stack.back().first;
    stack.pop_back();
    if (out.bits[n]) continue;
    out.bits[n] = 3u;
    for (const signal f : {network.fanin0(n), network.fanin1(n)}) {
      if (network.is_gate(f.index())) stack.emplace_back(f.index(), false);
    }
  }
}

rail_demands direct_dual_rail_demands(const aig& network) {
  demand_scratch scratch;
  rail_demands demands;
  direct_dual_rail_demands_into(network, scratch, demands);
  return demands;
}

dual_rail_stats demand_stats(const aig& network, const rail_demands& demands) {
  dual_rail_stats stats;
  network.foreach_gate([&](aig::node_index n) {
    const std::uint8_t bits = demands.bits[n];
    if (!bits) return;
    ++stats.nodes_used;
    stats.cells += (bits & 1u) ? 1u : 0u;
    stats.cells += (bits & 2u) ? 1u : 0u;
  });
  return stats;
}

namespace {

/// The closure of one CO's demand propagation as a flat list of
/// (node << 1 | negative-rail) ids, gates only.  Demand propagation is a
/// monotone per-(node, rail) closure, so the full network's demand set is
/// exactly the union of these per-CO closures — which makes the greedy
/// polarity search incremental: flipping one CO swaps one list in and one
/// out of a reference-counted union instead of re-propagating the network.
void co_closure(const aig& network, signal s, bool neg_rail,
                std::vector<std::pair<aig::node_index, bool>>& worklist,
                std::vector<std::uint8_t>& visited,
                std::vector<std::uint32_t>& out) {
  if (!network.is_gate(s.index())) return;
  worklist.clear();
  worklist.emplace_back(s.index(), s.is_complemented() ^ neg_rail);
  while (!worklist.empty()) {
    const auto [n, neg] = worklist.back();
    worklist.pop_back();
    const std::uint8_t bit = neg ? 2u : 1u;
    if (visited[n] & bit) continue;
    visited[n] |= bit;
    out.push_back((n << 1) | (neg ? 1u : 0u));
    for (const signal f : {network.fanin0(n), network.fanin1(n)}) {
      if (!network.is_gate(f.index())) continue;
      worklist.emplace_back(f.index(), f.is_complemented() ^ neg);
    }
  }
  for (const std::uint32_t id : out) visited[id >> 1] = 0;  // cheap reset
}

/// Exact greedy polarity search (identical decisions and result to the
/// historical recompute-the-network-per-flip version; a test pins parity).
void optimize_co_polarities_into(const aig& network, unsigned max_passes,
                                 demand_scratch& scratch,
                                 std::vector<bool>& negate) {
  const std::size_t num_cos = network.num_cos();
  negate.assign(num_cos, false);
  if (num_cos == 0) return;

  // Precompute both closures of every CO.  The flat storage is bounded; a
  // pathological (many COs x huge shared cones) circuit falls back to the
  // recompute-per-flip search with identical results.
  const std::size_t entry_cap = 1u << 26;
  std::vector<std::uint32_t> pool;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> spans(2 * num_cos);
  std::vector<std::uint8_t> visited(network.size(), 0);
  bool overflow = false;
  {
    std::vector<std::uint32_t> closure;
    for (std::size_t i = 0; i < num_cos && !overflow; ++i) {
      for (int flag = 0; flag < 2; ++flag) {
        closure.clear();
        co_closure(network, network.co(i), flag != 0, scratch.worklist,
                   visited, closure);
        spans[2 * i + flag] = {static_cast<std::uint32_t>(pool.size()),
                               static_cast<std::uint32_t>(closure.size())};
        pool.insert(pool.end(), closure.begin(), closure.end());
        if (pool.size() > entry_cap) {
          overflow = true;
          break;
        }
      }
    }
  }
  if (overflow) {
    auto cost = [&](const std::vector<bool>& flags) {
      compute_rail_demands_into(network, flags, scratch, scratch.trial);
      return demand_stats(network, scratch.trial).cells;
    };
    std::size_t best = cost(negate);
    for (unsigned pass = 0; pass < max_passes; ++pass) {
      bool improved = false;
      for (std::size_t i = 0; i < negate.size(); ++i) {
        negate[i] = !negate[i];
        const std::size_t candidate = cost(negate);
        if (candidate < best) {
          best = candidate;
          improved = true;
        } else {
          negate[i] = !negate[i];
        }
      }
      if (!improved) break;
    }
    return;
  }

  // Reference-counted union of the active closures; `cells` tracks the
  // number of demanded (gate, rail) pairs = demand_stats().cells.
  std::vector<std::uint32_t> refs(2 * network.size(), 0);
  std::size_t cells = 0;
  const auto apply = [&](std::size_t i, bool flag, int delta) {
    const auto [begin, count] = spans[2 * i + (flag ? 1 : 0)];
    if (delta > 0) {
      for (std::uint32_t k = 0; k < count; ++k) {
        if (refs[pool[begin + k]]++ == 0) ++cells;
      }
    } else {
      for (std::uint32_t k = 0; k < count; ++k) {
        if (--refs[pool[begin + k]] == 0) --cells;
      }
    }
  };
  for (std::size_t i = 0; i < num_cos; ++i) apply(i, false, +1);

  std::size_t best = cells;
  for (unsigned pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    for (std::size_t i = 0; i < num_cos; ++i) {
      apply(i, negate[i], -1);
      apply(i, !negate[i], +1);
      if (cells < best) {
        best = cells;
        negate[i] = !negate[i];
        improved = true;
      } else {
        apply(i, !negate[i], -1);
        apply(i, negate[i], +1);
      }
    }
    if (!improved) break;
  }
}

}  // namespace

std::vector<bool> optimize_co_polarities(const aig& network,
                                         unsigned max_passes) {
  demand_scratch scratch;
  std::vector<bool> negate;
  optimize_co_polarities_into(network, max_passes, scratch, negate);
  return negate;
}

void co_polarities_for_mode_into(const aig& network, polarity_mode mode,
                                 demand_scratch& scratch,
                                 std::vector<bool>& negate) {
  switch (mode) {
    case polarity_mode::direct_dual_rail:
    case polarity_mode::positive_outputs:
      negate.assign(network.num_cos(), false);
      return;
    case polarity_mode::optimized:
      optimize_co_polarities_into(network, /*max_passes=*/8, scratch, negate);
      return;
  }
  throw std::logic_error("co_polarities_for_mode: bad mode");
}

std::vector<bool> co_polarities_for_mode(const aig& network,
                                         polarity_mode mode) {
  demand_scratch scratch;
  std::vector<bool> negate;
  co_polarities_for_mode_into(network, mode, scratch, negate);
  return negate;
}

}  // namespace xsfq
