#include "core/dual_rail.hpp"

#include <stdexcept>

namespace xsfq {

rail_demands compute_rail_demands(const aig& network,
                                  const std::vector<bool>& co_negate) {
  if (co_negate.size() != network.num_cos()) {
    throw std::invalid_argument("compute_rail_demands: flag count mismatch");
  }
  rail_demands demands;
  demands.bits.assign(network.size(), 0);

  std::vector<std::pair<aig::node_index, bool>> worklist;  // (node, neg rail)
  network.foreach_co([&](signal s, std::size_t i) {
    if (!network.is_gate(s.index())) return;  // CI/constant rails are free
    worklist.emplace_back(s.index(),
                          s.is_complemented() ^ co_negate[i]);
  });

  while (!worklist.empty()) {
    const auto [n, neg] = worklist.back();
    worklist.pop_back();
    const std::uint8_t bit = neg ? 2u : 1u;
    if (demands.bits[n] & bit) continue;
    demands.bits[n] |= bit;
    for (const signal f : {network.fanin0(n), network.fanin1(n)}) {
      if (!network.is_gate(f.index())) continue;
      // Positive rail (LA) consumes fanin rail c; negative (FA) consumes !c.
      const bool child_neg = f.is_complemented() ^ neg;
      worklist.emplace_back(f.index(), child_neg);
    }
  }
  return demands;
}

rail_demands direct_dual_rail_demands(const aig& network) {
  // Both rails for every gate in the transitive fanin of some CO.
  rail_demands demands;
  demands.bits.assign(network.size(), 0);
  std::vector<aig::node_index> stack;
  network.foreach_co([&](signal s, std::size_t) {
    if (network.is_gate(s.index())) stack.push_back(s.index());
  });
  while (!stack.empty()) {
    const aig::node_index n = stack.back();
    stack.pop_back();
    if (demands.bits[n]) continue;
    demands.bits[n] = 3u;
    for (const signal f : {network.fanin0(n), network.fanin1(n)}) {
      if (network.is_gate(f.index())) stack.push_back(f.index());
    }
  }
  return demands;
}

dual_rail_stats demand_stats(const aig& network, const rail_demands& demands) {
  dual_rail_stats stats;
  network.foreach_gate([&](aig::node_index n) {
    const std::uint8_t bits = demands.bits[n];
    if (!bits) return;
    ++stats.nodes_used;
    stats.cells += (bits & 1u) ? 1u : 0u;
    stats.cells += (bits & 2u) ? 1u : 0u;
  });
  return stats;
}

std::vector<bool> optimize_co_polarities(const aig& network,
                                         unsigned max_passes) {
  std::vector<bool> negate(network.num_cos(), false);
  auto cost = [&](const std::vector<bool>& flags) {
    return demand_stats(network, compute_rail_demands(network, flags)).cells;
  };
  std::size_t best = cost(negate);
  for (unsigned pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    for (std::size_t i = 0; i < negate.size(); ++i) {
      negate[i] = !negate[i];
      const std::size_t candidate = cost(negate);
      if (candidate < best) {
        best = candidate;
        improved = true;
      } else {
        negate[i] = !negate[i];
      }
    }
    if (!improved) break;
  }
  return negate;
}

std::vector<bool> co_polarities_for_mode(const aig& network,
                                         polarity_mode mode) {
  switch (mode) {
    case polarity_mode::direct_dual_rail:
    case polarity_mode::positive_outputs:
      return std::vector<bool>(network.num_cos(), false);
    case polarity_mode::optimized:
      return optimize_co_polarities(network);
  }
  throw std::logic_error("co_polarities_for_mode: bad mode");
}

}  // namespace xsfq
