#pragma once
/// \file mapper.hpp
/// \brief AIG -> clock-free xSFQ netlist mapping (the paper's core flow).
///
/// Combinational logic maps by the Sec. 3.1.3 isomorphism: each demanded
/// positive rail becomes an LA cell, each demanded negative rail an FA cell,
/// and edge complements become rail selections.  Fanout beyond one is
/// realized with balanced trees of 1-to-2 splitters.  Sequential designs use
/// DROC pairs per logical flip-flop (Sec. 3.2): the boundary DROC carries the
/// preloading hardware, and the partner rank is either kept adjacent
/// (`pair_boundary`, Fig. 6ii) or pushed into the logic at the mid-level cut
/// of the register-fed cone (`pair_retimed`, Fig. 6iii — the retiming
/// rebalance).  Combinational circuits can be pipelined with `k`
/// architectural stages, which inserts `2k` DROC ranks at balanced level
/// cuts (each logical stage needs an excite and a relax rank, Sec. 4.2.2);
/// ranks alternate preloaded/plain so that phase patterning is correct after
/// the one-shot trigger (even-indexed ranks carry the preload hardware).

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/dual_rail.hpp"
#include "core/xsfq_netlist.hpp"

namespace xsfq {

/// Placement of the second DROC of each logical flip-flop pair.
enum class register_style : std::uint8_t {
  pair_boundary,  ///< both DROCs back-to-back at the register boundary
  pair_retimed,   ///< partner rank retimed into the register-fed logic cone
};

struct mapping_params {
  polarity_mode polarity = polarity_mode::optimized;
  /// Architectural pipeline stages for combinational designs (0 = none).
  unsigned pipeline_stages = 0;
  register_style reg_style = register_style::pair_retimed;
  /// Overrides the polarity mode with an explicit per-CO negation vector
  /// (testing / ablation hook).
  std::optional<std::vector<bool>> forced_polarities;
};

struct mapping_stats {
  std::size_t la_cells = 0;
  std::size_t fa_cells = 0;
  std::size_t splitters = 0;
  std::size_t drocs_plain = 0;
  std::size_t drocs_preload = 0;
  std::size_t nodes_used = 0;
  double duplication = 0.0;      ///< the paper's "Dupl." column
  std::size_t jj = 0;            ///< without PTL
  std::size_t jj_ptl = 0;        ///< with PTL
  long eq1_splitters = 0;        ///< Eq. (1) closed form
  unsigned depth = 0;            ///< logical depth without splitters
  unsigned depth_with_splitters = 0;
  double circuit_ghz = 0.0;
  double architectural_ghz = 0.0;
};

/// xsfq_netlist::summary() rendered from already-computed mapping stats —
/// the serving hot path formats per-request report lines without re-walking
/// the netlist.  Byte-identical to netlist.summary() by construction (the
/// stats were tallied from that netlist); pinned by a test.
std::string summary_line(const mapping_stats& stats);

struct mapping_result {
  xsfq_netlist netlist;
  mapping_stats stats;
  std::vector<bool> co_negated;  ///< chosen CO polarities
  /// For each register: its boundary DROC element and the netlist port that
  /// drives its data input (the feedback arc closing the loop).
  std::vector<std::pair<xsfq_netlist::element_index, port_ref>>
      register_feedback;
};

/// Reusable mapping engine: every scratch structure of the two mapping
/// phases (stage model, rail bases, DROC rank chains, proto elements,
/// splitter bookkeeping, demand propagation) persists across calls, so
/// repeated invocations rebuild nothing — the AIG -> netlist translation
/// consumes the optimization pipeline's output through recycled buffers just
/// like the opt passes produce it (see opt/opt_engine.hpp).  One engine per
/// thread suffices; results never depend on engine state.
class xsfq_mapper {
public:
  xsfq_mapper();
  ~xsfq_mapper();
  xsfq_mapper(const xsfq_mapper&) = delete;
  xsfq_mapper& operator=(const xsfq_mapper&) = delete;

  /// The calling thread's persistent engine (used by map_to_xsfq).
  static xsfq_mapper& thread_local_mapper();

  /// Maps into a fresh result.
  mapping_result map(const aig& network, const mapping_params& params = {});
  /// Maps into `out`, recycling its netlist/vector capacity from the
  /// previous call — the steady state allocates (almost) nothing.
  void map_into(const aig& network, const mapping_params& params,
                mapping_result& out);

private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

/// Maps an AIG to an xSFQ netlist.  The input network should already be
/// optimized (src/opt); mapping adds no logic restructuring of its own.
/// Throws std::invalid_argument on unconnected registers or when
/// pipeline_stages is combined with a sequential network.  Runs on the
/// calling thread's persistent xsfq_mapper.
mapping_result map_to_xsfq(const aig& network,
                           const mapping_params& params = {});

}  // namespace xsfq
