#pragma once
/// \file xsfq_netlist.hpp
/// \brief The mapped clock-free xSFQ netlist: LA/FA cells, splitters, DROCs.
///
/// This is the output representation of the paper's synthesis flow.  Elements
/// are LA (dual-rail AND, positive rail), FA (dual-rail OR, i.e. the
/// complement rail), 1-to-2 splitters, DROC storage cells (with or without
/// preloading hardware) and the interface pseudo-elements (input rails,
/// output ports, the trigger source).  Inversion is free: it is a rail
/// *selection* at the consumer, never a cell.
///
/// Cost accounting follows Table 2 exactly:
///   JJ = 4*(LA+FA) + 3*splitters + 13*DROC + 22*DROC_preloaded   (no PTL)
///   JJ = 12*(LA+FA) + 10*splitters + 27*DROC + 36*DROC_preloaded (PTL)

#include <cstdint>
#include <string>
#include <vector>

#include "cells/cell_library.hpp"

namespace xsfq {

/// Kinds of netlist elements.  `input_rail` and `const_rail` are sources;
/// `output_port` is a sink; the rest are physical cells.
enum class element_kind : std::uint8_t {
  input_rail,   ///< one rail of a dual-rail primary input
  const_rail,   ///< constant rail (never-pulsing or every-cycle-pulsing)
  la,           ///< Last Arrival cell (C-element)
  fa,           ///< First Arrival cell (inverse C-element)
  splitter,     ///< 1-to-2 pulse splitter
  droc,         ///< DROC storage cell (outputs both rails)
  droc_preload, ///< DROC with DC-to-SFQ preloading hardware
  output_port,  ///< primary-output / register-input interface point
};

const char* element_kind_name(element_kind kind);

/// Reference to one output port of an element: (element index, port).
/// Splitters have ports 0/1; DROCs have port 0 = Qp, port 1 = Qn; all other
/// elements have a single port 0.
struct port_ref {
  std::uint32_t element = 0;
  std::uint8_t port = 0;

  bool operator==(const port_ref&) const = default;
};

/// One element of the mapped netlist.
struct xsfq_element {
  element_kind kind = element_kind::input_rail;
  port_ref fanin0;            ///< valid for la/fa/splitter/droc/output
  port_ref fanin1;            ///< valid for la/fa
  std::int64_t aig_node = -1; ///< original AIG node (provenance), -1 if none
  bool rail = false;          ///< rail polarity this element produces/carries
                              ///< (false = positive)
  std::uint16_t pipeline_rank = 0;  ///< DROC rank index (1-based), 0 = none
  /// Boundary flip-flop DROC whose data input arrives through the feedback
  /// arc recorded in mapping_result::register_feedback; fanin0 is unused.
  bool feedback_input = false;
  std::string name;           ///< interface name for sources/sinks
};

/// The mapped netlist plus cost/timing queries.
class xsfq_netlist {
public:
  using element_index = std::uint32_t;

  element_index add_element(xsfq_element element);

  /// Drops every element while keeping the buffer's capacity — the mapper
  /// engine recycles one netlist across map_into() calls.
  void clear() { elements_.clear(); }

  /// Pre-sizes the element buffer (the mapper knows the exact final element
  /// count before phase B emits, so the serving hot path builds the netlist
  /// with a single allocation instead of growth doublings).
  void reserve(std::size_t n) { elements_.reserve(n); }

  [[nodiscard]] const std::vector<xsfq_element>& elements() const {
    return elements_;
  }
  [[nodiscard]] const xsfq_element& element(element_index i) const {
    return elements_[i];
  }
  [[nodiscard]] std::size_t size() const { return elements_.size(); }

  // ----- component counts (the paper's table columns) -----------------------

  [[nodiscard]] std::size_t count(element_kind kind) const;
  /// LA + FA cells (the paper's "#LA/FA" column).
  [[nodiscard]] std::size_t num_logic_cells() const {
    return count(element_kind::la) + count(element_kind::fa);
  }
  [[nodiscard]] std::size_t num_splitters() const {
    return count(element_kind::splitter);
  }
  /// DROCs without preloading hardware.
  [[nodiscard]] std::size_t num_drocs_plain() const {
    return count(element_kind::droc);
  }
  /// DROCs with preloading hardware.
  [[nodiscard]] std::size_t num_drocs_preload() const {
    return count(element_kind::droc_preload);
  }

  /// Total JJ count per the Table 2 cost model.
  [[nodiscard]] std::size_t jj_count(bool with_ptl = false) const;

  // ----- timing --------------------------------------------------------------

  /// Longest source-to-sink path length counted in LA/FA cells only
  /// ("logical depth without splitters", Table 5).
  [[nodiscard]] unsigned logical_depth() const;
  /// Longest path counting LA/FA cells and splitters ("with splitters").
  [[nodiscard]] unsigned logical_depth_with_splitters() const;
  /// Critical path delay in ps (Table 2 delays; DROC clock-to-Q included).
  /// Paths are measured between synchronization points: sources and DROC
  /// outputs start paths; DROC inputs and output ports end them.
  [[nodiscard]] double critical_path_ps(bool with_ptl = false) const;
  /// Circuit clock frequency in GHz (1 / critical path).
  [[nodiscard]] double circuit_frequency_ghz(bool with_ptl = false) const;
  /// Architectural frequency: half the circuit frequency, because every
  /// logical cycle spends an excite and a relax phase (Sec. 4.2.2).
  [[nodiscard]] double architectural_frequency_ghz(bool with_ptl = false) const {
    return circuit_frequency_ghz(with_ptl) / 2.0;
  }

  /// Every per-element statistic the mapper publishes, computed in ONE pass
  /// over the elements (the individual count()/jj_count()/depth queries each
  /// rescan; the serving hot path calls tally() once instead).  Each field
  /// equals its standalone query exactly — same per-element arithmetic in
  /// the same element order.
  struct stats_tally {
    std::size_t la = 0;
    std::size_t fa = 0;
    std::size_t splitters = 0;
    std::size_t drocs_plain = 0;
    std::size_t drocs_preload = 0;
    std::size_t jj = 0;       ///< == jj_count(false)
    std::size_t jj_ptl = 0;   ///< == jj_count(true)
    unsigned depth = 0;       ///< == logical_depth()
    unsigned depth_with_splitters = 0;
    double critical_path_ps = 0.0;      ///< == critical_path_ps(false)
    double critical_path_ps_ptl = 0.0;  ///< == critical_path_ps(true)
  };
  [[nodiscard]] stats_tally tally() const;

  /// Basic structural validation (fanin indices in range, kinds consistent);
  /// throws std::logic_error on violation.
  void check() const;

  /// Short human-readable summary line.
  [[nodiscard]] std::string summary() const;

private:
  std::vector<xsfq_element> elements_;
};

}  // namespace xsfq
