#pragma once
/// \file xsfq_writer.hpp
/// \brief Structural-Verilog and DOT export of mapped xSFQ netlists.
///
/// The synthesis flow's hand-off artifact: every LA/FA/splitter/DROC element
/// becomes a cell instance referencing the Table 2 library (LA, FA, SPLIT,
/// DROC, DROC_P), so the output can enter a superconducting place-and-route
/// flow or be inspected graphically.

#include <iosfwd>
#include <string>

#include "core/mapper.hpp"

namespace xsfq {

/// Writes the mapped netlist as structural Verilog.  Register feedback arcs
/// close the loops; the trigger and clock are exposed as module ports.
void write_xsfq_verilog(const mapping_result& mapped,
                        const std::string& module_name, std::ostream& os);
std::string write_xsfq_verilog_string(const mapping_result& mapped,
                                      const std::string& module_name);

/// Writes the mapped netlist as a Graphviz digraph (cells as boxes, rails
/// as edges; DROC ranks annotated).
void write_xsfq_dot(const mapping_result& mapped, std::ostream& os,
                    const std::string& graph_name = "xsfq");
std::string write_xsfq_dot_string(const mapping_result& mapped,
                                  const std::string& graph_name = "xsfq");

}  // namespace xsfq
