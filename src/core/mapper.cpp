#include "core/mapper.hpp"

#include <algorithm>
#include <array>
#include <sstream>
#include <stdexcept>

namespace xsfq {
namespace {

/// Phase-A element: like xsfq_element but fanins may reference a producer
/// port that ends up with several consumers; phase B inserts splitter trees.
struct proto_element {
  xsfq_element data;
  bool feedback_source = false;  ///< boundary DROC; data input via feedback
};

struct chain_info {
  std::vector<std::uint32_t> drocs;  ///< element index per rank step
  unsigned source_stage = 0;
  bool base_rail = false;  ///< rail carried on DROC port 0
};

}  // namespace

/// The two mapping phases with every scratch buffer persistent: run() binds
/// a network, resets (not reallocates) the scratch, and emits into the
/// caller's recycled mapping_result.  Buffer reuse never changes output
/// bytes — element creation order is a pure function of the input.
struct xsfq_mapper::impl {
  const aig* net_ = nullptr;
  mapping_params params_;

  bool sequential_ = false;
  unsigned num_ranks_ = 0;  ///< DROC ranks crossed by a full input-output path
  unsigned co_stage_ = 0;
  std::vector<std::uint32_t> levels_;
  std::vector<std::uint32_t> stage_;
  std::vector<bool> reach_;           ///< register-fed region scratch
  std::vector<bool> retimed_region_;  ///< retimed-rank source region

  demand_scratch dscratch_;
  rail_demands demands_;
  std::vector<bool> co_negate_;

  std::vector<proto_element> elems_;
  /// base_[n][rail]: producing element, or -1 when not (yet) created.
  std::vector<std::array<std::int64_t, 2>> base_;
  /// DROC rank chains, dense per node (same scratch style as the cut
  /// engine's mffc_calculator: index by aig::node_index, no hashing).  The
  /// per-chain droc vectors keep their capacity across runs; `started_`
  /// remembers which chains to clear.
  std::vector<chain_info> chains_;
  std::vector<bool> chain_started_;  ///< chains_[n] holds a live chain
  std::vector<aig::node_index> started_;
  /// (boundary DROC element, AIG register index) feedback bookkeeping.
  std::vector<std::pair<std::uint32_t, port_ref>> feedback_protos_;

  // Phase-B (splitter insertion) scratch.
  std::vector<std::array<std::uint32_t, 2>> consumers_;
  std::vector<std::uint32_t> new_index_;
  /// Available output references per phase-A port, in consumption order,
  /// flattened into one pool: port (i, p) owns the contiguous slots
  /// [offset_[i][p], offset_[i][p] + consumers_[i][p]) — exactly one
  /// delivered reference per consumer.  fill_/take_ are the per-port write
  /// and read cursors into that span.
  std::vector<port_ref> avail_pool_;
  std::vector<std::array<std::uint32_t, 2>> offset_;
  std::vector<std::array<std::uint32_t, 2>> fill_;
  std::vector<std::array<std::uint32_t, 2>> take_;
  /// Input rails with at least one consumer, counted by
  /// rebuild_with_splitters during its consumer tally — Eq. (1)'s N_inp
  /// without a dedicated netlist pass.
  std::size_t used_input_rails_ = 0;

  void run(const aig& network, const mapping_params& params,
           mapping_result& out);

  // ----- stage model ---------------------------------------------------------

  void prepare_stages();
  [[nodiscard]] unsigned gate_stage(aig::node_index n) const {
    return stage_[n];
  }
  /// True when edges leaving this source node cross pipeline/retiming ranks.
  [[nodiscard]] bool is_crossing_source(aig::node_index n) const {
    if (params_.pipeline_stages > 0) return true;  // all sources staged
    if (!sequential_ || params_.reg_style != register_style::pair_retimed) {
      return false;
    }
    return retimed_region_[n];
  }

  // ----- element construction ------------------------------------------------

  std::uint32_t add(xsfq_element e, bool feedback_source = false) {
    elems_.push_back(proto_element{std::move(e), feedback_source});
    return static_cast<std::uint32_t>(elems_.size() - 1);
  }

  port_ref base_rail_ref(aig::node_index n, bool rail);
  port_ref resolve(aig::node_index n, bool rail, unsigned consumer_stage);
  [[nodiscard]] bool rank_preloaded(unsigned rank) const {
    return rank % 2 == 0;
  }

  void build_sources();
  void build_gates();
  void build_outputs();
  void rebuild_with_splitters(
      xsfq_netlist& out,
      std::vector<std::pair<xsfq_netlist::element_index, port_ref>>& feedback);
};

void xsfq_mapper::impl::prepare_stages() {
  const aig& net = *net_;
  sequential_ = net.num_registers() > 0;
  if (sequential_ && params_.pipeline_stages > 0) {
    throw std::invalid_argument(
        "map_to_xsfq: combinational pipelining requires a register-free "
        "network (sequential designs pipeline through retimed DROC pairs)");
  }
  net.compute_levels_into(levels_);
  stage_.assign(net.size(), 0);
  num_ranks_ = 0;
  co_stage_ = 0;

  if (params_.pipeline_stages > 0) {
    const unsigned k = params_.pipeline_stages;
    num_ranks_ = 2 * k;
    const std::uint32_t depth = net.depth();
    // Interior thresholds at i*L/(2k); the final rank sits at the outputs.
    std::vector<std::uint32_t> thresholds;
    for (unsigned i = 1; i < num_ranks_; ++i) {
      thresholds.push_back(
          static_cast<std::uint32_t>((static_cast<std::uint64_t>(i) * depth +
                                      num_ranks_ - 1) /
                                     num_ranks_));
    }
    net.foreach_node([&](aig::node_index n) {
      unsigned s = 0;
      for (const auto t : thresholds) {
        if (levels_[n] > t) ++s;
      }
      stage_[n] = s;
    });
    co_stage_ = num_ranks_;
    return;
  }

  if (sequential_ && params_.reg_style == register_style::pair_retimed) {
    // Forward push of each flip-flop pair's second DROC into the
    // register-fed logic cone (Fig. 6iii): the retimed rank sits at the
    // mid-level cut of gates reachable from register outputs.  Signals
    // leaving that region (stage 0) toward the rest of the logic (stage 1)
    // or toward combinational outputs receive the rank-1 DROC; counts then
    // follow the paper's Table 6 (preloaded = one per flip-flop, plain =
    // cut crossings).  The model is validated at pulse level on
    // self-contained designs (the paper's Fig. 7 counter); designs with
    // primary inputs additionally need interface-side warm-up phasing,
    // which the interchange simulator does not model (see EXPERIMENTS.md).
    num_ranks_ = 2;
    co_stage_ = 1;
    reach_.assign(net.size(), false);
    net.foreach_node([&](aig::node_index n) {
      if (net.is_register_output(n)) {
        reach_[n] = true;
        return;
      }
      if (!net.is_gate(n)) return;
      reach_[n] = reach_[net.fanin0(n).index()] ||
                  reach_[net.fanin1(n).index()];
    });
    const std::uint32_t mid = (net.depth() + 1) / 2;
    net.foreach_gate([&](aig::node_index n) {
      // Stage 1 = outside the register-fed mid cone (consumer side).
      stage_[n] = (reach_[n] && levels_[n] <= mid) ? 0u : 1u;
    });
    // Register outputs and other sources are stage 0; only signals produced
    // inside the region cross into stage 1.
    retimed_region_.assign(net.size(), false);
    net.foreach_node([&](aig::node_index n) {
      retimed_region_[n] =
          net.is_register_output(n) ||
          (net.is_gate(n) && reach_[n] && levels_[n] <= mid);
    });
    return;
  }

  if (sequential_) num_ranks_ = 2;  // pair_boundary: both ranks adjacent
}

port_ref xsfq_mapper::impl::base_rail_ref(aig::node_index n, bool rail) {
  const aig& net = *net_;
  const std::size_t r = rail ? 1 : 0;
  // Register outputs first: both rails come from the flip-flop DROC, whose
  // Qp/Qn port assignment depends on the stored rail (it may be negative
  // when the output phase assignment negated the register input).
  if (net.is_register_output(n)) {
    // Register rails come from the flip-flop DROCs: Qp (port 0) carries the
    // stored rail, Qn (port 1) its complement.
    if (base_[n][0] < 0) {
      throw std::logic_error("mapper: register DROC not created");
    }
    const auto element = static_cast<std::uint32_t>(base_[n][0]);
    const bool stored_rail = elems_[element].data.rail;
    return {element, static_cast<std::uint8_t>(rail == stored_rail ? 0 : 1)};
  }
  if (base_[n][r] >= 0) {
    return {static_cast<std::uint32_t>(base_[n][r]), 0};
  }
  if (net.is_constant(n)) {
    xsfq_element e;
    e.kind = element_kind::const_rail;
    e.rail = rail;
    e.aig_node = n;
    e.name = rail ? "const1_rail" : "const0_rail";
    base_[n][r] = add(std::move(e));
    return {static_cast<std::uint32_t>(base_[n][r]), 0};
  }
  throw std::logic_error("mapper: rail has no producer (demand mismatch)");
}

port_ref xsfq_mapper::impl::resolve(aig::node_index n, bool rail,
                                    unsigned consumer_stage) {
  const aig& net = *net_;
  if (!is_crossing_source(n)) return base_rail_ref(n, rail);
  const unsigned src = net.is_gate(n) || params_.pipeline_stages > 0
                           ? gate_stage(n)
                           : 0;  // sequential ROs sit at stage 0
  if (consumer_stage <= src) return base_rail_ref(n, rail);

  chain_info& chain = chains_[n];
  if (!chain_started_[n]) {
    chain_started_[n] = true;
    started_.push_back(n);
    chain.source_stage = src;
    chain.base_rail = demands_.positive(n) || net.is_ci(n) ? false : true;
  }
  while (chain.drocs.size() < consumer_stage - src) {
    const unsigned rank = src + static_cast<unsigned>(chain.drocs.size()) + 1;
    xsfq_element e;
    e.kind = rank_preloaded(rank) ? element_kind::droc_preload
                                  : element_kind::droc;
    e.aig_node = n;
    e.rail = chain.base_rail;
    e.pipeline_rank = static_cast<std::uint16_t>(rank);
    e.fanin0 = chain.drocs.empty()
                   ? base_rail_ref(n, chain.base_rail)
                   : port_ref{chain.drocs.back(), 0};
    chain.drocs.push_back(add(std::move(e)));
  }
  const std::uint32_t element = chain.drocs[consumer_stage - src - 1];
  return {element, static_cast<std::uint8_t>(rail == chain.base_rail ? 0 : 1)};
}

void xsfq_mapper::impl::build_sources() {
  const aig& net = *net_;
  base_.assign(net.size(), {-1, -1});
  // Recycle the rank chains: only chains started last run hold elements.
  if (chains_.size() < net.size()) chains_.resize(net.size());
  for (const aig::node_index n : started_) chains_[n].drocs.clear();
  started_.clear();
  chain_started_.assign(net.size(), false);
  feedback_protos_.clear();

  // Primary-input rails (both polarities; unused ones cost nothing).
  for (std::size_t i = 0; i < net.num_pis(); ++i) {
    const aig::node_index n = net.pi(i).index();
    for (int rail = 0; rail < 2; ++rail) {
      xsfq_element e;
      e.kind = element_kind::input_rail;
      e.rail = rail != 0;
      e.aig_node = n;
      e.name = net.pi_name(i) + (rail ? "_n" : "_p");
      base_[n][static_cast<std::size_t>(rail)] = add(std::move(e));
    }
  }
  // Register flip-flops: boundary DROC (preloaded, fed by the feedback arc).
  for (std::size_t i = 0; i < net.num_registers(); ++i) {
    const aig::node_index n = net.register_at(i).output_node;
    // The rail stored by the flip-flop is whichever polarity the output
    // phase assignment chose for the register input; Qp then carries that
    // rail and Qn the other (Sec. 2.2 complementary outputs).
    const bool stored_rail = co_negate_[net.num_pos() + i];
    xsfq_element boundary;
    boundary.kind = element_kind::droc_preload;
    boundary.aig_node = n;
    boundary.rail = stored_rail;
    boundary.pipeline_rank = 2;
    boundary.name = net.register_name(i);
    const std::uint32_t a = add(std::move(boundary), /*feedback_source=*/true);
    feedback_protos_.emplace_back(a, port_ref{});  // driver filled later

    if (params_.reg_style == register_style::pair_boundary) {
      // Partner DROC directly after the boundary one (Fig. 6ii).
      xsfq_element partner;
      partner.kind = element_kind::droc;
      partner.aig_node = n;
      partner.rail = stored_rail;
      partner.pipeline_rank = 1;
      partner.name = net.register_name(i) + "_b";
      partner.fanin0 = {a, 0};
      base_[n][0] = add(std::move(partner));
    } else {
      base_[n][0] = a;  // rails read straight off the boundary DROC
    }
  }
}

void xsfq_mapper::impl::build_gates() {
  const aig& net = *net_;
  net.foreach_gate([&](aig::node_index n) {
    if (!demands_.any(n)) return;
    const signal f0 = net.fanin0(n);
    const signal f1 = net.fanin1(n);
    // Consumers sit at their own stage: pipeline cuts for pipelined
    // networks, the retiming lag (0 = outside S, 1 = inside S) otherwise.
    const unsigned consumer_stage =
        params_.pipeline_stages > 0 ||
                (sequential_ &&
                 params_.reg_style == register_style::pair_retimed)
            ? gate_stage(n)
            : 0u;
    if (demands_.positive(n)) {
      xsfq_element e;
      e.kind = element_kind::la;
      e.aig_node = n;
      e.rail = false;
      e.fanin0 = resolve(f0.index(), f0.is_complemented(), consumer_stage);
      e.fanin1 = resolve(f1.index(), f1.is_complemented(), consumer_stage);
      base_[n][0] = add(std::move(e));
    }
    if (demands_.negative(n)) {
      xsfq_element e;
      e.kind = element_kind::fa;
      e.aig_node = n;
      e.rail = true;
      e.fanin0 = resolve(f0.index(), !f0.is_complemented(), consumer_stage);
      e.fanin1 = resolve(f1.index(), !f1.is_complemented(), consumer_stage);
      base_[n][1] = add(std::move(e));
    }
  });
}

void xsfq_mapper::impl::build_outputs() {
  const aig& net = *net_;
  net.foreach_co([&](signal s, std::size_t i) {
    const bool rail = s.is_complemented() ^ co_negate_[i];
    const bool is_po = i < net.num_pos();
    // Pipelined outputs sit behind the final rank; retimed register inputs
    // sit behind the retimed rank, but POs never do (their cones are
    // excluded from the retiming region S).
    unsigned consumer_stage = 0;
    if (params_.pipeline_stages > 0) {
      consumer_stage = co_stage_;
    } else if (sequential_ &&
               params_.reg_style == register_style::pair_retimed && !is_po) {
      consumer_stage = co_stage_;
    }
    const port_ref driver = resolve(s.index(), rail, consumer_stage);
    if (is_po) {
      xsfq_element e;
      e.kind = element_kind::output_port;
      e.rail = co_negate_[i];
      e.fanin0 = driver;
      e.name = net.po_name(i);
      add(std::move(e));
    } else {
      // Register input: the boundary DROC's data arc.
      feedback_protos_[i - net.num_pos()].second = driver;
    }
  });
}

void xsfq_mapper::impl::rebuild_with_splitters(
    xsfq_netlist& out,
    std::vector<std::pair<xsfq_netlist::element_index, port_ref>>& feedback) {
  // Count consumers of every (element, port).
  consumers_.assign(elems_.size(), {0, 0});
  auto note = [&](port_ref r) { ++consumers_[r.element][r.port]; };
  for (const auto& p : elems_) {
    const auto kind = p.data.kind;
    const bool binary = kind == element_kind::la || kind == element_kind::fa;
    const bool unary = kind == element_kind::droc ||
                       kind == element_kind::droc_preload ||
                       kind == element_kind::output_port;
    if ((binary || unary) && !p.feedback_source) note(p.data.fanin0);
    if (binary) note(p.data.fanin1);
  }
  for (const auto& [element, driver] : feedback_protos_) {
    note(driver);
  }

  out.clear();
  // Exact final size: every proto element survives, plus one splitter per
  // delivered copy beyond the first on each port.  One allocation on the
  // fresh-result path instead of growth doublings.  The same walk lays out
  // the flattened delivery pool: port (i, p) owns consumers_[i][p]
  // contiguous slots.
  std::size_t total = elems_.size();
  std::uint32_t pool_size = 0;
  offset_.resize(elems_.size());
  used_input_rails_ = 0;
  for (std::size_t i = 0; i < elems_.size(); ++i) {
    const auto& c = consumers_[i];
    offset_[i] = {pool_size, pool_size + c[0]};
    pool_size += c[0] + c[1];
    if (c[0] > 1) total += c[0] - 1;
    if (c[1] > 1) total += c[1] - 1;
    if (c[0] > 0 && elems_[i].data.kind == element_kind::input_rail) {
      ++used_input_rails_;
    }
  }
  out.reserve(total);
  new_index_.assign(elems_.size(), 0);
  avail_pool_.resize(pool_size);
  fill_ = offset_;
  take_ = offset_;

  auto pop_ref = [&](port_ref old_ref) -> port_ref {
    auto& index = take_[old_ref.element][old_ref.port];
    if (index >= fill_[old_ref.element][old_ref.port]) {
      throw std::logic_error("mapper: consumer/producer bookkeeping mismatch");
    }
    return avail_pool_[index++];
  };

  // Builds a balanced splitter tree delivering `count` copies of `root`,
  // appending the delivered references to the port's pool span (left
  // subtree first — the historical consumption order).
  auto expand = [&](port_ref root, std::uint32_t count, std::uint32_t& fill,
                    auto&& self) -> void {
    if (count <= 1) {
      avail_pool_[fill++] = root;
      return;
    }
    xsfq_element split;
    split.kind = element_kind::splitter;
    split.fanin0 = root;
    const auto s = out.add_element(std::move(split));
    const std::uint32_t left = (count + 1) / 2;
    self(port_ref{s, 0}, left, fill, self);
    self(port_ref{s, 1}, count - left, fill, self);
  };

  for (std::size_t i = 0; i < elems_.size(); ++i) {
    proto_element& p = elems_[i];
    const port_ref f0 = p.data.fanin0;
    const port_ref f1 = p.data.fanin1;
    xsfq_element e = std::move(p.data);  // elems_ is dead after this loop
    const auto kind = e.kind;
    const bool binary = kind == element_kind::la || kind == element_kind::fa;
    const bool unary = kind == element_kind::droc ||
                       kind == element_kind::droc_preload ||
                       kind == element_kind::output_port;
    if ((binary || unary) && !p.feedback_source) e.fanin0 = pop_ref(f0);
    if (binary) e.fanin1 = pop_ref(f1);
    if (p.feedback_source) {
      e.fanin0 = port_ref{};  // resolved via register_feedback
      e.feedback_input = true;
    }
    const auto ni = out.add_element(std::move(e));
    new_index_[i] = ni;
    const std::uint8_t num_ports =
        (kind == element_kind::droc || kind == element_kind::droc_preload)
            ? 2
            : (kind == element_kind::output_port ? 0 : 1);
    for (std::uint8_t port = 0; port < num_ports; ++port) {
      const std::uint32_t k = consumers_[i][port];
      if (k == 0) continue;
      expand(port_ref{ni, port}, k, fill_[i][port], expand);
    }
  }

  feedback.clear();
  for (const auto& [element, driver] : feedback_protos_) {
    feedback.emplace_back(new_index_[element], pop_ref(driver));
  }
}

void xsfq_mapper::impl::run(const aig& network, const mapping_params& params,
                            mapping_result& out) {
  if (!network.is_well_formed()) {
    throw std::invalid_argument("map_to_xsfq: unconnected register inputs");
  }
  net_ = &network;
  params_ = params;
  elems_.clear();
  prepare_stages();

  if (params.forced_polarities) {
    co_negate_ = *params.forced_polarities;
  } else {
    co_polarities_for_mode_into(network, params.polarity, dscratch_,
                                co_negate_);
  }
  if (co_negate_.size() != network.num_cos()) {
    throw std::invalid_argument("map_to_xsfq: bad forced_polarities size");
  }
  if (params.polarity == polarity_mode::direct_dual_rail) {
    direct_dual_rail_demands_into(network, dscratch_, demands_);
  } else {
    compute_rail_demands_into(network, co_negate_, dscratch_, demands_);
  }

  build_sources();
  build_gates();
  build_outputs();

  out.co_negated = co_negate_;
  rebuild_with_splitters(out.netlist, out.register_feedback);
  // No netlist.check() here: the emit machinery constructs fanins from the
  // consumer pool it just laid out, so the invariants hold by construction;
  // an O(n) re-validation per map is real money on the sub-ms ECO path.
  // Tests (and anything that mutates a netlist by hand) call check()
  // directly.

  // ----- statistics ----------------------------------------------------------
  out.stats = {};
  mapping_stats& st = out.stats;
  const auto& nl = out.netlist;
  const xsfq_netlist::stats_tally tl = nl.tally();  // one pass, not eleven
  st.la_cells = tl.la;
  st.fa_cells = tl.fa;
  st.splitters = tl.splitters;
  st.drocs_plain = tl.drocs_plain;
  st.drocs_preload = tl.drocs_preload;
  const auto ds = demand_stats(network, demands_);
  st.nodes_used = ds.nodes_used;
  st.duplication = ds.duplication();
  st.jj = tl.jj;
  st.jj_ptl = tl.jj_ptl;
  st.depth = tl.depth;
  st.depth_with_splitters = tl.depth_with_splitters;
  st.circuit_ghz =
      tl.critical_path_ps <= 0.0 ? 0.0 : 1000.0 / tl.critical_path_ps;
  st.architectural_ghz = st.circuit_ghz / 2.0;

  // Eq. (1): splitters = N_gate + N_out - N_inp, with N_inp the number of
  // input rails actually consumed — counted by rebuild_with_splitters from
  // its consumer tally, so no extra netlist pass here.
  st.eq1_splitters = static_cast<long>(st.la_cells + st.fa_cells) +
                     static_cast<long>(network.num_cos()) -
                     static_cast<long>(used_input_rails_);
}

xsfq_mapper::xsfq_mapper() : impl_(new impl) {}
xsfq_mapper::~xsfq_mapper() = default;

xsfq_mapper& xsfq_mapper::thread_local_mapper() {
  static thread_local xsfq_mapper mapper;
  return mapper;
}

mapping_result xsfq_mapper::map(const aig& network,
                                const mapping_params& params) {
  mapping_result result;
  map_into(network, params, result);
  return result;
}

void xsfq_mapper::map_into(const aig& network, const mapping_params& params,
                           mapping_result& out) {
  impl_->run(network, params, out);
}

mapping_result map_to_xsfq(const aig& network, const mapping_params& params) {
  return xsfq_mapper::thread_local_mapper().map(network, params);
}

std::string summary_line(const mapping_stats& st) {
  std::ostringstream os;
  os << "xSFQ netlist: " << st.la_cells << " LA, " << st.fa_cells << " FA, "
     << st.splitters << " splitters, " << st.drocs_plain << "+"
     << st.drocs_preload << " DROC, JJ " << st.jj << " (" << st.jj_ptl
     << " with PTL), depth " << st.depth << "/" << st.depth_with_splitters;
  return os.str();
}

}  // namespace xsfq
