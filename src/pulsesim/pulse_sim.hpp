#pragma once
/// \file pulse_sim.hpp
/// \brief Event-driven pulse-level simulation of xSFQ netlists.
///
/// Plays the role of PyLSE [2] in the paper: every cell is simulated as a
/// pulse-transfer state machine (Table 1 semantics for LA/FA; DRO semantics
/// for DROC), pulses carry Table 2 propagation delays, and the alternating
/// dual-rail protocol of Figure 1 is enforced as a runtime invariant:
///
///  * a logical cycle is an excite phase followed by a relax phase; every
///    input rail pulses in exactly one of the two phases;
///  * at the end of each logical cycle every LA/FA cell must be back in its
///    Init state (Table 1) — the clock-free reinitialization property;
///  * every single-rail output must pulse in exactly one phase per cycle.
///
/// Sequential designs follow Sec. 3.2: each logical flip-flop is a DROC pair
/// (D1 holds the complement-phase value and carries preload hardware when the
/// reset value is 0; D2 holds the value).  For retimed designs the one-shot
/// trigger clocks the boundary DROCs before normal operation (Fig. 6iii);
/// the first excite wave then carries f1 applied to the preload pattern,
/// exactly as the paper's Figure 7 counter illustrates.

#include <cstdint>
#include <string>
#include <vector>

#include "core/mapper.hpp"

namespace xsfq {

/// One recorded pulse (for waveform rendering, e.g. the Figure 7 trace).
struct pulse_record {
  std::uint32_t element = 0;
  std::uint8_t port = 0;
  unsigned phase = 0;   ///< phase index (0 = first phase after trigger)
  double time_ps = 0.0; ///< time within the phase
};

/// Result of simulating one logical cycle (excite + relax).
struct cycle_result {
  std::vector<bool> outputs;        ///< decoded PO values (excite data)
  bool alternating_ok = true;       ///< all LA/FA back to Init at cycle end
  bool outputs_consistent = true;   ///< relax pulses complement excite pulses
};

/// Pulse-level simulator over a mapped netlist.
class pulse_simulator {
public:
  /// `feedback` comes from mapping_result::register_feedback and closes the
  /// register loops.
  explicit pulse_simulator(
      const xsfq_netlist& netlist,
      std::vector<std::pair<xsfq_netlist::element_index, port_ref>> feedback =
          {});

  /// Number of primary inputs / outputs discovered in the netlist.
  [[nodiscard]] std::size_t num_inputs() const { return pi_elements_.size(); }
  [[nodiscard]] std::size_t num_outputs() const { return outputs_.size(); }

  /// Resets all cell states; DROCs resume their preload pattern and
  /// registers their init values (see set_register_init).
  void reset();

  /// Declares the reset value of the register whose boundary DROC is
  /// feedback element `reg` (default 0).  Value 1 moves the preload to D2,
  /// mirroring the paper's selective preload-hardware placement.
  void set_register_init(std::size_t reg, bool value);

  /// Fires the one-shot trigger: clocks every boundary (feedback) DROC once
  /// and lets the wave settle (Fig. 6iii).  Required before run_cycle on
  /// retimed sequential netlists; a no-op for netlists without registers.
  void fire_trigger();

  /// Runs one logical cycle: excite phase with `pi_values`, relax phase with
  /// their complements, DROCs clocked at each phase boundary.
  cycle_result run_cycle(const std::vector<bool>& pi_values);

  /// Decodes the current register state from the boundary DROCs' storage
  /// bits (valid between logical cycles; used to sync golden models after
  /// the retimed warm-up cycle, whose state is f1 applied to the trigger
  /// wave rather than the declared reset values — see Sec. 3.2 / Fig. 7).
  [[nodiscard]] std::vector<bool> read_register_state() const;

  /// All pulses recorded so far (cleared by reset).
  [[nodiscard]] const std::vector<pulse_record>& trace() const {
    return trace_;
  }
  /// Enables pulse recording (off by default; traces can be large).
  void enable_trace(bool on) { trace_enabled_ = on; }
  [[nodiscard]] unsigned current_phase() const { return phase_; }

  /// Convenience: simulates `cycles` random logical cycles and compares the
  /// decoded outputs against a golden AIG simulation; returns true when all
  /// cycles match and all invariants hold.  For sequential designs the
  /// golden model is stepped with the same inputs after aligning the initial
  /// state (pair_boundary style preserves reset values exactly).
  static bool equivalent_to_aig(const aig& golden, const mapping_result& mapped,
                                unsigned cycles, std::uint64_t seed = 1);

private:
  struct element_state {
    bool la_a = false;       ///< LA: input a arrived
    bool la_b = false;
    std::uint8_t fa_count = 0;  ///< FA: pulses since init
    bool droc_stored = false;
    bool out_pulsed = false;    ///< output port: pulse seen this phase
  };

  struct event {
    double time = 0.0;
    std::uint32_t element = 0;
    std::uint8_t input = 0;  ///< which input pin of the element
    bool operator>(const event& o) const { return time > o.time; }
  };

  void deliver(std::uint32_t element, std::uint8_t input, double time);
  void emit(std::uint32_t element, std::uint8_t port, double time);
  void settle();
  void clock_drocs(bool boundary_only);
  void begin_phase();

public:
  /// True when the netlist is a pipelined combinational design whose
  /// odd-rank DROCs skip the first clock phase (the staggered-start
  /// generalization of the paper's trigger: it keeps the priming waves
  /// pairwise complementary at every pipeline segment).
  [[nodiscard]] bool staggered_start() const { return stagger_odd_ranks_; }
  /// True when the netlist contains retimed DROC ranks, which pair phases
  /// across run_cycle boundaries; the per-cycle alternating check then only
  /// applies to the aligned subset and equivalent_to_aig relaxes it.
  [[nodiscard]] bool has_retimed_ranks() const { return retimed_ranks_; }

private:

  const xsfq_netlist& netlist_;
  std::vector<std::pair<xsfq_netlist::element_index, port_ref>> feedback_;
  /// consumer_[element][port] = (consumer element, consumer input pin).
  std::vector<std::array<std::pair<std::int64_t, std::uint8_t>, 2>> consumers_;

  std::vector<element_state> state_;
  std::vector<std::uint32_t> pi_elements_;   ///< pos-rail element per PI
  std::vector<std::uint32_t> pi_neg_elements_;
  std::vector<std::uint32_t> const_elements_;
  std::vector<std::uint32_t> outputs_;       ///< output_port elements
  std::vector<std::uint32_t> boundary_drocs_;
  std::vector<bool> register_init_;

  std::vector<event> queue_;  ///< min-heap on time
  unsigned phase_ = 0;
  bool stagger_odd_ranks_ = false;
  bool retimed_ranks_ = false;
  bool trace_enabled_ = false;
  std::vector<pulse_record> trace_;
  std::vector<bool> excite_pulse_;  ///< per-output pulse flag in excite phase
};

}  // namespace xsfq
