#include "pulsesim/pulse_sim.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "aig/simulate.hpp"
#include "util/rng.hpp"

namespace xsfq {
namespace {

const cell_library& lib() { return cell_library::sfq5ee(); }

}  // namespace

pulse_simulator::pulse_simulator(
    const xsfq_netlist& netlist,
    std::vector<std::pair<xsfq_netlist::element_index, port_ref>> feedback)
    : netlist_(netlist), feedback_(std::move(feedback)) {
  const auto& elems = netlist.elements();
  consumers_.assign(elems.size(), {std::pair<std::int64_t, std::uint8_t>{-1, 0},
                                   std::pair<std::int64_t, std::uint8_t>{-1, 0}});

  auto connect = [&](port_ref from, std::uint32_t to, std::uint8_t pin) {
    auto& slot = consumers_[from.element][from.port];
    if (slot.first >= 0) {
      throw std::invalid_argument(
          "pulse_simulator: port with multiple consumers (splitters missing)");
    }
    slot = {static_cast<std::int64_t>(to), pin};
  };

  for (std::uint32_t i = 0; i < elems.size(); ++i) {
    const auto& e = elems[i];
    switch (e.kind) {
      case element_kind::la:
      case element_kind::fa:
        connect(e.fanin0, i, 0);
        connect(e.fanin1, i, 1);
        break;
      case element_kind::splitter:
      case element_kind::output_port:
        connect(e.fanin0, i, 0);
        break;
      case element_kind::droc:
      case element_kind::droc_preload:
        if (!e.feedback_input) connect(e.fanin0, i, 0);
        break;
      case element_kind::input_rail: {
        if (e.rail) {
          pi_neg_elements_.push_back(i);
        } else {
          pi_elements_.push_back(i);
        }
        break;
      }
      case element_kind::const_rail:
        const_elements_.push_back(i);
        break;
    }
    if (e.kind == element_kind::output_port) outputs_.push_back(i);
    if (e.feedback_input) boundary_drocs_.push_back(i);
  }
  if (pi_elements_.size() != pi_neg_elements_.size()) {
    throw std::invalid_argument("pulse_simulator: unpaired input rails");
  }
  for (const auto& [droc, driver] : feedback_) {
    connect(driver, droc, 0);
  }
  register_init_.assign(boundary_drocs_.size(), false);

  // Classify the netlist: combinational pipelines stagger their odd ranks;
  // sequential designs with rank-1 DROCs not directly paired with their
  // boundary partner are retimed (Fig. 6iii).
  unsigned max_rank = 0;
  bool any_unpaired_rank1 = false;
  for (std::uint32_t i = 0; i < elems.size(); ++i) {
    const auto& e = elems[i];
    const bool is_droc = e.kind == element_kind::droc ||
                         e.kind == element_kind::droc_preload;
    if (!is_droc) continue;
    max_rank = std::max<unsigned>(max_rank, e.pipeline_rank);
    if (e.pipeline_rank == 1) {
      const auto& src = elems[e.fanin0.element];
      const bool paired = src.feedback_input && src.aig_node == e.aig_node;
      if (!paired) any_unpaired_rank1 = true;
    }
  }
  stagger_odd_ranks_ = boundary_drocs_.empty() && max_rank > 0;
  retimed_ranks_ = !boundary_drocs_.empty() && any_unpaired_rank1;
  reset();
}

void pulse_simulator::reset() {
  state_.assign(netlist_.size(), {});
  // Pipeline-rank preload pattern: preloaded DROCs start set.
  for (std::uint32_t i = 0; i < netlist_.size(); ++i) {
    if (netlist_.element(i).kind == element_kind::droc_preload) {
      state_[i].droc_stored = true;
    }
  }
  // Register pairs: D1 (boundary) holds the complement-phase bit, D2 the
  // value; both are expressed in stored-rail terms (rail flag of the DROC).
  for (std::size_t r = 0; r < boundary_drocs_.size(); ++r) {
    const std::uint32_t d1 = boundary_drocs_[r];
    const bool rail = netlist_.element(d1).rail;
    const bool v0 = register_init_[r];
    state_[d1].droc_stored = !v0 ^ rail;
    // Find the adjacent partner (pair_boundary style): the DROC consuming
    // port 0 of d1.
    const auto& [consumer, pin] = consumers_[d1][0];
    if (consumer >= 0) {
      const auto& ce = netlist_.element(static_cast<std::uint32_t>(consumer));
      if ((ce.kind == element_kind::droc ||
           ce.kind == element_kind::droc_preload) &&
          ce.aig_node == netlist_.element(d1).aig_node) {
        state_[static_cast<std::size_t>(consumer)].droc_stored = v0 ^ rail;
      }
    }
    (void)pin;
  }
  phase_ = 0;
  trace_.clear();
  queue_.clear();
  excite_pulse_.assign(outputs_.size(), false);
}

void pulse_simulator::set_register_init(std::size_t reg, bool value) {
  register_init_.at(reg) = value;
}

std::vector<bool> pulse_simulator::read_register_state() const {
  std::vector<bool> state(boundary_drocs_.size());
  for (std::size_t r = 0; r < state.size(); ++r) {
    const std::uint32_t d1 = boundary_drocs_[r];
    state[r] = state_[d1].droc_stored != netlist_.element(d1).rail;
  }
  return state;
}

void pulse_simulator::emit(std::uint32_t element, std::uint8_t port,
                           double time) {
  if (trace_enabled_) {
    trace_.push_back({element, port, phase_, time});
  }
  const auto& [consumer, pin] = consumers_[element][port];
  if (consumer < 0) return;  // unused rail
  queue_.push_back({time, static_cast<std::uint32_t>(consumer), pin});
  std::push_heap(queue_.begin(), queue_.end(), std::greater<>{});
}

void pulse_simulator::deliver(std::uint32_t element, std::uint8_t input,
                              double time) {
  const auto& e = netlist_.element(element);
  element_state& s = state_[element];
  switch (e.kind) {
    case element_kind::la: {
      // C element: fires on the last arrival, then reinitializes (Table 1).
      if (input == 0) s.la_a = true; else s.la_b = true;
      if (s.la_a && s.la_b) {
        s.la_a = s.la_b = false;
        emit(element, 0, time + lib().delay_ps(cell_type::la, false));
      }
      break;
    }
    case element_kind::fa: {
      // Inverse C element: fires on the first arrival; the second input
      // pulse restores the initial state without an output (Table 1).
      ++s.fa_count;
      if (s.fa_count == 1) {
        emit(element, 0, time + lib().delay_ps(cell_type::fa, false));
      } else {
        s.fa_count = 0;
      }
      break;
    }
    case element_kind::splitter: {
      const double t = time + lib().delay_ps(cell_type::splitter, false);
      emit(element, 0, t);
      emit(element, 1, t);
      break;
    }
    case element_kind::droc:
    case element_kind::droc_preload:
      s.droc_stored = true;  // data pulse sets the storage loop
      break;
    case element_kind::output_port:
      if (s.out_pulsed) {
        throw std::logic_error(
            "pulse_simulator: output pulsed twice in one phase");
      }
      s.out_pulsed = true;
      break;
    default:
      throw std::logic_error("pulse_simulator: pulse delivered to a source");
  }
}

void pulse_simulator::settle() {
  while (!queue_.empty()) {
    std::pop_heap(queue_.begin(), queue_.end(), std::greater<>{});
    const event ev = queue_.back();
    queue_.pop_back();
    deliver(ev.element, ev.input, ev.time);
  }
}

void pulse_simulator::clock_drocs(bool boundary_only) {
  const auto& droc_spec = lib().spec(cell_type::droc);
  for (std::uint32_t i = 0; i < netlist_.size(); ++i) {
    const auto& e = netlist_.element(i);
    const bool is_droc = e.kind == element_kind::droc ||
                         e.kind == element_kind::droc_preload;
    if (!is_droc) continue;
    if (boundary_only && !e.feedback_input) continue;
    // Staggered start: odd ranks of a combinational pipeline do not receive
    // the very first clock, so every pipeline segment sees an even number of
    // priming waves before real data arrives.
    if (stagger_odd_ranks_ && phase_ == 0 && e.pipeline_rank % 2 == 1) {
      continue;
    }
    element_state& s = state_[i];
    if (s.droc_stored) {
      emit(i, 0, droc_spec.delay_ps);      // Qp
    } else {
      emit(i, 1, droc_spec.delay_qn_ps);   // Qn
    }
    s.droc_stored = false;
  }
}

void pulse_simulator::begin_phase() {
  for (const auto out : outputs_) state_[out].out_pulsed = false;
}

void pulse_simulator::fire_trigger() {
  if (boundary_drocs_.empty()) return;
  begin_phase();
  clock_drocs(/*boundary_only=*/true);
  settle();
  ++phase_;
}

cycle_result pulse_simulator::run_cycle(const std::vector<bool>& pi_values) {
  if (pi_values.size() != pi_elements_.size()) {
    throw std::invalid_argument("pulse_simulator: PI count mismatch");
  }
  cycle_result result;
  result.outputs.resize(outputs_.size());

  for (int half = 0; half < 2; ++half) {
    const bool excite = half == 0;
    begin_phase();
    clock_drocs(/*boundary_only=*/false);
    for (std::size_t i = 0; i < pi_values.size(); ++i) {
      // Excite carries the value, relax its complement (Figure 1): the
      // positive rail pulses when the phase-value is 1, else the negative.
      const bool phase_value = pi_values[i] == excite;
      emit(phase_value ? pi_elements_[i] : pi_neg_elements_[i], 0, 0.0);
    }
    for (const auto c : const_elements_) {
      // const_rail with rail=false is the positive rail of logical 0: it
      // pulses in the relax phase; the negative rail pulses in excite.
      const bool pulses = netlist_.element(c).rail == excite;
      if (pulses) emit(c, 0, 0.0);
    }
    settle();

    for (std::size_t o = 0; o < outputs_.size(); ++o) {
      const bool pulsed = state_[outputs_[o]].out_pulsed;
      if (excite) {
        excite_pulse_[o] = pulsed;
        // Decode: pulse on rail r in excite means value r==pos ? 1 : 0;
        // the element's rail flag records the chosen output polarity.
        result.outputs[o] = pulsed != netlist_.element(outputs_[o]).rail;
      } else if (pulsed == excite_pulse_[o]) {
        result.outputs_consistent = false;
      }
    }
    ++phase_;
  }

  // Alternating property: every LA/FA cell back in Init (Table 1).
  for (std::uint32_t i = 0; i < netlist_.size(); ++i) {
    const auto& e = netlist_.element(i);
    if (e.kind == element_kind::la &&
        (state_[i].la_a || state_[i].la_b)) {
      result.alternating_ok = false;
    }
    if (e.kind == element_kind::fa && state_[i].fa_count != 0) {
      result.alternating_ok = false;
    }
  }
  return result;
}

bool pulse_simulator::equivalent_to_aig(const aig& golden,
                                        const mapping_result& mapped,
                                        unsigned cycles, std::uint64_t seed) {
  pulse_simulator sim(mapped.netlist, mapped.register_feedback);
  for (std::size_t r = 0; r < golden.num_registers(); ++r) {
    sim.set_register_init(r, golden.register_at(r).init);
  }
  sim.reset();

  // Pipeline latency in logical cycles: half the number of DROC ranks on a
  // PI-to-PO path (each rank delays by one phase).
  unsigned max_rank = 0;
  for (const auto& e : mapped.netlist.elements()) {
    max_rank = std::max<unsigned>(max_rank, e.pipeline_rank);
  }
  const bool is_sequential = golden.num_registers() > 0;
  const unsigned latency = is_sequential ? 0 : max_rank / 2;
  // Retimed/pipelined ranks pair phases across run_cycle boundaries (cells
  // behind odd ranks complete their logical cycles at odd phase boundaries),
  // so the per-cycle alternating snapshot only holds for unpipelined and
  // boundary-paired designs; the outputs_consistent invariant always holds.
  const bool retimed = sim.has_retimed_ranks();
  const bool strict_alternating =
      max_rank == 0 || (is_sequential && !retimed);
  const bool retimed_seq = retimed && is_sequential;
  // Retimed sequential designs need the one-shot trigger; their first cycle
  // carries the trigger wave and the visible behaviour lags golden by one
  // cycle (Fig. 7: the counter starts after the trigger cycle).
  const unsigned golden_lag = retimed_seq ? 1 : 0;
  if (retimed_seq) sim.fire_trigger();

  rng gen(seed);
  sequential_simulator golden_sim(golden);

  std::vector<std::vector<bool>> input_history;
  for (unsigned c = 0; c < cycles; ++c) {
    std::vector<bool> pis(golden.num_pis());
    for (std::size_t i = 0; i < pis.size(); ++i) pis[i] = gen.flip();
    input_history.push_back(pis);

    const auto r = sim.run_cycle(pis);
    if (c >= latency && !r.outputs_consistent) return false;
    if (c >= latency && strict_alternating && !r.alternating_ok) return false;

    if (is_sequential) {
      if (golden_lag == 0) {
        const auto expected = golden_sim.step(pis);
        if (r.outputs != expected) return false;
      } else if (c >= golden_lag) {
        const auto expected = golden_sim.step(input_history[c - golden_lag]);
        if (r.outputs != expected) return false;
      }
    } else if (c >= latency) {
      const auto expected = golden_sim.step(input_history[c - latency]);
      if (r.outputs != expected) return false;
    }
  }
  return true;
}

}  // namespace xsfq
