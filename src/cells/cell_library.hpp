#pragma once
/// \file cell_library.hpp
/// \brief The xSFQ standard cell library (paper Table 2).
///
/// Costs and delays come from the paper's HSPICE characterization against the
/// MIT-LL SFQ5ee 100 uA/um^2 process [16]: each cell is listed with and
/// without passive-transmission-line (PTL) interfaces.  PTL drivers/receivers
/// add JJs and delay; comparisons against PBMap/qSeq use the no-PTL numbers
/// (Sec. 4.1).  The analog module (src/analog) demonstrates the
/// characterization *methodology* (delay from junction phase slips) on its
/// own RCSJ simulator; the Liberty-facing numbers are the paper's.

#include <cstdint>
#include <string>
#include <vector>

namespace xsfq {

/// Cell types of the xSFQ library plus the interfacing cells.
enum class cell_type : std::uint8_t {
  jtl,            ///< Josephson transmission line segment
  la,             ///< Last Arrival (C-element) — dual-rail AND
  fa,             ///< First Arrival (inverse C-element) — dual-rail OR
  droc,           ///< DRO with complementary outputs (no preload hardware)
  droc_preload,   ///< DROC with DC-to-SFQ preloading hardware (+9 JJs)
  splitter,       ///< 1-to-2 pulse splitter
  merger,         ///< 2-to-1 confluence buffer
  dc_sfq,         ///< DC-to-SFQ converter (preload pulse source)
};

/// Printable cell name ("LA", "FA", ...).
const char* cell_type_name(cell_type type);

/// Timing/cost data of one cell, with and without PTL interfaces.
struct cell_spec {
  cell_type type = cell_type::jtl;
  double delay_ps = 0.0;        ///< propagation (or clock-to-Q) delay, no PTL
  unsigned jj_count = 0;        ///< JJs, no PTL
  double delay_ps_ptl = 0.0;    ///< with PTL interfaces
  unsigned jj_count_ptl = 0;    ///< with PTL interfaces
  /// DROC cells publish two clock-to-Q arcs (Qp and Qn, Table 2).
  double delay_qn_ps = 0.0;
  double delay_qn_ps_ptl = 0.0;
};

/// The standard library; immutable after construction.
class cell_library {
public:
  /// Library loaded with the paper's Table 2 characterization.
  static const cell_library& sfq5ee();

  [[nodiscard]] const cell_spec& spec(cell_type type) const;
  [[nodiscard]] const std::vector<cell_spec>& specs() const { return specs_; }

  /// JJ count of a cell under the chosen interconnect style.
  [[nodiscard]] unsigned jj_count(cell_type type, bool with_ptl) const;
  /// Worst-case propagation delay of a cell (max over its timing arcs).
  [[nodiscard]] double delay_ps(cell_type type, bool with_ptl) const;

  /// Renders the library as a Liberty (.lib) file body; delays become the
  /// 1x1 lookup tables described in Sec. 2.3.
  [[nodiscard]] std::string to_liberty(const std::string& library_name) const;

private:
  std::vector<cell_spec> specs_;
};

}  // namespace xsfq
