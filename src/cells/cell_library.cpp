#include "cells/cell_library.hpp"

#include <sstream>
#include <stdexcept>

namespace xsfq {

const char* cell_type_name(cell_type type) {
  switch (type) {
    case cell_type::jtl: return "JTL";
    case cell_type::la: return "LA";
    case cell_type::fa: return "FA";
    case cell_type::droc: return "DROC";
    case cell_type::droc_preload: return "DROC_P";
    case cell_type::splitter: return "SPLIT";
    case cell_type::merger: return "MERGE";
    case cell_type::dc_sfq: return "DCSFQ";
  }
  return "?";
}

const cell_library& cell_library::sfq5ee() {
  static const cell_library library = [] {
    cell_library lib;
    // Table 2 of the paper: delay (ps) and JJ count, without / with PTLs.
    // DROC rows list clock-to-Q for Qp and Qn; JJ 13 without preloading
    // hardware, 22 with (DC-to-SFQ 4 JJs + merger 5 JJs = +9).
    lib.specs_ = {
        // type                delay  jj  delayP jjP   qn    qnP
        {cell_type::jtl,          4.6,  2, 17.0,   7,  0.0,  0.0},
        {cell_type::la,           7.2,  4, 19.9,  12,  0.0,  0.0},
        {cell_type::fa,           9.5,  4, 24.7,  12,  0.0,  0.0},
        {cell_type::droc,         6.7, 13, 18.0,  27,  9.5, 21.5},
        {cell_type::droc_preload, 6.7, 22, 18.0,  36,  9.5, 21.5},
        {cell_type::splitter,     5.1,  3, 19.7,  10,  0.0,  0.0},
        {cell_type::merger,       5.1,  5, 19.7,  13,  0.0,  0.0},
        {cell_type::dc_sfq,       6.0,  4, 18.0,   9,  0.0,  0.0},
    };
    return lib;
  }();
  return library;
}

const cell_spec& cell_library::spec(cell_type type) const {
  for (const auto& s : specs_) {
    if (s.type == type) return s;
  }
  throw std::invalid_argument("cell_library: unknown cell type");
}

unsigned cell_library::jj_count(cell_type type, bool with_ptl) const {
  const auto& s = spec(type);
  return with_ptl ? s.jj_count_ptl : s.jj_count;
}

double cell_library::delay_ps(cell_type type, bool with_ptl) const {
  const auto& s = spec(type);
  const double d = with_ptl ? s.delay_ps_ptl : s.delay_ps;
  const double qn = with_ptl ? s.delay_qn_ps_ptl : s.delay_qn_ps;
  return d > qn ? d : qn;
}

std::string cell_library::to_liberty(const std::string& library_name) const {
  std::ostringstream os;
  os << "library(" << library_name << ") {\n"
     << "  time_unit : \"1ps\";\n"
     << "  /* JJ counts carried as cell area; PTL variants suffixed _PTL.\n"
     << "     Single-value timing arcs: PTL routing reduces arcs to 1x1\n"
     << "     lookup tables (Sec. 2.3). */\n";
  auto emit = [&](const cell_spec& s, bool ptl) {
    const double delay = ptl ? s.delay_ps_ptl : s.delay_ps;
    const double qn = ptl ? s.delay_qn_ps_ptl : s.delay_qn_ps;
    const unsigned jj = ptl ? s.jj_count_ptl : s.jj_count;
    os << "  cell(" << cell_type_name(s.type) << (ptl ? "_PTL" : "") << ") {\n"
       << "    area : " << jj << ";\n";
    const bool is_storage =
        s.type == cell_type::droc || s.type == cell_type::droc_preload;
    if (is_storage) {
      os << "    ff(IQ, IQN) { clocked_on : \"CLK\"; next_state : \"D\"; }\n"
         << "    pin(CLK) { direction : input; clock : true; }\n"
         << "    pin(D)   { direction : input; }\n"
         << "    pin(QP) { direction : output; function : \"IQ\";\n"
         << "      timing() { related_pin : \"CLK\"; timing_type : "
            "rising_edge;\n"
         << "        cell_rise(scalar) { values(\"" << delay << "\"); }\n"
         << "        cell_fall(scalar) { values(\"" << delay << "\"); } } }\n"
         << "    pin(QN) { direction : output; function : \"IQN\";\n"
         << "      timing() { related_pin : \"CLK\"; timing_type : "
            "rising_edge;\n"
         << "        cell_rise(scalar) { values(\"" << qn << "\"); }\n"
         << "        cell_fall(scalar) { values(\"" << qn << "\"); } } }\n";
    } else {
      const char* function = s.type == cell_type::la   ? "(A & B)"
                             : s.type == cell_type::fa ? "(A | B)"
                                                       : "A";
      const unsigned inputs =
          (s.type == cell_type::la || s.type == cell_type::fa ||
           s.type == cell_type::merger)
              ? 2
              : (s.type == cell_type::dc_sfq ? 0 : 1);
      for (unsigned i = 0; i < inputs; ++i) {
        os << "    pin(" << static_cast<char>('A' + i)
           << ") { direction : input; }\n";
      }
      const unsigned outputs = s.type == cell_type::splitter ? 2 : 1;
      for (unsigned o = 0; o < outputs; ++o) {
        os << "    pin(" << (o == 0 ? "Y" : "Z")
           << ") { direction : output; function : \"" << function << "\";\n";
        for (unsigned i = 0; i < inputs; ++i) {
          os << "      timing() { related_pin : \"" << static_cast<char>('A' + i)
             << "\";\n"
             << "        cell_rise(scalar) { values(\"" << delay << "\"); }\n"
             << "        cell_fall(scalar) { values(\"" << delay
             << "\"); } }\n";
        }
        os << "    }\n";
      }
    }
    os << "  }\n";
  };
  for (const auto& s : specs_) {
    emit(s, false);
    emit(s, true);
  }
  os << "}\n";
  return os.str();
}

}  // namespace xsfq
