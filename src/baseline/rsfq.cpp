#include "baseline/rsfq.hpp"

#include <algorithm>
#include <vector>

namespace xsfq {
namespace {

/// Recognizes n = XOR(x, y) as the classic 3-node AIG cone
/// n = !(!(x & !y) & !(!x & y)) with single-fanout inner nodes.
struct xor_match {
  bool matched = false;
  signal x;
  signal y;
};

xor_match match_xor(const aig& net, aig::node_index n,
                    const std::vector<std::uint32_t>& fanout) {
  xor_match m;
  const signal f0 = net.fanin0(n);
  const signal f1 = net.fanin1(n);
  if (!f0.is_complemented() || !f1.is_complemented()) return m;
  if (!net.is_gate(f0.index()) || !net.is_gate(f1.index())) return m;
  if (fanout[f0.index()] != 1 || fanout[f1.index()] != 1) return m;
  const signal a0 = net.fanin0(f0.index());
  const signal b0 = net.fanin1(f0.index());
  const signal a1 = net.fanin0(f1.index());
  const signal b1 = net.fanin1(f1.index());
  // The two inner ANDs must reference the same grandchildren with opposite
  // polarities: (x & !y) and (!x & y).
  if (a0 == !a1 && b0 == !b1) {
    m.matched = true;
    m.x = a0;
    m.y = !b0;
    return m;
  }
  if (a0 == !b1 && b0 == !a1) {
    m.matched = true;
    m.x = a0;
    m.y = !b0;
    return m;
  }
  return m;
}

}  // namespace

rsfq_stats map_to_rsfq(const aig& network, const rsfq_params& params) {
  rsfq_stats st;
  const auto fanout = network.compute_fanout_counts();

  // ----- cell selection -------------------------------------------------------
  // role[n]: 0 = not a cell root (absorbed or unused), 1 = AND cell,
  // 2 = XOR cell (absorbs its two inner AND nodes).
  std::vector<std::uint8_t> role(network.size(), 0);
  std::vector<bool> absorbed(network.size(), false);
  network.foreach_gate([&](aig::node_index n) { role[n] = 1; });
  if (params.detect_xor) {
    // Scan in reverse topological order so outer XOR roots claim their inner
    // nodes before the inner nodes are considered as XOR roots themselves.
    for (aig::node_index n = static_cast<aig::node_index>(network.size());
         n-- > 0;) {
      if (!network.is_gate(n) || role[n] != 1 || absorbed[n]) continue;
      const auto m = match_xor(network, n, fanout);
      if (!m.matched) continue;
      role[n] = 2;
      absorbed[network.fanin0(n).index()] = true;
      absorbed[network.fanin1(n).index()] = true;
      role[network.fanin0(n).index()] = 0;
      role[network.fanin1(n).index()] = 0;
    }
  }

  // Effective cell fanins: for XOR cells the grandchildren signals.
  auto cell_fanins = [&](aig::node_index n) -> std::pair<signal, signal> {
    if (role[n] == 2) {
      const auto m = match_xor(network, n, fanout);
      return {m.x, m.y};
    }
    return {network.fanin0(n), network.fanin1(n)};
  };

  // ----- inverter counting ----------------------------------------------------
  // A complemented edge into a cell or CO needs a clocked NOT cell; one NOT
  // per distinct complemented source signal (shared through splitters).
  // XOR cells absorb input complements pairwise (XOR(!x, y) = !XOR(x, y) is
  // folded into the output polarity by retiming the downstream consumer in
  // real flows; we conservatively keep NOT cells for complemented XOR fanins
  // of COs only).
  std::vector<bool> need_not(network.size(), false);
  std::vector<std::uint32_t> extra_fanout(network.size(), 0);
  network.foreach_gate([&](aig::node_index n) {
    if (role[n] == 0) return;
    const auto [x, y] = cell_fanins(n);
    for (const signal f : {x, y}) {
      if (f.is_complemented() && !network.is_constant(f.index())) {
        need_not[f.index()] = true;
      }
    }
  });
  network.foreach_co([&](signal s, std::size_t) {
    if (s.is_complemented() && !network.is_constant(s.index())) {
      need_not[s.index()] = true;
    }
  });

  // ----- levels and path balancing -------------------------------------------
  // Unit delay per clocked stage; NOT cells add a stage on complemented edges.
  std::vector<std::uint32_t> level(network.size(), 0);
  std::uint32_t max_co_level = 0;
  auto edge_level = [&](signal f) -> std::uint32_t {
    return level[f.index()] + (f.is_complemented() &&
                                       !network.is_constant(f.index())
                                   ? 1u
                                   : 0u);
  };
  network.foreach_gate([&](aig::node_index n) {
    if (role[n] == 0) {
      // Absorbed XOR inner node: carries its root's input level forward.
      level[n] = 0;
      return;
    }
    const auto [x, y] = cell_fanins(n);
    level[n] = 1 + std::max(edge_level(x), edge_level(y));
  });
  network.foreach_co([&](signal s, std::size_t) {
    max_co_level = std::max(max_co_level, edge_level(s));
  });
  st.depth = max_co_level;

  // Balancing DROs: slack on every cell edge plus CO edges up to the
  // common output level.
  std::size_t dro_count = 0;
  network.foreach_gate([&](aig::node_index n) {
    if (role[n] == 0) return;
    const auto [x, y] = cell_fanins(n);
    for (const signal f : {x, y}) {
      if (network.is_constant(f.index())) continue;
      const std::uint32_t slack = level[n] - 1 - edge_level(f);
      dro_count += slack;
    }
  });
  network.foreach_co([&](signal s, std::size_t) {
    if (network.is_constant(s.index())) return;
    dro_count += max_co_level - edge_level(s);
  });
  st.balancing_dros = dro_count;

  // ----- splitters ------------------------------------------------------------
  // Data fanout: one splitter per extra consumer of every produced signal
  // (cell outputs, NOT outputs, CIs).
  std::vector<std::uint32_t> consumers(network.size(), 0);
  std::vector<std::uint32_t> not_consumers(network.size(), 0);
  auto note_edge = [&](signal f) {
    if (network.is_constant(f.index())) return;
    if (f.is_complemented()) {
      ++not_consumers[f.index()];
    } else {
      ++consumers[f.index()];
    }
  };
  network.foreach_gate([&](aig::node_index n) {
    if (role[n] == 0) return;
    const auto [x, y] = cell_fanins(n);
    note_edge(x);
    note_edge(y);
  });
  network.foreach_co([&](signal s, std::size_t) { note_edge(s); });

  std::size_t splitters = 0;
  network.foreach_node([&](aig::node_index n) {
    std::uint32_t direct = consumers[n];
    if (need_not[n]) ++direct;  // the NOT cell is one more consumer
    if (direct > 1) splitters += direct - 1;
    if (not_consumers[n] > 1) splitters += not_consumers[n] - 1;
  });
  st.data_splitters = splitters;

  // ----- totals ---------------------------------------------------------------
  network.foreach_gate([&](aig::node_index n) {
    if (role[n] != 0) ++st.logic_cells;
  });
  network.foreach_node([&](aig::node_index n) {
    if (need_not[n]) ++st.not_cells;
  });
  st.dffs = network.num_registers();
  st.clocked_cells =
      st.logic_cells + st.not_cells + st.balancing_dros + st.dffs;

  const rsfq_costs& c = params.costs;
  st.jj_without_clock = st.logic_cells * c.logic_cell +
                        st.not_cells * c.not_cell +
                        st.balancing_dros * c.dro + st.dffs * c.dff +
                        st.data_splitters * c.splitter;
  st.jj_with_clock = st.jj_without_clock + st.clocked_cells * c.splitter;
  return st;
}

}  // namespace xsfq
