#pragma once
/// \file rsfq.hpp
/// \brief Conventional clocked-RSFQ mapping baselines (PBMap/qSeq analogues).
///
/// The paper compares against PBMap [11] (combinational, Table 4) and
/// qSeq [12] (sequential, Table 6).  Neither tool is available here, so this
/// module recomputes what a conventional fully-synchronous RSFQ
/// implementation costs on the *same* circuits: every logic gate is clocked,
/// every CI-to-CO path must traverse the same number of clocked stages (full
/// path balancing with DRO cells), inverters are explicit clocked cells, and
/// fanout needs splitters.  Clock distribution adds one splitter per clocked
/// cell (the paper's 30%-per-logic-cell / 60%-per-DRO accounting).
///
/// Cell costs are calibrated to the figures the paper itself cites: a
/// conventional SFQ logic cell averages 10 JJs (Sec. 1), a splitter is 3 JJs
/// and a path-balancing DRO 5 JJs (Sec. 4.2.1's 30%/60% clock-splitter
/// ratios).  Absolute PBMap/qSeq numbers in EXPERIMENTS.md come from the
/// paper; this baseline provides the self-consistent comparison on our
/// regenerated benchmark circuits.

#include <cstddef>

#include "aig/aig.hpp"

namespace xsfq {

/// JJ costs of the conventional RSFQ cells used by the baseline mapper.
struct rsfq_costs {
  unsigned logic_cell = 10;  ///< clocked AND2/OR2/XOR2
  unsigned not_cell = 9;     ///< clocked inverter
  unsigned dro = 5;          ///< path-balancing destructive readout
  unsigned dff = 7;          ///< storage DFF (qSeq flow)
  unsigned splitter = 3;
};

struct rsfq_params {
  bool detect_xor = true;    ///< map 3-node XOR cones to one XOR2 cell
  rsfq_costs costs;
};

struct rsfq_stats {
  std::size_t logic_cells = 0;     ///< AND2/OR2/XOR2 cells
  std::size_t not_cells = 0;       ///< explicit inverters
  std::size_t balancing_dros = 0;  ///< DROs inserted for path balancing
  std::size_t dffs = 0;            ///< storage flip-flops (sequential)
  std::size_t data_splitters = 0;
  std::size_t clocked_cells = 0;   ///< everything needing a clock
  unsigned depth = 0;              ///< clocked logic levels CI -> CO
  std::size_t jj_without_clock = 0;
  std::size_t jj_with_clock = 0;   ///< + one splitter per clocked cell
};

/// Maps an (already optimized) AIG to a conventional clocked RSFQ
/// implementation with full path balancing.  Works for combinational and
/// sequential networks (the latter reproduces the qSeq-style flow).
rsfq_stats map_to_rsfq(const aig& network, const rsfq_params& params = {});

}  // namespace xsfq
