#pragma once
/// \file sim_reference.hpp
/// \brief Frozen scalar reference simulator (the pre-sim_engine code).
///
/// These are the one-word-per-traversal implementations that shipped before
/// the wide engine, kept verbatim as (a) the parity oracle for
/// tests/test_simulate.cpp and (b) the "before" baseline that
/// bench_perf_sim measures speedups against.  Deliberately naive: fresh
/// result vectors per call, no scratch reuse, no incremental mode.  Do not
/// optimize this file — its value is that it stays what the engine is
/// compared to.

#include <cstdint>
#include <span>
#include <vector>

#include "aig/aig.hpp"
#include "util/rng.hpp"
#include "util/truth_table.hpp"

namespace xsfq {

inline std::vector<std::uint64_t> reference_simulate64(
    const aig& network, std::span<const std::uint64_t> ci_patterns) {
  std::vector<std::uint64_t> value(network.size(), 0);
  network.foreach_ci([&](signal s, std::size_t i) {
    value[s.index()] = ci_patterns[i];
  });
  network.foreach_gate([&](aig::node_index n) {
    const signal a = network.fanin0(n);
    const signal b = network.fanin1(n);
    const std::uint64_t va =
        a.is_complemented() ? ~value[a.index()] : value[a.index()];
    const std::uint64_t vb =
        b.is_complemented() ? ~value[b.index()] : value[b.index()];
    value[n] = va & vb;
  });
  std::vector<std::uint64_t> result(network.num_cos());
  network.foreach_co([&](signal s, std::size_t i) {
    result[i] = s.is_complemented() ? ~value[s.index()] : value[s.index()];
  });
  return result;
}

inline std::vector<truth_table> reference_co_tables(const aig& network) {
  const auto num_vars = static_cast<unsigned>(network.num_cis());
  std::vector<truth_table> value(network.size(), truth_table(num_vars));
  network.foreach_ci([&](signal s, std::size_t i) {
    value[s.index()] = truth_table::nth_var(num_vars, static_cast<unsigned>(i));
  });
  network.foreach_gate([&](aig::node_index n) {
    const signal a = network.fanin0(n);
    const signal b = network.fanin1(n);
    const truth_table ta =
        a.is_complemented() ? ~value[a.index()] : value[a.index()];
    const truth_table tb =
        b.is_complemented() ? ~value[b.index()] : value[b.index()];
    value[n] = ta & tb;
  });
  std::vector<truth_table> result;
  result.reserve(network.num_cos());
  network.foreach_co([&](signal s, std::size_t) {
    result.push_back(s.is_complemented() ? ~value[s.index()]
                                         : value[s.index()]);
  });
  return result;
}

inline bool reference_random_equivalent(const aig& a, const aig& b,
                                        unsigned rounds, std::uint64_t seed) {
  if (a.num_cis() != b.num_cis() || a.num_cos() != b.num_cos()) return false;
  rng gen(seed);
  std::vector<std::uint64_t> patterns(a.num_cis());
  for (unsigned round = 0; round < rounds; ++round) {
    for (auto& p : patterns) p = gen();
    if (reference_simulate64(a, patterns) != reference_simulate64(b, patterns))
      return false;
  }
  return true;
}

}  // namespace xsfq
