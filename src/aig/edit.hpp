#pragma once
/// \file edit.hpp
/// \brief ECO edit scripts: a textual delta against a synthesized AIG.
///
/// An edit script is the wire payload of the serve protocol's `synth_delta`
/// request (protocol v4): the client names a previously synthesized base
/// network by content hash and ships a small script of structural edits; the
/// daemon replays the script onto the retained network and resynthesizes the
/// result incrementally (see docs/protocol.md, "synth_delta").
///
/// Replay is *position-stable*: untouched base nodes keep their exact array
/// positions.  Gates are redefined in place (`replace`), consumers are
/// redirected (`sub`), and new gates are appended at the array end — never
/// inserted — so the topological-order invariant holds and the fixed-grain
/// partition regions of the unedited logic keep identical content.  That is
/// what lets the region result cache (opt/partition.hpp) skip re-optimizing
/// everything the edit did not touch, while the flow output stays
/// bit-identical to a from-scratch run of the edited circuit: region
/// optimization is a pure function of region content, so cache hits cannot
/// change bytes, only time.
///
/// Grammar (line-oriented; `#` starts a comment):
///
///     replace n<K> <sig> <sig>   redefine gate K's fanins in place
///                                (both strictly earlier than K)
///     sub n<K> <sig>             redirect every consumer of node K to <sig>
///                                (<sig>'s node must precede every consumer)
///     po <I> <sig>               retarget primary output I
///     and g<J> <sig> <sig>       define new gate J (J sequential from 0),
///                                appended after every existing node
///     addpi [name]               append a primary input
///     addpo <sig> [name]         append a primary output
///
///     sig := [!] ( n<K> | g<J> | const0 | const1 )
///
/// Every malformed script or illegal replay (unknown or substituted-away
/// node, fanin ordering violation, degenerate gate, cyclic retarget — ruled
/// out by the `sub` position rule) throws `edit_error`, which the daemon
/// maps to the typed `bad_edit` protocol error.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "aig/aig.hpp"

namespace xsfq::eco {

/// Malformed edit script or illegal replay step.  The message names the
/// offending script line.
class edit_error : public std::runtime_error {
 public:
  explicit edit_error(const std::string& msg) : std::runtime_error(msg) {}
};

/// A signal reference in an edit script, resolved against the network (and
/// the new-gate list) at replay time.
struct edit_ref {
  enum class kind : std::uint8_t { node, new_gate, constant };
  kind k = kind::constant;
  std::uint32_t index = 0;  ///< node index / new-gate ordinal / constant value
  bool complement = false;
};

/// One parsed edit operation.
struct edit_op {
  enum class kind : std::uint8_t {
    replace_gate,  ///< replace n<K> a b
    substitute,    ///< sub n<K> a
    set_po,        ///< po I a
    new_gate,      ///< and g<J> a b
    add_pi,        ///< addpi [name]
    add_po,        ///< addpo a [name]
  };
  kind k = kind::add_pi;
  std::uint32_t target = 0;  ///< node index, PO index, or new-gate ordinal
  edit_ref a;
  edit_ref b;
  std::string name;      ///< addpi/addpo interface name (may be empty)
  unsigned line = 0;     ///< 1-based script line, for error messages
};

/// A parsed edit script.
struct edit_script {
  std::vector<edit_op> ops;
  [[nodiscard]] bool empty() const { return ops.empty(); }
};

/// What a replay touched — the daemon reports these as eco_* statistics.
struct replay_info {
  std::size_t gates_replaced = 0;
  std::size_t substitutions = 0;
  std::size_t gates_added = 0;
  std::size_t pis_added = 0;
  std::size_t pos_added = 0;
  std::size_t pos_retargeted = 0;
  /// Lowest node index whose definition changed (null_node when none did).
  aig::node_index first_touched = aig::null_node;
};

/// Parses the textual script.  Throws edit_error on any malformed line.
edit_script parse_edit_script(const std::string& text);

/// Replays the script onto `network` in place and rebuilds its structural
/// hash, so the resulting state is a pure function of the edited node array.
/// Throws edit_error on any illegal step (the network is left partially
/// edited; replay a copy when the base must survive failure).
replay_info apply_edit(aig& network, const edit_script& script);

/// parse + apply in one call.
replay_info apply_edit_text(aig& network, const std::string& text);

}  // namespace xsfq::eco
