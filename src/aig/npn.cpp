#include "aig/npn.hpp"

#include <algorithm>
#include <mutex>

namespace xsfq {
namespace {

/// All 24 permutations of {0,1,2,3} in lexicographic order.
const std::array<std::array<std::uint8_t, 4>, 24>& all_perms() {
  static const auto perms = [] {
    std::array<std::array<std::uint8_t, 4>, 24> result{};
    std::array<std::uint8_t, 4> p = {0, 1, 2, 3};
    std::size_t i = 0;
    do {
      result[i++] = p;
    } while (std::next_permutation(p.begin(), p.end()));
    return result;
  }();
  return perms;
}

}  // namespace

std::uint16_t npn4_apply(std::uint16_t function, const npn4_transform& t) {
  std::uint16_t result = 0;
  for (unsigned m = 0; m < 16; ++m) {
    // Negate the inputs of the minterm, then route x_v to position perm[v].
    const unsigned negated = m ^ t.input_neg_mask;
    unsigned src = 0;
    for (unsigned v = 0; v < 4; ++v) {
      if ((negated >> v) & 1u) src |= 1u << t.perm[v];
    }
    if ((function >> src) & 1u) result |= std::uint16_t(1u << m);
  }
  return t.output_neg ? static_cast<std::uint16_t>(~result) : result;
}

std::pair<std::uint16_t, npn4_transform> npn4_canonicalize(
    std::uint16_t function) {
  std::uint16_t best = 0xFFFF;
  npn4_transform best_t;
  bool first = true;
  for (const auto& perm : all_perms()) {
    for (std::uint8_t neg = 0; neg < 16; ++neg) {
      for (int out = 0; out < 2; ++out) {
        npn4_transform t;
        t.perm = perm;
        t.input_neg_mask = neg;
        t.output_neg = out != 0;
        const std::uint16_t candidate = npn4_apply(function, t);
        if (first || candidate < best) {
          best = candidate;
          best_t = t;
          first = false;
        }
      }
    }
  }
  return {best, best_t};
}

npn4_realization realization_from_transform(const npn4_transform& t) {
  // From npn4_apply: c(x) = f(sigma(x ^ m)) ^ o where bit perm[v] of
  // sigma(y) equals y_v (negation happens before routing).  Inverting:
  // f(y) = c(x) ^ o with x_v = y_{perm[v]} ^ m_v.
  npn4_realization r;
  for (unsigned v = 0; v < 4; ++v) {
    r.leaf_of_var[v] = t.perm[v];
    r.leaf_complemented[v] = ((t.input_neg_mask >> v) & 1u) != 0;
  }
  r.output_complemented = t.output_neg;
  return r;
}

const std::vector<std::uint16_t>& npn4_class_representatives() {
  static std::vector<std::uint16_t> reps;
  static std::once_flag once;
  std::call_once(once, [] {
    // Ascending scan: the first unseen function is the minimum of its class,
    // i.e. the canonical representative; mark all 768 images as seen.
    std::vector<bool> seen(65536, false);
    for (std::uint32_t f = 0; f < 65536; ++f) {
      if (seen[f]) continue;
      reps.push_back(static_cast<std::uint16_t>(f));
      for (const auto& perm : all_perms()) {
        for (std::uint8_t neg = 0; neg < 16; ++neg) {
          for (int out = 0; out < 2; ++out) {
            npn4_transform t;
            t.perm = perm;
            t.input_neg_mask = neg;
            t.output_neg = out != 0;
            seen[npn4_apply(static_cast<std::uint16_t>(f), t)] = true;
          }
        }
      }
    }
  });
  return reps;
}

}  // namespace xsfq
