#include "aig/cuts.hpp"

#include <algorithm>
#include <unordered_map>

namespace xsfq {
namespace {

std::uint64_t signature_of(const std::vector<aig::node_index>& leaves) {
  std::uint64_t s = 0;
  for (auto l : leaves) s |= std::uint64_t{1} << (l & 63u);
  return s;
}

/// Merges two sorted leaf sets; returns false if the union exceeds `k`.
bool merge_leaves(const std::vector<aig::node_index>& a,
                  const std::vector<aig::node_index>& b, unsigned k,
                  std::vector<aig::node_index>& out) {
  out.clear();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() || j < b.size()) {
    if (out.size() > k) return false;
    if (j == b.size() || (i < a.size() && a[i] < b[j])) {
      out.push_back(a[i++]);
    } else if (i == a.size() || b[j] < a[i]) {
      out.push_back(b[j++]);
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  return out.size() <= k;
}

/// Re-expresses `t` (a function of `from` leaves) over the `to` leaf set,
/// which must be a superset of `from`.  All tables use `to.size()` variables.
truth_table expand_table(const truth_table& t,
                         const std::vector<aig::node_index>& from,
                         const std::vector<aig::node_index>& to) {
  const auto num_vars = static_cast<unsigned>(to.size());
  // Variable i of `t` corresponds to from[i]; find its position in `to`.
  std::vector<unsigned> position(from.size());
  for (std::size_t i = 0; i < from.size(); ++i) {
    const auto it = std::lower_bound(to.begin(), to.end(), from[i]);
    position[i] = static_cast<unsigned>(it - to.begin());
  }
  truth_table result(num_vars);
  const std::uint64_t bits = result.num_bits();
  for (std::uint64_t m = 0; m < bits; ++m) {
    std::uint64_t src = 0;
    for (std::size_t i = 0; i < from.size(); ++i) {
      if ((m >> position[i]) & 1u) src |= std::uint64_t{1} << i;
    }
    if (t.bit(src)) result.set_bit(m);
  }
  return result;
}

}  // namespace

bool cut::dominates(const cut& other) const {
  if (leaves.size() > other.leaves.size()) return false;
  if ((signature & ~other.signature) != 0) return false;
  return std::includes(other.leaves.begin(), other.leaves.end(),
                       leaves.begin(), leaves.end());
}

node_map<std::vector<cut>> enumerate_cuts(const aig& network,
                                          const cut_params& params) {
  node_map<std::vector<cut>> cuts(network);

  auto make_trivial = [](aig::node_index n) {
    cut c;
    c.leaves = {n};
    c.function = truth_table::nth_var(1, 0);
    c.signature = signature_of(c.leaves);
    return c;
  };

  network.foreach_ci([&](signal s, std::size_t) {
    cuts[s.index()].push_back(make_trivial(s.index()));
  });
  // The constant node gets a single empty cut with a constant function.
  {
    cut c;
    c.function = truth_table::zeros(0);
    cuts[0].push_back(c);
  }

  std::vector<aig::node_index> merged;
  network.foreach_gate([&](aig::node_index n) {
    const signal f0 = network.fanin0(n);
    const signal f1 = network.fanin1(n);
    auto& out = cuts[n];

    for (const cut& c0 : cuts[f0.index()]) {
      for (const cut& c1 : cuts[f1.index()]) {
        if (!merge_leaves(c0.leaves, c1.leaves, params.cut_size, merged)) {
          continue;
        }
        cut c;
        c.leaves = merged;
        c.signature = signature_of(c.leaves);

        // Skip if dominated by an existing cut (or dominating: replace).
        bool dominated = false;
        for (const cut& existing : out) {
          if (existing.dominates(c)) {
            dominated = true;
            break;
          }
        }
        if (dominated) continue;
        std::erase_if(out, [&](const cut& existing) {
          return c.dominates(existing);
        });

        const truth_table t0 = expand_table(c0.function, c0.leaves, c.leaves);
        const truth_table t1 = expand_table(c1.function, c1.leaves, c.leaves);
        c.function = (f0.is_complemented() ? ~t0 : t0) &
                     (f1.is_complemented() ? ~t1 : t1);
        out.push_back(std::move(c));
        if (out.size() >= params.cut_limit) break;
      }
      if (out.size() >= params.cut_limit) break;
    }
    if (params.include_trivial) out.push_back(make_trivial(n));
  });
  return cuts;
}

unsigned mffc_size(const aig& network, aig::node_index root,
                   const std::vector<aig::node_index>& leaves_in,
                   const std::vector<std::uint32_t>& fanout) {
  // Count gates in the cone of `root` whose fanout lies entirely inside the
  // cone, via simulated dereferencing with a local remaining-reference map.
  std::vector<aig::node_index> leaves(leaves_in);
  std::sort(leaves.begin(), leaves.end());
  std::unordered_map<aig::node_index, std::uint32_t> remaining;
  unsigned count = 0;

  auto is_leaf = [&](aig::node_index n) {
    return std::binary_search(leaves.begin(), leaves.end(), n);
  };

  std::vector<aig::node_index> stack{root};
  while (!stack.empty()) {
    const aig::node_index n = stack.back();
    stack.pop_back();
    if (!network.is_gate(n) || is_leaf(n)) continue;
    ++count;
    for (const signal f : {network.fanin0(n), network.fanin1(n)}) {
      const aig::node_index child = f.index();
      if (!network.is_gate(child) || is_leaf(child)) continue;
      auto [it, inserted] = remaining.try_emplace(child, fanout[child]);
      if (--it->second == 0) stack.push_back(child);
    }
  }
  return count;
}

}  // namespace xsfq
