#include "aig/cuts.hpp"

#include <algorithm>
#include <unordered_map>

namespace xsfq {
namespace {

/// Branch-free SWAR popcount: the baseline build has no -mpopcnt, and the
/// libgcc __popcountdi2 call showed up in the enumeration profile.
inline unsigned popcount64(std::uint64_t x) {
  x -= (x >> 1) & 0x5555555555555555ull;
  x = (x & 0x3333333333333333ull) + ((x >> 2) & 0x3333333333333333ull);
  x = (x + (x >> 4)) & 0x0F0F0F0F0F0F0F0Full;
  return static_cast<unsigned>((x * 0x0101010101010101ull) >> 56);
}

/// Merges two sorted leaf sets; returns false if the union exceeds `k`.
bool merge_leaves(std::span<const aig::node_index> a,
                  std::span<const aig::node_index> b, unsigned k,
                  std::vector<aig::node_index>& out) {
  out.clear();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() || j < b.size()) {
    if (out.size() > k) return false;
    if (j == b.size() || (i < a.size() && a[i] < b[j])) {
      out.push_back(a[i++]);
    } else if (i == a.size() || b[j] < a[i]) {
      out.push_back(b[j++]);
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  return out.size() <= k;
}

/// Subset test with the bloom-filter fast reject (a <= b on sorted sets).
bool leaves_dominate(std::span<const aig::node_index> a, std::uint64_t sig_a,
                     std::span<const aig::node_index> b, std::uint64_t sig_b) {
  if (a.size() > b.size()) return false;
  if ((sig_a & ~sig_b) != 0) return false;
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

/// Positions of `sub` within its superset `super` (both sorted, unique).
/// The result is strictly increasing, as truth_table::expanded requires.
void positions_in(std::span<const aig::node_index> sub,
                  std::span<const aig::node_index> super,
                  std::vector<unsigned>& out) {
  out.clear();
  std::size_t j = 0;
  for (const auto leaf : sub) {
    while (super[j] != leaf) ++j;
    out.push_back(static_cast<unsigned>(j));
  }
}

}  // namespace

std::span<const aig::node_index> cut_view::leaves() const {
  const auto& e = set_->entries_[index_];
  return {set_->leaf_pool_.data() + e.leaf_begin, e.num_leaves};
}

const truth_table& cut_view::function() const {
  return set_->entries_[index_].function;
}

std::uint64_t cut_view::signature() const {
  return set_->entries_[index_].signature;
}

unsigned cut_view::size() const { return set_->entries_[index_].num_leaves; }

bool cut_view::dominates(const cut_view& other) const {
  return leaves_dominate(leaves(), signature(), other.leaves(),
                         other.signature());
}

const cut_set& cut_engine::enumerate(const aig& network,
                                     const cut_params& params) {
  set_.spans_.assign(network.size(), {0, 0});
  set_.entries_.clear();
  set_.leaf_pool_.clear();
  counters_ = {};

  auto commit_trivial = [&](aig::node_index n) {
    cut_set::entry e;
    e.leaf_begin = static_cast<std::uint32_t>(set_.leaf_pool_.size());
    e.num_leaves = 1;
    set_.leaf_pool_.push_back(n);
    e.signature = std::uint64_t{1} << (n & 63u);
    e.function = truth_table::nth_var(1, 0);
    set_.entries_.push_back(std::move(e));
  };

  auto scratch_leaves_of = [&](const cut_set::entry& e) {
    return std::span<const aig::node_index>(
        scratch_leaves_.data() + e.leaf_begin, e.num_leaves);
  };

  network.foreach_node([&](aig::node_index n) {
    const auto first = static_cast<std::uint32_t>(set_.entries_.size());
    if (network.is_constant(n)) {
      // The constant node gets a single empty cut with a constant function.
      cut_set::entry e;
      e.function = truth_table::zeros(0);
      set_.entries_.push_back(std::move(e));
      set_.spans_[n] = {first, 1};
      return;
    }
    if (network.is_ci(n)) {
      commit_trivial(n);
      set_.spans_[n] = {first, 1};
      return;
    }

    const signal f0 = network.fanin0(n);
    const signal f1 = network.fanin1(n);
    scratch_entries_.clear();
    scratch_leaves_.clear();

    for (const cut_view c0 : set_[f0.index()]) {
      const std::uint64_t sig0 = c0.signature();
      for (const cut_view c1 : set_[f1.index()]) {
        ++counters_.candidates;
        // The merged cut's bloom signature is exactly the union of the fanin
        // signatures (one bit per leaf, duplicates collapse), so a popcount
        // above k proves the union is too large before any merging work —
        // the dominant reject in the k=4 rewrite enumeration.
        const std::uint64_t signature = sig0 | c1.signature();
        if (popcount64(signature) > params.cut_size) {
          continue;
        }
        if (!merge_leaves(c0.leaves(), c1.leaves(), params.cut_size,
                          merged_)) {
          continue;
        }

        // Skip if dominated by an existing cut (or dominating: replace).
        bool dominated = false;
        for (const auto& existing : scratch_entries_) {
          if (leaves_dominate(scratch_leaves_of(existing), existing.signature,
                              merged_, signature)) {
            dominated = true;
            break;
          }
        }
        if (dominated) {
          ++counters_.dominated;
          continue;
        }
        std::erase_if(scratch_entries_, [&](const cut_set::entry& existing) {
          return leaves_dominate(merged_, signature,
                                 scratch_leaves_of(existing),
                                 existing.signature);
        });

        cut_set::entry e;
        e.leaf_begin = static_cast<std::uint32_t>(scratch_leaves_.size());
        e.num_leaves = static_cast<std::uint32_t>(merged_.size());
        e.signature = signature;
        scratch_leaves_.insert(scratch_leaves_.end(), merged_.begin(),
                               merged_.end());

        const auto k = static_cast<unsigned>(merged_.size());
        if (k <= truth_table::small_vars) {
          // Word-parallel merge: expand both fanin functions onto the merged
          // leaf slots and AND them in registers.
          positions_in(c0.leaves(), merged_, positions_);
          std::uint64_t w0 = truth_table::expand_word(
              c0.function().word0(), c0.size(), positions_.data());
          if (f0.is_complemented()) w0 = ~w0;
          positions_in(c1.leaves(), merged_, positions_);
          std::uint64_t w1 = truth_table::expand_word(
              c1.function().word0(), c1.size(), positions_.data());
          if (f1.is_complemented()) w1 = ~w1;
          e.function = truth_table::from_word(k, w0 & w1);
        } else {
          positions_in(c0.leaves(), merged_, positions_);
          const truth_table t0 = c0.function().expanded(k, positions_);
          positions_in(c1.leaves(), merged_, positions_);
          const truth_table t1 = c1.function().expanded(k, positions_);
          e.function = (f0.is_complemented() ? ~t0 : t0) &
                       (f1.is_complemented() ? ~t1 : t1);
        }
        scratch_entries_.push_back(std::move(e));
        if (scratch_entries_.size() >= params.cut_limit) break;
      }
      if (scratch_entries_.size() >= params.cut_limit) break;
    }

    for (auto& e : scratch_entries_) {
      const auto leaf_begin =
          static_cast<std::uint32_t>(set_.leaf_pool_.size());
      const auto sl = scratch_leaves_of(e);
      set_.leaf_pool_.insert(set_.leaf_pool_.end(), sl.begin(), sl.end());
      e.leaf_begin = leaf_begin;
      set_.entries_.push_back(std::move(e));
    }
    if (params.include_trivial) commit_trivial(n);
    set_.spans_[n] = {first,
                      static_cast<std::uint32_t>(set_.entries_.size()) - first};
  });

  counters_.stored = set_.entries_.size();
  return set_;
}

cut_set enumerate_cuts(const aig& network, const cut_params& params) {
  cut_engine engine;
  engine.enumerate(network, params);
  return engine.release();
}

unsigned mffc_size(const aig& network, aig::node_index root,
                   const std::vector<aig::node_index>& leaves,
                   const std::vector<std::uint32_t>& fanout) {
  // Count gates in the cone of `root` whose fanout lies entirely inside the
  // cone, via simulated dereferencing with a lazy remaining-reference map
  // that only touches the cone.  Hot paths use mffc_calculator instead.
  if (!std::is_sorted(leaves.begin(), leaves.end())) {
    // Cut leaves are always sorted; sort defensively for other callers.
    std::vector<aig::node_index> sorted_leaves(leaves);
    std::sort(sorted_leaves.begin(), sorted_leaves.end());
    return mffc_size(network, root, sorted_leaves, fanout);
  }
  std::unordered_map<aig::node_index, std::uint32_t> remaining;
  unsigned count = 0;

  auto is_leaf = [&](aig::node_index n) {
    return std::binary_search(leaves.begin(), leaves.end(), n);
  };

  std::vector<aig::node_index> stack{root};
  while (!stack.empty()) {
    const aig::node_index n = stack.back();
    stack.pop_back();
    if (!network.is_gate(n) || is_leaf(n)) continue;
    ++count;
    for (const signal f : {network.fanin0(n), network.fanin1(n)}) {
      const aig::node_index child = f.index();
      if (!network.is_gate(child) || is_leaf(child)) continue;
      auto [it, inserted] = remaining.try_emplace(child, fanout[child]);
      if (--it->second == 0) stack.push_back(child);
    }
  }
  return count;
}

void mffc_calculator::attach(const aig& network) {
  network_ = &network;
  network.compute_fanout_counts_into(fanout_);
  remaining_.assign(network.size(), 0);
  stamp_.assign(network.size(), 0);
  epoch_ = 0;
}

unsigned mffc_calculator::size(aig::node_index root,
                               std::span<const aig::node_index> leaves) {
  ++queries_;
  if (++epoch_ == 0) {  // stamp wrap-around: invalidate all stamps
    stamp_.assign(stamp_.size(), 0);
    epoch_ = 1;
  }
  unsigned count = 0;

  auto is_leaf = [&](aig::node_index n) {
    return std::binary_search(leaves.begin(), leaves.end(), n);
  };

  stack_.clear();
  stack_.push_back(root);
  while (!stack_.empty()) {
    const aig::node_index n = stack_.back();
    stack_.pop_back();
    if (!network_->is_gate(n) || is_leaf(n)) continue;
    ++count;
    for (const signal f : {network_->fanin0(n), network_->fanin1(n)}) {
      const aig::node_index child = f.index();
      if (!network_->is_gate(child) || is_leaf(child)) continue;
      if (stamp_[child] != epoch_) {
        stamp_[child] = epoch_;
        remaining_[child] = fanout_[child];
      }
      if (--remaining_[child] == 0) stack_.push_back(child);
    }
  }
  return count;
}

}  // namespace xsfq
