#include "aig/edit.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace xsfq::eco {
namespace {

[[noreturn]] void fail(unsigned line, const std::string& what) {
  throw edit_error("edit line " + std::to_string(line) + ": " + what);
}

bool parse_u32(const std::string& s, std::uint32_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const unsigned long v = std::strtoul(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  if (v > std::numeric_limits<std::uint32_t>::max()) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

edit_ref parse_ref(std::string token, unsigned line) {
  edit_ref ref;
  if (!token.empty() && token.front() == '!') {
    ref.complement = true;
    token.erase(token.begin());
  }
  if (token == "const0" || token == "const1") {
    ref.k = edit_ref::kind::constant;
    ref.index = token.back() == '1' ? 1 : 0;
    return ref;
  }
  if (token.size() >= 2 && (token.front() == 'n' || token.front() == 'g')) {
    std::uint32_t index = 0;
    if (parse_u32(token.substr(1), index)) {
      ref.k = token.front() == 'n' ? edit_ref::kind::node
                                   : edit_ref::kind::new_gate;
      ref.index = index;
      return ref;
    }
  }
  fail(line, "bad signal reference '" + token + "'");
}

/// Targets (`replace n<K>`, `sub n<K>`, `and g<J>`) must be plain
/// uncomplemented references of the required kind.
std::uint32_t parse_target(const std::string& token, edit_ref::kind want,
                           unsigned line) {
  const edit_ref ref = parse_ref(token, line);
  if (ref.k != want || ref.complement) {
    fail(line, "bad target '" + token + "'");
  }
  return ref.index;
}

struct replay {
  aig& net;
  replay_info info;
  std::vector<signal> new_gates;       ///< resolved g<J> signals
  std::vector<std::uint8_t> deleted;   ///< base nodes substituted away
  bool structural = false;             ///< any strash-invalidating op ran

  explicit replay(aig& network)
      : net(network), deleted(network.size(), 0) {}

  [[nodiscard]] bool is_deleted(std::uint32_t n) const {
    return n < deleted.size() && deleted[n] != 0;
  }

  signal resolve(const edit_ref& ref, unsigned line) {
    switch (ref.k) {
      case edit_ref::kind::constant:
        return net.get_constant(ref.index != 0) ^ ref.complement;
      case edit_ref::kind::new_gate:
        if (ref.index >= new_gates.size()) {
          fail(line, "unknown new gate g" + std::to_string(ref.index));
        }
        return new_gates[ref.index] ^ ref.complement;
      case edit_ref::kind::node:
        if (ref.index >= net.size()) {
          fail(line, "unknown node n" + std::to_string(ref.index));
        }
        if (is_deleted(ref.index)) {
          fail(line, "node n" + std::to_string(ref.index) +
                         " was substituted away");
        }
        return signal(ref.index, false) ^ ref.complement;
    }
    fail(line, "bad signal reference");
  }

  void touch(aig::node_index n) {
    info.first_touched = std::min(info.first_touched, n);
  }

  static void check_pair(signal a, signal b, unsigned line,
                         const char* what) {
    if (a.index() == 0 || b.index() == 0 || a.index() == b.index()) {
      fail(line, std::string(what) + " would make a degenerate gate");
    }
  }

  void run_replace(const edit_op& op) {
    const std::uint32_t target = op.target;
    if (target >= net.size() || !net.is_gate(target)) {
      fail(op.line, "replace target n" + std::to_string(target) +
                        " is not a gate");
    }
    if (is_deleted(target)) {
      fail(op.line, "replace target n" + std::to_string(target) +
                        " was substituted away");
    }
    const signal a = resolve(op.a, op.line);
    const signal b = resolve(op.b, op.line);
    if (a.index() >= target || b.index() >= target) {
      fail(op.line, "replace fanin does not precede n" +
                        std::to_string(target));
    }
    check_pair(a, b, op.line, "replace");
    net.set_gate_fanins(target, a, b);
    touch(target);
    ++info.gates_replaced;
    structural = true;
  }

  void run_substitute(const edit_op& op) {
    const std::uint32_t target = op.target;
    if (target == 0 || target >= net.size()) {
      fail(op.line, "sub target n" + std::to_string(target) +
                        " is not a substitutable node");
    }
    if (is_deleted(target)) {
      fail(op.line, "sub target n" + std::to_string(target) +
                        " was substituted away");
    }
    const signal s = resolve(op.a, op.line);
    if (s.index() == target) {
      fail(op.line, "sub source is the target itself");
    }
    // Gate consumers: the source must precede every one of them, which both
    // keeps the array topologically sorted and rejects cyclic retargets (a
    // source depending on the target necessarily sits after some consumer).
    for (aig::node_index n = target + 1; n < net.size(); ++n) {
      if (!net.is_gate(n)) continue;
      const signal f0 = net.fanin0(n);
      const signal f1 = net.fanin1(n);
      if (f0.index() != target && f1.index() != target) continue;
      if (s.index() >= n) {
        fail(op.line, "sub source does not precede consumer n" +
                          std::to_string(n) + " (cyclic or forward retarget)");
      }
      const signal na =
          f0.index() == target ? s ^ f0.is_complemented() : f0;
      const signal nb =
          f1.index() == target ? s ^ f1.is_complemented() : f1;
      check_pair(na, nb, op.line, "sub");
      net.set_gate_fanins(n, na, nb);
      touch(n);
      structural = true;
    }
    for (std::size_t i = 0; i < net.num_pos(); ++i) {
      const signal po = net.po_signal(i);
      if (po.index() == target) {
        net.replace_po(i, s ^ po.is_complemented());
      }
    }
    for (std::size_t i = 0; i < net.num_registers(); ++i) {
      const signal ri = net.register_at(i).input;
      if (net.register_at(i).input_set && ri.index() == target) {
        net.set_register_input(i, s ^ ri.is_complemented());
      }
    }
    if (target < deleted.size()) deleted[target] = 1;
    touch(target);
    ++info.substitutions;
    structural = true;
  }

  void run_set_po(const edit_op& op) {
    if (op.target >= net.num_pos()) {
      fail(op.line, "unknown primary output " + std::to_string(op.target));
    }
    net.replace_po(op.target, resolve(op.a, op.line));
    ++info.pos_retargeted;
  }

  void run_new_gate(const edit_op& op) {
    if (op.target != new_gates.size()) {
      fail(op.line, "new gates must be defined in order (expected g" +
                        std::to_string(new_gates.size()) + ")");
    }
    const signal a = resolve(op.a, op.line);
    const signal b = resolve(op.b, op.line);
    check_pair(a, b, op.line, "and");
    const signal g = net.append_gate_raw(a, b);
    new_gates.push_back(g);
    touch(g.index());
    ++info.gates_added;
    structural = true;
  }

  void run_add_pi(const edit_op& op) {
    net.create_pi(op.name);
    ++info.pis_added;
  }

  void run_add_po(const edit_op& op) {
    net.create_po(resolve(op.a, op.line), op.name);
    ++info.pos_added;
  }
};

}  // namespace

edit_script parse_edit_script(const std::string& text) {
  edit_script script;
  std::istringstream in(text);
  std::string raw;
  unsigned line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    if (const auto hash = raw.find('#'); hash != std::string::npos) {
      raw.erase(hash);
    }
    std::istringstream line(raw);
    std::vector<std::string> tok;
    for (std::string t; line >> t;) tok.push_back(std::move(t));
    if (tok.empty()) continue;

    edit_op op;
    op.line = line_no;
    const std::string& kw = tok.front();
    const auto want = [&](std::size_t lo, std::size_t hi) {
      if (tok.size() < lo + 1 || tok.size() > hi + 1) {
        fail(line_no, "'" + kw + "' takes " + std::to_string(lo) +
                          (lo == hi ? "" : ".." + std::to_string(hi)) +
                          " operands");
      }
    };
    if (kw == "replace") {
      want(3, 3);
      op.k = edit_op::kind::replace_gate;
      op.target = parse_target(tok[1], edit_ref::kind::node, line_no);
      op.a = parse_ref(tok[2], line_no);
      op.b = parse_ref(tok[3], line_no);
    } else if (kw == "sub") {
      want(2, 2);
      op.k = edit_op::kind::substitute;
      op.target = parse_target(tok[1], edit_ref::kind::node, line_no);
      op.a = parse_ref(tok[2], line_no);
    } else if (kw == "po") {
      want(2, 2);
      op.k = edit_op::kind::set_po;
      if (!parse_u32(tok[1], op.target)) {
        fail(line_no, "bad output index '" + tok[1] + "'");
      }
      op.a = parse_ref(tok[2], line_no);
    } else if (kw == "and") {
      want(3, 3);
      op.k = edit_op::kind::new_gate;
      op.target = parse_target(tok[1], edit_ref::kind::new_gate, line_no);
      op.a = parse_ref(tok[2], line_no);
      op.b = parse_ref(tok[3], line_no);
    } else if (kw == "addpi") {
      want(0, 1);
      op.k = edit_op::kind::add_pi;
      if (tok.size() > 1) op.name = tok[1];
    } else if (kw == "addpo") {
      want(1, 2);
      op.k = edit_op::kind::add_po;
      op.a = parse_ref(tok[1], line_no);
      if (tok.size() > 2) op.name = tok[2];
    } else {
      fail(line_no, "unknown edit op '" + kw + "'");
    }
    script.ops.push_back(std::move(op));
  }
  return script;
}

replay_info apply_edit(aig& network, const edit_script& script) {
  replay state(network);
  for (const edit_op& op : script.ops) {
    switch (op.k) {
      case edit_op::kind::replace_gate: state.run_replace(op); break;
      case edit_op::kind::substitute: state.run_substitute(op); break;
      case edit_op::kind::set_po: state.run_set_po(op); break;
      case edit_op::kind::new_gate: state.run_new_gate(op); break;
      case edit_op::kind::add_pi: state.run_add_pi(op); break;
      case edit_op::kind::add_po: state.run_add_po(op); break;
    }
  }
  if (state.structural) network.rebuild_strash();
  return state.info;
}

replay_info apply_edit_text(aig& network, const std::string& text) {
  return apply_edit(network, parse_edit_script(text));
}

}  // namespace xsfq::eco
