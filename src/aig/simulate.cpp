#include "aig/simulate.hpp"

#include <algorithm>
#include <stdexcept>

namespace xsfq {

// ---------------------------------------------------------------------------
// Sweep kernels.  Free functions so that function multiversioning applies:
// on x86 each kernel is cloned for AVX2/AVX-512 with a baseline fallback and
// resolved once at load time — the 8-lane kernel then processes a whole
// plane row per vector instruction.  The fixed-width variants give the
// compiler compile-time trip counts; all planes are disjoint by topological
// order (gate outputs always sit above their fanins).
// ---------------------------------------------------------------------------

namespace {

using detail::sim_gate_op;

#if defined(__x86_64__) && defined(__has_attribute)
#if __has_attribute(target_clones)
#define XSFQ_SIM_CLONES \
  __attribute__((target_clones("default", "avx2", "avx512f")))
#endif
#endif
#ifndef XSFQ_SIM_CLONES
#define XSFQ_SIM_CLONES
#endif

#define XSFQ_DEFINE_SWEEP_KERNEL(NAME, W)                              \
  XSFQ_SIM_CLONES void NAME(const sim_gate_op* ops, std::size_t n,     \
                            std::uint64_t* values) {                   \
    for (std::size_t i = 0; i < n; ++i) {                              \
      const sim_gate_op op = ops[i];                                   \
      const std::uint64_t ma = -static_cast<std::uint64_t>(op.a & 1u); \
      const std::uint64_t mb = -static_cast<std::uint64_t>(op.b & 1u); \
      const std::uint64_t* const __restrict va =                       \
          values + static_cast<std::size_t>(op.a >> 1) * (W);          \
      const std::uint64_t* const __restrict vb =                       \
          values + static_cast<std::size_t>(op.b >> 1) * (W);          \
      std::uint64_t* const __restrict out =                            \
          values + static_cast<std::size_t>(op.out) * (W);             \
      for (unsigned w = 0; w < (W); ++w) {                             \
        out[w] = (va[w] ^ ma) & (vb[w] ^ mb);                          \
      }                                                                \
    }                                                                  \
  }

XSFQ_DEFINE_SWEEP_KERNEL(sweep_full_w1, 1)
XSFQ_DEFINE_SWEEP_KERNEL(sweep_full_w4, 4)
XSFQ_DEFINE_SWEEP_KERNEL(sweep_full_w8, 8)
XSFQ_DEFINE_SWEEP_KERNEL(sweep_full_w16, 16)
XSFQ_DEFINE_SWEEP_KERNEL(sweep_full_w32, 32)
#undef XSFQ_DEFINE_SWEEP_KERNEL

XSFQ_SIM_CLONES void sweep_full_generic(const sim_gate_op* ops, std::size_t n,
                                        std::uint64_t* values,
                                        unsigned width) {
  for (std::size_t i = 0; i < n; ++i) {
    const sim_gate_op op = ops[i];
    const std::uint64_t ma = -static_cast<std::uint64_t>(op.a & 1u);
    const std::uint64_t mb = -static_cast<std::uint64_t>(op.b & 1u);
    const std::uint64_t* const __restrict va =
        values + static_cast<std::size_t>(op.a >> 1) * width;
    const std::uint64_t* const __restrict vb =
        values + static_cast<std::size_t>(op.b >> 1) * width;
    std::uint64_t* const __restrict out =
        values + static_cast<std::size_t>(op.out) * width;
    for (unsigned w = 0; w < width; ++w) {
      out[w] = (va[w] ^ ma) & (vb[w] ^ mb);
    }
  }
}

struct sweep_totals {
  std::uint64_t evals = 0;
  std::uint64_t skipped = 0;
};

/// Incremental sweep: evaluates only gates whose fanin is dirty and
/// propagates the dirty flags.  One shape for every width (the incremental
/// path is already the cheap one; the per-gate branch dominates it).
XSFQ_SIM_CLONES sweep_totals sweep_incremental(const sim_gate_op* ops,
                                               std::size_t n,
                                               std::uint64_t* values,
                                               std::uint8_t* dirty,
                                               unsigned width) {
  sweep_totals totals;
  for (std::size_t i = 0; i < n; ++i) {
    const sim_gate_op op = ops[i];
    if ((dirty[op.a >> 1] | dirty[op.b >> 1]) == 0) {
      totals.skipped += width;
      continue;
    }
    dirty[op.out] = 1;
    const std::uint64_t ma = -static_cast<std::uint64_t>(op.a & 1u);
    const std::uint64_t mb = -static_cast<std::uint64_t>(op.b & 1u);
    const std::uint64_t* const __restrict va =
        values + static_cast<std::size_t>(op.a >> 1) * width;
    const std::uint64_t* const __restrict vb =
        values + static_cast<std::size_t>(op.b >> 1) * width;
    std::uint64_t* const __restrict out =
        values + static_cast<std::size_t>(op.out) * width;
    for (unsigned w = 0; w < width; ++w) {
      out[w] = (va[w] ^ ma) & (vb[w] ^ mb);
    }
    totals.evals += width;
  }
  return totals;
}

}  // namespace

// ---------------------------------------------------------------------------
// sim_engine
// ---------------------------------------------------------------------------

void sim_engine::set_width(unsigned width) {
  width_ = std::max(1u, width);
  // The plane geometry changed; the engine must be re-attached (never touch
  // the previous network here: recycled thread-local engines may outlive it).
  net_ = nullptr;
  valid_ = false;
}

void sim_engine::attach(const aig& network) {
  net_ = &network;
  values_.resize(network.size() * static_cast<std::size_t>(width_));
  // The constant node's plane is written once here; gates are overwritten by
  // every sweep and CI planes by the caller, so no full clear is needed.
  std::fill_n(values_.begin(), width_, 0u);
  program_.clear();
  program_.reserve(network.num_gates());
  network.foreach_gate([&](aig::node_index n) {
    program_.push_back(
        detail::sim_gate_op{n, network.fanin0(n).raw(),
                            network.fanin1(n).raw()});
  });
  dirty_.assign(network.size(), 0);
  any_dirty_ = false;
  valid_ = false;
}

std::span<std::uint64_t> sim_engine::ci_words(std::size_t i) {
  if (net_ == nullptr) {
    throw std::logic_error("sim_engine: attach before ci_words");
  }
  const aig::node_index n = net_->ci(i).index();
  dirty_[n] = 1;
  any_dirty_ = true;
  return {values_.data() + static_cast<std::size_t>(n) * width_, width_};
}

void sim_engine::randomize_inputs(rng& gen) {
  for (std::size_t i = 0; i < net_->num_cis(); ++i) {
    for (auto& word : ci_words(i)) word = gen();
  }
}

void sim_engine::sweep(bool incremental) {
  if (net_ == nullptr) {
    throw std::logic_error("sim_engine: simulate before attach");
  }
  const sim_gate_op* const ops = program_.data();
  const std::size_t n = program_.size();
  std::uint64_t* const values = values_.data();
  if (incremental) {
    const sweep_totals totals =
        sweep_incremental(ops, n, values, dirty_.data(), width_);
    counters_.node_evals += totals.evals;
    counters_.node_evals_skipped += totals.skipped;
  } else {
    switch (width_) {
      case 1: sweep_full_w1(ops, n, values); break;
      case 4: sweep_full_w4(ops, n, values); break;
      case 8: sweep_full_w8(ops, n, values); break;
      case 16: sweep_full_w16(ops, n, values); break;
      case 32: sweep_full_w32(ops, n, values); break;
      default: sweep_full_generic(ops, n, values, width_); break;
    }
    counters_.node_evals += n * width_;
  }
  ++counters_.traversals;
  counters_.pattern_words += width_;
  std::fill(dirty_.begin(), dirty_.end(), 0);
  any_dirty_ = false;
  valid_ = true;
}

void sim_engine::simulate() { sweep(/*incremental=*/false); }

void sim_engine::resimulate() {
  // Before the first full sweep (or right after attach) there is no valid
  // plane to patch incrementally; fall back to the full sweep.
  if (!valid_) {
    sweep(false);
    return;
  }
  if (!any_dirty_) return;  // nothing changed since the last sweep
  sweep(true);
}

void sim_engine::co_words(std::size_t i, std::span<std::uint64_t> out) const {
  const signal s = net_->co(i);
  const std::uint64_t mask = s.is_complemented() ? ~std::uint64_t{0} : 0;
  const auto plane = node_words(s.index());
  for (unsigned w = 0; w < width_; ++w) out[w] = plane[w] ^ mask;
}

std::uint64_t sim_engine::co_word(std::size_t i, unsigned lane) const {
  const signal s = net_->co(i);
  const std::uint64_t v = node_words(s.index())[lane];
  return s.is_complemented() ? ~v : v;
}

bool sim_engine::co_equal(const sim_engine& other) const {
  if (width_ != other.width_ || net_->num_cos() != other.net_->num_cos()) {
    return false;
  }
  for (std::size_t i = 0; i < net_->num_cos(); ++i) {
    const signal sa = net_->co(i);
    const signal sb = other.net_->co(i);
    const std::uint64_t ma = sa.is_complemented() ? ~std::uint64_t{0} : 0;
    const std::uint64_t mb = sb.is_complemented() ? ~std::uint64_t{0} : 0;
    const auto pa = node_words(sa.index());
    const auto pb = other.node_words(sb.index());
    for (unsigned w = 0; w < width_; ++w) {
      if ((pa[w] ^ ma) != (pb[w] ^ mb)) return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// equivalence_checker
// ---------------------------------------------------------------------------

bool equivalence_checker::check(const aig& a, const aig& b, unsigned rounds,
                                std::uint64_t seed) {
  if (a.num_cis() != b.num_cis() || a.num_cos() != b.num_cos()) return false;
  left_.attach(a);
  right_.attach(b);
  const unsigned width = left_.width();
  rng gen(seed);
  unsigned done = 0;
  while (done < rounds) {
    const unsigned chunk = std::min(width, rounds - done);
    for (std::size_t i = 0; i < a.num_cis(); ++i) {
      const auto wa = left_.ci_words(i);
      const auto wb = right_.ci_words(i);
      for (unsigned w = 0; w < chunk; ++w) {
        const std::uint64_t word = gen();
        wa[w] = word;
        wb[w] = word;
      }
      // Unused tail lanes carry identical (zero) patterns on both sides, so
      // the full-plane comparison below stays sound.
      for (unsigned w = chunk; w < width; ++w) {
        wa[w] = 0;
        wb[w] = 0;
      }
    }
    left_.simulate();
    right_.simulate();
    if (!left_.co_equal(right_)) return false;
    done += chunk;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Free functions, all layered over a recycled per-thread engine.
// ---------------------------------------------------------------------------

namespace {

/// Fills the CI planes of `engine` with projection-variable patterns: CI i
/// becomes variable x_i of a truth table over all CIs (the engine width must
/// be the table word count).
void fill_var_patterns(sim_engine& engine, const aig& network) {
  const auto num_vars = static_cast<unsigned>(network.num_cis());
  const unsigned width = engine.width();
  for (std::size_t i = 0; i < network.num_cis(); ++i) {
    const auto words = engine.ci_words(i);
    if (i < truth_table::small_vars) {
      std::uint64_t word = truth_table::var_masks[i];
      if (num_vars < truth_table::small_vars) {
        word &= (std::uint64_t{1} << (std::uint64_t{1} << num_vars)) - 1;
      }
      for (unsigned w = 0; w < width; ++w) words[w] = word;
    } else {
      for (unsigned w = 0; w < width; ++w) {
        words[w] = ((w >> (i - truth_table::small_vars)) & 1u)
                       ? ~std::uint64_t{0}
                       : 0;
      }
    }
  }
}

unsigned table_width(unsigned num_vars) {
  return num_vars <= truth_table::small_vars
             ? 1u
             : 1u << (num_vars - truth_table::small_vars);
}

}  // namespace

std::vector<std::uint64_t> simulate64(
    const aig& network, std::span<const std::uint64_t> ci_patterns) {
  if (ci_patterns.size() != network.num_cis()) {
    throw std::invalid_argument("simulate64: pattern count mismatch");
  }
  thread_local sim_engine engine(1);  // function-local: width never drifts
  engine.attach(network);
  for (std::size_t i = 0; i < network.num_cis(); ++i) {
    engine.ci_words(i)[0] = ci_patterns[i];
  }
  engine.simulate();
  std::vector<std::uint64_t> result(network.num_cos());
  for (std::size_t i = 0; i < network.num_cos(); ++i) {
    result[i] = engine.co_word(i, 0);
  }
  return result;
}

std::vector<truth_table> compute_co_tables(const aig& network) {
  const auto num_vars = static_cast<unsigned>(network.num_cis());
  if (num_vars > truth_table::max_vars) {
    throw std::invalid_argument("compute_co_tables: too many inputs");
  }
  thread_local sim_engine engine(1);
  const unsigned width = table_width(num_vars);
  if (engine.width() != width) engine.set_width(width);
  engine.attach(network);
  fill_var_patterns(engine, network);
  engine.simulate();

  std::vector<truth_table> result;
  result.reserve(network.num_cos());
  for (std::size_t i = 0; i < network.num_cos(); ++i) {
    if (num_vars <= truth_table::small_vars) {
      result.push_back(
          truth_table::from_word(num_vars, engine.co_word(i, 0)));
    } else {
      truth_table t(num_vars);
      engine.co_words(i, t.words());
      result.push_back(std::move(t));
    }
  }
  return result;
}

bool exhaustive_equivalent(const aig& a, const aig& b) {
  if (a.num_cis() != b.num_cis() || a.num_cos() != b.num_cos()) return false;
  const auto num_vars = static_cast<unsigned>(a.num_cis());
  if (num_vars > truth_table::max_vars) {
    throw std::invalid_argument("exhaustive_equivalent: too many inputs");
  }
  thread_local sim_engine left(1);
  thread_local sim_engine right(1);
  const unsigned width = table_width(num_vars);
  if (left.width() != width) left.set_width(width);
  if (right.width() != width) right.set_width(width);
  left.attach(a);
  right.attach(b);
  fill_var_patterns(left, a);
  fill_var_patterns(right, b);
  left.simulate();
  right.simulate();
  // Tail lanes of the <6-variable case evaluate the all-zeros minterm on
  // both sides (masked projection patterns), so plane equality is exact.
  return left.co_equal(right);
}

bool random_equivalent(const aig& a, const aig& b, unsigned rounds,
                       std::uint64_t seed) {
  thread_local equivalence_checker checker;
  return checker.check(a, b, rounds, seed);
}

// ---------------------------------------------------------------------------
// Sequential simulation.
// ---------------------------------------------------------------------------

sequential_simulator::sequential_simulator(const aig& network)
    : network_(network) {
  if (!network.is_well_formed()) {
    throw std::invalid_argument(
        "sequential_simulator: register inputs not all connected");
  }
  reset();
}

void sequential_simulator::reset() {
  state_.resize(network_.num_registers());
  for (std::size_t i = 0; i < state_.size(); ++i) {
    state_[i] = network_.register_at(i).init;
  }
}

std::vector<bool> sequential_simulator::step(const std::vector<bool>& pi_values) {
  if (pi_values.size() != network_.num_pis()) {
    throw std::invalid_argument("sequential_simulator: PI count mismatch");
  }
  std::vector<std::uint64_t> ci(network_.num_cis());
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    ci[i] = pi_values[i] ? ~std::uint64_t{0} : 0;
  }
  for (std::size_t i = 0; i < state_.size(); ++i) {
    ci[network_.num_pis() + i] = state_[i] ? ~std::uint64_t{0} : 0;
  }
  const auto co = simulate64(network_, ci);
  std::vector<bool> outputs(network_.num_pos());
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    outputs[i] = (co[i] & 1u) != 0;
  }
  for (std::size_t i = 0; i < state_.size(); ++i) {
    state_[i] = (co[network_.num_pos() + i] & 1u) != 0;
  }
  return outputs;
}

bool random_sequential_equivalent(const aig& a, const aig& b,
                                  unsigned num_traces,
                                  unsigned cycles_per_trace,
                                  std::uint64_t seed) {
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) return false;
  rng gen(seed);
  sequential_simulator sim_a(a);
  sequential_simulator sim_b(b);
  std::vector<bool> pis(a.num_pis());
  for (unsigned t = 0; t < num_traces; ++t) {
    sim_a.reset();
    sim_b.reset();
    for (unsigned c = 0; c < cycles_per_trace; ++c) {
      for (std::size_t i = 0; i < pis.size(); ++i) pis[i] = gen.flip();
      if (sim_a.step(pis) != sim_b.step(pis)) return false;
    }
  }
  return true;
}

}  // namespace xsfq
