#include "aig/simulate.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace xsfq {

std::vector<std::uint64_t> simulate64(
    const aig& network, std::span<const std::uint64_t> ci_patterns) {
  if (ci_patterns.size() != network.num_cis()) {
    throw std::invalid_argument("simulate64: pattern count mismatch");
  }
  std::vector<std::uint64_t> value(network.size(), 0);
  network.foreach_ci([&](signal s, std::size_t i) {
    value[s.index()] = ci_patterns[i];
  });
  network.foreach_gate([&](aig::node_index n) {
    const signal a = network.fanin0(n);
    const signal b = network.fanin1(n);
    const std::uint64_t va =
        a.is_complemented() ? ~value[a.index()] : value[a.index()];
    const std::uint64_t vb =
        b.is_complemented() ? ~value[b.index()] : value[b.index()];
    value[n] = va & vb;
  });
  std::vector<std::uint64_t> result(network.num_cos());
  network.foreach_co([&](signal s, std::size_t i) {
    result[i] = s.is_complemented() ? ~value[s.index()] : value[s.index()];
  });
  return result;
}

std::vector<truth_table> compute_co_tables(const aig& network) {
  const auto num_vars = static_cast<unsigned>(network.num_cis());
  if (num_vars > truth_table::max_vars) {
    throw std::invalid_argument("compute_co_tables: too many inputs");
  }
  std::vector<truth_table> value(network.size(), truth_table(num_vars));
  network.foreach_ci([&](signal s, std::size_t i) {
    value[s.index()] = truth_table::nth_var(num_vars, static_cast<unsigned>(i));
  });
  network.foreach_gate([&](aig::node_index n) {
    const signal a = network.fanin0(n);
    const signal b = network.fanin1(n);
    const truth_table ta =
        a.is_complemented() ? ~value[a.index()] : value[a.index()];
    const truth_table tb =
        b.is_complemented() ? ~value[b.index()] : value[b.index()];
    value[n] = ta & tb;
  });
  std::vector<truth_table> result;
  result.reserve(network.num_cos());
  network.foreach_co([&](signal s, std::size_t) {
    result.push_back(s.is_complemented() ? ~value[s.index()]
                                         : value[s.index()]);
  });
  return result;
}

bool exhaustive_equivalent(const aig& a, const aig& b) {
  if (a.num_cis() != b.num_cis() || a.num_cos() != b.num_cos()) return false;
  return compute_co_tables(a) == compute_co_tables(b);
}

bool random_equivalent(const aig& a, const aig& b, unsigned rounds,
                       std::uint64_t seed) {
  if (a.num_cis() != b.num_cis() || a.num_cos() != b.num_cos()) return false;
  rng gen(seed);
  std::vector<std::uint64_t> patterns(a.num_cis());
  for (unsigned round = 0; round < rounds; ++round) {
    for (auto& p : patterns) p = gen();
    if (simulate64(a, patterns) != simulate64(b, patterns)) return false;
  }
  return true;
}

sequential_simulator::sequential_simulator(const aig& network)
    : network_(network) {
  if (!network.is_well_formed()) {
    throw std::invalid_argument(
        "sequential_simulator: register inputs not all connected");
  }
  reset();
}

void sequential_simulator::reset() {
  state_.resize(network_.num_registers());
  for (std::size_t i = 0; i < state_.size(); ++i) {
    state_[i] = network_.register_at(i).init;
  }
}

std::vector<bool> sequential_simulator::step(const std::vector<bool>& pi_values) {
  if (pi_values.size() != network_.num_pis()) {
    throw std::invalid_argument("sequential_simulator: PI count mismatch");
  }
  std::vector<std::uint64_t> ci(network_.num_cis());
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    ci[i] = pi_values[i] ? ~std::uint64_t{0} : 0;
  }
  for (std::size_t i = 0; i < state_.size(); ++i) {
    ci[network_.num_pis() + i] = state_[i] ? ~std::uint64_t{0} : 0;
  }
  const auto co = simulate64(network_, ci);
  std::vector<bool> outputs(network_.num_pos());
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    outputs[i] = (co[i] & 1u) != 0;
  }
  for (std::size_t i = 0; i < state_.size(); ++i) {
    state_[i] = (co[network_.num_pos() + i] & 1u) != 0;
  }
  return outputs;
}

bool random_sequential_equivalent(const aig& a, const aig& b,
                                  unsigned num_traces,
                                  unsigned cycles_per_trace,
                                  std::uint64_t seed) {
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) return false;
  rng gen(seed);
  sequential_simulator sim_a(a);
  sequential_simulator sim_b(b);
  std::vector<bool> pis(a.num_pis());
  for (unsigned t = 0; t < num_traces; ++t) {
    sim_a.reset();
    sim_b.reset();
    for (unsigned c = 0; c < cycles_per_trace; ++c) {
      for (std::size_t i = 0; i < pis.size(); ++i) pis[i] = gen.flip();
      if (sim_a.step(pis) != sim_b.step(pis)) return false;
    }
  }
  return true;
}

}  // namespace xsfq
