#include "aig/aig.hpp"

#include <algorithm>

#include "util/hash.hpp"

namespace xsfq {
namespace {
std::string default_name(const char* prefix, std::size_t index) {
  std::string s(prefix);
  s += std::to_string(index);
  return s;
}
}  // namespace

aig::aig() {
  // Node 0 is the constant-0 node.
  nodes_.push_back(node{});
}

signal aig::create_pi(std::string name) {
  node n;
  n.type = node_type::pi;
  n.ci_ordinal = static_cast<std::uint32_t>(pis_.size());
  const auto index = static_cast<node_index>(nodes_.size());
  nodes_.push_back(n);
  pis_.emplace_back(index, false);
  if (name.empty()) name = default_name("pi", pis_.size() - 1);
  pi_names_.push_back(std::move(name));
  return pis_.back();
}

std::size_t aig::create_po(signal f, std::string name) {
  if (f.index() >= nodes_.size()) {
    throw std::invalid_argument("aig::create_po: dangling signal");
  }
  pos_.push_back(f);
  if (name.empty()) name = default_name("po", pos_.size() - 1);
  po_names_.push_back(std::move(name));
  return pos_.size() - 1;
}

signal aig::create_register_output(bool init, std::string name) {
  node n;
  n.type = node_type::register_output;
  n.ci_ordinal = static_cast<std::uint32_t>(registers_.size());
  const auto index = static_cast<node_index>(nodes_.size());
  nodes_.push_back(n);
  register_info reg;
  reg.output_node = index;
  reg.init = init;
  registers_.push_back(reg);
  if (name.empty()) name = default_name("r", registers_.size() - 1);
  register_names_.push_back(std::move(name));
  return signal(index, false);
}

void aig::set_register_input(std::size_t reg, signal f) {
  if (f.index() >= nodes_.size()) {
    throw std::invalid_argument("aig::set_register_input: dangling signal");
  }
  registers_.at(reg).input = f;
  registers_.at(reg).input_set = true;
}

signal aig::create_and(signal a, signal b) {
  if (a.index() >= nodes_.size() || b.index() >= nodes_.size()) {
    throw std::invalid_argument("aig::create_and: dangling fanin");
  }
  // Trivial cases.
  if (a == b) return a;
  if (a == !b) return get_constant(false);
  if (a == get_constant(false) || b == get_constant(false)) {
    return get_constant(false);
  }
  if (a == get_constant(true)) return b;
  if (b == get_constant(true)) return a;
  // Canonical fanin order for hashing.
  if (b.raw() < a.raw()) std::swap(a, b);

  const std::uint64_t key = strash_key(a, b);
  if (const auto it = strash_.find(key); it != strash_.end()) {
    return signal(it->second, false);
  }
  node n;
  n.type = node_type::gate;
  n.fanin0 = a;
  n.fanin1 = b;
  const auto index = static_cast<node_index>(nodes_.size());
  nodes_.push_back(n);
  strash_.emplace(key, index);
  ++num_gates_;
  return signal(index, false);
}

std::optional<signal> aig::find_and(signal a, signal b) const {
  // Mirror create_and's trivial cases so probing matches construction.
  if (a == b) return a;
  if (a == !b) return get_constant(false);
  if (a == get_constant(false) || b == get_constant(false)) {
    return get_constant(false);
  }
  if (a == get_constant(true)) return b;
  if (b == get_constant(true)) return a;
  if (b.raw() < a.raw()) std::swap(a, b);
  if (const auto it = strash_.find(strash_key(a, b)); it != strash_.end()) {
    return signal(it->second, false);
  }
  return std::nullopt;
}

signal aig::create_xor(signal a, signal b) {
  // a ^ b = !(!(a & !b) & !(!a & b))
  return !create_and(!create_and(a, !b), !create_and(!a, b));
}

signal aig::create_mux(signal sel, signal then_f, signal else_f) {
  return !create_and(!create_and(sel, then_f), !create_and(!sel, else_f));
}

signal aig::create_maj(signal a, signal b, signal c) {
  return !create_and(!create_and(a, b),
                     !create_and(c, !create_and(!a, !b)));
}

namespace {
template <typename Combine>
signal reduce_balanced(std::span<const signal> fs, signal empty_value,
                       Combine&& combine) {
  if (fs.empty()) return empty_value;
  std::vector<signal> layer(fs.begin(), fs.end());
  while (layer.size() > 1) {
    std::vector<signal> next;
    next.reserve((layer.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(combine(layer[i], layer[i + 1]));
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  return layer.front();
}
}  // namespace

signal aig::create_and_n(std::span<const signal> fs) {
  return reduce_balanced(fs, get_constant(true),
                         [this](signal a, signal b) { return create_and(a, b); });
}

signal aig::create_or_n(std::span<const signal> fs) {
  return reduce_balanced(fs, get_constant(false),
                         [this](signal a, signal b) { return create_or(a, b); });
}

signal aig::create_xor_n(std::span<const signal> fs) {
  return reduce_balanced(fs, get_constant(false),
                         [this](signal a, signal b) { return create_xor(a, b); });
}

std::vector<std::uint32_t> aig::compute_levels() const {
  std::vector<std::uint32_t> level(nodes_.size(), 0);
  for (node_index n = 0; n < nodes_.size(); ++n) {
    if (is_gate(n)) {
      level[n] = 1 + std::max(level[nodes_[n].fanin0.index()],
                              level[nodes_[n].fanin1.index()]);
    }
  }
  return level;
}

std::uint32_t aig::depth() const {
  const auto level = compute_levels();
  std::uint32_t d = 0;
  for (std::size_t i = 0; i < num_cos(); ++i) {
    d = std::max(d, level[co(i).index()]);
  }
  return d;
}

std::vector<std::uint32_t> aig::compute_fanout_counts() const {
  std::vector<std::uint32_t> fanout(nodes_.size(), 0);
  for (node_index n = 0; n < nodes_.size(); ++n) {
    if (is_gate(n)) {
      ++fanout[nodes_[n].fanin0.index()];
      ++fanout[nodes_[n].fanin1.index()];
    }
  }
  for (std::size_t i = 0; i < num_cos(); ++i) ++fanout[co(i).index()];
  return fanout;
}

aig aig::cleanup() const {
  aig result;
  std::vector<signal> map(nodes_.size(), result.get_constant(false));

  // Reachability from combinational outputs.
  std::vector<bool> reachable(nodes_.size(), false);
  std::vector<node_index> stack;
  for (std::size_t i = 0; i < num_cos(); ++i) {
    stack.push_back(co(i).index());
  }
  while (!stack.empty()) {
    const node_index n = stack.back();
    stack.pop_back();
    if (reachable[n]) continue;
    reachable[n] = true;
    if (is_gate(n)) {
      stack.push_back(nodes_[n].fanin0.index());
      stack.push_back(nodes_[n].fanin1.index());
    } else if (is_register_output(n)) {
      const auto& reg = registers_[nodes_[n].ci_ordinal];
      if (reg.input_set) stack.push_back(reg.input.index());
    }
  }

  // All PIs are kept (interface must not change); registers are kept too so
  // that register ordinals remain stable for sequential flows.
  for (std::size_t i = 0; i < pis_.size(); ++i) {
    map[pis_[i].index()] = result.create_pi(pi_names_[i]);
  }
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    map[registers_[i].output_node] =
        result.create_register_output(registers_[i].init, register_names_[i]);
  }
  for (node_index n = 0; n < nodes_.size(); ++n) {
    if (!is_gate(n) || !reachable[n]) continue;
    const signal a = map[nodes_[n].fanin0.index()] ^
                     nodes_[n].fanin0.is_complemented();
    const signal b = map[nodes_[n].fanin1.index()] ^
                     nodes_[n].fanin1.is_complemented();
    map[n] = result.create_and(a, b);
  }
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    result.create_po(map[pos_[i].index()] ^ pos_[i].is_complemented(),
                     po_names_[i]);
  }
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    if (registers_[i].input_set) {
      result.set_register_input(i, map[registers_[i].input.index()] ^
                                       registers_[i].input.is_complemented());
    }
  }
  return result;
}

bool aig::is_well_formed() const {
  return std::all_of(registers_.begin(), registers_.end(),
                     [](const register_info& r) { return r.input_set; });
}

std::uint64_t aig::content_hash() const {
  std::uint64_t h = 0x5851F42D4C957F2Dull;
  h = hash_mix(h, nodes_.size());
  h = hash_mix(h, num_pis());
  h = hash_mix(h, num_pos());
  h = hash_mix(h, num_registers());
  for (const node& n : nodes_) {
    h = hash_mix(h, (std::uint64_t{n.fanin0.raw()} << 32) | n.fanin1.raw());
    h = hash_mix(h, (std::uint64_t{static_cast<std::uint8_t>(n.type)} << 32) |
                        n.ci_ordinal);
  }
  for (const signal s : pos_) h = hash_mix(h, s.raw());
  for (const register_info& r : registers_) {
    h = hash_mix(h, (std::uint64_t{r.output_node} << 32) | r.input.raw());
    h = hash_mix(h, (std::uint64_t{r.init} << 1) | std::uint64_t{r.input_set});
  }
  for (const auto& name : pi_names_) h = hash_mix_str(h, name);
  for (const auto& name : po_names_) h = hash_mix_str(h, name);
  for (const auto& name : register_names_) h = hash_mix_str(h, name);
  return h;
}

}  // namespace xsfq
