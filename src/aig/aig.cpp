#include "aig/aig.hpp"

#include <algorithm>

#include "util/hash.hpp"

namespace xsfq {
namespace {
std::string default_name(const char* prefix, std::size_t index) {
  std::string s(prefix);
  s += std::to_string(index);
  return s;
}

std::uint64_t mix_strash_hash(std::uint64_t key) {
  // splitmix64 finalizer: cheap and well distributed for packed fanin pairs.
  key ^= key >> 30;
  key *= 0xBF58476D1CE4E5B9ull;
  key ^= key >> 27;
  key *= 0x94D049BB133111EBull;
  key ^= key >> 31;
  return key;
}
}  // namespace

aig::aig() {
  // Node 0 is the constant-0 node.
  nodes_.push_back(node{});
}

void aig::reset() {
  nodes_.clear();
  nodes_.push_back(node{});
  pis_.clear();
  pos_.clear();
  registers_.clear();
  pi_names_.clear();
  po_names_.clear();
  register_names_.clear();
  std::fill(strash_keys_.begin(), strash_keys_.end(), 0);
  strash_used_ = 0;
  num_gates_ = 0;
}

// ----- structural hash -------------------------------------------------------

std::size_t aig::strash_slot(std::uint64_t key) const {
  return mix_strash_hash(key) & (strash_keys_.size() - 1);
}

std::optional<aig::node_index> aig::strash_find(std::uint64_t key) const {
  if (strash_keys_.empty()) return std::nullopt;
  std::size_t slot = strash_slot(key);
  while (strash_keys_[slot] != 0) {
    if (strash_keys_[slot] == key) return strash_values_[slot];
    slot = (slot + 1) & (strash_keys_.size() - 1);
  }
  return std::nullopt;
}

void aig::strash_grow(std::size_t new_capacity) {
  std::vector<std::uint64_t> old_keys = std::move(strash_keys_);
  std::vector<node_index> old_values = std::move(strash_values_);
  strash_keys_.assign(new_capacity, 0);
  strash_values_.assign(new_capacity, 0);
  for (std::size_t i = 0; i < old_keys.size(); ++i) {
    if (old_keys[i] == 0) continue;
    std::size_t slot = strash_slot(old_keys[i]);
    while (strash_keys_[slot] != 0) {
      slot = (slot + 1) & (new_capacity - 1);
    }
    strash_keys_[slot] = old_keys[i];
    strash_values_[slot] = old_values[i];
  }
}

void aig::strash_insert(std::uint64_t key, node_index value) {
  // Grow at 70% load; capacity is always a power of two.
  if (strash_keys_.empty() ||
      (strash_used_ + 1) * 10 > strash_keys_.size() * 7) {
    strash_grow(strash_keys_.empty() ? 64 : strash_keys_.size() * 2);
  }
  std::size_t slot = strash_slot(key);
  while (strash_keys_[slot] != 0) {
    slot = (slot + 1) & (strash_keys_.size() - 1);
  }
  strash_keys_[slot] = key;
  strash_values_[slot] = value;
  ++strash_used_;
}

void aig::reserve(std::size_t expected_nodes) {
  nodes_.reserve(expected_nodes + 1);
  std::size_t capacity = 64;
  while (expected_nodes * 10 > capacity * 7) capacity <<= 1;
  if (capacity > strash_keys_.size()) strash_grow(capacity);
}

// ----- construction ----------------------------------------------------------

signal aig::create_pi(std::string name) {
  node n;
  n.type = node_type::pi;
  n.ci_ordinal = static_cast<std::uint32_t>(pis_.size());
  const auto index = static_cast<node_index>(nodes_.size());
  nodes_.push_back(n);
  pis_.emplace_back(index, false);
  if (name.empty()) name = default_name("pi", pis_.size() - 1);
  pi_names_.push_back(std::move(name));
  return pis_.back();
}

std::size_t aig::create_po(signal f, std::string name) {
  if (f.index() >= nodes_.size()) {
    throw std::invalid_argument("aig::create_po: dangling signal");
  }
  pos_.push_back(f);
  if (name.empty()) name = default_name("po", pos_.size() - 1);
  po_names_.push_back(std::move(name));
  return pos_.size() - 1;
}

signal aig::create_register_output(bool init, std::string name) {
  node n;
  n.type = node_type::register_output;
  n.ci_ordinal = static_cast<std::uint32_t>(registers_.size());
  const auto index = static_cast<node_index>(nodes_.size());
  nodes_.push_back(n);
  register_info reg;
  reg.output_node = index;
  reg.init = init;
  registers_.push_back(reg);
  if (name.empty()) name = default_name("r", registers_.size() - 1);
  register_names_.push_back(std::move(name));
  return signal(index, false);
}

void aig::set_register_input(std::size_t reg, signal f) {
  if (f.index() >= nodes_.size()) {
    throw std::invalid_argument("aig::set_register_input: dangling signal");
  }
  registers_.at(reg).input = f;
  registers_.at(reg).input_set = true;
}

signal aig::create_and(signal a, signal b) {
  if (a.index() >= nodes_.size() || b.index() >= nodes_.size()) {
    throw std::invalid_argument("aig::create_and: dangling fanin");
  }
  // Trivial cases.
  if (a == b) return a;
  if (a == !b) return get_constant(false);
  if (a == get_constant(false) || b == get_constant(false)) {
    return get_constant(false);
  }
  if (a == get_constant(true)) return b;
  if (b == get_constant(true)) return a;
  // Canonical fanin order for hashing.
  if (b.raw() < a.raw()) std::swap(a, b);

  const std::uint64_t key = strash_key(a, b);
  if (const auto hit = strash_find(key)) {
    return signal(*hit, false);
  }
  node n;
  n.type = node_type::gate;
  n.fanin0 = a;
  n.fanin1 = b;
  const auto index = static_cast<node_index>(nodes_.size());
  nodes_.push_back(n);
  strash_insert(key, index);
  ++num_gates_;
  return signal(index, false);
}

signal aig::append_gate_raw(signal a, signal b) {
  if (a.index() >= nodes_.size() || b.index() >= nodes_.size()) {
    throw std::invalid_argument("aig::append_gate_raw: dangling fanin");
  }
  if (a.index() == b.index() || a.index() == 0 || b.index() == 0) {
    throw std::invalid_argument("aig::append_gate_raw: degenerate fanin pair");
  }
  if (b.raw() < a.raw()) std::swap(a, b);
  node n;
  n.type = node_type::gate;
  n.fanin0 = a;
  n.fanin1 = b;
  const auto index = static_cast<node_index>(nodes_.size());
  nodes_.push_back(n);
  ++num_gates_;
  return signal(index, false);
}

void aig::set_gate_fanins(node_index n, signal a, signal b) {
  if (n >= nodes_.size() || !is_gate(n)) {
    throw std::invalid_argument("aig::set_gate_fanins: not a gate");
  }
  if (a.index() >= n || b.index() >= n) {
    throw std::invalid_argument("aig::set_gate_fanins: fanin not earlier");
  }
  if (a.index() == b.index() || a.index() == 0 || b.index() == 0) {
    throw std::invalid_argument("aig::set_gate_fanins: degenerate fanin pair");
  }
  if (b.raw() < a.raw()) std::swap(a, b);
  nodes_[n].fanin0 = a;
  nodes_[n].fanin1 = b;
}

void aig::rebuild_strash() {
  std::fill(strash_keys_.begin(), strash_keys_.end(), 0);
  strash_used_ = 0;
  for (node_index n = 0; n < nodes_.size(); ++n) {
    if (!is_gate(n)) continue;
    const std::uint64_t key = strash_key(nodes_[n].fanin0, nodes_[n].fanin1);
    if (!strash_find(key)) strash_insert(key, n);
  }
}

std::optional<signal> aig::find_and(signal a, signal b) const {
  // Mirror create_and's trivial cases so probing matches construction.
  if (a == b) return a;
  if (a == !b) return get_constant(false);
  if (a == get_constant(false) || b == get_constant(false)) {
    return get_constant(false);
  }
  if (a == get_constant(true)) return b;
  if (b == get_constant(true)) return a;
  if (b.raw() < a.raw()) std::swap(a, b);
  if (const auto hit = strash_find(strash_key(a, b))) {
    return signal(*hit, false);
  }
  return std::nullopt;
}

signal aig::create_xor(signal a, signal b) {
  // a ^ b = !(!(a & !b) & !(!a & b))
  return !create_and(!create_and(a, !b), !create_and(!a, b));
}

signal aig::create_mux(signal sel, signal then_f, signal else_f) {
  return !create_and(!create_and(sel, then_f), !create_and(!sel, else_f));
}

signal aig::create_maj(signal a, signal b, signal c) {
  return !create_and(!create_and(a, b),
                     !create_and(c, !create_and(!a, !b)));
}

namespace {
template <typename Combine>
signal reduce_balanced(std::span<const signal> fs, signal empty_value,
                       Combine&& combine) {
  if (fs.empty()) return empty_value;
  std::vector<signal> layer(fs.begin(), fs.end());
  while (layer.size() > 1) {
    std::vector<signal> next;
    next.reserve((layer.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(combine(layer[i], layer[i + 1]));
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  return layer.front();
}
}  // namespace

signal aig::create_and_n(std::span<const signal> fs) {
  return reduce_balanced(fs, get_constant(true),
                         [this](signal a, signal b) { return create_and(a, b); });
}

signal aig::create_or_n(std::span<const signal> fs) {
  return reduce_balanced(fs, get_constant(false),
                         [this](signal a, signal b) { return create_or(a, b); });
}

signal aig::create_xor_n(std::span<const signal> fs) {
  return reduce_balanced(fs, get_constant(false),
                         [this](signal a, signal b) { return create_xor(a, b); });
}

void aig::compute_levels_into(std::vector<std::uint32_t>& levels) const {
  levels.assign(nodes_.size(), 0);
  for (node_index n = 0; n < nodes_.size(); ++n) {
    if (is_gate(n)) {
      levels[n] = 1 + std::max(levels[nodes_[n].fanin0.index()],
                               levels[nodes_[n].fanin1.index()]);
    }
  }
}

std::vector<std::uint32_t> aig::compute_levels() const {
  std::vector<std::uint32_t> level;
  compute_levels_into(level);
  return level;
}

std::uint32_t aig::depth() const {
  const auto level = compute_levels();
  std::uint32_t d = 0;
  for (std::size_t i = 0; i < num_cos(); ++i) {
    d = std::max(d, level[co(i).index()]);
  }
  return d;
}

void aig::compute_fanout_counts_into(
    std::vector<std::uint32_t>& fanout) const {
  fanout.assign(nodes_.size(), 0);
  for (node_index n = 0; n < nodes_.size(); ++n) {
    if (is_gate(n)) {
      ++fanout[nodes_[n].fanin0.index()];
      ++fanout[nodes_[n].fanin1.index()];
    }
  }
  for (std::size_t i = 0; i < num_cos(); ++i) ++fanout[co(i).index()];
}

std::vector<std::uint32_t> aig::compute_fanout_counts() const {
  std::vector<std::uint32_t> fanout;
  compute_fanout_counts_into(fanout);
  return fanout;
}

std::size_t aig::mark_reachable(compaction_scratch& scratch) const {
  scratch.reachable.assign(nodes_.size(), 0);
  scratch.stack.clear();
  for (std::size_t i = 0; i < num_cos(); ++i) {
    scratch.stack.push_back(co(i).index());
  }
  std::size_t reachable_gates = 0;
  while (!scratch.stack.empty()) {
    const node_index n = scratch.stack.back();
    scratch.stack.pop_back();
    if (scratch.reachable[n]) continue;
    scratch.reachable[n] = 1;
    if (is_gate(n)) {
      ++reachable_gates;
      scratch.stack.push_back(nodes_[n].fanin0.index());
      scratch.stack.push_back(nodes_[n].fanin1.index());
    } else if (is_register_output(n)) {
      const auto& reg = registers_[nodes_[n].ci_ordinal];
      if (reg.input_set) scratch.stack.push_back(reg.input.index());
    }
  }
  return num_gates_ - reachable_gates;
}

void aig::compact_into(aig& result, compaction_scratch& scratch) const {
  result.reset();
  result.reserve(nodes_.size());
  scratch.map.assign(nodes_.size(), result.get_constant(false));

  // All PIs are kept (interface must not change); registers are kept too so
  // that register ordinals remain stable for sequential flows.
  for (std::size_t i = 0; i < pis_.size(); ++i) {
    scratch.map[pis_[i].index()] = result.create_pi(pi_names_[i]);
  }
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    scratch.map[registers_[i].output_node] =
        result.create_register_output(registers_[i].init, register_names_[i]);
  }
  for (node_index n = 0; n < nodes_.size(); ++n) {
    if (!is_gate(n) || !scratch.reachable[n]) continue;
    const signal a = scratch.map[nodes_[n].fanin0.index()] ^
                     nodes_[n].fanin0.is_complemented();
    const signal b = scratch.map[nodes_[n].fanin1.index()] ^
                     nodes_[n].fanin1.is_complemented();
    scratch.map[n] = result.create_and(a, b);
  }
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    result.create_po(scratch.map[pos_[i].index()] ^ pos_[i].is_complemented(),
                     po_names_[i]);
  }
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    if (registers_[i].input_set) {
      result.set_register_input(
          i, scratch.map[registers_[i].input.index()] ^
                 registers_[i].input.is_complemented());
    }
  }
}

aig aig::cleanup() const {
  aig result;
  compaction_scratch scratch;
  mark_reachable(scratch);
  compact_into(result, scratch);
  return result;
}

bool aig::is_well_formed() const {
  return std::all_of(registers_.begin(), registers_.end(),
                     [](const register_info& r) { return r.input_set; });
}

std::size_t aig::memory_bytes() const {
  std::size_t bytes = nodes_.capacity() * sizeof(node);
  bytes += pis_.capacity() * sizeof(signal);
  bytes += pos_.capacity() * sizeof(signal);
  bytes += registers_.capacity() * sizeof(register_info);
  bytes += (pi_names_.capacity() + po_names_.capacity() +
            register_names_.capacity()) *
           sizeof(std::string);
  bytes += strash_keys_.capacity() * sizeof(std::uint64_t);
  bytes += strash_values_.capacity() * sizeof(node_index);
  return bytes;
}

std::uint64_t aig::content_hash() const {
  std::uint64_t h = 0x5851F42D4C957F2Dull;
  h = hash_mix(h, nodes_.size());
  h = hash_mix(h, num_pis());
  h = hash_mix(h, num_pos());
  h = hash_mix(h, num_registers());
  for (const node& n : nodes_) {
    h = hash_mix(h, (std::uint64_t{n.fanin0.raw()} << 32) | n.fanin1.raw());
    h = hash_mix(h, (std::uint64_t{static_cast<std::uint8_t>(n.type)} << 32) |
                        n.ci_ordinal);
  }
  for (const signal s : pos_) h = hash_mix(h, s.raw());
  for (const register_info& r : registers_) {
    h = hash_mix(h, (std::uint64_t{r.output_node} << 32) | r.input.raw());
    h = hash_mix(h, (std::uint64_t{r.init} << 1) | std::uint64_t{r.input_set});
  }
  for (const auto& name : pi_names_) h = hash_mix_str(h, name);
  for (const auto& name : po_names_) h = hash_mix_str(h, name);
  for (const auto& name : register_names_) h = hash_mix_str(h, name);
  return h;
}

}  // namespace xsfq
