#pragma once
/// \file aig.hpp
/// \brief And-Inverter Graph (AIG) network with structural hashing.
///
/// The AIG is the workhorse representation of this library, mirroring its role
/// in ABC: Sec. 3.1.3 of the paper shows that a dual-rail xSFQ circuit of
/// LA-FA pairs is *isomorphic* to an AIG (LA = AND node / positive rail,
/// FA = complement rail, edge inversion = free wire twist), so minimizing AIG
/// nodes directly minimizes LA-FA pairs.
///
/// Design notes
///  * Signals are (node index << 1) | complement-bit, ABC/mockturtle style.
///  * Node 0 is the constant-0 node; combinational inputs (PIs and register
///    outputs) are explicit nodes; AND gates are created with structural
///    hashing and trivial-case simplification.
///  * Gates are created only after their fanins exist, so the node array is
///    always in topological order — passes exploit this invariant.
///  * Sequential designs model each register as a register-output node (a
///    combinational input) plus a register-input signal (a combinational
///    output), the classic latch-boundary trick used for retiming.
///  * The structural hash is an open-addressed table over two plain vectors
///    (no per-node heap cells), and `reset()` recycles every buffer at its
///    high-water capacity — an `aig` doubles as a reusable network arena for
///    the optimization pipeline (see opt/opt_engine.hpp), where passes write
///    into recycled shadow networks instead of allocating fresh ones.

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace xsfq {

/// An edge in the AIG: a node index plus a complement flag.
class signal {
public:
  constexpr signal() = default;
  constexpr signal(std::uint32_t node_index, bool complemented)
      : data_((node_index << 1) | (complemented ? 1u : 0u)) {}

  static constexpr signal from_raw(std::uint32_t raw) {
    signal s;
    s.data_ = raw;
    return s;
  }

  [[nodiscard]] constexpr std::uint32_t index() const { return data_ >> 1; }
  [[nodiscard]] constexpr bool is_complemented() const { return data_ & 1u; }
  [[nodiscard]] constexpr std::uint32_t raw() const { return data_; }

  /// Complemented copy of this signal (a free "wire twist" in xSFQ).
  constexpr signal operator!() const { return from_raw(data_ ^ 1u); }
  /// Conditionally complemented copy.
  constexpr signal operator^(bool complement) const {
    return from_raw(data_ ^ (complement ? 1u : 0u));
  }

  constexpr bool operator==(const signal&) const = default;
  constexpr auto operator<=>(const signal&) const = default;

private:
  std::uint32_t data_ = 0;
};

/// The AND-Inverter graph.
class aig {
public:
  using node_index = std::uint32_t;
  static constexpr node_index null_node =
      std::numeric_limits<node_index>::max();

  enum class node_type : std::uint8_t { constant, pi, register_output, gate };

  /// One register: its output node (a combinational input), its input signal
  /// (a combinational output, settable after the fact), and its reset value.
  struct register_info {
    node_index output_node = null_node;
    signal input;
    bool init = false;
    bool input_set = false;
  };

  /// Reusable scratch for reachability marking and compaction; one instance
  /// recycled across cleanup calls keeps the compaction path allocation-free
  /// in the steady state (see opt/opt_engine.hpp).
  struct compaction_scratch {
    std::vector<signal> map;
    std::vector<std::uint8_t> reachable;
    std::vector<node_index> stack;
  };

  aig();

  // ----- construction ------------------------------------------------------

  /// Returns the network to its just-constructed state (only the constant-0
  /// node) while keeping every buffer's capacity, including the structural
  /// hash table.  This is what makes an `aig` a recyclable arena: a pass
  /// that reset()s and refills the same instance allocates nothing once the
  /// high-water mark is reached.
  void reset();

  /// Pre-sizes the node array and the structural hash for about
  /// `expected_nodes` nodes, so bulk construction (compaction, partition
  /// merges) does not grow-and-rehash its way up.  Purely an allocation
  /// hint; never changes behavior.
  void reserve(std::size_t expected_nodes);

  /// The constant-`value` signal.
  [[nodiscard]] signal get_constant(bool value) const {
    return signal(0, value);
  }
  /// Creates a primary input.
  signal create_pi(std::string name = {});
  /// Registers `f` as a primary output; returns the output's index.
  std::size_t create_po(signal f, std::string name = {});
  /// Creates a register and returns its output signal; the register input is
  /// provided later via set_register_input (registers close feedback loops).
  signal create_register_output(bool init = false, std::string name = {});
  /// Connects the data input of register `reg`.
  void set_register_input(std::size_t reg, signal f);
  /// AND with structural hashing and trivial-case simplification.
  signal create_and(signal a, signal b);
  /// Non-mutating strash probe: the signal create_and(a, b) would return if
  /// it would not allocate a new node, or nullopt if a node would be created.
  [[nodiscard]] std::optional<signal> find_and(signal a, signal b) const;

  // ----- in-place editing (ECO replay; see aig/edit.hpp) --------------------
  //
  // These three primitives exist for edit replay, where node *positions* must
  // stay stable across the edit: create_and would dedup or simplify a new
  // gate onto an existing position, shifting everything downstream of the
  // replayed script.  They leave the structural hash stale; callers finish
  // with rebuild_strash() so the post-edit network state is a pure function
  // of the node array (no create/find history leaks into it).

  /// Appends a gate with exactly these fanins — no trivial-case
  /// simplification, no strash dedup.  Fanins must be existing non-constant
  /// nodes with distinct indices (degenerate pairs would require the
  /// simplifications this function refuses to apply); fanin order is
  /// canonicalized as in create_and.  Throws std::invalid_argument otherwise.
  signal append_gate_raw(signal a, signal b);

  /// Redefines gate `n`'s fanins in place.  Same fanin restrictions as
  /// append_gate_raw, plus both fanins strictly earlier than `n` so the node
  /// array stays topologically sorted.
  void set_gate_fanins(node_index n, signal a, signal b);

  /// Rebuilds the structural hash from the node array (index order,
  /// first-encountered node wins a duplicated key), restoring the
  /// create_and/find_and contract after in-place edits.
  void rebuild_strash();

  // Derived operators (all reduce to create_and + free inversions).
  signal create_nand(signal a, signal b) { return !create_and(a, b); }
  signal create_or(signal a, signal b) { return !create_and(!a, !b); }
  signal create_nor(signal a, signal b) { return create_and(!a, !b); }
  signal create_xor(signal a, signal b);
  signal create_xnor(signal a, signal b) { return !create_xor(a, b); }
  /// if `sel` then `then_f` else `else_f`.
  signal create_mux(signal sel, signal then_f, signal else_f);
  /// Majority of three.
  signal create_maj(signal a, signal b, signal c);
  /// Reduction AND/OR/XOR over a list (balanced trees).
  signal create_and_n(std::span<const signal> fs);
  signal create_or_n(std::span<const signal> fs);
  signal create_xor_n(std::span<const signal> fs);

  // ----- structure queries --------------------------------------------------

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_pis() const { return pis_.size(); }
  [[nodiscard]] std::size_t num_pos() const { return pos_.size(); }
  [[nodiscard]] std::size_t num_registers() const { return registers_.size(); }
  /// Number of AND gates (the paper's "AIG nodes").
  [[nodiscard]] std::size_t num_gates() const { return num_gates_; }
  /// Combinational inputs = PIs then register outputs.
  [[nodiscard]] std::size_t num_cis() const {
    return num_pis() + num_registers();
  }
  /// Combinational outputs = POs then register inputs.
  [[nodiscard]] std::size_t num_cos() const {
    return num_pos() + num_registers();
  }

  [[nodiscard]] node_type type_of(node_index n) const {
    return nodes_[n].type;
  }
  [[nodiscard]] bool is_constant(node_index n) const { return n == 0; }
  [[nodiscard]] bool is_pi(node_index n) const {
    return nodes_[n].type == node_type::pi;
  }
  [[nodiscard]] bool is_register_output(node_index n) const {
    return nodes_[n].type == node_type::register_output;
  }
  [[nodiscard]] bool is_ci(node_index n) const {
    return is_pi(n) || is_register_output(n);
  }
  [[nodiscard]] bool is_gate(node_index n) const {
    return nodes_[n].type == node_type::gate;
  }

  [[nodiscard]] signal fanin0(node_index n) const { return nodes_[n].fanin0; }
  [[nodiscard]] signal fanin1(node_index n) const { return nodes_[n].fanin1; }

  [[nodiscard]] signal pi(std::size_t i) const { return pis_[i]; }
  [[nodiscard]] signal po_signal(std::size_t i) const { return pos_[i]; }
  void replace_po(std::size_t i, signal f) { pos_[i] = f; }
  [[nodiscard]] const register_info& register_at(std::size_t i) const {
    return registers_[i];
  }
  /// CI signal `i` (PIs first, then register outputs).
  [[nodiscard]] signal ci(std::size_t i) const {
    return i < pis_.size()
               ? pis_[i]
               : signal(registers_[i - pis_.size()].output_node, false);
  }
  /// CO signal `i` (POs first, then register inputs).
  [[nodiscard]] signal co(std::size_t i) const {
    return i < pos_.size() ? pos_[i] : registers_[i - pos_.size()].input;
  }

  [[nodiscard]] const std::string& pi_name(std::size_t i) const {
    return pi_names_[i];
  }
  [[nodiscard]] const std::string& po_name(std::size_t i) const {
    return po_names_[i];
  }
  [[nodiscard]] const std::string& register_name(std::size_t i) const {
    return register_names_[i];
  }

  /// Index of the PI/register a CI node belongs to.
  [[nodiscard]] std::size_t ci_ordinal(node_index n) const {
    return nodes_[n].ci_ordinal;
  }

  // ----- iteration (node array is topologically sorted) ---------------------

  template <typename Fn>
  void foreach_node(Fn&& fn) const {
    for (node_index n = 0; n < nodes_.size(); ++n) fn(n);
  }
  template <typename Fn>
  void foreach_gate(Fn&& fn) const {
    for (node_index n = 0; n < nodes_.size(); ++n) {
      if (is_gate(n)) fn(n);
    }
  }
  template <typename Fn>
  void foreach_ci(Fn&& fn) const {
    for (std::size_t i = 0; i < num_cis(); ++i) fn(ci(i), i);
  }
  template <typename Fn>
  void foreach_co(Fn&& fn) const {
    for (std::size_t i = 0; i < num_cos(); ++i) fn(co(i), i);
  }

  // ----- analysis ------------------------------------------------------------

  /// Logic level of every node (CIs at level 0); recomputed on demand.
  [[nodiscard]] std::vector<std::uint32_t> compute_levels() const;
  /// Scratch-reusing variant (resizes `levels`, no other allocation).
  void compute_levels_into(std::vector<std::uint32_t>& levels) const;
  /// Length of the longest CI->CO combinational path, in AND gates.
  [[nodiscard]] std::uint32_t depth() const;
  /// Static fanout count of every node (counting CO references).
  [[nodiscard]] std::vector<std::uint32_t> compute_fanout_counts() const;
  /// Scratch-reusing variant (resizes `fanout`, no other allocation).
  void compute_fanout_counts_into(std::vector<std::uint32_t>& fanout) const;

  /// Returns a compacted copy containing only nodes reachable from COs.
  /// Register order, PO order and names are preserved.
  [[nodiscard]] aig cleanup() const;

  /// Fills scratch.reachable with CO-reachability flags for this network and
  /// returns the number of *unreachable* gates.  A zero return means
  /// compact_into would reproduce this network verbatim (same construction
  /// sequence), so callers may skip the rebuild entirely.
  std::size_t mark_reachable(compaction_scratch& scratch) const;

  /// Compacts into `result` (reset() + rebuilt), dropping gates that
  /// scratch.reachable — as filled by a preceding mark_reachable() on *this*
  /// network — flags as dead.  `result` must not alias this network.
  void compact_into(aig& result, compaction_scratch& scratch) const;

  /// True when every register input has been connected.
  [[nodiscard]] bool is_well_formed() const;

  /// Approximate heap footprint of this network's buffers (node array,
  /// interface vectors, strash table), counting capacity rather than size —
  /// the arena-recycling counters report peak footprint.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Structural content hash: covers node structure, CO signals, register
  /// metadata, and interface names.  Equal networks (same construction
  /// sequence) hash equal on every platform; used as the circuit half of the
  /// flow result-cache key (src/flow/batch_runner).
  [[nodiscard]] std::uint64_t content_hash() const;

private:
  struct node {
    signal fanin0;
    signal fanin1;
    node_type type = node_type::constant;
    std::uint32_t ci_ordinal = 0;  ///< PI index or register index
  };

  static std::uint64_t strash_key(signal a, signal b) {
    return (std::uint64_t{a.raw()} << 32) | b.raw();
  }

  // Open-addressed structural hash: parallel key/value vectors with linear
  // probing, no erase, grown at 70% load.  Keys are the packed fanin pair;
  // 0 marks an empty slot (legal because constant fanins are simplified away
  // before hashing, so a stored key's high half is always >= 2).
  [[nodiscard]] std::size_t strash_slot(std::uint64_t key) const;
  void strash_insert(std::uint64_t key, node_index value);
  [[nodiscard]] std::optional<node_index> strash_find(std::uint64_t key) const;
  void strash_grow(std::size_t new_capacity);

  std::vector<node> nodes_;
  std::vector<signal> pis_;
  std::vector<signal> pos_;
  std::vector<register_info> registers_;
  std::vector<std::string> pi_names_;
  std::vector<std::string> po_names_;
  std::vector<std::string> register_names_;
  std::vector<std::uint64_t> strash_keys_;  ///< 0 = empty slot
  std::vector<node_index> strash_values_;
  std::size_t strash_used_ = 0;
  std::size_t num_gates_ = 0;
};

/// Map from AIG nodes to values of type T (dense vector keyed by node index).
template <typename T>
class node_map {
public:
  node_map() = default;
  explicit node_map(const aig& network, const T& init = T{})
      : values_(network.size(), init) {}

  T& operator[](aig::node_index n) { return values_[n]; }
  const T& operator[](aig::node_index n) const { return values_[n]; }
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  void resize(std::size_t n, const T& init = T{}) { values_.resize(n, init); }

private:
  std::vector<T> values_;
};

}  // namespace xsfq
