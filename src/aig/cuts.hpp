#pragma once
/// \file cuts.hpp
/// \brief K-feasible priority cut enumeration with cut functions.
///
/// Cut-based resynthesis (rewrite/refactor in src/opt) replaces the logic
/// cone between a node and one of its cuts with a cheaper implementation of
/// the cut function.  This module enumerates bounded-size cuts bottom-up and
/// computes each cut's truth table during the merge, exactly as done in ABC.

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "util/truth_table.hpp"

namespace xsfq {

/// One cut: a set of leaf nodes plus the function of the root in terms of the
/// leaves (variable i of the table corresponds to leaves[i]).
struct cut {
  std::vector<aig::node_index> leaves;  ///< sorted, unique
  truth_table function;                 ///< over leaves.size() variables
  std::uint64_t signature = 0;          ///< bloom filter for subset tests

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(leaves.size());
  }
  /// True iff this cut's leaves are a subset of `other`'s.
  [[nodiscard]] bool dominates(const cut& other) const;
};

/// Parameters for cut enumeration.
struct cut_params {
  unsigned cut_size = 4;       ///< maximum number of leaves (k)
  unsigned cut_limit = 10;     ///< maximum cuts stored per node
  bool include_trivial = true; ///< keep the {n} cut at each node
};

/// Enumerates cuts for every node.  The result is indexed by node; CIs get
/// only their trivial cut.
node_map<std::vector<cut>> enumerate_cuts(const aig& network,
                                          const cut_params& params = {});

/// Size of the maximum fanout-free cone of `root` with respect to `leaves`:
/// the number of AND gates in the cone that would become dead if the root
/// were re-expressed directly in terms of the leaves.  `fanout` must come
/// from aig::compute_fanout_counts().
unsigned mffc_size(const aig& network, aig::node_index root,
                   const std::vector<aig::node_index>& leaves,
                   const std::vector<std::uint32_t>& fanout);

}  // namespace xsfq
