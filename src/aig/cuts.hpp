#pragma once
/// \file cuts.hpp
/// \brief K-feasible priority cut enumeration with cut functions.
///
/// Cut-based resynthesis (rewrite/refactor in src/opt) replaces the logic
/// cone between a node and one of its cuts with a cheaper implementation of
/// the cut function.  This module enumerates bounded-size cuts bottom-up and
/// computes each cut's truth table during the merge, exactly as done in ABC.
///
/// Storage is arena-backed: every node's cuts live as flat spans inside one
/// shared `cut_set` (one leaf pool, one entry array), and the reusable
/// `cut_engine` recycles the arena plus all merge/domination scratch between
/// enumerations, so the steady state of an optimization script allocates
/// nothing per node or per cut.  Cut functions ride in small-buffer
/// `truth_table`s (single inline word for <= 6 leaves) and are computed with
/// the word-parallel expand primitive instead of a bit-by-bit minterm loop.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "aig/aig.hpp"
#include "util/truth_table.hpp"

namespace xsfq {

/// Parameters for cut enumeration.
struct cut_params {
  unsigned cut_size = 4;       ///< maximum number of leaves (k)
  unsigned cut_limit = 10;     ///< maximum cuts stored per node
  bool include_trivial = true; ///< keep the {n} cut at each node
};

class cut_set;

/// Lightweight handle to one cut stored in a cut_set: a sorted, unique leaf
/// span plus the function of the root in terms of the leaves (variable i of
/// the table corresponds to leaves()[i]).
class cut_view {
public:
  [[nodiscard]] std::span<const aig::node_index> leaves() const;
  [[nodiscard]] const truth_table& function() const;
  /// Bloom filter over the leaf indices, used to cheapen subset tests.
  [[nodiscard]] std::uint64_t signature() const;
  [[nodiscard]] unsigned size() const;
  /// True iff this cut's leaves are a subset of `other`'s.
  [[nodiscard]] bool dominates(const cut_view& other) const;

private:
  friend class cut_set;
  cut_view(const cut_set* set, std::uint32_t index)
      : set_(set), index_(index) {}
  const cut_set* set_;
  std::uint32_t index_;
};

/// All cuts of every node, packed into one arena.  Indexed by node; CIs carry
/// only their trivial cut, the constant node one empty constant cut.
class cut_set {
public:
  /// Iterable, indexable view over one node's cuts.
  class range {
  public:
    class iterator {
    public:
      cut_view operator*() const { return {set_, index_}; }
      iterator& operator++() {
        ++index_;
        return *this;
      }
      bool operator!=(const iterator& o) const { return index_ != o.index_; }

    private:
      friend class range;
      iterator(const cut_set* set, std::uint32_t index)
          : set_(set), index_(index) {}
      const cut_set* set_;
      std::uint32_t index_;
    };

    [[nodiscard]] iterator begin() const { return {set_, begin_}; }
    [[nodiscard]] iterator end() const { return {set_, begin_ + count_}; }
    [[nodiscard]] std::size_t size() const { return count_; }
    [[nodiscard]] bool empty() const { return count_ == 0; }
    [[nodiscard]] cut_view operator[](std::size_t i) const {
      return {set_, begin_ + static_cast<std::uint32_t>(i)};
    }

  private:
    friend class cut_set;
    range(const cut_set* set, std::uint32_t begin, std::uint32_t count)
        : set_(set), begin_(begin), count_(count) {}
    const cut_set* set_;
    std::uint32_t begin_;
    std::uint32_t count_;
  };

  /// Cuts of node `n`, in enumeration (priority) order.
  [[nodiscard]] range operator[](aig::node_index n) const {
    return {this, spans_[n].first, spans_[n].second};
  }
  /// Number of nodes the set was enumerated over.
  [[nodiscard]] std::size_t num_nodes() const { return spans_.size(); }
  /// Total number of stored cuts across all nodes.
  [[nodiscard]] std::size_t num_cuts() const { return entries_.size(); }
  /// Total number of pooled leaf references.
  [[nodiscard]] std::size_t num_leaf_refs() const { return leaf_pool_.size(); }
  /// Reserved footprint of the arena in bytes (capacity, not size).
  [[nodiscard]] std::size_t arena_bytes() const {
    return leaf_pool_.capacity() * sizeof(aig::node_index) +
           entries_.capacity() * sizeof(entry) +
           spans_.capacity() * sizeof(spans_[0]);
  }

private:
  friend class cut_view;
  friend class cut_engine;

  struct entry {
    std::uint32_t leaf_begin = 0;  ///< offset into the shared leaf pool
    std::uint32_t num_leaves = 0;
    std::uint64_t signature = 0;
    truth_table function;  ///< over num_leaves variables
  };

  std::vector<aig::node_index> leaf_pool_;
  std::vector<entry> entries_;
  /// Per node: (first entry index, cut count).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> spans_;
};

/// Reusable cut enumeration engine.  Owns the arena and all scratch buffers;
/// enumerate() recycles them, so repeated enumerations (one per rewriting
/// pass) are allocation-free once the high-water mark is reached.
class cut_engine {
public:
  /// Work counters of the most recent enumerate() call.
  struct counters {
    std::uint64_t candidates = 0;  ///< leaf-set merge attempts
    std::uint64_t dominated = 0;   ///< candidates discarded as dominated
    std::uint64_t stored = 0;      ///< cuts committed to the arena
  };

  /// Enumerates cuts for every node of `network` into the reused arena; the
  /// returned reference stays valid until the next enumerate() call.
  const cut_set& enumerate(const aig& network, const cut_params& params = {});

  [[nodiscard]] const cut_set& cuts() const { return set_; }
  [[nodiscard]] const counters& last_counters() const { return counters_; }

  /// Moves the arena out of the engine (one-shot enumeration helper).
  [[nodiscard]] cut_set release() { return std::move(set_); }

private:
  cut_set set_;
  counters counters_;
  // Per-node scratch, recycled across nodes and enumerations.
  std::vector<cut_set::entry> scratch_entries_;
  std::vector<aig::node_index> scratch_leaves_;
  std::vector<aig::node_index> merged_;
  std::vector<unsigned> positions_;
};

/// One-shot enumeration through a temporary engine (tests, explorers).  Hot
/// paths hold a cut_engine instead to recycle the arena between passes.
cut_set enumerate_cuts(const aig& network, const cut_params& params = {});

/// Size of the maximum fanout-free cone of `root` with respect to `leaves`:
/// the number of AND gates in the cone that would become dead if the root
/// were re-expressed directly in terms of the leaves.  `leaves` must be
/// sorted ascending (cut leaves always are).  `fanout` must come from
/// aig::compute_fanout_counts().
unsigned mffc_size(const aig& network, aig::node_index root,
                   const std::vector<aig::node_index>& leaves,
                   const std::vector<std::uint32_t>& fanout);

/// Reusable MFFC calculator: dense stamped reference/visited arrays instead
/// of a per-query hash map, so repeated queries against one network neither
/// allocate nor sort.
class mffc_calculator {
public:
  /// Binds the calculator to a network and (re)computes its fanout counts.
  void attach(const aig& network);

  /// MFFC size of `root` against sorted `leaves` (see mffc_size above).
  unsigned size(aig::node_index root, std::span<const aig::node_index> leaves);

  [[nodiscard]] std::uint64_t num_queries() const { return queries_; }

private:
  const aig* network_ = nullptr;
  std::vector<std::uint32_t> fanout_;
  std::vector<std::uint32_t> remaining_;  ///< valid where stamp_ == epoch_
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
  std::vector<aig::node_index> stack_;
  std::uint64_t queries_ = 0;
};

}  // namespace xsfq
