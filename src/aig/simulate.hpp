#pragma once
/// \file simulate.hpp
/// \brief Bit-parallel Boolean simulation and equivalence checking of AIGs.
///
/// These routines provide the golden-model side of the verification story:
/// every optimization pass and every xSFQ mapping is validated against the
/// Boolean behaviour of the original network (Sec. 6 of DESIGN.md).
///
/// The workhorse is `sim_engine`, a *wide* word-parallel simulator: one AIG
/// traversal evaluates `width()` 64-bit pattern words per node (so 64*W
/// patterns per sweep) out of a single contiguous scratch plane that is
/// recycled across calls.  Gates are pre-decoded at attach() time into a
/// dense streaming program, and the per-gate kernel is a plain
/// fixed-trip-count `uint64_t` loop that the compiler auto-vectorizes
/// (widths 1/4/8/16/32 get dedicated kernels, multiversioned for AVX2 /
/// AVX-512 with a baseline fallback; other widths — used by
/// `compute_co_tables` for > 6-input networks — take a generic loop).  An
/// incremental mode re-simulates only the transitive fanout cone of inputs
/// whose patterns changed since the last sweep.  `simulate64`,
/// `compute_co_tables`, `exhaustive_equivalent` and `random_equivalent` are
/// all thin layers over this engine.

#include <cstdint>
#include <span>
#include <vector>

#include "aig/aig.hpp"
#include "util/rng.hpp"
#include "util/truth_table.hpp"

namespace xsfq {

namespace detail {
/// One AND gate, pre-decoded at sim_engine::attach() time: fanin literals
/// are raw signals ((index << 1) | complement), `out` is the gate's node
/// index.  Sweeps stream this dense 12-byte array instead of re-walking the
/// node table and its type tags on every traversal.
struct sim_gate_op {
  std::uint32_t out;
  std::uint32_t a;
  std::uint32_t b;
};
}  // namespace detail

/// Work counters of a sim_engine, accumulated across sweeps until reset.
struct sim_counters {
  std::uint64_t traversals = 0;     ///< full + incremental sweeps
  std::uint64_t pattern_words = 0;  ///< 64-pattern words applied at the CIs
  std::uint64_t node_evals = 0;     ///< gate x word evaluations performed
  std::uint64_t node_evals_skipped = 0;  ///< avoided by incremental resim

  sim_counters& operator+=(const sim_counters& o) {
    traversals += o.traversals;
    pattern_words += o.pattern_words;
    node_evals += o.node_evals;
    node_evals_skipped += o.node_evals_skipped;
    return *this;
  }
};

/// Reusable wide simulator.  Attach a network, fill the CI pattern plane,
/// sweep, read the CO planes; the scratch plane reaches its high-water mark
/// once and is recycled across attach() calls and networks.
class sim_engine {
public:
  /// Default lane count: 8 x 64 = 512 patterns per traversal.
  static constexpr unsigned default_width = 8;

  explicit sim_engine(unsigned width = default_width) { set_width(width); }

  /// Words simulated per node and traversal.
  [[nodiscard]] unsigned width() const { return width_; }
  /// Changes the lane count; detaches the engine (attach() again before
  /// simulating) but keeps the scratch plane's capacity.
  void set_width(unsigned width);

  /// Binds the engine to `network` and sizes the scratch plane.  The network
  /// must outlive the engine or the next attach().  All CI patterns start
  /// out dirty (a full simulate() is required before reading planes).
  void attach(const aig& network);
  [[nodiscard]] const aig* network() const { return net_; }

  /// Pattern words of CI `i` (width() words, mutable).  Writing through the
  /// span marks the input dirty for the next resimulate().
  [[nodiscard]] std::span<std::uint64_t> ci_words(std::size_t i);
  /// Fills every CI lane with fresh random words (and marks them dirty).
  void randomize_inputs(rng& gen);

  /// Full sweep: evaluates every gate on all lanes.
  void simulate();
  /// Incremental sweep: re-evaluates only gates in the transitive fanout of
  /// CIs written since the last sweep.  Equivalent to simulate() in result.
  void resimulate();

  /// Value plane of node `n` after a sweep (width() words).
  [[nodiscard]] std::span<const std::uint64_t> node_words(
      aig::node_index n) const {
    return {values_.data() + static_cast<std::size_t>(n) * width_, width_};
  }
  /// Copies the value plane of CO `i` (output complement applied) to `out`.
  void co_words(std::size_t i, std::span<std::uint64_t> out) const;
  /// One word of CO `i`'s plane, complement applied.
  [[nodiscard]] std::uint64_t co_word(std::size_t i, unsigned lane) const;
  /// True when every CO plane of this engine equals the other engine's
  /// (requires equal widths and CO counts; complements applied).
  [[nodiscard]] bool co_equal(const sim_engine& other) const;

  [[nodiscard]] const sim_counters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }

private:
  void sweep(bool incremental);

  const aig* net_ = nullptr;
  unsigned width_ = default_width;
  std::vector<std::uint64_t> values_;  ///< size() * width contiguous plane
  std::vector<detail::sim_gate_op> program_;  ///< gates in topological order
  std::vector<std::uint8_t> dirty_;    ///< per-node dirty flag (incremental)
  bool any_dirty_ = false;  ///< some CI was written since the last sweep
  bool valid_ = false;      ///< a full sweep has run since attach()
  sim_counters counters_;
};

/// Reusable two-sided randomized equivalence checker: both engines and their
/// scratch planes persist across check() calls (the opt_engine keeps one for
/// its per-pass validation).
class equivalence_checker {
public:
  /// Checks batch patterns 32 words at a time: wide enough that the
  /// per-gate decode cost all but vanishes (see bench_perf_sim), small
  /// enough that two c6288-sized planes stay cache-resident.
  static constexpr unsigned default_width = 32;

  explicit equivalence_checker(unsigned width = default_width)
      : left_(width), right_(width) {}

  /// Randomized combinational check with `rounds` * 64 patterns; sound "no"
  /// answers, probabilistic "yes".  Interface mismatch returns false.
  bool check(const aig& a, const aig& b, unsigned rounds = 64,
             std::uint64_t seed = 1);

  /// Work done by both engines across every check().
  [[nodiscard]] sim_counters counters() const {
    sim_counters c = left_.counters();
    c += right_.counters();
    return c;
  }

private:
  sim_engine left_;
  sim_engine right_;
};

/// Simulates 64 input patterns at once.  `ci_patterns` holds one 64-bit word
/// per combinational input (PIs then register outputs); the result holds one
/// word per combinational output (POs then register inputs).
std::vector<std::uint64_t> simulate64(const aig& network,
                                      std::span<const std::uint64_t> ci_patterns);

/// Computes the truth table of every combinational output as a function of
/// all combinational inputs.  Requires num_cis() <= truth_table::max_vars.
std::vector<truth_table> compute_co_tables(const aig& network);

/// Exhaustive combinational equivalence check (requires matching interface
/// sizes and num_cis() <= 16).
bool exhaustive_equivalent(const aig& a, const aig& b);

/// Randomized combinational equivalence check with `rounds` * 64 patterns.
/// Sound "no" answers; probabilistic "yes".
bool random_equivalent(const aig& a, const aig& b, unsigned rounds = 64,
                       std::uint64_t seed = 1);

/// Cycle-accurate sequential simulator (single trace, bool-valued).
class sequential_simulator {
public:
  explicit sequential_simulator(const aig& network);

  /// Resets all registers to their declared init values.
  void reset();
  /// Applies one clock cycle with the given PI values; returns PO values
  /// (computed from the *current* state before the register update).
  std::vector<bool> step(const std::vector<bool>& pi_values);
  /// Current register state.
  [[nodiscard]] const std::vector<bool>& state() const { return state_; }
  void set_state(std::vector<bool> state) { state_ = std::move(state); }

private:
  const aig& network_;
  std::vector<bool> state_;
};

/// Randomized sequential equivalence check: both networks are reset and
/// driven with the same random input traces; POs must match at every cycle.
bool random_sequential_equivalent(const aig& a, const aig& b,
                                  unsigned num_traces = 8,
                                  unsigned cycles_per_trace = 64,
                                  std::uint64_t seed = 1);

}  // namespace xsfq
