#pragma once
/// \file simulate.hpp
/// \brief Bit-parallel Boolean simulation and equivalence checking of AIGs.
///
/// These routines provide the golden-model side of the verification story:
/// every optimization pass and every xSFQ mapping is validated against the
/// Boolean behaviour of the original network (Sec. 6 of DESIGN.md).

#include <cstdint>
#include <span>
#include <vector>

#include "aig/aig.hpp"
#include "util/truth_table.hpp"

namespace xsfq {

/// Simulates 64 input patterns at once.  `ci_patterns` holds one 64-bit word
/// per combinational input (PIs then register outputs); the result holds one
/// word per combinational output (POs then register inputs).
std::vector<std::uint64_t> simulate64(const aig& network,
                                      std::span<const std::uint64_t> ci_patterns);

/// Computes the truth table of every combinational output as a function of
/// all combinational inputs.  Requires num_cis() <= truth_table::max_vars.
std::vector<truth_table> compute_co_tables(const aig& network);

/// Exhaustive combinational equivalence check (requires matching interface
/// sizes and num_cis() <= 16).
bool exhaustive_equivalent(const aig& a, const aig& b);

/// Randomized combinational equivalence check with `rounds` * 64 patterns.
/// Sound "no" answers; probabilistic "yes".
bool random_equivalent(const aig& a, const aig& b, unsigned rounds = 64,
                       std::uint64_t seed = 1);

/// Cycle-accurate sequential simulator (single trace, bool-valued).
class sequential_simulator {
public:
  explicit sequential_simulator(const aig& network);

  /// Resets all registers to their declared init values.
  void reset();
  /// Applies one clock cycle with the given PI values; returns PO values
  /// (computed from the *current* state before the register update).
  std::vector<bool> step(const std::vector<bool>& pi_values);
  /// Current register state.
  [[nodiscard]] const std::vector<bool>& state() const { return state_; }
  void set_state(std::vector<bool> state) { state_ = std::move(state); }

private:
  const aig& network_;
  std::vector<bool> state_;
};

/// Randomized sequential equivalence check: both networks are reset and
/// driven with the same random input traces; POs must match at every cycle.
bool random_sequential_equivalent(const aig& a, const aig& b,
                                  unsigned num_traces = 8,
                                  unsigned cycles_per_trace = 64,
                                  std::uint64_t seed = 1);

}  // namespace xsfq
