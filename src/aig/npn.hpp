#pragma once
/// \file npn.hpp
/// \brief NPN canonicalization of 4-variable Boolean functions.
///
/// The DAG-aware rewriting pass stores one optimized AIG structure per NPN
/// equivalence class (negation of inputs, permutation of inputs, negation of
/// the output).  There are 222 such classes over 4 variables.  Because
/// inverters are free in both AIGs and xSFQ dual-rail logic (a "wire twist",
/// Sec. 3.1.1), NPN classification loses nothing: any class member is
/// realizable from the class representative at zero extra cost.

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

namespace xsfq {

/// A transform t maps a function f to g = npn4_apply(f, t):
///   g(x) = f(z) ^ output_neg, where z is x with inputs negated according to
///   input_neg_mask and then redistributed so that argument position perm[v]
///   of f receives x_v.
struct npn4_transform {
  std::array<std::uint8_t, 4> perm = {0, 1, 2, 3};
  std::uint8_t input_neg_mask = 0;
  bool output_neg = false;

  bool operator==(const npn4_transform&) const = default;
};

/// Applies a transform to a 4-variable truth table (bit m = f on minterm m).
std::uint16_t npn4_apply(std::uint16_t function, const npn4_transform& t);

/// Exhaustive canonicalization: the canonical form is the numerically
/// smallest table reachable by any of the 768 NPN transforms.  Returns the
/// canonical table and a transform t with npn4_apply(f, t) == canonical.
std::pair<std::uint16_t, npn4_transform> npn4_canonicalize(
    std::uint16_t function);

/// How to realize f from the canonical structure: canonical input v is fed by
/// leaf `leaf_of_var[v]`, complemented if `leaf_complemented[v]`; the
/// structure's output is complemented if `output_complemented`.
/// Derived from the canonicalizing transform (see npn.cpp for the algebra).
struct npn4_realization {
  std::array<std::uint8_t, 4> leaf_of_var = {0, 1, 2, 3};
  std::array<bool, 4> leaf_complemented = {false, false, false, false};
  bool output_complemented = false;
};

npn4_realization realization_from_transform(const npn4_transform& t);

/// All 222 canonical representatives over 4 variables, sorted ascending.
/// Computed once on first use (canonicalizes all 65536 functions).
const std::vector<std::uint16_t>& npn4_class_representatives();

}  // namespace xsfq
