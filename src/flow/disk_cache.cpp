#include "flow/disk_cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <vector>

#include "flow/result_io.hpp"
#include "util/fault.hpp"

namespace xsfq::flow {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t cache_magic = 0x43524658u;  // "XFRC" little-endian
constexpr const char* entry_suffix = ".xfr";

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Parses the `<circuit-hex>-<options-hex>.xfr` filename back into its keys;
/// false for anything that does not match the naming scheme.
bool parse_entry_name(const std::string& name, std::uint64_t& circuit_key,
                      std::uint64_t& options_key) {
  if (name.size() != 16 + 1 + 16 + 4 || name[16] != '-' ||
      name.substr(33) != entry_suffix) {
    return false;
  }
  char* end = nullptr;
  const std::string circuit_hex = name.substr(0, 16);
  const std::string options_hex = name.substr(17, 16);
  circuit_key = std::strtoull(circuit_hex.c_str(), &end, 16);
  if (end != circuit_hex.c_str() + 16) return false;
  options_key = std::strtoull(options_hex.c_str(), &end, 16);
  return end == options_hex.c_str() + 16;
}

}  // namespace

disk_result_cache::disk_result_cache(std::string directory,
                                     std::size_t max_entries)
    : directory_(std::move(directory)), max_entries_(max_entries) {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec || !fs::is_directory(directory_)) {
    throw std::runtime_error("disk_result_cache: cannot create directory " +
                             directory_);
  }
  recovery_scan();
}

std::string disk_result_cache::quarantine_directory() const {
  return directory_ + "/quarantine";
}

bool disk_result_cache::quarantine_file(const std::string& path,
                                        const char* reason) {
  std::error_code ec;
  fs::create_directories(quarantine_directory(), ec);
  const std::string dest = quarantine_directory() + "/" +
                           fs::path(path).filename().string() + "." + reason;
  fs::rename(path, dest, ec);
  if (ec) {
    // Quarantine is best-effort (the subdirectory may be unwritable); the
    // poisoned file must still never be served, so fall back to removal.
    ec.clear();
    fs::remove(path, ec);
    return !ec;
  }
  prune_quarantine();
  return true;
}

void disk_result_cache::prune_quarantine() {
  // Oldest-first removal until quarantine/ fits both caps.  Best-effort
  // like every other cache IO path: iteration or removal failing just
  // leaves more evidence on disk than intended.
  struct candidate {
    fs::path path;
    fs::file_time_type mtime;
    std::uintmax_t bytes;
  };
  std::vector<candidate> files;
  std::uintmax_t total_bytes = 0;
  try {
    std::error_code ec;
    for (const auto& de : fs::directory_iterator(quarantine_directory(), ec)) {
      if (ec) break;
      std::error_code fec;
      if (!de.is_regular_file(fec) || fec) continue;
      const std::uintmax_t bytes = de.file_size(fec);
      if (fec) continue;
      const fs::file_time_type mtime = de.last_write_time(fec);
      if (fec) continue;
      files.push_back({de.path(), mtime, bytes});
      total_bytes += bytes;
    }
  } catch (const fs::filesystem_error&) {
    return;
  }
  if (files.size() <= max_quarantine_entries &&
      total_bytes <= max_quarantine_bytes) {
    return;
  }
  std::sort(files.begin(), files.end(),
            [](const candidate& a, const candidate& b) {
              return a.mtime < b.mtime;
            });
  std::uint64_t removed = 0;
  std::size_t remaining = files.size();
  for (const candidate& c : files) {
    if (remaining <= max_quarantine_entries &&
        total_bytes <= max_quarantine_bytes) {
      break;
    }
    std::error_code ec;
    if (fs::remove(c.path, ec) && !ec) {
      ++removed;
      --remaining;
      total_bytes -= c.bytes;
    }
  }
  if (removed != 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.pruned += removed;
  }
}

void disk_result_cache::recovery_scan() {
  // Verify every entry's header up front and quarantine mismatches, so a
  // restart after a crash (or a format upgrade) starts from a directory
  // where every .xfr file is structurally sound.  Temp files orphaned by a
  // crashed writer are quarantined too — only once they are at least an
  // hour old, since a sibling process may legitimately be mid-store right
  // now.  Iteration over a shared directory can itself throw (entries
  // vanishing under a concurrent daemon); the scan is best-effort like
  // every other cache IO path.
  try {
    const auto cutoff =
        fs::file_time_type::clock::now() - std::chrono::hours(1);
    std::error_code ec;
    for (const auto& de : fs::directory_iterator(directory_, ec)) {
      if (ec) break;
      const std::string name = de.path().filename().string();
      if (de.path().extension() == entry_suffix) {
        std::uint64_t circuit_key = 0, options_key = 0;
        const char* reason = nullptr;
        if (!parse_entry_name(name, circuit_key, options_key)) {
          reason = "bad_name";
        } else {
          // Only the 24-byte prologue is read here; full payload
          // verification (content hash, expect_done) stays on the load
          // path so startup cost is one small read per entry.
          std::uint8_t head[24];
          std::ifstream is(de.path(), std::ios::binary);
          if (!is.read(reinterpret_cast<char*>(head), sizeof(head))) {
            reason = "truncated_header";
          } else {
            byte_reader r(std::span<const std::uint8_t>(head, sizeof(head)));
            if (r.u32() != cache_magic) {
              reason = "bad_magic";
            } else if (r.u32() != format_version) {
              reason = "stale_version";
            } else if (r.u64() != circuit_key || r.u64() != options_key) {
              reason = "key_mismatch";
            }
          }
        }
        if (reason != nullptr) {
          if (quarantine_file(de.path().string(), reason))
            ++stats_.quarantined;
        } else {
          ++entry_count_;  // seed the prune trigger with the live entries
        }
        continue;
      }
      if (name.find(".xfr.tmp.") == std::string::npos) continue;
      std::error_code tec;
      if (const auto mtime = fs::last_write_time(de.path(), tec);
          !tec && mtime < cutoff) {
        if (quarantine_file(de.path().string(), "orphaned_tmp"))
          ++stats_.quarantined;
      }
    }
  } catch (const fs::filesystem_error&) {
  }
}

std::string disk_result_cache::entry_path(std::uint64_t circuit_key,
                                          std::uint64_t options_key) const {
  return directory_ + "/" + hex16(circuit_key) + "-" + hex16(options_key) +
         entry_suffix;
}

std::optional<flow_result> disk_result_cache::load(std::uint64_t circuit_key,
                                                   std::uint64_t options_key) {
  const std::string path = entry_path(circuit_key, options_key);
  std::vector<std::uint8_t> bytes;
  {
    std::ifstream is(path, std::ios::binary);
    if (!is) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.misses;
      return std::nullopt;
    }
    is.seekg(0, std::ios::end);
    const auto size = is.tellg();
    is.seekg(0, std::ios::beg);
    bytes.resize(static_cast<std::size_t>(std::max<std::streamoff>(size, 0)));
    is.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (!is) bytes.clear();  // short read -> fail verification below
  }
  try {
    byte_reader r(bytes);
    if (r.u32() != cache_magic) throw serialize_error("bad magic");
    if (r.u32() != format_version) throw serialize_error("format version");
    if (r.u64() != circuit_key || r.u64() != options_key) {
      throw serialize_error("key mismatch");
    }
    flow_result result = read_flow_result(r);
    r.expect_done();
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.hits;
    return result;
  } catch (const serialize_error&) {
    // Stale format or corruption: quarantine the bytes for inspection (the
    // entry will be rewritten fresh on the next store) instead of erasing
    // the evidence of whatever produced them.
    const bool gone = quarantine_file(path, "undecodable");
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    if (gone) ++stats_.quarantined;
    if (entry_count_ > 0) --entry_count_;
    return std::nullopt;
  }
}

void disk_result_cache::store(std::uint64_t circuit_key,
                              std::uint64_t options_key,
                              const flow_result& result) {
  byte_writer w;
  w.u32(cache_magic);
  w.u32(format_version);
  w.u64(circuit_key);
  w.u64(options_key);
  write_flow_result(w, result);

  const std::string path = entry_path(circuit_key, options_key);
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  // Chaos sites (util/fault.hpp): each models one real storage failure the
  // load path and recovery scan must absorb — a truncated entry that made
  // it past the rename, a full disk, and a writer crash on either side of
  // the rename.  All unarmed in production: one relaxed load each.
  const bool short_write = fault::fire("disk_cache.write.short");
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return;  // unwritable directory: stay a pure accelerator
    const std::size_t n = short_write ? w.size() / 2 : w.size();
    os.write(reinterpret_cast<const char*>(w.data().data()),
             static_cast<std::streamsize>(n));
    if (!os || fault::fire("disk_cache.write.enospc")) {
      os.close();
      std::error_code ec;
      fs::remove(tmp, ec);
      return;
    }
  }
  if (fault::fire("disk_cache.rename.crash_before")) {
    // Writer "crashed" after the tmp write, before the rename: the tmp
    // orphan stays behind for the recovery scan to quarantine.
    return;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return;
  }
  if (fault::fire("disk_cache.rename.crash_after")) {
    // Writer "crashed" right after the rename: the entry is live on disk
    // (short_write above makes it a truncated one) but none of the
    // in-memory bookkeeping below happened.
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.writes;
  ++entry_count_;
  // Rescanning the directory per store would make bulk ingestion O(N^2);
  // the approximate count defers the scan until the cap is plausibly hit.
  if (max_entries_ != 0 && entry_count_ > max_entries_) prune_locked();
}

bool disk_result_cache::drop_entry(std::uint64_t circuit_key,
                                   std::uint64_t options_key) {
  const std::string path = entry_path(circuit_key, options_key);
  std::error_code ec;
  if (!fs::remove(path, ec) || ec) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.drops;
  if (entry_count_ > 0) --entry_count_;
  return true;
}

void disk_result_cache::prune_locked() {
  if (max_entries_ == 0) return;
  struct entry {
    fs::path path;
    fs::file_time_type mtime;
  };
  std::vector<entry> entries;
  // The ec iterator constructor does not cover increments, which can throw
  // when a sibling daemon prunes the same directory concurrently; pruning
  // must never turn a successful synthesis into a failed store().
  try {
    std::error_code ec;
    for (const auto& de : fs::directory_iterator(directory_, ec)) {
      if (ec) return;
      if (de.path().extension() != entry_suffix) continue;
      std::error_code tec;
      const auto mtime = fs::last_write_time(de.path(), tec);
      if (tec) continue;
      entries.push_back({de.path(), mtime});
    }
  } catch (const fs::filesystem_error&) {
    return;
  }
  entry_count_ = entries.size();  // re-synchronize the approximate count
  if (entries.size() <= max_entries_) return;
  std::sort(entries.begin(), entries.end(),
            [](const entry& a, const entry& b) { return a.mtime < b.mtime; });
  const std::size_t excess = entries.size() - max_entries_;
  for (std::size_t i = 0; i < excess; ++i) {
    std::error_code rec;
    if (fs::remove(entries[i].path, rec)) {
      ++stats_.evictions;
      --entry_count_;
    }
  }
}

disk_cache_stats disk_result_cache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace xsfq::flow
