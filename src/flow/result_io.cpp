#include "flow/result_io.hpp"

#include <cstdint>

namespace xsfq::flow {

namespace {

// ----- aig -----------------------------------------------------------------

void write_signal(byte_writer& w, signal s) { w.u32(s.raw()); }
signal read_signal(byte_reader& r) { return signal::from_raw(r.u32()); }

// ----- small stat structs ---------------------------------------------------

void write_opt_counters(byte_writer& w, const opt_counters& c) {
  w.u64(c.passes);
  w.u64(c.cuts_enumerated);
  w.u64(c.cut_candidates);
  w.u64(c.mffc_queries);
  w.u64(c.replacements);
  w.u64(c.resynth_cache_hits);
  w.u64(c.cut_arena_bytes);
  w.u64(c.equiv_checks);
  w.u64(c.sim_words);
  w.u64(c.sim_node_evals);
  w.u64(c.net_arena_bytes);
  w.u64(c.rebuilds_avoided);
}

opt_counters read_opt_counters(byte_reader& r) {
  opt_counters c;
  c.passes = r.u64();
  c.cuts_enumerated = r.u64();
  c.cut_candidates = r.u64();
  c.mffc_queries = r.u64();
  c.replacements = r.u64();
  c.resynth_cache_hits = r.u64();
  c.cut_arena_bytes = r.u64();
  c.equiv_checks = r.u64();
  c.sim_words = r.u64();
  c.sim_node_evals = r.u64();
  c.net_arena_bytes = r.u64();
  c.rebuilds_avoided = r.u64();
  return c;
}

void write_optimize_stats(byte_writer& w, const optimize_stats& s) {
  w.u64(s.initial_gates);
  w.u64(s.final_gates);
  w.u32(s.initial_depth);
  w.u32(s.final_depth);
  w.u32(s.rounds);
  write_opt_counters(w, s.work);
}

optimize_stats read_optimize_stats(byte_reader& r) {
  optimize_stats s;
  s.initial_gates = r.u64();
  s.final_gates = r.u64();
  s.initial_depth = r.u32();
  s.final_depth = r.u32();
  s.rounds = r.u32();
  s.work = read_opt_counters(r);
  return s;
}

void write_rsfq_stats(byte_writer& w, const rsfq_stats& s) {
  w.u64(s.logic_cells);
  w.u64(s.not_cells);
  w.u64(s.balancing_dros);
  w.u64(s.dffs);
  w.u64(s.data_splitters);
  w.u64(s.clocked_cells);
  w.u32(s.depth);
  w.u64(s.jj_without_clock);
  w.u64(s.jj_with_clock);
}

rsfq_stats read_rsfq_stats(byte_reader& r) {
  rsfq_stats s;
  s.logic_cells = r.u64();
  s.not_cells = r.u64();
  s.balancing_dros = r.u64();
  s.dffs = r.u64();
  s.data_splitters = r.u64();
  s.clocked_cells = r.u64();
  s.depth = r.u32();
  s.jj_without_clock = r.u64();
  s.jj_with_clock = r.u64();
  return s;
}

// ----- xsfq netlist ---------------------------------------------------------

void write_port_ref(byte_writer& w, const port_ref& p) {
  w.u32(p.element);
  w.u8(p.port);
}

port_ref read_port_ref(byte_reader& r) {
  port_ref p;
  p.element = r.u32();
  p.port = r.u8();
  return p;
}

void write_netlist(byte_writer& w, const xsfq_netlist& netlist) {
  w.u64(netlist.size());
  for (const xsfq_element& e : netlist.elements()) {
    w.u8(static_cast<std::uint8_t>(e.kind));
    write_port_ref(w, e.fanin0);
    write_port_ref(w, e.fanin1);
    w.i64(e.aig_node);
    w.boolean(e.rail);
    w.u16(e.pipeline_rank);
    w.boolean(e.feedback_input);
    w.str(e.name);
  }
}

xsfq_netlist read_netlist(byte_reader& r) {
  xsfq_netlist netlist;
  const std::size_t n = r.count(/*min_element_bytes=*/1);
  for (std::size_t i = 0; i < n; ++i) {
    xsfq_element e;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(element_kind::output_port)) {
      throw serialize_error("netlist element kind out of range");
    }
    e.kind = static_cast<element_kind>(kind);
    e.fanin0 = read_port_ref(r);
    e.fanin1 = read_port_ref(r);
    e.aig_node = r.i64();
    e.rail = r.boolean();
    e.pipeline_rank = r.u16();
    e.feedback_input = r.boolean();
    e.name = r.str();
    netlist.add_element(std::move(e));
  }
  return netlist;
}

void write_mapping_stats(byte_writer& w, const mapping_stats& s) {
  w.u64(s.la_cells);
  w.u64(s.fa_cells);
  w.u64(s.splitters);
  w.u64(s.drocs_plain);
  w.u64(s.drocs_preload);
  w.u64(s.nodes_used);
  w.f64(s.duplication);
  w.u64(s.jj);
  w.u64(s.jj_ptl);
  w.i64(s.eq1_splitters);
  w.u32(s.depth);
  w.u32(s.depth_with_splitters);
  w.f64(s.circuit_ghz);
  w.f64(s.architectural_ghz);
}

mapping_stats read_mapping_stats(byte_reader& r) {
  mapping_stats s;
  s.la_cells = r.u64();
  s.fa_cells = r.u64();
  s.splitters = r.u64();
  s.drocs_plain = r.u64();
  s.drocs_preload = r.u64();
  s.nodes_used = r.u64();
  s.duplication = r.f64();
  s.jj = r.u64();
  s.jj_ptl = r.u64();
  s.eq1_splitters = static_cast<long>(r.i64());
  s.depth = r.u32();
  s.depth_with_splitters = r.u32();
  s.circuit_ghz = r.f64();
  s.architectural_ghz = r.f64();
  return s;
}

void write_bool_vector(byte_writer& w, const std::vector<bool>& v) {
  w.u64(v.size());
  for (const bool b : v) w.boolean(b);
}

std::vector<bool> read_bool_vector(byte_reader& r) {
  const std::size_t n = r.count(/*min_element_bytes=*/1);
  std::vector<bool> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = r.boolean();
  return v;
}

}  // namespace

void write_aig(byte_writer& w, const aig& network) {
  w.u64(network.size());
  // Node records: CIs carry nothing (ordinal order is node order), gates
  // carry their fanins.  Node 0 is always the constant and is implied.
  for (aig::node_index n = 1; n < network.size(); ++n) {
    w.u8(static_cast<std::uint8_t>(network.type_of(n)));
    if (network.is_gate(n)) {
      write_signal(w, network.fanin0(n));
      write_signal(w, network.fanin1(n));
    }
  }
  w.u64(network.num_pis());
  for (std::size_t i = 0; i < network.num_pis(); ++i) {
    w.str(network.pi_name(i));
  }
  w.u64(network.num_pos());
  for (std::size_t i = 0; i < network.num_pos(); ++i) {
    write_signal(w, network.po_signal(i));
    w.str(network.po_name(i));
  }
  w.u64(network.num_registers());
  for (std::size_t i = 0; i < network.num_registers(); ++i) {
    const auto& reg = network.register_at(i);
    w.boolean(reg.init);
    w.boolean(reg.input_set);
    write_signal(w, reg.input);
    w.str(network.register_name(i));
  }
  w.u64(network.content_hash());
}

aig read_aig(byte_reader& r) {
  const std::size_t num_nodes = r.count(/*min_element_bytes=*/1);
  if (num_nodes == 0) throw serialize_error("aig without constant node");

  struct node_record {
    aig::node_type type;
    signal fanin0, fanin1;
  };
  std::vector<node_record> nodes;
  nodes.reserve(num_nodes - 1);
  for (std::size_t n = 1; n < num_nodes; ++n) {
    node_record rec{};
    const std::uint8_t type = r.u8();
    if (type > static_cast<std::uint8_t>(aig::node_type::gate) ||
        type == static_cast<std::uint8_t>(aig::node_type::constant)) {
      throw serialize_error("aig node type out of range");
    }
    rec.type = static_cast<aig::node_type>(type);
    if (rec.type == aig::node_type::gate) {
      rec.fanin0 = read_signal(r);
      rec.fanin1 = read_signal(r);
      if (rec.fanin0.index() >= n || rec.fanin1.index() >= n) {
        throw serialize_error("aig gate fanin not topological");
      }
    }
    nodes.push_back(rec);
  }

  const std::size_t num_pis = r.count(8);
  std::vector<std::string> pi_names(num_pis);
  for (auto& name : pi_names) name = r.str();

  struct po_record {
    signal s;
    std::string name;
  };
  const std::size_t num_pos = r.count(4);
  std::vector<po_record> pos(num_pos);
  for (auto& po : pos) {
    po.s = read_signal(r);
    po.name = r.str();
  }

  struct reg_record {
    bool init, input_set;
    signal input;
    std::string name;
  };
  const std::size_t num_regs = r.count(6);
  std::vector<reg_record> regs(num_regs);
  for (auto& reg : regs) {
    reg.init = r.boolean();
    reg.input_set = r.boolean();
    reg.input = read_signal(r);
    reg.name = r.str();
  }
  const std::uint64_t stored_hash = r.u64();

  // Replay the construction.  Because the original network was itself built
  // through create_pi/create_register_output/create_and in this exact order,
  // the strash table and trivial-case simplification behave identically and
  // every node lands at its original index; any deviation means the record
  // does not describe a well-formed strashed AIG.
  aig network;
  std::size_t pi_cursor = 0;
  std::size_t reg_cursor = 0;
  for (std::size_t n = 1; n < num_nodes; ++n) {
    const node_record& rec = nodes[n - 1];
    switch (rec.type) {
      case aig::node_type::pi: {
        if (pi_cursor >= num_pis) throw serialize_error("aig pi overflow");
        const signal s = network.create_pi(pi_names[pi_cursor++]);
        if (s.index() != n) throw serialize_error("aig pi index mismatch");
        break;
      }
      case aig::node_type::register_output: {
        if (reg_cursor >= num_regs) {
          throw serialize_error("aig register overflow");
        }
        const reg_record& reg = regs[reg_cursor];
        const signal s =
            network.create_register_output(reg.init, reg.name);
        ++reg_cursor;
        if (s.index() != n) {
          throw serialize_error("aig register index mismatch");
        }
        break;
      }
      case aig::node_type::gate: {
        const signal s = network.create_and(rec.fanin0, rec.fanin1);
        if (s.raw() != signal(static_cast<std::uint32_t>(n), false).raw()) {
          throw serialize_error("aig gate replay diverged");
        }
        break;
      }
      default:
        throw serialize_error("aig node type out of range");
    }
  }
  if (pi_cursor != num_pis || reg_cursor != num_regs) {
    throw serialize_error("aig interface count mismatch");
  }
  for (const auto& po : pos) {
    if (po.s.index() >= num_nodes) throw serialize_error("aig po out of range");
    network.create_po(po.s, po.name);
  }
  for (std::size_t i = 0; i < num_regs; ++i) {
    if (regs[i].input_set) {
      if (regs[i].input.index() >= num_nodes) {
        throw serialize_error("aig register input out of range");
      }
      network.set_register_input(i, regs[i].input);
    }
  }
  if (network.content_hash() != stored_hash) {
    throw serialize_error("aig content hash mismatch");
  }
  return network;
}

void write_stage_timings(byte_writer& w,
                         const std::vector<stage_timing>& timings) {
  w.u64(timings.size());
  for (const stage_timing& t : timings) {
    w.str(t.stage);
    w.f64(t.ms);
    write_stage_counters(w, t.counters);
  }
}

std::vector<stage_timing> read_stage_timings(byte_reader& r) {
  const std::size_t n = r.count(/*min_element_bytes=*/8);
  std::vector<stage_timing> timings(n);
  for (auto& t : timings) {
    t.stage = r.str();
    t.ms = r.f64();
    t.counters = read_stage_counters(r);
  }
  return timings;
}

void write_mapping_result(byte_writer& w, const mapping_result& mapped) {
  write_netlist(w, mapped.netlist);
  write_mapping_stats(w, mapped.stats);
  write_bool_vector(w, mapped.co_negated);
  w.u64(mapped.register_feedback.size());
  for (const auto& [element, port] : mapped.register_feedback) {
    w.u32(element);
    write_port_ref(w, port);
  }
}

mapping_result read_mapping_result(byte_reader& r) {
  mapping_result mapped;
  mapped.netlist = read_netlist(r);
  mapped.stats = read_mapping_stats(r);
  mapped.co_negated = read_bool_vector(r);
  const std::size_t n = r.count(/*min_element_bytes=*/9);
  mapped.register_feedback.resize(n);
  for (auto& [element, port] : mapped.register_feedback) {
    element = r.u32();
    port = read_port_ref(r);
  }
  return mapped;
}

void write_stage_counters(byte_writer& w, const stage_counters& c) {
  w.u64(c.nodes);
  w.u64(c.cuts);
  w.u64(c.replacements);
  w.u64(c.arena_bytes);
  w.u64(c.sim_words);
  w.u64(c.sim_node_evals);
  w.u64(c.arena_peak_bytes);
  w.u64(c.rebuilds_avoided);
}

stage_counters read_stage_counters(byte_reader& r) {
  stage_counters c;
  c.nodes = r.u64();
  c.cuts = r.u64();
  c.replacements = r.u64();
  c.arena_bytes = r.u64();
  c.sim_words = r.u64();
  c.sim_node_evals = r.u64();
  c.arena_peak_bytes = r.u64();
  c.rebuilds_avoided = r.u64();
  return c;
}

void write_flow_result(byte_writer& w, const flow_result& result) {
  w.str(result.name);
  write_aig(w, result.optimized);
  write_optimize_stats(w, result.opt_stats);
  write_mapping_result(w, result.mapped);
  write_rsfq_stats(w, result.baseline);
  w.str(result.verilog);
  write_stage_timings(w, result.timings);
  w.f64(result.total_ms);
}

flow_result read_flow_result(byte_reader& r) {
  flow_result result;
  result.name = r.str();
  result.optimized = read_aig(r);
  result.opt_stats = read_optimize_stats(r);
  result.mapped = read_mapping_result(r);
  result.baseline = read_rsfq_stats(r);
  result.verilog = r.str();
  result.timings = read_stage_timings(r);
  result.total_ms = r.f64();
  return result;
}

}  // namespace xsfq::flow
