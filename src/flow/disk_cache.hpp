#pragma once
/// \file disk_cache.hpp
/// \brief Disk-persistent tier of the batch_runner result cache.
///
/// One directory holds one file per cached flow_result, named by the cache
/// key (`<circuit-hex>-<options-hex>.xfr`).  The format is versioned and
/// self-checking: a magic tag, the format version, the key the entry was
/// stored under, and the serialized result (whose embedded AIG content hash
/// is re-verified on load).  Any mismatch — wrong version after an upgrade,
/// truncation from a crashed writer that somehow survived the atomic rename,
/// plain corruption — reads as a miss and the offending file is moved into
/// a `quarantine/` subdirectory (reason-tagged, e.g. `...xfr.bad_magic`)
/// rather than deleted: corruption in a persistent cache is evidence of a
/// bug or failing storage, and an operator must be able to inspect the bytes
/// after the fact (docs/operations.md, "Failure modes and recovery").
///
/// Writes go to a `.tmp.<pid>` sibling and are renamed into place, so a
/// reader never observes a half-written entry and concurrent daemons sharing
/// a directory at worst overwrite each other with identical bytes.  Eviction
/// is by file modification time: when the entry count exceeds the cap after
/// a store, the oldest entries are pruned.
///
/// Construction runs a recovery scan: every entry's header (magic, format
/// version, embedded keys vs the filename) is verified and mismatches are
/// quarantined up front, and temp files orphaned by a crashed writer are
/// quarantined once they are old enough to rule out a live sibling writer.
/// The write path carries fault-injection sites (`disk_cache.write.short`,
/// `disk_cache.write.enospc`, `disk_cache.rename.crash_before`,
/// `disk_cache.rename.crash_after` — util/fault.hpp) so chaos drills can
/// prove all of the above without a real crash or a full disk.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "flow/flow.hpp"

namespace xsfq::flow {

struct disk_cache_stats {
  std::uint64_t hits = 0;       ///< entries loaded and verified
  std::uint64_t misses = 0;     ///< absent, stale-version, or corrupt entries
  std::uint64_t writes = 0;     ///< entries persisted
  std::uint64_t evictions = 0;  ///< entries pruned by the size cap
  std::uint64_t drops = 0;      ///< entries removed by drop_entry (ECO)
  /// Undecodable entries and orphaned temp files moved to quarantine/
  /// (startup recovery scan + load-time verification).
  std::uint64_t quarantined = 0;
  /// v7: quarantined files removed (oldest first) to keep quarantine/
  /// inside its count/byte bounds — a corruption storm must not be able to
  /// fill the disk with evidence.
  std::uint64_t pruned = 0;
};

class disk_result_cache {
 public:
  /// Current on-disk format.  Bump whenever the serialized layout of
  /// flow_result (result_io.cpp) changes; older entries then read as misses.
  // v2: opt/stage counters gained net_arena_bytes + rebuilds_avoided (PR 5);
  // v1 entries are auto-dropped as stale-version misses.
  static constexpr std::uint32_t format_version = 2;

  /// Creates the directory if needed.  Throws std::runtime_error when the
  /// directory cannot be created or is not writable.
  explicit disk_result_cache(std::string directory,
                             std::size_t max_entries = 1024);

  /// Loads and verifies the entry for (circuit_key, options_key); nullopt on
  /// any miss.  Thread-safe.
  std::optional<flow_result> load(std::uint64_t circuit_key,
                                  std::uint64_t options_key);

  /// Persists `result` under the key (atomic rename; prunes over-cap
  /// entries).  IO errors are swallowed — the cache is an accelerator, never
  /// a correctness dependency.  Thread-safe.
  void store(std::uint64_t circuit_key, std::uint64_t options_key,
             const flow_result& result);

  /// Removes the entry for (circuit_key, options_key) if present; returns
  /// whether a file was removed.  The ECO supersede path drops the base
  /// circuit's entry here so a stale result cannot outlive its edit.
  /// Thread-safe; IO errors read as "nothing dropped".
  bool drop_entry(std::uint64_t circuit_key, std::uint64_t options_key);

  disk_cache_stats stats() const;
  const std::string& directory() const { return directory_; }
  std::size_t max_entries() const { return max_entries_; }
  /// Where undecodable entries end up (`<directory>/quarantine`); the
  /// directory is created lazily on first quarantine.
  std::string quarantine_directory() const;

  /// v7: bounds on quarantine/ — keeping the newest evidence is enough for
  /// an operator to diagnose a corruption storm; the oldest files go first
  /// once either cap is exceeded (counted in stats().pruned).
  static constexpr std::size_t max_quarantine_entries = 64;
  static constexpr std::uintmax_t max_quarantine_bytes = 64u << 20;

 private:
  std::string entry_path(std::uint64_t circuit_key,
                         std::uint64_t options_key) const;
  /// Moves `path` into quarantine/ with a `.reason` suffix (falls back to
  /// removal when the move fails — a poisoned entry must never be served).
  /// Returns whether the file is gone from the live directory.
  bool quarantine_file(const std::string& path, const char* reason);
  /// Enforces the quarantine/ count+byte caps (oldest-first).  Called after
  /// every successful quarantine; takes mutex_ only to bump stats_.pruned.
  void prune_quarantine();
  void recovery_scan();
  void prune_locked();

  std::string directory_;
  std::size_t max_entries_;
  mutable std::mutex mutex_;
  disk_cache_stats stats_;
  /// Approximate .xfr count (exact after every prune scan); overwrites of
  /// an existing key may overcount, which only causes an early prune scan
  /// that re-synchronizes it.  Keeps store() from rescanning the directory
  /// until the cap is plausibly exceeded.
  std::size_t entry_count_ = 0;
};

}  // namespace xsfq::flow
