#include "flow/flow.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/xsfq_writer.hpp"
#include "opt/opt_engine.hpp"
#include "util/hash.hpp"

namespace xsfq::flow {

double flow_result::stage_ms(const std::string& stage_name) const {
  for (const auto& t : timings) {
    if (t.stage == stage_name) return t.ms;
  }
  return 0.0;
}

flow& flow::add_stage(std::string stage_name,
                      std::function<void(flow_context&)> fn) {
  stages_.push_back({std::move(stage_name), std::move(fn)});
  return *this;
}

flow& flow::add_stage(stage s) {
  stages_.push_back(std::move(s));
  return *this;
}

flow& flow::add_stages(const flow& other) {
  for (const auto& s : other.stages()) stages_.push_back(s);
  return *this;
}

flow_result flow::run(const stage_observer& observer) const {
  return run_context(flow_context{}, observer);
}

flow_result flow::run_on(const aig& network, std::string circuit_name,
                         const stage_observer& observer) const {
  flow_context ctx;
  ctx.network = network;
  ctx.name = std::move(circuit_name);
  return run_context(std::move(ctx), observer);
}

flow_result flow::run_context(flow_context ctx,
                              const stage_observer& observer) const {
  using clock = std::chrono::steady_clock;
  flow_result result;
  const auto flow_start = clock::now();
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const auto& s = stages_[i];
    const auto stage_start = clock::now();
    ctx.counters = {};
    s.run(ctx);
    const std::chrono::duration<double, std::milli> elapsed =
        clock::now() - stage_start;
    ctx.counters.nodes = ctx.network.num_gates();
    result.timings.push_back({s.name, elapsed.count(), ctx.counters});
    if (observer) {
      observer({s.name, i, stages_.size(), elapsed.count(), ctx.counters,
                /*from_cache=*/false});
    }
  }
  const std::chrono::duration<double, std::milli> total =
      clock::now() - flow_start;
  result.total_ms = total.count();

  result.name = std::move(ctx.name);
  result.optimized = std::move(ctx.network);
  if (ctx.opt) result.opt_stats = *ctx.opt;
  if (ctx.mapped) result.mapped = std::move(*ctx.mapped);
  if (ctx.baseline) result.baseline = *ctx.baseline;
  result.verilog = std::move(ctx.verilog);
  return result;
}

void apply_opt_counters(stage_counters& counters, const opt_counters& work) {
  counters.cuts = work.cuts_enumerated;
  counters.replacements = work.replacements;
  counters.arena_bytes = work.cut_arena_bytes;
  counters.sim_words = work.sim_words;
  counters.sim_node_evals = work.sim_node_evals;
  counters.arena_peak_bytes = work.net_arena_bytes;
  counters.rebuilds_avoided = work.rebuilds_avoided;
}

namespace stages {

stage benchmark(std::string benchmark_name) {
  return {"generate", [name = std::move(benchmark_name)](flow_context& ctx) {
            ctx.name = name;
            ctx.network = benchgen::make_benchmark(name);
          }};
}

stage preset(aig network, std::string circuit_name) {
  return {"generate",
          [network = std::move(network),
           name = std::move(circuit_name)](flow_context& ctx) {
            ctx.name = name;
            ctx.network = network;
          }};
}

stage optimize(optimize_params params) {
  return {"optimize", [params](flow_context& ctx) {
            optimize_stats st;
            ctx.network = xsfq::optimize(ctx.network, params, &st);
            apply_opt_counters(ctx.counters, st.work);
            ctx.opt = st;
          }};
}

stage pass(std::string pass_name) {
  return {pass_name, [pass_name](flow_context& ctx) {
            // The per-thread engine persists across stages and entries, so
            // this stage's work is the counter delta, not the lifetime total.
            opt_engine& engine = opt_engine::thread_local_engine();
            const opt_counters before = engine.counters();
            ctx.network = engine.run_pass(ctx.network, pass_name);
            apply_opt_counters(ctx.counters,
                               engine.counters().delta_since(before));
          }};
}

stage map(mapping_params params) {
  return {"map", [params](flow_context& ctx) {
            ctx.mapped = map_to_xsfq(ctx.network, params);
          }};
}

stage baseline(rsfq_params params) {
  return {"baseline", [params](flow_context& ctx) {
            ctx.baseline = map_to_rsfq(ctx.network, params);
          }};
}

stage emit_verilog(std::string module_name) {
  return {"emit", [module = std::move(module_name)](flow_context& ctx) {
            if (!ctx.mapped) {
              throw std::logic_error(
                  "flow: emit_verilog stage requires a map stage before it");
            }
            ctx.verilog = write_xsfq_verilog_string(
                *ctx.mapped, module.empty() ? ctx.name : module);
          }};
}

}  // namespace stages

std::uint64_t fingerprint(const optimize_params& params) {
  std::uint64_t h = 0x0B7E151628AED2A6ull;
  h = hash_mix(h, params.max_rounds);
  h = hash_mix(h, params.zero_gain_final);
  h = hash_mix(h, params.refactor_cut_size);
  h = hash_mix(h, params.validate_passes);
  h = hash_mix(h, params.validate_passes ? params.validate_rounds : 0);
  // The partition shape changes the optimized network (region boundaries
  // freeze cuts), so it is part of the result identity; the executor and the
  // region cache are wall-clock-only and deliberately excluded.  In grain
  // mode the shape is the grain alone — flow_jobs degrades to a parallelism
  // knob — so the grain joins the digest in flow_jobs' place (the extra mix
  // keeps grain-mode digests disjoint from every legacy one); with grain 0
  // the mix sequence is exactly the legacy digest.
  if (params.partition_grain > 0) {
    h = hash_mix(h, 1u);
    h = hash_mix(h, params.partition_grain);
  } else {
    h = hash_mix(h, params.flow_jobs == 0 ? 1u : params.flow_jobs);
  }
  return h;
}

std::uint64_t fingerprint(const flow_options& options) {
  std::uint64_t h = fingerprint(options.opt);
  h = hash_mix(h, options.run_optimize);
  h = hash_mix(h, static_cast<std::uint64_t>(options.map.polarity));
  h = hash_mix(h, options.map.pipeline_stages);
  h = hash_mix(h, static_cast<std::uint64_t>(options.map.reg_style));
  h = hash_mix(h, options.map.forced_polarities.has_value());
  if (options.map.forced_polarities) {
    h = hash_mix(h, options.map.forced_polarities->size());
    for (const bool negate : *options.map.forced_polarities) {
      h = hash_mix(h, negate);
    }
  }
  h = hash_mix(h, options.run_baseline);
  h = hash_mix(h, options.baseline.detect_xor);
  h = hash_mix(h, options.baseline.costs.logic_cell);
  h = hash_mix(h, options.baseline.costs.not_cell);
  h = hash_mix(h, options.baseline.costs.dro);
  h = hash_mix(h, options.baseline.costs.dff);
  h = hash_mix(h, options.baseline.costs.splitter);
  h = hash_mix(h, options.emit_verilog);
  return h;
}

flow make_synthesis_flow(const flow_options& options) {
  flow f("synthesis");
  if (options.run_optimize) f.add_stage(stages::optimize(options.opt));
  f.add_stage(stages::map(options.map));
  if (options.run_baseline) f.add_stage(stages::baseline(options.baseline));
  if (options.emit_verilog) f.add_stage(stages::emit_verilog());
  return f;
}

flow_result run_flow(const std::string& benchmark_name,
                     const flow_options& options) {
  flow full("synthesis");
  full.add_stage(stages::benchmark(benchmark_name));
  full.add_stages(make_synthesis_flow(options));
  return full.run();
}

flow_result run_flow(const aig& network, std::string circuit_name,
                     const flow_options& options) {
  return make_synthesis_flow(options).run_on(network, std::move(circuit_name));
}

}  // namespace xsfq::flow
