#pragma once
/// \file flow.hpp
/// \brief Composable synthesis-flow pass manager.
///
/// One `flow` is an ordered list of named stages (generate/parse ->
/// optimize -> map -> baseline -> emit) operating on a shared
/// `flow_context`.  Running a flow times every stage and returns a
/// `flow_result` carrying the optimized network, mapping and baseline
/// stats, and the per-stage wall-clock breakdown.  The table/figure
/// binaries, the examples, and the batch_runner all compose their flows
/// from the stage factories below instead of hand-rolling the
/// optimize/map/baseline sequence.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "baseline/rsfq.hpp"
#include "benchgen/registry.hpp"
#include "core/mapper.hpp"
#include "opt/script.hpp"

namespace xsfq::flow {

/// Work counters of one executed stage.  `nodes` is filled by the runner for
/// every stage (AIG gates after the stage ran); the cut/rewrite counters are
/// filled by the stages that do cut-based work (optimize, pass).
struct stage_counters {
  std::uint64_t nodes = 0;         ///< AIG gates after the stage
  std::uint64_t cuts = 0;          ///< cuts enumerated during the stage
  std::uint64_t replacements = 0;  ///< accepted resynthesis rewrites
  std::uint64_t arena_bytes = 0;   ///< peak cut-arena footprint
  std::uint64_t sim_words = 0;       ///< 64-pattern sim words swept
  std::uint64_t sim_node_evals = 0;  ///< gate x word sim evaluations
  std::uint64_t arena_peak_bytes = 0;  ///< peak network-arena footprint
  std::uint64_t rebuilds_avoided = 0;  ///< pass outputs taken without rebuild
};

/// Mutable state threaded through the stages of one flow run.  Stages fill
/// in the optional fields they are responsible for; later stages may read
/// anything earlier stages produced.
struct flow_context {
  std::string name;  ///< circuit name (set by the generate/parse stage)
  aig network;       ///< current network; transform stages replace it
  std::optional<optimize_stats> opt;
  std::optional<mapping_result> mapped;
  std::optional<rsfq_stats> baseline;
  std::string verilog;  ///< structural Verilog, if an emit stage ran
  /// Scratch slot for the currently running stage's counters; reset by the
  /// runner before each stage and harvested into its stage_timing after.
  stage_counters counters;
};

/// Copies an opt_counters work record into a stage's counter slot (the one
/// mapping shared by stages::optimize, stages::pass, and the batch_runner's
/// cached optimize stage — add new counters here, not at the call sites).
void apply_opt_counters(stage_counters& counters, const opt_counters& work);

/// Wall-clock and work cost of one executed stage.
struct stage_timing {
  std::string stage;
  double ms = 0.0;
  stage_counters counters;
};

/// One per-stage progress notification, emitted as soon as the stage
/// finishes.  The serving front end (src/serve) streams these to clients;
/// `from_cache` marks events replayed from a cached flow_result's timings
/// instead of a live stage execution.
struct stage_event {
  std::string stage;
  std::size_t index = 0;  ///< 0-based position within the flow
  std::size_t total = 0;  ///< stages the flow will run in total
  double ms = 0.0;
  stage_counters counters;
  bool from_cache = false;
};

/// Called after every completed stage; empty observers are skipped.  The
/// observer runs on whichever thread executes the flow (a batch_runner
/// worker, under enqueue()), so it must be safe to call off the submitting
/// thread.  Observer exceptions propagate and fail the flow.
using stage_observer = std::function<void(const stage_event&)>;

/// Everything one flow run produced.  Field names mirror the old
/// bench_common `flow_record` so table binaries read naturally:
/// `r.mapped.stats.jj`, `r.baseline.jj_without_clock`, ...
struct flow_result {
  std::string name;
  aig optimized;  ///< network after the last transform stage
  optimize_stats opt_stats;
  mapping_result mapped;
  rsfq_stats baseline;
  std::string verilog;
  std::vector<stage_timing> timings;
  double total_ms = 0.0;

  /// Wall-clock of a named stage, or 0 if it did not run.
  double stage_ms(const std::string& stage) const;
};

/// A named unit of work inside a flow.
struct stage {
  std::string name;
  std::function<void(flow_context&)> run;
};

/// Ordered stage list with timed execution.
class flow {
 public:
  flow() = default;
  explicit flow(std::string flow_name) : name_(std::move(flow_name)) {}

  /// Appends a stage; returns *this for chaining.
  flow& add_stage(std::string stage_name, std::function<void(flow_context&)> fn);
  flow& add_stage(stage s);

  /// Appends every stage of another flow (front-end + canned-flow
  /// composition).
  flow& add_stages(const flow& other);

  const std::string& name() const { return name_; }
  std::size_t num_stages() const { return stages_.size(); }
  const std::vector<stage>& stages() const { return stages_; }

  /// Runs every stage in order over a fresh context and reports the result.
  /// Stage exceptions propagate to the caller.  The observer, when given,
  /// receives one stage_event per completed stage.
  flow_result run(const stage_observer& observer = {}) const;

  /// Same, but seeds the context with an existing network (for flows whose
  /// first stage is not a generate/parse stage).
  flow_result run_on(const aig& network, std::string circuit_name,
                     const stage_observer& observer = {}) const;

 private:
  flow_result run_context(flow_context ctx,
                          const stage_observer& observer) const;

  std::string name_;
  std::vector<stage> stages_;
};

// ---------------------------------------------------------------------------
// Stage factories: the vocabulary every flow is built from.
// ---------------------------------------------------------------------------
namespace stages {

/// Generate a named benchmark from the registry (the "parse" front end).
stage benchmark(std::string benchmark_name);

/// Provide an already-built network.
stage preset(aig network, std::string circuit_name);

/// resyn-style optimization (src/opt); records optimize_stats.
stage optimize(optimize_params params = {});

/// A single named pass ("b", "rw", "rwz", "rf", "rfz", "clean").
stage pass(std::string pass_name);

/// AIG -> xSFQ mapping; records the mapping_result.
stage map(mapping_params params = {});

/// Clocked-RSFQ baseline on the current network; records rsfq_stats.
stage baseline(rsfq_params params = {});

/// Structural-Verilog emission of the mapped netlist (requires map()).
stage emit_verilog(std::string module_name = "");

}  // namespace stages

// ---------------------------------------------------------------------------
// Canned flows.
// ---------------------------------------------------------------------------

/// Knobs for the standard paper flow.
struct flow_options {
  optimize_params opt;
  mapping_params map;
  rsfq_params baseline;
  bool run_optimize = true;   ///< skip to map the raw network
  bool run_baseline = true;   ///< skip the clocked-RSFQ comparison
  bool emit_verilog = false;  ///< fill flow_result::verilog
};

/// 64-bit digest covering every knob in `options` (fields are mixed in a
/// fixed order, so the digest itself is order-sensitive).  Two option sets
/// with equal fingerprints produce identical flow results on the same
/// circuit; used as the options half of the batch_runner result-cache key.
std::uint64_t fingerprint(const flow_options& options);
/// Same digest restricted to the optimize stage's knobs (the optimized-
/// network cache tier is shared across differing map/baseline options).
std::uint64_t fingerprint(const optimize_params& params);

/// optimize -> map [-> baseline] [-> emit]; prepend your own front end.
flow make_synthesis_flow(const flow_options& options = {});

/// The paper flow on a named benchmark: generate -> optimize -> map ->
/// baseline.  This is the one-call replacement for the old
/// bench_common::run_flow.
flow_result run_flow(const std::string& benchmark_name,
                     const flow_options& options = {});

/// The paper flow on an existing network.
flow_result run_flow(const aig& network, std::string circuit_name,
                     const flow_options& options = {});

}  // namespace xsfq::flow
