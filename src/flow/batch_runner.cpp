#include "flow/batch_runner.hpp"

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <utility>

namespace xsfq::flow {

std::optional<unsigned> parse_thread_count(const char* arg) {
  if (arg == nullptr || *arg == '\0') return std::nullopt;
  char* end = nullptr;
  const long n = std::strtol(arg, &end, 10);
  if (end == arg || *end != '\0' || n < 0 || n > 256) return std::nullopt;
  return static_cast<unsigned>(n);
}

std::size_t batch_report::num_ok() const {
  std::size_t n = 0;
  for (const auto& e : entries) {
    if (e.ok) ++n;
  }
  return n;
}

std::size_t batch_report::num_failed() const {
  return entries.size() - num_ok();
}

std::vector<const flow_result*> batch_report::ok_results() const {
  std::vector<const flow_result*> out;
  out.reserve(entries.size());
  for (const auto& e : entries) {
    if (e.ok) out.push_back(&e.result);
  }
  return out;
}

batch_summary summarize(const batch_report& report) {
  batch_summary s;
  double log_sum = 0.0;
  double log_sum_clock = 0.0;
  std::size_t ratio_count = 0;
  for (const auto& e : report.entries) {
    if (!e.ok) continue;
    const auto& r = e.result;
    ++s.circuits;
    s.aig_gates += r.optimized.num_gates();
    s.xsfq_jj += r.mapped.stats.jj;
    s.rsfq_jj += r.baseline.jj_without_clock;
    s.rsfq_jj_clock += r.baseline.jj_with_clock;
    if (r.mapped.stats.jj > 0 && r.baseline.jj_without_clock > 0) {
      log_sum += std::log(static_cast<double>(r.baseline.jj_without_clock) /
                          static_cast<double>(r.mapped.stats.jj));
      log_sum_clock +=
          std::log(static_cast<double>(r.baseline.jj_with_clock) /
                   static_cast<double>(r.mapped.stats.jj));
      ++ratio_count;
    }
  }
  if (ratio_count > 0) {
    const double n = static_cast<double>(ratio_count);
    s.geomean_savings = std::exp(log_sum / n);
    s.geomean_savings_clock = std::exp(log_sum_clock / n);
  }
  return s;
}

// ---------------------------------------------------------------------------
// Worker pool.
// ---------------------------------------------------------------------------

struct batch_runner::impl {
  std::mutex mutex;
  std::condition_variable work_ready;
  std::condition_variable batch_done;
  std::queue<std::function<void()>> queue;
  std::size_t in_flight = 0;  ///< queued + currently executing jobs
  bool shutting_down = false;
  std::vector<std::thread> workers;

  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_ready.wait(lock,
                        [this] { return shutting_down || !queue.empty(); });
        if (queue.empty()) return;  // shutting down
        job = std::move(queue.front());
        queue.pop();
      }
      job();
      {
        std::lock_guard<std::mutex> lock(mutex);
        --in_flight;
        if (in_flight == 0) batch_done.notify_all();
      }
    }
  }

  void submit(std::function<void()> job) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      queue.push(std::move(job));
      ++in_flight;
    }
    work_ready.notify_one();
  }

  void wait_idle() {
    std::unique_lock<std::mutex> lock(mutex);
    batch_done.wait(lock, [this] { return in_flight == 0; });
  }
};

batch_runner::batch_runner(unsigned num_threads) : impl_(new impl) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  num_threads_ = num_threads;
  impl_->workers.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

batch_runner::~batch_runner() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutting_down = true;
  }
  impl_->work_ready.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

batch_report batch_runner::run_jobs(
    std::vector<std::string> names,
    std::vector<std::function<flow_result()>> jobs) {
  if (names.size() != jobs.size()) {
    throw std::invalid_argument("batch_runner: names/jobs size mismatch");
  }
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();

  batch_report report;
  report.threads = num_threads_;
  report.entries.resize(jobs.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    report.entries[i].name = std::move(names[i]);
  }

  // Each worker writes only its own slot; the report is read after
  // wait_idle(), so no further synchronization is needed.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    batch_entry* slot = &report.entries[i];
    std::function<flow_result()> job = std::move(jobs[i]);
    impl_->submit([slot, job = std::move(job)] {
      try {
        slot->result = job();
        slot->ok = true;
      } catch (const std::exception& e) {
        slot->error = e.what();
      } catch (...) {
        slot->error = "unknown exception";
      }
    });
  }
  impl_->wait_idle();

  const std::chrono::duration<double, std::milli> wall = clock::now() - start;
  report.wall_ms = wall.count();
  for (const auto& e : report.entries) {
    if (e.ok) report.flow_ms_sum += e.result.total_ms;
  }
  return report;
}

batch_report batch_runner::run(const std::vector<std::string>& benchmark_names,
                               const flow_options& options) {
  std::vector<std::function<flow_result()>> jobs;
  jobs.reserve(benchmark_names.size());
  for (const auto& name : benchmark_names) {
    jobs.push_back([name, options] { return run_flow(name, options); });
  }
  return run_jobs(benchmark_names, std::move(jobs));
}

batch_report batch_runner::run(
    const std::vector<std::string>& benchmark_names,
    const std::function<flow(const std::string&)>& make_flow) {
  std::vector<std::function<flow_result()>> jobs;
  jobs.reserve(benchmark_names.size());
  for (const auto& name : benchmark_names) {
    flow f = make_flow(name);
    jobs.push_back([f = std::move(f)] { return f.run(); });
  }
  return run_jobs(benchmark_names, std::move(jobs));
}

batch_report run_batch(const std::vector<std::string>& benchmark_names,
                       const flow_options& options, unsigned num_threads) {
  batch_runner runner(num_threads);
  return runner.run(benchmark_names, options);
}

}  // namespace xsfq::flow
